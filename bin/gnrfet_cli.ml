(* Command-line interface to the GNRFET technology-exploration framework.

   Subcommands:
     bands       band structure / gaps of A-GNRs
     iv          self-consistent I-V sweep of an intrinsic device
     vt          threshold extraction
     explore     VDD-VT exploration summary
     tables      pre-generate the device-table cache
     experiment  reproduce one (or all) paper tables/figures
     mc          Monte Carlo on the 15-stage ring oscillator
     export      dump a device table as CSV
     simulate    run a SPICE-dialect deck on the circuit engine
     roughness   edge-roughness transmission study (extension)
     ablations   design-choice ablation studies
     latch-write dynamic latch write experiment (extension)
     obs-report  run a small instrumented workload, print the obs snapshot
     robust-report
                 run a small workload under a fault campaign, print the
                 escalation-ladder traffic and robustness counters
     serve       table-serving daemon (Unix socket or stdio, docs/SERVE.md)
     query       one-shot client for a running serve daemon *)

open Cmdliner

(* Observability defaults on in the CLI (it is interactive tooling, not a
   measurement-sensitive test run); GNRFET_OBS=0 opts out. *)
let () = if Sys.getenv_opt "GNRFET_OBS" = None then Obs.set_enabled Obs.global true

let index_arg =
  let doc = "A-GNR index N (dimer lines across the width)." in
  Arg.(value & opt int 12 & info [ "n"; "index" ] ~docv:"N" ~doc)

let charge_arg =
  let doc = "Oxide charge impurity in units of |q| (0, ±1, ±2)." in
  Arg.(value & opt float 0. & info [ "c"; "charge" ] ~docv:"Q" ~doc)

let params_of index charge =
  let p = Params.default ~gnr_index:index () in
  if charge = 0. then p else Params.with_impurity_charge p charge

(* bands *)
let bands_cmd =
  let run index =
    let tb = Tight_binding.make index in
    let b = Bands.compute ~nk:65 tb in
    Printf.printf "A-GNR N=%d: width %.3f nm, gap %.4f eV (family %s)\n" index
      (Lattice.width index /. 1e-9)
      (Bands.band_gap b)
      (match Lattice.family index with
      | Lattice.Family_3q -> "3q"
      | Lattice.Family_3q1 -> "3q+1"
      | Lattice.Family_3q2 -> "3q+2");
    let ms = Modespace.reduce index in
    Array.iter
      (fun (m : Modespace.mode) ->
        Printf.printf "  subband %d: min %.4f eV, max %.4f eV (chain t1=%.3f t2=%.3f)\n"
          m.Modespace.index m.Modespace.delta m.Modespace.emax m.Modespace.t1
          m.Modespace.t2)
      ms.Modespace.modes
  in
  Cmd.v (Cmd.info "bands" ~doc:"A-GNR band structure and mode-space parameters")
    Term.(const run $ index_arg)

(* iv *)
let iv_cmd =
  let vd_arg =
    Arg.(value & opt float 0.5 & info [ "vd" ] ~docv:"VD" ~doc:"Drain bias (V).")
  in
  let points_arg =
    Arg.(value & opt int 16 & info [ "points" ] ~docv:"K" ~doc:"Sweep points.")
  in
  let run index charge vd points =
    let p = params_of index charge in
    Format.printf "%a, VD = %g V@." Params.pp p vd;
    let init = ref None in
    Array.iter
      (fun vg ->
        let s = Scf.solve ?init:!init p ~vg ~vd in
        init := Some s.Scf.potential;
        Printf.printf "  VG=%6.3f  ID=%12.5g A   Q=%12.5g C   (%d iters)\n%!" vg
          s.Scf.current s.Scf.charge s.Scf.iterations)
      (Vec.linspace 0. 0.75 points)
  in
  Cmd.v (Cmd.info "iv" ~doc:"Self-consistent NEGF-Poisson I-V sweep")
    Term.(const run $ index_arg $ charge_arg $ vd_arg $ points_arg)

(* vt *)
let vt_cmd =
  let offset_arg =
    Arg.(value & opt float 0. & info [ "offset" ] ~docv:"V" ~doc:"Gate work-function offset (V).")
  in
  let run index offset =
    let p = { (Params.default ~gnr_index:index ()) with Params.gate_offset = offset } in
    Printf.printf "VT(N=%d, offset=%g V) = %.3f V\n" index offset (Vt.extract p)
  in
  Cmd.v (Cmd.info "vt" ~doc:"Threshold-voltage extraction (Fig 2(b) method)")
    Term.(const run $ index_arg $ offset_arg)

(* explore *)
let explore_cmd =
  let nv_arg =
    Arg.(value & opt int 7 & info [ "grid" ] ~docv:"K" ~doc:"Grid points per axis.")
  in
  let run nv =
    let table = Table_cache.get (Params.default ()) in
    let s =
      Explore.surface ~vdds:(Vec.linspace 0.1 0.7 nv) ~vts:(Vec.linspace 0. 0.3 nv)
        table
    in
    let m = Explore.min_edp s in
    Printf.printf "minimum EDP: VDD=%.3f VT=%.3f EDP=%.3g fJ-ps\n" m.Explore.vdd
      m.Explore.vt
      (m.Explore.value /. 1e-27);
    (match Explore.min_edp_at_frequency_and_snm s ~ghz:3. ~snm:0.1 with
    | Some b ->
      Printf.printf "point B:     VDD=%.3f VT=%.3f EDP=%.3g fJ-ps\n" b.Explore.vdd
        b.Explore.vt
        (b.Explore.value /. 1e-27)
    | None -> print_endline "point B: not found on this grid")
  in
  Cmd.v (Cmd.info "explore" ~doc:"VDD-VT technology exploration (Fig 3(b))")
    Term.(const run $ nv_arg)

(* tables *)
let tables_cmd =
  let run () =
    let variants = Variants.all_for_experiments in
    Printf.printf "generating %d tables into %s...\n%!" (List.length variants)
      (Table_cache.cache_dir ());
    ignore (Table_cache.get_many variants);
    print_endline "done"
  in
  Cmd.v (Cmd.info "tables" ~doc:"Pre-generate the device-table cache")
    Term.(const run $ const ())

(* experiment *)
let experiment_cmd =
  let which_arg =
    let doc = "Experiment id (fig2a fig2b fig3b table1 fig4 fig5 table2 table3 table4 fig6 fig7) or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run which =
    let ppf = Format.std_formatter in
    if String.equal which "all" then All_experiments.run_all ppf
    else begin
      match All_experiments.of_name which with
      | Some id -> All_experiments.run_and_print ppf id
      | None -> Format.printf "unknown experiment: %s@." which
    end
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Reproduce a paper table or figure")
    Term.(const run $ which_arg)

(* mc *)
let mc_cmd =
  let samples_arg =
    Arg.(value & opt int 500 & info [ "samples" ] ~docv:"K" ~doc:"Monte Carlo samples.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")
  in
  let run samples seed =
    let r = Exp_fig6.run ~samples ~seed () in
    Exp_fig6.print Format.std_formatter r
  in
  Cmd.v (Cmd.info "mc" ~doc:"Monte Carlo ring-oscillator study (Fig 6)")
    Term.(const run $ samples_arg $ seed_arg)

(* export *)
let export_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run index charge out =
    let table = Table_cache.get (params_of index charge) in
    let csv = Iv_table.to_csv table in
    match out with
    | None -> print_string csv
    | Some path ->
      let oc = open_out path in
      output_string oc csv;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "export" ~doc:"Dump a device I-V/Q-V table as CSV")
    Term.(const run $ index_arg $ charge_arg $ out_arg)

(* simulate *)
let simulate_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DECK" ~doc:"SPICE-dialect netlist file.")
  in
  let probe_arg =
    Arg.(value & opt (some string) None & info [ "probe" ] ~docv:"NODE" ~doc:"Node to print (default: all).")
  in
  let run file probe =
    let text = In_channel.with_open_text file In_channel.input_all in
    let deck = Spice_deck.parse text in
    (* FET models: nfet/pfet resolve to the nominal 4-GNR device at the
       paper's operating point B; cmos22n/cmos22p to the 22nm node. *)
    let models name =
      let gnr polarity =
        let table = Table_cache.get (Params.default ()) in
        let shift = Gnr_model.shift_for_vt table 0.13 in
        Some (Gnr_model.array_fet ~polarity ~vt_shift:shift [ table; table; table; table ])
      in
      match String.lowercase_ascii name with
      | "nfet" | "gnrn" -> gnr Gnr_model.N_type
      | "pfet" | "gnrp" -> gnr Gnr_model.P_type
      | "cmos22n" -> Some (Node.nfet Node.n22)
      | "cmos22p" -> Some (Node.pfet Node.n22)
      | _ -> None
    in
    let built = Spice_deck.build deck ~models in
    let print_state label state =
      Printf.printf "%s\n" label;
      (match probe with
      | Some name ->
        Printf.printf "  v(%s) = %.6g V\n" name (state.(built.Spice_deck.node_of name))
      | None ->
        Array.iteri (fun i v -> Printf.printf "  node %d: %.6g V\n" i v) state)
    in
    if deck.Spice_deck.analyses = [] then
      print_state "DC operating point:" (Mna.solve_dc built.Spice_deck.net)
    else
      List.iter
        (fun analysis ->
          match analysis with
          | Spice_deck.Tran { dt; t_stop } ->
            let wf = Mna.transient built.Spice_deck.net ~t_stop ~dt in
            Printf.printf ".tran %g %g\n" dt t_stop;
            let n = Array.length wf.Mna.times in
            let stride = max 1 (n / 20) in
            for k = 0 to n - 1 do
              if k mod stride = 0 || k = n - 1 then begin
                match probe with
                | Some name ->
                  Printf.printf "  t=%.4g  v(%s)=%.5g\n" wf.Mna.times.(k) name
                    wf.Mna.voltages.(k).(built.Spice_deck.node_of name)
                | None -> Printf.printf "  t=%.4g\n" wf.Mna.times.(k)
              end
            done
          | Spice_deck.Dc_sweep { source; start; stop; step } ->
            Printf.printf ".dc %s %g -> %g\n" source start stop;
            let node = built.Spice_deck.source_node source in
            ignore node;
            let v = ref start in
            while !v <= stop +. 1e-12 do
              (* Ground-referenced sweeps reuse the time-as-value trick is
                 not applicable here; rebuild cheaply per point. *)
              let deck' =
                { deck with
                  Spice_deck.cards =
                    List.map
                      (fun c ->
                        match c with
                        | Spice_deck.Source { name; node; wave = _ }
                          when String.equal name source ->
                          Spice_deck.Source { name; node; wave = Spice_deck.Dc !v }
                        | other -> other)
                      deck.Spice_deck.cards }
              in
              let b = Spice_deck.build deck' ~models in
              let state = Mna.solve_dc b.Spice_deck.net in
              (match probe with
              | Some name ->
                Printf.printf "  %s=%.4g  v(%s)=%.5g\n" source !v name
                  state.(b.Spice_deck.node_of name)
              | None -> Printf.printf "  %s=%.4g\n" source !v);
              v := !v +. step
            done)
        deck.Spice_deck.analyses
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a SPICE-dialect deck (R/C/V/M cards)")
    Term.(const run $ file_arg $ probe_arg)

(* roughness *)
let roughness_cmd =
  let sigma_arg =
    Arg.(value & opt float 0.03 & info [ "sigma" ] ~docv:"S" ~doc:"Relative hopping disorder.")
  in
  let corr_arg =
    Arg.(value & opt int 6 & info [ "corr" ] ~docv:"L" ~doc:"Correlation length (sites).")
  in
  let run index sigma corr =
    let s =
      Roughness.transmission_study ~gnr_index:index ~sigma ~corr_sites:corr ()
    in
    Printf.printf
      "N=%d, sigma=%.3g, corr=%d sites: <T> = %.4f +- %.4f (%.1f%% of ideal), Lloc ~ %s\n"
      index sigma corr s.Roughness.mean_transmission s.Roughness.std_transmission
      (100. *. s.Roughness.mean_ratio)
      (if Float.is_finite s.Roughness.localization_estimate then
         Printf.sprintf "%.0f nm" (s.Roughness.localization_estimate /. 1e-9)
       else "ballistic")
  in
  Cmd.v (Cmd.info "roughness" ~doc:"Edge-roughness transmission study")
    Term.(const run $ index_arg $ sigma_arg $ corr_arg)

(* ablations *)
let ablations_cmd =
  let run () = Ablations.print_all Format.std_formatter in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablation studies")
    Term.(const run $ const ())

(* latch-write *)
let latch_write_cmd =
  let pulse_arg =
    Arg.(value & opt float 20e-12 & info [ "pulse" ] ~docv:"SECONDS" ~doc:"Write pulse width.")
  in
  let worst_arg =
    Arg.(value & flag & info [ "worst" ] ~doc:"Use the worst-case variant latch.")
  in
  let run pulse worst =
    let n_spec, p_spec =
      if worst then
        ({ Variation.gnr_index = 9; charge = 1. }, { Variation.gnr_index = 18; charge = -1. })
      else (Variation.nominal_spec, Variation.nominal_spec)
    in
    let r =
      Variation.latch_write ~n_spec ~p_spec ~all_four:worst ~pulse_width:pulse ()
    in
    Printf.printf "pulse %.3g s on %s latch: %s (settled %.3g s)\n" pulse
      (if worst then "worst-case" else "nominal")
      (if r.Variation.flipped then "WRITE OK" else "write failed")
      r.Variation.settle;
    let wmin = Variation.minimum_write_pulse ~n_spec ~p_spec ~all_four:worst () in
    Printf.printf "minimum write pulse: %.3g s\n" wmin
  in
  Cmd.v (Cmd.info "latch-write" ~doc:"Dynamic latch write experiment")
    Term.(const run $ pulse_arg $ worst_arg)

(* obs-report *)
let obs_report_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the snapshot as JSON instead of a table.")
  in
  let run index json =
    (* A deliberately small instrumented workload: a short warm-started
       I-V sweep on a reduced-length device touches the SCF, NEGF, Poisson
       and domain-pool layers; energy_step/margin are coarsened so the
       report runs in seconds. *)
    let p =
      {
        (Params.default ~gnr_index:index ()) with
        Params.channel_length = 6e-9;
        energy_step = 8e-3;
        energy_margin = 0.3;
      }
    in
    let init = ref None in
    Array.iter
      (fun vg ->
        let s = Scf.solve ?init:!init p ~vg ~vd:0.3 in
        init := Some s.Scf.potential)
      (Vec.linspace 0. 0.4 3);
    let snap = Obs.snapshot () in
    if json then print_string (Obs.to_json ~indent:"  " snap)
    else Format.printf "%a@." Obs.pp snap;
    if not (Obs.enabled Obs.global) then
      prerr_endline
        "note: observability is disabled (GNRFET_OBS=0); all metrics read zero"
  in
  Cmd.v
    (Cmd.info "obs-report"
       ~doc:"Run a small instrumented SCF workload and print the observability snapshot")
    Term.(const run $ index_arg $ json_arg)

(* robust-report *)
let robust_report_cmd =
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Fault campaign to arm for the workload \
             (site[@prob|#hit[-hit]|%every],...[:seed], see docs/ROBUST.md). \
             Default: scf.charge#1:1, which kills the first charge \
             evaluation and forces one ladder escalation.  Pass an empty \
             string to run clean.  GNRFET_FAULT, when set, wins unless \
             this flag is given.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Also emit the full obs snapshot as JSON after the report.")
  in
  let rung_name = function
    | Robust.Scf.Anderson -> "anderson"
    | Robust.Scf.Damped_restart -> "damped-restart"
    | Robust.Scf.Linear_slow -> "linear-slow"
    | Robust.Scf.Neighbor_continuation -> "neighbor"
  in
  let run index fault json =
    (match fault with
    | Some "" -> Robust.Fault.disarm ()
    | Some spec -> begin
      match Robust.Fault.arm spec with
      | () -> ()
      | exception Invalid_argument msg ->
        prerr_endline msg;
        exit 1
    end
    | None ->
      if not (Robust.Fault.active ()) then Robust.Fault.arm "scf.charge#1:1");
    (* Same reduced device as obs-report: a short warm-started sweep
       through the escalation ladder, with the last converged point
       offered as the neighbor-continuation rung. *)
    let p =
      {
        (Params.default ~gnr_index:index ()) with
        Params.channel_length = 6e-9;
        energy_step = 8e-3;
        energy_margin = 0.3;
      }
    in
    let init = ref None and neighbor = ref None in
    Array.iter
      (fun vg ->
        let o =
          Robust.Scf.solve_robust ?init:!init ?neighbor:!neighbor p ~vg ~vd:0.3
        in
        let attempts =
          List.map
            (fun (a : Robust.Scf.attempt) ->
              match (a.status, a.error) with
              | Some Scf.Converged, _ ->
                Printf.sprintf "%s: converged in %d" (rung_name a.rung)
                  a.iterations
              | Some _, _ ->
                Printf.sprintf "%s: unconverged (residual %.2g)"
                  (rung_name a.rung) a.residual
              | None, err ->
                Printf.sprintf "%s: raised %s" (rung_name a.rung)
                  (Option.value err ~default:"?"))
            o.Robust.Scf.attempts
        in
        Printf.printf "vg=%.2f  %s\n%!" vg (String.concat " -> " attempts);
        match o.Robust.Scf.solution with
        | Some s ->
          init := Some s.Scf.potential;
          if s.Scf.status = Scf.Converged then neighbor := Some s.Scf.potential
        | None -> ())
      (Vec.linspace 0. 0.4 3);
    Format.printf "%a" Robust.Report.pp (Robust.Report.collect ());
    if json then print_string (Obs.to_json ~indent:"  " (Obs.snapshot ()));
    if not (Obs.enabled Obs.global) then
      prerr_endline
        "note: observability is disabled (GNRFET_OBS=0); all counters read zero"
  in
  Cmd.v
    (Cmd.info "robust-report"
       ~doc:
         "Run a small SCF workload under a fault campaign and print the \
          escalation-ladder traffic and robustness counters")
    Term.(const run $ index_arg $ fault_arg $ json_arg)

(* serve *)
let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(
    value
    & opt string "_tables/gnrfet-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve one request per stdin line, one response per stdout line, \
             until EOF or a shutdown op (the transport the tests and CI \
             drive).  Without this flag the daemon listens on --socket.")
  in
  let lru_arg =
    Arg.(
      value & opt int 32
      & info [ "lru" ] ~docv:"K" ~doc:"In-memory LRU capacity (tables).")
  in
  let queue_arg =
    Arg.(
      value & opt int 8
      & info [ "queue" ] ~docv:"K"
          ~doc:"Waiting generation jobs before busy rejection.")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"K" ~doc:"Generation worker threads.")
  in
  let retry_arg =
    Arg.(
      value & opt int 250
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Retry hint attached to busy rejections.")
  in
  let run stdio socket lru queue workers retry =
    let config =
      {
        Serve.default_config with
        Serve.lru_capacity = lru;
        queue_capacity = queue;
        workers;
        retry_after_ms = retry;
      }
    in
    let server = Serve.create ~config () in
    if stdio then Serve.serve_stdio server stdin stdout
    else begin
      Printf.eprintf "gnrfet-serve: listening on %s\n%!" socket;
      Serve.serve_unix server ~path:socket
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Concurrent table-serving daemon: newline-delimited JSON over a \
          Unix socket (or stdio), with single-flight coalescing and bounded \
          backpressure (docs/SERVE.md)")
    Term.(
      const run $ stdio_arg $ socket_arg $ lru_arg $ queue_arg $ workers_arg
      $ retry_arg)

(* query *)
let query_cmd =
  let op_arg =
    let doc = "Operation: ping, stats, table, iv or shutdown." in
    Arg.(value & pos 0 string "ping" & info [] ~docv:"OP" ~doc)
  in
  let vg_arg =
    Arg.(value & opt float 0.5 & info [ "vg" ] ~docv:"V" ~doc:"Gate bias (iv op).")
  in
  let vd_arg =
    Arg.(value & opt float 0.5 & info [ "vd" ] ~docv:"V" ~doc:"Drain bias (iv op).")
  in
  let run socket op index charge vg vd =
    let params = params_of index charge in
    let op =
      match op with
      | "ping" -> Serve_protocol.Ping
      | "stats" -> Serve_protocol.Stats
      | "shutdown" -> Serve_protocol.Shutdown
      | "table" -> Serve_protocol.Table { params; grid = None }
      | "iv" -> Serve_protocol.Iv { params; grid = None; vg; vd }
      | other ->
        Printf.eprintf "unknown op %S (ping|stats|table|iv|shutdown)\n" other;
        exit 2
    in
    let client = Serve_client.connect ~path:socket () in
    Fun.protect
      ~finally:(fun () -> Serve_client.close client)
      (fun () ->
        let r = Serve_client.request client { Serve_protocol.id = Some 0; op } in
        match r.Serve_protocol.result with
        | Ok result -> print_endline (Sjson.to_string result)
        | Error e ->
          Printf.eprintf "error (%s): %s\n" e.Serve_protocol.kind
            e.Serve_protocol.detail;
          exit 1)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"One-shot client for a running serve daemon")
    Term.(
      const run $ socket_arg $ op_arg $ index_arg $ charge_arg $ vg_arg $ vd_arg)

(* campaign: crash-safe resumable device campaigns (docs/CAMPAIGN.md) *)
let campaign_cmd =
  let spec_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Campaign spec (JSON; grammar in docs/CAMPAIGN.md).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead checkpoint journal.  Required for resume; without \
             it a run is fast but a crash loses everything.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the final report JSON here (atomically) instead of \
             stdout.")
  in
  let serve_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve" ] ~docv:"SOCKET"
          ~doc:
            "Fetch device tables from the serve daemon at this Unix socket \
             (hardened client: deadlines, retry honoring retry_after_ms, \
             circuit breaker) instead of generating locally.")
  in
  let checkpoint_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"fsync the journal every K samples (default 1).")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "With --serve: fail samples on client errors instead of \
             degrading to local generation.")
  in
  let load_spec path =
    let src =
      match In_channel.with_open_bin path In_channel.input_all with
      | s -> s
      | exception Sys_error msg ->
        Printf.eprintf "campaign: cannot read spec: %s\n" msg;
        exit 2
    in
    match Result.bind (Sjson.parse src) Campaign.spec_of_json with
    | Ok spec -> spec
    | Error msg ->
      Printf.eprintf "campaign: bad spec %s: %s\n" path msg;
      exit 2
  in
  let exec ~resume spec_path journal out serve checkpoint no_fallback =
    let spec = load_spec spec_path in
    let kill_after =
      Option.bind (Sys.getenv_opt "GNRFET_CAMPAIGN_KILL_AFTER")
        int_of_string_opt
    in
    let with_executor f =
      match serve with
      | None -> f None
      | Some socket ->
        let client = Serve_client.connect ~path:socket () in
        let fallback = if no_fallback then None else Some Ctx.default in
        Fun.protect
          ~finally:(fun () -> Serve_client.close client)
          (fun () -> f (Some (Campaign.serve_executor ?fallback client ())))
    in
    match
      with_executor (fun executor ->
          Campaign.run ?executor ?journal ~resume ~checkpoint_every:checkpoint
            ?kill_after spec)
    with
    | outcome ->
      (match outcome.Campaign.torn with
      | Some reason ->
        Printf.eprintf "campaign: dropped torn journal tail (%s)\n"
          (Robust_error.torn_reason_to_string reason)
      | None -> ());
      if outcome.Campaign.duplicates > 0 then
        Printf.eprintf "campaign: skipped %d duplicate journal record(s)\n"
          outcome.Campaign.duplicates;
      Printf.eprintf
        "campaign %s: %d samples (%d replayed, %d evaluated, %d quarantined)\n"
        spec.Campaign.name outcome.Campaign.report.Campaign.r_total
        outcome.Campaign.resumed outcome.Campaign.evaluated
        (List.length outcome.Campaign.report.Campaign.r_quarantined);
      (match out with
      | Some path -> Campaign.write_report ~path outcome.Campaign.report
      | None ->
        print_endline
          (Sjson.to_string (Campaign.report_to_json outcome.Campaign.report)))
    | exception Robust_error.Error e ->
      Printf.eprintf "campaign: %s\n" (Robust_error.to_string e);
      exit 1
    | exception Invalid_argument msg ->
      Printf.eprintf "campaign: %s\n" msg;
      exit 2
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a campaign from scratch (an existing journal at --journal \
            is overwritten)")
      Term.(
        const (fun a b c d e f -> exec ~resume:false a b c d e f)
        $ spec_arg $ journal_arg $ out_arg $ serve_arg $ checkpoint_arg
        $ no_fallback_arg)
  in
  let resume_cmd =
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Replay the journal's valid prefix (dropping a torn tail with a \
            typed reason) and continue from the first unrecorded sample; \
            the final report is bit-identical to an uninterrupted run")
      Term.(
        const (fun a b c d e f -> exec ~resume:true a b c d e f)
        $ spec_arg $ journal_arg $ out_arg $ serve_arg $ checkpoint_arg
        $ no_fallback_arg)
  in
  let status_cmd =
    let journal_req =
      Arg.(
        required
        & opt (some string) None
        & info [ "journal" ] ~docv:"FILE" ~doc:"Journal to inspect.")
    in
    let spec_opt =
      Arg.(
        value
        & opt (some string) None
        & info [ "spec" ] ~docv:"FILE"
            ~doc:"Verify the journal against this spec and report progress.")
    in
    let run journal spec_path =
      let spec = Option.map load_spec spec_path in
      match Campaign.status ~journal ?spec () with
      | st ->
        Printf.printf "journal:     %s\n" journal;
        Printf.printf "spec_hash:   %08x\n" st.Campaign.st_spec_hash;
        Printf.printf "recorded:    %d%s\n" st.Campaign.st_recorded
          (match st.Campaign.st_total with
          | Some total -> Printf.sprintf " / %d" total
          | None -> "");
        Printf.printf "completed:   %d\n" st.Campaign.st_completed;
        Printf.printf "quarantined: %d\n" st.Campaign.st_quarantined;
        Printf.printf "duplicates:  %d\n" st.Campaign.st_duplicates;
        (match st.Campaign.st_torn with
        | Some reason ->
          Printf.printf "torn:        %s\n"
            (Robust_error.torn_reason_to_string reason)
        | None -> Printf.printf "torn:        none\n")
      | exception Robust_error.Error e ->
        Printf.eprintf "campaign: %s\n" (Robust_error.to_string e);
        exit 1
      | exception Sys_error msg ->
        Printf.eprintf "campaign: cannot read journal: %s\n" msg;
        exit 2
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:"Inspect a checkpoint journal without running anything")
      Term.(const run $ journal_req $ spec_opt)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Crash-safe resumable device campaigns with a write-ahead \
          checkpoint journal (docs/CAMPAIGN.md)")
    [ run_cmd; resume_cmd; status_cmd ]

(* Static analysis over the tree, sharing Gnrlint_lib.Engine with the
   standalone tools/gnrlint executable (same flags, same rules, same
   versioned baseline; docs/LINT.md). *)
let lint_cmd =
  let dirs_arg =
    Arg.(
      value & pos_all string [ "lib"; "bin"; "test" ]
      & info [] ~docv:"DIR" ~doc:"Directories to lint (default: lib bin test).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", Gnrlint_lib.Engine.Text); ("json", Gnrlint_lib.Engine.Json); ("sarif", Gnrlint_lib.Engine.Sarif) ])
          Gnrlint_lib.Engine.Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json or sarif.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) (Some "tools/gnrlint/baseline.txt")
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Versioned accepted-findings baseline (pass an empty string for none).")
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update-baseline" ] ~doc:"Rewrite the baseline with the current findings.")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to FILE instead of stdout.")
  in
  let summary_arg =
    Arg.(
      value & flag & info [ "summary" ] ~doc:"Print a per-rule summary table to stderr.")
  in
  let run dirs format baseline update_baseline output summary =
    let baseline_path = match baseline with Some "" -> None | b -> b in
    exit
      (Gnrlint_lib.Engine.run
         {
           Gnrlint_lib.Engine.default_config with
           Gnrlint_lib.Engine.dirs;
           format;
           baseline_path;
           update_baseline;
           output;
           summary;
         })
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis (gnrlint): per-file numerics rules plus whole-repo \
          domain-race/nondet-path/lock-safety/span-balance analysis")
    Term.(
      const run $ dirs_arg $ format_arg $ baseline_arg $ update_arg $ output_arg
      $ summary_arg)

let main =
  let info =
    Cmd.info "gnrfet_cli" ~version:"1.0.0"
      ~doc:"Technology exploration for graphene nanoribbon FETs (DAC 2008 reproduction)"
  in
  Cmd.group info
    [ bands_cmd; iv_cmd; vt_cmd; explore_cmd; tables_cmd; experiment_cmd;
      mc_cmd; export_cmd; simulate_cmd; roughness_cmd; ablations_cmd;
      latch_write_cmd; obs_report_cmd; robust_report_cmd; serve_cmd;
      query_cmd; campaign_cmd; lint_cmd ]

let () = exit (Cmd.eval main)
