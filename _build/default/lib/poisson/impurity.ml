type t = { charge : float; position : float; distance : float }

let paper_default ~charge =
  { charge; position = 2.0e-9; distance = 0.4e-9 }

let screening_length = 2.5e-9

let effective_eps_r = 4.0

(* Coulomb prefactor e/(4 pi eps0) = 1.439964 V nm. *)
let coulomb_vnm = Const.q /. (4. *. Float.pi *. Const.eps0) /. Const.nm

let onsite_shift imp x =
  let r_nm =
    Float.hypot ((x -. imp.position) /. Const.nm) (imp.distance /. Const.nm)
  in
  let r_nm = Float.max r_nm 0.1 in
  let screen = exp (-.(r_nm *. Const.nm) /. screening_length) in
  (* A negative impurity charge repels electrons: it raises the local
     mid-gap energy u (u = -V). *)
  -.imp.charge *. coulomb_vnm /. (effective_eps_r *. r_nm) *. screen

let profile imp positions = Array.map (onsite_shift imp) positions
