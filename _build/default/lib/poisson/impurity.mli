(** Gate-screened Coulomb potential of a fixed charge impurity in the gate
    oxide.

    The paper places a single fixed charge of ±q or ±2q in the oxide,
    0.4 nm above the GNR surface and close to the source contact, and notes
    that its field is screened by the gates (pitch > oxide thickness).  We
    model the potential seen by the channel as a Yukawa-screened Coulomb
    term added to the chain on-site energies (the self-consistent loop then
    provides the free-carrier response); DESIGN.md records this
    substitution and the 3D solver cross-check. *)

type t = {
  charge : float;  (** in units of |q|; negative = electron-repelling *)
  position : float;  (** along the channel, m from the source contact *)
  distance : float;  (** from the GNR plane, m (paper: 0.4 nm) *)
}

val paper_default : charge:float -> t
(** Impurity at 0.4 nm from the GNR surface, 1.5 nm from the source
    contact (inside the source Schottky junction region, where the paper
    notes the effect is strongest). *)

val screening_length : float
(** Gate screening length (m): the oxide thickness, 1.5 nm. *)

val effective_eps_r : float
(** Effective relative permittivity seen by the impurity (oxide plus
    graphene polarization); calibrated so a ±2q impurity shifts the source
    barrier by a few tenths of an eV as in Fig 5(a). *)

val onsite_shift : t -> float -> float
(** [onsite_shift imp x] is the mid-gap energy shift (eV, sign following
    the u = -V convention: negative impurity charge raises u) at channel
    position [x] (m). *)

val profile : t -> float array -> float array
(** Shift sampled at the given site positions. *)
