lib/poisson/stack2d.mli:
