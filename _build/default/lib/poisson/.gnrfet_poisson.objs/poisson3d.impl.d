lib/poisson/poisson3d.ml: Array Const List Sparse
