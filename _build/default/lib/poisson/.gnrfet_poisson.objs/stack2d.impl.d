lib/poisson/stack2d.ml: Array Banded Const
