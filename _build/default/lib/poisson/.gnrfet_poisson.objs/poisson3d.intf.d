lib/poisson/poisson3d.mli:
