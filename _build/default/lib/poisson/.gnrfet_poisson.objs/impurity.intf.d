lib/poisson/impurity.mli:
