lib/poisson/impurity.ml: Array Const Float
