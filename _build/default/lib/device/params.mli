(** Intrinsic GNRFET device description (one GNR of the array channel).

    Defaults follow Section 2 of the paper: 15 nm armchair-edge GNR channel,
    1.5 nm SiO2 double gate, metal source/drain with mid-gap Fermi-level
    pinning (Schottky barriers of Eg/2), 300 K. *)

type t = {
  gnr_index : int;  (** A-GNR index N (9, 12, 15, 18 in the paper) *)
  channel_length : float;  (** m (paper: 15 nm) *)
  oxide_thickness : float;  (** m per gate (paper: 1.5 nm SiO2) *)
  oxide_eps_r : float;  (** 3.9 *)
  temperature : float;  (** K *)
  n_modes : int;  (** subbands kept in mode space *)
  gate_offset : float;
      (** gate work-function offset (V): shifts the I-V curve along the VG
          axis; used for VT tuning (Section 2 / Fig 2(b)) *)
  contact_gamma : float;
      (** wide-band metal contact broadening (eV); sets contact
          transparency *)
  width_fringe : float;
      (** fringe width (m) added to the GNR width when spreading the line
          charge into the 2D electrostatic sheet *)
  impurities : Impurity.t list;  (** fixed oxide charges *)
  contact_style : Stack2d.contact_style;
      (** end-bonded ([Point], default) or wrap-around ([Plane]) metal
          contacts; see {!Stack2d} *)
  energy_step : float;  (** NEGF energy-grid spacing, eV *)
  energy_margin : float;  (** grid margin beyond the contact windows, eV *)
}

val default : ?gnr_index:int -> unit -> t
(** The paper's nominal device: N = 12, no impurities, zero offset,
    contact broadening 1.0 eV (calibrated; see EXPERIMENTS.md). *)

val with_impurity_charge : t -> float -> t
(** Add the paper's standard impurity (0.4 nm above the GNR near the
    source) with the given charge in units of |q| (±1, ±2). *)

val band_gap : t -> float
(** Fundamental gap of the channel GNR, eV. *)

val schottky_barrier : t -> float
(** [Eg / 2]: both electron and hole barrier heights. *)

val effective_width : t -> float
(** Electrostatic charge-spreading width, m. *)

val cache_key : t -> string
(** Stable content key identifying the device for the table cache. *)

val pp : Format.formatter -> t -> unit
