type spec = { sigma : float; corr_sites : int }

(* Exponentially correlated Gaussian sequence: AR(1) with the stationary
   variance normalized back to sigma^2. *)
let correlated_sequence rng ~sigma ~corr_sites n =
  if corr_sites < 1 then invalid_arg "Roughness: corr_sites must be >= 1";
  let rho = exp (-1. /. float_of_int corr_sites) in
  let drive = sigma *. sqrt (1. -. (rho *. rho)) in
  let xs = Array.make n 0. in
  let prev = ref (Rng.gaussian rng ~mean:0. ~sigma) in
  for i = 0 to n - 1 do
    xs.(i) <- !prev;
    prev := (rho *. !prev) +. Rng.gaussian rng ~mean:0. ~sigma:drive
  done;
  xs

let perturb rng spec (chain : Rgf.chain) =
  let nb = Array.length chain.Rgf.hopping in
  let xi = correlated_sequence rng ~sigma:spec.sigma ~corr_sites:spec.corr_sites nb in
  {
    chain with
    Rgf.hopping = Array.mapi (fun i t -> t *. (1. +. xi.(i))) chain.Rgf.hopping;
  }

type study = {
  sigma : float;
  mean_transmission : float;
  std_transmission : float;
  mean_ratio : float;
  localization_estimate : float;
}

let ideal_chain ~gnr_index ~n_sites =
  let ms = Modespace.reduce gnr_index in
  let m = ms.Modespace.modes.(0) in
  let onsite = Array.make n_sites 0. in
  let hopping =
    Array.init (n_sites - 1) (fun i ->
        if i mod 2 = 0 then m.Modespace.t1 else m.Modespace.t2)
  in
  let sigma_of e =
    let gs =
      Self_energy.dimer_surface ~t1:m.Modespace.t1 ~t2:m.Modespace.t2 ~onsite:0. e
    in
    Complex.mul { Complex.re = m.Modespace.t2 ** 2.; im = 0. } gs
  in
  (m, fun e ->
    { Rgf.onsite; hopping; sigma_l = sigma_of e; sigma_r = sigma_of e })

let transmission_study ?(seed = 7) ?(realizations = 40) ?(n_sites = 140) ?energies
    ~gnr_index ~sigma ~corr_sites () =
  let m, chain_at = ideal_chain ~gnr_index ~n_sites in
  let energies =
    match energies with
    | Some es -> es
    | None ->
      (* Five energies across the lower half of the first subband. *)
      let lo = m.Modespace.delta +. 0.02 in
      let hi = m.Modespace.delta +. 0.3 in
      Vec.linspace lo hi 5
  in
  let ideal_t =
    Vec.mean (Array.map (fun e -> Rgf.transmission (chain_at e) e) energies)
  in
  let rng = Rng.create seed in
  let samples =
    Array.init realizations (fun _ ->
        (* One disorder realization, shared across the energy average. *)
        let rng_r = Rng.split rng in
        let xi = correlated_sequence rng_r ~sigma ~corr_sites (n_sites - 1) in
        Vec.mean
          (Array.map
             (fun e ->
               let base = chain_at e in
               let chain =
                 {
                   base with
                   Rgf.hopping =
                     Array.mapi (fun i t -> t *. (1. +. xi.(i))) base.Rgf.hopping;
                 }
               in
               Rgf.transmission chain e)
             energies))
  in
  let stats = Stats.summarize samples in
  let mean_ratio = stats.Stats.mean /. Float.max ideal_t 1e-30 in
  let length = float_of_int n_sites *. Modespace.site_spacing in
  let ln_t = Vec.mean (Array.map (fun t -> log (Float.max t 1e-30)) samples) in
  let localization_estimate =
    if ln_t >= -1e-6 then infinity else -2. *. length /. ln_t
  in
  {
    sigma;
    mean_transmission = stats.Stats.mean;
    std_transmission = stats.Stats.std;
    mean_ratio;
    localization_estimate;
  }
