(** Threshold-voltage extraction using the standard MOS linear-extrapolation
    method of Fig 2(b): at low VD, extrapolate the I–V tangent at the point
    of maximum transconductance down to the VG axis. *)

val extract_from_curve : vg:float array -> id:float array -> float
(** [extract_from_curve ~vg ~id] returns the tangent intercept
    VGstar - I(VGstar)/gm(VGstar), where VGstar maximizes the
    (spline-smoothed) transconductance.  Requires at least four samples. *)

val extract : ?vd:float -> ?vg_max:float -> ?n:int -> Params.t -> float
(** Run a low-VD sweep (default VD = 0.05 V, VG from the minimum-leakage
    point up to [vg_max] = 0.75 V, [n] = 16 samples) and extract VT of the
    n-branch.  The gate work-function offset of the device shifts the
    result by the same amount, as the paper notes. *)

val extract_from_table : Iv_table.t -> float
(** Extraction using the lowest positive VD row of an existing table. *)
