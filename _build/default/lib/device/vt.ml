let extract_from_curve ~vg ~id =
  let n = Array.length vg in
  if n < 4 then invalid_arg "Vt.extract_from_curve: need at least 4 samples";
  if Array.length id <> n then invalid_arg "Vt.extract_from_curve: length mismatch";
  let sp = Interp.spline ~xs:vg ~ys:id in
  (* Locate max gm on a dense grid, then extrapolate the tangent. *)
  let dense = Vec.linspace vg.(0) vg.(n - 1) 201 in
  let gm = Array.map (fun v -> Interp.spline_deriv sp v) dense in
  let k = Vec.argmax gm in
  let v_star = dense.(k) in
  let g_star = gm.(k) in
  if g_star <= 0. then invalid_arg "Vt.extract_from_curve: non-increasing branch";
  v_star -. (Interp.spline_eval sp v_star /. g_star)

let extract ?(vd = 0.05) ?(vg_max = 0.75) ?(n = 16) p =
  (* Sweep the electron branch: from the ambipolar minimum (~VD/2 shifted
     by the gate offset) up to vg_max. *)
  let vg_min = (vd /. 2.) -. p.Params.gate_offset in
  let vg = Vec.linspace vg_min vg_max n in
  let init = ref None in
  let id =
    Array.map
      (fun v ->
        let s = Scf.solve ?init:!init p ~vg:v ~vd in
        init := Some s.Scf.potential;
        s.Scf.current)
      vg
  in
  extract_from_curve ~vg ~id

let extract_from_table (t : Iv_table.t) =
  (* Lowest strictly positive VD row. *)
  let jd =
    let rec find j =
      if j >= Array.length t.vd then invalid_arg "Vt.extract_from_table: no vd > 0"
      else if t.vd.(j) > 1e-9 then j
      else find (j + 1)
    in
    find 0
  in
  let vd = t.vd.(jd) in
  (* Electron branch only: start at the ambipolar minimum. *)
  let start_v = vd /. 2. in
  let points =
    Array.to_list
      (Array.mapi (fun ig v -> (v, t.current.(ig).(jd))) t.vg)
  in
  let branch = List.filter (fun (v, _) -> v >= start_v -. 1e-9) points in
  let vg = Array.of_list (List.map fst branch) in
  let id = Array.of_list (List.map snd branch) in
  extract_from_curve ~vg ~id
