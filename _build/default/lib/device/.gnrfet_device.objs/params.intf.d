lib/device/params.mli: Format Impurity Stack2d
