lib/device/scf.ml: Array Const Float Hashtbl Impurity List Mixing Modespace Mutex Observables Params Printf Rgf Self_energy Stack2d Vec
