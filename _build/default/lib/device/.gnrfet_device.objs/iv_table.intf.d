lib/device/iv_table.mli: Params
