lib/device/scf.mli: Params
