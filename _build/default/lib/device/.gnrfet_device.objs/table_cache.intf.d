lib/device/table_cache.mli: Iv_table Params
