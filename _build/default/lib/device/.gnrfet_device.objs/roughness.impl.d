lib/device/roughness.ml: Array Complex Float Modespace Rgf Rng Self_energy Stats Vec
