lib/device/vt.ml: Array Interp Iv_table List Params Scf Vec
