lib/device/iv_table.ml: Array Buffer Hashtbl Interp Mutex Params Printf Scf Vec
