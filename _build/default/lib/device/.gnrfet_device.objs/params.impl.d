lib/device/params.ml: Bands Const Format Impurity Lattice List Printf Stack2d String
