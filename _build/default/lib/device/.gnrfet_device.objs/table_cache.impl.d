lib/device/table_cache.ml: Array Digest Filename Hashtbl Iv_table List Marshal Mutex Option Parallel Params Printf String Sys Unix
