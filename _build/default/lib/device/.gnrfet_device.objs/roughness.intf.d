lib/device/roughness.mli: Rgf Rng
