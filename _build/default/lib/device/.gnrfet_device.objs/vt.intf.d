lib/device/vt.mli: Iv_table Params
