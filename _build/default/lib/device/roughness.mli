(** Edge-roughness disorder for mode-space chains — the variability
    mechanism of Yoon & Guo (APL 91, 073103), which the paper cites as the
    natural next defect to study with this framework (Section 4).

    Edge roughness locally changes the ribbon width, i.e. the local
    band gap.  In the mode-space picture a local gap change is a local
    change of |t1 − t2|, so roughness is modeled as correlated relative
    disorder on the chain hoppings: each bond carries
    [t_i -> t_i * (1 + ξ_i)] with ξ a zero-mean Gaussian sequence of
    amplitude [sigma] and exponential correlation length [corr_sites]
    (roughly the roughness island length in units of half unit cells). *)

type spec = {
  sigma : float;  (** relative hopping disorder amplitude (e.g. 0.02) *)
  corr_sites : int;  (** correlation length in chain sites (>= 1) *)
}

val perturb : Rng.t -> spec -> Rgf.chain -> Rgf.chain
(** Fresh disorder realization applied to a chain's hoppings (on-site
    energies and self-energies untouched). *)

type study = {
  sigma : float;
  mean_transmission : float;  (** band-average T over the realizations *)
  std_transmission : float;
  mean_ratio : float;  (** vs the ideal chain's band-average T *)
  localization_estimate : float;
      (** crude localization length (m): -2 L / <ln T> at the band
          average, Inf when transport stays ballistic *)
}

val transmission_study :
  ?seed:int ->
  ?realizations:int ->
  ?n_sites:int ->
  ?energies:float array ->
  gnr_index:int ->
  sigma:float ->
  corr_sites:int ->
  unit ->
  study
(** Monte Carlo over disorder realizations of the lowest-subband chain of
    the given A-GNR (defaults: seed 7, 40 realizations, 140 sites ≈ 15 nm,
    five energies spread over the first subband). *)
