type t = {
  gnr_index : int;
  channel_length : float;
  oxide_thickness : float;
  oxide_eps_r : float;
  temperature : float;
  n_modes : int;
  gate_offset : float;
  contact_gamma : float;
  width_fringe : float;
  impurities : Impurity.t list;
  contact_style : Stack2d.contact_style;
  energy_step : float;
  energy_margin : float;
}

let default ?(gnr_index = 12) () =
  {
    gnr_index;
    channel_length = 15e-9;
    oxide_thickness = 1.5e-9;
    oxide_eps_r = Const.eps_sio2;
    temperature = Const.room_temperature;
    n_modes = 2;
    gate_offset = 0.;
    contact_gamma = 1.0;
    width_fringe = 0.5e-9;
    impurities = [];
    contact_style = Stack2d.Point;
    energy_step = 2e-3;
    energy_margin = 0.45;
  }

let with_impurity_charge t charge =
  { t with impurities = Impurity.paper_default ~charge :: t.impurities }

let band_gap t = Bands.gap_of_index t.gnr_index

let schottky_barrier t = band_gap t /. 2.

let effective_width t = Lattice.width t.gnr_index +. t.width_fringe

let cache_key t =
  let imp_part =
    (* The impurity-model constants are part of the physics: key on them
       so model recalibrations invalidate only the affected tables. *)
    String.concat ";"
      (List.map
         (fun (i : Impurity.t) ->
           Printf.sprintf "%g@%g/%g/e%g/s%g" i.charge i.position i.distance
             Impurity.effective_eps_r Impurity.screening_length)
         t.impurities)
  in
  let style =
    match t.contact_style with Stack2d.Point -> "pt" | Stack2d.Plane -> "pl"
  in
  Printf.sprintf "v3-%s-N%d-L%g-tox%g-eps%g-T%g-m%d-off%g-g%g-wf%g-de%g-em%g-[%s]"
    style t.gnr_index t.channel_length t.oxide_thickness t.oxide_eps_r t.temperature
    t.n_modes t.gate_offset t.contact_gamma t.width_fringe t.energy_step
    t.energy_margin imp_part

let pp ppf t =
  Format.fprintf ppf
    "GNRFET(N=%d, L=%.1fnm, tox=%.2fnm, T=%gK, offset=%.3gV, gamma=%.2geV, %d impurities)"
    t.gnr_index
    (t.channel_length /. Const.nm)
    (t.oxide_thickness /. Const.nm)
    t.temperature t.gate_offset t.contact_gamma
    (List.length t.impurities)
