(** Fig 2(b): threshold-voltage extraction at low VD, with and without a
    gate work-function offset — the offset shifts VT by an equal amount. *)

type result = {
  vt_no_offset : float;  (** V (paper: ≈ 0.3 V) *)
  vt_with_offset : float;  (** V with 0.2 V offset (paper: ≈ 0.1 V) *)
  offset : float;
  curve_no_offset : float array * float array;  (** (VG, ID) at VD=0.05 *)
  curve_with_offset : float array * float array;
}

val run : ?offset:float -> unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
