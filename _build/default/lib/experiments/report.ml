let heading ppf title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '-')

let series ppf ~name ~xs ~ys =
  Format.fprintf ppf "%s@." name;
  Array.iteri
    (fun i x -> Format.fprintf ppf "  %10.4g  %12.5g@." x ys.(i))
    xs

let pct_pair ppf (one, all) =
  Format.fprintf ppf "%.0f,%.0f" one all

let prefixes =
  [ (1e12, "T"); (1e9, "G"); (1e6, "M"); (1e3, "k"); (1., "");
    (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f");
    (1e-18, "a") ]

let si v =
  if v = 0. then "0 "
  else begin
    let mag = Float.abs v in
    let scale, prefix =
      match List.find_opt (fun (s, _) -> mag >= s) prefixes with
      | Some sp -> sp
      | None -> (1e-18, "a")
    in
    Printf.sprintf "%.3g %s" (v /. scale) prefix
  end
