(** Tables 2, 3 and 4: inverter delay, static/dynamic power and SNM under
    width variations, charge impurities, and their combination, in the
    paper's "one-of-four, all-four" percent format. *)

type which = Width | Impurity | Combined

type result = { which : which; table : Variation.table }

val run : ?op:Variation.op_point -> which -> result

val print : Format.formatter -> result -> unit

val worst_case_summary : result -> string
(** One-line summary of the worst degradations (for EXPERIMENTS.md). *)

val bench_kernel : unit -> float
