type result = {
  surface : Explore.surface;
  min_edp : Explore.operating_point;
  point_a : Explore.operating_point option;
  point_b : Explore.operating_point option;
  point_c : Explore.operating_point option;
  freq_3ghz_contour : Contour.polyline list;
  snm_contours : (float * Contour.polyline list) list;
}

let run ?(nv = 13) () =
  let table = Table_cache.get (Params.default ()) in
  let surface =
    Explore.surface ~vdds:(Vec.linspace 0.1 0.7 nv) ~vts:(Vec.linspace 0. 0.3 nv)
      table
  in
  let min_edp = Explore.min_edp surface in
  let point_a = Explore.min_edp_at_frequency surface ~ghz:3. in
  let point_b = Explore.min_edp_at_frequency_and_snm surface ~ghz:3. ~snm:0.1 in
  let point_c =
    match point_b with
    | Some b -> Explore.same_edp_higher_vt surface ~like:b
    | None -> None
  in
  let freq_3ghz_contour = Explore.contours surface Explore.Frequency ~level:3e9 in
  let snm_contours =
    List.map
      (fun level -> (level, Explore.contours surface Explore.Snm_margin ~level))
      [ 0.05; 0.075; 0.1; 0.125 ]
  in
  { surface; min_edp; point_a; point_b; point_c; freq_3ghz_contour; snm_contours }

let print_grid ppf (s : Explore.surface) name value =
  Format.fprintf ppf "%s (rows: VDD top-down, cols: VT left-right)@." name;
  Format.fprintf ppf "        ";
  Array.iter (fun vt -> Format.fprintf ppf "%8.3f" vt) s.Explore.vts;
  Format.fprintf ppf "@.";
  let nvdd = Array.length s.Explore.vdds in
  for i = nvdd - 1 downto 0 do
    Format.fprintf ppf "VDD %.2f:" s.Explore.vdds.(i);
    Array.iter (fun p -> Format.fprintf ppf "%8.3g" (value p)) s.Explore.points.(i);
    Format.fprintf ppf "@."
  done

let print_op ppf label = function
  | Some (p : Explore.operating_point) ->
    Format.fprintf ppf "%s: VDD = %.3f V, VT = %.3f V, EDP = %.3g fJ-ps@." label
      p.Explore.vdd p.Explore.vt
      (p.Explore.value /. 1e-27)
  | None -> Format.fprintf ppf "%s: not found on grid@." label

let print ppf r =
  Report.heading ppf "Fig 3(b): EDP / frequency / SNM exploration (15-stage FO4 RO)";
  print_grid ppf r.surface "ln(EDP [aJ-ps])" Explore.edp_ln_aj_ps;
  print_grid ppf r.surface "Frequency [GHz]" (fun p -> p.Explore.frequency /. 1e9);
  print_grid ppf r.surface "SNM [V]" (fun p -> p.Explore.snm);
  Format.fprintf ppf "minimum EDP: VDD = %.3f V, VT = %.3f V (paper: 0.15 V / 0.08 V)@."
    r.min_edp.Explore.vdd r.min_edp.Explore.vt;
  print_op ppf "point A (min EDP @ 3 GHz)          " r.point_a;
  print_op ppf "point B (3 GHz with SNM floor)     " r.point_b;
  print_op ppf "point C (same EDP, higher VT)      " r.point_c;
  Format.fprintf ppf "3 GHz frequency contour pieces: %d; SNM contour levels: %s@."
    (List.length r.freq_3ghz_contour)
    (String.concat ", "
       (List.map (fun (l, pls) -> Printf.sprintf "%.3g(%d)" l (List.length pls))
          r.snm_contours))

let bench_kernel () =
  let table = Table_cache.get (Params.default ()) in
  let s =
    Explore.surface ~vdds:(Vec.linspace 0.3 0.5 2) ~vts:(Vec.linspace 0.1 0.2 2)
      table
  in
  (Explore.min_edp s).Explore.value
