type result = {
  nominal : Variation.latch_study;
  single : Variation.latch_study;
  all : Variation.latch_study;
  static_power_ratio : float;
}

let run ?op () =
  let nominal =
    Variation.latch ?op ~n_spec:Variation.nominal_spec
      ~p_spec:Variation.nominal_spec ~all_four:false ()
  in
  let single = Variation.latch_worst_case ?op ~all_four:false () in
  let all = Variation.latch_worst_case ?op ~all_four:true () in
  {
    nominal;
    single;
    all;
    static_power_ratio = all.Variation.static_power /. nominal.Variation.static_power;
  }

let print_study ppf (s : Variation.latch_study) =
  Format.fprintf ppf "%s: SNM = %.3f V, Pstat = %.4g uW@." s.Variation.label
    s.Variation.snm
    (s.Variation.static_power /. 1e-6);
  let c1, _ = s.Variation.butterfly in
  let show = List.filteri (fun i _ -> i mod 10 = 0) c1 in
  Format.fprintf ppf "  branch 1 (VL, VR):";
  List.iter (fun (x, y) -> Format.fprintf ppf " (%.2f,%.3f)" x y) show;
  Format.fprintf ppf "@."

let print ppf r =
  Report.heading ppf "Fig 7: latch butterfly curves under variations and defects";
  print_study ppf r.nominal;
  print_study ppf r.single;
  print_study ppf r.all;
  Format.fprintf ppf
    "worst-case SNM: %.3f V (near-zero, paper: eye collapses); Pstat ratio = %.1fX (paper: >5X)@."
    r.all.Variation.snm r.static_power_ratio

let bench_kernel () =
  let s =
    Variation.latch ~n_spec:Variation.nominal_spec
      ~p_spec:Variation.nominal_spec ~all_four:false ()
  in
  s.Variation.snm
