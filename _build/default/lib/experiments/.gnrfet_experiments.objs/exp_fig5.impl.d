lib/experiments/exp_fig5.ml: Array Format Iv_table List Params Printf Report Scf Table_cache Vec
