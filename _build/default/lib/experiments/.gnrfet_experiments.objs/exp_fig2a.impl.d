lib/experiments/exp_fig2a.ml: Array Float Format Lattice List Params Printf Report Scf Vec
