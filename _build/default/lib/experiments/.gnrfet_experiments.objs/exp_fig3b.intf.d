lib/experiments/exp_fig3b.mli: Contour Explore Format
