lib/experiments/exp_table1.ml: Float Format List Metrics Node Params Report Table_cache Technology
