lib/experiments/exp_fig2b.ml: Array Format Params Printf Report Scf Vec Vt
