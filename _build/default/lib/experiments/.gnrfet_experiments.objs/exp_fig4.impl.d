lib/experiments/exp_fig4.ml: Array Float Format Iv_table List Params Printf Report Table_cache Variants Vec
