lib/experiments/all_experiments.mli: Format
