lib/experiments/ablations.ml: Explore Float Format Iv_table List Metrics Params Report Scf Stack2d Table_cache
