lib/experiments/exp_tables234.ml: Array Float Format List Metrics Printf Report Variation
