lib/experiments/all_experiments.ml: Exp_fig2a Exp_fig2b Exp_fig3b Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_table1 Exp_tables234 List String
