lib/experiments/exp_tables234.mli: Format Variation
