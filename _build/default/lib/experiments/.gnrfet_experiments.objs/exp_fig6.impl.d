lib/experiments/exp_fig6.ml: Array Format Montecarlo Report Stats Vec
