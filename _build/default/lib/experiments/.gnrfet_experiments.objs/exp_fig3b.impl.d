lib/experiments/exp_fig3b.ml: Array Contour Explore Format List Params Printf Report String Table_cache Vec
