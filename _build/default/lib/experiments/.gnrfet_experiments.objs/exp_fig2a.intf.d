lib/experiments/exp_fig2a.mli: Format
