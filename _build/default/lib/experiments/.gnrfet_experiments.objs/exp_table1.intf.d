lib/experiments/exp_table1.mli: Explore Format Technology
