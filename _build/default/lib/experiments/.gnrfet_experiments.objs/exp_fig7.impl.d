lib/experiments/exp_fig7.ml: Format List Report Variation
