lib/experiments/exp_fig6.mli: Format Montecarlo Stats
