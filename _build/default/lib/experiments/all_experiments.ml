type id =
  | Fig2a
  | Fig2b
  | Fig3b
  | Table1
  | Fig4
  | Fig5
  | Table2
  | Table3
  | Table4
  | Fig6
  | Fig7

let all =
  [ Fig2a; Fig2b; Fig3b; Table1; Fig4; Fig5; Table2; Table3; Table4; Fig6; Fig7 ]

let name = function
  | Fig2a -> "fig2a"
  | Fig2b -> "fig2b"
  | Fig3b -> "fig3b"
  | Table1 -> "table1"
  | Fig4 -> "fig4"
  | Fig5 -> "fig5"
  | Table2 -> "table2"
  | Table3 -> "table3"
  | Table4 -> "table4"
  | Fig6 -> "fig6"
  | Fig7 -> "fig7"

let of_name s = List.find_opt (fun id -> String.equal (name id) s) all

let run_and_print ppf = function
  | Fig2a -> Exp_fig2a.print ppf (Exp_fig2a.run ())
  | Fig2b -> Exp_fig2b.print ppf (Exp_fig2b.run ())
  | Fig3b -> Exp_fig3b.print ppf (Exp_fig3b.run ())
  | Table1 -> Exp_table1.print ppf (Exp_table1.run ())
  | Fig4 -> Exp_fig4.print ppf (Exp_fig4.run ())
  | Fig5 -> Exp_fig5.print ppf (Exp_fig5.run ())
  | Table2 -> Exp_tables234.print ppf (Exp_tables234.run Exp_tables234.Width)
  | Table3 -> Exp_tables234.print ppf (Exp_tables234.run Exp_tables234.Impurity)
  | Table4 -> Exp_tables234.print ppf (Exp_tables234.run Exp_tables234.Combined)
  | Fig6 -> Exp_fig6.print ppf (Exp_fig6.run ())
  | Fig7 -> Exp_fig7.print ppf (Exp_fig7.run ())

let run_all ppf =
  (* Fig 3(b)'s surface feeds Table 1's operating points; compute once. *)
  Exp_fig2a.print ppf (Exp_fig2a.run ());
  Exp_fig2b.print ppf (Exp_fig2b.run ());
  let fig3b = Exp_fig3b.run () in
  Exp_fig3b.print ppf fig3b;
  Exp_table1.print ppf (Exp_table1.run ~surface:fig3b.Exp_fig3b.surface ());
  Exp_fig4.print ppf (Exp_fig4.run ());
  Exp_fig5.print ppf (Exp_fig5.run ());
  Exp_tables234.print ppf (Exp_tables234.run Exp_tables234.Width);
  Exp_tables234.print ppf (Exp_tables234.run Exp_tables234.Impurity);
  Exp_tables234.print ppf (Exp_tables234.run Exp_tables234.Combined);
  Exp_fig6.print ppf (Exp_fig6.run ());
  Exp_fig7.print ppf (Exp_fig7.run ())
