(** Fig 7: latch butterfly curves — nominal, single-GNR-affected and
    all-GNRs-affected worst cases; the eye collapse and the >5X static
    power increase. *)

type result = {
  nominal : Variation.latch_study;
  single : Variation.latch_study;
  all : Variation.latch_study;
  static_power_ratio : float;  (** worst-case / nominal (paper: >5X) *)
}

val run : ?op:Variation.op_point -> unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
