type mode_count_result = { n_modes : int; ion : float; ioff : float }

let mode_count ?(indices = [ 1; 2; 3 ]) () =
  List.map
    (fun n_modes ->
      let p = { (Params.default ()) with Params.n_modes } in
      let ion = (Scf.solve p ~vg:0.75 ~vd:0.5).Scf.current in
      let ioff = (Scf.solve p ~vg:0.25 ~vd:0.5).Scf.current in
      { n_modes; ion; ioff })
    indices

type grid_result = { energy_step : float; ion : float; relative_error : float }

let energy_grid ?(steps = [ 8e-3; 4e-3; 2e-3; 1e-3 ]) () =
  let ion_at de =
    let p = { (Params.default ()) with Params.energy_step = de } in
    (Scf.solve p ~vg:0.6 ~vd:0.5).Scf.current
  in
  let results = List.map (fun de -> (de, ion_at de)) steps in
  let reference =
    match List.rev results with
    | (_, i) :: _ -> i
    | [] -> invalid_arg "Ablations.energy_grid: empty step list"
  in
  List.map
    (fun (energy_step, ion) ->
      {
        energy_step;
        ion;
        relative_error = Float.abs (ion -. reference) /. Float.abs reference;
      })
    results

type mixing_result = { scheme : string; iterations : int; converged : bool }

let mixing ?(vg = 0.7) ?(vd = 0.5) () =
  let p = Params.default () in
  let run scheme mixing =
    let s = Scf.solve ~mixing ~max_iter:200 p ~vg ~vd in
    { scheme; iterations = s.Scf.iterations; converged = s.Scf.residual <= 1e-3 }
  in
  [
    run "anderson(5)" `Anderson;
    run "linear(0.3)" (`Linear 0.3);
    run "linear(0.1)" (`Linear 0.1);
  ]

type contact_result = { style : string; ion : float; ion_over_ioff : float }

let contact_style () =
  let run style contact_style =
    let p = { (Params.default ()) with Params.contact_style } in
    let ion = (Scf.solve p ~vg:0.75 ~vd:0.5).Scf.current in
    let ioff = (Scf.solve p ~vg:0.25 ~vd:0.5).Scf.current in
    { style; ion; ion_over_ioff = ion /. ioff }
  in
  [ run "point (end-bonded)" Stack2d.Point; run "plane (wrap-around)" Stack2d.Plane ]

type table_density_result = { n_vg : int; snm : float; delay : float }

let table_density ?(sizes = [ 14; 27; 53 ]) () =
  let p = Params.default () in
  List.map
    (fun n_vg ->
      let grid = { Iv_table.default_grid with Iv_table.n_vg } in
      let table = Table_cache.get ~grid p in
      let pair = Explore.pair_at table ~vt:0.13 in
      let m = Metrics.inverter_metrics ~pair ~vdd:0.4 () in
      { n_vg; snm = m.Metrics.snm; delay = m.Metrics.tp })
    sizes

type temperature_result = {
  temperature : float;
  ion : float;
  ioff : float;
  on_off : float;
}

let temperature ?(kelvins = [ 250.; 300.; 350.; 400. ]) () =
  List.map
    (fun temperature ->
      let p = { (Params.default ()) with Params.temperature } in
      let ion = (Scf.solve p ~vg:0.75 ~vd:0.5).Scf.current in
      let ioff = (Scf.solve p ~vg:0.25 ~vd:0.5).Scf.current in
      { temperature; ion; ioff; on_off = ion /. ioff })
    kelvins

let print_all ppf =
  Report.heading ppf "Ablation: mode-space depth";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %d mode(s): Ion = %sA, Ioff = %sA@." r.n_modes
        (Report.si r.ion) (Report.si r.ioff))
    (mode_count ());
  Report.heading ppf "Ablation: NEGF energy-grid resolution";
  List.iter
    (fun r ->
      Format.fprintf ppf "  dE = %4.1f meV: Ion = %sA (%.2f%% vs finest)@."
        (r.energy_step /. 1e-3) (Report.si r.ion)
        (100. *. r.relative_error))
    (energy_grid ());
  Report.heading ppf "Ablation: SCF acceleration";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-12s %3d iterations%s@." r.scheme r.iterations
        (if r.converged then "" else " (no convergence)"))
    (mixing ());
  Report.heading ppf "Ablation: contact electrostatics";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-22s Ion = %sA, Ion/Ioff = %.0f@." r.style
        (Report.si r.ion) r.ion_over_ioff)
    (contact_style ());
  Report.heading ppf "Ablation: temperature";
  List.iter
    (fun r ->
      Format.fprintf ppf "  T = %3.0f K: Ion = %sA, Ioff = %sA, ratio = %.0f@."
        r.temperature (Report.si r.ion) (Report.si r.ioff) r.on_off)
    (temperature ());
  Report.heading ppf "Ablation: bias-table density";
  List.iter
    (fun r ->
      Format.fprintf ppf "  n_vg = %2d: SNM = %.3f V, delay = %.2f ps@." r.n_vg
        r.snm (r.delay *. 1e12))
    (table_density ())
