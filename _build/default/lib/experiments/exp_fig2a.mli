(** Fig 2(a): I–V characteristics of the ideal N = 12 GNRFET at
    VD ∈ \{0.05, 0.25, 0.5, 0.75\} V — ambipolar conduction with the
    leakage minimum at VG ≈ VD/2, exponentially increasing with VD. *)

type curve = { vd : float; vg : float array; id : float array }

type result = {
  curves : curve list;
  ion_a : float;  (** on-current of one GNR at VG = VD = 0.5 V, A *)
  ion_ua_um : float;  (** the paper's width-normalized figure, µA/µm *)
  min_leak_vg : float;  (** VG of minimum current at VD = 0.5, V *)
  vd_leak_ratio : float;
      (** minimum-leakage ratio between VD = 0.75 and VD = 0.25 (the
          exponential VD dependence) *)
}

val run : ?n_vg:int -> unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
(** Reduced-size kernel for the benchmark harness (a short SCF I–V
    sweep); returns a current so the work cannot be optimized away. *)
