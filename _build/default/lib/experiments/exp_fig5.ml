type profile = { charge : float; x_nm : float array; ec : float array }

type iv = { charge : float; vg : float array; id : float array }

type result = {
  profiles : profile list;
  ivs : iv list;
  ion_ratio_neg2q : float;
  ion_ratio_pos2q : float;
}

let params_of charge =
  if charge = 0. then Params.default ()
  else Params.with_impurity_charge (Params.default ()) charge

let profile_of charge =
  let p = params_of charge in
  let sol = Scf.solve p ~vg:0.25 ~vd:0.5 in
  let x_nm = Array.map (fun x -> x /. 1e-9) (Scf.site_positions p) in
  { charge; x_nm; ec = Scf.conduction_band_profile p sol }

let iv_of charge =
  let p = params_of charge in
  let table = Table_cache.get p in
  let vg = Vec.linspace 0. 0.8 33 in
  { charge; vg; id = Array.map (fun v -> Iv_table.current_at table ~vg:v ~vd:0.5) vg }

let run () =
  let charges = [ -2.; -1.; 0.; 1.; 2. ] in
  let profiles = List.map profile_of charges in
  let ivs = List.map iv_of [ -2.; 0.; 2. ] in
  let ion charge =
    let c = List.find (fun i -> i.charge = charge) ivs in
    c.id.(Array.length c.id - 3)
  in
  {
    profiles;
    ivs;
    ion_ratio_neg2q = ion 0. /. ion (-2.);
    ion_ratio_pos2q = ion 0. /. ion 2.;
  }

let print ppf r =
  Report.heading ppf "Fig 5: charge impurity near the source (N=12, VD=0.5V)";
  List.iter
    (fun (p : profile) ->
      Report.series ppf
        ~name:(Printf.sprintf "EC profile, impurity %+g q  (x [nm] vs EC [eV])" p.charge)
        ~xs:p.x_nm ~ys:p.ec)
    r.profiles;
  List.iter
    (fun c ->
      Report.series ppf
        ~name:(Printf.sprintf "I-V with %+g q   (VG [V] vs ID [A])" c.charge)
        ~xs:c.vg ~ys:c.id)
    r.ivs;
  Format.fprintf ppf "Ion(ideal)/Ion(-2q) = %.1fX (paper: ~6X)@." r.ion_ratio_neg2q;
  Format.fprintf ppf "Ion(ideal)/Ion(+2q) = %.1fX (paper: much smaller than -2q)@."
    r.ion_ratio_pos2q

let bench_kernel () =
  let p = params_of (-2.) in
  let sol = Scf.solve p ~vg:0.25 ~vd:0.5 in
  Vec.maximum (Scf.conduction_band_profile p sol)
