type curve = { vd : float; vg : float array; id : float array }

type result = {
  curves : curve list;
  ion_a : float;
  ion_ua_um : float;
  min_leak_vg : float;
  vd_leak_ratio : float;
}

let sweep p ~vd ~n_vg =
  let vg = Vec.linspace 0. 0.75 n_vg in
  let init = ref None in
  let id =
    Array.map
      (fun v ->
        let s = Scf.solve ?init:!init p ~vg:v ~vd in
        init := Some s.Scf.potential;
        s.Scf.current)
      vg
  in
  { vd; vg; id }

let run ?(n_vg = 31) () =
  let p = Params.default () in
  let curves = List.map (fun vd -> sweep p ~vd ~n_vg) [ 0.05; 0.25; 0.5; 0.75 ] in
  let at_05 = List.nth curves 2 in
  let ion_a =
    let k = Vec.argmin (Array.map (fun v -> Float.abs (v -. 0.5)) at_05.vg) in
    at_05.id.(k)
  in
  let width_um = Lattice.width 12 /. 1e-6 in
  let ion_ua_um = ion_a /. 1e-6 /. width_um in
  let kmin = Vec.argmin at_05.id in
  let min_leak_vg = at_05.vg.(kmin) in
  let min_of c = Vec.minimum c.id in
  let vd_leak_ratio = min_of (List.nth curves 3) /. min_of (List.nth curves 1) in
  { curves; ion_a; ion_ua_um; min_leak_vg; vd_leak_ratio }

let print ppf r =
  Report.heading ppf "Fig 2(a): I-V of the ideal N=12 GNRFET";
  List.iter
    (fun c ->
      Report.series ppf
        ~name:(Printf.sprintf "VD = %.2f V   (VG [V] vs ID [A])" c.vd)
        ~xs:c.vg ~ys:c.id)
    r.curves;
  Format.fprintf ppf "Ion(VG=VD=0.5V)      = %sA  (%.0f uA/um; paper: 6300 uA/um)@."
    (Report.si r.ion_a) r.ion_ua_um;
  Format.fprintf ppf "min-leakage VG at VD=0.5V = %.3f V (paper: ~VD/2 = 0.25 V)@."
    r.min_leak_vg;
  Format.fprintf ppf "min-leak(0.75V)/min-leak(0.25V) = %.1fx (exponential VD dependence)@."
    r.vd_leak_ratio

let bench_kernel () =
  let p = Params.default () in
  let c = sweep p ~vd:0.5 ~n_vg:5 in
  Vec.sum c.id
