(** Ablation studies of the design choices DESIGN.md calls out: mode-space
    depth, energy-grid resolution, SCF acceleration, contact geometry, and
    bias-table density.  Each returns the measurements and a printed
    comparison; the benchmark harness exposes them as ablation benches. *)

type mode_count_result = {
  n_modes : int;
  ion : float;  (** A at VG = 0.75, VD = 0.5 *)
  ioff : float;  (** A at the ambipolar minimum *)
}

val mode_count : ?indices:int list -> unit -> mode_count_result list
(** Effect of keeping 1, 2 or 3 subbands in the mode-space reduction. *)

type grid_result = {
  energy_step : float;  (** eV *)
  ion : float;
  relative_error : float;  (** vs the finest grid in the sweep *)
}

val energy_grid : ?steps:float list -> unit -> grid_result list

type mixing_result = {
  scheme : string;
  iterations : int;
  converged : bool;
}

val mixing : ?vg:float -> ?vd:float -> unit -> mixing_result list
(** Anderson acceleration vs plain under-relaxation at a representative
    strongly-inverted bias point. *)

type contact_result = {
  style : string;
  ion : float;
  ion_over_ioff : float;
}

val contact_style : unit -> contact_result list
(** End-bonded (Point) vs wrap-around (Plane) contact electrostatics. *)

type table_density_result = {
  n_vg : int;
  snm : float;  (** inverter SNM at the B operating point *)
  delay : float;  (** s *)
}

val table_density : ?sizes:int list -> unit -> table_density_result list
(** How the bias-table VG density changes circuit-level answers (bilinear
    interpolation smears transconductance on coarse grids). *)

type temperature_result = {
  temperature : float;  (** K *)
  ion : float;
  ioff : float;
  on_off : float;
}

val temperature : ?kelvins:float list -> unit -> temperature_result list
(** Thermionic sensitivity: the ambipolar leakage floor grows
    exponentially with temperature while the on-current barely moves. *)

val print_all : Format.formatter -> unit
(** Run every ablation and print the comparisons. *)
