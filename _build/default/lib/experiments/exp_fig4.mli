(** Fig 4: I–V characteristics at VD = 0.5 V for GNR widths
    N ∈ \{9, 12, 15, 18\} — the band-gap (leakage) and capacitance trends
    behind the width-variation study. *)

type width_curve = {
  n : int;
  gap : float;  (** eV *)
  vg : float array;
  id : float array;
  ion : float;  (** A at VG = 0.75 *)
  ioff : float;  (** minimum current, A *)
  on_off : float;
  cg_on : float;  (** intrinsic gate capacitance in the on state, F *)
}

type result = { curves : width_curve list }

val run : unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
