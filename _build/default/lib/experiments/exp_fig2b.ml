type result = {
  vt_no_offset : float;
  vt_with_offset : float;
  offset : float;
  curve_no_offset : float array * float array;
  curve_with_offset : float array * float array;
}

let low_vd = 0.05

let curve p =
  let vg = Vec.linspace 0. 0.75 16 in
  let init = ref None in
  let id =
    Array.map
      (fun v ->
        let s = Scf.solve ?init:!init p ~vg:v ~vd:low_vd in
        init := Some s.Scf.potential;
        s.Scf.current)
      vg
  in
  (vg, id)

let run ?(offset = 0.2) () =
  let p0 = Params.default () in
  let p1 = { p0 with Params.gate_offset = offset } in
  let vt_no_offset = Vt.extract p0 in
  let vt_with_offset = Vt.extract p1 in
  {
    vt_no_offset;
    vt_with_offset;
    offset;
    curve_no_offset = curve p0;
    curve_with_offset = curve p1;
  }

let print ppf r =
  Report.heading ppf "Fig 2(b): VT extraction at low VD (N=12)";
  let vg0, id0 = r.curve_no_offset in
  Report.series ppf ~name:"offset = 0 V      (VG [V] vs ID [A], VD = 0.05 V)" ~xs:vg0
    ~ys:id0;
  let vg1, id1 = r.curve_with_offset in
  Report.series ppf
    ~name:(Printf.sprintf "offset = %.2g V   (VG [V] vs ID [A], VD = 0.05 V)" r.offset)
    ~xs:vg1 ~ys:id1;
  Format.fprintf ppf "VT(offset = 0)    = %.3f V   (paper: ~0.3 V)@." r.vt_no_offset;
  Format.fprintf ppf "VT(offset = %.2g) = %.3f V   (paper: ~0.1 V)@." r.offset
    r.vt_with_offset;
  Format.fprintf ppf "VT shift = %.3f V vs offset %.2g V (paper: equal)@."
    (r.vt_no_offset -. r.vt_with_offset)
    r.offset

let bench_kernel () = Vt.extract ~n:6 (Params.default ())
