type result = {
  mc : Montecarlo.result;
  freq_hist : Stats.histogram;
  pdyn_hist : Stats.histogram;
  pstat_hist : Stats.histogram;
  freq_mean_shift_pct : float;
  pdyn_mean_shift_pct : float;
  pstat_mean_shift_pct : float;
}

let run ?(samples = 2000) ?(seed = 42) () =
  let mc = Montecarlo.run ~samples ~seed () in
  let freq_hist, pdyn_hist, pstat_hist = Montecarlo.histograms mc in
  let mean f = Vec.mean (Array.map f mc.Montecarlo.samples) in
  let shift f nominal = (mean f -. nominal) /. nominal *. 100. in
  {
    mc;
    freq_hist;
    pdyn_hist;
    pstat_hist;
    freq_mean_shift_pct =
      shift (fun s -> s.Montecarlo.frequency) mc.Montecarlo.nominal.Montecarlo.frequency;
    pdyn_mean_shift_pct =
      shift (fun s -> s.Montecarlo.p_dynamic) mc.Montecarlo.nominal.Montecarlo.p_dynamic;
    pstat_mean_shift_pct =
      shift (fun s -> s.Montecarlo.p_static) mc.Montecarlo.nominal.Montecarlo.p_static;
  }

let print ppf r =
  Report.heading ppf "Fig 6: Monte Carlo, 15-stage RO (width x impurity variations)";
  let nom = r.mc.Montecarlo.nominal in
  Format.fprintf ppf "nominal: f = %.2f GHz, Pdyn = %.3g uW, Pstat = %.3g uW@."
    (nom.Montecarlo.frequency /. 1e9)
    (nom.Montecarlo.p_dynamic /. 1e-6)
    (nom.Montecarlo.p_static /. 1e-6);
  Format.fprintf ppf "@.Frequency [GHz]:@.";
  Stats.pp_histogram ppf r.freq_hist;
  Format.fprintf ppf "@.Dynamic power [uW]:@.";
  Stats.pp_histogram ppf r.pdyn_hist;
  Format.fprintf ppf "@.Static power [uW]:@.";
  Stats.pp_histogram ppf r.pstat_hist;
  Format.fprintf ppf
    "mean shifts vs nominal: f %+.1f%% (paper: -10%%), Pdyn %+.1f%% (paper: ~0%%), Pstat %+.1f%% (paper: +23%%)@."
    r.freq_mean_shift_pct r.pdyn_mean_shift_pct r.pstat_mean_shift_pct

let bench_kernel () =
  let mc = Montecarlo.run ~samples:50 ~seed:7 () in
  Vec.mean (Array.map (fun s -> s.Montecarlo.frequency) mc.Montecarlo.samples)
