type which = Width | Impurity | Combined

type result = { which : which; table : Variation.table }

let run ?op which =
  let table =
    match which with
    | Width -> Variation.width_table ?op ()
    | Impurity -> Variation.impurity_table ?op ()
    | Combined -> Variation.combined_table ?op ()
  in
  { which; table }

let spec_label (s : Variation.spec) =
  match s.Variation.charge with
  | 0. -> Printf.sprintf "N=%d" s.Variation.gnr_index
  | c when s.Variation.gnr_index = 12 -> Printf.sprintf "%+gq" c
  | c -> Printf.sprintf "N=%d,%+gq" s.Variation.gnr_index c

let title = function
  | Width -> "Table 2: width variation (n/p GNRFET channels), inverter @ B"
  | Impurity -> "Table 3: charge impurities (n/p GNRFET channels), inverter @ B"
  | Combined -> "Table 4: simultaneous width variation and impurities, inverter @ B"

let pct_cell ~nominal one all =
  (Variation.pct ~nominal one, Variation.pct ~nominal all)

let print_matrix ppf (t : Variation.table) name value =
  Format.fprintf ppf "%s (%%, one-of-four,all-four; rows: pGNRFET, cols: nGNRFET)@." name;
  Format.fprintf ppf "%14s" "";
  List.iter (fun c -> Format.fprintf ppf "%16s" (spec_label c)) t.Variation.cols;
  Format.fprintf ppf "@.";
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "%14s" (spec_label (List.nth t.Variation.rows i));
      Array.iter
        (fun (e : Variation.entry) ->
          let one, all = value e in
          Format.fprintf ppf "%16s" (Printf.sprintf "%.0f,%.0f" one all))
        row;
      Format.fprintf ppf "@.")
    t.Variation.entries

let print ppf { which; table = t } =
  Report.heading ppf (title which);
  let nom = t.Variation.nominal in
  Format.fprintf ppf
    "nominal: delay = %.2f ps, Pstat = %.4g uW, Esw = %.4g fJ, SNM = %.3f V@."
    (nom.Metrics.tp *. 1e12)
    (nom.Metrics.p_static /. 1e-6)
    (nom.Metrics.e_switch /. 1e-15)
    nom.Metrics.snm;
  print_matrix ppf t "Delay" (fun e ->
      pct_cell ~nominal:nom.Metrics.tp e.Variation.one.Metrics.tp
        e.Variation.all.Metrics.tp);
  print_matrix ppf t "Static power" (fun e ->
      pct_cell ~nominal:nom.Metrics.p_static e.Variation.one.Metrics.p_static
        e.Variation.all.Metrics.p_static);
  print_matrix ppf t "Dynamic power" (fun e ->
      pct_cell ~nominal:nom.Metrics.e_switch e.Variation.one.Metrics.e_switch
        e.Variation.all.Metrics.e_switch);
  print_matrix ppf t "SNM" (fun e ->
      pct_cell ~nominal:nom.Metrics.snm e.Variation.one.Metrics.snm
        e.Variation.all.Metrics.snm)

let worst_case_summary { which = _; table = t } =
  let nom = t.Variation.nominal in
  let fold f =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc e -> Float.max acc (f e)) acc row)
      neg_infinity t.Variation.entries
  in
  let delay =
    fold (fun e -> Variation.pct ~nominal:nom.Metrics.tp e.Variation.all.Metrics.tp)
  in
  let pstat =
    fold (fun e ->
        Variation.pct ~nominal:nom.Metrics.p_static e.Variation.all.Metrics.p_static)
  in
  let pdyn =
    fold (fun e ->
        Variation.pct ~nominal:nom.Metrics.e_switch e.Variation.all.Metrics.e_switch)
  in
  let snm_drop =
    fold (fun e ->
        -.Variation.pct ~nominal:nom.Metrics.snm e.Variation.all.Metrics.snm)
  in
  Printf.sprintf
    "worst all-four: delay %+.0f%%, Pstat %+.0f%%, Pdyn %+.0f%%, SNM %.0f%% drop"
    delay pstat pdyn snm_drop

let bench_kernel () =
  let op = Variation.point_b in
  let pair =
    Variation.pair_for ~op
      ~n_spec:{ Variation.gnr_index = 9; charge = 0. }
      ~p_spec:Variation.nominal_spec ~all_four:false ()
  in
  let m = Metrics.inverter_metrics ~pair ~vdd:op.Variation.vdd () in
  m.Metrics.tp
