(** Fig 6: Monte Carlo distributions of frequency, dynamic power and
    static power for the 15-stage ring oscillator under simultaneous
    width and impurity variations. *)

type result = {
  mc : Montecarlo.result;
  freq_hist : Stats.histogram;
  pdyn_hist : Stats.histogram;
  pstat_hist : Stats.histogram;
  freq_mean_shift_pct : float;  (** mean vs nominal (paper: −10%) *)
  pdyn_mean_shift_pct : float;  (** (paper: ≈ 0%) *)
  pstat_mean_shift_pct : float;  (** (paper: +23%) *)
}

val run : ?samples:int -> ?seed:int -> unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
