(** Fig 5: charge-impurity effects on the intrinsic N = 12 device —
    (a) conduction-band profile distortion near the source for charges
    −2q … +2q, (b) I–V curves with ±2q impurities, with the asymmetric
    on-current degradation (−2q costs ≈ 6X). *)

type profile = {
  charge : float;
  x_nm : float array;
  ec : float array;  (** conduction band edge, eV *)
}

type iv = { charge : float; vg : float array; id : float array }

type result = {
  profiles : profile list;  (** at VG = 0.25 V, VD = 0.5 V *)
  ivs : iv list;
  ion_ratio_neg2q : float;  (** Ion(ideal) / Ion(−2q) (paper: ≈ 6) *)
  ion_ratio_pos2q : float;  (** Ion(ideal) / Ion(+2q) (smaller) *)
}

val run : unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
