(** Fig 3(b): EDP, frequency and SNM contours of the 15-stage FO4 ring
    oscillator over the (VT, VDD) plane, and the operating points A/B/C. *)

type result = {
  surface : Explore.surface;
  min_edp : Explore.operating_point;
  point_a : Explore.operating_point option;
  point_b : Explore.operating_point option;
  point_c : Explore.operating_point option;
  freq_3ghz_contour : Contour.polyline list;
  snm_contours : (float * Contour.polyline list) list;
}

val run : ?nv:int -> unit -> result
(** [nv] grid points per axis (default 13). *)

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
