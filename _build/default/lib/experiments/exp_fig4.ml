type width_curve = {
  n : int;
  gap : float;
  vg : float array;
  id : float array;
  ion : float;
  ioff : float;
  on_off : float;
  cg_on : float;
}

type result = { curves : width_curve list }

let vd = 0.5

let curve_of n =
  let p = Params.default ~gnr_index:n () in
  let table = Table_cache.get p in
  let vg = Vec.linspace 0. 0.8 33 in
  let id = Array.map (fun v -> Iv_table.current_at table ~vg:v ~vd) vg in
  let ion = Iv_table.current_at table ~vg:0.75 ~vd in
  let ioff = Vec.minimum id in
  let cg_on = Float.abs (Iv_table.dq_dvg table ~vg:0.75 ~vd) in
  {
    n;
    gap = Params.band_gap p;
    vg;
    id;
    ion;
    ioff;
    on_off = ion /. ioff;
    cg_on;
  }

let run () = { curves = List.map curve_of Variants.paper_widths }

let print ppf r =
  Report.heading ppf "Fig 4: I-V at VD=0.5V for N = 9 / 12 / 15 / 18";
  List.iter
    (fun c ->
      Report.series ppf
        ~name:(Printf.sprintf "N = %d (Eg = %.3f eV)   (VG [V] vs ID [A])" c.n c.gap)
        ~xs:c.vg ~ys:c.id)
    r.curves;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "N=%2d: Eg=%.3f eV  Ion=%sA  Ioff=%sA  Ion/Ioff=%6.0f  CG,on=%sF@." c.n
        c.gap (Report.si c.ion) (Report.si c.ioff) c.on_off (Report.si c.cg_on))
    r.curves;
  (match
     ( List.find_opt (fun c -> c.n = 9) r.curves,
       List.find_opt (fun c -> c.n = 18) r.curves )
   with
  | Some c9, Some c18 ->
    Format.fprintf ppf
      "N=9 on/off = %.0f (paper: ~1000X); N=18/N=9 on-state CG ratio = %.2f (paper: ~1.5)@."
      c9.on_off
      (c18.cg_on /. c9.cg_on)
  | None, _ | _, None -> ())

let bench_kernel () =
  let table = Table_cache.get (Params.default ()) in
  Iv_table.current_at table ~vg:0.75 ~vd
