(** Small formatting helpers shared by the experiment reproductions. *)

val heading : Format.formatter -> string -> unit
(** Underlined section heading. *)

val series :
  Format.formatter -> name:string -> xs:float array -> ys:float array -> unit
(** Print a two-column numeric series. *)

val pct_pair : Format.formatter -> float * float -> unit
(** The paper's "a,b" percent convention (one GNR affected, all four
    affected), rounded to integers. *)

val si : float -> string
(** Engineering notation with an SI prefix (e.g. ["3.42 G"]). *)
