(** Run every table/figure reproduction and print the full report — the
    entry point used by [bin/repro.exe] and the benchmark harness. *)

type id =
  | Fig2a
  | Fig2b
  | Fig3b
  | Table1
  | Fig4
  | Fig5
  | Table2
  | Table3
  | Table4
  | Fig6
  | Fig7

val all : id list

val name : id -> string

val of_name : string -> id option

val run_and_print : Format.formatter -> id -> unit
(** Compute one experiment and print its report (the Fig 3(b) surface is
    shared with Table 1 within one call to {!run_all}). *)

val run_all : Format.formatter -> unit
(** The full reproduction, in paper order. *)
