type pair = {
  nfet : Fet_model.t;
  pfet : Fet_model.t;
  ext : Gnr_model.extrinsic;
}

let no_parasitics = { Gnr_model.rs = 0.; rd = 0.; cgs_e = 0.; cgd_e = 0. }

(* A contact resistance below this threshold is treated as a short (no
   internal node). *)
let r_min = 1e-2

let via_resistor net external_node ohms =
  if ohms < r_min then external_node
  else begin
    let internal = Netlist.fresh_node net in
    Netlist.add net (Netlist.Resistor { a = external_node; b = internal; ohms });
    internal
  end

let add_cap net a b farads =
  if farads > 0. then Netlist.add net (Netlist.Capacitor { a; b; farads })

let add_inverter net ~pair ~vdd_node ~input ~output =
  let { nfet; pfet; ext } = pair in
  (* n-FET: source at ground, drain at output, through the contacts. *)
  let n_s = via_resistor net Netlist.gnd ext.Gnr_model.rs in
  let n_d = via_resistor net output ext.Gnr_model.rd in
  Netlist.add net (Netlist.Fet { g = input; d = n_d; s = n_s; model = nfet });
  (* p-FET: source at VDD, drain at output. *)
  let p_s = via_resistor net vdd_node ext.Gnr_model.rs in
  let p_d = via_resistor net output ext.Gnr_model.rd in
  Netlist.add net (Netlist.Fet { g = input; d = p_d; s = p_s; model = pfet });
  (* Extrinsic junction capacitances, gate to the external contacts. *)
  add_cap net input Netlist.gnd ext.Gnr_model.cgs_e;
  add_cap net input output ext.Gnr_model.cgd_e;
  add_cap net input vdd_node ext.Gnr_model.cgs_e;
  add_cap net input output ext.Gnr_model.cgd_e

let add_gate_load net ~pair ~vdd_node ~input =
  let { nfet; pfet; ext } = pair in
  (* Drain and source tied: the FET carries no current but presents its
     bias-dependent gate capacitance. *)
  Netlist.add net (Netlist.Fet { g = input; d = Netlist.gnd; s = Netlist.gnd; model = nfet });
  Netlist.add net (Netlist.Fet { g = input; d = vdd_node; s = vdd_node; model = pfet });
  add_cap net input Netlist.gnd (ext.Gnr_model.cgs_e +. ext.Gnr_model.cgd_e);
  add_cap net input vdd_node (ext.Gnr_model.cgs_e +. ext.Gnr_model.cgd_e)

let add_nand2 net ~pair ~vdd_node ~a ~b ~output =
  let { nfet; pfet; ext } = pair in
  (* Pull-down: a-gated on top of b-gated, sharing an internal node. *)
  let stack_mid = Netlist.fresh_node net in
  let n_top_d = via_resistor net output ext.Gnr_model.rd in
  Netlist.add net (Netlist.Fet { g = a; d = n_top_d; s = stack_mid; model = nfet });
  let n_bot_s = via_resistor net Netlist.gnd ext.Gnr_model.rs in
  Netlist.add net (Netlist.Fet { g = b; d = stack_mid; s = n_bot_s; model = nfet });
  (* Pull-up: two p-FETs in parallel. *)
  List.iter
    (fun g ->
      let p_s = via_resistor net vdd_node ext.Gnr_model.rs in
      let p_d = via_resistor net output ext.Gnr_model.rd in
      Netlist.add net (Netlist.Fet { g; d = p_d; s = p_s; model = pfet }))
    [ a; b ];
  List.iter
    (fun g ->
      add_cap net g Netlist.gnd ext.Gnr_model.cgs_e;
      add_cap net g output ext.Gnr_model.cgd_e;
      add_cap net g vdd_node ext.Gnr_model.cgs_e;
      add_cap net g output ext.Gnr_model.cgd_e)
    [ a; b ]

let add_nor2 net ~pair ~vdd_node ~a ~b ~output =
  let { nfet; pfet; ext } = pair in
  (* Pull-down: two n-FETs in parallel. *)
  List.iter
    (fun g ->
      let n_s = via_resistor net Netlist.gnd ext.Gnr_model.rs in
      let n_d = via_resistor net output ext.Gnr_model.rd in
      Netlist.add net (Netlist.Fet { g; d = n_d; s = n_s; model = nfet }))
    [ a; b ];
  (* Pull-up: series p-FET stack. *)
  let stack_mid = Netlist.fresh_node net in
  let p_top_s = via_resistor net vdd_node ext.Gnr_model.rs in
  Netlist.add net (Netlist.Fet { g = a; d = stack_mid; s = p_top_s; model = pfet });
  let p_bot_d = via_resistor net output ext.Gnr_model.rd in
  Netlist.add net (Netlist.Fet { g = b; d = p_bot_d; s = stack_mid; model = pfet });
  List.iter
    (fun g ->
      add_cap net g Netlist.gnd ext.Gnr_model.cgs_e;
      add_cap net g output ext.Gnr_model.cgd_e;
      add_cap net g vdd_node ext.Gnr_model.cgs_e;
      add_cap net g output ext.Gnr_model.cgd_e)
    [ a; b ]

type inverter_bench = {
  net : Netlist.t;
  vdd_node : Netlist.node;
  input : Netlist.node;
  output : Netlist.node;
  source : Netlist.node;
}

let inverter_fo4 ~pair ?load ?(fanout = 4) ~vdd ~wave () =
  let load = match load with Some l -> l | None -> pair in
  let net = Netlist.create () in
  let vdd_node = Netlist.fresh_node net in
  Netlist.vdc net vdd_node vdd;
  let source = Netlist.fresh_node net in
  Netlist.vsource net source wave;
  let input = Netlist.fresh_node net in
  let output = Netlist.fresh_node net in
  (* Driver stage shapes the DUT input edge realistically. *)
  add_inverter net ~pair ~vdd_node ~input:source ~output:input;
  add_inverter net ~pair ~vdd_node ~input ~output;
  for _ = 1 to fanout do
    add_gate_load net ~pair:load ~vdd_node ~input:output
  done;
  { net; vdd_node; input; output; source }

type ring = {
  net : Netlist.t;
  vdd_node : Netlist.node;
  taps : Netlist.node array;
}

let ring_oscillator ~stages ?(dummy_loads = 3) ~vdd () =
  let n = Array.length stages in
  if n < 3 || n mod 2 = 0 then
    invalid_arg "Cells.ring_oscillator: need an odd stage count >= 3";
  let net = Netlist.create () in
  let vdd_node = Netlist.fresh_node net in
  Netlist.vdc net vdd_node vdd;
  let taps = Array.init n (fun _ -> Netlist.fresh_node net) in
  Array.iteri
    (fun i pair ->
      let input = taps.((i + n - 1) mod n) in
      add_inverter net ~pair ~vdd_node ~input ~output:taps.(i);
      for _ = 1 to dummy_loads do
        add_gate_load net ~pair ~vdd_node ~input:taps.(i)
      done)
    stages;
  { net; vdd_node; taps }

let vtc ~pair ~vdd ?(n = 101) () =
  let net = Netlist.create () in
  let vdd_node = Netlist.fresh_node net in
  Netlist.vdc net vdd_node vdd;
  let input = Netlist.fresh_node net in
  (* Encode the swept input voltage as the source "time". *)
  Netlist.vsource net input (fun t -> t);
  let output = Netlist.fresh_node net in
  add_inverter net ~pair ~vdd_node ~input ~output;
  let vin = Vec.linspace 0. vdd n in
  let prev = ref None in
  let vout =
    Array.map
      (fun v ->
        let state = Mna.solve_dc ?x0:!prev ~time:v net in
        prev := Some state;
        state.(output))
      vin
  in
  { Snm.vin; vout }
