type row = {
  label : string;
  vdd : float;
  vt : float;
  frequency : float;
  edp : float;
  snm : float;
}

let row_of_point label surface (op : Explore.operating_point) =
  (* Pull the full metrics of the chosen grid point. *)
  let found = ref None in
  Array.iter
    (Array.iter (fun (p : Explore.point) ->
         if p.Explore.vdd = op.Explore.vdd && p.Explore.vt = op.Explore.vt then
           found := Some p))
    surface.Explore.points;
  match !found with
  | Some p ->
    {
      label;
      vdd = p.Explore.vdd;
      vt = p.Explore.vt;
      frequency = p.Explore.frequency;
      edp = p.Explore.edp;
      snm = p.Explore.snm;
    }
  | None -> invalid_arg "Technology.row_of_point: point not on surface"

let gnrfet_operating_points ?surface table =
  let s = match surface with Some s -> s | None -> Explore.surface table in
  let a = Explore.min_edp_at_frequency s ~ghz:3. in
  let b = Explore.min_edp_at_frequency_and_snm s ~ghz:3. ~snm:0.1 in
  let rows = ref [] in
  (match a with
  | Some p -> rows := [ row_of_point "GNRFET A" s p ]
  | None -> ());
  (match b with
  | Some p ->
    rows := !rows @ [ row_of_point "GNRFET B" s p ];
    (match Explore.same_edp_higher_vt s ~like:p with
    | Some c -> rows := !rows @ [ row_of_point "GNRFET C" s c ]
    | None -> ())
  | None -> ());
  !rows

let cmos_pair node =
  {
    Cells.nfet = Node.nfet node;
    pfet = Node.pfet node;
    ext = Cells.no_parasitics;
  }

let cmos_rows ?(stages = 15) () =
  List.concat_map
    (fun node ->
      List.map
        (fun vdd ->
          let pair = cmos_pair node in
          let m = Metrics.inverter_metrics ~pair ~vdd () in
          {
            label = Printf.sprintf "CMOS %s" node.Node.label;
            vdd;
            vt = node.Node.nmos.Compact.vt;
            frequency = Metrics.ro_frequency m ~stages;
            edp = Metrics.edp m ~stages;
            snm = m.Metrics.snm;
          })
        [ 0.8; 0.6; 0.4 ])
    Node.all

let edp_improvement ~gnrfet ~cmos = cmos.edp /. gnrfet.edp
