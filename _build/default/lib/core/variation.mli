(** Variability and defect studies on inverters and latches
    (Sections 4–5, Tables 2–4, Fig 7).

    Every metric is evaluated at the technology-exploration operating
    point (VDD = 0.4 V, VT = 0.13 V by default), with the gate
    work-function offset fixed by the *nominal* device — variations then
    shift the effective thresholds implicitly, exactly as in the paper.
    Each table entry carries the two scenarios: one GNR of the 4-GNR array
    affected, and all four affected. *)

type op_point = { vdd : float; vt : float }

val point_b : op_point
(** VDD = 0.4 V, VT = 0.13 V (Section 3.1's chosen trade-off point). *)

type spec = { gnr_index : int; charge : float }
(** A per-GNR anomaly: width index and impurity charge (in |q|). *)

val nominal_spec : spec

type entry = {
  p_spec : spec;  (** anomaly of the p-type FET's GNR(s) *)
  n_spec : spec;  (** anomaly of the n-type FET's GNR(s) *)
  one : Metrics.inverter_metrics;  (** 1-of-4 GNRs affected *)
  all : Metrics.inverter_metrics;  (** 4-of-4 GNRs affected *)
}

type table = {
  op : op_point;
  nominal : Metrics.inverter_metrics;
  rows : spec list;  (** p-FET anomaly per row *)
  cols : spec list;  (** n-FET anomaly per column *)
  entries : entry array array;
}

val pair_for :
  ?n_gnr:int -> op:op_point -> n_spec:spec -> p_spec:spec -> all_four:bool -> unit -> Cells.pair
(** Device pair with the anomaly applied to one or all GNRs of each FET. *)

val inverter_table : ?op:op_point -> rows:spec list -> cols:spec list -> unit -> table
(** Generic engine behind Tables 2–4. *)

val width_table : ?op:op_point -> unit -> table
(** Table 2: N ∈ \{9, 12, 15, 18\} on both FETs. *)

val impurity_table : ?op:op_point -> unit -> table
(** Table 3: charge ∈ \{+2q, +q, 0, −q, −2q\} (p rows) × \{−2q … +2q\}
    (n cols) on N = 12 GNRs, ordered as printed in the paper. *)

val combined_table : ?op:op_point -> unit -> table
(** Table 4: simultaneous width (9/18) and impurity (±q) anomalies. *)

val pct : nominal:float -> float -> float
(** Percentage change. *)

type latch_study = {
  label : string;
  butterfly : (float * float) list * (float * float) list;
  snm : float;
  static_power : float;  (** total latch leakage at its stable state, W *)
}

val latch :
  ?op:op_point -> n_spec:spec -> p_spec:spec -> all_four:bool -> unit -> latch_study
(** Cross-coupled-inverter latch with both inverters equally affected
    (the paper's Fig 7 setup). *)

val latch_worst_case : ?op:op_point -> all_four:bool -> unit -> latch_study
(** The paper's worst case: n-FETs at N = 9 with +q, p-FETs at N = 18
    with −q. *)

type write_result = {
  flipped : bool;  (** did the latch change state *)
  settle : float;  (** time from pulse start until the state settled, s *)
}

val latch_write :
  ?op:op_point ->
  ?drive_ohms:float ->
  n_spec:spec ->
  p_spec:spec ->
  all_four:bool ->
  pulse_width:float ->
  unit ->
  write_result
(** Dynamic write experiment: the latch sits in its (a low, b high) state
    and a VDD pulse of the given width drives node [a] through
    [drive_ohms] (default 20 kΩ, an access-device stand-in).  Returns
    whether the cell flipped — degraded cells need longer pulses, the
    dynamic face of the noise-margin loss of Fig 7. *)

val minimum_write_pulse :
  ?op:op_point ->
  ?drive_ohms:float ->
  n_spec:spec ->
  p_spec:spec ->
  all_four:bool ->
  unit ->
  float
(** Bisected minimum pulse width (s) that still flips the cell. *)
