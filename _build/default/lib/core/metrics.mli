(** Circuit figures of merit used throughout Sections 3–5 of the paper. *)

type inverter_metrics = {
  tp_lh : float;  (** output low→high propagation delay, s *)
  tp_hl : float;  (** output high→low propagation delay, s *)
  tp : float;  (** average of the two, s *)
  p_static : float;  (** average leakage power over the two input states, W *)
  e_switch : float;  (** supply energy of one full LH+HL output cycle, J *)
  snm : float;  (** static noise margin (butterfly against itself), V *)
}

val time_scale : Cells.pair -> fanout:int -> vdd:float -> float
(** Crude RC estimate of the cell's switching timescale (s); used to size
    transient windows (exposed for the latch-dynamics study). *)

val inverter_metrics :
  ?fanout:int -> ?load:Cells.pair -> pair:Cells.pair -> vdd:float -> unit -> inverter_metrics
(** Characterize a FO4-loaded inverter: static powers from DC operating
    points, delays and switching energy from a two-edge transient (with a
    self-calibrated time step), SNM from the static VTC. *)

val ro_frequency : inverter_metrics -> stages:int -> float
(** Ring-oscillator frequency implied by the average stage delay,
    [1 / (2 * stages * tp)]. *)

val dynamic_power : inverter_metrics -> frequency:float -> float
(** Average dynamic power when switching at the given rate, [e_switch *
    frequency]. *)

val edp : inverter_metrics -> stages:int -> float
(** Energy–delay product figure used for the technology exploration
    (Section 3.1): total oscillator power times period squared
    (equivalently, energy per period times period), in J·s. *)

type ring_metrics = {
  frequency : float;  (** Hz *)
  p_total : float;  (** average supply power while oscillating, W *)
  p_static_ring : float;  (** stage-summed DC leakage estimate, W *)
  p_dynamic : float;  (** [p_total - p_static_ring], W *)
}

val ring_metrics :
  ?dummy_loads:int -> ?cycles:float -> stages:Cells.pair array -> vdd:float -> unit -> ring_metrics option
(** Full transient measurement of the ring oscillator (frequency from tap
    crossings, power from the supply current).  The transient is started
    from the perturbed metastable DC point; [None] if the ring fails to
    oscillate within the simulated window. *)
