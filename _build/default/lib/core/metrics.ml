type inverter_metrics = {
  tp_lh : float;
  tp_hl : float;
  tp : float;
  p_static : float;
  e_switch : float;
  snm : float;
}

(* Crude RC estimate used only to size the transient window and step. *)
let time_scale (pair : Cells.pair) ~fanout ~vdd =
  let mid m = (m.Fet_model.cgs ~vgs:(vdd /. 2.) ~vds:(vdd /. 2.))
              +. (m.Fet_model.cgd ~vgs:(vdd /. 2.) ~vds:(vdd /. 2.)) in
  let c_unit =
    mid pair.Cells.nfet +. mid pair.Cells.pfet
    +. (2. *. (pair.Cells.ext.Gnr_model.cgs_e +. pair.Cells.ext.Gnr_model.cgd_e))
  in
  let c_load = c_unit *. float_of_int (fanout + 1) in
  let i_on =
    Float.max 1e-12
      (Float.max
         (Float.abs (pair.Cells.nfet.Fet_model.id ~vgs:vdd ~vds:(vdd /. 2.)))
         (Float.abs (pair.Cells.pfet.Fet_model.id ~vgs:(-.vdd) ~vds:(-.vdd /. 2.))))
  in
  let tau = c_load *. vdd /. i_on in
  (* Contact RC floor. *)
  let rc = (pair.Cells.ext.Gnr_model.rs +. pair.Cells.ext.Gnr_model.rd) *. c_load in
  Float.max 1e-15 (Float.max tau rc)

let rec measure_with_tau ?load ~fanout ~pair ~vdd ~tau ~attempt ~in_level ~out_level () =
  let tr = 2. *. tau in
  let t1 = 5. *. tau in
  let plateau = 25. *. tau in
  let t2 = t1 +. tr +. plateau in
  let t_end = t2 +. tr +. plateau in
  let wave t =
    if t <= t1 then 0.
    else if t <= t1 +. tr then vdd *. (t -. t1) /. tr
    else if t <= t2 then vdd
    else if t <= t2 +. tr then vdd *. (1. -. ((t -. t2) /. tr))
    else 0.
  in
  let bench = Cells.inverter_fo4 ~pair ?load ~fanout ~vdd ~wave () in
  let dt = tau /. 15. in
  let wf = Mna.transient bench.Cells.net ~t_stop:t_end ~dt in
  let times = wf.Mna.times in
  let vin = Mna.node_trace wf bench.Cells.input in
  let vout = Mna.node_trace wf bench.Cells.output in
  (* Source edge 1 rising makes the DUT input fall.  Thresholds are the
     midpoints of the cell's actual static levels so heavily degraded
     variants (whose outputs no longer straddle VDD/2) still measure. *)
  let d_lh =
    Measure.delay_levels ~times ~input:vin ~output:vout ~in_level ~out_level
      ~input_rising:false
  in
  let d_hl =
    Measure.delay_levels ~times ~input:vin ~output:vout ~in_level ~out_level
      ~input_rising:true
  in
  match (d_lh, d_hl) with
  | Some tp_lh, Some tp_hl -> Some (bench, wf, tp_lh, tp_hl, t1, t2, t_end)
  | None, _ | _, None ->
    if attempt >= 3 then None
    else
      measure_with_tau ?load ~fanout ~pair ~vdd ~tau:(tau *. 4.)
        ~attempt:(attempt + 1) ~in_level ~out_level ()

let inverter_metrics ?(fanout = 4) ?load ~pair ~vdd () =
  (* Static operating points at the two input states (source low/high):
     powers for the leakage figure, node levels for the delay
     thresholds. *)
  let static_bench state =
    let wave _ = if state then vdd else 0. in
    let b = Cells.inverter_fo4 ~pair ?load ~fanout ~vdd ~wave () in
    let dc = Mna.solve_dc b.Cells.net in
    ( Float.abs (Mna.dc_current b.Cells.net dc b.Cells.vdd_node) *. vdd,
      dc.(b.Cells.input),
      dc.(b.Cells.output) )
  in
  let p0, vin0, vout0 = static_bench false and p1, vin1, vout1 = static_bench true in
  (* The bench holds two inverters (driver + DUT) in opposite states, so
     its leakage is twice the per-inverter state average. *)
  let p_static = 0.25 *. (p0 +. p1) in
  let in_level = 0.5 *. (vin0 +. vin1) in
  let out_level = 0.5 *. (vout0 +. vout1) in
  let tau = time_scale pair ~fanout ~vdd in
  match
    measure_with_tau ?load ~fanout ~pair ~vdd ~tau ~attempt:0 ~in_level ~out_level ()
  with
  | None -> failwith "Metrics.inverter_metrics: no output transition observed"
  | Some (bench, wf, tp_lh, tp_hl, t1, t2, t_end) ->
    let times = wf.Mna.times in
    let i_vdd = Mna.source_current bench.Cells.net wf bench.Cells.vdd_node in
    (* Subtract the state-dependent leakage so long plateaus do not bury
       the switching energy: source low -> DUT input high (state 1
       static power applies at the *bench* level because driver + DUT +
       loads are all included in p0/p1). *)
    let mid_a = t1 +. tau and mid_b = t2 +. tau in
    let e_total = Measure.energy ~times ~current:i_vdd ~volts:1. ~t_from:0. ~t_to:t_end in
    let e_total = e_total *. vdd in
    let e_static =
      (p0 *. mid_a) +. (p1 *. (mid_b -. mid_a)) +. (p0 *. (t_end -. mid_b))
    in
    let e_switch = Float.max 0. (e_total -. e_static) in
    let v = Cells.vtc ~pair ~vdd () in
    let snm = Snm.snm v v in
    {
      tp_lh;
      tp_hl;
      tp = 0.5 *. (tp_lh +. tp_hl);
      p_static;
      e_switch;
      snm;
    }

let ro_frequency m ~stages = 1. /. (2. *. float_of_int stages *. m.tp)

let dynamic_power m ~frequency = m.e_switch *. frequency

let edp m ~stages =
  let n = float_of_int stages in
  let f = ro_frequency m ~stages in
  let period = 1. /. f in
  let p_total = n *. ((m.e_switch *. f) +. m.p_static) in
  p_total *. period *. period

type ring_metrics = {
  frequency : float;
  p_total : float;
  p_static_ring : float;
  p_dynamic : float;
}

let ring_metrics ?(dummy_loads = 3) ?(cycles = 8.) ~stages ~vdd () =
  let n = Array.length stages in
  let ring = Cells.ring_oscillator ~stages ~dummy_loads ~vdd () in
  let dc = Mna.solve_dc ring.Cells.net in
  (* Perturb the metastable point to start the oscillation. *)
  let x0 = Array.copy dc in
  Array.iteri
    (fun i tap ->
      let delta = if i mod 2 = 0 then 0.25 *. vdd else -0.25 *. vdd in
      x0.(tap) <- Float.max 0. (Float.min vdd (x0.(tap) +. delta)))
    ring.Cells.taps;
  (* Window sizing from the single-stage estimate. *)
  let tau = time_scale stages.(0) ~fanout:(dummy_loads + 1) ~vdd in
  let period_est = 2. *. float_of_int n *. 3. *. tau in
  let t_stop = cycles *. period_est in
  let dt = tau /. 8. in
  let wf = Mna.transient ~x0 ring.Cells.net ~t_stop ~dt in
  let times = wf.Mna.times in
  let tap0 = Mna.node_trace wf ring.Cells.taps.(0) in
  (* Discard the start-up transient before measuring. *)
  let t_settle = 0.4 *. t_stop in
  let keep_late arr =
    let out = ref [] in
    Array.iteri (fun k v -> if times.(k) >= t_settle then out := v :: !out) arr;
    Array.of_list (List.rev !out)
  in
  let times_l = keep_late times in
  let tap_l = keep_late tap0 in
  match Measure.period ~times:times_l ~values:tap_l ~level:(vdd /. 2.) with
  | None -> None
  | Some period ->
    let frequency = 1. /. period in
    let i_vdd = Mna.source_current ring.Cells.net wf ring.Cells.vdd_node in
    let i_l = keep_late i_vdd in
    let p_total = Measure.average ~times:times_l ~values:i_l ~t_from:t_settle *. vdd in
    (* DC leakage of one inverter per state, summed over stages (each
       stage spends half a period in each state). *)
    let p_static_ring =
      let single = stages.(0) in
      let wave_of state _ = if state then vdd else 0. in
      let p state =
        let b =
          Cells.inverter_fo4 ~pair:single ~fanout:dummy_loads ~vdd
            ~wave:(wave_of state) ()
        in
        let dc = Mna.solve_dc b.Cells.net in
        Float.abs (Mna.dc_current b.Cells.net dc b.Cells.vdd_node) *. vdd
      in
      (* The bench includes its driver; halve appropriately by measuring
         the bench delta between states... keep the simple stage-summed
         estimate: average of both states scaled to the stage count over
         the bench's two inverters. *)
      let avg = 0.5 *. (p false +. p true) in
      avg /. 2. *. float_of_int n
    in
    Some
      {
        frequency;
        p_total;
        p_static_ring;
        p_dynamic = Float.max 0. (p_total -. p_static_ring);
      }
