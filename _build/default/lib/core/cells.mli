(** Cell builders for the paper's representative circuits: FO4 inverters,
    15-stage ring oscillators, and latches, with the extrinsic parasitic
    network of Fig 3(a). *)

type pair = {
  nfet : Fet_model.t;
  pfet : Fet_model.t;
  ext : Gnr_model.extrinsic;
}
(** A complementary device pair plus its extrinsic parasitics.  Use
    [ext = { rs = 0.; rd = 0.; cgs_e = 0.; cgd_e = 0. }] (or
    {!no_parasitics}) for ideal/CMOS devices. *)

val no_parasitics : Gnr_model.extrinsic

val add_inverter :
  Netlist.t -> pair:pair -> vdd_node:Netlist.node -> input:Netlist.node -> output:Netlist.node -> unit
(** Stamp one inverter: contact resistances create internal drain/source
    nodes when non-zero; extrinsic junction capacitances connect the gate
    to the external source/drain terminals. *)

val add_gate_load :
  Netlist.t -> pair:pair -> vdd_node:Netlist.node -> input:Netlist.node -> unit
(** Stamp the *input load* of an inverter only: the bias-dependent gate
    capacitances of both FETs (drain and source tied, so no channel
    current) plus the extrinsic junction capacitances.  Used for fanout
    dummies so a FO4 ring oscillator stays compact. *)

val add_nand2 :
  Netlist.t ->
  pair:pair ->
  vdd_node:Netlist.node ->
  a:Netlist.node ->
  b:Netlist.node ->
  output:Netlist.node ->
  unit
(** Two-input NAND: series n-FET stack, parallel p-FETs, each device with
    its own contact parasitics. *)

val add_nor2 :
  Netlist.t ->
  pair:pair ->
  vdd_node:Netlist.node ->
  a:Netlist.node ->
  b:Netlist.node ->
  output:Netlist.node ->
  unit
(** Two-input NOR: parallel n-FETs, series p-FET stack. *)

type inverter_bench = {
  net : Netlist.t;
  vdd_node : Netlist.node;
  input : Netlist.node;  (** DUT input (driver output) *)
  output : Netlist.node;  (** DUT output *)
  source : Netlist.node;  (** raw driven source before the driver stage *)
}

val inverter_fo4 :
  pair:pair -> ?load:pair -> ?fanout:int -> vdd:float -> wave:(float -> float) -> unit -> inverter_bench
(** Testbench: source → driver inverter → DUT inverter loaded with
    [fanout] (default 4) gate-load replicas of [load] (default: the DUT
    pair itself). [wave] drives the source node. *)

type ring = {
  net : Netlist.t;
  vdd_node : Netlist.node;
  taps : Netlist.node array;  (** stage outputs, in ring order *)
}

val ring_oscillator :
  stages:pair array -> ?dummy_loads:int -> vdd:float -> unit -> ring
(** Odd-length ring; each stage additionally drives [dummy_loads]
    (default 3) gate loads of its own pair, making a fanout-of-four.
    The DC solution of an odd ring is its (unstable) metastable point, so
    transient measurements must start from a perturbed state — see
    {!Metrics.ring_metrics}. *)

val vtc : pair:pair -> vdd:float -> ?n:int -> unit -> Snm.vtc
(** Static voltage-transfer curve of the inverter (DC sweep with solution
    continuation); [n] (default 101) input samples. *)
