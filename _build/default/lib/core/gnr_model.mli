(** Large-signal circuit models of extrinsic GNRFETs, built from the
    quantum-transport lookup tables (Fig 3(a) of the paper).

    A GNRFET channel is an array of [n_gnr] (nominally 4) parallel GNRs on
    a 10 nm pitch; each GNR may carry its own width variation or charge
    impurity, which is how the 1-of-4 / 4-of-4 scenarios of Sections 4–5
    are expressed.  n-type and p-type devices are obtained from the
    ambipolar characteristic by gate work-function offset and mirroring,
    as the paper describes. *)

type polarity = N_type | P_type

type extrinsic = {
  rs : float;  (** source contact resistance, Ω (paper: 1k–100k, nominal 10k) *)
  rd : float;  (** drain contact resistance, Ω *)
  cgs_e : float;  (** extrinsic gate–source junction capacitance, F *)
  cgd_e : float;  (** extrinsic gate–drain junction capacitance, F *)
}

val default_extrinsic : ?n_gnr:int -> ?c_per_m:float -> ?contact_r:float -> unit -> extrinsic
(** Paper values: junction capacitance [c_per_m] = 0.05 aF/nm (mid-range of
    the quoted 0.01–0.1 aF/nm) times the array contact width
    ([n_gnr] × 10 nm pitch); [contact_r] = 10 kΩ. *)

val intrinsic :
  polarity:polarity -> vt_shift:float -> Iv_table.t -> Fet_model.t
(** Model of a single intrinsic GNR.  [vt_shift] is the gate work-function
    offset (V): positive values shift the I–V left (lower VT), exactly as
    in Fig 2(b).  Negative VDS is handled by source/drain exchange
    symmetry; the p-type model is the complementary mirror image. *)

val array_fet :
  ?name:string ->
  polarity:polarity ->
  vt_shift:float ->
  Iv_table.t list ->
  Fet_model.t
(** Parallel array of per-GNR tables (one entry per GNR, so heterogeneous
    arrays express single-GNR anomalies). *)

val vt_nominal : Iv_table.t -> float
(** Threshold voltage of the (unshifted) table — memoized; the circuit VT
    of a device with [vt_shift] is [vt_nominal - vt_shift]. *)

val shift_for_vt : Iv_table.t -> float -> float
(** Offset needed to place the device threshold at the given VT. *)
