let nominal = Params.default ()

let width n =
  if not (Lattice.is_semiconducting_for_fets n) then
    invalid_arg "Variants.width: not a FET-family index";
  Params.default ~gnr_index:n ()

let impurity charge =
  if charge = 0. then nominal else Params.with_impurity_charge nominal charge

let width_impurity n charge =
  if charge = 0. then width n else Params.with_impurity_charge (width n) charge

let paper_widths = [ 9; 12; 15; 18 ]

let paper_charges = [ -2.; -1.; 0.; 1.; 2. ]

let all_for_experiments =
  let widths = List.map width paper_widths in
  let impurities =
    List.filter_map
      (fun c -> if c = 0. then None else Some (impurity c))
      paper_charges
  in
  let combined =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun c ->
            if c = 0. || n = 12 then None else Some (width_impurity n c))
          [ -1.; 1. ])
      paper_widths
  in
  widths @ impurities @ combined
