(** Technology exploration over the (VDD, VT) plane — Section 3.1 and
    Fig 3(b) of the paper.

    The threshold voltage axis is realized through the gate work-function
    offset, which rigidly shifts the I–V curve (Fig 2(b)); VT(offset) =
    VT(0) − offset.  For each grid point the 15-stage FO4 ring-oscillator
    frequency, the EDP and the inverter SNM are computed from the
    characterized inverter. *)

type point = {
  vdd : float;
  vt : float;
  frequency : float;  (** 15-stage RO frequency, Hz *)
  edp : float;  (** J·s (plot as ln(aJ·ps) to match Fig 3(b)) *)
  snm : float;  (** inverter static noise margin, V *)
}

type surface = {
  vdds : float array;
  vts : float array;
  points : point array array;  (** [points.(i_vdd).(j_vt)] *)
}

val pair_at : ?n_gnr:int -> Iv_table.t -> vt:float -> Cells.pair
(** Complementary 4-GNR device pair with the threshold placed at [vt]. *)

val surface :
  ?stages:int ->
  ?vdds:float array ->
  ?vts:float array ->
  Iv_table.t ->
  surface
(** Sweep the plane (defaults: VDD 0.1–0.7 in 13 steps, VT 0–0.3 in 13
    steps, 15 stages). *)

val edp_ln_aj_ps : point -> float
(** ln(EDP / (aJ·ps)) — the contour value plotted in Fig 3(b). *)

type objective = Frequency | Edp | Snm_margin

val field : surface -> objective -> float array array

val contours :
  surface -> objective -> level:float -> Contour.polyline list
(** Iso-contours of a metric over the plane (x = VT, y = VDD as in the
    paper's figure). *)

type operating_point = { vdd : float; vt : float; value : float }

val min_edp : surface -> operating_point
(** Unconstrained EDP minimum over the grid. *)

val min_edp_at_frequency : surface -> ghz:float -> operating_point option
(** Point A: minimum EDP on (an interpolated neighbourhood of) the given
    frequency contour. *)

val min_edp_at_frequency_and_snm :
  surface -> ghz:float -> snm:float -> operating_point option
(** Point B: minimum EDP subject to both the frequency and SNM targets. *)

val same_edp_higher_vt :
  surface -> like:operating_point -> operating_point option
(** Point C: the highest-VT grid point with (approximately) the same EDP
    and SNM as [like], illustrating the potential-divider penalty. *)
