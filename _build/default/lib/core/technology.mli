(** The GNRFET-versus-scaled-CMOS comparison of Table 1.

    GNRFETs are evaluated at the three operating points of Fig 3(b)
    (A: minimum-EDP at 3 GHz; B: 3 GHz with an SNM floor; C: same EDP as B
    at a higher threshold); each CMOS node at VDD ∈ {0.8, 0.6, 0.4} V. *)

type row = {
  label : string;
  vdd : float;
  vt : float;
  frequency : float;  (** 15-stage FO4 RO frequency, Hz *)
  edp : float;  (** J·s *)
  snm : float;  (** V *)
}

val gnrfet_operating_points :
  ?surface:Explore.surface -> Iv_table.t -> row list
(** Points A, B and C.  A surface can be passed to avoid recomputing the
    sweep. *)

val cmos_rows : ?stages:int -> unit -> row list
(** The nine scaled-CMOS rows (3 nodes × 3 supplies), measured with the
    same inverter-characterization methodology as the GNRFET rows. *)

val cmos_pair : Node.t -> Cells.pair

val edp_improvement : gnrfet:row -> cmos:row -> float
(** The headline "40–168X" EDP ratio. *)
