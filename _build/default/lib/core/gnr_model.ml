type polarity = N_type | P_type

type extrinsic = { rs : float; rd : float; cgs_e : float; cgd_e : float }

let default_extrinsic ?(n_gnr = 4) ?(c_per_m = 0.05e-18 /. 1e-9) ?(contact_r = 10e3) () =
  (* 10 nm pitch per GNR; junction capacitance scales with the total
     contact width (Sec 3: 0.01-0.1 aF/nm x 40 nm). *)
  let contact_width = float_of_int n_gnr *. 10e-9 in
  let c = c_per_m *. contact_width in
  { rs = contact_r; rd = contact_r; cgs_e = c; cgd_e = c }

(* Raw n-type quantities from the ambipolar table with source/drain
   exchange for vds < 0 (symmetric contacts). *)
let n_current table ~shift ~vgs ~vds =
  if vds >= 0. then Iv_table.current_at table ~vg:(vgs +. shift) ~vd:vds
  else -.Iv_table.current_at table ~vg:(vgs +. shift -. vds) ~vd:(-.vds)

let n_caps table ~shift ~vgs ~vds =
  (* CGD,i = |dQ/dVDS|, CG,i = |dQ/dVGS|, CGS,i = CG,i - CGD,i (Sec 3). *)
  let vg_q, vd_q, swapped =
    if vds >= 0. then (vgs +. shift, vds, false)
    else (vgs +. shift -. vds, -.vds, true)
  in
  let cgd = Float.abs (Iv_table.dq_dvd table ~vg:vg_q ~vd:vd_q) in
  let cg = Float.abs (Iv_table.dq_dvg table ~vg:vg_q ~vd:vd_q) in
  let cgs = Float.max 0. (cg -. cgd) in
  if swapped then (cgd, cgs) else (cgs, cgd)

let intrinsic ~polarity ~vt_shift table =
  let name =
    Printf.sprintf "gnr-%s"
      (match polarity with N_type -> "n" | P_type -> "p")
  in
  match polarity with
  | N_type ->
    {
      Fet_model.name;
      id = (fun ~vgs ~vds -> n_current table ~shift:vt_shift ~vgs ~vds);
      cgs = (fun ~vgs ~vds -> fst (n_caps table ~shift:vt_shift ~vgs ~vds));
      cgd = (fun ~vgs ~vds -> snd (n_caps table ~shift:vt_shift ~vgs ~vds));
    }
  | P_type ->
    {
      Fet_model.name;
      id = (fun ~vgs ~vds -> -.n_current table ~shift:vt_shift ~vgs:(-.vgs) ~vds:(-.vds));
      cgs = (fun ~vgs ~vds -> fst (n_caps table ~shift:vt_shift ~vgs:(-.vgs) ~vds:(-.vds)));
      cgd = (fun ~vgs ~vds -> snd (n_caps table ~shift:vt_shift ~vgs:(-.vgs) ~vds:(-.vds)));
    }

let array_fet ?name ~polarity ~vt_shift tables =
  if tables = [] then invalid_arg "Gnr_model.array_fet: empty array";
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "gnrfet-%s-x%d"
        (match polarity with N_type -> "n" | P_type -> "p")
        (List.length tables)
  in
  Fet_model.parallel name (List.map (intrinsic ~polarity ~vt_shift) tables)

let vt_cache : (string, float) Hashtbl.t = Hashtbl.create 8

let vt_mutex = Mutex.create ()

let vt_nominal (table : Iv_table.t) =
  match Mutex.protect vt_mutex (fun () -> Hashtbl.find_opt vt_cache table.Iv_table.key) with
  | Some v -> v
  | None ->
    let v = Vt.extract_from_table table in
    Mutex.protect vt_mutex (fun () -> Hashtbl.replace vt_cache table.Iv_table.key v);
    v

let shift_for_vt table vt_target = vt_nominal table -. vt_target
