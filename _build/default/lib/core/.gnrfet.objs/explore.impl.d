lib/core/explore.ml: Array Cells Contour Float Gnr_model List Metrics Vec
