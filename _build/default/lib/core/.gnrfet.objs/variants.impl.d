lib/core/variants.ml: Lattice List Params
