lib/core/technology.mli: Cells Explore Iv_table Node
