lib/core/metrics.mli: Cells
