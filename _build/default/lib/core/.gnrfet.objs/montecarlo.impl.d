lib/core/montecarlo.ml: Array Cells Fet_model Gnr_model Hashtbl Metrics Mutex Printf Rng Stats Variation
