lib/core/montecarlo.mli: Stats Variation
