lib/core/technology.ml: Array Cells Compact Explore List Metrics Node Printf
