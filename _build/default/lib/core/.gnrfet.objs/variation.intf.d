lib/core/variation.mli: Cells Metrics
