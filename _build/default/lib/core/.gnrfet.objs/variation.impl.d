lib/core/variation.ml: Array Cells Float Gnr_model Hashtbl List Metrics Mna Netlist Printf Snm Table_cache Variants
