lib/core/gnr_model.mli: Fet_model Iv_table
