lib/core/cells.ml: Array Fet_model Gnr_model List Mna Netlist Snm Vec
