lib/core/metrics.ml: Array Cells Fet_model Float Gnr_model List Measure Mna Snm
