lib/core/explore.mli: Cells Contour Iv_table
