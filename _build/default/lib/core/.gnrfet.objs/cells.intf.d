lib/core/cells.mli: Fet_model Gnr_model Netlist Snm
