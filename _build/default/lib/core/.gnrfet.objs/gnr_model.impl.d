lib/core/gnr_model.ml: Fet_model Float Hashtbl Iv_table List Mutex Printf Vt
