(** The canonical device-variant set of the paper's variability and defect
    study (Sections 4–5). *)

val nominal : Params.t
(** Ideal N = 12 device. *)

val width : int -> Params.t
(** Clean device of the given A-GNR index (9, 12, 15, 18). *)

val impurity : float -> Params.t
(** N = 12 device with an oxide charge impurity of the given magnitude in
    units of |q| (±1, ±2); 0 returns the nominal device. *)

val width_impurity : int -> float -> Params.t
(** Combined width variation and charge impurity (Table 4 / Monte Carlo). *)

val paper_widths : int list
(** [9; 12; 15; 18] — the semiconducting indices studied (3q and 3q+1
    families only). *)

val paper_charges : float list
(** [-2.; -1.; 0.; 1.; 2.]. *)

val all_for_experiments : Params.t list
(** Every distinct device the tables/figures need; used by the table
    pre-generation tool. *)
