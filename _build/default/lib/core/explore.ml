type point = {
  vdd : float;
  vt : float;
  frequency : float;
  edp : float;
  snm : float;
}

type surface = {
  vdds : float array;
  vts : float array;
  points : point array array;
}

let pair_at ?(n_gnr = 4) table ~vt =
  let shift = Gnr_model.shift_for_vt table vt in
  let tables = List.init n_gnr (fun _ -> table) in
  {
    Cells.nfet = Gnr_model.array_fet ~polarity:Gnr_model.N_type ~vt_shift:shift tables;
    pfet = Gnr_model.array_fet ~polarity:Gnr_model.P_type ~vt_shift:shift tables;
    ext = Gnr_model.default_extrinsic ~n_gnr ();
  }

let surface ?(stages = 15) ?vdds ?vts table =
  let vdds = match vdds with Some v -> v | None -> Vec.linspace 0.1 0.7 13 in
  let vts = match vts with Some v -> v | None -> Vec.linspace 0. 0.3 13 in
  let points =
    Array.map
      (fun vdd ->
        Array.map
          (fun vt ->
            let pair = pair_at table ~vt in
            let m = Metrics.inverter_metrics ~pair ~vdd () in
            {
              vdd;
              vt;
              frequency = Metrics.ro_frequency m ~stages;
              edp = Metrics.edp m ~stages;
              snm = m.Metrics.snm;
            })
          vts)
      vdds
  in
  { vdds; vts; points }

let edp_ln_aj_ps p = log (p.edp /. 1e-30)

type objective = Frequency | Edp | Snm_margin

let metric objective p =
  match objective with
  | Frequency -> p.frequency
  | Edp -> p.edp
  | Snm_margin -> p.snm

let field s objective = Array.map (Array.map (metric objective)) s.points

(* The paper plots VT on x and VDD on y. *)
let contours s objective ~level =
  let values =
    (* transpose: values.(i_vt).(j_vdd) *)
    Array.init (Array.length s.vts) (fun i ->
        Array.init (Array.length s.vdds) (fun j -> metric objective s.points.(j).(i)))
  in
  Contour.extract ~xs:s.vts ~ys:s.vdds ~values ~level

type operating_point = { vdd : float; vt : float; value : float }

let fold_points s f init =
  Array.fold_left
    (fun acc row -> Array.fold_left f acc row)
    init s.points

let min_edp s =
  let best =
    fold_points s
      (fun acc p ->
        match acc with
        | Some b when b.edp <= p.edp -> acc
        | Some _ | None -> Some p)
      None
  in
  match best with
  | Some p -> { vdd = p.vdd; vt = p.vt; value = p.edp }
  | None -> invalid_arg "Explore.min_edp: empty surface"

(* Grid points whose frequency straddles the target within one grid cell
   qualify as "on the contour" (the paper reads these off graphically). *)
let freq_tolerance = 0.12

let min_edp_where s pred =
  fold_points s
    (fun acc p ->
      if pred p then begin
        match acc with
        | Some b when b.value <= p.edp -> acc
        | Some _ | None -> Some { vdd = p.vdd; vt = p.vt; value = p.edp }
      end
      else acc)
    None

let min_edp_at_frequency s ~ghz =
  let target = ghz *. 1e9 in
  min_edp_where s (fun p ->
      Float.abs (p.frequency -. target) <= freq_tolerance *. target)

let min_edp_at_frequency_and_snm s ~ghz ~snm =
  let target = ghz *. 1e9 in
  min_edp_where s (fun p ->
      p.frequency >= (1. -. freq_tolerance) *. target && p.snm >= snm)

let same_edp_higher_vt s ~like =
  (* Same EDP (within 25%) and at least the SNM of the reference, at a
     strictly higher VT; prefer the highest VT. *)
  let ref_snm =
    fold_points s
      (fun acc p ->
        if p.vdd = like.vdd && p.vt = like.vt then Some p.snm else acc)
      None
  in
  let ref_snm = match ref_snm with Some v -> v | None -> 0. in
  fold_points s
    (fun acc p ->
      let same_edp = Float.abs (p.edp -. like.value) <= 0.25 *. like.value in
      let qualifies = same_edp && p.vt > like.vt && p.snm >= 0.9 *. ref_snm in
      if qualifies then begin
        match acc with
        | Some b when b.vt >= p.vt -> acc
        | Some _ | None -> Some { vdd = p.vdd; vt = p.vt; value = p.edp }
      end
      else acc)
    None
