type op_point = { vdd : float; vt : float }

let point_b = { vdd = 0.4; vt = 0.13 }

type spec = { gnr_index : int; charge : float }

let nominal_spec = { gnr_index = 12; charge = 0. }

type entry = {
  p_spec : spec;
  n_spec : spec;
  one : Metrics.inverter_metrics;
  all : Metrics.inverter_metrics;
}

type table = {
  op : op_point;
  nominal : Metrics.inverter_metrics;
  rows : spec list;
  cols : spec list;
  entries : entry array array;
}

let params_of { gnr_index; charge } = Variants.width_impurity gnr_index charge

let table_of spec = Table_cache.get (params_of spec)

(* The p-type model is the mirror image of an n-type table (u -> -u), so a
   *physical* impurity charge Q next to a p-FET is represented by the
   n-type table computed with charge -Q — exactly the paper's observation
   that "+q has the same effect on a pGNRFET as -q on an nGNRFET". *)
let table_for_polarity polarity spec =
  match polarity with
  | Gnr_model.N_type -> table_of spec
  | Gnr_model.P_type -> table_of { spec with charge = -.spec.charge }

(* The gate metal (and hence the offset realizing the target VT) is chosen
   once, for the nominal device; variants inherit it. *)
let nominal_shift op =
  Gnr_model.shift_for_vt (table_of nominal_spec) op.vt

let fet_tables ~polarity ~spec ~all_four =
  let anomalous = table_for_polarity polarity spec in
  let nominal = table_of nominal_spec in
  if all_four then [ anomalous; anomalous; anomalous; anomalous ]
  else [ anomalous; nominal; nominal; nominal ]

let pair_for ?(n_gnr = 4) ~op ~n_spec ~p_spec ~all_four () =
  ignore n_gnr;
  let shift = nominal_shift op in
  let n_tables = fet_tables ~polarity:Gnr_model.N_type ~spec:n_spec ~all_four in
  let p_tables = fet_tables ~polarity:Gnr_model.P_type ~spec:p_spec ~all_four in
  {
    Cells.nfet = Gnr_model.array_fet ~polarity:Gnr_model.N_type ~vt_shift:shift n_tables;
    pfet = Gnr_model.array_fet ~polarity:Gnr_model.P_type ~vt_shift:shift p_tables;
    ext = Gnr_model.default_extrinsic ();
  }

(* Inverter metrics are reused across tables (Table 4 shares corners with
   Tables 2 and 3) — memoize on the full configuration. *)
let metrics_cache : (string, Metrics.inverter_metrics) Hashtbl.t = Hashtbl.create 64

let metrics_for ~op ~n_spec ~p_spec ~all_four =
  let key =
    Printf.sprintf "%g/%g|n%d:%g|p%d:%g|%b" op.vdd op.vt n_spec.gnr_index
      n_spec.charge p_spec.gnr_index p_spec.charge all_four
  in
  match Hashtbl.find_opt metrics_cache key with
  | Some m -> m
  | None ->
    let pair = pair_for ~op ~n_spec ~p_spec ~all_four () in
    let m = Metrics.inverter_metrics ~pair ~vdd:op.vdd () in
    Hashtbl.replace metrics_cache key m;
    m

let inverter_table ?(op = point_b) ~rows ~cols () =
  let nominal =
    metrics_for ~op ~n_spec:nominal_spec ~p_spec:nominal_spec ~all_four:false
  in
  let entries =
    Array.map
      (fun p_spec ->
        Array.map
          (fun n_spec ->
            {
              p_spec;
              n_spec;
              one = metrics_for ~op ~n_spec ~p_spec ~all_four:false;
              all = metrics_for ~op ~n_spec ~p_spec ~all_four:true;
            })
          (Array.of_list cols))
      (Array.of_list rows)
  in
  { op; nominal; rows; cols; entries }

let width_spec n = { gnr_index = n; charge = 0. }

let charge_spec c = { gnr_index = 12; charge = c }

let width_table ?op () =
  let specs = List.map width_spec Variants.paper_widths in
  inverter_table ?op ~rows:specs ~cols:specs ()

let impurity_table ?op () =
  (* Paper's print order: p rows +2q..-2q, n cols -2q..+2q. *)
  let rows = List.map charge_spec [ 2.; 1.; 0.; -1.; -2. ] in
  let cols = List.map charge_spec [ -2.; -1.; 0.; 1.; 2. ] in
  inverter_table ?op ~rows ~cols ()

let combined_table ?op () =
  let specs =
    [
      { gnr_index = 9; charge = -1. };
      { gnr_index = 9; charge = 1. };
      { gnr_index = 18; charge = -1. };
      { gnr_index = 18; charge = 1. };
    ]
  in
  (* Paper's rows list the p-FET anomalies 9,+q / 9,-q / 18,+q / 18,-q. *)
  let rows =
    [
      { gnr_index = 9; charge = 1. };
      { gnr_index = 9; charge = -1. };
      { gnr_index = 18; charge = 1. };
      { gnr_index = 18; charge = -1. };
    ]
  in
  inverter_table ?op ~rows ~cols:specs ()

let pct ~nominal value =
  if nominal = 0. then 0. else (value -. nominal) /. nominal *. 100.

type latch_study = {
  label : string;
  butterfly : (float * float) list * (float * float) list;
  snm : float;
  static_power : float;
}

let latch ?(op = point_b) ~n_spec ~p_spec ~all_four () =
  let pair = pair_for ~op ~n_spec ~p_spec ~all_four () in
  (* Both inverters of the latch carry the same anomaly (paper Fig 7). *)
  let v = Cells.vtc ~pair ~vdd:op.vdd () in
  let snm = Snm.snm v v in
  let curves = Snm.butterfly v v in
  (* Static power at a stable state: solve the cross-coupled pair. *)
  let net = Netlist.create () in
  let vdd_node = Netlist.fresh_node net in
  Netlist.vdc net vdd_node op.vdd;
  let a = Netlist.fresh_node net and b = Netlist.fresh_node net in
  Cells.add_inverter net ~pair ~vdd_node ~input:a ~output:b;
  Cells.add_inverter net ~pair ~vdd_node ~input:b ~output:a;
  (* Seed Newton near a stable state (a low, b high). *)
  let x0 = Array.make (Netlist.node_count net) 0. in
  x0.(vdd_node) <- op.vdd;
  x0.(b) <- op.vdd;
  let dc = Mna.solve_dc ~x0 net in
  let static_power = Float.abs (Mna.dc_current net dc vdd_node) *. op.vdd in
  let label =
    Printf.sprintf "n(N=%d,%+gq) p(N=%d,%+gq) %s" n_spec.gnr_index
      n_spec.charge p_spec.gnr_index p_spec.charge
      (if all_four then "all GNRs" else "single GNR")
  in
  { label; butterfly = curves; snm; static_power }

let latch_worst_case ?op ~all_four () =
  latch ?op
    ~n_spec:{ gnr_index = 9; charge = 1. }
    ~p_spec:{ gnr_index = 18; charge = -1. }
    ~all_four ()

type write_result = { flipped : bool; settle : float }

let latch_write ?(op = point_b) ?(drive_ohms = 20e3) ~n_spec ~p_spec ~all_four
    ~pulse_width () =
  let pair = pair_for ~op ~n_spec ~p_spec ~all_four () in
  let net = Netlist.create () in
  let vdd_node = Netlist.fresh_node net in
  Netlist.vdc net vdd_node op.vdd;
  let a = Netlist.fresh_node net and b = Netlist.fresh_node net in
  Cells.add_inverter net ~pair ~vdd_node ~input:a ~output:b;
  Cells.add_inverter net ~pair ~vdd_node ~input:b ~output:a;
  (* Write port: pulse into node a through an access resistance. *)
  let port = Netlist.fresh_node net in
  let t_start = 0. in
  Netlist.vsource net port (fun t ->
      if t > t_start && t <= t_start +. pulse_width then op.vdd else 0.);
  Netlist.add net (Netlist.Resistor { a = port; b = a; ohms = drive_ohms });
  (* Start from the stable (a low, b high) state. *)
  let x0 = Array.make (Netlist.node_count net) 0. in
  x0.(vdd_node) <- op.vdd;
  x0.(b) <- op.vdd;
  let dc = Mna.solve_dc ~x0 net in
  let tau = Metrics.time_scale pair ~fanout:1 ~vdd:op.vdd in
  let t_stop = pulse_width +. (40. *. tau) in
  let wf = Mna.transient ~x0:dc net ~t_stop ~dt:(tau /. 10.) in
  let a_trace = Mna.node_trace wf a in
  let final = a_trace.(Array.length a_trace - 1) in
  let flipped = final > op.vdd /. 2. in
  let settle =
    (* First time after which a stays on its final side of VDD/2. *)
    let level = op.vdd /. 2. in
    let t = ref 0. in
    Array.iteri
      (fun k v ->
        let on_final_side = (v > level) = flipped in
        if not on_final_side then t := wf.Mna.times.(k))
      a_trace;
    !t
  in
  { flipped; settle }

let minimum_write_pulse ?op ?drive_ohms ~n_spec ~p_spec ~all_four () =
  let try_width w =
    (latch_write ?op ?drive_ohms ~n_spec ~p_spec ~all_four ~pulse_width:w ()).flipped
  in
  (* Find an upper bracket, then bisect. *)
  let pair_op = match op with Some o -> o | None -> point_b in
  let tau =
    Metrics.time_scale
      (pair_for ~op:pair_op ~n_spec ~p_spec ~all_four ())
      ~fanout:1 ~vdd:pair_op.vdd
  in
  let rec grow w tries =
    if tries > 12 then w
    else if try_width w then w
    else grow (2. *. w) (tries + 1)
  in
  let hi = grow tau 0 in
  let rec bisect lo hi it =
    if it = 0 then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if try_width mid then bisect lo mid (it - 1) else bisect mid hi (it - 1)
    end
  in
  bisect 0. hi 10
