(** A-GNR band structure from the tight-binding Bloch Hamiltonian. *)

type t = private {
  n : int;
  ka : float array;  (** Bloch phases sampled over [\[0, pi\]] *)
  energies : float array array;  (** [energies.(k).(band)], ascending, eV *)
}

val compute : ?nk:int -> Tight_binding.t -> t
(** Sample the band structure on [nk] (default 33) k-points from 0 to pi. *)

val band_gap : t -> float
(** Fundamental gap [2 * min |E|] in eV (electron–hole symmetric spectrum). *)

val conduction_subbands : t -> int -> (float * float) array
(** [conduction_subbands b m] returns, for the lowest [m] conduction
    subbands, the pair (band minimum, band maximum) in eV.  Subband [p] is
    the p-th positive eigenvalue at each k, tracked by sorted order. *)

val gap_of_index : ?nk:int -> int -> float
(** Convenience: band gap (eV) of the A-GNR with the given index, with
    default hopping parameters. Results are memoized. *)
