(** pz-orbital nearest-neighbour tight-binding Hamiltonian of an A-GNR.

    The hopping is [-t] (t = 2.7 eV) on every nearest-neighbour bond, with
    the edge dimer bonds strengthened to [-t (1 + delta)] according to the
    ab-initio edge relaxation of Son–Cohen–Louie; on-site energies are zero
    (mid-gap reference). *)

type t = private {
  n : int;  (** GNR index (dimer lines) *)
  h00 : Matrix.t;  (** intra-cell block, [2n] × [2n], real symmetric *)
  h01 : Matrix.t;  (** coupling to the next cell along transport *)
}

val make : ?hopping:float -> ?edge_delta:float -> int -> t
(** [make n] builds the Hamiltonian blocks for index [n] (defaults:
    [Const.t_pz], [Const.edge_bond_relaxation]). *)

val of_bonds :
  n:int ->
  size:int ->
  hopping:float ->
  within:(int * int) list ->
  next:(int * int) list ->
  t
(** Generic constructor from explicit bond lists (used by {!Zigzag} and
    the test fixtures): uniform hopping [-t] on every listed bond. *)

val bloch : t -> float -> Cmatrix.t
(** [bloch tb ka] is [H00 + H01 e^{i ka} + H01^T e^{-i ka}] with [ka] the
    dimensionless Bloch phase in [\[-pi, pi\]]. *)
