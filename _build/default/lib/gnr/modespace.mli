(** Mode-space reduction of the A-GNR Hamiltonian.

    Each conduction/valence subband pair is mapped onto an effective 1D
    dimer chain (two sites per unit cell, alternating hoppings [t1], [t2])
    whose dispersion [E(k) = ±sqrt(t1² + t2² + 2 t1 t2 cos ka)] reproduces
    the subband edges exactly: |t1 − t2| = subband minimum (half-gap) and
    t1 + t2 = subband maximum.  The chain carries both the electron and the
    hole band, so ambipolar Schottky-barrier transport emerges naturally.

    This is the "efficient computational algorithm" substitution documented
    in DESIGN.md: exact at the band edges, accurate through the gap (complex
    band), validated against the full real-space solver in the test suite. *)

type mode = {
  index : int;  (** subband number, 0 = lowest *)
  delta : float;  (** half-gap of this subband, eV *)
  emax : float;  (** subband maximum, eV *)
  t1 : float;  (** intra-cell hopping of the effective chain, eV *)
  t2 : float;  (** inter-cell hopping, eV *)
}

type t = {
  n : int;  (** GNR index *)
  gap : float;  (** fundamental gap, eV *)
  modes : mode array;  (** lowest subbands, ascending by [delta] *)
}

val reduce : ?nk:int -> ?n_modes:int -> int -> t
(** [reduce n] extracts the lowest [n_modes] (default 2) subbands of the
    index-[n] A-GNR (default hopping parameters).  Memoized per
    [(n, n_modes)]. *)

val site_spacing : float
(** Longitudinal spacing between chain sites, m ([period / 2]). *)

val sites_for_length : float -> int
(** Number of chain sites covering a channel of the given length (m),
    rounded to full unit cells (even count, at least 4). *)
