let armchair_gap ?(hopping = Const.t_pz) n =
  if n < 2 then invalid_arg "Analytic.armchair_gap: index must be >= 2";
  let best = ref infinity in
  for p = 1 to n do
    let q = Float.pi *. float_of_int p /. float_of_int (n + 1) in
    best := Float.min !best (Float.abs (1. +. (2. *. cos q)))
  done;
  2. *. hopping *. !best

let fermi_velocity ?(hopping = Const.t_pz) () =
  (* E = hbar v_F k near the Dirac point: v_F = 3 t a_cc / (2 hbar), with
     t in joules. *)
  3. *. hopping *. Const.q *. Const.a_cc /. (2. *. Const.hbar)

let dirac_gap_estimate n =
  let width_e = float_of_int (n + 1) *. Const.a_graphene /. 2. in
  let hbar_vf = Const.hbar *. fermi_velocity () in
  (* In eV: 2 pi hbar v_F / (3 W), converting J -> eV. *)
  2. *. Float.pi *. hbar_vf /. (3. *. width_e) /. Const.q
