type mode = { index : int; delta : float; emax : float; t1 : float; t2 : float }
type t = { n : int; gap : float; modes : mode array }

let cache : (int * int, t) Hashtbl.t = Hashtbl.create 8

let cache_mutex = Mutex.create ()

let reduce ?(nk = 65) ?(n_modes = 2) n =
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache (n, n_modes)) with
  | Some v -> v
  | None ->
    let bands = Bands.compute ~nk (Tight_binding.make n) in
    let subbands = Bands.conduction_subbands bands n_modes in
    let modes =
      Array.mapi
        (fun index (delta, emax) ->
          { index; delta; emax; t1 = (emax +. delta) /. 2.; t2 = (emax -. delta) /. 2. })
        subbands
    in
    let v = { n; gap = Bands.band_gap bands; modes } in
    Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache (n, n_modes) v);
    v

let site_spacing = Lattice.period /. 2.

let sites_for_length length =
  if length <= 0. then invalid_arg "Modespace.sites_for_length: non-positive length";
  let cells = max 2 (int_of_float (Float.round (length /. Lattice.period))) in
  2 * cells
