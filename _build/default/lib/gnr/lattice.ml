type family = Family_3q | Family_3q1 | Family_3q2

let family n =
  if n < 2 then invalid_arg "Lattice.family: index must be >= 2";
  match n mod 3 with
  | 0 -> Family_3q
  | 1 -> Family_3q1
  | 2 -> Family_3q2
  | _ -> assert false

let is_semiconducting_for_fets n =
  match family n with
  | Family_3q | Family_3q1 -> true
  | Family_3q2 -> false

let width n = float_of_int (n - 1) *. Const.a_graphene /. 2.

let period = 3. *. Const.a_cc

let atoms_per_cell n = 2 * n

type atom = { x : float; y : float; row : int }

(* Rows alternate between the two x-offset patterns of the honeycomb with
   horizontal bonds: even rows hold atoms at x = 0 and a_cc, odd rows at
   x = 1.5 a_cc and 2.5 a_cc (modulo the 3 a_cc period). *)
let unit_cell n =
  if n < 2 then invalid_arg "Lattice.unit_cell: index must be >= 2";
  let acc = Const.a_cc in
  let dy = Const.a_graphene /. 2. in
  Array.init (2 * n) (fun k ->
      let row = k / 2 in
      let second = k mod 2 = 1 in
      let x =
        if row mod 2 = 0 then if second then acc else 0.
        else if second then 2.5 *. acc
        else 1.5 *. acc
      in
      { x; y = float_of_int row *. dy; row })

let bond_length = Const.a_cc

let close a b dx =
  let d = Float.hypot (a.x -. b.x +. dx) (a.y -. b.y) in
  Float.abs (d -. bond_length) < 0.05 *. bond_length

let neighbours_within_cell n =
  let atoms = unit_cell n in
  let out = ref [] in
  for i = 0 to Array.length atoms - 1 do
    for j = i + 1 to Array.length atoms - 1 do
      if close atoms.(i) atoms.(j) 0. then out := (i, j) :: !out
    done
  done;
  List.rev !out

let neighbours_to_next_cell n =
  let atoms = unit_cell n in
  let out = ref [] in
  (* Atom j of the next cell sits at x + period. *)
  for i = 0 to Array.length atoms - 1 do
    for j = 0 to Array.length atoms - 1 do
      if close atoms.(i) { (atoms.(j)) with x = atoms.(j).x +. period } 0. then
        out := (i, j) :: !out
    done
  done;
  List.rev !out

let is_edge_bond n (i, j) =
  let atoms = unit_cell n in
  let edge row = row = 0 || row = n - 1 in
  edge atoms.(i).row && atoms.(i).row = atoms.(j).row && edge atoms.(j).row
