(** Closed-form band-structure results used to validate the numerical
    tight-binding machinery.

    For an uncorrected (no edge relaxation) nearest-neighbour A-GNR the
    transverse momenta are quantized as q_p = p·π/(N+1) and the gap is the
    minimum of 2t·|1 + 2cos q_p| over the subbands — exactly zero for the
    3q+2 family, recovering the well-known three-family behaviour. *)

val armchair_gap : ?hopping:float -> int -> float
(** Analytic gap (eV) of the index-[n] A-GNR with uniform hopping (no edge
    correction); equals the numerical {!Bands.band_gap} of
    [Tight_binding.make ~edge_delta:0.] to solver accuracy. *)

val fermi_velocity : ?hopping:float -> unit -> float
(** Graphene Fermi velocity [3 t a_cc / (2 hbar)] in m/s (≈ 0.88e6 for
    t = 2.7 eV). *)

val dirac_gap_estimate : int -> float
(** k·p (Dirac) estimate of the 3q-family gap, [2π ħ v_F / (3 W̃)] with
    W̃ = (N+1)·a/2 the electronic width: the ~1/W scaling the paper quotes
    ("band-gap … inversely proportional to width"). *)
