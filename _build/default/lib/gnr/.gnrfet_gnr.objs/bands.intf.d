lib/gnr/bands.mli: Tight_binding
