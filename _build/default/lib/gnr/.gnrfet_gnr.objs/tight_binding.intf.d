lib/gnr/tight_binding.mli: Cmatrix Matrix
