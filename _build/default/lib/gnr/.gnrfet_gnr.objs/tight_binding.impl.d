lib/gnr/tight_binding.ml: Cmatrix Complex Const Lattice List Matrix
