lib/gnr/analytic.ml: Const Float
