lib/gnr/zigzag.ml: Array Const Float Lattice List Tight_binding
