lib/gnr/modespace.ml: Array Bands Float Hashtbl Lattice Mutex Tight_binding
