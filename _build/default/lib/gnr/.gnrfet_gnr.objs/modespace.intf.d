lib/gnr/modespace.mli:
