lib/gnr/zigzag.mli: Lattice Tight_binding
