lib/gnr/lattice.ml: Array Const Float List
