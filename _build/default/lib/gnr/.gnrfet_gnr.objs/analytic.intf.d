lib/gnr/analytic.mli:
