lib/gnr/lattice.mli:
