lib/gnr/bands.ml: Array Eigen Float Hashtbl List Mutex Tight_binding Vec
