type t = { n : int; ka : float array; energies : float array array }

let compute ?(nk = 33) tb =
  if nk < 2 then invalid_arg "Bands.compute: nk must be >= 2";
  let ka = Vec.linspace 0. Float.pi nk in
  let energies =
    Array.map (fun k -> Eigen.hermitian_values (Tight_binding.bloch tb k)) ka
  in
  { n = tb.Tight_binding.n; ka; energies }

let band_gap b =
  let m = ref infinity in
  Array.iter
    (fun es -> Array.iter (fun e -> m := Float.min !m (Float.abs e)) es)
    b.energies;
  2. *. !m

let conduction_subbands b m =
  if m < 1 then invalid_arg "Bands.conduction_subbands: m must be positive";
  let positive es =
    let ps = Array.of_list (List.filter (fun e -> e > 0.) (Array.to_list es)) in
    Array.sort compare ps;
    ps
  in
  let per_k = Array.map positive b.energies in
  let available = Array.fold_left (fun acc ps -> min acc (Array.length ps)) max_int per_k in
  let m = min m available in
  Array.init m (fun p ->
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun ps ->
          lo := Float.min !lo ps.(p);
          hi := Float.max !hi ps.(p))
        per_k;
      (!lo, !hi))

let gap_cache : (int, float) Hashtbl.t = Hashtbl.create 8

let gap_mutex = Mutex.create ()

let gap_of_index ?(nk = 65) n =
  match Mutex.protect gap_mutex (fun () -> Hashtbl.find_opt gap_cache n) with
  | Some g -> g
  | None ->
    let g = band_gap (compute ~nk (Tight_binding.make n)) in
    Mutex.protect gap_mutex (fun () -> Hashtbl.replace gap_cache n g);
    g
