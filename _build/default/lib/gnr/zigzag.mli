(** Zigzag graphene-nanoribbon (Z-GNR) lattice and Hamiltonian.

    The paper restricts its FET channels to armchair ribbons (all sub-10 nm
    A-GNRs are semiconducting); zigzag ribbons carry flat edge-state bands
    at the charge-neutrality point and are effectively metallic, which this
    module demonstrates — completing the lattice library and providing a
    negative control for the FET-channel selection. *)

val period : float
(** Unit-cell length along transport, m ([a_graphene]). *)

val atoms_per_cell : int -> int
(** [2 n] for [n] zigzag chains. *)

val width : int -> float
(** Ribbon width in meters, [(3 n / 2 - 1) * a_cc]. *)

val unit_cell : int -> Lattice.atom array
(** Atom positions of one unit cell ([row] = zigzag-chain index). *)

val neighbours_within_cell : int -> (int * int) list

val neighbours_to_next_cell : int -> (int * int) list

val hamiltonian : ?hopping:float -> int -> Tight_binding.t
(** Tight-binding blocks of the index-[n] Z-GNR (no edge correction: the
    zigzag edge has no dimer bonds). Usable with {!Bands.compute}. *)
