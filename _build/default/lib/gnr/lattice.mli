(** Armchair graphene-nanoribbon (A-GNR) lattice geometry.

    An A-GNR of index [n] has [n] dimer lines across the width; the
    translational unit cell along the transport axis contains [2 n] atoms
    and has length [3 a_cc = 0.426 nm] (the paper's notation, following
    Nakada et al.). *)

type family = Family_3q | Family_3q1 | Family_3q2
(** The three A-GNR families: with the tight-binding edge correction the
    gaps order as Eg(3q+1) > Eg(3q) >> Eg(3q+2) > 0. *)

val family : int -> family
(** Family of index [n] (by [n mod 3]: 0, 1, 2). *)

val is_semiconducting_for_fets : int -> bool
(** True for the [3q] and [3q+1] families used as FET channels in the paper
    (the small-gap [3q+2] family is excluded there). *)

val width : int -> float
(** Ribbon width in meters, [(n-1) * a_graphene / 2]. *)

val period : float
(** Unit-cell length along transport, m. *)

val atoms_per_cell : int -> int
(** [2 n]. *)

type atom = { x : float; y : float; row : int }
(** Position within the unit cell (m), [row] = dimer-line index 0..n-1. *)

val unit_cell : int -> atom array
(** The [2 n] atom positions of one unit cell, ordered by row then x. *)

val neighbours_within_cell : int -> (int * int) list
(** Index pairs (i < j) of nearest-neighbour bonds inside a unit cell. *)

val neighbours_to_next_cell : int -> (int * int) list
(** Pairs (i, j): atom [i] of a cell bonds to atom [j] of the next cell. *)

val is_edge_bond : int -> int * int -> bool
(** Whether a (within-cell) bond connects two atoms both on an edge dimer
    line (row 0 or row n-1): these bonds carry the edge correction. *)
