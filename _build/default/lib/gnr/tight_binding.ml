type t = { n : int; h00 : Matrix.t; h01 : Matrix.t }

let make ?(hopping = Const.t_pz) ?(edge_delta = Const.edge_bond_relaxation) n =
  if n < 2 then invalid_arg "Tight_binding.make: index must be >= 2";
  let size = Lattice.atoms_per_cell n in
  let h00 = Matrix.create size size in
  let h01 = Matrix.create size size in
  List.iter
    (fun (i, j) ->
      let t = if Lattice.is_edge_bond n (i, j) then hopping *. (1. +. edge_delta) else hopping in
      Matrix.set h00 i j (-.t);
      Matrix.set h00 j i (-.t))
    (Lattice.neighbours_within_cell n);
  List.iter
    (fun (i, j) -> Matrix.set h01 i j (-.hopping))
    (Lattice.neighbours_to_next_cell n);
  { n; h00; h01 }

let of_bonds ~n ~size ~hopping ~within ~next =
  let h00 = Matrix.create size size in
  let h01 = Matrix.create size size in
  List.iter
    (fun (i, j) ->
      Matrix.set h00 i j (-.hopping);
      Matrix.set h00 j i (-.hopping))
    within;
  List.iter (fun (i, j) -> Matrix.set h01 i j (-.hopping)) next;
  { n; h00; h01 }

let bloch tb ka =
  let size, _ = Matrix.dims tb.h00 in
  let phase = { Complex.re = cos ka; im = sin ka } in
  Cmatrix.init size size (fun i j ->
      let base = { Complex.re = Matrix.get tb.h00 i j; im = 0. } in
      let fwd = Complex.mul phase { Complex.re = Matrix.get tb.h01 i j; im = 0. } in
      let bwd =
        Complex.mul (Complex.conj phase) { Complex.re = Matrix.get tb.h01 j i; im = 0. }
      in
      Complex.add base (Complex.add fwd bwd))
