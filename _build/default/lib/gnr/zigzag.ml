let period = Const.a_graphene

let atoms_per_cell n = 2 * n

let width n =
  if n < 2 then invalid_arg "Zigzag.width: index must be >= 2";
  ((1.5 *. float_of_int n) -. 1.) *. Const.a_cc

(* Chain m holds A_m at x in {0, a/2} (by parity) with its B partner half a
   period away and 0.5 a_cc above; successive chains are linked by vertical
   a_cc bonds. *)
let unit_cell n =
  if n < 2 then invalid_arg "Zigzag.unit_cell: index must be >= 2";
  let acc = Const.a_cc in
  let half = period /. 2. in
  Array.init (2 * n) (fun k ->
      let row = k / 2 in
      let sub_b = k mod 2 = 1 in
      let xa = if row mod 2 = 0 then 0. else half in
      let x = if sub_b then (if xa = 0. then half else 0.) else xa in
      let y = (1.5 *. acc *. float_of_int row) +. if sub_b then 0.5 *. acc else 0. in
      { Lattice.x; y; row })

let close (a : Lattice.atom) (b : Lattice.atom) dx =
  let d = Float.hypot (a.Lattice.x -. b.Lattice.x +. dx) (a.Lattice.y -. b.Lattice.y) in
  Float.abs (d -. Const.a_cc) < 0.05 *. Const.a_cc

let neighbours_within_cell n =
  let atoms = unit_cell n in
  let out = ref [] in
  for i = 0 to Array.length atoms - 1 do
    for j = i + 1 to Array.length atoms - 1 do
      if close atoms.(i) atoms.(j) 0. then out := (i, j) :: !out
    done
  done;
  List.rev !out

let neighbours_to_next_cell n =
  let atoms = unit_cell n in
  let out = ref [] in
  for i = 0 to Array.length atoms - 1 do
    for j = 0 to Array.length atoms - 1 do
      if close atoms.(i) { (atoms.(j)) with Lattice.x = atoms.(j).Lattice.x +. period } 0.
      then out := (i, j) :: !out
    done
  done;
  List.rev !out

let hamiltonian ?(hopping = Const.t_pz) n =
  Tight_binding.of_bonds ~n ~size:(atoms_per_cell n) ~hopping
    ~within:(neighbours_within_cell n)
    ~next:(neighbours_to_next_cell n)
