(** Physical constants (SI, 2019 redefinition) and unit helpers.

    Conventions used throughout the repository: energies in eV, potentials in
    V, lengths in m (with [nm] helpers), currents in A, capacitances in F,
    temperatures in K. *)

val q : float
(** Elementary charge, C. *)

val kb : float
(** Boltzmann constant, J/K. *)

val kb_ev : float
(** Boltzmann constant, eV/K. *)

val h : float
(** Planck constant, J s. *)

val hbar : float
(** Reduced Planck constant, J s. *)

val eps0 : float
(** Vacuum permittivity, F/m. *)

val g0 : float
(** Conductance quantum [2 q^2 / h] (spin-degenerate), S. *)

val eps_sio2 : float
(** Relative permittivity of SiO2 (3.9, as in the paper). *)

val nm : float
(** One nanometer in meters. *)

val a_cc : float
(** Graphene carbon–carbon bond length, m (0.142 nm). *)

val a_graphene : float
(** Graphene lattice constant [sqrt 3 *. a_cc], m. *)

val t_pz : float
(** pz-orbital nearest-neighbour coupling, eV (2.7 eV per the paper). *)

val edge_bond_relaxation : float
(** Fractional strengthening of the edge dimer bonds (0.12, calibrated to the
    ab-initio gaps of Son, Cohen and Louie). *)

val room_temperature : float
(** 300 K. *)

val kt_ev : float -> float
(** [kt_ev temp] is the thermal energy in eV at [temp] kelvin. *)
