(** Fermi–Dirac statistics with overflow-safe evaluation. *)

val occupation : mu:float -> kt:float -> float -> float
(** [occupation ~mu ~kt e] is [1 / (1 + exp ((e - mu) / kt))]; the [kt -> 0]
    limit is the step function. All energies in eV. *)

val hole_occupation : mu:float -> kt:float -> float -> float
(** [1 - occupation], computed without cancellation. *)

val derivative : mu:float -> kt:float -> float -> float
(** [-df/dE], the thermal broadening kernel (1/eV). *)

val window : mu1:float -> mu2:float -> kt:float -> float -> float
(** [f(E; mu1) - f(E; mu2)]: the Landauer current window. *)
