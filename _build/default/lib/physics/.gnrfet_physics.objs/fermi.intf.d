lib/physics/fermi.mli:
