lib/physics/const.mli:
