lib/physics/fermi.ml: Float
