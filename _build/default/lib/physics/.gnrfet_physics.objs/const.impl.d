lib/physics/const.ml: Float
