let occupation ~mu ~kt e =
  if kt <= 0. then (if e < mu then 1. else if e > mu then 0. else 0.5)
  else begin
    let x = (e -. mu) /. kt in
    if x > 40. then exp (-.x)
    else if x < -40. then 1.
    else 1. /. (1. +. exp x)
  end

let hole_occupation ~mu ~kt e = occupation ~mu:(-.mu) ~kt (-.e)

let derivative ~mu ~kt e =
  if kt <= 0. then 0.
  else begin
    let x = (e -. mu) /. kt in
    if Float.abs x > 40. then 0.
    else begin
      let c = cosh (0.5 *. x) in
      1. /. (4. *. kt *. c *. c)
    end
  end

let window ~mu1 ~mu2 ~kt e = occupation ~mu:mu1 ~kt e -. occupation ~mu:mu2 ~kt e
