(** Deterministic, seedable pseudo-random number generator (splitmix64).

    All stochastic studies in the repository (Monte Carlo variation analysis,
    property-based fuzzing helpers) use this generator so that every result is
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator stream from [t], advancing
    [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform in [\[a, b)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller, one value per call). *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
