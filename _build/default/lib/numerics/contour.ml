type point = { x : float; y : float }
type polyline = point list

(* Linear interpolation of the crossing position between two nodes. *)
let crossing v0 v1 level p0 p1 =
  let t = if v1 = v0 then 0.5 else (level -. v0) /. (v1 -. v0) in
  let t = Float.max 0. (Float.min 1. t) in
  { x = p0.x +. (t *. (p1.x -. p0.x)); y = p0.y +. (t *. (p1.y -. p0.y)) }

(* Segments of the contour inside one grid cell, via the marching squares
   case table (ambiguous saddles resolved with the cell-center average). *)
let cell_segments xs ys values level i j =
  let p00 = { x = xs.(i); y = ys.(j) }
  and p10 = { x = xs.(i + 1); y = ys.(j) }
  and p01 = { x = xs.(i); y = ys.(j + 1) }
  and p11 = { x = xs.(i + 1); y = ys.(j + 1) } in
  let v00 = values.(i).(j)
  and v10 = values.(i + 1).(j)
  and v01 = values.(i).(j + 1)
  and v11 = values.(i + 1).(j + 1) in
  let b v = if v >= level then 1 else 0 in
  let code = b v00 lor (b v10 lsl 1) lor (b v11 lsl 2) lor (b v01 lsl 3) in
  let bottom () = crossing v00 v10 level p00 p10 in
  let right () = crossing v10 v11 level p10 p11 in
  let top () = crossing v01 v11 level p01 p11 in
  let left () = crossing v00 v01 level p00 p01 in
  match code with
  | 0 | 15 -> []
  | 1 | 14 -> [ (left (), bottom ()) ]
  | 2 | 13 -> [ (bottom (), right ()) ]
  | 3 | 12 -> [ (left (), right ()) ]
  | 4 | 11 -> [ (right (), top ()) ]
  | 6 | 9 -> [ (bottom (), top ()) ]
  | 7 | 8 -> [ (left (), top ()) ]
  | 5 | 10 ->
    let center = 0.25 *. (v00 +. v10 +. v01 +. v11) in
    if (center >= level) = (code = 5) then
      [ (left (), top ()); (bottom (), right ()) ]
    else [ (left (), bottom ()); (right (), top ()) ]
  | _ -> assert false

let degenerate (a, b) =
  Float.abs (a.x -. b.x) < 1e-12 && Float.abs (a.y -. b.y) < 1e-12

let all_segments ~xs ~ys ~values ~level =
  let nx = Array.length xs and ny = Array.length ys in
  let segs = ref [] in
  for i = 0 to nx - 2 do
    for j = 0 to ny - 2 do
      List.iter
        (fun s -> if not (degenerate s) then segs := s :: !segs)
        (cell_segments xs ys values level i j)
    done
  done;
  !segs

let close_enough a b =
  Float.abs (a.x -. b.x) < 1e-9 && Float.abs (a.y -. b.y) < 1e-9

(* Chain loose segments into polylines by repeatedly extending at both
   ends. Quadratic in segment count, fine at contour-extraction scale. *)
let chain segments =
  let remaining = ref segments in
  let polylines = ref [] in
  let take_matching endpoint =
    let rec go acc = function
      | [] -> None
      | (a, b) :: tl when close_enough a endpoint ->
        remaining := List.rev_append acc tl;
        Some b
      | (a, b) :: tl when close_enough b endpoint ->
        remaining := List.rev_append acc tl;
        Some a
      | s :: tl -> go (s :: acc) tl
    in
    go [] !remaining
  in
  let rec extend_front line =
    match take_matching (List.hd line) with
    | Some p -> extend_front (p :: line)
    | None -> line
  in
  while !remaining <> [] do
    match !remaining with
    | [] -> ()
    | (a, b) :: tl ->
      remaining := tl;
      let forward = extend_front [ b; a ] in
      let backward = extend_front (List.rev forward) in
      polylines := backward :: !polylines
  done;
  !polylines

let extract ~xs ~ys ~values ~level =
  chain (all_segments ~xs ~ys ~values ~level)

let interior_points ~xs ~ys ~values ~level =
  List.concat_map (fun (a, b) -> [ a; b ]) (all_segments ~xs ~ys ~values ~level)

let minimize_on_contour ~xs ~ys ~values ~level ~objective =
  let points = interior_points ~xs ~ys ~values ~level in
  List.fold_left
    (fun best p ->
      let v = objective p.x p.y in
      match best with
      | Some (_, bv) when bv <= v -> best
      | _ -> Some (p, v))
    None points
