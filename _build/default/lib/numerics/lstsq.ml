let solve a b =
  let rows, cols = Matrix.dims a in
  if Array.length b <> rows then invalid_arg "Lstsq.solve: dimension mismatch";
  if rows < cols then invalid_arg "Lstsq.solve: underdetermined system";
  let at = Matrix.transpose a in
  let ata = Matrix.mul at a in
  (* Tiny Tikhonov term keeps nearly-collinear fits from blowing up. *)
  let reg = 1e-12 *. Float.max 1. (Matrix.max_abs ata) in
  for i = 0 to cols - 1 do
    Matrix.add_to ata i i reg
  done;
  Matrix.solve ata (Matrix.mul_vec at b)

let polyfit ~degree ~xs ~ys =
  if degree < 0 then invalid_arg "Lstsq.polyfit: negative degree";
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Lstsq.polyfit: length mismatch";
  if n < degree + 1 then invalid_arg "Lstsq.polyfit: too few points";
  let a = Matrix.init n (degree + 1) (fun i j -> xs.(i) ** float_of_int j) in
  solve a ys

let polyval coeffs x =
  let acc = ref 0. in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc

let line_fit ~xs ~ys =
  match polyfit ~degree:1 ~xs ~ys with
  | [| c0; c1 |] -> (c0, c1)
  | _ -> assert false
