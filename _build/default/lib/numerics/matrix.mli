(** Dense real matrices (row-major), with LU factorization.

    Sized for the small systems appearing in circuit Jacobians and least
    squares; Poisson systems use {!Banded} or {!Sparse} instead. *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. *)

val copy : t -> t

val dims : t -> int * int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] accumulates [v] into [m.(i,j)] (stamping). *)

val transpose : t -> t

val mul : t -> t -> t

val mul_vec : t -> float array -> float array

val scale : float -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

type lu
(** LU factorization with partial pivoting. *)

val lu_factor : t -> lu
(** Raises [Failure "Matrix.lu_factor: singular"] on (numerically) singular
    input. The input matrix is not modified. *)

val lu_solve : lu -> float array -> float array

val solve : t -> float array -> float array
(** One-shot [lu_solve (lu_factor a) b]. *)

val inverse : t -> t

val max_abs : t -> float

val pp : Format.formatter -> t -> unit
