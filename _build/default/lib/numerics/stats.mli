(** Descriptive statistics and histograms for Monte-Carlo post-processing. *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** sample standard deviation (n-1 denominator, 0 if n<2) *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty sample. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty sample. *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array;  (** one bucket per bin, values clamped into range *)
}

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram spanning the sample range (or [\[0,1\]] when the
    sample is degenerate). Requires [bins > 0] and a non-empty sample. *)

val bin_centers : histogram -> float array

val pp_summary : Format.formatter -> summary -> unit

val pp_histogram : ?width:int -> Format.formatter -> histogram -> unit
(** ASCII rendering with at most [width] (default 40) marks per bar. *)
