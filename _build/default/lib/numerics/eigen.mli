(** Eigenvalue solvers for the small dense matrices used in band-structure
    calculations. *)

val symmetric : Matrix.t -> float array * Matrix.t
(** [symmetric a] diagonalizes the real symmetric matrix [a] with the cyclic
    Jacobi method, returning eigenvalues in ascending order and the matrix of
    corresponding eigenvectors (columns).  [a] must be square; symmetry is the
    caller's responsibility (the strictly lower triangle is ignored in the
    sense that the matrix is symmetrized on entry). *)

val symmetric_values : Matrix.t -> float array
(** Eigenvalues only, ascending. *)

val hermitian_values : Cmatrix.t -> float array
(** Eigenvalues of a complex Hermitian matrix, ascending, via the standard
    embedding of [A + iB] into the real symmetric
    [\[\[A, -B\]; \[B, A\]\]] whose spectrum is that of the Hermitian matrix
    with every eigenvalue doubled. *)
