(** Interpolation on tabulated data: the backbone of the lookup-table circuit
    simulator. *)

val linear : xs:float array -> ys:float array -> float -> float
(** Piecewise-linear interpolation; clamps to the end values outside the
    table. [xs] must be strictly increasing with at least two points. *)

val linear_extrapolate : xs:float array -> ys:float array -> float -> float
(** Like {!linear} but extrapolates linearly beyond the table ends using the
    first/last segment slope. *)

type spline
(** Natural cubic spline. *)

val spline : xs:float array -> ys:float array -> spline
(** Requires strictly increasing [xs] with at least three points. *)

val spline_eval : spline -> float -> float
(** Clamps outside the knot range. *)

val spline_deriv : spline -> float -> float
(** First derivative of the spline (clamped outside the knot range). *)

type grid2
(** Function sampled on a rectilinear [xs] × [ys] grid. *)

val grid2 : xs:float array -> ys:float array -> values:float array array -> grid2
(** [values.(i).(j)] is the sample at [(xs.(i), ys.(j))]; both axes strictly
    increasing with at least two points each. *)

val grid2_eval : grid2 -> float -> float -> float
(** Bilinear interpolation, clamped to the grid rectangle. *)

val grid2_dx : grid2 -> float -> float -> float
(** Partial derivative along the first axis (of the bilinear interpolant,
    i.e. piecewise constant in x between nodes). *)

val grid2_dy : grid2 -> float -> float -> float
(** Partial derivative along the second axis. *)
