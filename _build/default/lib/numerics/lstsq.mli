(** Small linear least squares (normal equations) and polynomial fitting. *)

val solve : Matrix.t -> float array -> float array
(** [solve a b] minimizes ||a x - b||2 for an overdetermined [a] via the
    normal equations; adequate for the well-conditioned low-order fits used
    here (threshold extraction, Anderson mixing). *)

val polyfit : degree:int -> xs:float array -> ys:float array -> float array
(** Least-squares polynomial coefficients, constant term first. *)

val polyval : float array -> float -> float
(** Evaluate a polynomial given coefficients, constant term first. *)

val line_fit : xs:float array -> ys:float array -> float * float
(** [(intercept, slope)] of the least-squares line. *)
