type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
}

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mean = Vec.mean xs in
  let var =
    if n < 2 then 0.
    else begin
      let acc = ref 0. in
      Array.iter
        (fun v ->
          let d = v -. mean in
          acc := !acc +. (d *. d))
        xs;
      !acc /. float_of_int (n - 1)
    end
  in
  {
    n;
    mean;
    std = sqrt var;
    min = Vec.minimum xs;
    max = Vec.maximum xs;
    median = percentile xs 50.;
  }

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty sample";
  let lo = Vec.minimum xs and hi = Vec.maximum xs in
  let lo, hi = if hi > lo then (lo, hi) else (lo -. 0.5, lo +. 0.5) in
  let counts = Array.make bins 0 in
  let w = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun v ->
      let b = int_of_float ((v -. lo) /. w) in
      let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  { lo; hi; counts }

let bin_centers h =
  let bins = Array.length h.counts in
  let w = (h.hi -. h.lo) /. float_of_int bins in
  Array.init bins (fun i -> h.lo +. (w *. (float_of_int i +. 0.5)))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g std=%.6g min=%.6g median=%.6g max=%.6g"
    s.n s.mean s.std s.min s.median s.max

let pp_histogram ?(width = 40) ppf h =
  let centers = bin_centers h in
  let peak = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      let marks = c * width / peak in
      Format.fprintf ppf "%12.5g | %-*s %d@." centers.(i) width
        (String.make marks '#') c)
    h.counts
