(** Minimal domain-based parallel map for embarrassingly parallel workloads
    (device-table generation across bias points / device variants). *)

val num_domains : unit -> int
(** Worker count: [max 1 (recommended_domain_count () - 1)], overridable with
    the [GNRFET_DOMAINS] environment variable. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], preserving order. Falls back to the sequential map
    when [domains <= 1] or the input is small. Exceptions raised by [f] are
    re-raised in the caller. *)
