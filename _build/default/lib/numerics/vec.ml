let linspace a b n =
  if n <= 0 then invalid_arg "Vec.linspace: n must be positive";
  if n = 1 then [| a |]
  else begin
    let h = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i -> a +. (h *. float_of_int i))
  end

let init = Array.init

let copy = Array.copy

let fill_with dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vec.fill_with: length mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let axpy a x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.axpy: length mismatch";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale a x = Array.map (fun v -> a *. v) x

let add x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.add: length mismatch";
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.sub: length mismatch";
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. x

let max_abs_diff x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vec.max_abs_diff: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let sum x = Array.fold_left ( +. ) 0. x

let mean x =
  if Array.length x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (Array.length x)

let minimum x =
  if Array.length x = 0 then invalid_arg "Vec.minimum: empty vector";
  Array.fold_left Float.min x.(0) x

let maximum x =
  if Array.length x = 0 then invalid_arg "Vec.maximum: empty vector";
  Array.fold_left Float.max x.(0) x

let arg_extremum better x =
  if Array.length x = 0 then invalid_arg "Vec.arg_extremum: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if better x.(i) x.(!best) then best := i
  done;
  !best

let argmin x = arg_extremum ( < ) x

let argmax x = arg_extremum ( > ) x

let map2 f x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.map2: length mismatch";
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let pp ppf x =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" v)
    x;
  Format.fprintf ppf "|]"
