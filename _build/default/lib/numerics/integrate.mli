(** Quadrature rules for the NEGF energy integrals and power measurements. *)

val trapezoid_samples : xs:float array -> ys:float array -> float
(** Trapezoid rule over tabulated samples (non-uniform spacing allowed,
    strictly increasing [xs], at least two points). *)

val trapezoid : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite trapezoid with [n >= 1] panels. *)

val simpson : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to an even panel count. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> a:float -> b:float -> unit -> float
(** Classic adaptive Simpson (default tolerance [1e-9], depth 30). *)
