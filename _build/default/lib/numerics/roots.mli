(** Scalar root finding: used for voltage-transfer-curve solves and threshold
    extraction. *)

val bisection :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> a:float -> b:float -> unit -> float
(** Requires a sign change on [\[a, b\]] (raises [Invalid_argument]
    otherwise); converges to |b - a| <= tol (default [1e-12]). *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> a:float -> b:float -> unit -> float
(** Brent's method (inverse quadratic + secant + bisection); same bracketing
    contract as {!bisection}, but typically an order of magnitude fewer
    evaluations. *)

val bracket_scan :
  f:(float -> float) -> a:float -> b:float -> n:int -> (float * float) option
(** Scan [n] equal subintervals of [\[a, b\]] for the first sign change and
    return its bracketing interval. *)
