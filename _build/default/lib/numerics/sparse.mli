(** Sparse matrices in compressed-sparse-row form, with iterative solvers.

    Used for the 3D Poisson validation solver and as an alternative backend
    for the 2D finite-volume systems. *)

type t = private {
  n : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

module Builder : sig
  type sparse := t
  type t

  val create : int -> t
  (** [create n] starts an empty [n] × [n] matrix. *)

  val add : t -> int -> int -> float -> unit
  (** Accumulate a coefficient (duplicates sum). *)

  val finalize : t -> sparse
end

val mul_vec : t -> float array -> float array

val diagonal : t -> float array
(** Diagonal entries (0. where absent). *)

val cg :
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  t ->
  float array ->
  float array * int
(** Jacobi-preconditioned conjugate gradient for symmetric positive-definite
    systems. Returns the solution and iterations used; raises [Failure] if
    the tolerance (relative residual, default [1e-10]) is not reached in
    [max_iter] (default [4 * n]) iterations. *)

val sor :
  ?omega:float ->
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  t ->
  float array ->
  float array * int
(** Successive over-relaxation (default [omega = 1.7]); same failure
    contract as {!cg}.  Intended for diagnostics and tests. *)
