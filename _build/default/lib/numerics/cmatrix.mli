(** Dense complex matrices (row-major, split real/imaginary storage) with LU
    solve and inverse.

    Used by the NEGF block recursive Green's function and by the Bloch
    Hamiltonian diagonalization.  Split storage avoids boxing [Complex.t]
    in hot loops. *)

type t = private { rows : int; cols : int; re : float array; im : float array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> Complex.t) -> t

val identity : int -> t

val copy : t -> t

val dims : t -> int * int

val get : t -> int -> int -> Complex.t

val set : t -> int -> int -> Complex.t -> unit

val of_real : Matrix.t -> t

val scale : Complex.t -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t

val adjoint : t -> t
(** Conjugate transpose. *)

val inverse : t -> t
(** Gauss–Jordan with partial pivoting; raises [Failure] when singular. *)

val solve : t -> Complex.t array -> Complex.t array

val diag : t -> Complex.t array

val trace : t -> Complex.t

val max_abs : t -> float

val frobenius_diff : t -> t -> float
(** Frobenius norm of the difference; matrices must share dimensions. *)

val pp : Format.formatter -> t -> unit
