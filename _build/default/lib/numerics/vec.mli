(** Dense float-vector helpers used across the numerical stack. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    Requires [n >= 2] unless [n = 1], in which case the result is [[|a|]]. *)

val init : int -> (int -> float) -> float array
(** Alias of [Array.init] with the argument order used throughout. *)

val copy : float array -> float array

val fill_with : float array -> float array -> unit
(** [fill_with dst src] copies [src] into [dst] (same length required). *)

val dot : float array -> float array -> float
(** Euclidean inner product. Lengths must agree. *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val scale : float -> float array -> float array

val add : float array -> float array -> float array

val sub : float array -> float array -> float array

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Max-abs norm; [0.] for the empty vector. *)

val max_abs_diff : float array -> float array -> float
(** [max_abs_diff x y] is [norm_inf (sub x y)] without allocation. *)

val sum : float array -> float

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty vector. *)

val minimum : float array -> float
(** Smallest element; raises [Invalid_argument] on the empty vector. *)

val maximum : float array -> float
(** Largest element; raises [Invalid_argument] on the empty vector. *)

val argmin : float array -> int
(** Index of the smallest element (first occurrence). *)

val argmax : float array -> int
(** Index of the largest element (first occurrence). *)

val map2 : (float -> float -> float) -> float array -> float array -> float array

val pp : Format.formatter -> float array -> unit
(** Short debug printer, ["[|a; b; ...|]"]. *)
