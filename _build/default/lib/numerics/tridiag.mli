(** Thomas-algorithm solvers for tridiagonal systems (real and complex).

    The system is [lower.(i) * x.(i-1) + diag.(i) * x.(i) + upper.(i) *
    x.(i+1) = rhs.(i)] with [lower.(0)] and [upper.(n-1)] ignored. *)

val solve :
  lower:float array ->
  diag:float array ->
  upper:float array ->
  rhs:float array ->
  float array
(** Raises [Failure] on a zero pivot (the algorithm does not pivot; the
    matrices we solve are diagonally dominant). *)

val solve_complex :
  lower:Complex.t array ->
  diag:Complex.t array ->
  upper:Complex.t array ->
  rhs:Complex.t array ->
  Complex.t array
