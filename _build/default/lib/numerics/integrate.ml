let trapezoid_samples ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Integrate.trapezoid_samples: too few points";
  if Array.length ys <> n then
    invalid_arg "Integrate.trapezoid_samples: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 2 do
    let h = xs.(i + 1) -. xs.(i) in
    if h <= 0. then invalid_arg "Integrate.trapezoid_samples: axis not increasing";
    acc := !acc +. (0.5 *. h *. (ys.(i) +. ys.(i + 1)))
  done;
  !acc

let trapezoid ~f ~a ~b ~n =
  if n < 1 then invalid_arg "Integrate.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (h *. float_of_int i))
  done;
  !acc *. h

let simpson ~f ~a ~b ~n =
  if n < 1 then invalid_arg "Integrate.simpson: n must be positive";
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (a +. (h *. float_of_int i)))
  done;
  !acc *. h /. 3.

let adaptive_simpson ?(tol = 1e-9) ?(max_depth = 30) ~f ~a ~b () =
  let simpson_panel fa fm fb a b = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a b fa fm fb whole eps depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_panel fa flm fm a m in
    let right = simpson_panel fm frm fb m b in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15. *. eps then
      left +. right +. (delta /. 15.)
    else
      go a m fa flm fm left (eps /. 2.) (depth - 1)
      +. go m b fm frm fb right (eps /. 2.) (depth - 1)
  in
  let m = 0.5 *. (a +. b) in
  let fa = f a and fm = f m and fb = f b in
  go a b fa fm fb (simpson_panel fa fm fb a b) tol max_depth
