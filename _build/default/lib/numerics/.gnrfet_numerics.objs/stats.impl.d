lib/numerics/stats.ml: Array Float Format String Vec
