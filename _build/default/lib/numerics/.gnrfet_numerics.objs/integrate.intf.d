lib/numerics/integrate.mli:
