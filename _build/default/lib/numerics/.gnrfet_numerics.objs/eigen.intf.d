lib/numerics/eigen.mli: Cmatrix Matrix
