lib/numerics/lstsq.mli: Matrix
