lib/numerics/contour.ml: Array Float List
