lib/numerics/tridiag.mli: Complex
