lib/numerics/contour.mli:
