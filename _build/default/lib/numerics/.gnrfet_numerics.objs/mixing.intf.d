lib/numerics/mixing.mli:
