lib/numerics/eigen.ml: Array Cmatrix Complex Float Matrix
