lib/numerics/cmatrix.mli: Complex Format Matrix
