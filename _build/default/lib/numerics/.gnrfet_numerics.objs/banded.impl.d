lib/numerics/banded.ml: Array Float
