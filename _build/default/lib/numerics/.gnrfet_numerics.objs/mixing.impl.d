lib/numerics/mixing.ml: Array List Lstsq Matrix Vec
