lib/numerics/tridiag.ml: Array Complex Float
