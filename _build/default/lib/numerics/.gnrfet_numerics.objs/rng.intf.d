lib/numerics/rng.mli:
