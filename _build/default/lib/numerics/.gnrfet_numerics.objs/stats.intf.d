lib/numerics/stats.mli: Format
