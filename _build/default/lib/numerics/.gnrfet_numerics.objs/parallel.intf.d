lib/numerics/parallel.mli:
