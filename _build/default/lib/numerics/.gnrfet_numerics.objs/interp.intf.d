lib/numerics/interp.mli:
