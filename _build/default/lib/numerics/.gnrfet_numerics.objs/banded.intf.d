lib/numerics/banded.mli:
