lib/numerics/parallel.ml: Array Atomic Domain String Sys
