lib/numerics/sparse.mli:
