lib/numerics/roots.mli:
