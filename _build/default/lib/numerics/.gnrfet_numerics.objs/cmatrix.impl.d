lib/numerics/cmatrix.ml: Array Complex Float Format Matrix
