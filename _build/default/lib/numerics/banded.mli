(** Direct solver for banded linear systems (no pivoting).

    Designed for the finite-volume Poisson matrices, which are symmetric and
    strictly diagonally dominant, so elimination without pivoting is stable.
    Storage is the standard band layout: [band.(i).(kl + j - i)] holds
    [A(i,j)] for [|i - j| <= bandwidth]. *)

type t
(** A factorized banded system ready for repeated solves. *)

val create : n:int -> bandwidth:int -> t
(** Fresh zero matrix with [n] unknowns and half-bandwidth [bandwidth]. *)

val set : t -> int -> int -> float -> unit
(** [set t i j v] writes [A(i,j) = v]. Raises [Invalid_argument] outside the
    band. Must be called before [factorize]. *)

val add_to : t -> int -> int -> float -> unit
(** Accumulating variant of {!set} (stamping). *)

val get : t -> int -> int -> float
(** Reads [A(i,j)]; elements outside the band read as [0.]. *)

val factorize : t -> unit
(** In-place LU without pivoting; raises [Failure] on a tiny pivot. After
    factorization [set]/[add_to] must not be used. *)

val solve : t -> float array -> float array
(** Solve with a previously {!factorize}d matrix. *)

val solve_fresh : t -> float array -> float array
(** Copy, factorize and solve — keeps [t] reusable for re-assembly. *)
