let bisection ?(tol = 1e-12) ?(max_iter = 200) ~f ~a ~b () =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else begin
    if fa *. fb > 0. then invalid_arg "Roots.bisection: no sign change";
    let rec loop a b fa it =
      let m = 0.5 *. (a +. b) in
      if b -. a <= tol || it >= max_iter then m
      else begin
        let fm = f m in
        if fm = 0. then m
        else if fa *. fm < 0. then loop a m fa (it + 1)
        else loop m b fm (it + 1)
      end
    in
    if a <= b then loop a b fa 0 else loop b a fb 0
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~a ~b () =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else begin
    if fa *. fb > 0. then invalid_arg "Roots.brent: no sign change";
    (* Invariant: b is the best estimate, [a,b] brackets the root. *)
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref None in
    let it = ref 0 in
    while !result = None && !it < max_iter do
      incr it;
      if !fb *. !fc > 0. then begin
        c := !a;
        fc := !fa;
        d := !b -. !a;
        e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b;
        b := !c;
        c := !a;
        fa := !fb;
        fb := !fc;
        fc := !fa
      end;
      let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0. then result := Some !b
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              (* secant *)
              (2. *. xm *. s, 1. -. s)
            else begin
              (* inverse quadratic interpolation *)
              let q = !fa /. !fc and r = !fb /. !fc in
              ( s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.))),
                (q -. 1.) *. (r -. 1.) *. (s -. 1.) )
            end
          in
          let p, q = if p > 0. then (p, -.q) else (-.p, q) in
          let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2. *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := !d
          end
        end
        else begin
          d := xm;
          e := !d
        end;
        a := !b;
        fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0. then tol1 else -.tol1);
        fb := f !b
      end
    done;
    match !result with Some r -> r | None -> !b
  end

let bracket_scan ~f ~a ~b ~n =
  if n < 1 then invalid_arg "Roots.bracket_scan: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let rec go i x fx =
    if i >= n then None
    else begin
      let x' = a +. (h *. float_of_int (i + 1)) in
      let fx' = f x' in
      if fx = 0. then Some (x, x)
      else if fx *. fx' <= 0. then Some (x, x')
      else go (i + 1) x' fx'
    end
  in
  go 0 a (f a)
