(** Iso-contour extraction from gridded 2D scalar fields (marching squares).

    Used for the EDP / frequency / SNM contour analysis of Section 3.1 of the
    paper (Fig 3(b)). *)

type point = { x : float; y : float }

type polyline = point list
(** Ordered chain of points along one connected contour piece. *)

val extract :
  xs:float array -> ys:float array -> values:float array array -> level:float -> polyline list
(** [extract ~xs ~ys ~values ~level] returns the iso-lines of the sampled
    field [values.(i).(j)] at [(xs.(i), ys.(j))].  Segments from each grid
    cell are chained into polylines; open contours terminate at the grid
    boundary. *)

val interior_points :
  xs:float array -> ys:float array -> values:float array array -> level:float -> point list
(** Flat list of all contour crossing points (cheaper than chaining when only
    point-on-contour queries are needed). *)

val minimize_on_contour :
  xs:float array ->
  ys:float array ->
  values:float array array ->
  level:float ->
  objective:(float -> float -> float) ->
  (point * float) option
(** Point on the level set minimizing [objective x y], or [None] when the
    level set is empty. *)
