(** Fixed-point accelerators for the NEGF ↔ Poisson self-consistent loop.

    Given the fixed-point map [g] (here: potential -> potential implied by
    the NEGF charge), each [step] consumes the pair (input [x], output
    [g x]) and proposes the next input. *)

type t

val linear : alpha:float -> t
(** Plain under-relaxation: [x' = x + alpha * (g x - x)]. *)

val anderson : ?history:int -> ?alpha:float -> unit -> t
(** Anderson acceleration (type-II) with the given history depth (default 4)
    and fallback damping [alpha] (default 0.3) applied to the extrapolated
    residual. *)

val step : t -> x:float array -> gx:float array -> float array
(** Next iterate. The same [t] must be reused across iterations of one SCF
    solve; create a fresh one per solve. *)

val reset : t -> unit
(** Drop accumulated history (e.g. when restarting at a new bias point). *)

val residual : x:float array -> gx:float array -> float
(** Convenience: max-norm of [gx - x]. *)
