(** Scaled-CMOS technology nodes for the Table 1 comparison.

    Parameter sets are calibrated so the 15-stage FO4 ring oscillator and
    inverter metrics land in the ranges the paper reports for the PTM
    22/32/45 nm cards (frequency at VDD = 0.8/0.6/0.4 V, EDP optimum at
    0.6 V, SNM ≈ 0.3/0.23/0.16 V); EXPERIMENTS.md records measured vs
    reported values. *)

type t = {
  label : string;
  nmos : Compact.t;
  pmos : Compact.t;
  cg_half : float;  (** per-transistor Cgs = Cgd value, F *)
}

val n22 : t
val n32 : t
val n45 : t

val all : t list
(** The three nodes of Table 1, smallest first. *)

val nfet : t -> Fet_model.t

val pfet : t -> Fet_model.t
