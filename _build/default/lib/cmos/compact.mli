(** Alpha-power-law MOSFET compact model (Sakurai–Newton form) with a
    softplus-blended subthreshold region.

    This is the in-repo stand-in for the PTM model cards used by the
    paper's Table 1 (see the substitution log in DESIGN.md): it reproduces
    the behaviours the comparison rests on — near-linear Idsat versus VDD
    overdrive, ~100 mV/dec subthreshold leakage, velocity-saturated alpha
    ≈ 1.2–1.4, and CMOS-grade noise margins. *)

type t = {
  vt : float;  (** threshold voltage, V *)
  k : float;  (** drive strength, A / V^alpha *)
  alpha : float;  (** velocity-saturation index *)
  n_ss : float;  (** subthreshold ideality (SS = n_ss * 60 mV/dec at 300K) *)
  lambda : float;  (** channel-length modulation, 1/V *)
  vdsat_k : float;  (** Vdsat = vdsat_k * overdrive^(alpha/2) *)
}

val drain_current : t -> vgs:float -> vds:float -> float
(** NMOS drain current; negative [vds] handled by source/drain exchange
    (symmetric device). Smooth (C¹) across the subthreshold-to-on and
    linear-to-saturation boundaries. *)

val fet : name:string -> ?cgs:float -> ?cgd:float -> t -> Fet_model.t
(** Wrap as a circuit model with constant intrinsic capacitances. *)

val pfet : name:string -> ?cgs:float -> ?cgd:float -> t -> Fet_model.t
(** Complementary device: [id_p vgs vds = -. id_n (-vgs) (-vds)]. *)
