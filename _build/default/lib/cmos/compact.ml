type t = {
  vt : float;
  k : float;
  alpha : float;
  n_ss : float;
  lambda : float;
  vdsat_k : float;
}

let thermal_voltage = Const.kb_ev *. Const.room_temperature

(* Softplus overdrive: exponential below vt (subthreshold slope
   n_ss * kT ln10 per decade), asymptotically vgs - vt above. *)
let effective_overdrive m vgs =
  let nvt = m.n_ss *. m.alpha *. thermal_voltage in
  let x = (vgs -. m.vt) /. nvt in
  if x > 35. then vgs -. m.vt else nvt *. log1p (exp x)

let rec drain_current m ~vgs ~vds =
  if vds < 0. then -.drain_current m ~vgs:(vgs -. vds) ~vds:(-.vds)
  else begin
    let vov = effective_overdrive m vgs in
    let idsat = m.k *. (vov ** m.alpha) in
    let vdsat = Float.max 1e-3 (m.vdsat_k *. (vov ** (m.alpha /. 2.))) in
    let shape =
      if vds >= vdsat then 1.
      else begin
        let r = vds /. vdsat in
        r *. (2. -. r)
      end
    in
    idsat *. shape *. (1. +. (m.lambda *. vds))
  end

let fet ~name ?(cgs = 0.) ?(cgd = 0.) m =
  {
    Fet_model.name;
    id = (fun ~vgs ~vds -> drain_current m ~vgs ~vds);
    cgs = (fun ~vgs:_ ~vds:_ -> cgs);
    cgd = (fun ~vgs:_ ~vds:_ -> cgd);
  }

let pfet ~name ?(cgs = 0.) ?(cgd = 0.) m =
  {
    Fet_model.name;
    id = (fun ~vgs ~vds -> -.drain_current m ~vgs:(-.vgs) ~vds:(-.vds));
    cgs = (fun ~vgs:_ ~vds:_ -> cgs);
    cgd = (fun ~vgs:_ ~vds:_ -> cgd);
  }
