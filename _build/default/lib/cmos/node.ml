type t = {
  label : string;
  nmos : Compact.t;
  pmos : Compact.t;
  cg_half : float;
}

let make label ~vt ~k ~cg =
  let base =
    {
      Compact.vt;
      k;
      alpha = 1.3;
      n_ss = 1.6;
      lambda = 0.15;
      vdsat_k = 0.9;
    }
  in
  { label; nmos = base; pmos = base; cg_half = cg /. 2. }

(* Drive currents and gate capacitances chosen to land the 15-stage FO4
   ring oscillator at the paper's Table 1 frequencies and EDPs at
   VDD = 0.8 V (the k values fold in the per-node device widths). *)
let n22 = make "22nm" ~vt:0.32 ~k:140e-6 ~cg:0.054e-15
let n32 = make "32nm" ~vt:0.34 ~k:182e-6 ~cg:0.086e-15
let n45 = make "45nm" ~vt:0.36 ~k:220e-6 ~cg:0.127e-15

let all = [ n22; n32; n45 ]

let nfet t = Compact.fet ~name:(t.label ^ "-n") ~cgs:t.cg_half ~cgd:t.cg_half t.nmos

let pfet t = Compact.pfet ~name:(t.label ^ "-p") ~cgs:t.cg_half ~cgd:t.cg_half t.pmos
