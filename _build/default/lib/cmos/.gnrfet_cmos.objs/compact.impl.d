lib/cmos/compact.ml: Const Fet_model Float
