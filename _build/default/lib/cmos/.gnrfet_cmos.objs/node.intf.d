lib/cmos/node.mli: Compact Fet_model
