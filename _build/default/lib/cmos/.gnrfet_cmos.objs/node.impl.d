lib/cmos/node.ml: Compact
