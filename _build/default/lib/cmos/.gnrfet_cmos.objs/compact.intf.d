lib/cmos/compact.mli: Fet_model
