type bias = { mu_s : float; mu_d : float; kt : float }

let energy_grid ~lo ~hi ~de =
  if hi <= lo then invalid_arg "Observables.energy_grid: empty range";
  if de <= 0. then invalid_arg "Observables.energy_grid: non-positive spacing";
  let n = max 3 (1 + int_of_float (Float.ceil ((hi -. lo) /. de))) in
  Vec.linspace lo hi n

let transmission_spectrum ?eta ~egrid chain_at =
  Array.map (fun e -> Rgf.transmission ?eta (chain_at e) e) egrid

let current ?eta ~bias ~egrid chain_at =
  let { mu_s; mu_d; kt } = bias in
  let integrand =
    Array.map
      (fun e ->
        let window = Fermi.window ~mu1:mu_s ~mu2:mu_d ~kt e in
        if Float.abs window < 1e-14 then 0.
        else Rgf.transmission ?eta (chain_at e) e *. window)
      egrid
  in
  Const.g0 *. Integrate.trapezoid_samples ~xs:egrid ~ys:integrand

let site_charge ?eta ~bias ~egrid ~midgap chain_at =
  let { mu_s; mu_d; kt } = bias in
  let n = Array.length (chain_at egrid.(0)).Rgf.onsite in
  if Array.length midgap <> n then
    invalid_arg "Observables.site_charge: midgap length mismatch";
  let electrons = Array.make n 0. and holes = Array.make n 0. in
  let ne = Array.length egrid in
  (* Trapezoid accumulation of the occupied spectral weight, split into an
     electron count above the local mid-gap and a hole count below it so
     both integrals converge within a few kT of the contact potentials. *)
  let previous = ref None in
  for k = 0 to ne - 1 do
    let e = egrid.(k) in
    let { Rgf.a1; a2; _ } = Rgf.spectra ?eta (chain_at e) e in
    let fs = Fermi.occupation ~mu:mu_s ~kt e in
    let fd = Fermi.occupation ~mu:mu_d ~kt e in
    let sample =
      Array.init n (fun i ->
          if e >= midgap.(i) then (a1.(i) *. fs) +. (a2.(i) *. fd)
          else -.((a1.(i) *. (1. -. fs)) +. (a2.(i) *. (1. -. fd))))
    in
    begin
      match !previous with
      | None -> ()
      | Some (e_prev, s_prev) ->
        let h = 0.5 *. (e -. e_prev) in
        for i = 0 to n - 1 do
          let v = h *. (s_prev.(i) +. sample.(i)) in
          if v >= 0. then electrons.(i) <- electrons.(i) +. v
          else holes.(i) <- holes.(i) -. v
        done
    end;
    previous := Some (e, sample)
  done;
  (* Spin degeneracy 2; 2π spectral normalization; electrons negative. *)
  let scale = 2. *. Const.q /. (2. *. Float.pi) in
  Array.init n (fun i -> -.scale *. (electrons.(i) -. holes.(i)))
