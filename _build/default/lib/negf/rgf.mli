(** Scalar recursive Green's function (RGF) solver for 1D mode-space chains.

    The device Hamiltonian is a tridiagonal chain: site energies
    [onsite.(i)] (local mid-gap + subband structure enters through the
    alternating hoppings), bonds [hopping.(i)] between sites [i] and
    [i+1], and complex contact self-energies attached to the first and
    last site.  O(n) per energy point. *)

type chain = {
  onsite : float array;  (** length n, eV *)
  hopping : float array;  (** length n-1, eV *)
  sigma_l : Complex.t;  (** retarded self-energy on site 0 *)
  sigma_r : Complex.t;  (** retarded self-energy on site n-1 *)
}

val gamma_of_sigma : Complex.t -> float
(** Broadening [Γ = i (Σ - Σ†) = -2 Im Σ]. *)

val transmission : ?eta:float -> chain -> float -> float
(** [transmission chain e]: coherent transmission at energy [e] (eV);
    [eta] (default 1e-6 eV) is the numerical broadening. *)

type spectra = {
  t_coh : float;  (** transmission *)
  a1 : float array;  (** source-injected spectral function diagonal, 1/eV *)
  a2 : float array;  (** drain-injected spectral function diagonal, 1/eV *)
}

val spectra : ?eta:float -> chain -> float -> spectra
(** Transmission and both contact-resolved spectral function diagonals in a
    single O(n) pass.  Satisfies [t_coh = ΓR a2 ... ] sum rules tested in
    the suite; the local density of states per site is
    [(a1 + a2) / 2π]. *)
