type device = {
  blocks : Cmatrix.t array;
  couplings : Cmatrix.t array;
  sigma_l : Cmatrix.t;
  sigma_r : Cmatrix.t;
}

let gamma_of sigma =
  (* Γ = i (Σ - Σ†) *)
  Cmatrix.scale { Complex.re = 0.; im = 1. } (Cmatrix.sub sigma (Cmatrix.adjoint sigma))

let transmission ?(eta = 1e-6) dev e =
  let nb = Array.length dev.blocks in
  if nb < 1 then invalid_arg "Rgf_block.transmission: empty device";
  if Array.length dev.couplings <> nb - 1 then
    invalid_arg "Rgf_block.transmission: coupling count mismatch";
  let m, _ = Cmatrix.dims dev.blocks.(0) in
  let z = { Complex.re = e; im = eta } in
  let zi = Cmatrix.scale z (Cmatrix.identity m) in
  let a i =
    let base = Cmatrix.sub zi dev.blocks.(i) in
    let base = if i = 0 then Cmatrix.sub base dev.sigma_l else base in
    if i = nb - 1 then Cmatrix.sub base dev.sigma_r else base
  in
  (* Left sweep of left-connected Green's functions, tracking the
     propagator product G_{0,n-1}. *)
  let gl = ref (Cmatrix.inverse (a 0)) in
  let prod = ref !gl in
  for i = 1 to nb - 1 do
    let h = dev.couplings.(i - 1) in
    let hdag = Cmatrix.adjoint h in
    let self = Cmatrix.mul hdag (Cmatrix.mul !gl h) in
    gl := Cmatrix.inverse (Cmatrix.sub (a i) self);
    prod := Cmatrix.mul !prod (Cmatrix.mul h !gl)
  done;
  let g0n = !prod in
  let gl_mat = gamma_of dev.sigma_l and gr_mat = gamma_of dev.sigma_r in
  let t =
    Cmatrix.trace
      (Cmatrix.mul gl_mat (Cmatrix.mul g0n (Cmatrix.mul gr_mat (Cmatrix.adjoint g0n))))
  in
  t.Complex.re

type spectra = {
  t_coh : float;
  a1 : float array array;
  a2 : float array array;
}

let spectra ?(eta = 1e-6) dev e =
  let nb = Array.length dev.blocks in
  if nb < 1 then invalid_arg "Rgf_block.spectra: empty device";
  let m, _ = Cmatrix.dims dev.blocks.(0) in
  let z = { Complex.re = e; im = eta } in
  let zi = Cmatrix.scale z (Cmatrix.identity m) in
  let a i =
    let base = Cmatrix.sub zi dev.blocks.(i) in
    let base = if i = 0 then Cmatrix.sub base dev.sigma_l else base in
    if i = nb - 1 then Cmatrix.sub base dev.sigma_r else base
  in
  (* Left- and right-connected Green's functions. *)
  let gl = Array.make nb (Cmatrix.identity m) in
  gl.(0) <- Cmatrix.inverse (a 0);
  for i = 1 to nb - 1 do
    let h = dev.couplings.(i - 1) in
    let hdag = Cmatrix.adjoint h in
    let self = Cmatrix.mul hdag (Cmatrix.mul gl.(i - 1) h) in
    gl.(i) <- Cmatrix.inverse (Cmatrix.sub (a i) self)
  done;
  let gr = Array.make nb (Cmatrix.identity m) in
  gr.(nb - 1) <- Cmatrix.inverse (a (nb - 1));
  for i = nb - 2 downto 0 do
    let h = dev.couplings.(i) in
    let hdag = Cmatrix.adjoint h in
    let self = Cmatrix.mul h (Cmatrix.mul gr.(i + 1) hdag) in
    gr.(i) <- Cmatrix.inverse (Cmatrix.sub (a i) self)
  done;
  (* First-column blocks G_{i,0}: G_{0,0} fully connected via gr.(0)'s
     complement; build with the standard relations. *)
  let g00 =
    let base = a 0 in
    let self =
      if nb > 1 then
        let h = dev.couplings.(0) in
        Cmatrix.mul h (Cmatrix.mul gr.(1) (Cmatrix.adjoint h))
      else Cmatrix.create m m
    in
    Cmatrix.inverse (Cmatrix.sub base self)
  in
  let col0 = Array.make nb g00 in
  for i = 1 to nb - 1 do
    let h = dev.couplings.(i - 1) in
    (* G_{i,0} = gR_i H_{i,i-1} G_{i-1,0}; H_{i,i-1} = H_{i-1,i}^dag. *)
    col0.(i) <- Cmatrix.mul gr.(i) (Cmatrix.mul (Cmatrix.adjoint h) col0.(i - 1))
  done;
  (* Last-column blocks G_{i,n-1}. *)
  let gnn =
    let base = a (nb - 1) in
    let self =
      if nb > 1 then
        let h = dev.couplings.(nb - 2) in
        Cmatrix.mul (Cmatrix.adjoint h) (Cmatrix.mul gl.(nb - 2) h)
      else Cmatrix.create m m
    in
    Cmatrix.inverse (Cmatrix.sub base self)
  in
  let coln = Array.make nb gnn in
  for i = nb - 2 downto 0 do
    let h = dev.couplings.(i) in
    coln.(i) <- Cmatrix.mul gl.(i) (Cmatrix.mul h coln.(i + 1))
  done;
  let gamma_l = gamma_of dev.sigma_l and gamma_r = gamma_of dev.sigma_r in
  let diag_of g gamma =
    (* diag(G Gamma G^dag), real and non-negative. *)
    let prod = Cmatrix.mul g (Cmatrix.mul gamma (Cmatrix.adjoint g)) in
    Array.map (fun z -> z.Complex.re) (Cmatrix.diag prod)
  in
  let a1 = Array.map (fun g -> diag_of g gamma_l) col0 in
  let a2 = Array.map (fun g -> diag_of g gamma_r) coln in
  let t =
    Cmatrix.trace
      (Cmatrix.mul gamma_l
         (Cmatrix.mul coln.(0) (Cmatrix.mul gamma_r (Cmatrix.adjoint coln.(0)))))
  in
  { t_coh = t.Complex.re; a1; a2 }

let ideal_gnr_device ?(n_cells = 12) n ~device_of_energy:e =
  let tb = Tight_binding.make n in
  let h00 = Cmatrix.of_real tb.Tight_binding.h00 in
  let h01 = Cmatrix.of_real tb.Tight_binding.h01 in
  let h10 = Cmatrix.adjoint h01 in
  (* Left lead extends via h10 away from the device, right lead via h01. *)
  let gs_l = Self_energy.sancho_rubio ~h00 ~h01:h10 e in
  let sigma_l = Cmatrix.mul h10 (Cmatrix.mul gs_l h01) in
  let gs_r = Self_energy.sancho_rubio ~h00 ~h01 e in
  let sigma_r = Cmatrix.mul h01 (Cmatrix.mul gs_r h10) in
  {
    blocks = Array.make n_cells h00;
    couplings = Array.make (max 0 (n_cells - 1)) h01;
    sigma_l;
    sigma_r;
  }

let ideal_gnr_transmission ?eta ?n_cells n e =
  transmission ?eta (ideal_gnr_device ?n_cells n ~device_of_energy:e) e
