lib/negf/rgf_block.ml: Array Cmatrix Complex Self_energy Tight_binding
