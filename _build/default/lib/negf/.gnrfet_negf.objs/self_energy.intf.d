lib/negf/self_energy.mli: Cmatrix Complex
