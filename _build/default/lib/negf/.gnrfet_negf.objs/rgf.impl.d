lib/negf/rgf.ml: Array Complex
