lib/negf/observables.mli: Rgf
