lib/negf/rgf.mli: Complex
