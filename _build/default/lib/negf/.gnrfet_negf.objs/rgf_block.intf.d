lib/negf/rgf_block.mli: Cmatrix
