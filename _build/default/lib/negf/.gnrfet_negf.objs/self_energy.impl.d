lib/negf/self_energy.ml: Cmatrix Complex
