lib/negf/observables.ml: Array Const Fermi Float Integrate Rgf Vec
