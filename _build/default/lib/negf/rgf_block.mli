(** Block (real-space, full atomistic basis) RGF — the reference solver the
    mode-space chain is validated against in the test suite.

    The device is a chain of identical-size blocks with nearest-block
    coupling; leads enter through explicit self-energy blocks on the first
    and last block. *)

type device = {
  blocks : Cmatrix.t array;  (** on-block Hamiltonians H_ii, size m × m *)
  couplings : Cmatrix.t array;  (** H_{i,i+1}, length [blocks - 1] *)
  sigma_l : Cmatrix.t;  (** retarded lead self-energy on block 0 *)
  sigma_r : Cmatrix.t;  (** retarded lead self-energy on the last block *)
}

val transmission : ?eta:float -> device -> float -> float
(** Coherent transmission [Tr(ΓL G ΓR G†)] at the given energy (eV). *)

type spectra = {
  t_coh : float;
  a1 : float array array;  (** [a1.(block).(orbital)]: source-injected
                               spectral-function diagonal, 1/eV *)
  a2 : float array array;  (** drain-injected diagonal *)
}

val spectra : ?eta:float -> device -> float -> spectra
(** Contact-resolved spectral functions by full block RGF (forward and
    backward sweeps); the local density of states per orbital is
    [(a1 + a2) / 2π].  Used to validate the mode-space charge
    integration against the atomistic reference. *)

val ideal_gnr_transmission : ?eta:float -> ?n_cells:int -> int -> float -> float
(** Transmission of an ideal (flat-potential) A-GNR of the given index,
    with semi-infinite GNR leads computed by Sancho–Rubio decimation: the
    exact staircase [T(E) = number of modes at E], used to validate both
    the band structure and the mode-space reduction. *)
