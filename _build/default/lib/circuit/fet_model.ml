type t = {
  name : string;
  id : vgs:float -> vds:float -> float;
  cgs : vgs:float -> vds:float -> float;
  cgd : vgs:float -> vds:float -> float;
}

let parallel name models =
  if models = [] then invalid_arg "Fet_model.parallel: empty list";
  let sum f ~vgs ~vds =
    List.fold_left (fun acc m -> acc +. f m ~vgs ~vds) 0. models
  in
  {
    name;
    id = (fun ~vgs ~vds -> sum (fun m -> m.id) ~vgs ~vds);
    cgs = (fun ~vgs ~vds -> sum (fun m -> m.cgs) ~vgs ~vds);
    cgd = (fun ~vgs ~vds -> sum (fun m -> m.cgd) ~vgs ~vds);
  }

let scale name k m =
  {
    name;
    id = (fun ~vgs ~vds -> k *. m.id ~vgs ~vds);
    cgs = (fun ~vgs ~vds -> k *. m.cgs ~vgs ~vds);
    cgd = (fun ~vgs ~vds -> k *. m.cgd ~vgs ~vds);
  }
