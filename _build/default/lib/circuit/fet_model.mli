(** Abstract large-signal FET model consumed by the circuit engine.

    A model answers for the *intrinsic* device between its gate, drain and
    source terminals; extrinsic parasitics (contact resistances, junction
    capacitances) are added as explicit circuit elements by the cell
    builders, following Fig 3(a) of the paper. *)

type t = {
  name : string;
  id : vgs:float -> vds:float -> float;
      (** static drain current (A), defined for both signs of [vds] *)
  cgs : vgs:float -> vds:float -> float;
      (** intrinsic gate–source capacitance (F), non-negative *)
  cgd : vgs:float -> vds:float -> float;
      (** intrinsic gate–drain capacitance (F), non-negative *)
}

val parallel : string -> t list -> t
(** Terminal-wise parallel composition: currents and capacitances add.
    Used for the 4-GNR array channel, where each GNR may carry its own
    variation or defect. *)

val scale : string -> float -> t -> t
(** Multiply currents and capacitances (device width scaling). *)
