(** Static noise margins via the butterfly / maximum-inscribed-square method
    (Seevinck), used for inverter robustness (Sec 3.1) and the latch study
    (Fig 7). *)

type vtc = { vin : float array; vout : float array }
(** Sampled voltage-transfer curve, [vin] strictly increasing. *)

val snm : vtc -> vtc -> float
(** [snm vtc1 vtc2] is the static noise margin of the loop formed by the
    two inverters (cross-coupled, vtc2 mirrored): the side of the largest
    square inscribed in the smaller butterfly eye.  Non-negative; 0 when an
    eye has collapsed. *)

val lobes : vtc -> vtc -> float * float
(** Both eye openings (square sides), in scan order; [snm] is their
    minimum. *)

val butterfly : vtc -> vtc -> (float * float) list * (float * float) list
(** The two butterfly branches in the (VL, VR) plane for plotting:
    [(vl, f1 vl)] and [(f2 vr, vr)]. *)
