type waveform =
  | Dc of float
  | Pulse of { v0 : float; v1 : float; td : float; tr : float; tf : float; pw : float }

type card =
  | Resistor of { name : string; n1 : string; n2 : string; ohms : float }
  | Capacitor of { name : string; n1 : string; n2 : string; farads : float }
  | Source of { name : string; node : string; wave : waveform }
  | Fet of { name : string; d : string; g : string; s : string; model : string }

type analysis =
  | Tran of { dt : float; t_stop : float }
  | Dc_sweep of { source : string; start : float; stop : float; step : float }

type t = { cards : card list; analyses : analysis list }

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let suffixes =
  [
    ("meg", 1e6); ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3);
    ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15); ("a", 1e-18);
  ]

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then None
  else begin
    let try_suffix (suffix, scale) =
      if String.length s > String.length suffix
         && String.ends_with ~suffix s
      then begin
        let body = String.sub s 0 (String.length s - String.length suffix) in
        match float_of_string_opt body with
        | Some v -> Some (v *. scale)
        | None -> None
      end
      else None
    in
    (* "meg" must win over "g"; the list is ordered accordingly. *)
    match List.find_map try_suffix suffixes with
    | Some v -> Some v
    | None -> float_of_string_opt s
  end

let value_exn line s =
  match parse_value s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "bad value %S" s)

(* Strip comments, split into fields; PULSE(...) groups are re-joined. *)
let tokenize line_no raw =
  let without_comment =
    match String.index_opt raw ';' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let cleaned =
    String.map (function '(' -> ' ' | ')' -> ' ' | ',' -> ' ' | c -> c)
      without_comment
  in
  ignore line_no;
  String.split_on_char ' ' cleaned
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_card line_no tokens =
  match tokens with
  | [] -> None
  | first :: rest ->
    let name = String.lowercase_ascii first in
    let kind = name.[0] in
    (match (kind, rest) with
    | ('r', [ n1; n2; v ]) ->
      Some (Resistor { name; n1; n2; ohms = value_exn line_no v })
    | ('c', [ n1; n2; v ]) ->
      Some (Capacitor { name; n1; n2; farads = value_exn line_no v })
    | ('v', n :: gnd :: spec) ->
      if gnd <> "0" && String.lowercase_ascii gnd <> "gnd" then
        fail line_no "sources must be ground-referenced";
      let wave =
        match List.map String.lowercase_ascii spec with
        | [ "dc"; v ] | [ v ] -> Dc (value_exn line_no v)
        | "pulse" :: args -> begin
          match List.map (value_exn line_no) args with
          | [ v0; v1; td; tr; tf; pw ] -> Pulse { v0; v1; td; tr; tf; pw }
          | _ -> fail line_no "PULSE needs 6 arguments (v0 v1 td tr tf pw)"
        end
        | _ -> fail line_no "bad source specification"
      in
      Some (Source { name; node = n; wave })
    | ('m', [ d; g; s; model ]) -> Some (Fet { name; d; g; s; model })
    | ('r', _) | ('c', _) | ('m', _) ->
      fail line_no (Printf.sprintf "wrong number of fields for %s" first)
    | _ -> fail line_no (Printf.sprintf "unknown card %S" first))

let parse_directive line_no tokens =
  match List.map String.lowercase_ascii tokens with
  | [ ".tran"; dt; t_stop ] ->
    Some (Tran { dt = value_exn line_no dt; t_stop = value_exn line_no t_stop })
  | [ ".dc"; src; start; stop; step ] ->
    Some
      (Dc_sweep
         {
           source = src;
           start = value_exn line_no start;
           stop = value_exn line_no stop;
           step = value_exn line_no step;
         })
  | [ ".end" ] -> None
  | d :: _ -> fail line_no (Printf.sprintf "unknown directive %S" d)
  | [] -> None

let parse text =
  let lines = String.split_on_char '\n' text in
  let cards = ref [] and analyses = ref [] in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let trimmed = String.trim raw in
      if trimmed <> "" && trimmed.[0] <> '*' then begin
        let tokens = tokenize line_no trimmed in
        if tokens <> [] then begin
          if trimmed.[0] = '.' then begin
            match parse_directive line_no tokens with
            | Some a -> analyses := a :: !analyses
            | None -> ()
          end
          else begin
            match parse_card line_no tokens with
            | Some c -> cards := c :: !cards
            | None -> ()
          end
        end
      end)
    lines;
  { cards = List.rev !cards; analyses = List.rev !analyses }

let waveform_value wave t =
  match wave with
  | Dc v -> v
  | Pulse { v0; v1; td; tr; tf; pw } ->
    if t <= td then v0
    else if t <= td +. tr then v0 +. ((v1 -. v0) *. (t -. td) /. Float.max tr 1e-30)
    else if t <= td +. tr +. pw then v1
    else if t <= td +. tr +. pw +. tf then
      v1 +. ((v0 -. v1) *. (t -. td -. tr -. pw) /. Float.max tf 1e-30)
    else v0

type built = {
  net : Netlist.t;
  node_of : string -> Netlist.node;
  source_node : string -> Netlist.node;
}

let build deck ~models =
  let net = Netlist.create () in
  let table : (string, Netlist.node) Hashtbl.t = Hashtbl.create 16 in
  let node_of name =
    let key = String.lowercase_ascii name in
    if key = "0" || key = "gnd" then Netlist.gnd
    else begin
      match Hashtbl.find_opt table key with
      | Some n -> n
      | None ->
        let n = Netlist.fresh_node net in
        Hashtbl.add table key n;
        n
    end
  in
  let sources : (string, Netlist.node) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun card ->
      match card with
      | Resistor { n1; n2; ohms; name = _ } ->
        Netlist.add net (Netlist.Resistor { a = node_of n1; b = node_of n2; ohms })
      | Capacitor { n1; n2; farads; name = _ } ->
        Netlist.add net (Netlist.Capacitor { a = node_of n1; b = node_of n2; farads })
      | Source { name; node; wave } ->
        let n = node_of node in
        Netlist.vsource net n (waveform_value wave);
        Hashtbl.replace sources name n
      | Fet { name; d; g; s; model } -> begin
        match models model with
        | Some m ->
          Netlist.add net
            (Netlist.Fet { g = node_of g; d = node_of d; s = node_of s; model = m })
        | None -> failwith (Printf.sprintf "Spice_deck.build: unknown model %S (device %s)" model name)
      end)
    deck.cards;
  {
    net;
    node_of =
      (fun name ->
        let key = String.lowercase_ascii name in
        if key = "0" || key = "gnd" then Netlist.gnd
        else begin
          match Hashtbl.find_opt table key with
          | Some n -> n
          | None -> raise Not_found
        end);
    source_node =
      (fun name ->
        match Hashtbl.find_opt sources (String.lowercase_ascii name) with
        | Some n -> n
        | None -> raise Not_found);
  }
