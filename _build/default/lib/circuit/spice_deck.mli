(** A small SPICE-dialect netlist front-end for the circuit engine.

    Supported cards (case-insensitive, `*` and `;` comments):

    - [R<name> n1 n2 <value>] — resistor (Ω)
    - [C<name> n1 n2 <value>] — capacitor (F)
    - [V<name> n+ 0 DC <value>] — ground-referenced DC source
    - [V<name> n+ 0 PULSE(v0 v1 td tr tf pw)] — single pulse
    - [M<name> d g s <model>] — FET, model resolved by the caller
    - [.tran <dt> <tstop>] — transient analysis request
    - [.dc <vname> <start> <stop> <step>] — DC sweep request
    - [.end]

    Engineering suffixes a/f/p/n/u/m/k/meg/g/t are accepted on values.
    Node "0" (or "gnd") is ground; all other node names are arbitrary
    identifiers. *)

type waveform = Dc of float | Pulse of { v0 : float; v1 : float; td : float; tr : float; tf : float; pw : float }

type card =
  | Resistor of { name : string; n1 : string; n2 : string; ohms : float }
  | Capacitor of { name : string; n1 : string; n2 : string; farads : float }
  | Source of { name : string; node : string; wave : waveform }
  | Fet of { name : string; d : string; g : string; s : string; model : string }

type analysis =
  | Tran of { dt : float; t_stop : float }
  | Dc_sweep of { source : string; start : float; stop : float; step : float }

type t = { cards : card list; analyses : analysis list }

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> t
(** Parse a deck from its text. *)

val parse_value : string -> float option
(** Engineering-notation number ("10k", "2.5p", "1meg"). *)

type built = {
  net : Netlist.t;
  node_of : string -> Netlist.node;
      (** resolve a deck node name (raises [Not_found] for unknown names) *)
  source_node : string -> Netlist.node;
      (** node driven by the named source (raises [Not_found]) *)
}

val build : t -> models:(string -> Fet_model.t option) -> built
(** Instantiate the deck.  Unknown FET model names raise
    [Failure]. *)

val waveform_value : waveform -> float -> float
(** Evaluate a source waveform at a time (exposed for tests). *)
