(** Waveform measurements: delays, oscillation periods, powers. *)

val crossings :
  times:float array -> values:float array -> level:float -> rising:bool -> float list
(** Interpolated times at which the trace crosses [level] in the given
    direction, in order. *)

val delay_50 :
  times:float array ->
  input:float array ->
  output:float array ->
  vdd:float ->
  input_rising:bool ->
  float option
(** Propagation delay: from the input's 50% crossing (given direction) to
    the output's next 50% crossing (opposite direction). *)

val delay_levels :
  times:float array ->
  input:float array ->
  output:float array ->
  in_level:float ->
  out_level:float ->
  input_rising:bool ->
  float option
(** Like {!delay_50} with independent input/output thresholds — needed
    when a degraded cell's output levels no longer straddle VDD/2.  The
    output edge is the nearest opposite-direction crossing to the input
    edge, so heavily skewed cells may report a (physical) negative
    delay. *)

val period : times:float array -> values:float array -> level:float -> float option
(** Median separation of successive rising crossings (robust oscillation
    period estimate); [None] with fewer than three crossings. *)

val average : times:float array -> values:float array -> t_from:float -> float
(** Time average of a trace from [t_from] to the end (trapezoid). *)

val energy :
  times:float array -> current:float array -> volts:float -> t_from:float -> t_to:float -> float
(** ∫ i(t)·V dt over the window: energy delivered by a fixed-voltage
    source. *)
