type node = int

let gnd = 0

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Fet of { g : node; d : node; s : node; model : Fet_model.t }

type t = {
  mutable next_node : int;
  mutable elems : element list;
  mutable sources : (node * (float -> float)) list;
}

let create () = { next_node = 1; elems = []; sources = [] }

let fresh_node t =
  let n = t.next_node in
  t.next_node <- n + 1;
  n

let node_count t = t.next_node

let check_node t n name =
  if n < 0 || n >= t.next_node then invalid_arg (name ^ ": unknown node")

let add t e =
  begin
    match e with
    | Resistor { a; b; ohms } ->
      check_node t a "Netlist.add";
      check_node t b "Netlist.add";
      if ohms <= 0. then invalid_arg "Netlist.add: non-positive resistance"
    | Capacitor { a; b; farads } ->
      check_node t a "Netlist.add";
      check_node t b "Netlist.add";
      if farads < 0. then invalid_arg "Netlist.add: negative capacitance"
    | Fet { g; d; s; model = _ } ->
      check_node t g "Netlist.add";
      check_node t d "Netlist.add";
      check_node t s "Netlist.add"
  end;
  t.elems <- e :: t.elems

let vsource t node wave =
  check_node t node "Netlist.vsource";
  if node = gnd then invalid_arg "Netlist.vsource: cannot drive ground";
  if List.mem_assoc node t.sources then
    invalid_arg "Netlist.vsource: node already driven";
  t.sources <- (node, wave) :: t.sources

let vdc t node volts = vsource t node (fun _ -> volts)

let elements t = List.rev t.elems

let driven t = t.sources

let is_driven t n = n = gnd || List.mem_assoc n t.sources
