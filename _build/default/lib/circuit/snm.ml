type vtc = { vin : float array; vout : float array }

let check v =
  let n = Array.length v.vin in
  if n < 2 || Array.length v.vout <> n then invalid_arg "Snm: bad VTC";
  for i = 0 to n - 2 do
    if v.vin.(i + 1) <= v.vin.(i) then invalid_arg "Snm: vin not increasing"
  done

(* Root of (interpolated) g(x) = c for a sampled monotone g; None if the
   level is not bracketed by the samples. *)
let monotone_root xs gs c =
  let n = Array.length xs in
  let rec go k =
    if k >= n - 1 then None
    else begin
      let a = gs.(k) -. c and b = gs.(k + 1) -. c in
      if a = 0. then Some xs.(k)
      else if a *. b < 0. || b = 0. then begin
        let t = -.a /. (b -. a) in
        Some (xs.(k) +. (t *. (xs.(k + 1) -. xs.(k))))
      end
      else go (k + 1)
    end
  in
  go 0

(* Eye openings along 45-degree scan lines y = x + c: the square corner on
   curve 1 solves f1(x) - x = c, the corner on mirrored curve 2 solves
   y - f2(y) = c; the square side is their horizontal separation. *)
let lobes v1 v2 =
  check v1;
  check v2;
  let g1 = Array.mapi (fun i x -> v1.vout.(i) -. x) v1.vin in
  let h2 = Array.mapi (fun i y -> y -. v2.vout.(i)) v2.vin in
  (* Scan c over the overlap of both monotone ranges. *)
  let lo =
    Float.max
      (Array.fold_left Float.min infinity g1)
      (Array.fold_left Float.min infinity h2)
  in
  let hi =
    Float.min
      (Array.fold_left Float.max neg_infinity g1)
      (Array.fold_left Float.max neg_infinity h2)
  in
  if hi <= lo then (0., 0.)
  else begin
    let pos = ref 0. and neg = ref 0. in
    let nscan = 201 in
    Array.iter
      (fun c ->
        match (monotone_root v1.vin g1 c, monotone_root v2.vin h2 c) with
        | Some xa, Some yb ->
          let s = yb -. c -. xa in
          if s > !pos then pos := s;
          if -.s > !neg then neg := -.s
        | None, _ | _, None -> ())
      (Vec.linspace lo hi nscan);
    (!pos, !neg)
  end

let snm v1 v2 =
  let a, b = lobes v1 v2 in
  Float.max 0. (Float.min a b)

let butterfly v1 v2 =
  check v1;
  check v2;
  let c1 =
    Array.to_list (Array.mapi (fun i x -> (x, v1.vout.(i))) v1.vin)
  in
  let c2 =
    Array.to_list (Array.mapi (fun i y -> (v2.vout.(i), y)) v2.vin)
  in
  (c1, c2)
