lib/circuit/mna.mli: Netlist
