lib/circuit/measure.ml: Array Float List
