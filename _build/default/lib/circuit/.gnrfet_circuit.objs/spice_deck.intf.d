lib/circuit/spice_deck.mli: Fet_model Netlist
