lib/circuit/fet_model.mli:
