lib/circuit/spice_deck.ml: Float Hashtbl List Netlist Printf String
