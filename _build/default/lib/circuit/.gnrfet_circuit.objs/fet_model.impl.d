lib/circuit/fet_model.ml: List
