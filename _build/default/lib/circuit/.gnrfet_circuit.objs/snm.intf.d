lib/circuit/snm.mli:
