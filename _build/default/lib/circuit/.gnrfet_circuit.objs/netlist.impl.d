lib/circuit/netlist.ml: Fet_model List
