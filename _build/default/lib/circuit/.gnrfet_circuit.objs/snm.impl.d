lib/circuit/snm.ml: Array Float Vec
