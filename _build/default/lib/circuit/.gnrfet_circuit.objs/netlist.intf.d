lib/circuit/netlist.mli: Fet_model
