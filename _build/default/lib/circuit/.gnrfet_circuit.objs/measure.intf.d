lib/circuit/measure.mli:
