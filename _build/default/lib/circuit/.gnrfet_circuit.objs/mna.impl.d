lib/circuit/mna.ml: Array Buffer Fet_model Float Fun List Matrix Netlist Printf Sys Vec
