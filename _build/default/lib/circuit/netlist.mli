(** Circuit netlist builder.

    Nodes are small integers; node 0 is ground.  Voltage sources are
    ground-referenced (sufficient for the supply rails and drivers used in
    the paper's circuits) and turn their node into a driven node. *)

type node = int

val gnd : node

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Fet of { g : node; d : node; s : node; model : Fet_model.t }

type t

val create : unit -> t

val fresh_node : t -> node

val node_count : t -> int

val add : t -> element -> unit

val vsource : t -> node -> (float -> float) -> unit
(** Drive [node] with the given waveform (volts as a function of seconds).
    A node can only be driven once. *)

val vdc : t -> node -> float -> unit
(** Constant-voltage drive. *)

val elements : t -> element list

val driven : t -> (node * (float -> float)) list

val is_driven : t -> node -> bool
