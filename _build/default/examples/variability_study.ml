(* Variability study (Section 5 of the paper): how a single narrow or wide
   GNR in the 4-GNR array channel — or a charge impurity stuck in the gate
   oxide — changes an inverter's delay, leakage and noise margin.

   Run with:  dune exec examples/variability_study.exe
   (needs the device-table cache; run `dune exec bin/gen_tables.exe` once,
   or let this example generate the three tables it needs). *)

let describe label (m : Metrics.inverter_metrics) (nom : Metrics.inverter_metrics) =
  Printf.printf "%-34s delay %6.2f ps (%+5.0f%%)  Pstat %8.4f uW (%+5.0f%%)  SNM %.3f V (%+5.0f%%)\n"
    label
    (m.Metrics.tp *. 1e12)
    (Variation.pct ~nominal:nom.Metrics.tp m.Metrics.tp)
    (m.Metrics.p_static /. 1e-6)
    (Variation.pct ~nominal:nom.Metrics.p_static m.Metrics.p_static)
    m.Metrics.snm
    (Variation.pct ~nominal:nom.Metrics.snm m.Metrics.snm)

let () =
  let op = Variation.point_b in
  Printf.printf "operating point: VDD = %.2f V, VT = %.2f V\n%!" op.Variation.vdd
    op.Variation.vt;
  let metrics ~n_spec ~p_spec ~all_four =
    let pair = Variation.pair_for ~op ~n_spec ~p_spec ~all_four () in
    Metrics.inverter_metrics ~pair ~vdd:op.Variation.vdd ()
  in
  let nominal_spec = Variation.nominal_spec in
  let nom = metrics ~n_spec:nominal_spec ~p_spec:nominal_spec ~all_four:false in
  describe "nominal (all N=12)" nom nom;

  (* Width variation: one narrow GNR in each FET vs all four narrow. *)
  let narrow = { Variation.gnr_index = 9; charge = 0. } in
  describe "N=9 on 1-of-4 GNRs"
    (metrics ~n_spec:narrow ~p_spec:narrow ~all_four:false)
    nom;
  describe "N=9 on 4-of-4 GNRs"
    (metrics ~n_spec:narrow ~p_spec:narrow ~all_four:true)
    nom;

  (* The leakage catastrophe: wide (small-gap) GNRs. *)
  let wide = { Variation.gnr_index = 18; charge = 0. } in
  describe "N=18 on 4-of-4 GNRs"
    (metrics ~n_spec:wide ~p_spec:wide ~all_four:true)
    nom;

  (* A single negative charge trapped near the n-FET source. *)
  let dirty = { Variation.gnr_index = 12; charge = -1. } in
  describe "-q impurity, nFET, 1-of-4"
    (metrics ~n_spec:dirty ~p_spec:nominal_spec ~all_four:false)
    nom;
  describe "-q impurity, nFET, 4-of-4"
    (metrics ~n_spec:dirty ~p_spec:nominal_spec ~all_four:true)
    nom
