(* Quickstart: from atomistic ribbon to a switching inverter in ~40 lines.

   Run with:  dune exec examples/quickstart.exe

   The first run generates the N=12 device table with the self-consistent
   NEGF-Poisson solver (about a minute); later runs load it from the
   _tables/ cache instantly. *)

let () =
  (* 1. The material: an N = 12 armchair graphene nanoribbon. *)
  let n = 12 in
  Printf.printf "A-GNR N=%d: width %.2f nm, band gap %.3f eV\n%!" n
    (Lattice.width n /. Const.nm)
    (Bands.gap_of_index n);

  (* 2. The device: the paper's 15 nm double-gate Schottky-barrier FET. *)
  let device = Params.default ~gnr_index:n () in
  Format.printf "device: %a@." Params.pp device;
  let on = Scf.solve device ~vg:0.5 ~vd:0.5 in
  Printf.printf "one bias point: ID(VG=VD=0.5V) = %.3g A (%d SCF iterations)\n%!"
    on.Scf.current on.Scf.iterations;

  (* 3. The lookup table (cached on disk after the first run). *)
  let table = Table_cache.get device in
  Printf.printf "table ready; VT = %.3f V\n%!" (Gnr_model.vt_nominal table);

  (* 4. A complementary 4-GNR-array inverter at the paper's operating
     point B (VDD = 0.4 V, VT = 0.13 V). *)
  let pair = Explore.pair_at table ~vt:0.13 in
  let m = Metrics.inverter_metrics ~pair ~vdd:0.4 () in
  Printf.printf
    "FO4 inverter @ VDD=0.4V: delay %.2f ps, leakage %.3g uW, SNM %.3f V\n%!"
    (m.Metrics.tp *. 1e12)
    (m.Metrics.p_static /. 1e-6)
    m.Metrics.snm;
  Printf.printf "implied 15-stage RO frequency: %.2f GHz,  EDP: %.1f fJ-ps\n%!"
    (Metrics.ro_frequency m ~stages:15 /. 1e9)
    (Metrics.edp m ~stages:15 /. 1e-27)
