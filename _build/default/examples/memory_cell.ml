(* Memory-cell robustness (Fig 7 of the paper): cross-coupled GNRFET
   inverters as a latch, and what width variation plus trapped charge does
   to its butterfly curves, noise margin and leakage.

   Run with:  dune exec examples/memory_cell.exe *)

let ascii_butterfly (s : Variation.latch_study) ~vdd =
  (* 21x21 character rendering of the two butterfly branches. *)
  let n = 21 in
  let grid = Array.make_matrix n n ' ' in
  let plot ch pts =
    List.iter
      (fun (x, y) ->
        let i = int_of_float (Float.round (x /. vdd *. float_of_int (n - 1))) in
        let j = int_of_float (Float.round (y /. vdd *. float_of_int (n - 1))) in
        if i >= 0 && i < n && j >= 0 && j < n then
          grid.(n - 1 - j).(i) <- (if grid.(n - 1 - j).(i) = ' ' then ch else '*'))
      pts
  in
  let c1, c2 = s.Variation.butterfly in
  plot '.' c1;
  plot 'o' c2;
  Array.iter
    (fun row ->
      print_string "    |";
      Array.iter print_char row;
      print_newline ())
    grid

let show s ~vdd =
  Printf.printf "\n%s\n  SNM = %.3f V, leakage = %.4g uW\n" s.Variation.label
    s.Variation.snm
    (s.Variation.static_power /. 1e-6);
  ascii_butterfly s ~vdd

let () =
  let op = Variation.point_b in
  let vdd = op.Variation.vdd in
  Printf.printf "latch study at VDD = %.2f V (Fig 7)\n%!" vdd;
  let nominal =
    Variation.latch ~op ~n_spec:Variation.nominal_spec
      ~p_spec:Variation.nominal_spec ~all_four:false ()
  in
  show nominal ~vdd;
  let single = Variation.latch_worst_case ~op ~all_four:false () in
  show single ~vdd;
  let all = Variation.latch_worst_case ~op ~all_four:true () in
  show all ~vdd;
  Printf.printf
    "\nworst-case leakage is %.1fX nominal; the paper reports >5X with a collapsed eye.\n"
    (all.Variation.static_power /. nominal.Variation.static_power)
