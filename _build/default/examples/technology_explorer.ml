(* Technology exploration (Section 3.1 of the paper): sweep the (VDD, VT)
   plane, print the energy-delay-product landscape, and pick an operating
   point that balances speed, energy and noise robustness.

   Run with:  dune exec examples/technology_explorer.exe *)

let () =
  let table = Table_cache.get (Params.default ()) in
  Printf.printf "sweeping VDD x VT (7 x 7 grid, 15-stage FO4 ring oscillator)...\n%!";
  let s =
    Explore.surface
      ~vdds:(Vec.linspace 0.2 0.6 7)
      ~vts:(Vec.linspace 0.02 0.26 7)
      table
  in
  (* The ln(EDP) landscape, as contoured in Fig 3(b). *)
  Printf.printf "\nln(EDP [aJ-ps]) (rows VDD high->low, cols VT low->high):\n";
  Printf.printf "        ";
  Array.iter (fun vt -> Printf.printf "%7.2f" vt) s.Explore.vts;
  print_newline ();
  for i = Array.length s.Explore.vdds - 1 downto 0 do
    Printf.printf "VDD %.2f " s.Explore.vdds.(i);
    Array.iter
      (fun p -> Printf.printf "%7.2f" (Explore.edp_ln_aj_ps p))
      s.Explore.points.(i);
    print_newline ()
  done;
  let m = Explore.min_edp s in
  Printf.printf "\nunconstrained EDP minimum: VDD=%.2f V, VT=%.2f V (EDP %.1f fJ-ps)\n"
    m.Explore.vdd m.Explore.vt
    (m.Explore.value /. 1e-27);
  (* Constrained choices, like the paper's points A and B. *)
  (match Explore.min_edp_at_frequency s ~ghz:3. with
  | Some a ->
    Printf.printf "point A (3 GHz, min EDP):        VDD=%.2f VT=%.2f EDP=%.1f fJ-ps\n"
      a.Explore.vdd a.Explore.vt
      (a.Explore.value /. 1e-27)
  | None -> print_endline "no 3 GHz point on this grid");
  match Explore.min_edp_at_frequency_and_snm s ~ghz:3. ~snm:0.08 with
  | Some b ->
    Printf.printf "point B (3 GHz with SNM floor):  VDD=%.2f VT=%.2f EDP=%.1f fJ-ps\n"
      b.Explore.vdd b.Explore.vt
      (b.Explore.value /. 1e-27)
  | None -> print_endline "no SNM-constrained point on this grid"
