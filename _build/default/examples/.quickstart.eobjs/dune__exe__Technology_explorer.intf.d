examples/technology_explorer.mli:
