examples/variability_study.ml: Metrics Printf Variation
