examples/technology_explorer.ml: Array Explore Params Printf Table_cache Vec
