examples/variability_study.mli:
