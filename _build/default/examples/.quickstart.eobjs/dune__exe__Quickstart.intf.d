examples/quickstart.mli:
