examples/memory_cell.mli:
