examples/memory_cell.ml: Array Float List Printf Variation
