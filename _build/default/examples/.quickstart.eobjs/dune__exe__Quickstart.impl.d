examples/quickstart.ml: Bands Const Explore Format Gnr_model Lattice Metrics Params Printf Scf Table_cache
