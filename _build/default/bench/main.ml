(* Benchmark harness: regenerates every table and figure of the paper and
   times the computational kernel behind each with Bechamel.

   Usage:
     dune exec bench/main.exe                 full reproduction + benchmarks
     GNRFET_BENCH_FAST=1 dune exec bench/main.exe   benchmarks only

   The first run generates the device-table cache (about 12 minutes on one
   core; `dune exec bin/gen_tables.exe` does the same ahead of time);
   subsequent runs load it from _tables/. *)

open Bechamel

let kernels : (string * (unit -> float)) list =
  [
    ("fig2a:scf-iv-sweep", Exp_fig2a.bench_kernel);
    ("fig2b:vt-extraction", Exp_fig2b.bench_kernel);
    ("fig3b:explore-cell", Exp_fig3b.bench_kernel);
    ("table1:cmos-ro-metrics", Exp_table1.bench_kernel);
    ("fig4:table-lookup", Exp_fig4.bench_kernel);
    ("fig5:impurity-scf", Exp_fig5.bench_kernel);
    ("table2-4:variant-inverter", Exp_tables234.bench_kernel);
    ("fig6:montecarlo-50", Exp_fig6.bench_kernel);
    ("fig7:latch-snm", Exp_fig7.bench_kernel);
    (* Ablation benches for the design choices DESIGN.md calls out. *)
    ( "ablation:mode-count",
      fun () ->
        match Ablations.mode_count ~indices:[ 1 ] () with
        | [ r ] -> r.Ablations.ion
        | _ -> 0. );
    ( "ablation:contact-style",
      fun () ->
        match Ablations.contact_style () with
        | r :: _ -> r.Ablations.ion
        | [] -> 0. );
    ( "ablation:scf-mixing",
      fun () ->
        match Ablations.mixing () with
        | r :: _ -> float_of_int r.Ablations.iterations
        | [] -> 0. );
    ( "extension:roughness",
      fun () ->
        (Roughness.transmission_study ~realizations:10 ~n_sites:80 ~gnr_index:12
           ~sigma:0.05 ~corr_sites:5 ())
          .Roughness.mean_transmission );
  ]

let tests =
  List.map
    (fun (name, kernel) ->
      Test.make ~name (Staged.stage (fun () -> ignore (Sys.opaque_identity (kernel ())))))
    kernels

let run_benchmarks () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~kde:None ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== kernel timings (Bechamel, monotonic clock) ==\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name m ->
          let analysis = Analyze.one ols instance m in
          match Analyze.OLS.estimates analysis with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.3f ms/run\n%!" name (est /. 1e6)
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

let () =
  let fast = Sys.getenv_opt "GNRFET_BENCH_FAST" <> None in
  Printf.printf
    "GNRFET technology exploration - benchmark & reproduction harness\n";
  Printf.printf "device-table cache: %s\n%!" (Table_cache.cache_dir ());
  let t0 = Unix.gettimeofday () in
  if not fast then begin
    Printf.printf "\n== full reproduction of every paper table and figure ==\n%!";
    All_experiments.run_all Format.std_formatter;
    Printf.printf "\n== design-choice ablations ==\n%!";
    Ablations.print_all Format.std_formatter;
    Printf.printf "\n== extension: edge-roughness study (paper ref [17]) ==\n%!";
    List.iter
      (fun sigma ->
        let s =
          Roughness.transmission_study ~gnr_index:12 ~sigma ~corr_sites:6 ()
        in
        Printf.printf
          "  sigma = %.2f: <T> = %.3f +- %.3f (%.0f%% of ideal), Lloc ~ %s\n%!"
          sigma s.Roughness.mean_transmission s.Roughness.std_transmission
          (100. *. s.Roughness.mean_ratio)
          (if Float.is_finite s.Roughness.localization_estimate then
             Printf.sprintf "%.0f nm" (s.Roughness.localization_estimate /. 1e-9)
           else "ballistic"))
      [ 0.01; 0.03; 0.06; 0.1 ]
  end;
  (* Warm the caches the kernels rely on so Bechamel times steady-state
     behaviour rather than first-touch table generation. *)
  List.iter (fun (_, k) -> ignore (k ())) kernels;
  run_benchmarks ();
  Printf.printf "\n[bench total: %.1f s]\n" (Unix.gettimeofday () -. t0)
