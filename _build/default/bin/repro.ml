(* Full paper reproduction: every table and figure, in order.
   Usage: dune exec bin/repro.exe [experiment-name ...] *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let ppf = Format.std_formatter in
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] -> All_experiments.run_all ppf
  | names ->
    List.iter
      (fun n ->
        match All_experiments.of_name n with
        | Some id -> All_experiments.run_and_print ppf id
        | None ->
          Format.fprintf ppf "unknown experiment %s (known: %s)@." n
            (String.concat ", " (List.map All_experiments.name All_experiments.all)))
      names);
  Format.fprintf ppf "@.[total: %.1f s]@." (Unix.gettimeofday () -. t0)
