(* Pre-generate the device-table cache for every experiment variant.
   Usage: dune exec bin/gen_tables.exe   (respects GNRFET_TABLE_DIR) *)

let () =
  let variants = Variants.all_for_experiments in
  Printf.printf "Generating %d device tables into %s (domains: %d)...\n%!"
    (List.length variants)
    (Table_cache.cache_dir ())
    (Parallel.num_domains ());
  let t0 = Unix.gettimeofday () in
  let tables = Table_cache.get_many variants in
  List.iter2
    (fun p (t : Iv_table.t) ->
      let ion = Iv_table.current_at t ~vg:0.75 ~vd:0.5 in
      Format.printf "  %a  Ion(0.75,0.5)=%.3g A@." Params.pp p ion)
    variants tables;
  Printf.printf "done in %.1fs\n" (Unix.gettimeofday () -. t0)
