(* Tests for the alpha-power CMOS compact model and node definitions. *)

open Support

let m = Node.n22.Node.nmos

let test_monotone_vgs () =
  let i v = Compact.drain_current m ~vgs:v ~vds:0.8 in
  let prev = ref (i 0.) in
  Array.iter
    (fun v ->
      let now = i v in
      Alcotest.(check bool) "monotone in vgs" true (now >= !prev);
      prev := now)
    (Vec.linspace 0.05 0.8 16)

let test_monotone_vds () =
  let i v = Compact.drain_current m ~vgs:0.8 ~vds:v in
  let prev = ref (i 0.) in
  Array.iter
    (fun v ->
      let now = i v in
      Alcotest.(check bool) "monotone in vds" true (now >= !prev -. 1e-15);
      prev := now)
    (Vec.linspace 0.02 1. 20)

let test_vds_antisymmetry () =
  (* Source/drain exchange: I(vgs, -vds) = -I(vgs + vds, vds). *)
  let i1 = Compact.drain_current m ~vgs:0.5 ~vds:(-0.3) in
  let i2 = -.Compact.drain_current m ~vgs:0.8 ~vds:0.3 in
  approx_rel ~rel:1e-9 "exchange symmetry" i2 i1;
  approx ~eps:1e-18 "zero at vds=0" 0. (Compact.drain_current m ~vgs:0.8 ~vds:0.)

let test_subthreshold_slope () =
  (* Slope should be n_ss * 60 mV/dec at room temperature. *)
  let vd = 0.8 in
  let i v = Compact.drain_current m ~vgs:v ~vds:vd in
  let v1 = m.Compact.vt -. 0.25 and v2 = m.Compact.vt -. 0.15 in
  let decades = Float.log10 (i v2 /. i v1) in
  let ss = (v2 -. v1) /. decades *. 1000. in
  let expected = m.Compact.n_ss *. 59.6 in
  approx ~eps:12. "subthreshold slope (mV/dec)" expected ss

let test_saturation () =
  (* Beyond vdsat the current grows only via channel-length modulation. *)
  let i1 = Compact.drain_current m ~vgs:0.8 ~vds:0.6 in
  let i2 = Compact.drain_current m ~vgs:0.8 ~vds:0.9 in
  let growth = (i2 -. i1) /. i1 in
  Alcotest.(check bool) "weak growth in saturation" true (growth < 0.1)

let test_pfet_mirror () =
  let n = Compact.fet ~name:"n" m in
  let p = Compact.pfet ~name:"p" m in
  approx_rel ~rel:1e-12 "p mirrors n"
    (-.n.Fet_model.id ~vgs:0.6 ~vds:0.4)
    (p.Fet_model.id ~vgs:(-0.6) ~vds:(-0.4))

let cmos_pair node =
  {
    Cells.nfet = Node.nfet node;
    pfet = Node.pfet node;
    ext = Cells.no_parasitics;
  }

let test_cmos_inverter_vtc () =
  let pair = cmos_pair Node.n22 in
  let v = Cells.vtc ~pair ~vdd:0.8 ~n:41 () in
  (* Rail-to-rail and monotone decreasing. *)
  Alcotest.(check bool) "high output" true (v.Snm.vout.(0) > 0.78);
  Alcotest.(check bool) "low output" true (v.Snm.vout.(40) < 0.02);
  let monotone = ref true in
  for i = 0 to 39 do
    if v.Snm.vout.(i + 1) > v.Snm.vout.(i) +. 1e-9 then monotone := false
  done;
  Alcotest.(check bool) "monotone" true !monotone;
  let snm = Snm.snm v v in
  Alcotest.(check bool) "CMOS-grade SNM at 0.8V" true (snm > 0.22 && snm < 0.4)

let test_cmos_inverter_metrics () =
  let pair = cmos_pair Node.n22 in
  let met = Metrics.inverter_metrics ~pair ~vdd:0.8 () in
  Alcotest.(check bool) "positive delay" true (met.Metrics.tp > 1e-13);
  Alcotest.(check bool) "sub-100ps FO4" true (met.Metrics.tp < 1e-10);
  Alcotest.(check bool) "leakage below on-power" true
    (met.Metrics.p_static < 1e-5);
  Alcotest.(check bool) "switching energy sane" true
    (met.Metrics.e_switch > 1e-18 && met.Metrics.e_switch < 1e-12);
  let f = Metrics.ro_frequency met ~stages:15 in
  Alcotest.(check bool) "RO frequency in the GHz range" true
    (f > 2e8 && f < 5e10)

let test_nodes_ordering () =
  (* Smaller nodes switch faster at the same supply. *)
  let f node =
    let met = Metrics.inverter_metrics ~pair:(cmos_pair node) ~vdd:0.8 () in
    Metrics.ro_frequency met ~stages:15
  in
  let f22 = f Node.n22 and f45 = f Node.n45 in
  Alcotest.(check bool) "22nm faster than 45nm" true (f22 > f45)

let suite =
  [
    Alcotest.test_case "monotone in vgs" `Quick test_monotone_vgs;
    Alcotest.test_case "monotone in vds" `Quick test_monotone_vds;
    Alcotest.test_case "vds antisymmetry" `Quick test_vds_antisymmetry;
    Alcotest.test_case "subthreshold slope" `Quick test_subthreshold_slope;
    Alcotest.test_case "saturation" `Quick test_saturation;
    Alcotest.test_case "pfet mirror" `Quick test_pfet_mirror;
    Alcotest.test_case "cmos inverter vtc" `Quick test_cmos_inverter_vtc;
    Alcotest.test_case "cmos inverter metrics" `Quick test_cmos_inverter_metrics;
    Alcotest.test_case "node ordering" `Quick test_nodes_ordering;
  ]
