(* Tests for the core multi-scale layer, using the synthetic fast table so
   no quantum simulation runs in the unit suite. *)

open Support

let table = synthetic_table ()

let test_intrinsic_polarity_mirror () =
  let nfet = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0.1 table in
  let pfet = Gnr_model.intrinsic ~polarity:Gnr_model.P_type ~vt_shift:0.1 table in
  List.iter
    (fun (vgs, vds) ->
      approx_rel ~rel:1e-12 "p mirrors n"
        (-.nfet.Fet_model.id ~vgs ~vds)
        (pfet.Fet_model.id ~vgs:(-.vgs) ~vds:(-.vds)))
    [ (0.4, 0.4); (0.1, 0.3); (0.6, 0.05) ]

let test_negative_vds_exchange () =
  let nfet = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0. table in
  (* I(vgs, -vds) = -I(vgs + vds, vds) for a source/drain-symmetric
     device (our tables are queried with the exchanged bias). *)
  let direct = nfet.Fet_model.id ~vgs:0.3 ~vds:(-0.2) in
  let exchanged = -.nfet.Fet_model.id ~vgs:0.5 ~vds:0.2 in
  approx_rel ~rel:1e-12 "exchange" exchanged direct

let test_vt_shift_moves_curve () =
  let base = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0. table in
  let shifted = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0.2 table in
  approx_rel ~rel:1e-12 "rigid shift"
    (base.Fet_model.id ~vgs:0.6 ~vds:0.4)
    (shifted.Fet_model.id ~vgs:0.4 ~vds:0.4)

let test_caps_nonnegative () =
  let nfet = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0. table in
  List.iter
    (fun (vgs, vds) ->
      Alcotest.(check bool) "cgs >= 0" true (nfet.Fet_model.cgs ~vgs ~vds >= 0.);
      Alcotest.(check bool) "cgd >= 0" true (nfet.Fet_model.cgd ~vgs ~vds >= 0.))
    [ (0., 0.1); (0.4, 0.4); (0.8, 0.1); (-0.2, 0.6); (0.3, -0.3) ]

let test_array_composition () =
  let single = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0. table in
  let quad =
    Gnr_model.array_fet ~polarity:Gnr_model.N_type ~vt_shift:0.
      [ table; table; table; table ]
  in
  approx_rel ~rel:1e-12 "4x current"
    (4. *. single.Fet_model.id ~vgs:0.5 ~vds:0.4)
    (quad.Fet_model.id ~vgs:0.5 ~vds:0.4)

let test_vt_nominal_extraction () =
  (* The synthetic electron branch turns on near vg0 + vd/2 + ...; the
     extracted threshold must land in a physically sensible window and be
     consistent with shift_for_vt. *)
  let vt = Gnr_model.vt_nominal table in
  Alcotest.(check bool) "vt in range" true (vt > 0.05 && vt < 0.6);
  approx ~eps:1e-12 "shift identity" (vt -. 0.13) (Gnr_model.shift_for_vt table 0.13)

let test_default_extrinsic_values () =
  let e = Gnr_model.default_extrinsic () in
  (* 0.05 aF/nm x 40 nm = 2 aF; contacts 10k. *)
  approx_rel ~rel:1e-9 "cgs_e" 2e-18 e.Gnr_model.cgs_e;
  approx "rs" 10e3 e.Gnr_model.rs

let pair ?(vt = 0.13) () = Explore.pair_at table ~vt

let test_cells_vtc_rails () =
  let v = Cells.vtc ~pair:(pair ()) ~vdd:0.4 ~n:31 () in
  Alcotest.(check bool) "inverts" true (v.Snm.vout.(0) > v.Snm.vout.(30));
  Alcotest.(check bool) "high level" true (v.Snm.vout.(0) > 0.3);
  Alcotest.(check bool) "low level" true (v.Snm.vout.(30) < 0.1)

let test_inverter_metrics_sane () =
  let m = Metrics.inverter_metrics ~pair:(pair ()) ~vdd:0.4 () in
  Alcotest.(check bool) "tp > 0" true (m.Metrics.tp > 0.);
  Alcotest.(check bool) "tp_lh and tp_hl within 10x" true
    (m.Metrics.tp_lh /. m.Metrics.tp_hl < 10. && m.Metrics.tp_hl /. m.Metrics.tp_lh < 10.);
  Alcotest.(check bool) "snm in (0, vdd/2]" true (m.Metrics.snm > 0. && m.Metrics.snm <= 0.2);
  Alcotest.(check bool) "static power positive" true (m.Metrics.p_static > 0.);
  Alcotest.(check bool) "switching energy positive" true (m.Metrics.e_switch > 0.)

let test_ro_formulas () =
  let m = Metrics.inverter_metrics ~pair:(pair ()) ~vdd:0.4 () in
  let f = Metrics.ro_frequency m ~stages:15 in
  approx_rel ~rel:1e-12 "f = 1/(2 N tp)" (1. /. (30. *. m.Metrics.tp)) f;
  let edp = Metrics.edp m ~stages:15 in
  Alcotest.(check bool) "edp positive" true (edp > 0.);
  approx_rel ~rel:1e-12 "dynamic power" (m.Metrics.e_switch *. f)
    (Metrics.dynamic_power m ~frequency:f)

let test_ring_oscillates () =
  let stages = Array.make 3 (pair ()) in
  match Metrics.ring_metrics ~stages ~vdd:0.4 ~cycles:10. () with
  | Some r ->
    Alcotest.(check bool) "frequency positive" true (r.Metrics.frequency > 0.);
    Alcotest.(check bool) "total >= dynamic" true
      (r.Metrics.p_total >= r.Metrics.p_dynamic -. 1e-18)
  | None -> Alcotest.fail "3-stage ring failed to oscillate"

let test_ring_validation () =
  check_raises_invalid "even ring" (fun () ->
      ignore (Cells.ring_oscillator ~stages:(Array.make 4 (pair ())) ~vdd:0.4 ()))

let test_explore_surface () =
  let s =
    Explore.surface ~stages:15
      ~vdds:[| 0.3; 0.4; 0.5 |]
      ~vts:[| 0.08; 0.13; 0.2 |]
      table
  in
  let m = Explore.min_edp s in
  Alcotest.(check bool) "min edp on grid" true
    (Array.exists (fun v -> v = m.Explore.vdd) s.Explore.vdds);
  (* Frequency increases with VDD at fixed VT. *)
  let f_low = s.Explore.points.(0).(1).Explore.frequency in
  let f_high = s.Explore.points.(2).(1).Explore.frequency in
  Alcotest.(check bool) "faster at higher vdd" true (f_high > f_low);
  let field = Explore.field s Explore.Frequency in
  approx ~eps:1e-12 "field extraction" f_low field.(0).(1)

let test_explore_contours_and_points () =
  let s =
    Explore.surface ~stages:15
      ~vdds:(Vec.linspace 0.25 0.55 4)
      ~vts:(Vec.linspace 0.05 0.25 4)
      table
  in
  let target =
    (* median frequency on the surface: guaranteed to have a contour *)
    let all =
      Array.to_list s.Explore.points
      |> List.concat_map (fun row ->
             Array.to_list (Array.map (fun p -> p.Explore.frequency) row))
    in
    List.nth (List.sort compare all) (List.length all / 2)
  in
  let cs = Explore.contours s Explore.Frequency ~level:target in
  Alcotest.(check bool) "some contour found" true (List.length cs > 0);
  match Explore.min_edp_at_frequency s ~ghz:(target /. 1e9) with
  | Some p -> Alcotest.(check bool) "edp positive" true (p.Explore.value > 0.)
  | None -> Alcotest.fail "no point on the frequency contour"

let test_variation_pct () =
  approx "pct up" 50. (Variation.pct ~nominal:2. 3.);
  approx "pct down" (-25.) (Variation.pct ~nominal:4. 3.);
  approx "pct zero nominal" 0. (Variation.pct ~nominal:0. 5.)

let suite =
  [
    Alcotest.test_case "polarity mirror" `Quick test_intrinsic_polarity_mirror;
    Alcotest.test_case "negative vds exchange" `Quick test_negative_vds_exchange;
    Alcotest.test_case "vt shift" `Quick test_vt_shift_moves_curve;
    Alcotest.test_case "caps nonnegative" `Quick test_caps_nonnegative;
    Alcotest.test_case "array composition" `Quick test_array_composition;
    Alcotest.test_case "vt extraction" `Quick test_vt_nominal_extraction;
    Alcotest.test_case "extrinsic defaults" `Quick test_default_extrinsic_values;
    Alcotest.test_case "vtc rails" `Quick test_cells_vtc_rails;
    Alcotest.test_case "inverter metrics" `Quick test_inverter_metrics_sane;
    Alcotest.test_case "ro formulas" `Quick test_ro_formulas;
    Alcotest.test_case "ring oscillates" `Quick test_ring_oscillates;
    Alcotest.test_case "ring validation" `Quick test_ring_validation;
    Alcotest.test_case "explore surface" `Quick test_explore_surface;
    Alcotest.test_case "explore contours" `Quick test_explore_contours_and_points;
    Alcotest.test_case "variation pct" `Quick test_variation_pct;
  ]
