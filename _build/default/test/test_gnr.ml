(* Tests for the A-GNR lattice, tight-binding bands and mode-space
   reduction (plus Fermi statistics). *)

open Support

let test_fermi () =
  let kt = 0.0259 in
  approx "deep below" 1. (Fermi.occupation ~mu:0. ~kt (-1.));
  approx "deep above" 0. (Fermi.occupation ~mu:0. ~kt 1.);
  approx "at mu" 0.5 (Fermi.occupation ~mu:0. ~kt 0.);
  (* f(e) = 0.7 at e = kT ln(1/0.7 - 1); the hole occupation there is 0.3. *)
  let e = kt *. log ((1. /. 0.7) -. 1.) in
  approx ~eps:1e-12 "hole complement" 0.3 (Fermi.hole_occupation ~mu:0. ~kt e)

let test_fermi_derivative_normalization () =
  let kt = 0.0259 in
  let f e = Fermi.derivative ~mu:0. ~kt e in
  let integral = Integrate.simpson ~f ~a:(-1.) ~b:1. ~n:4000 in
  approx ~eps:1e-6 "-df/dE integrates to 1" 1. integral

let test_fermi_window () =
  let kt = 0.0259 in
  let w = Fermi.window ~mu1:0. ~mu2:(-0.5) ~kt (-0.25) in
  approx ~eps:1e-3 "window interior" 1. w;
  approx ~eps:1e-6 "window outside" 0. (Fermi.window ~mu1:0. ~mu2:(-0.5) ~kt 1.)

let test_lattice_geometry () =
  approx ~eps:1e-12 "width N=9" (8. *. Const.a_graphene /. 2.) (Lattice.width 9);
  approx ~eps:1e-12 "period" (3. *. Const.a_cc) Lattice.period;
  Alcotest.(check int) "atoms per cell" 24 (Lattice.atoms_per_cell 12);
  (* Width increment per dN=3 is ~3.7 A as the paper states. *)
  let dw = Lattice.width 12 -. Lattice.width 9 in
  approx ~eps:2e-11 "3.7 A step" 3.7e-10 dw

let test_lattice_bonds () =
  List.iter
    (fun n ->
      let within = List.length (Lattice.neighbours_within_cell n) in
      let inter = List.length (Lattice.neighbours_to_next_cell n) in
      Alcotest.(check int)
        (Printf.sprintf "bond count N=%d" n)
        ((3 * n) - 2)
        (within + inter))
    [ 5; 9; 12; 15; 18 ]

let test_lattice_edge_bonds () =
  let n = 12 in
  let edge_bonds =
    List.filter (Lattice.is_edge_bond n) (Lattice.neighbours_within_cell n)
  in
  (* One dimer bond per edge row per cell. *)
  Alcotest.(check int) "edge bonds per cell" 2 (List.length edge_bonds)

let test_family () =
  Alcotest.(check bool) "9 is 3q" true (Lattice.family 9 = Lattice.Family_3q);
  Alcotest.(check bool) "10 is 3q+1" true (Lattice.family 10 = Lattice.Family_3q1);
  Alcotest.(check bool) "11 is 3q+2" true (Lattice.family 11 = Lattice.Family_3q2);
  Alcotest.(check bool) "11 excluded" false (Lattice.is_semiconducting_for_fets 11);
  Alcotest.(check bool) "12 included" true (Lattice.is_semiconducting_for_fets 12)

let test_bloch_hermitian () =
  let tb = Tight_binding.make 9 in
  List.iter
    (fun ka ->
      let h = Tight_binding.bloch tb ka in
      let diff = Cmatrix.frobenius_diff h (Cmatrix.adjoint h) in
      Alcotest.(check bool) "H(k) hermitian" true (diff < 1e-12))
    [ 0.; 0.7; Float.pi ]

let test_h00_symmetric () =
  let tb = Tight_binding.make 7 in
  let h = tb.Tight_binding.h00 in
  let n, _ = Matrix.dims h in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      approx "h00 symmetric" (Matrix.get h i j) (Matrix.get h j i)
    done
  done

let test_gap_families () =
  let g9 = Bands.gap_of_index 9
  and g10 = Bands.gap_of_index 10
  and g11 = Bands.gap_of_index 11
  and g12 = Bands.gap_of_index 12 in
  Alcotest.(check bool) "3q+1 > 3q" true (g10 > g9);
  Alcotest.(check bool) "3q+2 smallest" true (g11 < g9 && g11 < g10);
  Alcotest.(check bool) "3q+2 still open (edge correction)" true (g11 > 0.01);
  Alcotest.(check bool) "N=12 gap ballpark" true (g12 > 0.4 && g12 < 0.8)

let test_gap_width_scaling () =
  (* Within the 3q family the gap decreases with width. *)
  let gaps = List.map Bands.gap_of_index [ 9; 12; 15; 18 ] in
  let rec decreasing = function
    | a :: (b :: _ as tl) -> a > b && decreasing tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing gaps)

let test_particle_hole_symmetry () =
  let b = Bands.compute ~nk:9 (Tight_binding.make 9) in
  Array.iter
    (fun es ->
      let n = Array.length es in
      for i = 0 to (n / 2) - 1 do
        approx ~eps:1e-8 "e-h symmetric spectrum" es.(i) (-.es.(n - 1 - i))
      done)
    b.Bands.energies

let test_modespace_parameters () =
  let ms = Modespace.reduce ~n_modes:2 12 in
  let m0 = ms.Modespace.modes.(0) in
  approx ~eps:1e-9 "lowest mode delta = Eg/2" (ms.Modespace.gap /. 2.) m0.Modespace.delta;
  Alcotest.(check bool) "t1 > t2 > 0" true (m0.Modespace.t1 > m0.Modespace.t2 && m0.Modespace.t2 > 0.);
  (* Dimer-chain band edges reproduce the subband edges by construction. *)
  approx ~eps:1e-9 "band min" m0.Modespace.delta (m0.Modespace.t1 -. m0.Modespace.t2);
  approx ~eps:1e-9 "band max" m0.Modespace.emax (m0.Modespace.t1 +. m0.Modespace.t2);
  let m1 = ms.Modespace.modes.(1) in
  Alcotest.(check bool) "modes ordered" true (m1.Modespace.delta > m0.Modespace.delta)

let test_sites_for_length () =
  let n = Modespace.sites_for_length 15e-9 in
  Alcotest.(check bool) "even" true (n mod 2 = 0);
  let span = float_of_int (n / 2) *. Lattice.period in
  Alcotest.(check bool) "covers the channel" true (Float.abs (span -. 15e-9) < Lattice.period);
  check_raises_invalid "non-positive" (fun () -> ignore (Modespace.sites_for_length 0.))

let suite =
  [
    Alcotest.test_case "fermi occupation" `Quick test_fermi;
    Alcotest.test_case "fermi derivative normalization" `Quick
      test_fermi_derivative_normalization;
    Alcotest.test_case "fermi window" `Quick test_fermi_window;
    Alcotest.test_case "lattice geometry" `Quick test_lattice_geometry;
    Alcotest.test_case "lattice bond counts" `Quick test_lattice_bonds;
    Alcotest.test_case "edge bonds" `Quick test_lattice_edge_bonds;
    Alcotest.test_case "families" `Quick test_family;
    Alcotest.test_case "bloch hermitian" `Quick test_bloch_hermitian;
    Alcotest.test_case "h00 symmetric" `Quick test_h00_symmetric;
    Alcotest.test_case "gap families" `Quick test_gap_families;
    Alcotest.test_case "gap width scaling" `Quick test_gap_width_scaling;
    Alcotest.test_case "particle-hole symmetry" `Quick test_particle_hole_symmetry;
    Alcotest.test_case "mode-space parameters" `Quick test_modespace_parameters;
    Alcotest.test_case "sites for length" `Quick test_sites_for_length;
  ]
