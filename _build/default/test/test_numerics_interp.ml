(* Tests for Interp and Contour. *)

open Support

let test_linear () =
  let xs = [| 0.; 1.; 3. |] and ys = [| 0.; 2.; 4. |] in
  approx "node" 2. (Interp.linear ~xs ~ys 1.);
  approx "midpoint" 1. (Interp.linear ~xs ~ys 0.5);
  approx "second segment" 3. (Interp.linear ~xs ~ys 2.);
  approx "clamp low" 0. (Interp.linear ~xs ~ys (-5.));
  approx "clamp high" 4. (Interp.linear ~xs ~ys 10.);
  approx "extrapolate low" (-2.) (Interp.linear_extrapolate ~xs ~ys (-1.));
  approx "extrapolate high" 5. (Interp.linear_extrapolate ~xs ~ys 4.);
  check_raises_invalid "non-increasing" (fun () ->
      Interp.linear ~xs:[| 0.; 0. |] ~ys:[| 1.; 2. |] 0.)

let test_spline_nodes () =
  let xs = Vec.linspace 0. 4. 9 in
  let ys = Array.map (fun x -> sin x) xs in
  let s = Interp.spline ~xs ~ys in
  Array.iteri (fun i x -> approx ~eps:1e-12 "node value" ys.(i) (Interp.spline_eval s x)) xs;
  (* Between nodes the natural spline tracks sin well. *)
  approx ~eps:1e-3 "mid value" (sin 1.25) (Interp.spline_eval s 1.25);
  approx ~eps:2e-2 "derivative" (cos 1.25) (Interp.spline_deriv s 1.25)

let test_spline_linear_exact () =
  let xs = [| 0.; 1.; 2.; 5. |] in
  let ys = Array.map (fun x -> (3. *. x) -. 1. ) xs in
  let s = Interp.spline ~xs ~ys in
  approx ~eps:1e-12 "linear exact" 8. (Interp.spline_eval s 3.);
  approx ~eps:1e-10 "linear slope" 3. (Interp.spline_deriv s 3.)

let bilinear_fn x y = 2. +. (3. *. x) -. (1.5 *. y) +. (0.5 *. x *. y)

let test_grid2_exact () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 0.5; 2. |] in
  let values = Array.map (fun x -> Array.map (fun y -> bilinear_fn x y) ys) xs in
  let g = Interp.grid2 ~xs ~ys ~values in
  (* Bilinear interpolation reproduces bilinear functions exactly. *)
  List.iter
    (fun (x, y) ->
      approx ~eps:1e-12
        (Printf.sprintf "bilinear at (%g,%g)" x y)
        (bilinear_fn x y)
        (Interp.grid2_eval g x y))
    [ (0.3, 0.2); (1.5, 1.); (1., 0.5); (2., 2.); (0., 0.) ]

let test_grid2_derivatives () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 1.; 2. |] in
  let values = Array.map (fun x -> Array.map (fun y -> bilinear_fn x y) ys) xs in
  let g = Interp.grid2 ~xs ~ys ~values in
  (* d/dx = 3 + 0.5 y; d/dy = -1.5 + 0.5 x. *)
  approx ~eps:1e-12 "dx" (3. +. (0.5 *. 0.5)) (Interp.grid2_dx g 0.5 0.5);
  approx ~eps:1e-12 "dy" (-1.5 +. (0.5 *. 0.5)) (Interp.grid2_dy g 0.5 0.5)

let test_grid2_clamp () =
  let xs = [| 0.; 1. |] and ys = [| 0.; 1. |] in
  let values = [| [| 0.; 0. |]; [| 1.; 1. |] |] in
  let g = Interp.grid2 ~xs ~ys ~values in
  approx "clamped" 1. (Interp.grid2_eval g 5. 0.5)

let prop_grid2_within_bounds =
  qtest ~count:60 "bilinear stays within corner bounds"
    QCheck.(pair (float_range 0. 2.) (float_range 0. 2.))
    (fun (x, y) ->
      let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 1.; 2. |] in
      let values =
        Array.map (fun x -> Array.map (fun y -> sin (x +. y)) ys) xs
      in
      let g = Interp.grid2 ~xs ~ys ~values in
      let v = Interp.grid2_eval g x y in
      let lo = Array.fold_left (fun a r -> Float.min a (Vec.minimum r)) infinity values in
      let hi = Array.fold_left (fun a r -> Float.max a (Vec.maximum r)) neg_infinity values in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

(* Contour: radial field; the 1.0-level set of f = x^2 + y^2 is the unit
   circle. *)
let radial_grid n =
  let xs = Vec.linspace (-2.) 2. n and ys = Vec.linspace (-2.) 2. n in
  let values = Array.map (fun x -> Array.map (fun y -> (x *. x) +. (y *. y)) ys) xs in
  (xs, ys, values)

let test_contour_circle () =
  let xs, ys, values = radial_grid 41 in
  let points = Contour.interior_points ~xs ~ys ~values ~level:1. in
  Alcotest.(check bool) "points found" true (List.length points > 20);
  List.iter
    (fun (p : Contour.point) ->
      let r = Float.hypot p.Contour.x p.Contour.y in
      approx ~eps:0.02 "on unit circle" 1. r)
    points

let test_contour_chaining () =
  let xs, ys, values = radial_grid 21 in
  let polylines = Contour.extract ~xs ~ys ~values ~level:1. in
  (* One closed loop (possibly split in a few pieces by chaining order). *)
  Alcotest.(check bool) "few pieces" true (List.length polylines <= 3);
  let total = List.fold_left (fun acc pl -> acc + List.length pl) 0 polylines in
  Alcotest.(check bool) "enough points" true (total > 16)

let test_contour_minimize () =
  let xs, ys, values = radial_grid 41 in
  match Contour.minimize_on_contour ~xs ~ys ~values ~level:1. ~objective:(fun x _ -> x) with
  | Some (p, v) ->
    approx ~eps:0.05 "min x on circle" (-1.) v;
    approx ~eps:0.05 "y near 0" 0. p.Contour.y
  | None -> Alcotest.fail "contour not found"

let test_contour_empty () =
  let xs, ys, values = radial_grid 11 in
  Alcotest.(check int) "no contour at level 100" 0
    (List.length (Contour.extract ~xs ~ys ~values ~level:100.))

let suite =
  [
    Alcotest.test_case "linear interp" `Quick test_linear;
    Alcotest.test_case "spline nodes" `Quick test_spline_nodes;
    Alcotest.test_case "spline linear-exact" `Quick test_spline_linear_exact;
    Alcotest.test_case "grid2 bilinear-exact" `Quick test_grid2_exact;
    Alcotest.test_case "grid2 derivatives" `Quick test_grid2_derivatives;
    Alcotest.test_case "grid2 clamp" `Quick test_grid2_clamp;
    prop_grid2_within_bounds;
    Alcotest.test_case "contour circle" `Quick test_contour_circle;
    Alcotest.test_case "contour chaining" `Quick test_contour_chaining;
    Alcotest.test_case "contour minimize" `Quick test_contour_minimize;
    Alcotest.test_case "contour empty" `Quick test_contour_empty;
  ]
