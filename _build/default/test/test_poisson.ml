(* Tests for the 2D finite-volume stack solver, the 3D validation solver
   and the impurity model. *)

open Support

let stack ?(style = Stack2d.Plane) ?(nx = 21) ?(nz = 11) () =
  let xs = Vec.linspace 0. 20e-9 nx in
  let zs = Vec.linspace (-1.5e-9) 1.5e-9 nz in
  Stack2d.make ~contact_style:style ~xs ~zs ~eps_r:(fun _ _ -> 3.9)
    ~sheet_row:(nz / 2) ()

let no_charge t = Array.make (Stack2d.nx t - 2) 0.

let test_uniform_dirichlet () =
  let t = stack () in
  let bc = { Stack2d.left = 0.3; right = 0.3; bottom = 0.3; top = 0.3 } in
  let u = Stack2d.solve t ~bc ~sheet_charge:(no_charge t) in
  Array.iter
    (Array.iter (fun v -> approx ~eps:1e-10 "constant potential" 0.3 v))
    u

let test_plate_capacitor_profile () =
  (* Gates at different potentials, plane contacts equal to the local
     linear profile would distort; use a wide box and check the center
     column is linear in z. *)
  let t = stack ~nx:41 () in
  let bc = { Stack2d.left = 0.; right = 0.; bottom = 0.; top = 1. } in
  let u = Stack2d.solve t ~bc ~sheet_charge:(no_charge t) in
  let nx = Stack2d.nx t and nz = Stack2d.nz t in
  let mid = nx / 2 in
  (* Centre column: approximately linear between the plates. *)
  for j = 0 to nz - 1 do
    let expected = float_of_int j /. float_of_int (nz - 1) in
    approx ~eps:0.08 (Printf.sprintf "linear at j=%d" j) expected u.(mid).(j)
  done

let test_sheet_charge_sign () =
  let t = stack () in
  let bc = { Stack2d.left = 0.; right = 0.; bottom = 0.; top = 0. } in
  let sc = no_charge t in
  let mid = Array.length sc / 2 in
  sc.(mid) <- -1e-3 (* negative (electron) sheet charge, C/m^2 *);
  let u = Stack2d.solve t ~bc ~sheet_charge:sc in
  let plane = Stack2d.plane_potential t u in
  (* Electrons raise the mid-gap energy u. *)
  Alcotest.(check bool) "electron charge raises u" true (plane.(mid) > 1e-6);
  Alcotest.(check bool) "peaked at the charge" true
    (plane.(mid) > plane.(0) && plane.(mid) > plane.(Array.length plane - 1))

let test_superposition () =
  let t = stack () in
  let bc = { Stack2d.left = 0.1; right = -0.2; bottom = -0.3; top = -0.3 } in
  let n = Stack2d.nx t - 2 in
  let q1 = Array.make n 0. and q2 = Array.make n 0. in
  q1.(3) <- 2e-4;
  q2.(n - 4) <- -3e-4;
  let zero_bc = { Stack2d.left = 0.; right = 0.; bottom = 0.; top = 0. } in
  let u_bc = Stack2d.plane_potential t (Stack2d.solve t ~bc ~sheet_charge:(Array.make n 0.)) in
  let u1 = Stack2d.plane_potential t (Stack2d.solve t ~bc:zero_bc ~sheet_charge:q1) in
  let u2 = Stack2d.plane_potential t (Stack2d.solve t ~bc:zero_bc ~sheet_charge:q2) in
  let q12 = Array.mapi (fun i v -> v +. q2.(i)) q1 in
  let u_all = Stack2d.plane_potential t (Stack2d.solve t ~bc ~sheet_charge:q12) in
  Array.iteri
    (fun i v ->
      approx ~eps:1e-10 "linear superposition" v (u_bc.(i) +. u1.(i) +. u2.(i)))
    u_all

let test_point_contact_floats_oxide () =
  (* With Point contacts, only the sheet node is pinned at the sides: a
     gate-driven solve should pull the whole interior to the gate value
     except near the pinned channel ends. *)
  let t = stack ~style:Stack2d.Point ~nx:41 () in
  let bc = { Stack2d.left = 0.; right = 0.; bottom = -0.5; top = -0.5 } in
  let u = Stack2d.solve t ~bc ~sheet_charge:(no_charge t) in
  let plane = Stack2d.plane_potential t u in
  let mid = Array.length plane / 2 in
  (* channel centre follows the gate *)
  approx ~eps:0.02 "gate control at centre" (-0.5) plane.(mid);
  (* ends remain pinned by the contacts *)
  Alcotest.(check bool) "source end pinned" true (plane.(0) > -0.3)

let test_grid_validation () =
  check_raises_invalid "grid too small" (fun () ->
      Stack2d.make ~xs:[| 0.; 1. |] ~zs:[| 0.; 1.; 2. |]
        ~eps_r:(fun _ _ -> 1.) ~sheet_row:1 ());
  check_raises_invalid "sheet row boundary" (fun () ->
      Stack2d.make
        ~xs:[| 0.; 1.; 2. |]
        ~zs:[| 0.; 1.; 2. |]
        ~eps_r:(fun _ _ -> 1.) ~sheet_row:0 ())

let test_poisson3d_zero_charge () =
  let t = Poisson3d.make ~nx:7 ~ny:7 ~nz:7 ~spacing:1e-9 ~eps_r:(fun _ _ _ -> 3.9) in
  let u = Poisson3d.solve ~boundary:0.25 t ~charges:[] in
  Array.iter
    (Array.iter (Array.iter (fun v -> approx ~eps:1e-8 "uniform" 0.25 v)))
    u

let test_poisson3d_point_charge () =
  (* A negative point charge in a grounded box raises u nearby, decaying
     outward; compare against the unscreened Coulomb magnitude at one
     grid spacing (boxes screen, so expect same order, smaller). *)
  let h = 0.5e-9 in
  let n = 15 in
  let t = Poisson3d.make ~nx:n ~ny:n ~nz:n ~spacing:h ~eps_r:(fun _ _ _ -> 3.9) in
  let c = n / 2 in
  let u =
    Poisson3d.solve t
      ~charges:[ { Poisson3d.ix = c; iy = c; iz = c; coulombs = -.Const.q } ]
  in
  let coulomb_at r = Const.q /. (4. *. Float.pi *. Const.eps0 *. 3.9 *. r) in
  Alcotest.(check bool) "positive near charge" true (u.(c + 1).(c).(c) > 0.);
  Alcotest.(check bool) "below unscreened Coulomb" true
    (u.(c + 1).(c).(c) < coulomb_at h);
  Alcotest.(check bool) "above a tenth of Coulomb" true
    (u.(c + 1).(c).(c) > 0.1 *. coulomb_at h);
  (* symmetry *)
  approx ~eps:1e-9 "symmetry x/y" u.(c + 2).(c).(c) u.(c).(c + 2).(c);
  (* decay *)
  Alcotest.(check bool) "monotone decay" true (u.(c + 1).(c).(c) > u.(c + 4).(c).(c));
  let profile = Poisson3d.line_profile u ~iy:c ~iz:c in
  approx ~eps:1e-12 "profile extraction" u.(c + 3).(c).(c) profile.(c + 3)

let test_impurity_signs () =
  let neg = { Impurity.charge = -2.; position = 1.5e-9; distance = 0.4e-9 } in
  let pos = { neg with Impurity.charge = 2. } in
  let u_neg = Impurity.onsite_shift neg 1.5e-9 in
  let u_pos = Impurity.onsite_shift pos 1.5e-9 in
  Alcotest.(check bool) "negative charge raises u" true (u_neg > 0.1);
  approx ~eps:1e-12 "antisymmetric" (-.u_neg) u_pos

let test_impurity_decay () =
  let imp = Impurity.paper_default ~charge:(-1.) in
  let at x = Float.abs (Impurity.onsite_shift imp x) in
  let peak = at imp.Impurity.position in
  Alcotest.(check bool) "decays away" true
    (at (imp.Impurity.position +. 3e-9) < 0.2 *. peak);
  let profile =
    Impurity.profile imp (Vec.linspace 0. 15e-9 40)
  in
  let k = Vec.argmax (Array.map Float.abs profile) in
  Alcotest.(check bool) "peak near the impurity" true
    (Float.abs ((float_of_int k /. 39. *. 15e-9) -. imp.Impurity.position) < 1.2e-9)

let suite =
  [
    Alcotest.test_case "uniform dirichlet" `Quick test_uniform_dirichlet;
    Alcotest.test_case "plate capacitor profile" `Quick test_plate_capacitor_profile;
    Alcotest.test_case "sheet charge sign" `Quick test_sheet_charge_sign;
    Alcotest.test_case "superposition" `Quick test_superposition;
    Alcotest.test_case "point contacts" `Quick test_point_contact_floats_oxide;
    Alcotest.test_case "grid validation" `Quick test_grid_validation;
    Alcotest.test_case "poisson3d zero charge" `Quick test_poisson3d_zero_charge;
    Alcotest.test_case "poisson3d point charge" `Quick test_poisson3d_point_charge;
    Alcotest.test_case "impurity signs" `Quick test_impurity_signs;
    Alcotest.test_case "impurity decay" `Quick test_impurity_decay;
  ]
