test/test_device.ml: Alcotest Array Filename Float Fun Impurity Iv_table Option Params Printf Scf Support Sys Table_cache Unix Vec Vt
