test/test_extensions.ml: Alcotest Analytic Array Bands Cells Const Explore Fet_model Float Iv_table List Measure Mna Netlist Printf Roughness Spice_deck String Support Tight_binding Vec Zigzag
