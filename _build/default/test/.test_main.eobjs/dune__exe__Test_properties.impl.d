test/test_properties.ml: Array Compact Fermi Fet_model Float Gnr_model Lazy List Matrix Node QCheck Rgf Rng Self_energy Snm Stack2d Support Vec
