test/support.ml: Alcotest Array Float Iv_table Matrix Params Printexc QCheck QCheck_alcotest Rng Vec
