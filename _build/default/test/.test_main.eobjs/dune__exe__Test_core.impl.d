test/test_core.ml: Alcotest Array Cells Explore Fet_model Gnr_model List Metrics Snm Support Variation Vec
