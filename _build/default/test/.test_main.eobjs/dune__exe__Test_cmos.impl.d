test/test_cmos.ml: Alcotest Array Cells Compact Fet_model Float Metrics Node Snm Support Vec
