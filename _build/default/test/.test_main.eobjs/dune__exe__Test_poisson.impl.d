test/test_poisson.ml: Alcotest Array Const Float Impurity Poisson3d Printf Stack2d Support Vec
