test/test_gnr.ml: Alcotest Array Bands Cmatrix Const Fermi Float Integrate Lattice List Matrix Modespace Printf Support Tight_binding
