test/test_negf.ml: Alcotest Array Bands Cmatrix Complex Const Fermi Float Lattice List Modespace Observables Printf Rgf Rgf_block Self_energy Support Tight_binding Vec
