test/test_numerics_linalg.ml: Alcotest Array Banded Cmatrix Complex Eigen Matrix QCheck Rng Sparse Support Tridiag Vec
