test/test_integration.ml: Alcotest Array Cells Gnr_model Iv_table Lazy Metrics Snm Support
