test/test_numerics_interp.ml: Alcotest Array Contour Float Interp List Printf QCheck Support Vec
