test/test_numerics_basic.ml: Alcotest Array Float Gen Integrate List Lstsq Mixing Parallel QCheck Rng Roots Stats Support Vec
