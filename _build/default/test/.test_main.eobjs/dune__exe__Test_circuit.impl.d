test/test_circuit.ml: Alcotest Array Fet_model Float List Measure Mna Netlist Printf Snm Support Vec
