(* Tests for the extension modules: analytic band formulas, zigzag
   ribbons, edge roughness, the SPICE deck front-end, NAND/NOR cells and
   CSV export. *)

open Support

let test_analytic_matches_numeric () =
  List.iter
    (fun n ->
      let numeric =
        Bands.band_gap (Bands.compute ~nk:129 (Tight_binding.make ~edge_delta:0. n))
      in
      approx ~eps:2e-3
        (Printf.sprintf "N=%d" n)
        (Analytic.armchair_gap n)
        numeric)
    [ 7; 9; 10; 12; 13 ]

let test_analytic_family_zero () =
  (* Without edge correction the 3q+2 family is exactly gapless. *)
  approx ~eps:1e-12 "N=11" 0. (Analytic.armchair_gap 11);
  approx ~eps:1e-12 "N=14" 0. (Analytic.armchair_gap 14)

let test_dirac_estimate_tracks () =
  (* The k.p estimate tracks the analytic 3q+1-family gap within ~15%. *)
  List.iter
    (fun n ->
      let exact = Analytic.armchair_gap n in
      let est = Analytic.dirac_gap_estimate n in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d within 15%%" n)
        true
        (Float.abs (est -. exact) /. exact < 0.15))
    [ 10; 13; 16; 19 ]

let test_fermi_velocity () =
  let vf = Analytic.fermi_velocity () in
  Alcotest.(check bool) "about 0.9e6 m/s" true (vf > 0.7e6 && vf < 1.1e6)

let test_zigzag_metallic () =
  List.iter
    (fun n ->
      let gap = Bands.band_gap (Bands.compute ~nk:65 (Zigzag.hamiltonian n)) in
      Alcotest.(check bool)
        (Printf.sprintf "Z-GNR N=%d gapless" n)
        true (gap < 0.02))
    [ 4; 6; 8 ]

let test_zigzag_edge_band_flat () =
  (* Near ka = pi the lowest conduction band of a Z-GNR is the flat edge
     band pinned at E ~ 0. *)
  let b = Bands.compute ~nk:65 (Zigzag.hamiltonian 6) in
  let last = b.Bands.energies.(Array.length b.Bands.energies - 1) in
  let min_abs = Array.fold_left (fun acc e -> Float.min acc (Float.abs e)) infinity last in
  Alcotest.(check bool) "edge state at E~0 at k=pi" true (min_abs < 1e-3)

let test_zigzag_geometry () =
  Alcotest.(check int) "atoms" 12 (Zigzag.atoms_per_cell 6);
  approx ~eps:1e-15 "period" Const.a_graphene Zigzag.period;
  let bonds =
    List.length (Zigzag.neighbours_within_cell 6)
    + List.length (Zigzag.neighbours_to_next_cell 6)
  in
  (* 3N - 1 bonds per cell for a zigzag ribbon of N chains. *)
  Alcotest.(check int) "bond count" 17 bonds

let test_roughness_monotone () =
  let study sigma =
    Roughness.transmission_study ~realizations:12 ~n_sites:80 ~gnr_index:12
      ~sigma ~corr_sites:5 ()
  in
  let t0 = study 0. and t1 = study 0.03 and t2 = study 0.1 in
  approx ~eps:1e-3 "clean chain ballistic" 1. t0.Roughness.mean_transmission;
  Alcotest.(check bool) "monotone degradation" true
    (t0.Roughness.mean_transmission > t1.Roughness.mean_transmission
    && t1.Roughness.mean_transmission > t2.Roughness.mean_transmission);
  Alcotest.(check bool) "localization length shrinks" true
    (t2.Roughness.localization_estimate < t1.Roughness.localization_estimate)

let test_roughness_deterministic () =
  let s1 = Roughness.transmission_study ~seed:3 ~realizations:8 ~n_sites:60 ~gnr_index:12 ~sigma:0.05 ~corr_sites:4 () in
  let s2 = Roughness.transmission_study ~seed:3 ~realizations:8 ~n_sites:60 ~gnr_index:12 ~sigma:0.05 ~corr_sites:4 () in
  approx "same seed, same answer" s1.Roughness.mean_transmission s2.Roughness.mean_transmission

let test_spice_values () =
  let check s expected =
    match Spice_deck.parse_value s with
    | Some v -> approx_rel ~rel:1e-12 s expected v
    | None -> Alcotest.failf "failed to parse %s" s
  in
  check "10k" 10e3;
  check "2.5p" 2.5e-12;
  check "1meg" 1e6;
  check "100f" 100e-15;
  check "3.3" 3.3;
  check "1e-9" 1e-9;
  Alcotest.(check bool) "garbage rejected" true (Spice_deck.parse_value "abc" = None)

let test_spice_parse_and_run_divider () =
  let deck =
    Spice_deck.parse
      "* resistive divider\nVDD top 0 DC 1.0\nR1 top mid 1k\nR2 mid 0 3k\n.end\n"
  in
  Alcotest.(check int) "cards" 3 (List.length deck.Spice_deck.cards);
  let built = Spice_deck.build deck ~models:(fun _ -> None) in
  let dc = Mna.solve_dc built.Spice_deck.net in
  approx ~eps:1e-9 "divider" 0.75 dc.(built.Spice_deck.node_of "mid")

let test_spice_pulse_and_tran () =
  let deck =
    Spice_deck.parse
      "VIN in 0 PULSE(0 1 1n 0.2n 0.2n 3n)\nR1 in out 1k\nC1 out 0 1p\n.tran 0.05n 6n\n.end\n"
  in
  (match deck.Spice_deck.analyses with
  | [ Spice_deck.Tran { dt; t_stop } ] ->
    approx_rel ~rel:1e-9 "dt" 0.05e-9 dt;
    approx_rel ~rel:1e-9 "t_stop" 6e-9 t_stop
  | _ -> Alcotest.fail "expected one .tran");
  let built = Spice_deck.build deck ~models:(fun _ -> None) in
  let wf = Mna.transient built.Spice_deck.net ~t_stop:6e-9 ~dt:0.05e-9 in
  let out = Mna.node_trace wf (built.Spice_deck.node_of "out") in
  (* The RC output follows the pulse up and back down. *)
  let peak = Vec.maximum out in
  Alcotest.(check bool) "charged during pulse" true (peak > 0.8);
  Alcotest.(check bool) "discharged after pulse" true (out.(Array.length out - 1) < 0.3)

let test_spice_fet_model_env () =
  let deck =
    Spice_deck.parse "VDD d 0 DC 0.5\nM1 d g 0 res\nVG g 0 DC 0.0\n.end\n"
  in
  let resistor_model =
    {
      Fet_model.name = "res";
      id = (fun ~vgs:_ ~vds -> vds /. 1e4);
      cgs = (fun ~vgs:_ ~vds:_ -> 0.);
      cgd = (fun ~vgs:_ ~vds:_ -> 0.);
    }
  in
  let built =
    Spice_deck.build deck ~models:(fun n -> if n = "res" then Some resistor_model else None)
  in
  let dc = Mna.solve_dc built.Spice_deck.net in
  (* All nodes driven: current through the device = 0.5/1e4. *)
  approx_rel ~rel:1e-9 "fet current via source" 5e-5
    (Mna.dc_current built.Spice_deck.net dc (built.Spice_deck.source_node "vdd"))

let test_spice_errors () =
  (match Spice_deck.parse "R1 a b\n" with
  | exception Spice_deck.Parse_error (1, _) -> ()
  | _ -> Alcotest.fail "expected parse error for short resistor card");
  match Spice_deck.parse "Vx a b DC 1\n" with
  | exception Spice_deck.Parse_error (1, _) -> ()
  | _ -> Alcotest.fail "expected error for non-grounded source"

let synthetic_pair () =
  let table = synthetic_table () in
  Explore.pair_at table ~vt:0.13

let test_nand2_truth_table () =
  let pair = synthetic_pair () in
  let vdd = 0.4 in
  let out_for va vb =
    let net = Netlist.create () in
    let vdd_node = Netlist.fresh_node net in
    Netlist.vdc net vdd_node vdd;
    let a = Netlist.fresh_node net and b = Netlist.fresh_node net in
    Netlist.vdc net a va;
    Netlist.vdc net b vb;
    let output = Netlist.fresh_node net in
    Cells.add_nand2 net ~pair ~vdd_node ~a ~b ~output;
    (Mna.solve_dc net).(output)
  in
  let hi = 0.7 *. vdd and lo = 0.3 *. vdd in
  Alcotest.(check bool) "00 -> 1" true (out_for 0. 0. > hi);
  Alcotest.(check bool) "01 -> 1" true (out_for 0. vdd > hi);
  Alcotest.(check bool) "10 -> 1" true (out_for vdd 0. > hi);
  Alcotest.(check bool) "11 -> 0" true (out_for vdd vdd < lo)

let test_nor2_truth_table () =
  let pair = synthetic_pair () in
  let vdd = 0.4 in
  let out_for va vb =
    let net = Netlist.create () in
    let vdd_node = Netlist.fresh_node net in
    Netlist.vdc net vdd_node vdd;
    let a = Netlist.fresh_node net and b = Netlist.fresh_node net in
    Netlist.vdc net a va;
    Netlist.vdc net b vb;
    let output = Netlist.fresh_node net in
    Cells.add_nor2 net ~pair ~vdd_node ~a ~b ~output;
    (Mna.solve_dc net).(output)
  in
  let hi = 0.7 *. vdd and lo = 0.3 *. vdd in
  Alcotest.(check bool) "00 -> 1" true (out_for 0. 0. > hi);
  Alcotest.(check bool) "01 -> 0" true (out_for 0. vdd < lo);
  Alcotest.(check bool) "10 -> 0" true (out_for vdd 0. < lo);
  Alcotest.(check bool) "11 -> 0" true (out_for vdd vdd < lo)

let test_csv_export () =
  let table = synthetic_table () in
  let csv = Iv_table.to_csv table in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "rows = header + nvg*nvd"
    (1 + (Array.length table.Iv_table.vg * Array.length table.Iv_table.vd))
    (List.length lines);
  match lines with
  | header :: _ -> Alcotest.(check string) "header" "vg,vd,id_A,q_C" header
  | [] -> Alcotest.fail "empty csv"

let suite =
  [
    Alcotest.test_case "analytic vs numeric gaps" `Quick test_analytic_matches_numeric;
    Alcotest.test_case "3q+2 gapless (uncorrected)" `Quick test_analytic_family_zero;
    Alcotest.test_case "dirac estimate" `Quick test_dirac_estimate_tracks;
    Alcotest.test_case "fermi velocity" `Quick test_fermi_velocity;
    Alcotest.test_case "zigzag metallic" `Quick test_zigzag_metallic;
    Alcotest.test_case "zigzag flat edge band" `Quick test_zigzag_edge_band_flat;
    Alcotest.test_case "zigzag geometry" `Quick test_zigzag_geometry;
    Alcotest.test_case "roughness monotone" `Quick test_roughness_monotone;
    Alcotest.test_case "roughness deterministic" `Quick test_roughness_deterministic;
    Alcotest.test_case "spice values" `Quick test_spice_values;
    Alcotest.test_case "spice divider" `Quick test_spice_parse_and_run_divider;
    Alcotest.test_case "spice pulse transient" `Quick test_spice_pulse_and_tran;
    Alcotest.test_case "spice fet models" `Quick test_spice_fet_model_env;
    Alcotest.test_case "spice errors" `Quick test_spice_errors;
    Alcotest.test_case "nand2 truth table" `Quick test_nand2_truth_table;
    Alcotest.test_case "nor2 truth table" `Quick test_nor2_truth_table;
    Alcotest.test_case "csv export" `Quick test_csv_export;
  ]

let test_negative_delay_pairing () =
  (* A skewed cell whose output crosses before the input: the nearest
     opposite-direction crossing must be chosen, giving a small negative
     delay instead of a missed measurement. *)
  let times = Vec.linspace 0. 10. 201 in
  let input = Array.map (fun t -> if t >= 5. then 0. else 1.) times in
  let output = Array.map (fun t -> if t >= 4.8 then 1. else 0.) times in
  match
    Measure.delay_levels ~times ~input ~output ~in_level:0.5 ~out_level:0.5
      ~input_rising:false
  with
  | Some d -> approx ~eps:0.15 "negative delay" (-0.2) d
  | None -> Alcotest.fail "expected a (negative) delay"

let test_waveform_csv () =
  let wf =
    {
      Mna.times = [| 0.; 1e-12 |];
      voltages = [| [| 0.; 0.5 |]; [| 0.; 0.7 |] |];
    }
  in
  let csv = Mna.waveform_to_csv ~nodes:[ 1 ] wf in
  Alcotest.(check string) "csv" "t,v1\n0,0.5\n1e-12,0.7\n" csv

let extra =
  [
    Alcotest.test_case "negative delay pairing" `Quick test_negative_delay_pairing;
    Alcotest.test_case "waveform csv" `Quick test_waveform_csv;
  ]

let suite = suite @ extra

let test_spice_unknown_node () =
  let deck = Spice_deck.parse "R1 a b 1k\n" in
  let built = Spice_deck.build deck ~models:(fun _ -> None) in
  (match built.Spice_deck.node_of "zzz" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found for an unknown node");
  match built.Spice_deck.source_node "vnone" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found for an unknown source"

let test_explore_point_c_logic () =
  (* On the synthetic surface, point C (same EDP, higher VT) must indeed
     sit at a strictly higher threshold than its reference. *)
  let table = synthetic_table () in
  let s =
    Explore.surface ~stages:15
      ~vdds:(Vec.linspace 0.3 0.5 4)
      ~vts:(Vec.linspace 0.05 0.25 5)
      table
  in
  match Explore.min_edp_at_frequency_and_snm s ~ghz:3. ~snm:0.05 with
  | None -> Alcotest.fail "no point B on the synthetic surface"
  | Some b -> begin
    match Explore.same_edp_higher_vt s ~like:b with
    | Some c ->
      Alcotest.(check bool) "higher VT" true (c.Explore.vt > b.Explore.vt);
      Alcotest.(check bool) "similar EDP" true
        (Float.abs (c.Explore.value -. b.Explore.value) <= 0.25 *. b.Explore.value)
    | None -> () (* a collapsed grid may legitimately have no point C *)
  end

let test_edp_ln_units () =
  (* 22.7 fJ-ps (the paper's point A) must map to ln(aJ-ps) ~ 10.03,
     confirming the Fig 3(b) contour-label convention. *)
  let p =
    {
      Explore.vdd = 0.3;
      vt = 0.06;
      frequency = 3.3e9;
      edp = 22.7e-27;
      snm = 0.09;
    }
  in
  approx ~eps:0.01 "ln(aJ-ps) convention" 10.03 (Explore.edp_ln_aj_ps p)

let late_extra =
  [
    Alcotest.test_case "spice unknown node" `Quick test_spice_unknown_node;
    Alcotest.test_case "explore point C" `Quick test_explore_point_c_logic;
    Alcotest.test_case "EDP contour units" `Quick test_edp_ln_units;
  ]

let suite = suite @ late_extra
