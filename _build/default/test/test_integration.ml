(* End-to-end integration: quantum device -> lookup table -> circuit model
   -> inverter metrics, on the reduced 6 nm device so the chain runs in
   seconds.  This is the whole multi-scale pipeline of the paper in one
   test. *)

open Support

(* Shared across the tests below; generated once. *)
let tiny = tiny_device ()

let grid = { Iv_table.vg_min = -0.2; vg_max = 0.9; n_vg = 23; vd_max = 0.6; n_vd = 7 }

let table = lazy (Iv_table.generate ~grid tiny)

let pair () =
  let table = Lazy.force table in
  let shift = Gnr_model.shift_for_vt table 0.13 in
  let tables = [ table; table; table; table ] in
  {
    Cells.nfet = Gnr_model.array_fet ~polarity:Gnr_model.N_type ~vt_shift:shift tables;
    pfet = Gnr_model.array_fet ~polarity:Gnr_model.P_type ~vt_shift:shift tables;
    ext = Gnr_model.default_extrinsic ();
  }

let test_pipeline_inverter () =
  let m = Metrics.inverter_metrics ~pair:(pair ()) ~vdd:0.4 () in
  (* A real quantum-derived inverter must switch in picoseconds, leak less
     than it drives, and have a usable noise margin. *)
  Alcotest.(check bool) "ps-scale delay" true
    (m.Metrics.tp > 0.1e-12 && m.Metrics.tp < 100e-12);
  Alcotest.(check bool) "snm positive" true (m.Metrics.snm > 0.01);
  (* The 6 nm test channel leaks much more than the paper's 15 nm device;
     still, leakage must stay within an order of magnitude of the dynamic
     power at the implied RO frequency. *)
  let p_dyn = Metrics.dynamic_power m ~frequency:(Metrics.ro_frequency m ~stages:15) in
  Alcotest.(check bool) "leakage within 10x of dynamic" true
    (m.Metrics.p_static < 10. *. p_dyn)

let test_pipeline_vtc_rail_to_rail () =
  let v = Cells.vtc ~pair:(pair ()) ~vdd:0.4 ~n:21 () in
  Alcotest.(check bool) "output high > 0.3" true (v.Snm.vout.(0) > 0.3);
  Alcotest.(check bool) "output low < 0.1" true (v.Snm.vout.(20) < 0.1)

let test_pipeline_ring () =
  match Metrics.ring_metrics ~stages:(Array.make 3 (pair ())) ~vdd:0.4 ~cycles:10. () with
  | Some r ->
    Alcotest.(check bool) "GHz-range oscillation" true
      (r.Metrics.frequency > 1e9 && r.Metrics.frequency < 1e12);
    Alcotest.(check bool) "powers ordered" true
      (r.Metrics.p_total >= r.Metrics.p_dynamic)
  | None -> Alcotest.fail "quantum-derived ring failed to oscillate"

let test_pipeline_width_trend () =
  (* The narrower device's table must leak less at the ambipolar minimum:
     the microscopic origin of Table 2's leakage column. *)
  let t12 = Lazy.force table in
  let t9 = Iv_table.generate ~grid (tiny_device ~gnr_index:9 ()) in
  let ioff t = Iv_table.current_at t ~vg:0.2 ~vd:0.4 in
  Alcotest.(check bool) "narrower leaks less" true (ioff t9 < ioff t12);
  let ion t = Iv_table.current_at t ~vg:0.8 ~vd:0.4 in
  Alcotest.(check bool) "narrower drives less" true (ion t9 < ion t12)

let suite =
  [
    Alcotest.test_case "pipeline: inverter metrics" `Quick test_pipeline_inverter;
    Alcotest.test_case "pipeline: VTC rails" `Quick test_pipeline_vtc_rail_to_rail;
    Alcotest.test_case "pipeline: ring oscillator" `Quick test_pipeline_ring;
    Alcotest.test_case "pipeline: width trend" `Quick test_pipeline_width_trend;
  ]
