(* Cross-cutting physical-invariant property tests (qcheck): gauge
   invariance, reciprocity, superposition, monotonicity. *)

open Support

(* Random mode-space-like chain with a smooth random potential. *)
let random_chain_gen =
  QCheck.Gen.(
    let* n = 8 -- 24 in
    let* amp = float_bound_inclusive 0.4 in
    let* phase = float_bound_inclusive 6.28 in
    let* freq = float_bound_inclusive 0.8 in
    return (n, amp, phase, freq))

let chain_arb = QCheck.make random_chain_gen

let t1 = 1.6

let t2 = 1.3

let build_chain (n, amp, phase, freq) =
  let onsite =
    Array.init n (fun i -> amp *. sin ((freq *. float_of_int i) +. phase))
  in
  let hopping = Array.init (n - 1) (fun i -> if i mod 2 = 0 then t1 else t2) in
  let sigma = Self_energy.wideband ~gamma:1.0 in
  { Rgf.onsite; hopping; sigma_l = sigma; sigma_r = sigma }

let prop_transmission_bounded =
  qtest ~count:60 "0 <= T <= 1 for a single mode" chain_arb (fun spec ->
      let chain = build_chain spec in
      List.for_all
        (fun e ->
          let t = Rgf.transmission chain e in
          t >= -1e-12 && t <= 1. +. 1e-9)
        [ -1.5; -0.5; 0.; 0.5; 1.5 ])

let prop_gauge_invariance =
  qtest ~count:40 "T(E; u) = T(E+d; u+d) (wide-band contacts)" chain_arb
    (fun spec ->
      let chain = build_chain spec in
      let d = 0.37 in
      let shifted =
        { chain with Rgf.onsite = Array.map (fun u -> u +. d) chain.Rgf.onsite }
      in
      List.for_all
        (fun e ->
          let a = Rgf.transmission chain e in
          let b = Rgf.transmission shifted (e +. d) in
          Float.abs (a -. b) <= 1e-9 *. (1. +. a))
        [ -0.8; 0.1; 0.9 ])

let prop_reversal_invariance =
  qtest ~count:40 "T invariant under chain reversal" chain_arb (fun spec ->
      let chain = build_chain spec in
      let n = Array.length chain.Rgf.onsite in
      let reversed =
        {
          Rgf.onsite = Array.init n (fun i -> chain.Rgf.onsite.(n - 1 - i));
          hopping =
            Array.init (n - 1) (fun i -> chain.Rgf.hopping.(n - 2 - i));
          sigma_l = chain.Rgf.sigma_r;
          sigma_r = chain.Rgf.sigma_l;
        }
      in
      List.for_all
        (fun e ->
          let a = Rgf.transmission chain e in
          let b = Rgf.transmission reversed e in
          Float.abs (a -. b) <= 1e-9 *. (1. +. a))
        [ -0.6; 0.2; 1.1 ])

let prop_spectra_sum_rule =
  qtest ~count:40 "T = GammaL*a1(end) = GammaR*a2(0)" chain_arb (fun spec ->
      let chain = build_chain spec in
      let n = Array.length chain.Rgf.onsite in
      List.for_all
        (fun e ->
          let s = Rgf.spectra chain e in
          let gl = Rgf.gamma_of_sigma chain.Rgf.sigma_l in
          let gr = Rgf.gamma_of_sigma chain.Rgf.sigma_r in
          Float.abs (s.Rgf.t_coh -. (gl *. s.Rgf.a1.(n - 1))) <= 1e-9
          && Float.abs (s.Rgf.t_coh -. (gr *. s.Rgf.a2.(0))) <= 1e-9)
        [ -0.4; 0.3; 0.8 ])

let prop_fermi_monotone =
  qtest ~count:100 "fermi occupation decreasing in energy"
    QCheck.(pair (float_range (-1.) 1.) (float_range 0.001 0.2))
    (fun (e, de) ->
      let kt = 0.0259 in
      Fermi.occupation ~mu:0. ~kt e >= Fermi.occupation ~mu:0. ~kt (e +. de))

let prop_cmos_monotone =
  qtest ~count:100 "cmos drain current monotone in both biases"
    QCheck.(pair (float_range 0. 0.9) (float_range 0. 0.9))
    (fun (vgs, vds) ->
      let m = Node.n22.Node.nmos in
      let i = Compact.drain_current m ~vgs ~vds in
      Compact.drain_current m ~vgs:(vgs +. 0.01) ~vds >= i -. 1e-18
      && Compact.drain_current m ~vgs ~vds:(vds +. 0.01) >= i -. 1e-18)

let prop_snm_scaling =
  qtest ~count:40 "SNM scales with the VTC" (QCheck.float_range 0.5 2.)
    (fun scale ->
      let vdd = 1. in
      let vin = Vec.linspace 0. vdd 101 in
      let vout =
        Array.map (fun v -> vdd /. (1. +. exp (30. *. (v -. 0.5)))) vin
      in
      let v1 = { Snm.vin; vout } in
      let v2 =
        {
          Snm.vin = Array.map (fun v -> scale *. v) vin;
          vout = Array.map (fun v -> scale *. v) vout;
        }
      in
      let a = Snm.snm v1 v1 and b = Snm.snm v2 v2 in
      Float.abs (b -. (scale *. a)) <= (2e-2 *. scale) +. 1e-9)

let stack_fixture =
  lazy
    (Stack2d.make ~contact_style:Stack2d.Plane
       ~xs:(Vec.linspace 0. 10e-9 13)
       ~zs:(Vec.linspace (-1.5e-9) 1.5e-9 9)
       ~eps_r:(fun _ _ -> 3.9)
       ~sheet_row:4 ())

let prop_poisson_reciprocity =
  qtest ~count:25 "poisson response reciprocity r_ij = r_ji"
    QCheck.(pair (int_range 0 10) (int_range 0 10))
    (fun (i, j) ->
      let t = Lazy.force stack_fixture in
      let bc = { Stack2d.left = 0.; right = 0.; bottom = 0.; top = 0. } in
      let n = Stack2d.nx t - 2 in
      let probe k =
        let sc = Array.make n 0. in
        sc.(k) <- 1e-4;
        Stack2d.plane_potential t (Stack2d.solve t ~bc ~sheet_charge:sc)
      in
      let ui = probe i and uj = probe j in
      (* Green's-function symmetry of the (symmetric) FV operator, up to
         the cell-size weighting of the charge injection. *)
      let wi = ui.(j) /. uj.(j) and wj = uj.(i) /. ui.(i) in
      ignore wi;
      ignore wj;
      Float.abs (ui.(j) -. uj.(i)) <= 1e-6 *. (Float.abs ui.(i) +. 1e-12))

let prop_matrix_transpose_mul =
  qtest ~count:40 "(AB)^T = B^T A^T" QCheck.(int_range 2 8) (fun n ->
      let a = random_matrix n and b = random_matrix n in
      let lhs = Matrix.transpose (Matrix.mul a b) in
      let rhs = Matrix.mul (Matrix.transpose b) (Matrix.transpose a) in
      Matrix.max_abs (Matrix.sub lhs rhs) < 1e-12)

let prop_interp_table_model_consistency =
  qtest ~count:40 "table current continuous across vds=0"
    QCheck.(float_range (-0.2) 0.8)
    (fun vgs ->
      let table = synthetic_table () in
      let m = Gnr_model.intrinsic ~polarity:Gnr_model.N_type ~vt_shift:0. table in
      let eps = 1e-5 in
      let below = m.Fet_model.id ~vgs ~vds:(-.eps) in
      let above = m.Fet_model.id ~vgs ~vds:eps in
      Float.abs (above -. below) <= 1e-9 +. (0.5 *. Float.abs above))

let prop_rng_uniform_mean =
  qtest ~count:10 "rng uniform mean" QCheck.(int_range 1 1000) (fun seed ->
      let r = Rng.create seed in
      let n = 4000 in
      let acc = ref 0. in
      for _ = 1 to n do
        acc := !acc +. Rng.float r
      done;
      Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.05)

let suite =
  [
    prop_transmission_bounded;
    prop_gauge_invariance;
    prop_reversal_invariance;
    prop_spectra_sum_rule;
    prop_fermi_monotone;
    prop_cmos_monotone;
    prop_snm_scaling;
    prop_poisson_reciprocity;
    prop_matrix_transpose_mul;
    prop_interp_table_model_consistency;
    prop_rng_uniform_mean;
  ]
