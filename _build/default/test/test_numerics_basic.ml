(* Unit and property tests for Vec, Stats, Rng, Integrate, Roots, Lstsq. *)

open Support

let test_linspace () =
  let xs = Vec.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  approx "first" 0. xs.(0);
  approx "last" 1. xs.(4);
  approx "step" 0.25 (xs.(1) -. xs.(0));
  let single = Vec.linspace 3. 9. 1 in
  approx "n=1" 3. single.(0);
  check_raises_invalid "n=0" (fun () -> Vec.linspace 0. 1. 0)

let test_dot_axpy () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  approx "dot" 32. (Vec.dot x y);
  let z = Array.copy y in
  Vec.axpy 2. x z;
  approx "axpy" (4. +. 2.) z.(0);
  approx "axpy last" (6. +. 6.) z.(2);
  check_raises_invalid "mismatch" (fun () -> Vec.dot x [| 1. |])

let test_norms_extrema () =
  let x = [| 3.; -4.; 0. |] in
  approx "norm2" 5. (Vec.norm2 x);
  approx "norm_inf" 4. (Vec.norm_inf x);
  Alcotest.(check int) "argmin" 1 (Vec.argmin x);
  Alcotest.(check int) "argmax" 0 (Vec.argmax x);
  approx "minimum" (-4.) (Vec.minimum x);
  approx "maximum" 3. (Vec.maximum x);
  approx "mean" (-1. /. 3.) (Vec.mean x);
  approx "max_abs_diff" 4. (Vec.max_abs_diff x [| 3.; 0.; 0. |])

let prop_dot_symmetry =
  qtest "dot symmetry" QCheck.(pair (list_of_size Gen.(1 -- 20) float) unit)
    (fun (l, ()) ->
      let x = Array.of_list (List.map (fun v -> Float.rem v 1e6) l) in
      let y = Array.map (fun v -> v +. 1.) x in
      Float.abs (Vec.dot x y -. Vec.dot y x) <= 1e-6 *. (1. +. Float.abs (Vec.dot x y)))

let prop_norm_triangle =
  qtest "norm2 triangle inequality"
    QCheck.(list_of_size Gen.(1 -- 16) (float_bound_inclusive 100.))
    (fun l ->
      let x = Array.of_list l in
      let y = Array.map (fun v -> 1. -. v) x in
      Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9)

let test_stats_summary () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  approx "mean" 5. s.Stats.mean;
  approx ~eps:1e-6 "std" 2.13809 s.Stats.std;
  approx "median" 4.5 s.Stats.median;
  approx "min" 2. s.Stats.min;
  approx "max" 9. s.Stats.max;
  Alcotest.(check int) "n" 8 s.Stats.n

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  approx "p0" 1. (Stats.percentile xs 0.);
  approx "p100" 4. (Stats.percentile xs 100.);
  approx "p50" 2.5 (Stats.percentile xs 50.);
  check_raises_invalid "p>100" (fun () -> Stats.percentile xs 101.)

let test_histogram () =
  let h = Stats.histogram ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "bins" 4 (Array.length h.Stats.counts);
  Alcotest.(check int) "total count" 5 (Array.fold_left ( + ) 0 h.Stats.counts);
  let centers = Stats.bin_centers h in
  approx "first center" 0.5 centers.(0);
  (* degenerate sample *)
  let h1 = Stats.histogram ~bins:3 [| 2.; 2. |] in
  Alcotest.(check int) "degenerate total" 2 (Array.fold_left ( + ) 0 h1.Stats.counts)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 50 do
    approx "same stream" (Rng.float a) (Rng.float b)
  done;
  let c = Rng.create 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.float a <> Rng.float c then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_ranges () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let u = Rng.float r in
    Alcotest.(check bool) "[0,1)" true (u >= 0. && u < 1.);
    let k = Rng.int r 7 in
    Alcotest.(check bool) "int range" true (k >= 0 && k < 7)
  done;
  check_raises_invalid "int 0" (fun () -> Rng.int r 0)

let test_rng_normal_moments () =
  let r = Rng.create 5 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.normal r) in
  let s = Stats.summarize xs in
  approx ~eps:0.05 "normal mean" 0. s.Stats.mean;
  approx ~eps:0.05 "normal std" 1. s.Stats.std

let test_rng_split () =
  let r = Rng.create 13 in
  let r2 = Rng.split r in
  let a = Rng.float r and b = Rng.float r2 in
  Alcotest.(check bool) "split stream differs" true (a <> b)

let test_integrate_polynomials () =
  let f x = (3. *. x *. x) +. (2. *. x) +. 1. in
  (* Exact integral on [0,2] = 8 + 4 + 2 = 14. *)
  approx ~eps:1e-10 "simpson cubic-exact" 14. (Integrate.simpson ~f ~a:0. ~b:2. ~n:4);
  approx ~eps:1e-3 "trapezoid" 14. (Integrate.trapezoid ~f ~a:0. ~b:2. ~n:200);
  approx ~eps:1e-8 "adaptive" 14. (Integrate.adaptive_simpson ~f ~a:0. ~b:2. ());
  approx ~eps:1e-8 "adaptive sin" 2.
    (Integrate.adaptive_simpson ~f:sin ~a:0. ~b:Float.pi ())

let test_integrate_samples () =
  let xs = [| 0.; 1.; 3. |] and ys = [| 0.; 2.; 6. |] in
  (* Piecewise linear: 1 + 8 = 9. *)
  approx "samples" 9. (Integrate.trapezoid_samples ~xs ~ys);
  check_raises_invalid "decreasing axis" (fun () ->
      Integrate.trapezoid_samples ~xs:[| 1.; 0. |] ~ys:[| 0.; 0. |])

let test_roots () =
  let f x = cos x in
  let r1 = Roots.bisection ~f ~a:1. ~b:2. () in
  approx ~eps:1e-9 "bisection pi/2" (Float.pi /. 2.) r1;
  let r2 = Roots.brent ~f ~a:1. ~b:2. () in
  approx ~eps:1e-9 "brent pi/2" (Float.pi /. 2.) r2;
  check_raises_invalid "no bracket" (fun () -> Roots.brent ~f ~a:0.1 ~b:0.2 ());
  match Roots.bracket_scan ~f ~a:0. ~b:3. ~n:30 with
  | Some (lo, hi) ->
    Alcotest.(check bool) "bracket contains root" true
      (lo <= Float.pi /. 2. && Float.pi /. 2. <= hi)
  | None -> Alcotest.fail "bracket_scan missed the root"

let prop_brent_polynomial =
  qtest "brent finds polynomial roots" QCheck.(float_range 0.3 3.)
    (fun root ->
      let f x = (x -. root) *. ((x *. x) +. 1.) in
      let found = Roots.brent ~f ~a:0. ~b:4. () in
      Float.abs (found -. root) < 1e-8)

let test_lstsq_line () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1.25 ) xs in
  let intercept, slope = Lstsq.line_fit ~xs ~ys in
  approx ~eps:1e-8 "slope" 2.5 slope;
  approx ~eps:1e-8 "intercept" (-1.25) intercept

let test_lstsq_polyfit () =
  let xs = Vec.linspace (-1.) 1. 9 in
  let ys = Array.map (fun x -> 1. +. (2. *. x) +. (3. *. x *. x)) xs in
  let c = Lstsq.polyfit ~degree:2 ~xs ~ys in
  approx ~eps:1e-8 "c0" 1. c.(0);
  approx ~eps:1e-8 "c1" 2. c.(1);
  approx ~eps:1e-8 "c2" 3. c.(2);
  approx ~eps:1e-8 "polyval" 6. (Lstsq.polyval c 1.)

let test_mixing_linear () =
  let m = Mixing.linear ~alpha:0.5 in
  let x = [| 0. |] and gx = [| 1. |] in
  let x' = Mixing.step m ~x ~gx in
  approx "half step" 0.5 x'.(0);
  approx "residual" 1. (Mixing.residual ~x ~gx)

let test_mixing_anderson_converges () =
  (* Fixed point of g(x) = 0.5 x + c is 2c; Anderson should hit it fast. *)
  let c = [| 1.; -2. |] in
  let g x = Array.mapi (fun i v -> (0.5 *. v) +. c.(i)) x in
  let m = Mixing.anderson ~history:3 ~alpha:0.5 () in
  let x = ref [| 0.; 0. |] in
  for _ = 1 to 20 do
    x := Mixing.step m ~x:!x ~gx:(g !x)
  done;
  approx ~eps:1e-6 "fp 0" 2. !x.(0);
  approx ~eps:1e-6 "fp 1" (-4.) !x.(1)

let test_parallel_map () =
  let xs = Array.init 37 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) xs in
  let got = Parallel.map ~domains:3 (fun i -> i * i) xs in
  Alcotest.(check (array int)) "order preserved" expected got;
  match Parallel.map ~domains:2 (fun i -> if i = 5 then failwith "boom" else i) xs with
  | exception Failure msg -> Alcotest.(check string) "exn propagates" "boom" msg
  | _ -> Alcotest.fail "expected failure to propagate"

let suite =
  [
    Alcotest.test_case "linspace" `Quick test_linspace;
    Alcotest.test_case "dot/axpy" `Quick test_dot_axpy;
    Alcotest.test_case "norms and extrema" `Quick test_norms_extrema;
    prop_dot_symmetry;
    prop_norm_triangle;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng normal moments" `Quick test_rng_normal_moments;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    Alcotest.test_case "integrate polynomials" `Quick test_integrate_polynomials;
    Alcotest.test_case "integrate samples" `Quick test_integrate_samples;
    Alcotest.test_case "roots" `Quick test_roots;
    prop_brent_polynomial;
    Alcotest.test_case "least-squares line" `Quick test_lstsq_line;
    Alcotest.test_case "polyfit" `Quick test_lstsq_polyfit;
    Alcotest.test_case "mixing linear" `Quick test_mixing_linear;
    Alcotest.test_case "mixing anderson" `Quick test_mixing_anderson_converges;
    Alcotest.test_case "parallel map" `Quick test_parallel_map;
  ]
