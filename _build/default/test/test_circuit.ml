(* Tests for the circuit substrate: models, netlists, the MNA engine,
   measurements and SNM. *)

open Support

let resistor_fet name r =
  (* A linear "FET": drain current = vds / r regardless of vgs. *)
  {
    Fet_model.name;
    id = (fun ~vgs:_ ~vds -> vds /. r);
    cgs = (fun ~vgs:_ ~vds:_ -> 0.);
    cgd = (fun ~vgs:_ ~vds:_ -> 0.);
  }

let test_fet_model_parallel_scale () =
  let m = resistor_fet "r" 1e3 in
  let p = Fet_model.parallel "pair" [ m; m; m ] in
  approx ~eps:1e-15 "parallel currents add" (3. *. 0.5 /. 1e3)
    (p.Fet_model.id ~vgs:0. ~vds:0.5);
  let s = Fet_model.scale "scaled" 0.5 m in
  approx ~eps:1e-15 "scaled" (0.5 *. 0.5 /. 1e3) (s.Fet_model.id ~vgs:0. ~vds:0.5)

let test_netlist_validation () =
  let net = Netlist.create () in
  let a = Netlist.fresh_node net in
  check_raises_invalid "unknown node" (fun () ->
      Netlist.add net (Netlist.Resistor { a; b = 99; ohms = 1. }));
  check_raises_invalid "bad resistance" (fun () ->
      Netlist.add net (Netlist.Resistor { a; b = Netlist.gnd; ohms = 0. }));
  Netlist.vdc net a 1.;
  check_raises_invalid "double drive" (fun () -> Netlist.vdc net a 2.);
  check_raises_invalid "drive ground" (fun () -> Netlist.vdc net Netlist.gnd 1.);
  Alcotest.(check bool) "driven" true (Netlist.is_driven net a)

let test_dc_divider () =
  let net = Netlist.create () in
  let top = Netlist.fresh_node net in
  let mid = Netlist.fresh_node net in
  Netlist.vdc net top 1.;
  Netlist.add net (Netlist.Resistor { a = top; b = mid; ohms = 1e3 });
  Netlist.add net (Netlist.Resistor { a = mid; b = Netlist.gnd; ohms = 3e3 });
  let x = Mna.solve_dc net in
  approx ~eps:1e-9 "divider" 0.75 x.(mid);
  approx ~eps:1e-12 "source current" (1. /. 4e3) (Mna.dc_current net x top)

let test_dc_nonlinear () =
  (* Diode-connected exponential device in series with a resistor. *)
  let diode =
    {
      Fet_model.name = "diode";
      id = (fun ~vgs:_ ~vds -> 1e-12 *. (exp (vds /. 0.026) -. 1.));
      cgs = (fun ~vgs:_ ~vds:_ -> 0.);
      cgd = (fun ~vgs:_ ~vds:_ -> 0.);
    }
  in
  let net = Netlist.create () in
  let top = Netlist.fresh_node net in
  let mid = Netlist.fresh_node net in
  Netlist.vdc net top 1.;
  Netlist.add net (Netlist.Resistor { a = top; b = mid; ohms = 10e3 });
  Netlist.add net (Netlist.Fet { g = mid; d = mid; s = Netlist.gnd; model = diode });
  let x = Mna.solve_dc net in
  let v = x.(mid) in
  let i_r = (1. -. v) /. 10e3 in
  let i_d = 1e-12 *. (exp (v /. 0.026) -. 1.) in
  approx_rel ~rel:1e-6 "KCL at the diode node" i_r i_d;
  Alcotest.(check bool) "sensible diode drop" true (v > 0.3 && v < 0.7)

let test_transient_rc () =
  (* RC low-pass step response: v(t) = 1 - exp(-t/RC). *)
  let r = 1e3 and c = 1e-12 in
  let net = Netlist.create () in
  let src = Netlist.fresh_node net in
  let out = Netlist.fresh_node net in
  Netlist.vsource net src (fun t -> if t > 0. then 1. else 0.);
  Netlist.add net (Netlist.Resistor { a = src; b = out; ohms = r });
  Netlist.add net (Netlist.Capacitor { a = out; b = Netlist.gnd; farads = c });
  let rc = r *. c in
  let wf = Mna.transient net ~t_stop:(5. *. rc) ~dt:(rc /. 100.) in
  let trace = Mna.node_trace wf out in
  let times = wf.Mna.times in
  Array.iteri
    (fun k t ->
      if t > 0. then begin
        let expected = 1. -. exp (-.t /. rc) in
        approx ~eps:5e-3 (Printf.sprintf "rc response at %g" t) expected trace.(k)
      end)
    times

let test_transient_source_current () =
  (* The same RC: source current = (v_src - v_out)/R; check against the
     reconstruction helper. *)
  let r = 1e3 and c = 1e-12 in
  let net = Netlist.create () in
  let src = Netlist.fresh_node net in
  let out = Netlist.fresh_node net in
  Netlist.vsource net src (fun t -> if t > 0. then 1. else 0.);
  Netlist.add net (Netlist.Resistor { a = src; b = out; ohms = r });
  Netlist.add net (Netlist.Capacitor { a = out; b = Netlist.gnd; farads = c });
  let rc = r *. c in
  let wf = Mna.transient net ~t_stop:(3. *. rc) ~dt:(rc /. 50.) in
  let i = Mna.source_current net wf src in
  let out_t = Mna.node_trace wf out in
  Array.iteri
    (fun k ik ->
      let expected = (wf.Mna.voltages.(k).(src) -. out_t.(k)) /. r in
      approx ~eps:1e-6 "source current" expected ik)
    i

let test_measure_crossings_delay () =
  let times = Vec.linspace 0. 10. 101 in
  let input = Array.map (fun t -> if t >= 2. then 1. else 0.) times in
  let output = Array.map (fun t -> if t >= 3.5 then 0. else 1.) times in
  (match Measure.delay_50 ~times ~input ~output ~vdd:1. ~input_rising:true with
  | Some d -> approx ~eps:0.2 "delay" 1.5 d
  | None -> Alcotest.fail "no delay measured");
  let sine = Array.map (fun t -> sin (2. *. Float.pi *. t /. 2.5)) times in
  match Measure.period ~times ~values:sine ~level:0. with
  | Some p -> approx ~eps:0.15 "period" 2.5 p
  | None -> Alcotest.fail "no period measured"

let test_measure_average_energy () =
  let times = Vec.linspace 0. 1. 101 in
  let values = Array.map (fun t -> 2. *. t) times in
  approx ~eps:1e-9 "average of ramp" 1. (Measure.average ~times ~values ~t_from:0.);
  let current = Array.map (fun _ -> 1e-6) times in
  approx ~eps:1e-12 "energy" 2e-6
    (Measure.energy ~times ~current ~volts:2. ~t_from:0. ~t_to:1.)

let ideal_vtc ?(slope = 200.) ?(vm = 0.5) vdd n =
  (* A steep but smooth inverter VTC. *)
  let vin = Vec.linspace 0. vdd n in
  let vout =
    Array.map (fun v -> vdd /. (1. +. exp (slope *. (v -. (vm *. vdd)))) ) vin
  in
  { Snm.vin; vout }

let test_snm_ideal () =
  let v = ideal_vtc 1. 201 in
  let snm = Snm.snm v v in
  (* A very steep symmetric inverter approaches VDD/2. *)
  Alcotest.(check bool) "close to VDD/2" true (snm > 0.43 && snm <= 0.5)

let test_snm_degraded () =
  (* A low-gain inverter has a visibly smaller SNM. *)
  let vdd = 1. in
  let vin = Vec.linspace 0. vdd 201 in
  let vout = Array.map (fun v -> vdd *. (1. -. (v /. vdd))) vin in
  let weak = { Snm.vin; vout } in
  let snm_weak = Snm.snm weak weak in
  Alcotest.(check bool) "unity-gain inverter has ~zero SNM" true (snm_weak < 0.05)

let test_snm_asymmetric_lobes () =
  (* Two inverters with different switching thresholds make the two eyes
     unequal (a latch built from identical shifted inverters is still
     diagonal-symmetric, so the asymmetry needs distinct VTCs). *)
  let v1 = ideal_vtc ~vm:0.3 1. 201 in
  let v2 = ideal_vtc ~vm:0.5 1. 201 in
  let a, b = Snm.lobes v1 v2 in
  Alcotest.(check bool) "lobes differ" true (Float.abs (a -. b) > 0.05);
  approx ~eps:1e-12 "snm is the min lobe" (Float.max 0. (Float.min a b))
    (Snm.snm v1 v2)

let test_butterfly_shape () =
  let v = ideal_vtc 1. 51 in
  let c1, c2 = Snm.butterfly v v in
  Alcotest.(check int) "branch sizes" (List.length c1) (List.length c2);
  (* Branch 2 is the mirror of branch 1. *)
  let x1, y1 = List.nth c1 10 in
  let x2, y2 = List.nth c2 10 in
  approx ~eps:1e-12 "mirrored" x1 y2;
  approx ~eps:1e-12 "mirrored'" y1 x2

let suite =
  [
    Alcotest.test_case "fet model composition" `Quick test_fet_model_parallel_scale;
    Alcotest.test_case "netlist validation" `Quick test_netlist_validation;
    Alcotest.test_case "dc divider" `Quick test_dc_divider;
    Alcotest.test_case "dc nonlinear" `Quick test_dc_nonlinear;
    Alcotest.test_case "transient rc" `Quick test_transient_rc;
    Alcotest.test_case "transient source current" `Quick test_transient_source_current;
    Alcotest.test_case "measure crossings/delay/period" `Quick test_measure_crossings_delay;
    Alcotest.test_case "measure average/energy" `Quick test_measure_average_energy;
    Alcotest.test_case "snm ideal" `Quick test_snm_ideal;
    Alcotest.test_case "snm degraded" `Quick test_snm_degraded;
    Alcotest.test_case "snm asymmetric lobes" `Quick test_snm_asymmetric_lobes;
    Alcotest.test_case "butterfly shape" `Quick test_butterfly_shape;
  ]
