(* Shared helpers for the test suite. *)

let approx ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (eps %g)" msg expected actual eps

let approx_rel ?(rel = 1e-6) msg expected actual =
  let scale = Float.max (Float.abs expected) Tol.underflow_guard in
  if Float.abs (expected -. actual) /. scale > rel then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel %g)" msg expected actual rel

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Invalid_argument, got %s" msg (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" msg

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Skip a test whose exact (often bit-for-bit) assertions are only
   meaningful while no fault campaign can fire inside it — the CI fault
   legs run the whole suite under GNRFET_FAULT (docs/ROBUST.md). *)
let skip_if_fault_armed sites =
  if List.exists Fault.site_armed sites then Alcotest.skip ()

(* Small deterministic RNG for fixtures. *)
let rng = Rng.create 2024

let random_vector n = Array.init n (fun _ -> Rng.uniform rng (-2.) 2.)

let random_matrix n =
  Matrix.init n n (fun _ _ -> Rng.uniform rng (-1.) 1.)

let diag_dominant n =
  let m = random_matrix n in
  Matrix.init n n (fun i j ->
      if i = j then 4. +. Float.abs (Matrix.get m i j) else Matrix.get m i j /. 2.)

(* A synthetic, fast Iv_table shaped like a well-behaved ambipolar GNRFET:
   lets circuit-level tests run without any quantum simulation.  Electron
   branch above vg0, hole branch below, saturation in vd, plus a charge
   table consistent with a simple gate capacitance. *)
let synthetic_table ?(i_on = 2e-6) ?(vg0 = 0.25) ?(key = "synthetic") () =
  let vg = Vec.linspace (-0.3) 1.1 57 in
  let vd = Vec.linspace 0. 0.8 17 in
  let branch x = if x > 0. then x *. x /. (0.08 +. x) else 0. in
  let current vg vd =
    let vmid = vg0 +. (vd /. 2.) -. 0.125 in
    let sat = vd /. (vd +. 0.1) in
    let electron = branch (vg -. vmid) in
    let hole = branch (vmid -. (vg -. vd)) *. 0.02 in
    (* Exponential subthreshold floors keep the conductance finite
       everywhere, like the real quantum tables. *)
    let floor =
      1e-4 *. (exp ((vg -. vmid) /. 0.06) +. (0.02 *. exp ((vmid -. vg +. vd) /. 0.06)))
    in
    let floor = Float.min floor 0.3 in
    i_on *. sat *. (electron +. hole +. floor +. 1e-7)
  in
  let charge vg vd =
    let c = 4e-19 in
    c *. -.(Float.max 0. (vg -. vg0 -. (vd /. 4.)))
  in
  {
    Iv_table.key;
    vg;
    vd;
    current = Array.map (fun g -> Array.map (fun d -> current g d) vd) vg;
    charge = Array.map (fun g -> Array.map (fun d -> charge g d) vd) vg;
    failed_points = [];
  }

(* A fast intrinsic device for SCF-level integration tests: short channel
   and a coarse energy grid. *)
let tiny_device ?(gnr_index = 12) () =
  {
    (Params.default ~gnr_index ()) with
    Params.channel_length = 6e-9;
    energy_step = 8e-3;
    energy_margin = 0.3;
  }
