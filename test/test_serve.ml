(* PR 5 tentpole: the table-serving daemon — JSON codec, LRU,
   single-flight coalescing, bounded-queue backpressure, and the two
   transports.  The concurrency tests pin the acceptance criterion:
   N concurrent requests for one uncached table cost exactly one
   generation (docs/SERVE.md). *)

open Support

let tiny = tiny_device ()

(* A deliberately minimal grid: serve tests pay for real SCF solves. *)
let micro_grid =
  { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 3; vd_max = 0.3; n_vd = 2 }

let with_temp_cache f =
  let dir = Filename.temp_file "gnrfet_serve" "" in
  Sys.remove dir;
  Unix.putenv "GNRFET_TABLE_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GNRFET_TABLE_DIR" "_tables";
      Table_cache.clear_memory ();
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Table_cache.clear_memory ();
      f ())

(* --- Sjson ----------------------------------------------------------- *)

let test_sjson_roundtrip () =
  let roundtrip s =
    match Sjson.parse s with
    | Ok j -> Sjson.to_string j
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check string) "object" {|{"a":1,"b":[true,false,null]}|}
    (roundtrip {| { "a" : 1, "b" : [ true, false, null ] } |});
  Alcotest.(check string) "string escapes" {|{"s":"a\"b\\c\n"}|}
    (roundtrip {|{"s":"a\"b\\c\n"}|});
  Alcotest.(check string) "unicode escape" {|{"s":"é"}|}
    (roundtrip {|{"s":"é"}|});
  Alcotest.(check string) "surrogate pair" "\"\xf0\x9f\x98\x80\""
    (roundtrip {|"😀"|});
  (* Floats must survive a print/parse cycle bit-for-bit. *)
  List.iter
    (fun f ->
      let s = Sjson.to_string (Sjson.Num f) in
      match Sjson.parse s with
      | Ok (Sjson.Num f') ->
        Alcotest.(check bool) (Printf.sprintf "float %s" s) true (f = f')
      | _ -> Alcotest.failf "float %s did not reparse" s)
    [ 0.; 1.5e-9; -0.3; 0.1 +. 0.2; 6.02e23; Float.min_float ];
  List.iter
    (fun bad ->
      match Sjson.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} x"; "nul"; "\"unterminated"; "01" ]

(* --- Lru ------------------------------------------------------------- *)

let test_lru () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check bool) "no eviction" true (Lru.add l "a" 1 = None);
  ignore (Lru.add l "b" 2);
  (* Touch "a" so "b" is the LRU entry. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  Alcotest.(check (option string)) "adding c evicts b" (Some "b")
    (Lru.add l "c" 3);
  Alcotest.(check (option int)) "b gone" None (Lru.find l "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find l "a");
  Alcotest.(check int) "length" 2 (Lru.length l);
  (* Replacing a present key is not an eviction. *)
  Alcotest.(check (option string)) "replace a" None (Lru.add l "a" 10);
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find l "a");
  let z = Lru.create ~capacity:0 in
  Alcotest.(check (option string)) "capacity 0 stores nothing" None
    (Lru.add z "k" 1);
  Alcotest.(check (option int)) "capacity 0 never hits" None (Lru.find z "k");
  check_raises_invalid "negative capacity" (fun () ->
      Lru.create ~capacity:(-1))

(* --- Work_queue ------------------------------------------------------ *)

let test_work_queue () =
  let q = Work_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Work_queue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Work_queue.try_push q 2);
  Alcotest.(check bool) "push 3 rejected (full)" false (Work_queue.try_push q 3);
  Alcotest.(check (option int)) "pop fifo" (Some 1) (Work_queue.pop q);
  Alcotest.(check bool) "room again" true (Work_queue.try_push q 3);
  Work_queue.close q;
  Work_queue.close q;
  Alcotest.(check bool) "push after close" false (Work_queue.try_push q 4);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Work_queue.pop q);
  Alcotest.(check (option int)) "drains after close (2)" (Some 3)
    (Work_queue.pop q);
  Alcotest.(check (option int)) "empty+closed" None (Work_queue.pop q)

(* --- Single_flight --------------------------------------------------- *)

let test_single_flight_coalesces () =
  let sf = Single_flight.create () in
  let calls = Atomic.make 0 in
  let release = Mutex.create () in
  Mutex.lock release;
  let outcomes = Array.make 8 None in
  let worker i () =
    let o =
      Single_flight.run sf "k" (fun () ->
          Atomic.incr calls;
          (* Hold every follower until the main thread releases us. *)
          Mutex.lock release;
          Mutex.unlock release;
          42)
    in
    outcomes.(i) <- Some o
  in
  let threads = Array.init 8 (fun i -> Thread.create (worker i) ()) in
  (* Wait until the leader is inside the computation, then let it go. *)
  while Single_flight.in_flight sf = 0 do
    Thread.yield ()
  done;
  Thread.delay 0.05;
  Mutex.unlock release;
  Array.iter Thread.join threads;
  Alcotest.(check int) "computed once" 1 (Atomic.get calls);
  let coalesced =
    Array.to_list outcomes
    |> List.filter_map Fun.id
    |> List.filter (fun o -> o.Single_flight.coalesced)
    |> List.length
  in
  Alcotest.(check int) "seven coalesced" 7 coalesced;
  Array.iter
    (fun o -> Alcotest.(check int) "value" 42 (Option.get o).Single_flight.value)
    outcomes;
  Alcotest.(check int) "map drained" 0 (Single_flight.in_flight sf);
  (* A later call recomputes. *)
  ignore (Single_flight.run sf "k" (fun () -> Atomic.incr calls; 0));
  Alcotest.(check int) "fresh call recomputes" 2 (Atomic.get calls)

let test_single_flight_exception () =
  let sf = Single_flight.create () in
  match Single_flight.run sf "boom" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the leader's exception"
  | exception Failure m ->
    Alcotest.(check string) "leader exception" "boom" m;
    Alcotest.(check int) "key removed after failure" 0
      (Single_flight.in_flight sf)

(* --- protocol -------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [
      { Serve_protocol.id = Some 1; op = Serve_protocol.Ping };
      { Serve_protocol.id = None; op = Serve_protocol.Stats };
      { Serve_protocol.id = Some 2; op = Serve_protocol.Shutdown };
      {
        Serve_protocol.id = Some 3;
        op = Serve_protocol.Table { params = tiny; grid = Some micro_grid };
      };
      {
        Serve_protocol.id = Some 4;
        op =
          Serve_protocol.Iv
            {
              params = Params.with_impurity_charge tiny (-1.);
              grid = None;
              vg = 0.35;
              vd = 0.25;
            };
      };
    ]
  in
  List.iter
    (fun r ->
      let line = Serve_protocol.request_to_line r in
      match Serve_protocol.parse_request line with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %s" line)
          true (r = r')
      | Error e -> Alcotest.failf "roundtrip %s: %s" line e)
    reqs;
  (* Params roundtrip preserves the cache identity (the serve key). *)
  let p = Params.with_impurity_charge (tiny_device ~gnr_index:9 ()) 1. in
  (match Serve_protocol.params_of_json (Serve_protocol.params_to_json p) with
  | Ok p' ->
    Alcotest.(check string) "cache key survives the wire"
      (Params.cache_key p) (Params.cache_key p')
  | Error e -> Alcotest.failf "params roundtrip: %s" e);
  List.iter
    (fun bad ->
      match Serve_protocol.parse_request bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      {|{"op":"nope"}|};
      {|{"op":"table","params":{"typo_field":1}}|};
      {|{"op":"table","grid":{"n_vg":1}}|};
      {|{"op":"iv","vg":0.1}|};
      {|{"op":"iv","vg":0.1,"vd":-0.2}|};
      {|{"op":"ping","extra":1}|};
      {|[1,2]|};
      "not json";
    ]

let test_response_roundtrip () =
  let ok = Serve_protocol.ok_line ~id:(Some 7) (Sjson.Num 1.5) in
  (match Serve_protocol.parse_response ok with
  | Ok { Serve_protocol.r_id = Some 7; result = Ok (Sjson.Num 1.5) } -> ()
  | _ -> Alcotest.failf "ok response mangled: %s" ok);
  let busy =
    {
      Serve_protocol.kind = "busy";
      detail = "queue full";
      retry_after_ms = Some 250;
    }
  in
  (match Serve_protocol.parse_response (Serve_protocol.error_line ~id:None busy) with
  | Ok { Serve_protocol.r_id = None; result = Error e } ->
    Alcotest.(check bool) "busy error roundtrip" true (e = busy)
  | _ -> Alcotest.fail "error response mangled");
  let e =
    Serve_protocol.error_of_robust
      (Robust_error.Scf_stalled
         { vg = 0.1; vd = 0.2; iterations = 7; residual = 1e-2 })
  in
  Alcotest.(check string) "robust kind" "scf_stalled" e.Serve_protocol.kind;
  Alcotest.(check bool) "robust detail nonempty" true
    (String.length e.Serve_protocol.detail > 0)

(* --- server ---------------------------------------------------------- *)

let make_server ?(lru = 32) ?(queue = 8) ?(workers = 2) () =
  let obs = Obs.create ~enabled:true () in
  let ctx = Ctx.make ~obs ~grid:micro_grid () in
  let config =
    {
      Serve.default_config with
      Serve.lru_capacity = lru;
      queue_capacity = queue;
      workers;
      ctx;
    }
  in
  (Serve.create ~config (), obs)

let table_line ?(id = 1) ?(params = tiny) () =
  Serve_protocol.request_to_line
    { Serve_protocol.id = Some id; op = Serve_protocol.Table { params; grid = None } }

let expect_ok line =
  match Serve_protocol.parse_response line with
  | Ok { Serve_protocol.result = Ok r; _ } -> r
  | Ok { Serve_protocol.result = Error e; _ } ->
    Alcotest.failf "expected ok, got error %s: %s" e.Serve_protocol.kind
      e.Serve_protocol.detail
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e

let test_serve_single_flight_acceptance () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  with_temp_cache @@ fun () ->
  let server, obs = make_server () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let n = 8 in
  let line = table_line () in
  let responses = Array.make n "" in
  let go = Mutex.create () in
  Mutex.lock go;
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            (* Start barrier: all clients fire together, well inside the
               leader's multi-SCF generation window. *)
            Mutex.lock go;
            Mutex.unlock go;
            responses.(i) <- Serve.handle_line server line)
          ())
  in
  Mutex.unlock go;
  Array.iter Thread.join threads;
  let first = expect_ok responses.(0) in
  Array.iter
    (fun r ->
      Alcotest.(check string) "all responses identical" responses.(0) r;
      ignore (expect_ok r))
    responses;
  (match first with
  | Sjson.Obj fields ->
    Alcotest.(check bool) "result carries the table key" true
      (List.mem_assoc "key" fields)
  | _ -> Alcotest.fail "table result is not an object");
  (* The acceptance criterion: one generation, everyone else coalesced. *)
  Alcotest.(check int) "table_cache.generates" 1
    (Obs.counter_value ~obs "table_cache.generates");
  Alcotest.(check int) "serve.coalesced_hits" (n - 1)
    (Obs.counter_value ~obs "serve.coalesced_hits");
  Alcotest.(check int) "serve.requests" n
    (Obs.counter_value ~obs "serve.requests");
  Alcotest.(check int) "no rejections" 0
    (Obs.counter_value ~obs "serve.rejected");
  (* A request after the dust settles is a pure LRU hit. *)
  ignore (expect_ok (Serve.handle_line server line));
  Alcotest.(check int) "serve.lru_hits" 1
    (Obs.counter_value ~obs "serve.lru_hits");
  Alcotest.(check int) "still one generation" 1
    (Obs.counter_value ~obs "table_cache.generates")

let test_serve_lru_eviction () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  with_temp_cache @@ fun () ->
  let server, obs = make_server ~lru:1 () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let p_a = tiny and p_b = tiny_device ~gnr_index:9 () in
  ignore (expect_ok (Serve.handle_line server (table_line ~params:p_a ())));
  ignore (expect_ok (Serve.handle_line server (table_line ~params:p_b ())));
  Alcotest.(check int) "adding B evicted A" 1
    (Obs.counter_value ~obs "serve.lru_evictions");
  (* A again: not an LRU hit any more, but Table_cache's memory layer
     still has it — no third generation. *)
  ignore (expect_ok (Serve.handle_line server (table_line ~params:p_a ())));
  Alcotest.(check int) "no LRU hit after eviction" 0
    (Obs.counter_value ~obs "serve.lru_hits");
  Alcotest.(check int) "two generations total" 2
    (Obs.counter_value ~obs "table_cache.generates")

let test_serve_backpressure () =
  with_temp_cache @@ fun () ->
  (* Zero queue slots: every generation attempt is rejected up front, so
     the test is deterministic (no timing on worker progress). *)
  let server, obs = make_server ~queue:0 () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  match Serve_protocol.parse_response (Serve.handle_line server (table_line ())) with
  | Ok { Serve_protocol.result = Error e; _ } ->
    Alcotest.(check string) "busy" "busy" e.Serve_protocol.kind;
    Alcotest.(check (option int)) "retry hint" (Some 250)
      e.Serve_protocol.retry_after_ms;
    Alcotest.(check int) "counted" 1 (Obs.counter_value ~obs "serve.rejected");
    Alcotest.(check int) "nothing generated" 0
      (Obs.counter_value ~obs "table_cache.generates")
  | _ -> Alcotest.fail "expected a busy rejection"

let test_serve_stats_reports_table_cache () =
  (* A fresh server's stats snapshot must already carry the table-cache
     hit-path counters (at 0) a fleet operator watches — in particular
     table_cache.mmap_hits, the gnrtbl zero-copy hit count. *)
  let server, _obs = make_server () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let line =
    Serve_protocol.request_to_line
      { Serve_protocol.id = Some 1; op = Serve_protocol.Stats }
  in
  match expect_ok (Serve.handle_line server line) with
  | Sjson.Obj fields -> (
    match List.assoc_opt "counters" fields with
    | Some (Sjson.Obj counters) ->
      List.iter
        (fun name ->
          Alcotest.(check bool) ("stats reports " ^ name) true
            (match List.assoc_opt name counters with
            | Some (Sjson.Num 0.) -> true
            | _ -> false))
        [
          "table_cache.mmap_hits"; "table_cache.disk_hits";
          "table_cache.memory_hits"; "table_cache.misses";
        ]
    | _ -> Alcotest.fail "stats payload has no counters object")
  | _ -> Alcotest.fail "stats payload is not an object"

let test_serve_bad_request_and_ping () =
  let server, obs = make_server () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  (match
     Serve_protocol.parse_response
       (Serve.handle_line server {|{"id":9,"op":"frobnicate"}|})
   with
  | Ok { Serve_protocol.r_id = Some 9; result = Error e } ->
    Alcotest.(check string) "bad_request" "bad_request" e.Serve_protocol.kind
  | _ -> Alcotest.fail "expected bad_request with the recovered id");
  (match
     Serve_protocol.parse_response
       (Serve.handle_line server {|{"id":10,"op":"ping"}|})
   with
  | Ok { Serve_protocol.r_id = Some 10; result = Ok (Sjson.Obj [ ("pong", Sjson.Bool true) ]) }
    -> ()
  | _ -> Alcotest.fail "expected pong");
  Alcotest.(check int) "bad counted" 1
    (Obs.counter_value ~obs "serve.bad_requests")

let test_serve_stdio_transport () =
  let server, _obs = make_server () in
  let in_path = Filename.temp_file "serve_in" ".jsonl" in
  let out_path = Filename.temp_file "serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      Out_channel.with_open_text in_path (fun oc ->
          output_string oc
            "{\"id\":1,\"op\":\"ping\"}\n\n{\"id\":2,\"op\":\"stats\"}\n{\"id\":3,\"op\":\"shutdown\"}\n{\"id\":4,\"op\":\"ping\"}\n");
      In_channel.with_open_text in_path (fun ic ->
          Out_channel.with_open_text out_path (fun oc ->
              Serve.serve_stdio server ic oc));
      Alcotest.(check bool) "server stopped" true (Serve.stopping server);
      let lines =
        In_channel.with_open_text out_path In_channel.input_lines
      in
      (* Blank input line skipped; the loop stops right at shutdown, so
         request 4 is never answered. *)
      Alcotest.(check int) "three responses" 3 (List.length lines);
      List.iteri
        (fun i line ->
          match Serve_protocol.parse_response line with
          | Ok { Serve_protocol.r_id = Some id; result = Ok _ } ->
            Alcotest.(check int) "in request order" (i + 1) id
          | _ -> Alcotest.failf "response %d mangled: %s" i line)
        lines)

let test_serve_unix_transport () =
  let server, _obs = make_server () in
  let path = Filename.temp_file "gnrfet" ".sock" in
  Sys.remove path;
  let th = Thread.create (fun () -> Serve.serve_unix server ~path) () in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec connect () =
    match Serve_client.connect ~path () with
    | c -> c
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server socket never came up";
      Thread.delay 0.01;
      connect ()
  in
  let client = connect () in
  (match
     Serve_client.request client { Serve_protocol.id = Some 1; op = Serve_protocol.Ping }
   with
  | { Serve_protocol.r_id = Some 1; result = Ok _ } -> ()
  | _ -> Alcotest.fail "ping over the socket failed");
  (match
     Serve_client.request client
       { Serve_protocol.id = Some 2; op = Serve_protocol.Shutdown }
   with
  | { Serve_protocol.result = Ok _; _ } -> ()
  | _ -> Alcotest.fail "shutdown over the socket failed");
  Serve_client.close client;
  Thread.join th;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "sjson roundtrip + rejects" `Quick test_sjson_roundtrip;
    Alcotest.test_case "lru" `Quick test_lru;
    Alcotest.test_case "work queue" `Quick test_work_queue;
    Alcotest.test_case "single-flight coalesces" `Quick
      test_single_flight_coalesces;
    Alcotest.test_case "single-flight exception" `Quick
      test_single_flight_exception;
    Alcotest.test_case "request roundtrip + rejects" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "response roundtrip + robust errors" `Quick
      test_response_roundtrip;
    Alcotest.test_case "8 concurrent clients, 1 generation" `Quick
      test_serve_single_flight_acceptance;
    Alcotest.test_case "lru eviction" `Quick test_serve_lru_eviction;
    Alcotest.test_case "backpressure rejection" `Quick test_serve_backpressure;
    Alcotest.test_case "stats reports table-cache counters" `Quick
      test_serve_stats_reports_table_cache;
    Alcotest.test_case "bad request + ping" `Quick
      test_serve_bad_request_and_ping;
    Alcotest.test_case "stdio transport" `Quick test_serve_stdio_transport;
    Alcotest.test_case "unix-socket transport" `Quick
      test_serve_unix_transport;
  ]
