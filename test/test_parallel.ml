(* Parallel pool: agreement of map/map_reduce/parallel_for with the
   sequential path (bit-for-bit, per the determinism contract), exception
   propagation from pool workers, pool reuse across many calls, nested
   runs, and the GNRFET_DOMAINS environment override. *)

exception Boom of int

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let test_matches_sequential () =
  let input = Array.init 257 (fun i -> i - 7) in
  let f x = (x * x) - (3 * x) + 1 in
  let expected = Array.map f input in
  Alcotest.(check (array int))
    "parallel result equals Array.map" expected
    (Parallel.map ~domains:4 f input);
  Alcotest.(check (array int))
    "single-domain fallback equals Array.map" expected
    (Parallel.map ~domains:1 f input)

let test_order_preserved () =
  let input = Array.init 100 (fun i -> float_of_int i) in
  let out = Parallel.map ~domains:3 (fun x -> 2. *. x) input in
  Array.iteri
    (fun i v -> Support.approx (Printf.sprintf "slot %d" i) (2. *. float_of_int i) v)
    out

let test_exception_propagation () =
  let input = Array.init 64 (fun i -> i) in
  Alcotest.check_raises "worker exception is re-raised in the caller" (Boom 13)
    (fun () ->
      ignore (Parallel.map ~domains:4 (fun x -> if x = 13 then raise (Boom 13) else x) input))

let test_env_override () =
  with_env "GNRFET_DOMAINS" "3" (fun () ->
      Alcotest.(check int) "GNRFET_DOMAINS=3" 3 (Parallel.num_domains ()));
  with_env "GNRFET_DOMAINS" " 5 " (fun () ->
      Alcotest.(check int) "whitespace is trimmed" 5 (Parallel.num_domains ()));
  with_env "GNRFET_DOMAINS" "0" (fun () ->
      Alcotest.(check int) "clamped to at least one domain" 1 (Parallel.num_domains ()));
  with_env "GNRFET_DOMAINS" "junk" (fun () ->
      Alcotest.(check int) "unparsable value falls back to 1" 1 (Parallel.num_domains ()))

let test_env_override_map () =
  with_env "GNRFET_DOMAINS" "3" (fun () ->
      let input = Array.init 41 (fun i -> i) in
      let expected = Array.map succ input in
      Alcotest.(check (array int))
        "map under GNRFET_DOMAINS matches sequential" expected (Parallel.map succ input))

let test_pool_reuse () =
  (* Many small batches in a row exercise the persistent pool (workers
     are reused, not respawned); failure mode is a hang or a crash. *)
  let input = Array.init 64 (fun i -> i) in
  for round = 1 to 100 do
    let out = Parallel.map ~domains:4 (fun x -> x + round) input in
    Alcotest.(check int) "round result" (63 + round) out.(63)
  done

(* Non-associative floating-point reduction: any change of summation
   order (worker count, chunk scheduling) would change the result. *)
let harmonic_sum ?domains ?chunk n =
  Parallel.map_reduce ?domains ?chunk ~n
    ~worker:(fun _ -> ())
    ~body:(fun () ~lo ~hi ->
      let s = ref 0. in
      for i = lo to hi - 1 do
        s := !s +. (1. /. float_of_int (i + 1))
      done;
      !s)
    ~combine:( +. ) 0.

let test_map_reduce_deterministic () =
  let reference = harmonic_sum ~domains:1 9973 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d bit-for-bit equal to domains=1" d)
        true
        (harmonic_sum ~domains:d 9973 = reference))
    [ 2; 3; 4; 8 ];
  with_env "GNRFET_DOMAINS" "1" (fun () ->
      Alcotest.(check bool)
        "GNRFET_DOMAINS=1 equals explicit domains=1" true
        (harmonic_sum 9973 = reference));
  with_env "GNRFET_DOMAINS" "4" (fun () ->
      Alcotest.(check bool)
        "GNRFET_DOMAINS=4 equals domains=1" true
        (harmonic_sum 9973 = reference))

let test_map_reduce_worker_state () =
  (* Per-slot workers must be created once per slot and handed to every
     chunk that slot processes: count distinct worker states used. *)
  let created = Atomic.make 0 in
  let total =
    Parallel.map_reduce ~domains:3 ~chunk:8 ~n:1000
      ~worker:(fun _ ->
        Atomic.incr created;
        ref 0)
      ~body:(fun scratch ~lo ~hi ->
        scratch := hi - lo;
        !scratch)
      ~combine:( + ) 0
  in
  Alcotest.(check int) "every index counted once" 1000 total;
  Alcotest.(check bool)
    "at most one worker state per slot" true
    (Atomic.get created <= 3)

let test_map_reduce_empty_and_small () =
  Alcotest.(check int) "n=0 returns init" 42
    (Parallel.map_reduce ~domains:4 ~n:0
       ~worker:(fun _ -> ())
       ~body:(fun () ~lo:_ ~hi:_ -> 1)
       ~combine:( + ) 42);
  Alcotest.(check int) "n=1" 1
    (Parallel.map_reduce ~domains:4 ~n:1
       ~worker:(fun _ -> ())
       ~body:(fun () ~lo ~hi -> hi - lo)
       ~combine:( + ) 0)

let test_map_reduce_exception () =
  Alcotest.check_raises "body exception propagates through the pool"
    (Boom 99)
    (fun () ->
      ignore
        (Parallel.map_reduce ~domains:4 ~chunk:4 ~n:256
           ~worker:(fun _ -> ())
           ~body:(fun () ~lo ~hi -> if lo <= 99 && 99 < hi then raise (Boom 99) else 0)
           ~combine:( + ) 0));
  Alcotest.check_raises "worker-constructor exception propagates"
    (Boom 1)
    (fun () ->
      ignore
        (Parallel.map_reduce ~domains:4 ~chunk:4 ~n:256
           ~worker:(fun slot -> if slot > 0 then raise (Boom 1))
           ~body:(fun () ~lo ~hi -> hi - lo)
           ~combine:( + ) 0))

let test_parallel_for_covers () =
  let out = Array.make 1000 (-1) in
  (* Chunks are disjoint index ranges of [out].  gnrlint: allow-shared *)
  Parallel.parallel_for ~domains:5 ~n:1000 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        out.(i) <- i
      done);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "index %d" i) i v)
    out

let test_nested_runs () =
  (* map_reduce inside pool workers of an outer map: the inner runs must
     complete (work helping prevents deadlock) and stay deterministic. *)
  let reference = harmonic_sum ~domains:1 2000 in
  let out =
    Parallel.map ~domains:4
      (fun _ -> harmonic_sum ~domains:3 2000)
      (Array.init 8 (fun i -> i))
  in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "nested reduction equals sequential" true (v = reference))
    out

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "map preserves order" `Quick test_order_preserved;
    Alcotest.test_case "worker exception propagates" `Quick test_exception_propagation;
    Alcotest.test_case "GNRFET_DOMAINS override" `Quick test_env_override;
    Alcotest.test_case "map honours GNRFET_DOMAINS" `Quick test_env_override_map;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "map_reduce deterministic" `Quick test_map_reduce_deterministic;
    Alcotest.test_case "map_reduce worker state" `Quick test_map_reduce_worker_state;
    Alcotest.test_case "map_reduce empty/small" `Quick test_map_reduce_empty_and_small;
    Alcotest.test_case "map_reduce exception" `Quick test_map_reduce_exception;
    Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers;
    Alcotest.test_case "nested parallel runs" `Quick test_nested_runs;
  ]
