(* Parallel.map: agreement with the sequential map, exception propagation
   from worker domains, and the GNRFET_DOMAINS environment override. *)

exception Boom of int

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let test_matches_sequential () =
  let input = Array.init 257 (fun i -> i - 7) in
  let f x = (x * x) - (3 * x) + 1 in
  let expected = Array.map f input in
  Alcotest.(check (array int))
    "parallel result equals Array.map" expected
    (Parallel.map ~domains:4 f input);
  Alcotest.(check (array int))
    "single-domain fallback equals Array.map" expected
    (Parallel.map ~domains:1 f input)

let test_order_preserved () =
  let input = Array.init 100 (fun i -> float_of_int i) in
  let out = Parallel.map ~domains:3 (fun x -> 2. *. x) input in
  Array.iteri
    (fun i v -> Support.approx (Printf.sprintf "slot %d" i) (2. *. float_of_int i) v)
    out

let test_exception_propagation () =
  let input = Array.init 64 (fun i -> i) in
  Alcotest.check_raises "worker exception is re-raised in the caller" (Boom 13)
    (fun () ->
      ignore (Parallel.map ~domains:4 (fun x -> if x = 13 then raise (Boom 13) else x) input))

let test_env_override () =
  with_env "GNRFET_DOMAINS" "3" (fun () ->
      Alcotest.(check int) "GNRFET_DOMAINS=3" 3 (Parallel.num_domains ()));
  with_env "GNRFET_DOMAINS" " 5 " (fun () ->
      Alcotest.(check int) "whitespace is trimmed" 5 (Parallel.num_domains ()));
  with_env "GNRFET_DOMAINS" "0" (fun () ->
      Alcotest.(check int) "clamped to at least one domain" 1 (Parallel.num_domains ()));
  with_env "GNRFET_DOMAINS" "junk" (fun () ->
      Alcotest.(check int) "unparsable value falls back to 1" 1 (Parallel.num_domains ()))

let test_env_override_map () =
  with_env "GNRFET_DOMAINS" "3" (fun () ->
      let input = Array.init 41 (fun i -> i) in
      let expected = Array.map succ input in
      Alcotest.(check (array int))
        "map under GNRFET_DOMAINS matches sequential" expected (Parallel.map succ input))

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "map preserves order" `Quick test_order_preserved;
    Alcotest.test_case "worker exception propagates" `Quick test_exception_propagation;
    Alcotest.test_case "GNRFET_DOMAINS override" `Quick test_env_override;
    Alcotest.test_case "map honours GNRFET_DOMAINS" `Quick test_env_override_map;
  ]
