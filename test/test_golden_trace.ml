(* Golden-trace regression tests for the SCF convergence behaviour.

   Two fixed reduced devices (N=12 and N=15, the Support.tiny_device
   geometry) are solved at one bias point and the per-iteration
   convergence trace (Scf.solution.trace) is checked three ways:

   - run-to-run: two solves in one process produce bit-identical traces;
   - sequential vs parallel: the trace, converged potential, current and
     iteration count are bit-for-bit identical with the energy loop
     sequential, on the default pool, and with GNRFET_DOMAINS=5 (the
     PR 2 determinism contract, now observable per iteration);
   - against the golden files in test/golden/: iteration counts, step
     structure, mixing factors and Poisson-solve counts exactly; update
     norms to 1e-6 relative (libm differences across platforms move the
     last bits of the residuals, not the iteration structure).

   Regenerate the golden files after an INTENTIONAL solver change with

     dune exec test/gen_golden.exe        (from the repo root)

   and review the trace diff as part of the change. *)

open Support

let vg = 0.4
let vd = 0.3

type golden = {
  g_iterations : int;
  g_steps : (int * float * float * int * bool) list;
      (* step, update_norm, mixing, poisson_solves, restarted *)
}

let parse_golden path =
  let ic = open_in path in
  let iterations = ref (-1) in
  let steps = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else
         try Scanf.sscanf line "iterations %d" (fun k -> iterations := k)
         with Scanf.Scan_failure _ | Failure _ ->
           Scanf.sscanf line "step %d %f %f %d %d" (fun s u m p r ->
               steps := (s, u, m, p, r <> 0) :: !steps)
     done
   with End_of_file -> close_in ic);
  if !iterations < 0 then Alcotest.failf "%s: missing iterations line" path;
  { g_iterations = !iterations; g_steps = List.rev !steps }

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let check_trace_equal label (a : Scf.trace list) (b : Scf.trace list) =
  Alcotest.(check int) (label ^ ": trace length") (List.length a) (List.length b);
  List.iter2
    (fun (x : Scf.trace) (y : Scf.trace) ->
      let at = Printf.sprintf "%s: step %d" label x.Scf.step in
      Alcotest.(check int) (at ^ " index") x.Scf.step y.Scf.step;
      (* Bit-for-bit: the trace is derived from the deterministic
         iterates, so float equality is the contract, not a tolerance. *)
      Alcotest.(check bool)
        (at ^ " update_norm bit-for-bit") true
        (Float.equal x.Scf.update_norm y.Scf.update_norm);
      Alcotest.(check bool)
        (at ^ " mixing bit-for-bit") true
        (Float.equal x.Scf.mixing_factor y.Scf.mixing_factor);
      Alcotest.(check int) (at ^ " poisson solves") x.Scf.poisson_solves
        y.Scf.poisson_solves;
      Alcotest.(check bool) (at ^ " restarted") x.Scf.restarted y.Scf.restarted)
    a b

let check_solution_equal label (a : Scf.solution) (b : Scf.solution) =
  Alcotest.(check int) (label ^ ": iterations") a.Scf.iterations b.Scf.iterations;
  Alcotest.(check bool) (label ^ ": current bit-for-bit") true
    (Float.equal a.Scf.current b.Scf.current);
  Array.iteri
    (fun i u ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: potential site %d" label i)
        true
        (Float.equal u b.Scf.potential.(i)))
    a.Scf.potential;
  check_trace_equal label a.Scf.trace b.Scf.trace

let check_trace_shape label (s : Scf.solution) =
  (* Structural invariants every solve must satisfy, golden or not. *)
  Alcotest.(check int)
    (label ^ ": one entry per step")
    (s.Scf.iterations + 1)
    (List.length s.Scf.trace);
  List.iteri
    (fun k (tr : Scf.trace) ->
      Alcotest.(check int) (label ^ ": steps are chronological") k tr.Scf.step;
      Alcotest.(check bool) (label ^ ": update norm finite/positive") true
        (Float.is_finite tr.Scf.update_norm && tr.Scf.update_norm >= 0.);
      Alcotest.(check bool) (label ^ ": poisson solves > 0") true
        (tr.Scf.poisson_solves > 0))
    s.Scf.trace;
  let terminal = List.nth s.Scf.trace s.Scf.iterations in
  Alcotest.(check bool) (label ^ ": terminal mixing is 0") true
    (Float.equal terminal.Scf.mixing_factor 0.)

let check_monotone_tail label (s : Scf.solution) =
  (* The last few update norms must decrease strictly: convergence, not
     a lucky dip.  Four entries is calibrated against both golden
     devices (N=15 has a non-monotone excursion mid-run at steps 2-3;
     the tail is clean). *)
  let norms = List.map (fun (t : Scf.trace) -> t.Scf.update_norm) s.Scf.trace in
  let tail_len = min 4 (List.length norms) in
  let tail =
    List.filteri (fun i _ -> i >= List.length norms - tail_len) norms
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: tail decreasing (%.3g > %.3g)" label a b)
        true (a > b);
      check rest
    | [ _ ] | [] -> ()
  in
  check tail

let golden_cases =
  [ ("scf_n12", tiny_device (), "golden/scf_n12.trace");
    ("scf_n15", tiny_device ~gnr_index:15 (), "golden/scf_n15.trace") ]

let skip_under_scf_faults () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ]

let test_run_to_run () =
  skip_under_scf_faults ();
  List.iter
    (fun (name, p, _) ->
      let a = Scf.solve ~parallel:false p ~vg ~vd in
      let b = Scf.solve ~parallel:false p ~vg ~vd in
      check_solution_equal (name ^ " run-to-run") a b;
      check_trace_shape name a;
      check_monotone_tail name a)
    golden_cases

let test_sequential_vs_parallel () =
  skip_under_scf_faults ();
  List.iter
    (fun (name, p, _) ->
      let seq = Scf.solve ~parallel:false p ~vg ~vd in
      check_solution_equal (name ^ " seq-vs-par")
        seq
        (Scf.solve ~parallel:true p ~vg ~vd);
      with_env "GNRFET_DOMAINS" "5" (fun () ->
          check_solution_equal (name ^ " seq-vs-par domains=5") seq
            (Scf.solve ~parallel:true p ~vg ~vd)))
    golden_cases

let test_against_golden_files () =
  skip_under_scf_faults ();
  List.iter
    (fun (name, p, path) ->
      let g = parse_golden path in
      let s = Scf.solve ~parallel:false p ~vg ~vd in
      Alcotest.(check int) (name ^ ": golden iteration count") g.g_iterations
        s.Scf.iterations;
      Alcotest.(check int)
        (name ^ ": golden trace length")
        (List.length g.g_steps)
        (List.length s.Scf.trace);
      List.iter2
        (fun (gs, gu, gm, gp, gr) (tr : Scf.trace) ->
          let at = Printf.sprintf "%s golden step %d" name gs in
          Alcotest.(check int) (at ^ ": index") gs tr.Scf.step;
          (* Residuals to 1e-6 relative: same iteration structure on any
             platform, last-bit libm variation tolerated. *)
          approx_rel ~rel:1e-6 (at ^ ": update norm") gu tr.Scf.update_norm;
          Alcotest.(check bool) (at ^ ": mixing factor") true
            (Float.abs (gm -. tr.Scf.mixing_factor) < 1e-12);
          Alcotest.(check int) (at ^ ": poisson solves") gp tr.Scf.poisson_solves;
          Alcotest.(check bool) (at ^ ": restarted") gr tr.Scf.restarted)
        g.g_steps s.Scf.trace)
    golden_cases

let suite =
  [
    Alcotest.test_case "trace run-to-run reproducible" `Quick test_run_to_run;
    Alcotest.test_case "trace sequential = parallel" `Quick
      test_sequential_vs_parallel;
    Alcotest.test_case "trace matches golden files" `Quick
      test_against_golden_files;
  ]
