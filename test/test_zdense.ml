(* Unit tests for the Zdense Bigarray kernel layer: every in-place
   kernel is checked against the boxed Cmatrix reference on random
   operands, the converters are checked lossless, and the typed error
   surface (Singular, aliasing/dimension Invalid_argument) is pinned. *)

open Support

let rng = Rng.create 7231

let random_cmatrix rows cols =
  Cmatrix.init rows cols (fun _ _ ->
      { Complex.re = Rng.uniform rng (-1.) 1.; im = Rng.uniform rng (-1.) 1. })

(* Max elementwise difference, scaled by the reference's max magnitude. *)
let rel_diff (reference : Cmatrix.t) (z : Zdense.t) =
  let scale = Float.max (Cmatrix.max_abs reference) 1e-30 in
  Cmatrix.frobenius_diff reference (Zdense.to_cmatrix z) /. scale

let check_close msg reference z =
  let d = rel_diff reference z in
  if d > 1e-12 then Alcotest.failf "%s: relative difference %g > 1e-12" msg d

let test_roundtrip_lossless () =
  let c = random_cmatrix 7 5 in
  let c' = Zdense.to_cmatrix (Zdense.of_cmatrix c) in
  for i = 0 to 6 do
    for j = 0 to 4 do
      let a = Cmatrix.get c i j and b = Cmatrix.get c' i j in
      Alcotest.(check bool)
        (Printf.sprintf "entry (%d,%d) bit-for-bit" i j)
        true
        (a.Complex.re = b.Complex.re && a.Complex.im = b.Complex.im)
    done
  done

let test_elementwise_kernels () =
  let a = random_cmatrix 6 4 and b = random_cmatrix 6 4 in
  let za = Zdense.of_cmatrix a and zb = Zdense.of_cmatrix b in
  let dst = Zdense.create 6 4 in
  Zdense.add_into za zb dst;
  check_close "add_into" (Cmatrix.add a b) dst;
  Zdense.sub_into za zb dst;
  check_close "sub_into" (Cmatrix.sub a b) dst;
  let z = { Complex.re = 0.3; im = -1.1 } in
  Zdense.scale_into z za dst;
  check_close "scale_into" (Cmatrix.scale z a) dst;
  let adj = Zdense.create 4 6 in
  Zdense.adjoint_into za adj;
  check_close "adjoint_into" (Cmatrix.adjoint a) adj;
  (* shift_sub_into: dst = z*I - a, square only. *)
  let sq = random_cmatrix 5 5 in
  let zsq = Zdense.of_cmatrix sq and sdst = Zdense.create 5 5 in
  Zdense.shift_sub_into z zsq sdst;
  let reference =
    Cmatrix.sub (Cmatrix.scale z (Cmatrix.identity 5)) sq
  in
  check_close "shift_sub_into" reference sdst

let cmatrix_op trans m = match trans with Zdense.N -> m | Zdense.C -> Cmatrix.adjoint m

let test_gemm_all_flags () =
  (* dst = op(a) * op(b) for every flag pair, on non-square operands so
     a transposed-dimension slip cannot cancel out. *)
  let m = 5 and n = 4 and k = 6 in
  List.iter
    (fun (ta, tb, name) ->
      let a =
        match ta with Zdense.N -> random_cmatrix m k | Zdense.C -> random_cmatrix k m
      in
      let b =
        match tb with Zdense.N -> random_cmatrix k n | Zdense.C -> random_cmatrix n k
      in
      let dst = Zdense.create m n in
      Zdense.gemm_into ~ta ~tb (Zdense.of_cmatrix a) (Zdense.of_cmatrix b) dst;
      check_close name (Cmatrix.mul (cmatrix_op ta a) (cmatrix_op tb b)) dst)
    [
      (Zdense.N, Zdense.N, "gemm N,N");
      (Zdense.C, Zdense.N, "gemm C,N");
      (Zdense.N, Zdense.C, "gemm N,C");
      (Zdense.C, Zdense.C, "gemm C,C");
    ]

let well_conditioned n =
  (* Random complex matrix pushed to diagonal dominance. *)
  Cmatrix.init n n (fun i j ->
      let z = { Complex.re = Rng.uniform rng (-1.) 1.; im = Rng.uniform rng (-1.) 1. } in
      if i = j then { Complex.re = z.Complex.re +. 5.; im = z.Complex.im +. 1. } else z)

let test_solve_and_inverse () =
  let n = 9 in
  let a = well_conditioned n in
  let lu = Zdense.of_cmatrix a in
  let piv = Array.make n 0 in
  Zdense.lu_factor lu piv;
  (* inverse_into against the Cmatrix Gauss–Jordan reference. *)
  let inv = Zdense.create n n in
  Zdense.inverse_into lu piv inv;
  let reference = Cmatrix.inverse a in
  let d = rel_diff reference inv in
  if d > 1e-10 then Alcotest.failf "inverse_into: relative difference %g > 1e-10" d;
  (* Multi-RHS solve: A * (A^-1 B) must reproduce B. *)
  let b = random_cmatrix n 3 in
  let x = Zdense.of_cmatrix b in
  Zdense.solve_into lu piv x;
  let residual = Zdense.create n 3 in
  Zdense.gemm_into (Zdense.of_cmatrix a) x residual;
  check_close "solve_into residual" b residual

let test_singular_raises () =
  let n = 4 in
  (* Rank-deficient: two identical rows. *)
  let a =
    Cmatrix.init n n (fun i j ->
        let i = if i = n - 1 then 0 else i in
        { Complex.re = float_of_int ((i * n) + j); im = float_of_int (i - j) })
  in
  let lu = Zdense.of_cmatrix a in
  let piv = Array.make n 0 in
  match Zdense.lu_factor lu piv with
  | exception Numerics_error.Singular { solver; _ } ->
    Alcotest.(check string) "typed solver tag" "Zdense.lu_factor" solver
  | () -> Alcotest.fail "lu_factor accepted a rank-deficient matrix"

let test_inner_products () =
  let a = random_cmatrix 5 7 and b = random_cmatrix 5 7 in
  let za = Zdense.of_cmatrix a and zb = Zdense.of_cmatrix b in
  (* re_inner = Re tr(a b†), computed via the boxed API. *)
  let reference = (Cmatrix.trace (Cmatrix.mul a (Cmatrix.adjoint b))).Complex.re in
  approx_rel ~rel:1e-12 "re_inner" reference (Zdense.re_inner za zb);
  let rows = Array.make 5 0. in
  Zdense.re_inner_rows za zb rows;
  let diag = Cmatrix.diag (Cmatrix.mul a (Cmatrix.adjoint b)) in
  Array.iteri
    (fun i d -> approx_rel ~rel:1e-12 (Printf.sprintf "re_inner_rows %d" i) d.Complex.re rows.(i))
    diag;
  approx_rel ~rel:1e-12 "max_abs" (Cmatrix.max_abs a) (Zdense.max_abs za)

let test_guards () =
  let a = Zdense.create 3 3 and b = Zdense.create 3 3 in
  let piv = Array.make 3 0 in
  check_raises_invalid "gemm dst aliases operand" (fun () ->
      Zdense.gemm_into a b a);
  check_raises_invalid "gemm inner mismatch" (fun () ->
      Zdense.gemm_into a (Zdense.create 4 3) (Zdense.create 3 3));
  check_raises_invalid "adjoint aliasing" (fun () -> Zdense.adjoint_into a a);
  check_raises_invalid "lu_factor non-square" (fun () ->
      Zdense.lu_factor (Zdense.create 3 4) piv);
  check_raises_invalid "solve rhs aliases factor" (fun () ->
      Zdense.solve_into a piv a);
  check_raises_invalid "pivot array too short" (fun () ->
      Zdense.lu_factor a (Array.make 1 0));
  check_raises_invalid "inverse dst aliases factor" (fun () ->
      Zdense.inverse_into a piv a)

let suite =
  [
    Alcotest.test_case "cmatrix round-trip lossless" `Quick test_roundtrip_lossless;
    Alcotest.test_case "elementwise kernels vs Cmatrix" `Quick test_elementwise_kernels;
    Alcotest.test_case "gemm all transpose flags" `Quick test_gemm_all_flags;
    Alcotest.test_case "LU solve and inverse" `Quick test_solve_and_inverse;
    Alcotest.test_case "singular factor raises typed error" `Quick test_singular_raises;
    Alcotest.test_case "inner products and norms" `Quick test_inner_products;
    Alcotest.test_case "aliasing and dimension guards" `Quick test_guards;
  ]
