(* Tests for the gnrtbl zero-copy table format (Tbl_format,
   docs/FORMAT.md) and its Table_cache integration:

   - the corruption-matrix fuzzer: deterministic seeded mutations
     (truncation at every section boundary, single-bit flips across
     every region, zero-length files) driven through both the copying
     decoder and the full cache read path, each checked against a
     byte-position oracle for the exact typed [Cache_corrupt] reason —
     never a crash, never a silently-wrong table;
   - the differential round-trip property: random tables (including
     NaN, infinities, -0.0 and subnormals) survive write -> mmap-read
     and encode -> decode bit-for-bit, agreeing with a legacy Marshal
     round trip;
   - the golden binary fixtures: two checked-in hand-verified gnrtbl
     files re-encode byte-exactly (format drift breaks this first);
   - quarantine-failure accounting when the quarantine rename itself
     cannot succeed. *)

open Support

let tiny = tiny_device ()

let micro_grid =
  { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 3; vd_max = 0.3; n_vd = 2 }

(* --- checksum self-test ----------------------------------------------- *)

(* Pin the polynomial (CRC-32C "check" vector) and pin the accelerated
   path against the portable table-driven one, including the
   multi-lane combine (inputs over 3 KB take the interleaved route on
   x86-64).  A divergence here would fork the on-disk format between
   machines, so this runs before any fixture test. *)
let test_crc32c_self () =
  Alcotest.(check int)
    "CRC-32C(\"123456789\") = 0xE3069283" 0xE3069283
    (Crc32.string "123456789" ~pos:0 ~len:9);
  Alcotest.(check int) "empty range" 0 (Crc32.string "" ~pos:0 ~len:0);
  let n = (3 * 1024 * 5) + 137 in
  let big = String.init n (fun i -> Char.chr ((i * 131 + (i / 251)) land 0xFF)) in
  for len = 0 to 16 do
    let pos = n - ((len * 7) mod 64) - len in
    Alcotest.(check int)
      (Printf.sprintf "hw = sw (short len %d)" len)
      (Crc32.string_sw big ~pos ~len)
      (Crc32.string big ~pos ~len)
  done;
  Alcotest.(check int) "hw = sw (lane-combine length)"
    (Crc32.string_sw big ~pos:0 ~len:n)
    (Crc32.string big ~pos:0 ~len:n);
  let ba =
    Bigarray.Array1.init Bigarray.char Bigarray.c_layout n (String.get big)
  in
  Alcotest.(check int) "bigarray = string"
    (Crc32.string big ~pos:3 ~len:(n - 3))
    (Crc32.bigarray ba ~pos:3 ~len:(n - 3))

(* --- deterministic fuzz RNG (shared splitmix64 mix) ------------------- *)

let fuzz_seed =
  match Sys.getenv_opt "GNRFET_TBL_FUZZ_SEED" with
  | Some s ->
    (try int_of_string (String.trim s)
     with Failure _ ->
       Alcotest.failf "GNRFET_TBL_FUZZ_SEED must be an integer, got %S" s)
  | None -> 0x5EED_0008

(* Counter-mode splitmix64: stream k of the campaign seed.  Same audited
   mixing function as the fault harness (Fault.splitmix64), so the
   mutation schedule is reproducible from the single printed seed. *)
let make_rng seed =
  let state = ref (Int64.of_int seed) in
  fun () ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    Fault.splitmix64 !state

let rand_below rng n =
  if n <= 0 then invalid_arg "rand_below";
  Int64.to_int (Int64.rem (Int64.logand (rng ()) Int64.max_int) (Int64.of_int n))

(* --- fixture tables --------------------------------------------------- *)

let nan_pinned = Int64.float_of_bits 0x7FF8000000000000L

(* A small table exercising every special float the format must carry
   losslessly: quiet NaN (pinned bit pattern), both infinities, signed
   zero, a subnormal, and extreme magnitudes — plus failed points.
   The denormal/tiny literals are round-trip payloads, not tolerances. *)
let specials_table () =
  {
    Iv_table.key = "specials";
    (* gnrlint: allow magic-tol *)
    vg = [| -0.0; 4.9e-324; Float.max_float |];
    vd = [| neg_infinity; 0.0 |];
    current =
      [|
        (* gnrlint: allow magic-tol *)
        [| nan_pinned; 1e-300 |];
        [| infinity; -0.0 |];
        [| Float.min_float; -1.5e-6 |];
      |];
    charge =
      (* gnrlint: allow magic-tol *)
      [| [| 0.25; -0.25 |]; [| 4.9e-324; -4.9e-324 |]; [| 1e308; -1e308 |] |];
    failed_points = [ (0, 1); (2, 0) ];
  }

let bits = Int64.bits_of_float

let check_bits label a b =
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s[%d]: %Lx <> %Lx" label i (bits x) (bits b.(i)))
    a

let check_table_bits label (a : Iv_table.t) (b : Iv_table.t) =
  Alcotest.(check string) (label ^ ": key") a.Iv_table.key b.Iv_table.key;
  check_bits (label ^ ": vg") a.Iv_table.vg b.Iv_table.vg;
  check_bits (label ^ ": vd") a.Iv_table.vd b.Iv_table.vd;
  Array.iteri
    (fun i row -> check_bits (Printf.sprintf "%s: current[%d]" label i) row
        b.Iv_table.current.(i))
    a.Iv_table.current;
  Array.iteri
    (fun i row -> check_bits (Printf.sprintf "%s: charge[%d]" label i) row
        b.Iv_table.charge.(i))
    a.Iv_table.charge;
  Alcotest.(check (list (pair int int))) (label ^ ": failed_points")
    a.Iv_table.failed_points b.Iv_table.failed_points

(* --- oracle: byte position / truncation length -> typed reason -------- *)

(* Mirrors the validation order documented in tbl_format.mli (the format
   contract): size gate, magic, version, key-length bound, header CRC,
   total length, per-section CRCs. *)

let layout_of (t : Iv_table.t) ~cache_key =
  Tbl_format.Layout.make ~cache_key ~table_key:t.Iv_table.key
    ~n_vg:(Array.length t.Iv_table.vg) ~n_vd:(Array.length t.Iv_table.vd)
    ~n_failed:(List.length t.Iv_table.failed_points)

let truncation_oracle (lay : Tbl_format.Layout.t) len =
  let min_size = Tbl_format.Layout.min_file_size in
  if len < min_size then
    Robust_error.Truncated { expected = min_size; got = len }
  else if lay.Tbl_format.Layout.hdr_end + 8 > len then
    Robust_error.Truncated { expected = lay.Tbl_format.Layout.hdr_end + 8; got = len }
  else Robust_error.Truncated { expected = lay.Tbl_format.Layout.total; got = len }

(* Expected reason for a mutation that flips bit [bit] of byte [pos] of
   an otherwise-intact file.  Every byte of the file is covered by
   exactly one checksum, so every position maps to exactly one reason. *)
let flip_oracle (good : string) (lay : Tbl_format.Layout.t) ~pos ~bit =
  let got = String.length good in
  if pos < 6 then Robust_error.Bad_magic
  else if pos < 8 then begin
    let lo = Char.code good.[6] and hi = Char.code good.[7] in
    let v = lo lor (hi lsl 8) in
    let flipped = v lxor (1 lsl (bit + (8 * (pos - 6)))) in
    Robust_error.Bad_version { found = flipped }
  end
  else if pos < 16 then begin
    (* ckl (8..12) or tkl (12..16): the derived header span moves; the
       reader truncation-checks the new span before the header CRC. *)
    let field b0 =
      Char.code good.[b0] lor (Char.code good.[b0 + 1] lsl 8)
      lor (Char.code good.[b0 + 2] lsl 16) lor (Char.code good.[b0 + 3] lsl 24)
    in
    let ckl = field 8 and tkl = field 12 in
    let delta = 1 lsl (bit + (8 * ((pos - 8) mod 4))) in
    let ckl' = if pos < 12 then ckl lxor delta else ckl in
    let tkl' = if pos >= 12 then tkl lxor delta else tkl in
    let pad8 n = (n + 7) land lnot 7 in
    let hdr_end' = Tbl_format.Layout.fixed_header_size + pad8 ckl' + pad8 tkl' in
    if hdr_end' + 8 > got || hdr_end' < 0 (* flipped sign/high bits *) then
      Robust_error.Truncated { expected = hdr_end' + 8; got }
    else Robust_error.Crc_mismatch { section = "header" }
  end
  else if pos < lay.Tbl_format.Layout.hdr_end + 8 then
    (* Rest of the fixed header, the keys + padding, or the header CRC
       field itself: the header checksum catches all of them before any
       derived field is trusted. *)
    Robust_error.Crc_mismatch { section = "header" }
  else begin
    let col = [| "vg"; "vd"; "current"; "charge" |] in
    let sec = ref (Robust_error.Crc_mismatch { section = "failed_points" }) in
    Array.iteri
      (fun i off ->
        if pos >= off && pos < off + lay.Tbl_format.Layout.col_len.(i) + 8 then
          sec := Robust_error.Crc_mismatch { section = col.(i) })
      lay.Tbl_format.Layout.col_off;
    !sec
  end

let reason_str = Robust_error.corrupt_reason_to_string

let decode_reason bytes =
  match Tbl_format.decode bytes with
  | (_ : Tbl_format.view) -> None
  | exception Robust_error.Error (Robust_error.Cache_corrupt { reason; _ }) ->
    Some reason
  | exception e ->
    Alcotest.failf "decode leaked an untyped exception: %s"
      (Printexc.to_string e)

(* --- the corruption matrix -------------------------------------------- *)

let with_temp_cache f =
  let dir = Filename.temp_file "gnrfet_tblfmt" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Unix.putenv "GNRFET_TABLE_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GNRFET_TABLE_DIR" "_tables";
      Table_cache.clear_memory ();
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () ->
      Table_cache.clear_memory ();
      f dir)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let flip_bit s ~pos ~bit =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.unsafe_to_string b

(* Section boundaries of a layout: every offset at which one region of
   the file ends and the next begins.  The deterministic leg of the
   matrix truncates at each one. *)
let boundaries (lay : Tbl_format.Layout.t) =
  let b = ref [ 0; 1; 6; 8; 16; 32; 72; 80; lay.Tbl_format.Layout.hdr_end;
                lay.Tbl_format.Layout.hdr_end + 8 ] in
  Array.iteri
    (fun i off ->
      b := off :: (off + lay.Tbl_format.Layout.col_len.(i))
           :: (off + lay.Tbl_format.Layout.col_len.(i) + 8) :: !b)
    lay.Tbl_format.Layout.col_off;
  b := lay.Tbl_format.Layout.failed_off
       :: (lay.Tbl_format.Layout.failed_off + lay.Tbl_format.Layout.failed_len)
       :: !b;
  List.sort_uniq compare
    (List.filter (fun x -> x < lay.Tbl_format.Layout.total) !b)

let min_fuzz_iterations = 200

let test_corruption_matrix () =
  skip_if_fault_armed [ "table_cache.read" ];
  with_temp_cache @@ fun _dir ->
  let obs = Obs.create ~enabled:true () in
  let table = specials_table () in
  let key = Table_cache.key ~grid:micro_grid tiny in
  let good = Tbl_format.encode ~cache_key:key table in
  let lay = layout_of table ~cache_key:key in
  Alcotest.(check int) "layout total matches encoder" (String.length good)
    lay.Tbl_format.Layout.total;
  let path = Table_cache.gnrtbl_path key in
  let check_case ~label ~expected bytes =
    (* Decoder: the exact typed reason, never an untyped exception. *)
    (match decode_reason bytes with
    | Some reason ->
      if reason <> expected then
        Alcotest.failf "%s: expected %s, got %s" label (reason_str expected)
          (reason_str reason)
    | None -> Alcotest.failf "%s: mutation decoded as valid" label);
    (* Full cache path: quarantined with the same reason, lookup a miss. *)
    write_file path bytes;
    Table_cache.clear_memory ();
    let q0 = Obs.counter_value ~obs "table_cache.corrupt_quarantined" in
    (match Table_cache.probe_disk ~grid:micro_grid ~obs tiny with
    | Table_cache.Corrupt reason ->
      if reason <> expected then
        Alcotest.failf "%s: probe_disk expected %s, got %s" label
          (reason_str expected) (reason_str reason)
    | Table_cache.Table _ | Table_cache.Legacy _ ->
      Alcotest.failf "%s: probe_disk accepted a mutated file" label
    | Table_cache.Absent | Table_cache.Stale ->
      Alcotest.failf "%s: probe_disk missed the corruption" label
    | exception e ->
      Alcotest.failf "%s: probe_disk leaked %s" label (Printexc.to_string e));
    Alcotest.(check int) (label ^ ": quarantined") (q0 + 1)
      (Obs.counter_value ~obs "table_cache.corrupt_quarantined");
    if Sys.file_exists (path ^ ".corrupt") then Sys.remove (path ^ ".corrupt");
    (* lookup never raises and degrades to a miss (file already gone). *)
    Table_cache.clear_memory ();
    match Table_cache.lookup ~grid:micro_grid ~obs tiny with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: lookup returned a table" label
    | exception e ->
      Alcotest.failf "%s: lookup leaked %s" label (Printexc.to_string e)
  in
  let mutations = ref 0 in
  let run () =
    (* Zero-length and sub-minimum files. *)
    check_case ~label:"empty file"
      ~expected:
        (Robust_error.Truncated
           { expected = Tbl_format.Layout.min_file_size; got = 0 })
      "";
    incr mutations;
    (* Deterministic leg: truncation at every section boundary. *)
    List.iter
      (fun len ->
        incr mutations;
        check_case
          ~label:(Printf.sprintf "truncated at boundary %d" len)
          ~expected:(truncation_oracle lay len)
          (String.sub good 0 len))
      (boundaries lay);
    (* Randomized leg: seeded truncations and single-bit flips across
       every region, each with an exact expected reason. *)
    let rng = make_rng fuzz_seed in
    let total = String.length good in
    while !mutations < min_fuzz_iterations + 16 do
      incr mutations;
      match rand_below rng 4 with
      | 0 ->
        let len = rand_below rng total in
        check_case
          ~label:(Printf.sprintf "fuzz truncate %d" len)
          ~expected:(truncation_oracle lay len)
          (String.sub good 0 len)
      | 1 ->
        (* Bias toward the header: it has the densest decision logic. *)
        let pos = rand_below rng (lay.Tbl_format.Layout.hdr_end + 8) in
        let bit = rand_below rng 8 in
        check_case
          ~label:(Printf.sprintf "fuzz header flip %d.%d" pos bit)
          ~expected:(flip_oracle good lay ~pos ~bit)
          (flip_bit good ~pos ~bit)
      | _ ->
        let pos = rand_below rng total in
        let bit = rand_below rng 8 in
        check_case
          ~label:(Printf.sprintf "fuzz flip %d.%d" pos bit)
          ~expected:(flip_oracle good lay ~pos ~bit)
          (flip_bit good ~pos ~bit)
    done;
    (* The intact bytes still read back, exactly. *)
    write_file path good;
    Table_cache.clear_memory ();
    match Table_cache.lookup ~grid:micro_grid ~obs tiny with
    | Some t -> check_table_bits "post-fuzz intact read" table t
    | None -> Alcotest.fail "intact file must read back after the fuzz run"
  in
  (try run ()
   with e ->
     Printf.eprintf
       "\ntbl_format corruption matrix failed after %d mutations; reproduce \
        with GNRFET_TBL_FUZZ_SEED=%d\n%!"
       !mutations fuzz_seed;
     raise e);
  if !mutations < min_fuzz_iterations then
    Alcotest.failf "only %d mutations exercised (want >= %d)" !mutations
      min_fuzz_iterations

(* --- differential round-trip ------------------------------------------ *)

let test_roundtrip_specials () =
  let table = specials_table () in
  let cache_key = "rt|specials" in
  let enc = Tbl_format.encode ~cache_key table in
  (* encode -> decode (copying path). *)
  let v = Tbl_format.decode enc in
  Alcotest.(check string) "cache key survives" cache_key
    v.Tbl_format.v_cache_key;
  Alcotest.(check int) "version" Tbl_format.version v.Tbl_format.v_version;
  check_table_bits "decode" table (Tbl_format.to_table v);
  (* write -> read (mmap path). *)
  let path = Filename.temp_file "gnrfet_tblfmt_rt" ".gnrtbl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Tbl_format.write ~path ~cache_key table;
  let vm = Tbl_format.read ~path in
  check_table_bits "mmap read" table (Tbl_format.to_table vm);
  (* The mapped views expose the same bits with zero conversion. *)
  Alcotest.(check bool) "mapped NaN bit pattern intact" true
    (bits (Bigarray.Array1.get vm.Tbl_format.v_current 0) = bits nan_pinned);
  Alcotest.(check bool) "mapped -0.0 keeps its sign" true
    (bits (Bigarray.Array1.get vm.Tbl_format.v_vg 0) = bits (-0.0));
  (* Differential: the gnrtbl round trip agrees with a Marshal round
     trip of the same table, field for field, bit for bit. *)
  let marshaled : Iv_table.t =
    Marshal.from_string (Marshal.to_string table []) 0
  in
  check_table_bits "marshal agreement" marshaled (Tbl_format.to_table vm)

let table_gen =
  QCheck.Gen.(
    let special =
      (* round-trip payloads, not tolerances.  gnrlint: allow magic-tol *)
      oneofl
        (* gnrlint: allow magic-tol *)
        [ nan_pinned; infinity; neg_infinity; -0.0; 0.0; 4.9e-324;
          -4.9e-324; Float.max_float; -.Float.max_float; Float.min_float ]
    in
    let value = frequency [ (4, float); (1, special) ] in
    let* n_vg = 1 -- 6 in
    let* n_vd = 1 -- 5 in
    let* vg = array_size (return n_vg) value in
    let* vd = array_size (return n_vd) value in
    let matrix = array_size (return n_vg) (array_size (return n_vd) value) in
    let* current = matrix in
    let* charge = matrix in
    let* n_failed = 0 -- 4 in
    let* failed =
      list_size (return n_failed)
        (pair (int_bound (n_vg - 1)) (int_bound (n_vd - 1)))
    in
    let* keylen = 0 -- 40 in
    let* key = string_size ~gen:printable (return keylen) in
    return
      { Iv_table.key; vg; vd; current; charge;
        failed_points = List.sort_uniq compare failed })

let prop_roundtrip =
  qtest ~count:120 "gnrtbl round trip is bit-exact (random tables)"
    (QCheck.make table_gen) (fun table ->
      let cache_key = "rt|" ^ table.Iv_table.key in
      let v = Tbl_format.decode (Tbl_format.encode ~cache_key table) in
      let back = Tbl_format.to_table v in
      check_table_bits "qcheck roundtrip" table back;
      (* And agreement with the legacy Marshal layer's round trip. *)
      let m : Iv_table.t = Marshal.from_string (Marshal.to_string table []) 0 in
      check_table_bits "qcheck marshal agreement" m back;
      true)

let test_encode_rejects_ragged () =
  let t = specials_table () in
  let bad = { t with Iv_table.current = [| [| 1.0 |]; [| 2.0; 3.0 |]; [| 4.0; 5.0 |] |] } in
  check_raises_invalid "ragged matrix rejected" (fun () ->
      ignore (Tbl_format.encode ~cache_key:"k" bad : string))

(* --- golden binary fixtures ------------------------------------------- *)

(* test/golden/tiny.gnrtbl — hand-verified 304-byte fixture; regenerate
   with `dune exec test/gen_golden.exe` only after an INTENTIONAL format
   change (and bump Tbl_format.version).  Hex dump of its header:

     00000000: 474e 5254 424c 0100 1500 0000 0b00 0000  GNRTBL..........
     00000010: 0200 0000 0300 0000 0000 0000 0400 0000  ................
     00000020: 3001 0000 0000 0000 8000 0000 0000 0000  0...............
     00000030: 9800 0000 0000 0000 b800 0000 0000 0000  ................
     00000040: f000 0000 0000 0000 2801 0000 0000 0000  ........(.......
     00000050: 676f 6c64 656e 2d63 6163 6865 2d6b 6579  golden-cache-key
     00000060: 2d74 696e 7900 0000 676f 6c64 656e 2d74  -tiny...golden-t
     00000070: 696e 7900 0000 0000 7ef9 fbc1 0000 0000  iny.....~.......

   Reading off the fields (all little-endian, docs/FORMAT.md): magic
   "GNRTBL"; version 1; ckl 0x15 = 21 ("golden-cache-key-tiny"); tkl
   0x0b = 11 ("golden-tiny"); n_vg 2; n_vd 3; n_failed 0; n_cols 4;
   total 0x130 = 304; column offsets 0x80/0x98/0xb8/0xf0 (vg 2x8B,
   vd 3x8B, current and charge 6x8B, each +8B CRC field); failed-points
   offset 0x128; zero-padded keys at 0x50 and 0x68; header CRC-32C
   field 0xc1fbf97e at 0x78. *)

let golden_tiny_table () =
  {
    Iv_table.key = "golden-tiny";
    vg = [| 0.0; 0.5 |];
    vd = [| 0.0; 0.25; 0.5 |];
    current = [| [| 1e-9; 2e-9; 3e-9 |]; [| 4e-9; 5e-9; 6e-9 |] |];
    charge = [| [| -1e-19; -2e-19; -3e-19 |]; [| -4e-19; -5e-19; -6e-19 |] |];
    failed_points = [];
  }

let golden_tiny_cache_key = "golden-cache-key-tiny"

let golden_specials_cache_key = "golden-cache-key-specials"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_path name = Filename.concat "golden" name

let check_golden ~name ~cache_key table =
  let file = read_file (golden_path name) in
  (* 1. The checked-in bytes decode to exactly the expected table. *)
  let v = Tbl_format.decode ~path:name file in
  Alcotest.(check string) (name ^ ": cache key") cache_key
    v.Tbl_format.v_cache_key;
  check_table_bits (name ^ ": decoded") table (Tbl_format.to_table v);
  (* 2. Re-encoding the decoded table reproduces the file byte for
     byte: any encoder drift against the on-disk population fails here
     before it ships. *)
  Alcotest.(check int) (name ^ ": length") (String.length file)
    (String.length (Tbl_format.encode ~cache_key table));
  Alcotest.(check bool) (name ^ ": byte-exact re-encode") true
    (String.equal file (Tbl_format.encode ~cache_key table));
  v

let test_golden_tiny () =
  let v =
    check_golden ~name:"tiny.gnrtbl" ~cache_key:golden_tiny_cache_key
      (golden_tiny_table ())
  in
  (* Spot-check the hand-verified header fields against the raw file. *)
  let file = read_file (golden_path "tiny.gnrtbl") in
  Alcotest.(check string) "magic" "GNRTBL" (String.sub file 0 6);
  Alcotest.(check int) "version word" Tbl_format.version
    (Char.code file.[6] lor (Char.code file.[7] lsl 8));
  Alcotest.(check int) "ckl" (String.length golden_tiny_cache_key)
    (Char.code file.[8] lor (Char.code file.[9] lsl 8));
  Alcotest.(check int) "n_vg" 2 (Char.code file.[16]);
  Alcotest.(check int) "n_vd" 3 (Char.code file.[20]);
  Alcotest.(check int) "n_failed" 0 (Char.code file.[24]);
  Alcotest.(check int) "n_cols" 4 (Char.code file.[28]);
  Alcotest.(check int) "total length field" (String.length file)
    (Char.code file.[32] lor (Char.code file.[33] lsl 8)
    lor (Char.code file.[34] lsl 16));
  Alcotest.(check int) "view n_vg" 2 v.Tbl_format.v_n_vg

let test_golden_specials () =
  ignore
    (check_golden ~name:"specials.gnrtbl" ~cache_key:golden_specials_cache_key
       (specials_table ())
      : Tbl_format.view)

(* --- quarantine failure accounting ------------------------------------ *)

let test_quarantine_rename_failure_counted () =
  skip_if_fault_armed [ "table_cache.read" ];
  with_temp_cache @@ fun _dir ->
  let obs = Obs.create ~enabled:true () in
  let key = Table_cache.key ~grid:micro_grid tiny in
  let path = Table_cache.gnrtbl_path key in
  write_file path (String.make 96 'x');
  (* Renaming a regular file onto an existing directory fails (EISDIR)
     even for root, so this pins the quarantine-rename failure path
     without needing an unwritable cache directory. *)
  Sys.mkdir (path ^ ".corrupt") 0o755;
  (match Table_cache.lookup ~grid:micro_grid ~obs tiny with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupt file must read as a miss"
  | exception e ->
    Alcotest.failf "quarantine failure leaked %s" (Printexc.to_string e));
  Alcotest.(check int) "corruption still counted" 1
    (Obs.counter_value ~obs "table_cache.corrupt_quarantined");
  Alcotest.(check int) "per-reason counter still bumped" 1
    (Obs.counter_value ~obs "table_cache.corrupt.bad_magic");
  Alcotest.(check int) "failed rename counted" 1
    (Obs.counter_value ~obs "table_cache.quarantine_failed");
  Alcotest.(check bool) "file left in place (not renamed)" true
    (Sys.file_exists path)

(* --- probe_disk outcome taxonomy -------------------------------------- *)

let test_probe_disk_outcomes () =
  skip_if_fault_armed [ "table_cache.read" ];
  with_temp_cache @@ fun _dir ->
  let obs = Obs.create ~enabled:true () in
  let key = Table_cache.key ~grid:micro_grid tiny in
  let table = specials_table () in
  let is_absent = function Table_cache.Absent -> true | _ -> false in
  Alcotest.(check bool) "no file -> Absent" true
    (is_absent (Table_cache.probe_disk ~grid:micro_grid ~obs tiny));
  (* gnrtbl stored under a different cache key -> Stale, untouched. *)
  write_file (Table_cache.gnrtbl_path key)
    (Tbl_format.encode ~cache_key:"some-other-key" table);
  (match Table_cache.probe_disk ~grid:micro_grid ~obs tiny with
  | Table_cache.Stale -> ()
  | _ -> Alcotest.fail "wrong-key gnrtbl must probe as Stale");
  Alcotest.(check bool) "stale file left in place" true
    (Sys.file_exists (Table_cache.gnrtbl_path key));
  (* Correct key -> Table, bit-exact. *)
  write_file (Table_cache.gnrtbl_path key)
    (Tbl_format.encode ~cache_key:key table);
  (match Table_cache.probe_disk ~grid:micro_grid ~obs tiny with
  | Table_cache.Table t -> check_table_bits "probe Table" table t
  | _ -> Alcotest.fail "matching gnrtbl must probe as Table");
  (* Legacy Marshal fallback (gnrtbl absent) -> Legacy. *)
  Sys.remove (Table_cache.gnrtbl_path key);
  let oc = open_out_bin (Table_cache.legacy_path key) in
  Marshal.to_channel oc (key, table) [];
  close_out oc;
  match Table_cache.probe_disk ~grid:micro_grid ~obs tiny with
  | Table_cache.Legacy t -> check_table_bits "probe Legacy" table t
  | _ -> Alcotest.fail "legacy Marshal file must probe as Legacy"

let suite =
  [
    Alcotest.test_case "crc32c self-test (vector + hw/sw agreement)" `Quick
      test_crc32c_self;
    Alcotest.test_case "corruption matrix (seeded fuzz)" `Quick
      test_corruption_matrix;
    Alcotest.test_case "round trip preserves special floats" `Quick
      test_roundtrip_specials;
    prop_roundtrip;
    Alcotest.test_case "encode rejects ragged matrices" `Quick
      test_encode_rejects_ragged;
    Alcotest.test_case "golden fixture: tiny" `Quick test_golden_tiny;
    Alcotest.test_case "golden fixture: specials" `Quick test_golden_specials;
    Alcotest.test_case "quarantine rename failure counted" `Quick
      test_quarantine_rename_failure_counted;
    Alcotest.test_case "probe_disk outcome taxonomy" `Quick
      test_probe_disk_outcomes;
  ]
