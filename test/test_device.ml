(* Integration tests of the self-consistent device solver and the lookup
   tables, on a reduced (6 nm, coarse-energy-grid) device so the whole
   suite stays fast. *)

open Support

let tiny = tiny_device ()

let test_scf_converges () =
  let s = Scf.solve tiny ~vg:0.3 ~vd:0.3 in
  Alcotest.(check bool) "converged" true (s.Scf.residual <= 1e-3);
  Alcotest.(check bool) "few iterations" true (s.Scf.iterations < 120)

let test_scf_zero_vd_zero_current () =
  let s = Scf.solve tiny ~vg:0.4 ~vd:0. in
  Alcotest.(check bool) "I(vd=0) ~ 0" true (Float.abs s.Scf.current < 1e-12)

let test_scf_ambipolar_minimum () =
  let vd = 0.4 in
  let vgs = Vec.linspace 0. 0.6 13 in
  let init = ref None in
  let ids =
    Array.map
      (fun vg ->
        let s = Scf.solve ?init:!init tiny ~vg ~vd in
        init := Some s.Scf.potential;
        s.Scf.current)
      vgs
  in
  let k = Vec.argmin ids in
  (* Minimum leakage near VG = VD/2 (Sec 2 of the paper). *)
  approx ~eps:0.13 "min near VD/2" (vd /. 2.) vgs.(k);
  (* Current rises on both sides (ambipolar). *)
  Alcotest.(check bool) "electron branch rises" true (ids.(12) > 3. *. ids.(k));
  Alcotest.(check bool) "hole branch rises" true (ids.(0) > 3. *. ids.(k))

let test_scf_electron_branch_monotone () =
  let vd = 0.4 in
  let init = ref None in
  let prev = ref 0. in
  Array.iter
    (fun vg ->
      let s = Scf.solve ?init:!init tiny ~vg ~vd in
      init := Some s.Scf.potential;
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %.2f" vg)
        true
        (s.Scf.current >= !prev *. 0.98);
      prev := s.Scf.current)
    [| 0.3; 0.4; 0.5; 0.6; 0.7 |]

let test_scf_charge_sign_flip () =
  let vd = 0.3 in
  let hole_side = Scf.solve tiny ~vg:(-0.1) ~vd in
  let electron_side = Scf.solve tiny ~vg:0.6 ~vd in
  Alcotest.(check bool) "holes positive charge" true (hole_side.Scf.charge > 0.);
  Alcotest.(check bool) "electrons negative charge" true (electron_side.Scf.charge < 0.)

let test_scf_gate_offset_shift () =
  (* I(vg; offset) = I(vg + offset; 0) to table accuracy. *)
  let shifted = { tiny with Params.gate_offset = 0.15 } in
  let a = Scf.solve tiny ~vg:0.55 ~vd:0.4 in
  let b = Scf.solve shifted ~vg:0.4 ~vd:0.4 in
  approx_rel ~rel:0.05 "offset equals vg shift" a.Scf.current b.Scf.current

let test_scf_impurity_barrier () =
  (* A negative impurity near the source raises the conduction band and
     suppresses the electron on-current.  The impurity is placed
     proportionally into this 6 nm test channel (the paper-scale default
     position would sit mid-channel here, where the ambipolar hole branch
     can compensate). *)
  let dirty =
    {
      tiny with
      Params.impurities =
        [ { Impurity.charge = -2.; position = 0.8e-9; distance = 0.4e-9 } ];
    }
  in
  let clean_sol = Scf.solve tiny ~vg:0.5 ~vd:0.4 in
  let dirty_sol = Scf.solve dirty ~vg:0.5 ~vd:0.4 in
  let clean_peak = Vec.maximum (Scf.conduction_band_profile tiny clean_sol) in
  let dirty_peak = Vec.maximum (Scf.conduction_band_profile dirty dirty_sol) in
  Alcotest.(check bool) "barrier raised" true (dirty_peak > clean_peak +. 0.05);
  Alcotest.(check bool) "current suppressed" true
    (dirty_sol.Scf.current < 0.75 *. clean_sol.Scf.current)

let test_scf_warm_start_consistency () =
  let cold = Scf.solve tiny ~vg:0.45 ~vd:0.35 in
  let neighbour = Scf.solve tiny ~vg:0.4 ~vd:0.35 in
  let warm = Scf.solve ~init:neighbour.Scf.potential tiny ~vg:0.45 ~vd:0.35 in
  approx_rel ~rel:0.03 "same answer from warm start" cold.Scf.current warm.Scf.current

let tiny_grid =
  { Iv_table.vg_min = -0.1; vg_max = 0.8; n_vg = 10; vd_max = 0.6; n_vd = 5 }

let test_iv_table_roundtrip () =
  let t = Iv_table.generate ~grid:tiny_grid tiny in
  (* Node values are reproduced exactly by the interpolant. *)
  let vg = t.Iv_table.vg.(4) and vd = t.Iv_table.vd.(2) in
  approx_rel ~rel:1e-12 "node value" t.Iv_table.current.(4).(2)
    (Iv_table.current_at t ~vg ~vd);
  (* Interpolated values sit between neighbours. *)
  let mid = Iv_table.current_at t ~vg:(0.5 *. (t.Iv_table.vg.(4) +. t.Iv_table.vg.(5))) ~vd in
  let lo = Float.min t.Iv_table.current.(4).(2) t.Iv_table.current.(5).(2) in
  let hi = Float.max t.Iv_table.current.(4).(2) t.Iv_table.current.(5).(2) in
  Alcotest.(check bool) "between nodes" true (mid >= lo -. 1e-18 && mid <= hi +. 1e-18)

let test_iv_table_derivative_consistency () =
  let t = Iv_table.generate ~grid:tiny_grid tiny in
  let vg = 0.35 and vd = 0.3 in
  let h = 1e-4 in
  let fd =
    (Iv_table.charge_at t ~vg:(vg +. h) ~vd -. Iv_table.charge_at t ~vg:(vg -. h) ~vd)
    /. (2. *. h)
  in
  approx_rel ~rel:1e-6 "dq/dvg finite difference" fd (Iv_table.dq_dvg t ~vg ~vd)

let test_iv_table_negative_vd_rejected () =
  let t = Iv_table.generate ~grid:tiny_grid tiny in
  check_raises_invalid "vd < 0" (fun () ->
      ignore (Iv_table.current_at t ~vg:0.3 ~vd:(-0.1)))

let test_vt_extract_from_curve_linear () =
  (* For an exactly linear branch I = g (V - VT), the extrapolation method
     recovers VT exactly. *)
  let vt_true = 0.27 in
  let vg = Vec.linspace 0.3 0.8 11 in
  let id = Array.map (fun v -> 2e-6 *. (v -. vt_true)) vg in
  approx ~eps:1e-6 "linear branch" vt_true (Vt.extract_from_curve ~vg ~id)

let test_vt_extract_from_table () =
  let t = Iv_table.generate ~grid:tiny_grid tiny in
  let vt = Vt.extract_from_table t in
  Alcotest.(check bool) "vt in a sensible window" true (vt > 0.1 && vt < 0.65)

let with_temp_cache f =
  let dir = Filename.temp_file "gnrfet_tables" "" in
  Sys.remove dir;
  Unix.putenv "GNRFET_TABLE_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GNRFET_TABLE_DIR" "_tables";
      Table_cache.clear_memory ();
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Table_cache.clear_memory ();
      f ())

let test_table_cache_roundtrip () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  with_temp_cache (fun () ->
      Alcotest.(check bool) "miss before" true
        (Option.is_none (Table_cache.lookup ~grid:tiny_grid tiny));
      let t1 = Table_cache.get ~grid:tiny_grid tiny in
      (* Second get: memory hit, same values. *)
      let t2 = Table_cache.get ~grid:tiny_grid tiny in
      approx "memory hit" t1.Iv_table.current.(3).(2) t2.Iv_table.current.(3).(2);
      (* Clear memory: disk hit. *)
      Table_cache.clear_memory ();
      match Table_cache.lookup ~grid:tiny_grid tiny with
      | Some t3 ->
        approx "disk hit" t1.Iv_table.current.(3).(2) t3.Iv_table.current.(3).(2)
      | None -> Alcotest.fail "expected a disk hit")

let test_table_cache_distinguishes_devices () =
  with_temp_cache (fun () ->
      let t9 = Table_cache.get ~grid:tiny_grid (tiny_device ~gnr_index:9 ()) in
      let t12 = Table_cache.get ~grid:tiny_grid tiny in
      Alcotest.(check bool) "different devices differ" true
        (t9.Iv_table.current.(8).(3) <> t12.Iv_table.current.(8).(3)))

let test_scf_parallel_equivalence () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ];
  (* The full SCF fixed point must be bit-for-bit identical whether the
     energy loop runs sequentially or across the domain pool: same
     iterate sequence, same converged potential, current and charge. *)
  let with_env key value f =
    let old = Sys.getenv_opt key in
    Unix.putenv key value;
    Fun.protect
      ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
      f
  in
  let seq = Scf.solve ~parallel:false tiny ~vg:0.4 ~vd:0.3 in
  let check_same label (par : Scf.solution) =
    Alcotest.(check int) (label ^ ": iterations") seq.Scf.iterations
      par.Scf.iterations;
    Alcotest.(check bool) (label ^ ": current bit-for-bit") true
      (par.Scf.current = seq.Scf.current);
    Alcotest.(check bool) (label ^ ": total charge bit-for-bit") true
      (par.Scf.charge = seq.Scf.charge);
    Array.iteri
      (fun i u ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: potential site %d" label i)
          true
          (u = seq.Scf.potential.(i)))
      par.Scf.potential
  in
  check_same "parallel default pool" (Scf.solve ~parallel:true tiny ~vg:0.4 ~vd:0.3);
  with_env "GNRFET_DOMAINS" "5" (fun () ->
      check_same "GNRFET_DOMAINS=5"
        (Scf.solve ~parallel:true tiny ~vg:0.4 ~vd:0.3))

let test_table_cache_hit_miss_accounting () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  (* Satellite of the observability PR: the second identical get_many
     must be 100% cache hits — zero misses, zero Iv_table generations —
     and the obs counters are the proof. *)
  with_temp_cache (fun () ->
      let old = Obs.enabled Obs.global in
      Obs.set_enabled Obs.global true;
      Fun.protect ~finally:(fun () -> Obs.set_enabled Obs.global old)
      @@ fun () ->
      let devices = [ tiny; tiny_device ~gnr_index:9 () ] in
      let read name = Obs.counter_value name in
      let snap () =
        ( read "table_cache.memory_hits",
          read "table_cache.disk_hits",
          read "table_cache.misses",
          read "table_cache.generates",
          read "iv_table.generates" )
      in
      let mh0, dh0, m0, g0, ivg0 = snap () in
      let first = Table_cache.get_many ~grid:tiny_grid devices in
      let mh1, dh1, m1, g1, ivg1 = snap () in
      (* Fresh batch: one miss + one generate per device, plus one memory
         hit each when the result list is assembled. *)
      Alcotest.(check int) "first: misses" 2 (m1 - m0);
      Alcotest.(check int) "first: cache generates" 2 (g1 - g0);
      Alcotest.(check int) "first: iv_table generates" 2 (ivg1 - ivg0);
      Alcotest.(check int) "first: disk hits" 0 (dh1 - dh0);
      Alcotest.(check int) "first: memory hits" 2 (mh1 - mh0);
      let second = Table_cache.get_many ~grid:tiny_grid devices in
      let mh2, dh2, m2, g2, ivg2 = snap () in
      (* Identical request: every lookup is a memory hit (two per device:
         the missing-filter probe and the result-assembly get). *)
      Alcotest.(check int) "second: zero misses" 0 (m2 - m1);
      Alcotest.(check int) "second: zero cache generates" 0 (g2 - g1);
      Alcotest.(check int) "second: zero iv_table generates" 0 (ivg2 - ivg1);
      Alcotest.(check int) "second: zero disk hits" 0 (dh2 - dh1);
      Alcotest.(check int) "second: memory hits" 4 (mh2 - mh1);
      (* And the cached tables are the same values. *)
      List.iter2
        (fun (a : Iv_table.t) (b : Iv_table.t) ->
          approx "same table values" a.Iv_table.current.(3).(2)
            b.Iv_table.current.(3).(2))
        first second)

let test_get_many_dedups_duplicates () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  (* PR 5 satellite: duplicate Params.t entries in one batch are
     generated once and counted in table_cache.deduped, and the result
     list still matches the request order. *)
  with_temp_cache (fun () ->
      let old = Obs.enabled Obs.global in
      Obs.set_enabled Obs.global true;
      Fun.protect ~finally:(fun () -> Obs.set_enabled Obs.global old)
      @@ fun () ->
      let other = tiny_device ~gnr_index:9 () in
      let read name = Obs.counter_value name in
      let d0 = read "table_cache.deduped" and g0 = read "table_cache.generates" in
      let results =
        Table_cache.get_many ~grid:tiny_grid [ tiny; other; tiny; tiny ]
      in
      Alcotest.(check int) "two duplicates dropped" 2
        (read "table_cache.deduped" - d0);
      Alcotest.(check int) "only the two distinct devices generated" 2
        (read "table_cache.generates" - g0);
      Alcotest.(check int) "result per request" 4 (List.length results);
      match results with
      | [ a; b; c; d ] ->
        Alcotest.(check string) "order: dup of first" a.Iv_table.key
          c.Iv_table.key;
        Alcotest.(check string) "order: dup of first (2)" a.Iv_table.key
          d.Iv_table.key;
        Alcotest.(check bool) "order: second distinct" true
          (b.Iv_table.key <> a.Iv_table.key)
      | _ -> Alcotest.fail "unreachable")

let test_params_cache_key_stability () =
  let a = Params.cache_key (Params.default ()) in
  let b = Params.cache_key (Params.default ()) in
  Alcotest.(check string) "stable" a b;
  let c = Params.cache_key (Params.with_impurity_charge (Params.default ()) 1.) in
  Alcotest.(check bool) "impurity changes key" true (a <> c)

let suite =
  [
    Alcotest.test_case "scf converges" `Quick test_scf_converges;
    Alcotest.test_case "zero vd, zero current" `Quick test_scf_zero_vd_zero_current;
    Alcotest.test_case "ambipolar minimum" `Quick test_scf_ambipolar_minimum;
    Alcotest.test_case "electron branch monotone" `Quick test_scf_electron_branch_monotone;
    Alcotest.test_case "charge sign flip" `Quick test_scf_charge_sign_flip;
    Alcotest.test_case "gate offset shift" `Quick test_scf_gate_offset_shift;
    Alcotest.test_case "impurity barrier" `Quick test_scf_impurity_barrier;
    Alcotest.test_case "warm start consistency" `Quick test_scf_warm_start_consistency;
    Alcotest.test_case "iv table roundtrip" `Quick test_iv_table_roundtrip;
    Alcotest.test_case "iv table derivatives" `Quick test_iv_table_derivative_consistency;
    Alcotest.test_case "iv table vd<0 rejected" `Quick test_iv_table_negative_vd_rejected;
    Alcotest.test_case "vt from linear curve" `Quick test_vt_extract_from_curve_linear;
    Alcotest.test_case "vt from table" `Quick test_vt_extract_from_table;
    Alcotest.test_case "table cache roundtrip" `Quick test_table_cache_roundtrip;
    Alcotest.test_case "table cache device keying" `Quick test_table_cache_distinguishes_devices;
    Alcotest.test_case "table cache hit/miss accounting" `Quick
      test_table_cache_hit_miss_accounting;
    Alcotest.test_case "get_many dedups duplicates" `Quick
      test_get_many_dedups_duplicates;
    Alcotest.test_case "cache key stability" `Quick test_params_cache_key_stability;
    Alcotest.test_case "scf parallel equivalence" `Quick test_scf_parallel_equivalence;
  ]
