(* Property tests for the gnrfet_obs observability layer: counter
   monotonicity, span nesting (including exception unwinding),
   snapshot/reset round-trips, JSON determinism, and the central
   guarantee that disabling the registry changes NO numerical result. *)

open Support

let fresh () = Obs.create ~enabled:true ()

(* --- counters ------------------------------------------------------- *)

let prop_counter_monotone =
  qtest ~count:200 "counter value is the sum of non-negative deltas; monotone"
    QCheck.(list (int_range (-50) 50))
    (fun deltas ->
      let obs = fresh () in
      let c = Obs.Counter.make ~obs "prop.counter" in
      let expected = ref 0 in
      let prev = ref 0 in
      List.iter
        (fun d ->
          Obs.Counter.add c d;
          if d >= 0 then expected := !expected + d;
          let v = Obs.Counter.value c in
          if v < !prev then QCheck.Test.fail_reportf "counter decreased";
          prev := v)
        deltas;
      Obs.Counter.value c = !expected)

let test_counter_interning () =
  let obs = fresh () in
  let a = Obs.Counter.make ~obs "shared.name" in
  let b = Obs.Counter.make ~obs "shared.name" in
  Obs.Counter.incr a;
  Obs.Counter.add b 2;
  Alcotest.(check int) "two makes share one cell" 3 (Obs.Counter.value a);
  Alcotest.(check int) "by-name readback" 3 (Obs.counter_value ~obs "shared.name");
  Alcotest.(check int) "unregistered name reads 0" 0
    (Obs.counter_value ~obs "never.registered")

let test_disabled_counter_noop () =
  let obs = Obs.create ~enabled:false () in
  let c = Obs.Counter.make ~obs "disabled.counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "disabled ops count nothing" 0 (Obs.Counter.value c);
  Obs.set_enabled obs true;
  Obs.Counter.incr c;
  Alcotest.(check int) "re-enable resumes from retained value" 1
    (Obs.Counter.value c)

(* --- spans ---------------------------------------------------------- *)

exception Probe

let test_span_nesting () =
  let obs = fresh () in
  Alcotest.(check int) "depth 0 outside" 0 (Obs.Span.depth obs);
  let inner_stack = ref [] in
  Obs.Span.run ~obs "outer" (fun () ->
      Obs.Span.run ~obs "inner" (fun () ->
          inner_stack := Obs.Span.stack obs;
          Alcotest.(check int) "depth 2 inside" 2 (Obs.Span.depth obs)));
  Alcotest.(check (list string)) "stack innermost first" [ "inner"; "outer" ]
    !inner_stack;
  Alcotest.(check int) "depth 0 after" 0 (Obs.Span.depth obs);
  (* The span aggregates into a same-named timer. *)
  let snap = Obs.snapshot ~obs () in
  let outer = List.assoc "outer" snap.Obs.snap_timers in
  Alcotest.(check int) "span recorded one timer call" 1 outer.Obs.t_calls

let test_span_exception_unwinds () =
  let obs = fresh () in
  (match
     Obs.Span.run ~obs "outer" (fun () ->
         Obs.Span.run ~obs "boom" (fun () -> raise Probe))
   with
  | exception Probe -> ()
  | () -> Alcotest.fail "expected Probe to propagate");
  Alcotest.(check int) "depth back to 0 after exception" 0 (Obs.Span.depth obs);
  Alcotest.(check (list string)) "stack empty after exception" []
    (Obs.Span.stack obs);
  (* Both spans closed: their timers recorded despite the raise. *)
  let snap = Obs.snapshot ~obs () in
  List.iter
    (fun name ->
      let t = List.assoc name snap.Obs.snap_timers in
      Alcotest.(check int) (name ^ " closed once") 1 t.Obs.t_calls)
    [ "outer"; "boom" ]

let prop_span_depth_balanced =
  (* Arbitrary nesting programs (depth-bounded) always leave depth 0,
     with or without an exception escaping from the innermost level. *)
  qtest ~count:100 "span depth balanced for arbitrary nesting"
    QCheck.(pair (int_range 0 8) bool)
    (fun (depth, raise_inner) ->
      let obs = fresh () in
      let rec nest k =
        if k = 0 then (if raise_inner then raise Probe)
        else Obs.Span.run ~obs (Printf.sprintf "lvl%d" k) (fun () -> nest (k - 1))
      in
      (match nest depth with () -> () | exception Probe -> ());
      Obs.Span.depth obs = 0)

(* --- snapshot / reset / json ---------------------------------------- *)

let populated () =
  let obs = fresh () in
  let c = Obs.Counter.make ~obs "z.counter" in
  Obs.Counter.add c 7;
  let t = Obs.Timer.make ~obs "a.timer" in
  Obs.Timer.record t 0.25;
  let h = Obs.Histogram.make ~obs "m.hist" in
  List.iter (Obs.Histogram.observe h) [ 1; 3; 3; 9 ];
  obs

let test_snapshot_reset_roundtrip () =
  let obs = populated () in
  let before = Obs.snapshot ~obs () in
  Alcotest.(check int) "counter captured" 7
    (List.assoc "z.counter" before.Obs.snap_counters);
  let h = List.assoc "m.hist" before.Obs.snap_histograms in
  Alcotest.(check int) "hist count" 4 h.Obs.h_count;
  Alcotest.(check int) "hist sum" 16 h.Obs.h_sum;
  Alcotest.(check int) "hist max" 9 h.Obs.h_max;
  Obs.reset ~obs ();
  let after = Obs.snapshot ~obs () in
  (* Names survive a reset; every value restarts from zero. *)
  Alcotest.(check (list string)) "counter names survive"
    (List.map fst before.Obs.snap_counters)
    (List.map fst after.Obs.snap_counters);
  Alcotest.(check (list string)) "timer names survive"
    (List.map fst before.Obs.snap_timers)
    (List.map fst after.Obs.snap_timers);
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " zeroed") 0 v)
    after.Obs.snap_counters;
  List.iter
    (fun (name, (t : Obs.timer_stat)) ->
      Alcotest.(check int) (name ^ " calls zeroed") 0 t.Obs.t_calls)
    after.Obs.snap_timers;
  List.iter
    (fun (name, (h : Obs.hist_stat)) ->
      Alcotest.(check int) (name ^ " count zeroed") 0 h.Obs.h_count)
    after.Obs.snap_histograms

let test_snapshot_sorted_and_json_deterministic () =
  let obs = populated () in
  let snap = Obs.snapshot ~obs () in
  let sorted l = List.sort compare l = l in
  Alcotest.(check bool) "counters sorted by name" true
    (sorted (List.map fst snap.Obs.snap_counters));
  Alcotest.(check bool) "timers sorted by name" true
    (sorted (List.map fst snap.Obs.snap_timers));
  let j1 = Obs.to_json snap in
  let j2 = Obs.to_json (Obs.snapshot ~obs ()) in
  (* Timer totals are wall-clock but [record] gave a fixed duration, so
     two snapshots of an untouched registry serialize identically. *)
  Alcotest.(check string) "json deterministic" j1 j2;
  Alcotest.(check bool) "json carries the schema tag" true
    (let tag = "gnrfet-obs-v1" in
     let rec find i =
       i + String.length tag <= String.length j1
       && (String.sub j1 i (String.length tag) = tag || find (i + 1))
     in
     find 0)

(* --- disabled mode changes no numbers ------------------------------- *)

let with_global_obs enabled f =
  let old = Obs.enabled Obs.global in
  Obs.set_enabled Obs.global enabled;
  Fun.protect ~finally:(fun () -> Obs.set_enabled Obs.global old) f

let test_disabled_mode_same_cg_result () =
  skip_if_fault_armed [ "sparse.cg" ];
  let n = 24 in
  let b = Array.init n (fun i -> Float.sin (float_of_int i)) in
  let builder = Sparse.Builder.create n in
  for i = 0 to n - 1 do
    Sparse.Builder.add builder i i 4.;
    if i > 0 then Sparse.Builder.add builder i (i - 1) (-1.);
    if i < n - 1 then Sparse.Builder.add builder i (i + 1) (-1.)
  done;
  let m = Sparse.Builder.finalize builder in
  let x_off, it_off = with_global_obs false (fun () -> Sparse.cg m b) in
  let x_on, it_on = with_global_obs true (fun () -> Sparse.cg m b) in
  Alcotest.(check int) "same iteration count" it_off it_on;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "x.(%d) bit-for-bit" i)
        true
        (Float.equal v x_on.(i)))
    x_off

let test_disabled_mode_same_scf_result () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ];
  let p = tiny_device () in
  let off = with_global_obs false (fun () -> Scf.solve ~parallel:false p ~vg:0.3 ~vd:0.2) in
  let on = with_global_obs true (fun () -> Scf.solve ~parallel:false p ~vg:0.3 ~vd:0.2) in
  Alcotest.(check int) "same iterations" off.Scf.iterations on.Scf.iterations;
  Alcotest.(check bool) "same current bit-for-bit" true
    (Float.equal off.Scf.current on.Scf.current);
  Array.iteri
    (fun i u ->
      Alcotest.(check bool)
        (Printf.sprintf "potential site %d bit-for-bit" i)
        true
        (Float.equal u on.Scf.potential.(i)))
    off.Scf.potential

let suite =
  [
    prop_counter_monotone;
    Alcotest.test_case "counter interning" `Quick test_counter_interning;
    Alcotest.test_case "disabled counter is a no-op" `Quick test_disabled_counter_noop;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception unwinding" `Quick test_span_exception_unwinds;
    prop_span_depth_balanced;
    Alcotest.test_case "snapshot/reset round-trip" `Quick test_snapshot_reset_roundtrip;
    Alcotest.test_case "snapshot sorted, json deterministic" `Quick
      test_snapshot_sorted_and_json_deterministic;
    Alcotest.test_case "obs on/off: cg bit-identical" `Quick
      test_disabled_mode_same_cg_result;
    Alcotest.test_case "obs on/off: scf bit-identical" `Quick
      test_disabled_mode_same_scf_result;
  ]
