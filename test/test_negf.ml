(* Tests for the NEGF solvers: self-energies, scalar RGF, block RGF, and
   their cross-validation (the key mode-space correctness check). *)

open Support

let flat_chain ?(n = 30) ?(t1 = 1.6) ?(t2 = 1.3) ?(onsite = 0.) () =
  let chain_onsite = Array.make n onsite in
  let hopping = Array.init (n - 1) (fun i -> if i mod 2 = 0 then t1 else t2) in
  let sigma e =
    let gs = Self_energy.dimer_surface ~t1 ~t2 ~onsite e in
    Complex.mul { Complex.re = t2 *. t2; im = 0. } gs
  in
  fun e ->
    { Rgf.onsite = chain_onsite; hopping; sigma_l = sigma e; sigma_r = sigma e }

let test_dimer_surface_retarded () =
  (* The retarded surface GF must have non-positive imaginary part
     (non-negative DOS) at every energy. *)
  List.iter
    (fun e ->
      let g = Self_energy.dimer_surface ~t1:1.6 ~t2:1.3 ~onsite:0. e in
      Alcotest.(check bool)
        (Printf.sprintf "Im g <= 0 at %g" e)
        true
        (g.Complex.im <= 1e-9))
    [ -3.5; -2.; -1.; -0.31; 0.; 0.2; 0.31; 1.; 2.; 3.5 ]

let test_dimer_surface_dos_support () =
  (* DOS is zero in the gap (|E| < t1 - t2 = 0.3) and positive in the band. *)
  let dos e =
    -.(Self_energy.dimer_surface ~eta:1e-9 ~t1:1.6 ~t2:1.3 ~onsite:0. e).Complex.im
  in
  Alcotest.(check bool) "gap" true (dos 0.1 < 1e-6);
  Alcotest.(check bool) "band" true (dos 1. > 0.01)

let test_flat_transmission_staircase () =
  let chain = flat_chain () in
  (* Inside the band of an ideal chain T = 1; inside the gap T ~ 0. *)
  List.iter
    (fun e -> approx ~eps:1e-3 (Printf.sprintf "T=1 at %g" e) 1. (Rgf.transmission (chain e) e))
    [ 0.5; 1.; 2.; -0.8; -1.5 ];
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "T~0 at %g" e)
        true
        (Rgf.transmission (chain e) e < 1e-3))
    [ 0.; 0.1; -0.2 ]

let test_spectra_consistency () =
  (* The one-pass transmission and the spectral-function path must agree:
     T = GammaR * a2 evaluated at site 0 equals GammaL * a1 at site n-1. *)
  let chain = flat_chain ~n:16 () in
  List.iter
    (fun e ->
      let c = chain e in
      let s = Rgf.spectra c e in
      let t_direct = Rgf.transmission c e in
      approx ~eps:1e-9 "t_coh consistent" t_direct s.Rgf.t_coh;
      let gamma_l = Rgf.gamma_of_sigma c.Rgf.sigma_l in
      approx ~eps:1e-9 "T = GammaL * a1(n-1)" s.Rgf.t_coh
        (gamma_l *. s.Rgf.a1.(15)))
    [ 0.5; 0.9; 1.7 ]

let test_spectra_nonnegative () =
  let chain = flat_chain ~n:12 () in
  List.iter
    (fun e ->
      let s = Rgf.spectra (chain e) e in
      Array.iter (fun a -> Alcotest.(check bool) "a1 >= 0" true (a >= 0.)) s.Rgf.a1;
      Array.iter (fun a -> Alcotest.(check bool) "a2 >= 0" true (a >= 0.)) s.Rgf.a2)
    [ -1.; 0.; 0.6; 2. ]

let test_barrier_suppresses_transmission () =
  (* Probe at E = 0.5 (inside the lead band).  A barrier of height u puts
     the probe energy inside the local gap [u - 0.3, u + 0.3]; suppression
     is strongest when the energy sits at the local mid-gap (u = 0.5). *)
  let n = 40 in
  let t1 = 1.6 and t2 = 1.3 in
  let hopping = Array.init (n - 1) (fun i -> if i mod 2 = 0 then t1 else t2) in
  let sigma e =
    Complex.mul
      { Complex.re = t2 *. t2; im = 0. }
      (Self_energy.dimer_surface ~t1 ~t2 ~onsite:0. e)
  in
  let with_barrier height =
    let onsite =
      Array.init n (fun i -> if i >= 10 && i < 30 then height else 0.)
    in
    let e = 0.5 in
    Rgf.transmission { Rgf.onsite; hopping; sigma_l = sigma e; sigma_r = sigma e } e
  in
  let t0 = with_barrier 0. and t_edge = with_barrier 0.35 and t_mid = with_barrier 0.5 in
  Alcotest.(check bool) "monotone suppression" true (t0 > t_edge && t_edge > t_mid);
  Alcotest.(check bool) "deep barrier nearly opaque" true (t_mid < 0.06)

let test_block_rgf_staircase () =
  (* Ideal N=12 A-GNR: T(E) counts open subbands: 0 in the gap, 1 above
     the first subband edge. *)
  let gap = Bands.gap_of_index 12 in
  let t_gap = Rgf_block.ideal_gnr_transmission ~n_cells:6 12 (gap /. 4.) in
  Alcotest.(check bool) "gap opaque" true (t_gap < 1e-2);
  let t_band = Rgf_block.ideal_gnr_transmission ~n_cells:6 12 ((gap /. 2.) +. 0.15) in
  approx ~eps:2e-2 "one mode open" 1. t_band

let test_modespace_matches_block () =
  (* The central validation: mode-space transmission equals the atomistic
     real-space result for the ideal ribbon across the spectrum. *)
  let n = 12 in
  let ms = Modespace.reduce ~n_modes:3 n in
  let sites = 16 in
  let chain_of (m : Modespace.mode) e =
    let onsite = Array.make sites 0. in
    let hopping =
      Array.init (sites - 1) (fun i ->
          if i mod 2 = 0 then m.Modespace.t1 else m.Modespace.t2)
    in
    let gs =
      Self_energy.dimer_surface ~t1:m.Modespace.t1 ~t2:m.Modespace.t2 ~onsite:0. e
    in
    let sigma = Complex.mul { Complex.re = m.Modespace.t2 ** 2.; im = 0. } gs in
    { Rgf.onsite; hopping; sigma_l = sigma; sigma_r = sigma }
  in
  List.iter
    (fun e ->
      let t_ms =
        Array.fold_left
          (fun acc m -> acc +. Rgf.transmission (chain_of m e) e)
          0. ms.Modespace.modes
      in
      let t_block = Rgf_block.ideal_gnr_transmission ~n_cells:8 n e in
      approx ~eps:3e-3 (Printf.sprintf "T at %g" e) t_block t_ms)
    [ 0.1; 0.35; 0.5; 0.75; 1.0; 1.5 ]

let bias = { Observables.mu_s = 0.; mu_d = -0.3; kt = 0.0259 }

let test_current_zero_at_equilibrium () =
  let chain = flat_chain ~n:20 () in
  let egrid = Observables.energy_grid ~lo:(-0.6) ~hi:0.6 ~de:0.004 in
  let eq = { Observables.mu_s = 0.; mu_d = 0.; kt = 0.0259 } in
  let i = Observables.current ~bias:eq ~egrid chain in
  Alcotest.(check bool) "equilibrium current ~ 0" true (Float.abs i < 1e-15)

let test_current_sign_and_magnitude () =
  (* One fully open spin-degenerate mode over a 0.3 V window carries at
     most G0 * 0.3; a mid-band chain gets close. *)
  let t1 = 1.6 and t2 = 1.55 in
  (* small gap 0.05: almost metallic *)
  let n = 20 in
  let onsite = Array.make n (-0.15) in
  (* center the band on the bias window *)
  let hopping = Array.init (n - 1) (fun i -> if i mod 2 = 0 then t1 else t2) in
  let sigma e =
    Complex.mul
      { Complex.re = t2 *. t2; im = 0. }
      (Self_energy.dimer_surface ~t1 ~t2 ~onsite:(-0.15) e)
  in
  let egrid = Observables.energy_grid ~lo:(-0.7) ~hi:0.4 ~de:0.002 in
  let chain e = { Rgf.onsite; hopping; sigma_l = sigma e; sigma_r = sigma e } in
  let i = Observables.current ~bias ~egrid chain in
  Alcotest.(check bool) "positive" true (i > 0.);
  let i_max = Const.g0 *. 0.3 in
  Alcotest.(check bool) "bounded by ballistic limit" true (i < i_max *. 1.001);
  Alcotest.(check bool) "mostly open" true (i > 0.55 *. i_max)

let test_charge_neutrality_at_half_filling () =
  (* Symmetric chain with mu at mid-gap: electron and hole counts cancel. *)
  let chain = flat_chain ~n:20 () in
  let egrid = Observables.energy_grid ~lo:(-3.4) ~hi:3.4 ~de:0.005 in
  let eq = { Observables.mu_s = 0.; mu_d = 0.; kt = 0.0259 } in
  let midgap = (chain 0.).Rgf.onsite in
  let q = Observables.site_charge ~bias:eq ~egrid ~midgap chain in
  Array.iteri
    (fun i qi ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d neutral" i)
        true
        (Float.abs qi < 0.02 *. Const.q))
    q

let test_charge_sign_follows_mu () =
  let chain = flat_chain ~n:20 () in
  let egrid = Observables.energy_grid ~lo:(-3.6) ~hi:3.6 ~de:0.005 in
  let midgap = (chain 0.).Rgf.onsite in
  let electron_bias = { Observables.mu_s = 0.8; mu_d = 0.8; kt = 0.0259 } in
  let q_e = Observables.site_charge ~bias:electron_bias ~egrid ~midgap chain in
  Alcotest.(check bool) "electrons negative" true (Vec.sum q_e < -0.1 *. Const.q);
  let hole_bias = { Observables.mu_s = -0.8; mu_d = -0.8; kt = 0.0259 } in
  let q_h = Observables.site_charge ~bias:hole_bias ~egrid ~midgap chain in
  Alcotest.(check bool) "holes positive" true (Vec.sum q_h > 0.1 *. Const.q)

let test_sancho_rubio_agrees_with_dimer () =
  (* A 1x1-block chain with alternating couplings folded into a 2x2 cell
     must give the same surface DOS as the scalar decimation. *)
  let t1 = 1.6 and t2 = 1.3 in
  let h00 =
    Cmatrix.init 2 2 (fun i j ->
        if (i = 0 && j = 1) || (i = 1 && j = 0) then { Complex.re = t1; im = 0. }
        else Complex.zero)
  in
  let h01 =
    Cmatrix.init 2 2 (fun i j ->
        if i = 1 && j = 0 then { Complex.re = t2; im = 0. } else Complex.zero)
  in
  List.iter
    (fun e ->
      let gs = Self_energy.sancho_rubio ~eta:1e-7 ~h00 ~h01 e in
      (* The exposed surface site of this right-lead orientation is the
         cell's A site (index 0), whose inward bond is t1: exactly the
         configuration of the scalar decimation. *)
      let g_block = Cmatrix.get gs 0 0 in
      let g_scalar = Self_energy.dimer_surface ~eta:1e-7 ~t1 ~t2 ~onsite:0. e in
      approx ~eps:1e-5 (Printf.sprintf "Re g at %g" e) g_scalar.Complex.re g_block.Complex.re;
      approx ~eps:1e-5 (Printf.sprintf "Im g at %g" e) g_scalar.Complex.im g_block.Complex.im)
    [ 0.8; 1.5; 2.5 ]

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let exact_array name a b =
  Alcotest.(check int) (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: site %d bit-for-bit" name i)
        true
        (v = b.(i)))
    a

(* The determinism contract: the parallel energy loop must reproduce the
   sequential path exactly (not approximately), for any worker count. *)

let test_site_charge_parallel_exact () =
  let chain = flat_chain ~n:20 () in
  let egrid = Observables.energy_grid ~lo:(-3.4) ~hi:3.4 ~de:0.01 in
  let midgap = (chain 0.).Rgf.onsite in
  let q_seq =
    Observables.site_charge ~parallel:false ~bias ~egrid ~midgap chain
  in
  let q_par = Observables.site_charge ~parallel:true ~bias ~egrid ~midgap chain in
  exact_array "site_charge parallel vs sequential" q_seq q_par;
  List.iter
    (fun d ->
      with_env "GNRFET_DOMAINS" (string_of_int d) (fun () ->
          let q =
            Observables.site_charge ~parallel:true ~bias ~egrid ~midgap chain
          in
          exact_array (Printf.sprintf "site_charge GNRFET_DOMAINS=%d" d) q_seq q))
    [ 1; 3; 7 ]

let test_current_parallel_exact () =
  let chain = flat_chain ~n:20 () in
  let egrid = Observables.energy_grid ~lo:(-0.7) ~hi:0.4 ~de:0.004 in
  let i_seq = Observables.current ~parallel:false ~bias ~egrid chain in
  List.iter
    (fun d ->
      with_env "GNRFET_DOMAINS" (string_of_int d) (fun () ->
          let i = Observables.current ~parallel:true ~bias ~egrid chain in
          Alcotest.(check bool)
            (Printf.sprintf "current bit-for-bit under %d domains" d)
            true (i = i_seq)))
    [ 1; 4 ]

let test_transmission_spectrum_parallel_exact () =
  let chain = flat_chain ~n:16 () in
  let egrid = Observables.energy_grid ~lo:(-2.) ~hi:2. ~de:0.01 in
  let t_seq = Observables.transmission_spectrum ~parallel:false ~egrid chain in
  with_env "GNRFET_DOMAINS" "5" (fun () ->
      let t_par = Observables.transmission_spectrum ~parallel:true ~egrid chain in
      exact_array "transmission_spectrum parallel vs sequential" t_seq t_par)

let test_spectra_into_matches_spectra () =
  let chain = flat_chain ~n:14 () in
  let ws = Rgf.workspace () in
  List.iter
    (fun e ->
      let c = chain e in
      let s = Rgf.spectra c e in
      let t_ws = Rgf.spectra_into ws c e in
      Alcotest.(check bool) "t_coh bit-for-bit" true (t_ws = s.Rgf.t_coh);
      let a1 = Rgf.a1 ws and a2 = Rgf.a2 ws in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) (Printf.sprintf "a1 %d" i) true (a1.(i) = v))
        s.Rgf.a1;
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) (Printf.sprintf "a2 %d" i) true (a2.(i) = v))
        s.Rgf.a2;
      Alcotest.(check bool)
        "transmission_into bit-for-bit" true
        (Rgf.transmission_into ws c e = Rgf.transmission c e))
    [ -1.2; 0.; 0.45; 0.9; 1.7 ]

let test_workspace_grows_and_revalidates () =
  let ws = Rgf.workspace ~hint:4 () in
  (* Grow through chains of different lengths, interleaved: the cached
     validation must track the chain identity, not just accept reuse. *)
  let small = flat_chain ~n:6 () 0.5 in
  let big = flat_chain ~n:40 () 0.5 in
  let t_small = Rgf.spectra_into ws small 0.5 in
  let t_big = Rgf.spectra_into ws big 0.5 in
  let t_small' = Rgf.spectra_into ws small 0.5 in
  Alcotest.(check bool) "small chain stable across growth" true
    (t_small = t_small');
  approx ~eps:1e-9 "big equals fresh spectra" (Rgf.spectra big 0.5).Rgf.t_coh
    t_big;
  (* Malformed chains still fail validation through the workspace path. *)
  let bad =
    { Rgf.onsite = [| 0.; 0.; 0. |]; hopping = [| 1. |];
      sigma_l = Complex.zero; sigma_r = Complex.zero }
  in
  check_raises_invalid "hopping length mismatch" (fun () ->
      ignore (Rgf.spectra_into ws bad 0.))

let test_energy_grid () =
  let g = Observables.energy_grid ~lo:(-1.) ~hi:1. ~de:0.1 in
  Alcotest.(check bool) "at least 21 points" true (Array.length g >= 21);
  approx "start" (-1.) g.(0);
  approx "end" 1. g.(Array.length g - 1);
  check_raises_invalid "empty range" (fun () ->
      ignore (Observables.energy_grid ~lo:1. ~hi:0. ~de:0.1))

let suite =
  [
    Alcotest.test_case "dimer surface retarded" `Quick test_dimer_surface_retarded;
    Alcotest.test_case "dimer surface DOS support" `Quick test_dimer_surface_dos_support;
    Alcotest.test_case "flat chain staircase" `Quick test_flat_transmission_staircase;
    Alcotest.test_case "spectra consistency" `Quick test_spectra_consistency;
    Alcotest.test_case "spectra non-negative" `Quick test_spectra_nonnegative;
    Alcotest.test_case "barrier suppression" `Quick test_barrier_suppresses_transmission;
    Alcotest.test_case "block RGF staircase" `Quick test_block_rgf_staircase;
    Alcotest.test_case "mode-space vs block RGF" `Quick test_modespace_matches_block;
    Alcotest.test_case "equilibrium current" `Quick test_current_zero_at_equilibrium;
    Alcotest.test_case "current sign and bound" `Quick test_current_sign_and_magnitude;
    Alcotest.test_case "half-filling neutrality" `Quick test_charge_neutrality_at_half_filling;
    Alcotest.test_case "charge sign follows mu" `Quick test_charge_sign_follows_mu;
    Alcotest.test_case "sancho-rubio vs dimer" `Quick test_sancho_rubio_agrees_with_dimer;
    Alcotest.test_case "energy grid" `Quick test_energy_grid;
    Alcotest.test_case "site_charge parallel exact" `Quick test_site_charge_parallel_exact;
    Alcotest.test_case "current parallel exact" `Quick test_current_parallel_exact;
    Alcotest.test_case "T spectrum parallel exact" `Quick
      test_transmission_spectrum_parallel_exact;
    Alcotest.test_case "spectra_into matches spectra" `Quick
      test_spectra_into_matches_spectra;
    Alcotest.test_case "workspace growth + validation" `Quick
      test_workspace_grows_and_revalidates;
  ]

let ideal_block_device n e =
  (* Rebuild the lead-connected ribbon device used by
     ideal_gnr_transmission, for the spectral-function tests. *)
  let tb = Tight_binding.make n in
  let h00 = Cmatrix.of_real tb.Tight_binding.h00 in
  let h01 = Cmatrix.of_real tb.Tight_binding.h01 in
  let h10 = Cmatrix.adjoint h01 in
  let gs_l = Self_energy.sancho_rubio ~h00 ~h01:h10 e in
  let sigma_l = Cmatrix.mul h10 (Cmatrix.mul gs_l h01) in
  let gs_r = Self_energy.sancho_rubio ~h00 ~h01 e in
  let sigma_r = Cmatrix.mul h01 (Cmatrix.mul gs_r h10) in
  {
    Rgf_block.blocks = Array.make 5 h00;
    couplings = Array.make 4 h01;
    sigma_l;
    sigma_r;
  }

let test_block_spectra_transmission_consistent () =
  List.iter
    (fun e ->
      let dev = ideal_block_device 7 e in
      let s = Rgf_block.spectra dev e in
      let t = Rgf_block.transmission dev e in
      approx ~eps:1e-8 (Printf.sprintf "T consistent at %g" e) t s.Rgf_block.t_coh;
      Array.iter
        (fun per_block ->
          Array.iter
            (fun v -> Alcotest.(check bool) "a1 >= 0" true (v >= -1e-10))
            per_block)
        s.Rgf_block.a1)
    [ 0.8; 1.2; 2.0 ]

let test_block_equilibrium_half_filling () =
  (* Integrating the occupied atomistic spectral weight over the full band
     at mu = mid-gap must give half an electron per atom per spin: the
     real-space counterpart of the mode-space neutrality test. *)
  let n = 5 in
  let kt = 0.0259 in
  (* eta must stay negligible against Gamma(E) (a finite eta is a third,
     absorbing contact that steals weight from a1 + a2); the fine grid
     handles the van Hove edges. *)
  let eta = 1e-6 in
  let egrid = Observables.energy_grid ~lo:(-8.8) ~hi:8.8 ~de:2e-3 in
  let n_atoms = Lattice.atoms_per_cell n in
  let occupancy = Array.make n_atoms 0. in
  let block = 2 (* interior cell *) in
  let prev = ref None in
  Array.iter
    (fun e ->
      let dev = ideal_block_device n e in
      let s = Rgf_block.spectra ~eta dev e in
      let f = Fermi.occupation ~mu:0. ~kt e in
      let sample =
        Array.init n_atoms (fun i ->
            (s.Rgf_block.a1.(block).(i) +. s.Rgf_block.a2.(block).(i)) *. f)
      in
      (match !prev with
      | Some (e0, s0) ->
        let h = 0.5 *. (e -. e0) in
        Array.iteri (fun i v -> occupancy.(i) <- occupancy.(i) +. (h *. (v +. s0.(i)))) sample
      | None -> ());
      prev := Some (e, sample))
    egrid;
  Array.iteri
    (fun i occ ->
      approx ~eps:0.05
        (Printf.sprintf "atom %d half-filled" i)
        0.5
        (occ /. (2. *. Float.pi)))
    occupancy

(* ------------------------------------------------------------------ *)
(* Bigarray fast path (PR 7): the workspace kernels against the naive
   Cmatrix oracle, and the determinism contract of the energy sweep. *)

let brng = Rng.create 90211

let rand_z () = { Complex.re = Rng.uniform brng (-1.) 1.; im = Rng.uniform brng (-1.) 1. }

let random_hermitian m =
  let a = Cmatrix.init m m (fun _ _ -> rand_z ()) in
  Cmatrix.scale { Complex.re = 0.5; im = 0. } (Cmatrix.add a (Cmatrix.adjoint a))

(* A retarded self-energy with strictly negative anti-hermitian part
   (Γ > 0), so the resolvent is invertible at any real energy. *)
let random_sigma m =
  let h = random_hermitian m in
  Cmatrix.init m m (fun i j ->
      let z = Cmatrix.get h i j in
      if i = j then { z with Complex.im = z.Complex.im -. (0.4 +. Float.abs z.Complex.re) }
      else z)

let random_block_device ~nb ~m =
  {
    Rgf_block.blocks = Array.init nb (fun _ -> random_hermitian m);
    couplings = Array.init (nb - 1) (fun _ -> Cmatrix.init m m (fun _ _ -> rand_z ()));
    sigma_l = random_sigma m;
    sigma_r = random_sigma m;
  }

let check_fast_matches_naive ~name ws dev e =
  let t_naive = Rgf_block.transmission dev e in
  approx_rel ~rel:1e-10 (name ^ ": transmission") t_naive
    (Rgf_block.transmission_into ws dev e);
  let s = Rgf_block.spectra dev e in
  approx_rel ~rel:1e-10 (name ^ ": spectra t_coh") s.Rgf_block.t_coh
    (Rgf_block.spectra_into ws dev e);
  let a1 = Rgf_block.a1 ws and a2 = Rgf_block.a2 ws in
  Array.iteri
    (fun b per_block ->
      Array.iteri
        (fun i v ->
          let scale = Float.max (Float.abs v) 1e-12 in
          let d1 = Float.abs (a1.(b).(i) -. v) /. scale in
          if d1 > 1e-10 then
            Alcotest.failf "%s: a1.(%d).(%d) rel diff %g" name b i d1;
          let v2 = s.Rgf_block.a2.(b).(i) in
          let scale2 = Float.max (Float.abs v2) 1e-12 in
          let d2 = Float.abs (a2.(b).(i) -. v2) /. scale2 in
          if d2 > 1e-10 then
            Alcotest.failf "%s: a2.(%d).(%d) rel diff %g" name b i d2)
        per_block)
    s.Rgf_block.a1

let test_fast_matches_naive_random () =
  let ws = Rgf_block.workspace () in
  List.iter
    (fun (nb, m) ->
      let dev = random_block_device ~nb ~m in
      List.iter
        (fun e ->
          check_fast_matches_naive
            ~name:(Printf.sprintf "random nb=%d m=%d E=%g" nb m e)
            ws dev e)
        [ -0.7; 0.; 0.35 ])
    [ (4, 5); (7, 3) ]

let test_fast_matches_naive_gnr () =
  (* The physical device: a lead-connected ideal A-GNR with Sancho–Rubio
     self-energies, at in-band and in-gap energies. *)
  let ws = Rgf_block.workspace () in
  List.iter
    (fun e ->
      let dev = ideal_block_device 7 e in
      check_fast_matches_naive ~name:(Printf.sprintf "A-GNR E=%g" e) ws dev e)
    [ 0.4; 0.8; 1.2; 2.0 ]

let test_block_workspace_resizes () =
  (* One workspace across devices of different block counts AND block
     sizes, interleaved: results must be bit-identical to a fresh
     workspace (no stale-state contamination in either direction). *)
  let ws = Rgf_block.workspace () in
  let small = random_block_device ~nb:3 ~m:4 in
  let big = random_block_device ~nb:6 ~m:7 in
  let fresh dev e =
    Rgf_block.transmission_into (Rgf_block.workspace ()) dev e
  in
  let e = 0.2 in
  let t_small = Rgf_block.transmission_into ws small e in
  let t_big = Rgf_block.transmission_into ws big e in
  let t_small' = Rgf_block.transmission_into ws small e in
  Alcotest.(check bool) "small bit-for-bit vs fresh ws" true (t_small = fresh small e);
  Alcotest.(check bool) "big bit-for-bit vs fresh ws" true (t_big = fresh big e);
  Alcotest.(check bool) "small stable after growth + shrink" true (t_small = t_small')

let test_block_sweep_matches_pointwise () =
  (* The sweep must reproduce per-energy transmission_into bit-for-bit:
     chunking and per-slot workspaces are not allowed to change results. *)
  let egrid = Array.init 31 (fun i -> -0.9 +. (0.06 *. float_of_int i)) in
  let device_of _e = ideal_block_device 7 0.8 in
  let dev = device_of 0. in
  let t_sweep = Rgf_block.transmission_sweep ~parallel:false ~egrid device_of in
  let ws = Rgf_block.workspace () in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep point %d bit-for-bit" i)
        true
        (t_sweep.(i) = Rgf_block.transmission_into ws dev e))
    egrid

let test_block_sweep_parallel_exact () =
  let egrid = Array.init 47 (fun i -> -1.2 +. (0.05 *. float_of_int i)) in
  let device_of _e = ideal_block_device 5 0.8 in
  let t_seq = Rgf_block.transmission_sweep ~parallel:false ~egrid device_of in
  List.iter
    (fun d ->
      with_env "GNRFET_DOMAINS" (string_of_int d) (fun () ->
          let t_par = Rgf_block.transmission_sweep ~parallel:true ~egrid device_of in
          exact_array (Printf.sprintf "block sweep GNRFET_DOMAINS=%d" d) t_seq t_par))
    [ 1; 5 ]

let test_dimer_surface_closed_form () =
  (* Regression for the removed ?tol/?max_iter: the returned root must
     satisfy the decimation quadratic t2^2 z g^2 - (z^2 - t1^2 + t2^2) g
     + z = 0 exactly (to rounding) — closed form, nothing iterative. *)
  let t1 = 1.6 and t2 = 1.3 and onsite = -0.2 and eta = 1e-5 in
  List.iter
    (fun e ->
      let g = Self_energy.dimer_surface ~eta ~t1 ~t2 ~onsite e in
      let open Complex in
      let z = { re = e -. onsite; im = eta } in
      let t1sq = { re = t1 *. t1; im = 0. } and t2sq = { re = t2 *. t2; im = 0. } in
      let residual =
        add
          (sub (mul (mul t2sq z) (mul g g)) (mul (add (sub (mul z z) t1sq) t2sq) g))
          z
      in
      Alcotest.(check bool)
        (Printf.sprintf "quadratic residual at %g" e)
        true
        (norm residual < 1e-10);
      Alcotest.(check bool)
        (Printf.sprintf "retarded at %g" e)
        true
        (g.im <= 1e-9))
    [ -2.5; -1.; -0.2; 0.; 0.25; 0.9; 2.1 ]

let test_sancho_rubio_stalls_typed () =
  (* An iteration cap that cannot be met must surface as the typed
     Stalled, carrying the solver name — never a silent wrong answer. *)
  let tb = Tight_binding.make 7 in
  let h00 = Cmatrix.of_real tb.Tight_binding.h00 in
  let h01 = Cmatrix.of_real tb.Tight_binding.h01 in
  match Self_energy.sancho_rubio ~max_iter:0 ~h00 ~h01 0.8 with
  | exception Numerics_error.Stalled { solver; iterations; _ } ->
    Alcotest.(check string) "solver tag" "Self_energy.sancho_rubio" solver;
    Alcotest.(check int) "stopped at the cap" 0 iterations
  | _ -> Alcotest.fail "sancho_rubio converged with max_iter:0"

let block_suite =
  [
    Alcotest.test_case "block spectra consistency" `Quick
      test_block_spectra_transmission_consistent;
    Alcotest.test_case "block equilibrium half-filling" `Quick
      test_block_equilibrium_half_filling;
    Alcotest.test_case "fast path vs naive: random devices" `Quick
      test_fast_matches_naive_random;
    Alcotest.test_case "fast path vs naive: ideal A-GNR" `Quick
      test_fast_matches_naive_gnr;
    Alcotest.test_case "block workspace resizes" `Quick test_block_workspace_resizes;
    Alcotest.test_case "block sweep matches pointwise" `Quick
      test_block_sweep_matches_pointwise;
    Alcotest.test_case "block sweep parallel exact" `Quick
      test_block_sweep_parallel_exact;
    Alcotest.test_case "dimer surface closed form" `Quick
      test_dimer_surface_closed_form;
    Alcotest.test_case "sancho-rubio stalls typed" `Quick
      test_sancho_rubio_stalls_typed;
  ]

let suite = suite @ block_suite
