(* Golden-trace generator for the SCF convergence regression suite.

   Writes test/golden/scf_n12.trace and test/golden/scf_n15.trace: the
   per-iteration convergence trace of Scf.solve on the two fixed reduced
   devices that test/test_golden_trace.ml checks against.

   Run from the repository root after an INTENTIONAL solver change:

     dune exec test/gen_golden.exe

   then inspect the diff of test/golden/*.trace before committing — a
   changed trace is a changed solver, and the diff is the review artifact.

   The device definitions here must match golden_device in
   test/test_golden_trace.ml (a 6 nm channel with the coarse test energy
   grid, i.e. Support.tiny_device). *)

let golden_device gnr_index =
  {
    (Params.default ~gnr_index ()) with
    Params.channel_length = 6e-9;
    energy_step = 8e-3;
    energy_margin = 0.3;
  }

let vg = 0.4
let vd = 0.3

let write gnr_index path =
  let p = golden_device gnr_index in
  let s = Scf.solve ~parallel:false p ~vg ~vd in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "# gnrfet golden SCF convergence trace\n";
  out "# device: gnr_index=%d channel_length=6e-9 energy_step=8e-3 energy_margin=0.3\n"
    gnr_index;
  out "# bias: vg=%g vd=%g (solver defaults: tol=1e-3, Anderson mixing)\n" vg vd;
  out "# regenerate: dune exec test/gen_golden.exe   (from the repo root)\n";
  out "# columns: step update_norm mixing poisson restarted\n";
  out "iterations %d\n" s.Scf.iterations;
  List.iter
    (fun (tr : Scf.trace) ->
      out "step %d %.17g %.17g %d %d\n" tr.Scf.step tr.Scf.update_norm
        tr.Scf.mixing_factor tr.Scf.poisson_solves
        (if tr.Scf.restarted then 1 else 0))
    s.Scf.trace;
  close_out oc;
  Printf.printf "wrote %s (%d iterations, final residual %.3g V)\n%!" path
    s.Scf.iterations s.Scf.residual

let () =
  write 12 "test/golden/scf_n12.trace";
  write 15 "test/golden/scf_n15.trace"
