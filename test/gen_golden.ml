(* Golden-fixture generator for the regression suites.

   Writes test/golden/scf_n12.trace and test/golden/scf_n15.trace — the
   per-iteration convergence trace of Scf.solve on the two fixed reduced
   devices that test/test_golden_trace.ml checks against — and
   test/golden/{tiny,specials}.gnrtbl, the binary gnrtbl fixtures that
   test/test_tbl_format.ml holds the on-disk format to (docs/FORMAT.md).

   Run from the repository root after an INTENTIONAL solver or format
   change:

     dune exec test/gen_golden.exe

   then inspect the diff of test/golden/* before committing — a changed
   trace is a changed solver, a changed gnrtbl fixture is a format break
   (which must also bump Tbl_format.version), and the diff is the
   review artifact.

   The device definitions here must match golden_device in
   test/test_golden_trace.ml (a 6 nm channel with the coarse test energy
   grid, i.e. Support.tiny_device); the fixture tables must match
   golden_tiny_table / specials_table in test/test_tbl_format.ml. *)

let golden_device gnr_index =
  {
    (Params.default ~gnr_index ()) with
    Params.channel_length = 6e-9;
    energy_step = 8e-3;
    energy_margin = 0.3;
  }

let vg = 0.4
let vd = 0.3

let write gnr_index path =
  let p = golden_device gnr_index in
  let s = Scf.solve ~parallel:false p ~vg ~vd in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "# gnrfet golden SCF convergence trace\n";
  out "# device: gnr_index=%d channel_length=6e-9 energy_step=8e-3 energy_margin=0.3\n"
    gnr_index;
  out "# bias: vg=%g vd=%g (solver defaults: tol=1e-3, Anderson mixing)\n" vg vd;
  out "# regenerate: dune exec test/gen_golden.exe   (from the repo root)\n";
  out "# columns: step update_norm mixing poisson restarted\n";
  out "iterations %d\n" s.Scf.iterations;
  List.iter
    (fun (tr : Scf.trace) ->
      out "step %d %.17g %.17g %d %d\n" tr.Scf.step tr.Scf.update_norm
        tr.Scf.mixing_factor tr.Scf.poisson_solves
        (if tr.Scf.restarted then 1 else 0))
    s.Scf.trace;
  close_out oc;
  Printf.printf "wrote %s (%d iterations, final residual %.3g V)\n%!" path
    s.Scf.iterations s.Scf.residual

(* gnrtbl binary fixtures (must match test/test_tbl_format.ml). *)

let golden_tiny_table =
  {
    Iv_table.key = "golden-tiny";
    vg = [| 0.0; 0.5 |];
    vd = [| 0.0; 0.25; 0.5 |];
    current = [| [| 1e-9; 2e-9; 3e-9 |]; [| 4e-9; 5e-9; 6e-9 |] |];
    charge = [| [| -1e-19; -2e-19; -3e-19 |]; [| -4e-19; -5e-19; -6e-19 |] |];
    failed_points = [];
  }

let specials_table =
  let nan_pinned = Int64.float_of_bits 0x7FF8000000000000L in
  {
    Iv_table.key = "specials";
    (* round-trip payloads, not tolerances.  gnrlint: allow magic-tol *)
    vg = [| -0.0; 4.9e-324; Float.max_float |];
    vd = [| neg_infinity; 0.0 |];
    current =
      [|
        (* gnrlint: allow magic-tol *)
        [| nan_pinned; 1e-300 |];
        [| infinity; -0.0 |];
        [| Float.min_float; -1.5e-6 |];
      |];
    charge =
      (* gnrlint: allow magic-tol *)
      [| [| 0.25; -0.25 |]; [| 4.9e-324; -4.9e-324 |]; [| 1e308; -1e308 |] |];
    failed_points = [ (0, 1); (2, 0) ];
  }

let write_gnrtbl path ~cache_key table =
  Tbl_format.write ~path ~cache_key table;
  Printf.printf "wrote %s (%d bytes)\n%!" path
    (String.length (Tbl_format.encode ~cache_key table))

let () =
  write 12 "test/golden/scf_n12.trace";
  write 15 "test/golden/scf_n15.trace";
  write_gnrtbl "test/golden/tiny.gnrtbl" ~cache_key:"golden-cache-key-tiny"
    golden_tiny_table;
  write_gnrtbl "test/golden/specials.gnrtbl"
    ~cache_key:"golden-cache-key-specials" specials_table
