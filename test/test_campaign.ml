(* PR 9 tentpole: the resumable campaign engine — spec codec and
   deterministic sample expansion, the CRC-32C checkpoint journal with
   its seeded corruption matrix (truncated tail, flipped byte,
   duplicate record, spliced-out record, damaged header, stale spec
   hash), crash-resume bit-identity with no-double-count obs
   accounting, and the hardened serve client's retry policy against a
   scripted stub daemon (docs/CAMPAIGN.md). *)

open Support

(* --- helpers --------------------------------------------------------- *)

let with_tmp suffix f =
  let path = Filename.temp_file "gnrfet_campaign" suffix in
  Fun.protect
    ~finally:(fun () ->
      match Sys.remove path with () -> () | exception Sys_error _ -> ())
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let spec : Campaign.spec =
  {
    name = "unit";
    samples = 12;
    seed = 7;
    stages = 15;
    widths = [ 9; 12; 15 ];
    charges = [ 0.; -1. ];
    gammas = [ 0.5; 1. ];
    ops = [ (0.4, 0.13); (0.5, 0.1) ];
    grid = None;
  }

(* A cheap deterministic evaluator with non-trivial float bits, so
   bit-identity checks below actually exercise the journal's exact
   float64 round-trip. *)
let fake (s : Campaign.sample) =
  let i = float_of_int (s.s_index + 1) in
  {
    Campaign.delay = 1e-12 *. (1. +. (i /. 3.));
    edp = 1e-27 *. i *. i /. 7.;
    snm = 0.05 +. (0.001 *. i);
  }

let flaky_reason =
  Robust_error.to_string
    (Robust_error.Unrecovered { stage = "test"; attempts = 2; detail = "synthetic" })

(* Like [fake], but samples 3 and 8 fail with a typed solver error and
   must end up quarantined, journaled, and replayed verbatim. *)
let flaky (s : Campaign.sample) =
  if s.s_index mod 5 = 3 then
    Robust_error.raise_
      (Robust_error.Unrecovered { stage = "test"; attempts = 2; detail = "synthetic" })
  else fake s

let report_str (o : Campaign.run_outcome) =
  Sjson.to_string (Campaign.report_to_json o.Campaign.report)

let counter obs name = Obs.counter_value ~obs name

(* --- spec codec ------------------------------------------------------ *)

let test_spec_codec () =
  (match Campaign.spec_of_json (Campaign.spec_to_json spec) with
  | Ok s -> Alcotest.(check bool) "roundtrip" true (s = spec)
  | Error e -> Alcotest.failf "roundtrip rejected: %s" e);
  let parse s =
    match Sjson.parse s with
    | Ok j -> Campaign.spec_of_json j
    | Error e -> Alcotest.failf "json parse %S: %s" s e
  in
  (match parse {|{"name":"x","samples":4,"ops":[[0.4,0.13]]}|} with
  | Ok s ->
    Alcotest.(check int) "default seed" 1 s.Campaign.seed;
    Alcotest.(check int) "default stages" 15 s.Campaign.stages;
    Alcotest.(check bool) "default widths" true (s.Campaign.widths = [ 12 ])
  | Error e -> Alcotest.failf "minimal spec rejected: %s" e);
  List.iter
    (fun (label, src) ->
      match parse src with
      | Ok _ -> Alcotest.failf "%s: accepted" label
      | Error _ -> ())
    [
      ("unknown field", {|{"name":"x","samples":4,"ops":[[0.4,0.13]],"bogus":1}|});
      ("missing ops", {|{"name":"x","samples":4}|});
      ("zero samples", {|{"name":"x","samples":0,"ops":[[0.4,0.13]]}|});
      ("malformed op pair", {|{"name":"x","samples":4,"ops":[[0.4]]}|});
      ("not an object", {|[1,2]|});
    ]

let test_spec_hash () =
  Alcotest.(check int) "stable" (Campaign.spec_hash spec) (Campaign.spec_hash spec);
  Alcotest.(check bool) "seed changes hash" true
    (Campaign.spec_hash spec <> Campaign.spec_hash { spec with Campaign.seed = 8 });
  Alcotest.(check bool) "name changes hash" true
    (Campaign.spec_hash spec <> Campaign.spec_hash { spec with Campaign.name = "y" })

let test_sample_expansion () =
  for i = 0 to spec.Campaign.samples - 1 do
    let a = Campaign.sample_at spec i and b = Campaign.sample_at spec i in
    Alcotest.(check bool) "pure" true (a = b);
    Alcotest.(check int) "index" i a.Campaign.s_index;
    Alcotest.(check bool) "width on axis" true
      (List.mem a.Campaign.s_width spec.Campaign.widths);
    Alcotest.(check bool) "charge on axis" true
      (List.mem a.Campaign.s_charge spec.Campaign.charges);
    Alcotest.(check bool) "gamma on axis" true
      (List.mem a.Campaign.s_gamma spec.Campaign.gammas);
    Alcotest.(check bool) "op on axis" true
      (List.mem (a.Campaign.s_vdd, a.Campaign.s_vt) spec.Campaign.ops)
  done;
  (* Over enough draws every axis value must appear: the expansion
     explores the axes, it does not collapse onto one corner. *)
  let seen = Hashtbl.create 16 in
  for i = 0 to 63 do
    let s = Campaign.sample_at spec i in
    Hashtbl.replace seen (`W s.Campaign.s_width) ();
    Hashtbl.replace seen (`C s.Campaign.s_charge) ();
    Hashtbl.replace seen (`G s.Campaign.s_gamma) ();
    Hashtbl.replace seen (`O (s.Campaign.s_vdd, s.Campaign.s_vt)) ()
  done;
  let n_axis =
    List.length spec.Campaign.widths
    + List.length spec.Campaign.charges
    + List.length spec.Campaign.gammas
    + List.length spec.Campaign.ops
  in
  Alcotest.(check int) "all axis values drawn" n_axis (Hashtbl.length seen)

(* --- stream stats ---------------------------------------------------- *)

let test_stream_stats () =
  let t = Stream_stats.create () in
  List.iter (Stream_stats.add t) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stream_stats.count t);
  approx ~eps:1e-12 "mean" 5. (Stream_stats.mean t);
  approx ~eps:1e-12 "min" 2. (Stream_stats.min_value t);
  approx ~eps:1e-12 "max" 9. (Stream_stats.max_value t);
  approx_rel ~rel:1e-12 "stddev" (sqrt (32. /. 7.)) (Stream_stats.stddev t);
  (* Percentiles are binade-interpolated estimates: demand the
     documented <= ~6-7% relative error on a wide distribution. *)
  let u = Stream_stats.create () in
  for i = 1 to 1000 do
    Stream_stats.add u (float_of_int i)
  done;
  List.iter
    (fun (p, expect) ->
      let got = Stream_stats.percentile u p in
      Alcotest.(check bool)
        (Printf.sprintf "p%g = %g within 7%% of %g" p got expect)
        true
        (Float.abs (got -. expect) /. expect < 0.07))
    [ (50., 500.); (90., 900.); (99., 990.) ];
  (* Identical value sequences must reach identical snapshots — the
     property resume leans on. *)
  let a = Stream_stats.create () and b = Stream_stats.create () in
  for i = 0 to 99 do
    let v = ldexp (float_of_int ((i * 37 mod 101) - 50)) (i mod 13) in
    Stream_stats.add a v;
    Stream_stats.add b v
  done;
  Alcotest.(check bool) "snapshot deterministic" true
    (Stream_stats.snapshot a = Stream_stats.snapshot b);
  let n = Stream_stats.create () in
  Stream_stats.add n Float.nan;
  approx ~eps:0. "NaN maps to 0" 0. (Stream_stats.mean n)

(* --- journal: roundtrip and the corruption matrix -------------------- *)

let sample_entries n =
  List.init n (fun i ->
      if i mod 4 = 3 then
        Journal.Quarantined { index = i; reason = Printf.sprintf "reason-%d" i }
      else
        Journal.Done
          {
            index = i;
            delay = 1e-12 *. float_of_int (i + 1);
            edp = 1e-27 /. float_of_int (i + 1);
            snm = 0.05 +. (0.001 *. float_of_int i);
          })

let write_journal path entries =
  let w = Journal.create ~path ~spec_hash:0x1234_5678 in
  List.iter (Journal.append w) entries;
  Journal.sync w;
  Journal.close w

let test_journal_roundtrip () =
  with_tmp ".j" @@ fun path ->
  let entries = sample_entries 9 in
  write_journal path entries;
  let r = Journal.replay ~path ~expect_hash:0x1234_5678 () in
  Alcotest.(check bool) "entries bit-identical" true (r.Journal.entries = entries);
  Alcotest.(check int) "next" 9 r.Journal.next;
  Alcotest.(check int) "duplicates" 0 r.Journal.duplicates;
  Alcotest.(check bool) "not torn" true (r.Journal.torn = None);
  Alcotest.(check int) "good_bytes = file size" (String.length (read_file path))
    r.Journal.good_bytes;
  Alcotest.(check int) "stored hash" 0x1234_5678 (Journal.spec_hash_of_file ~path)

(* Fixed-size frames for offset arithmetic: a Done payload is
   4 (index) + 1 (status) + 24 (three f64s) = 29 bytes, so each frame
   is 8 + 29 = 37 bytes after the 16-byte header. *)
let frame = 37

let header = 16

let done_journal path n =
  write_journal path
    (List.init n (fun i ->
         Journal.Done
           {
             index = i;
             delay = float_of_int i *. 3.5e-12;
             edp = float_of_int (i + 2) *. 1e-27;
             snm = 0.04 +. (0.002 *. float_of_int i);
           }));
  let src = read_file path in
  Alcotest.(check int) "fixed frame arithmetic" (header + (n * frame))
    (String.length src);
  src

let test_journal_truncated_tail () =
  with_tmp ".j" @@ fun path ->
  let src = done_journal path 8 in
  with_tmp ".cut" @@ fun cut ->
  (* Mid-record cut: frame 5's length field survives but its payload
     does not. *)
  write_file cut (String.sub src 0 (header + (5 * frame) + 13));
  let r = Journal.replay ~path:cut () in
  Alcotest.(check int) "prefix" 5 r.Journal.next;
  (match r.Journal.torn with
  | Some (Robust_error.Torn_truncated { offset }) ->
    Alcotest.(check int) "offset = frame start" (header + (5 * frame)) offset
  | other ->
    Alcotest.failf "expected Torn_truncated, got %s"
      (match other with
      | None -> "no tear"
      | Some reason -> Robust_error.torn_reason_to_string reason));
  Alcotest.(check int) "good_bytes stops at tear" (header + (5 * frame))
    r.Journal.good_bytes

let test_journal_crc_flip () =
  with_tmp ".j" @@ fun path ->
  let src = done_journal path 8 in
  with_tmp ".flip" @@ fun flip ->
  let b = Bytes.of_string src in
  let off = header + (3 * frame) + 8 + 11 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  write_file flip (Bytes.to_string b);
  let r = Journal.replay ~path:flip () in
  Alcotest.(check int) "prefix" 3 r.Journal.next;
  (match r.Journal.torn with
  | Some (Robust_error.Torn_crc { record; offset }) ->
    Alcotest.(check int) "record" 3 record;
    Alcotest.(check int) "offset" (header + (3 * frame)) offset
  | _ -> Alcotest.fail "expected Torn_crc")

let test_journal_duplicate_record () =
  with_tmp ".j" @@ fun path ->
  let src = done_journal path 8 in
  with_tmp ".dup" @@ fun dup ->
  let cut = header + (4 * frame) in
  write_file dup
    (String.sub src 0 cut
    ^ String.sub src (cut - frame) frame
    ^ String.sub src cut (String.length src - cut));
  let r = Journal.replay ~path:dup () in
  Alcotest.(check int) "all samples once" 8 r.Journal.next;
  Alcotest.(check int) "duplicate counted" 1 r.Journal.duplicates;
  Alcotest.(check bool) "not torn" true (r.Journal.torn = None);
  Alcotest.(check bool) "indices still contiguous" true
    (List.mapi (fun i e -> Journal.entry_index e = i) r.Journal.entries
    |> List.for_all Fun.id)

let test_journal_out_of_order () =
  with_tmp ".j" @@ fun path ->
  let src = done_journal path 8 in
  with_tmp ".gap" @@ fun gap ->
  (* Splice record 4 out entirely: record 5 then claims index 5 where 4
     is expected — resuming past the gap would mislabel samples. *)
  let cut = header + (4 * frame) in
  write_file gap
    (String.sub src 0 cut
    ^ String.sub src (cut + frame) (String.length src - cut - frame));
  let r = Journal.replay ~path:gap () in
  Alcotest.(check int) "prefix" 4 r.Journal.next;
  (match r.Journal.torn with
  | Some (Robust_error.Torn_out_of_order { expected; found; _ }) ->
    Alcotest.(check int) "expected" 4 expected;
    Alcotest.(check int) "found" 5 found
  | _ -> Alcotest.fail "expected Torn_out_of_order")

let test_journal_header_damage () =
  with_tmp ".j" @@ fun path ->
  let src = done_journal path 4 in
  let expect_fatal label bytes ?expect_hash want =
    with_tmp ".hdr" @@ fun p ->
    write_file p bytes;
    match Journal.replay ~path:p ?expect_hash () with
    | (_ : Journal.replay) -> Alcotest.failf "%s: replay accepted" label
    | exception
        Robust_error.Error (Robust_error.Checkpoint_torn { reason; _ }) ->
      Alcotest.(check string) label want (Robust_error.torn_label reason)
    | exception e ->
      Alcotest.failf "%s: untyped exception %s" label (Printexc.to_string e)
  in
  (* Every header byte matters: magic, stored hash and header CRC flips
     all refuse with a typed fatal reason, never a decode crash. *)
  List.iter
    (fun off ->
      let b = Bytes.of_string src in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
      expect_fatal
        (Printf.sprintf "header flip @%d" off)
        (Bytes.to_string b) "bad_header")
    [ 0; 7; 9; 13 ];
  expect_fatal "short file" (String.sub src 0 11) "bad_header";
  expect_fatal "stale spec hash" src ~expect_hash:0x1234_5679 "spec_mismatch";
  (* The matching hash (and a status probe, which never needs the spec)
     still read the same bytes fine. *)
  let r = Journal.replay ~path ~expect_hash:0x1234_5678 () in
  Alcotest.(check int) "matching hash replays" 4 r.Journal.next

let test_journal_fuzz () =
  with_tmp ".j" @@ fun path ->
  let n = 8 in
  let src = done_journal path n in
  let size = String.length src in
  let rng = ref 0xC0FFEEL in
  let rand m =
    rng := Fault.splitmix64 !rng;
    Int64.to_int (Int64.rem (Int64.shift_right_logical !rng 1) (Int64.of_int m))
  in
  with_tmp ".mut" @@ fun mut ->
  for _iter = 1 to 150 do
    let mutated =
      match rand 4 with
      | 0 ->
        (* random truncation somewhere past the header *)
        String.sub src 0 (header + 1 + rand (size - header - 1))
      | 1 ->
        (* random body byte flip *)
        let b = Bytes.of_string src in
        let off = header + rand (size - header) in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 + rand 255)));
        Bytes.to_string b
      | 2 ->
        (* duplicate a random frame in place *)
        let k = rand n in
        let cut = header + ((k + 1) * frame) in
        String.sub src 0 cut
        ^ String.sub src (cut - frame) frame
        ^ String.sub src cut (size - cut)
      | _ ->
        (* splice a random frame out *)
        let k = rand n in
        let cut = header + (k * frame) in
        String.sub src 0 cut ^ String.sub src (cut + frame) (size - cut - frame)
    in
    write_file mut mutated;
    (* The invariant under any body damage: a typed outcome, a
       contiguous prefix, and no entry ever surfacing twice. *)
    match Journal.replay ~path:mut () with
    | r ->
      Alcotest.(check int) "next = |entries|" (List.length r.Journal.entries)
        r.Journal.next;
      Alcotest.(check bool) "prefix indices contiguous" true
        (List.mapi (fun i e -> Journal.entry_index e = i) r.Journal.entries
        |> List.for_all Fun.id);
      Alcotest.(check bool) "bounded" true (r.Journal.next <= n);
      Alcotest.(check bool) "good_bytes sane" true
        (r.Journal.good_bytes >= header
        && r.Journal.good_bytes <= String.length mutated)
    | exception Robust_error.Error (Robust_error.Checkpoint_torn _) ->
      (* only reachable when the flip landed in the header *)
      ()
    | exception e ->
      Alcotest.failf "untyped exception from fuzzed journal: %s"
        (Printexc.to_string e)
  done

(* --- engine: run, crash-resume bit-identity, accounting -------------- *)

let test_run_without_journal () =
  let obs = Obs.create ~enabled:true () in
  let o = Campaign.run_with ~obs ~evaluate:fake spec in
  Alcotest.(check int) "total" 12 o.Campaign.report.Campaign.r_total;
  Alcotest.(check int) "completed" 12 o.Campaign.report.Campaign.r_completed;
  Alcotest.(check int) "evaluated" 12 o.Campaign.evaluated;
  Alcotest.(check int) "resumed" 0 o.Campaign.resumed;
  Alcotest.(check int) "samples counter" 12 (counter obs "campaign.samples");
  Alcotest.(check int) "no journal records" 0
    (counter obs "campaign.journal.records");
  Alcotest.(check int) "snapshot count" 12
    o.Campaign.report.Campaign.r_delay.Stream_stats.s_count

let test_resume_bit_identity () =
  with_tmp ".j" @@ fun j1 ->
  with_tmp ".j" @@ fun j2 ->
  let uninterrupted =
    Campaign.run_with ~obs:(Obs.create ~enabled:true ()) ~journal:j1
      ~evaluate:fake spec
  in
  let golden = report_str uninterrupted in
  Alcotest.(check int) "journal size" (header + (12 * frame))
    (String.length (read_file j1));
  (* Crash simulation: a full journal cut mid-record 5, as if the
     process died between a write and its fsync. *)
  let (_ : Campaign.run_outcome) =
    Campaign.run_with ~journal:j2 ~evaluate:fake spec
  in
  let src = read_file j2 in
  write_file j2 (String.sub src 0 (header + (5 * frame) + 13));
  let obs = Obs.create ~enabled:true () in
  let resumed =
    Campaign.run_with ~obs ~journal:j2 ~resume:true ~evaluate:fake spec
  in
  Alcotest.(check int) "resumed" 5 resumed.Campaign.resumed;
  Alcotest.(check int) "re-evaluated" 7 resumed.Campaign.evaluated;
  (match resumed.Campaign.torn with
  | Some (Robust_error.Torn_truncated _) -> ()
  | _ -> Alcotest.fail "expected a truncated tear");
  Alcotest.(check string) "report bit-identical to uninterrupted run" golden
    (report_str resumed);
  (* No sample is ever double-counted: replayed + evaluated covers the
     spec exactly once, visibly in the obs registry. *)
  Alcotest.(check int) "replayed counter" 5 (counter obs "campaign.replayed");
  Alcotest.(check int) "samples counter" 7 (counter obs "campaign.samples");
  Alcotest.(check int) "records appended" 7
    (counter obs "campaign.journal.records");
  Alcotest.(check int) "duplicates" 0 (counter obs "campaign.journal.duplicates");
  Alcotest.(check int) "tear counted" 1
    (counter obs "campaign.journal.torn.truncated");
  (* The resumed journal healed: full replay, no tear, and resuming a
     complete journal re-evaluates nothing yet reports identically. *)
  let r = Journal.replay ~path:j2 ~expect_hash:(Campaign.spec_hash spec) () in
  Alcotest.(check int) "healed journal" 12 r.Journal.next;
  Alcotest.(check bool) "healed tail" true (r.Journal.torn = None);
  let again =
    Campaign.run_with ~journal:j2 ~resume:true ~evaluate:fake spec
  in
  Alcotest.(check int) "nothing left" 0 again.Campaign.evaluated;
  Alcotest.(check string) "idempotent resume" golden (report_str again)

let test_resume_with_quarantine () =
  with_tmp ".j" @@ fun j1 ->
  with_tmp ".j" @@ fun j2 ->
  let obs1 = Obs.create ~enabled:true () in
  let uninterrupted =
    Campaign.run_with ~obs:obs1 ~journal:j1 ~evaluate:flaky spec
  in
  Alcotest.(check int) "completed" 10 uninterrupted.Campaign.report.Campaign.r_completed;
  Alcotest.(check bool) "quarantine reasons journaled" true
    (uninterrupted.Campaign.report.Campaign.r_quarantined
    = [ (3, flaky_reason); (8, flaky_reason) ]);
  Alcotest.(check int) "quarantined counter" 2
    (counter obs1 "campaign.quarantined");
  (* Quarantined frames are variable-length, so damage the tail without
     offset arithmetic: chop the last 10 bytes. *)
  let (_ : Campaign.run_outcome) =
    Campaign.run_with ~journal:j2 ~evaluate:flaky spec
  in
  let src = read_file j2 in
  write_file j2 (String.sub src 0 (String.length src - 10));
  let resumed =
    Campaign.run_with ~journal:j2 ~resume:true ~evaluate:flaky spec
  in
  Alcotest.(check int) "one sample re-evaluated" 1 resumed.Campaign.evaluated;
  Alcotest.(check string) "quarantines replay bit-identically"
    (report_str uninterrupted) (report_str resumed)

let test_abort_keeps_synced_prefix () =
  with_tmp ".j" @@ fun path ->
  (* Not_found is outside the quarantine predicate: the run must abort,
     but the journal keeps the synced prefix for a later resume. *)
  let boom (s : Campaign.sample) =
    if s.Campaign.s_index = 4 then raise Not_found else fake s
  in
  (match Campaign.run_with ~journal:path ~evaluate:boom spec with
  | (_ : Campaign.run_outcome) -> Alcotest.fail "expected the run to abort"
  | exception Not_found -> ());
  let r = Journal.replay ~path () in
  Alcotest.(check int) "synced prefix survives" 4 r.Journal.next;
  let resumed =
    Campaign.run_with ~journal:path ~resume:true ~evaluate:fake spec
  in
  Alcotest.(check int) "resume picks up after abort" 8 resumed.Campaign.evaluated

let test_checkpoint_cadence_and_status () =
  with_tmp ".j" @@ fun path ->
  let obs = Obs.create ~enabled:true () in
  let o =
    Campaign.run_with ~obs ~journal:path ~checkpoint_every:5 ~evaluate:flaky
      spec
  in
  (* The final record forces a sync regardless of cadence, so the file
     is complete. *)
  let r = Journal.replay ~path () in
  Alcotest.(check int) "all records present" 12 r.Journal.next;
  Alcotest.(check int) "samples counted once" 12 (counter obs "campaign.samples");
  let st = Campaign.status ~journal:path ~spec () in
  Alcotest.(check int) "recorded" 12 st.Campaign.st_recorded;
  Alcotest.(check int) "completed" 10 st.Campaign.st_completed;
  Alcotest.(check int) "quarantined" 2 st.Campaign.st_quarantined;
  Alcotest.(check bool) "total" true (st.Campaign.st_total = Some 12);
  Alcotest.(check int) "hash surfaced" (Campaign.spec_hash spec)
    st.Campaign.st_spec_hash;
  Alcotest.(check int) "outcome total" 12 o.Campaign.report.Campaign.r_total;
  (* Another spec's status probe refuses the journal fatally. *)
  match Campaign.status ~journal:path ~spec:{ spec with Campaign.seed = 8 } () with
  | (_ : Campaign.status) -> Alcotest.fail "stale spec accepted"
  | exception
      Robust_error.Error
        (Robust_error.Checkpoint_torn
           { reason = Robust_error.Torn_spec_mismatch _; _ }) ->
    ()

let test_run_quarantines_injected_fault () =
  (* with_spec swaps out any ambient campaign, so this is exact even
     under the CI fault legs. *)
  let table = synthetic_table () in
  let small =
    {
      spec with
      Campaign.samples = 3;
      widths = [ 12 ];
      charges = [ 0. ];
      gammas = [ 1. ];
      ops = [ (0.4, 0.13) ];
    }
  in
  let o =
    Fault.with_spec "campaign.sample#2" (fun () ->
        Campaign.run ~executor:(fun _ _ -> table) small)
  in
  Alcotest.(check int) "completed" 2 o.Campaign.report.Campaign.r_completed;
  Alcotest.(check bool) "hit 2 quarantined" true
    (o.Campaign.report.Campaign.r_quarantined
    = [ (1, "injected fault at site campaign.sample (hit 2)") ]);
  Alcotest.(check bool) "metrics flow from the table" true
    (o.Campaign.report.Campaign.r_delay.Stream_stats.s_min > 0.)

(* --- hardened serve client vs a scripted stub daemon ----------------- *)

type stub_reply = Busy of int option | Pong | Silent | Close_conn

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "gnrfet-camp-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* One scripted connection per element of [scripts]: each incoming
   request line consumes the next reply of that connection's script;
   the connection closes when its script runs out. *)
let with_stub scripts f =
  let path = fresh_sock () in
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 8;
  let serve_conn fd script =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec go script =
      match script with
      | [] -> ()
      | action :: rest -> (
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> ()
        | _line -> (
          match action with
          | Busy hint ->
            output_string oc
              (Serve_protocol.error_line ~id:None
                 {
                   Serve_protocol.kind = "busy";
                   detail = "queue full";
                   retry_after_ms = hint;
                 });
            output_char oc '\n';
            flush oc;
            go rest
          | Pong ->
            output_string oc
              (Serve_protocol.ok_line ~id:None (Sjson.Str "pong"));
            output_char oc '\n';
            flush oc;
            go rest
          | Silent ->
            (* swallow the request; keep reading until the client gives
               up and closes (EOF above ends the connection) *)
            go script
          | Close_conn -> ()))
    in
    go script;
    match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ()
  in
  let th =
    Thread.create
      (fun () ->
        List.iter
          (fun script ->
            match Unix.accept listen with
            | fd, _ -> serve_conn fd script
            | exception Unix.Unix_error _ -> ())
          scripts)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* If the test body bailed before dialing every scripted
         connection, feed the acceptor dummies so the join can't hang. *)
      List.iter
        (fun _ ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          match Unix.close fd with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        scripts;
      Thread.join th;
      (match Unix.close listen with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      match Sys.remove path with () -> () | exception Sys_error _ -> ())
    (fun () -> f path)

let ping = { Serve_protocol.id = None; op = Serve_protocol.Ping }

let recording_config ?(max_attempts = 4) ?(timeout = 5.) sleeps =
  {
    Serve_client.default_config with
    Serve_client.request_timeout_s = timeout;
    max_attempts;
    jitter_seed = 9;
    sleep_ms = (fun ms -> sleeps := ms :: !sleeps);
  }

let test_client_honors_retry_hint () =
  let sleeps = ref [] in
  with_stub [ [ Busy (Some 17); Busy (Some 17); Pong ] ] (fun path ->
      let t =
        Serve_client.connect ~config:(recording_config sleeps) ~path ()
      in
      Fun.protect
        ~finally:(fun () -> Serve_client.close t)
        (fun () ->
          match Serve_client.call t ping with
          | { Serve_protocol.result = Ok _; _ } -> ()
          | _ -> Alcotest.fail "expected the third attempt to succeed"));
  let sleeps = List.rev !sleeps in
  Alcotest.(check int) "two backoffs" 2 (List.length sleeps);
  (* retry_after_ms = 17 plus deterministic jitter in [0, 17/4). *)
  List.iter
    (fun ms ->
      Alcotest.(check bool)
        (Printf.sprintf "sleep %dms honors the 17ms hint" ms)
        true
        (ms >= 17 && ms < 17 + 4))
    sleeps

let test_client_busy_exhaustion () =
  let sleeps = ref [] in
  with_stub
    [ [ Busy None; Busy None ] ]
    (fun path ->
      let t =
        Serve_client.connect
          ~config:(recording_config ~max_attempts:2 sleeps)
          ~path ()
      in
      Fun.protect
        ~finally:(fun () -> Serve_client.close t)
        (fun () ->
          (* A daemon busy through the whole budget is returned, not
             raised: the caller (the campaign executor) decides. *)
          match Serve_client.call t ping with
          | { Serve_protocol.result = Error { Serve_protocol.kind = "busy"; _ }; _ }
            ->
            ()
          | _ -> Alcotest.fail "expected the final busy response back"));
  match List.rev !sleeps with
  | [ ms ] ->
    (* no hint: exponential backoff base 50ms, jitter in [0, 50/4) *)
    Alcotest.(check bool)
      (Printf.sprintf "backoff %dms in [50, 62)" ms)
      true
      (ms >= 50 && ms < 62)
  | l -> Alcotest.failf "expected exactly one backoff, got %d" (List.length l)

let test_client_reconnects_after_eof () =
  let sleeps = ref [] in
  with_stub
    [ [ Pong; Close_conn ]; [ Pong ] ]
    (fun path ->
      let t =
        Serve_client.connect ~config:(recording_config sleeps) ~path ()
      in
      Fun.protect
        ~finally:(fun () -> Serve_client.close t)
        (fun () ->
          (match Serve_client.call t ping with
          | { Serve_protocol.result = Ok _; _ } -> ()
          | _ -> Alcotest.fail "first call failed");
          (* The daemon hangs up; the next call must reconnect
             transparently and succeed on the second connection. *)
          match Serve_client.call t ping with
          | { Serve_protocol.result = Ok _; _ } -> ()
          | _ -> Alcotest.fail "call after EOF failed"))

let test_client_timeout () =
  let sleeps = ref [] in
  with_stub
    [ [ Silent ] ]
    (fun path ->
      let t =
        Serve_client.connect
          ~config:(recording_config ~timeout:0.05 sleeps)
          ~path ()
      in
      Fun.protect
        ~finally:(fun () -> Serve_client.close t)
        (fun () ->
          match Serve_client.call t ping with
          | (_ : Serve_protocol.response) ->
            Alcotest.fail "expected a deadline miss"
          | exception
              Robust_error.Error
                (Robust_error.Client_timeout { op = "ping"; deadline_s }) ->
            approx ~eps:1e-9 "deadline surfaced" 0.05 deadline_s
          | exception e ->
            Alcotest.failf "untyped timeout: %s" (Printexc.to_string e)));
  (* Timeouts are not retried — a wedged daemon must not multiply the
     caller's latency by max_attempts. *)
  Alcotest.(check int) "no retry sleeps" 0 (List.length !sleeps)

let test_client_circuit_breaker () =
  let path = fresh_sock () in
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 1;
  let th =
    Thread.create
      (fun () ->
        match Unix.accept listen with
        | fd, _ ->
          let ic = Unix.in_channel_of_descr fd in
          (match input_line ic with
          | (_ : string) -> ()
          | exception (End_of_file | Sys_error _) -> ());
          (match Unix.close fd with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  let cfg =
    {
      Serve_client.default_config with
      Serve_client.max_attempts = 1;
      breaker_threshold = 2;
      breaker_cooldown_s = 60.;
      sleep_ms = ignore;
    }
  in
  let t = Serve_client.connect ~config:cfg ~path () in
  Fun.protect
    ~finally:(fun () -> Serve_client.close t)
    (fun () ->
      let expect_disconnect label f =
        match f () with
        | (_ : Serve_protocol.response) ->
          Alcotest.failf "%s: expected a disconnect" label
        | exception
            Robust_error.Error (Robust_error.Client_disconnected { detail; _ })
          ->
          detail
        | exception e ->
          Alcotest.failf "%s: untyped %s" label (Printexc.to_string e)
      in
      (* Failure 1: the daemon hangs up mid-request. *)
      let (_ : string) =
        expect_disconnect "hangup" (fun () -> Serve_client.call t ping)
      in
      Thread.join th;
      Unix.close listen;
      Sys.remove path;
      (* Failure 2: the socket is gone, reconnect fails — threshold
         reached, breaker opens. *)
      let d2 =
        expect_disconnect "reconnect" (fun () -> Serve_client.call t ping)
      in
      Alcotest.(check bool) "reconnect failure typed" true
        (String.length d2 > 0);
      (* Failure 3: fails fast without touching the socket at all. *)
      let d3 =
        expect_disconnect "fast-fail" (fun () -> Serve_client.call t ping)
      in
      Alcotest.(check string) "breaker open" "circuit breaker open" d3)

(* --- serve executor degrades to local generation --------------------- *)

let micro_grid =
  { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 3; vd_max = 0.3; n_vd = 2 }

let with_temp_cache f =
  let dir = Filename.temp_file "gnrfet_campaign_cache" "" in
  Sys.remove dir;
  Unix.putenv "GNRFET_TABLE_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GNRFET_TABLE_DIR" "_tables";
      Table_cache.clear_memory ();
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Table_cache.clear_memory ();
      f ())

let test_serve_executor_fallback () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  with_temp_cache @@ fun () ->
  let sleeps = ref [] in
  let was_enabled = Obs.enabled Obs.global in
  Obs.set_enabled Obs.global true;
  let before = Obs.counter_value "campaign.serve_fallbacks" in
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled Obs.global was_enabled)
    (fun () ->
      with_stub
        [ [ Busy (Some 5); Busy (Some 5) ] ]
        (fun path ->
          let client =
            Serve_client.connect
              ~config:(recording_config ~max_attempts:2 sleeps)
              ~path ()
          in
          Fun.protect
            ~finally:(fun () -> Serve_client.close client)
            (fun () ->
              let ctx = Ctx.make ~parallel:false () in
              let exec = Campaign.serve_executor ~fallback:ctx client () in
              (* A daemon busy through the whole retry budget costs
                 time, never the sample: the table still materializes
                 locally. *)
              let table = exec (tiny_device ()) (Some micro_grid) in
              Alcotest.(check int) "table generated locally" 3
                (Array.length table.Iv_table.vg))));
  Alcotest.(check int) "client backed off before degrading" 1
    (List.length !sleeps);
  Alcotest.(check int) "fallback counted" 1
    (Obs.counter_value "campaign.serve_fallbacks" - before)

(* --- daemon counts mid-response client disconnects ------------------- *)

let test_daemon_counts_client_disconnects () =
  let obs = Obs.create ~enabled:true () in
  let config =
    { Serve.default_config with Serve.ctx = Ctx.make ~parallel:false ~obs () }
  in
  let server = Serve.create ~config () in
  let path = fresh_sock () in
  let th = Thread.create (fun () -> Serve.serve_unix server ~path) () in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec dial () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server socket never came up";
      Thread.delay 0.01;
      dial ()
  in
  (* Write a request and hang up before the response: the handler's
     write hits EPIPE on a Unix socket whose peer is gone.  The race
     (daemon answering before the close lands) is real, so retry a few
     fast rounds instead of asserting a single shot. *)
  let line = Serve_protocol.request_to_line ping ^ "\n" in
  let rec provoke round =
    if Obs.counter_value ~obs "serve.client_disconnects" >= 1 then ()
    else if round > 25 then
      Alcotest.fail "disconnect mid-response never counted"
    else begin
      let fd = dial () in
      (match Unix.write_substring fd line 0 (String.length line) with
      | (_ : int) -> ()
      | exception Unix.Unix_error _ -> ());
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      Thread.delay 0.02;
      provoke (round + 1)
    end
  in
  provoke 0;
  let c = Serve_client.connect ~path () in
  (match
     Serve_client.request c { Serve_protocol.id = Some 1; op = Serve_protocol.Shutdown }
   with
  | { Serve_protocol.result = Ok _; _ } -> ()
  | _ -> Alcotest.fail "shutdown failed");
  Serve_client.close c;
  Thread.join th

let suite =
  [
    Alcotest.test_case "spec codec roundtrip + rejects" `Quick test_spec_codec;
    Alcotest.test_case "spec hash" `Quick test_spec_hash;
    Alcotest.test_case "sample expansion deterministic" `Quick
      test_sample_expansion;
    Alcotest.test_case "stream stats" `Quick test_stream_stats;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal truncated tail" `Quick
      test_journal_truncated_tail;
    Alcotest.test_case "journal CRC flip" `Quick test_journal_crc_flip;
    Alcotest.test_case "journal duplicate record" `Quick
      test_journal_duplicate_record;
    Alcotest.test_case "journal out-of-order tail" `Quick
      test_journal_out_of_order;
    Alcotest.test_case "journal header damage + stale hash" `Quick
      test_journal_header_damage;
    Alcotest.test_case "journal corruption fuzz" `Quick test_journal_fuzz;
    Alcotest.test_case "run without journal" `Quick test_run_without_journal;
    Alcotest.test_case "crash-resume bit identity" `Quick
      test_resume_bit_identity;
    Alcotest.test_case "resume replays quarantines" `Quick
      test_resume_with_quarantine;
    Alcotest.test_case "abort keeps synced prefix" `Quick
      test_abort_keeps_synced_prefix;
    Alcotest.test_case "checkpoint cadence + status" `Quick
      test_checkpoint_cadence_and_status;
    Alcotest.test_case "injected fault quarantines" `Quick
      test_run_quarantines_injected_fault;
    Alcotest.test_case "client honors retry_after_ms" `Quick
      test_client_honors_retry_hint;
    Alcotest.test_case "client returns final busy" `Quick
      test_client_busy_exhaustion;
    Alcotest.test_case "client reconnects after EOF" `Quick
      test_client_reconnects_after_eof;
    Alcotest.test_case "client deadline" `Quick test_client_timeout;
    Alcotest.test_case "client circuit breaker" `Quick
      test_client_circuit_breaker;
    Alcotest.test_case "serve executor degrades to local" `Quick
      test_serve_executor_fallback;
    Alcotest.test_case "daemon counts client disconnects" `Quick
      test_daemon_counts_client_disconnects;
  ]
