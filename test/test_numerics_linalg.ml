(* Tests for Matrix, Cmatrix, Eigen, Tridiag, Banded, Sparse. *)

open Support

let test_matrix_basics () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  approx "get" 3. (Matrix.get a 1 0);
  let at = Matrix.transpose a in
  approx "transpose" 2. (Matrix.get at 1 0);
  let id = Matrix.identity 2 in
  let b = Matrix.mul a id in
  approx "mul identity" 4. (Matrix.get b 1 1);
  let v = Matrix.mul_vec a [| 1.; 1. |] in
  approx "mul_vec" 3. v.(0);
  approx "mul_vec'" 7. v.(1);
  check_raises_invalid "ragged" (fun () ->
      Matrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |])

let test_matrix_solve () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Matrix.solve a [| 3.; 5. |] in
  (* 2x + y = 3; x + 3y = 5 -> x = 4/5, y = 7/5. *)
  approx ~eps:1e-12 "x" 0.8 x.(0);
  approx ~eps:1e-12 "y" 1.4 x.(1)

let test_matrix_inverse () =
  let a = diag_dominant 6 in
  let ainv = Matrix.inverse a in
  let prod = Matrix.mul a ainv in
  let err = Matrix.max_abs (Matrix.sub prod (Matrix.identity 6)) in
  Alcotest.(check bool) "A * inv(A) = I" true (err < 1e-10)

let test_matrix_singular () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Matrix.lu_factor a with
  | exception Numerics_error.Singular { solver = "Matrix.lu_factor"; _ } -> ()
  | exception Numerics_error.Singular { solver; _ } ->
    Alcotest.failf "Singular from unexpected solver %s" solver
  | _ -> Alcotest.fail "expected singularity failure"

let prop_matrix_solve_residual =
  qtest ~count:40 "LU solve residual" QCheck.(int_range 2 10) (fun n ->
      let a = diag_dominant n in
      let b = random_vector n in
      let x = Matrix.solve a b in
      Vec.norm_inf (Vec.sub (Matrix.mul_vec a x) b) < 1e-9)

let cx re im = { Complex.re; im }

let test_cmatrix_inverse () =
  let n = 5 in
  let a =
    Cmatrix.init n n (fun i j ->
        if i = j then cx (3. +. Rng.uniform rng 0. 1.) 0.5
        else cx (Rng.uniform rng (-0.4) 0.4) (Rng.uniform rng (-0.4) 0.4))
  in
  let ainv = Cmatrix.inverse a in
  let err = Cmatrix.frobenius_diff (Cmatrix.mul a ainv) (Cmatrix.identity n) in
  Alcotest.(check bool) "A * inv(A) = I (complex)" true (err < 1e-10)

let test_cmatrix_solve_matches_inverse () =
  let n = 4 in
  let a =
    Cmatrix.init n n (fun i j ->
        if i = j then cx 2.5 1. else cx (0.3 /. float_of_int (1 + i + j)) (-0.2))
  in
  let b = Array.init n (fun i -> cx (float_of_int i) 1.) in
  let x = Cmatrix.solve a b in
  let x2 =
    let ainv = Cmatrix.inverse a in
    Array.init n (fun i ->
        let acc = ref Complex.zero in
        for j = 0 to n - 1 do
          acc := Complex.add !acc (Complex.mul (Cmatrix.get ainv i j) b.(j))
        done;
        !acc)
  in
  Array.iteri
    (fun i v -> approx ~eps:1e-10 "solve vs inverse" (Complex.norm x2.(i)) (Complex.norm v))
    x

let test_cmatrix_adjoint () =
  let a = Cmatrix.init 2 3 (fun i j -> cx (float_of_int i) (float_of_int j)) in
  let ad = Cmatrix.adjoint a in
  let rows, cols = Cmatrix.dims ad in
  Alcotest.(check (pair int int)) "dims" (3, 2) (rows, cols);
  let z = Cmatrix.get ad 2 1 in
  approx "re" 1. z.Complex.re;
  approx "im (conjugated)" (-2.) z.Complex.im

let test_eigen_known () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3. *)
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let values, vectors = Eigen.symmetric a in
  approx ~eps:1e-10 "lambda1" 1. values.(0);
  approx ~eps:1e-10 "lambda2" 3. values.(1);
  (* Check A v = lambda v for the first column. *)
  let v = Array.init 2 (fun i -> Matrix.get vectors i 0) in
  let av = Matrix.mul_vec a v in
  approx ~eps:1e-9 "eigvec residual" 0. (Vec.norm_inf (Vec.sub av (Vec.scale values.(0) v)))

let test_eigen_trace () =
  let a = diag_dominant 7 in
  let sym = Matrix.init 7 7 (fun i j -> 0.5 *. (Matrix.get a i j +. Matrix.get a j i)) in
  let values = Eigen.symmetric_values sym in
  let trace = ref 0. in
  for i = 0 to 6 do
    trace := !trace +. Matrix.get sym i i
  done;
  approx ~eps:1e-8 "sum of eigenvalues = trace" !trace (Vec.sum values)

let test_eigen_hermitian () =
  (* [[1, i],[-i, 1]] has eigenvalues 0 and 2. *)
  let h =
    Cmatrix.init 2 2 (fun i j ->
        match (i, j) with
        | 0, 0 | 1, 1 -> cx 1. 0.
        | 0, 1 -> cx 0. 1.
        | 1, 0 -> cx 0. (-1.)
        | _ -> assert false)
  in
  let values = Eigen.hermitian_values h in
  approx ~eps:1e-9 "lambda1" 0. values.(0);
  approx ~eps:1e-9 "lambda2" 2. values.(1)

let test_tridiag () =
  let n = 12 in
  let lower = Array.make n (-1.) and upper = Array.make n (-1.) in
  let diag = Array.make n 3. in
  let x_true = random_vector n in
  let rhs =
    Array.init n (fun i ->
        (3. *. x_true.(i))
        -. (if i > 0 then x_true.(i - 1) else 0.)
        -. if i < n - 1 then x_true.(i + 1) else 0.)
  in
  let x = Tridiag.solve ~lower ~diag ~upper ~rhs in
  approx ~eps:1e-10 "tridiag solve" 0. (Vec.max_abs_diff x x_true)

let test_tridiag_complex () =
  let n = 6 in
  let lower = Array.make n (cx (-0.5) 0.1) in
  let upper = Array.make n (cx (-0.5) (-0.1)) in
  let diag = Array.make n (cx 3. 0.4) in
  let x_true = Array.init n (fun i -> cx (float_of_int i) 0.5) in
  let rhs =
    Array.init n (fun k ->
        let open Complex in
        let acc = mul diag.(k) x_true.(k) in
        let acc = if k > 0 then add acc (mul lower.(k) x_true.(k - 1)) else acc in
        if k < n - 1 then add acc (mul upper.(k) x_true.(k + 1)) else acc)
  in
  let x = Tridiag.solve_complex ~lower ~diag ~upper ~rhs in
  Array.iteri
    (fun i v ->
      approx ~eps:1e-10 "complex tridiag" 0. (Complex.norm (Complex.sub v x_true.(i))))
    x

let test_banded_vs_dense () =
  let n = 15 and kl = 3 in
  let dense =
    Matrix.init n n (fun i j ->
        if abs (i - j) > kl then 0.
        else if i = j then 5.
        else Rng.uniform rng (-0.5) 0.5)
  in
  let banded = Banded.create ~n ~bandwidth:kl in
  for i = 0 to n - 1 do
    for j = max 0 (i - kl) to min (n - 1) (i + kl) do
      Banded.set banded i j (Matrix.get dense i j)
    done
  done;
  let b = random_vector n in
  let x_dense = Matrix.solve dense b in
  let x_banded = Banded.solve_fresh banded b in
  approx ~eps:1e-9 "banded = dense" 0. (Vec.max_abs_diff x_dense x_banded)

let test_banded_errors () =
  let m = Banded.create ~n:5 ~bandwidth:1 in
  check_raises_invalid "outside band" (fun () -> Banded.set m 0 3 1.);
  Banded.set m 0 0 1.;
  approx "get inside" 1. (Banded.get m 0 0);
  approx "get outside band" 0. (Banded.get m 0 4)

let laplacian_1d n =
  let b = Sparse.Builder.create n in
  for i = 0 to n - 1 do
    Sparse.Builder.add b i i 2.;
    if i > 0 then Sparse.Builder.add b i (i - 1) (-1.);
    if i < n - 1 then Sparse.Builder.add b i (i + 1) (-1.)
  done;
  Sparse.Builder.finalize b

let test_sparse_cg () =
  skip_if_fault_armed [ "sparse.cg" ];
  let n = 40 in
  let a = laplacian_1d n in
  let x_true = random_vector n in
  let b = Sparse.mul_vec a x_true in
  let x, iters = Sparse.cg a b in
  Alcotest.(check bool) "iterations positive" true (iters > 0);
  approx ~eps:1e-7 "cg solution" 0. (Vec.max_abs_diff x x_true)

let test_sparse_sor () =
  let n = 25 in
  let a = laplacian_1d n in
  let x_true = random_vector n in
  let b = Sparse.mul_vec a x_true in
  let x, _ = Sparse.sor ~tol:1e-11 a b in
  approx ~eps:1e-7 "sor solution" 0. (Vec.max_abs_diff x x_true)

let test_sparse_no_convergence_typed () =
  skip_if_fault_armed [ "sparse.cg" ];
  (* An unreachable tolerance must raise the typed exception with the
     iteration cap and the achieved residual — not a bare Failure. *)
  let n = 30 in
  let a = laplacian_1d n in
  let b = Sparse.mul_vec a (random_vector n) in
  (* The default 1e-10 tolerance is unreachable in so few iterations. *)
  (match Sparse.cg ~max_iter:2 a b with
  | exception Sparse.No_convergence { solver; iterations; residual } ->
    Alcotest.(check string) "cg solver tag" "cg" solver;
    Alcotest.(check int) "cg iterations = cap" 2 iterations;
    Alcotest.(check bool) "cg residual recorded" true
      (Float.is_finite residual && residual > 0.)
  | _ -> Alcotest.fail "cg: expected No_convergence");
  match Sparse.sor ~max_iter:3 a b with
  | exception Sparse.No_convergence { solver; iterations; residual } ->
    Alcotest.(check string) "sor solver tag" "sor" solver;
    Alcotest.(check int) "sor iterations = cap" 3 iterations;
    Alcotest.(check bool) "sor residual recorded" true
      (Float.is_finite residual && residual > 0.)
  | _ -> Alcotest.fail "sor: expected No_convergence"

let test_sparse_builder_duplicates () =
  let b = Sparse.Builder.create 2 in
  Sparse.Builder.add b 0 0 1.;
  Sparse.Builder.add b 0 0 2.;
  Sparse.Builder.add b 1 1 1.;
  let m = Sparse.Builder.finalize b in
  let d = Sparse.diagonal m in
  approx "duplicates sum" 3. d.(0)

let suite =
  [
    Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
    Alcotest.test_case "matrix solve" `Quick test_matrix_solve;
    Alcotest.test_case "matrix inverse" `Quick test_matrix_inverse;
    Alcotest.test_case "matrix singular" `Quick test_matrix_singular;
    prop_matrix_solve_residual;
    Alcotest.test_case "cmatrix inverse" `Quick test_cmatrix_inverse;
    Alcotest.test_case "cmatrix solve" `Quick test_cmatrix_solve_matches_inverse;
    Alcotest.test_case "cmatrix adjoint" `Quick test_cmatrix_adjoint;
    Alcotest.test_case "eigen 2x2" `Quick test_eigen_known;
    Alcotest.test_case "eigen trace" `Quick test_eigen_trace;
    Alcotest.test_case "eigen hermitian" `Quick test_eigen_hermitian;
    Alcotest.test_case "tridiag real" `Quick test_tridiag;
    Alcotest.test_case "tridiag complex" `Quick test_tridiag_complex;
    Alcotest.test_case "banded vs dense" `Quick test_banded_vs_dense;
    Alcotest.test_case "banded errors" `Quick test_banded_errors;
    Alcotest.test_case "sparse cg" `Quick test_sparse_cg;
    Alcotest.test_case "sparse sor" `Quick test_sparse_sor;
    Alcotest.test_case "sparse typed no-convergence" `Quick
      test_sparse_no_convergence_typed;
    Alcotest.test_case "sparse builder duplicates" `Quick test_sparse_builder_duplicates;
  ]
