(* gnrlint rule harness: runs the analysis engine in-process over the
   fixture corpus in test/lint_fixtures/ (deliberate violations, parsed
   by the linter but never compiled) and asserts exact diagnostics per
   rule family, plus SARIF/JSON emitter shape and the versioned-baseline
   staleness classification.

   The fixture dir is excluded from Engine.default_config, so the repo
   lint alias and `gnrfet_cli lint` never count these violations; the
   tests here opt back in with an empty exclude list. *)

module E = Gnrlint_lib.Engine
module D = Gnrlint_lib.Diag
module B = Gnrlint_lib.Baseline
module R = Gnrlint_lib.Report

let fixture_config =
  { E.default_config with E.dirs = [ "lint_fixtures" ]; exclude = [] }

(* One analysis, shared by all tests (the engine is pure per call). *)
let diags = lazy (E.analyze fixture_config)

let by_rule rule =
  List.filter (fun d -> d.D.d_rule = rule) (Lazy.force diags)

let locs ds = List.map (fun d -> (d.D.d_file, d.D.d_line)) ds

let check_locs msg rule expected =
  Alcotest.(check (list (pair string int))) msg expected (locs (by_rule rule))

(* Line numbers below are anchored to the fixture sources; a fixture
   edit that moves a case must update them. *)

let test_domain_race () =
  check_locs "domain-race sites" "domain-race"
    [ ("lint_fixtures/race_driver.ml", 10); ("lint_fixtures/race_driver.ml", 15) ]

let test_domain_race_cross_module () =
  (* Acceptance: the race reported at the Parallel.map_reduce call in
     race_driver.ml is caused by a write inside race_helper.ml — a
     cross-module finding the old per-file domain-capture rule could
     not produce (it only saw captures within one file). *)
  match by_rule "domain-race" with
  | [] -> Alcotest.fail "no domain-race finding"
  | d :: _ ->
    Alcotest.(check string) "reported at the parallel call site"
      "lint_fixtures/race_driver.ml" d.D.d_file;
    let mentions needle =
      let msg = d.D.d_msg in
      let nh = String.length msg and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the cross-module cell" true
      (mentions "Race_helper.counts");
    Alcotest.(check bool) "points into race_helper.ml" true
      (mentions "lint_fixtures/race_helper.ml")

let test_nondet_path () =
  check_locs "nondet-path sites" "nondet-path"
    [ ("lint_fixtures/nondet_core.ml", 7); ("lint_fixtures/nondet_core.ml", 13) ]

let test_lock_safety () =
  check_locs "lock-safety sites" "lock-safety"
    [ ("lint_fixtures/lock_fixture.ml", 7); ("lint_fixtures/lock_fixture.ml", 13) ]

let test_span_balance () =
  check_locs "span-balance sites" "span-balance"
    [ ("lint_fixtures/span_fixture.ml", 8) ]

let test_float_eq () =
  check_locs "float-eq sites" "float-eq" [ ("lint_fixtures/float_fixture.ml", 5) ]

let test_hot_alloc () =
  (* Line 16 carries three findings (add, adjoint, sub in one call);
     the suppressed naive-reference case at the fixture's tail and the
     loop-free setup call must stay silent. *)
  check_locs "hot-alloc sites" "hot-alloc"
    [
      ("lint_fixtures/negf/hot_alloc_fixture.ml", 8);
      ("lint_fixtures/negf/hot_alloc_fixture.ml", 9);
      ("lint_fixtures/negf/hot_alloc_fixture.ml", 16);
      ("lint_fixtures/negf/hot_alloc_fixture.ml", 16);
      ("lint_fixtures/negf/hot_alloc_fixture.ml", 16);
    ]

let test_rendered_form () =
  match by_rule "float-eq" with
  | [ d ] ->
    let s = D.to_string d in
    let prefix = "lint_fixtures/float_fixture.ml:5:" in
    Alcotest.(check string) "rendered prefix" prefix
      (String.sub s 0 (String.length prefix));
    Alcotest.(check bool) "carries the versioned rule tag" true
      (let nh = String.length s in
       let needle = "[float-eq@v1]" in
       let nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
       go 0)
  | ds -> Alcotest.failf "expected exactly one float-eq finding, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Emitters *)

let member k j = match Sjson.member k j with Some v -> v | None -> Alcotest.failf "missing JSON field %s" k
let str j = match Sjson.to_str j with Some s -> s | None -> Alcotest.fail "expected string"
let arr j = match j with Sjson.List l -> l | _ -> Alcotest.fail "expected array"

let test_sarif_shape () =
  let check = B.check [] (Lazy.force diags) in
  let text = R.sarif_report check in
  match Sjson.parse text with
  | Error e -> Alcotest.failf "SARIF did not parse as JSON: %s" e
  | Ok j ->
    Alcotest.(check string) "version" "2.1.0" (str (member "version" j));
    Alcotest.(check bool) "$schema names sarif-schema-2.1.0" true
      (let s = str (member "$schema" j) in
       Filename.basename s = "sarif-schema-2.1.0.json");
    (match arr (member "runs" j) with
    | [ run ] ->
      let driver = member "driver" (member "tool" run) in
      Alcotest.(check string) "driver name" "gnrlint" (str (member "name" driver));
      let rules = arr (member "rules" driver) in
      Alcotest.(check int) "one SARIF rule per registry entry"
        (List.length D.rules) (List.length rules);
      List.iter
        (fun r ->
          ignore (str (member "id" r));
          ignore (str (member "text" (member "shortDescription" r)));
          ignore (str (member "text" (member "fullDescription" r)));
          ignore (str (member "level" (member "defaultConfiguration" r))))
        rules;
      let results = arr (member "results" run) in
      Alcotest.(check int) "one result per finding"
        (List.length (Lazy.force diags))
        (List.length results);
      List.iter
        (fun res ->
          let rule_id = str (member "ruleId" res) in
          Alcotest.(check bool) ("registered rule " ^ rule_id) true
            (D.find_rule rule_id <> None);
          ignore (str (member "text" (member "message" res)));
          Alcotest.(check string) "baselineState" "new" (str (member "baselineState" res));
          match arr (member "locations" res) with
          | [ loc ] ->
            let region = member "region" (member "physicalLocation" loc) in
            (match Sjson.to_int (member "startLine" region) with
            | Some l when l >= 1 -> ()
            | _ -> Alcotest.fail "startLine must be a positive int");
            (match Sjson.to_int (member "startColumn" region) with
            | Some c when c >= 1 -> ()
            | _ -> Alcotest.fail "startColumn must be a positive int (1-based)")
          | _ -> Alcotest.fail "expected exactly one location")
        results
    | _ -> Alcotest.fail "expected exactly one run")

let test_json_shape () =
  let check = B.check [] (Lazy.force diags) in
  match Sjson.parse (R.json_report check) with
  | Error e -> Alcotest.failf "JSON report did not parse: %s" e
  | Ok j ->
    Alcotest.(check string) "schema tag" "gnrfet-lint-v2" (str (member "schema" j));
    Alcotest.(check int) "findings count"
      (List.length (Lazy.force diags))
      (List.length (arr (member "findings" j)));
    List.iter
      (fun f ->
        (match Sjson.to_int (member "ruleVersion" f) with
        | Some v when v >= 1 -> ()
        | _ -> Alcotest.fail "ruleVersion must be >= 1");
        ignore (str (member "severity" f)))
      (arr (member "findings" j))

(* ------------------------------------------------------------------ *)
(* Versioned baseline *)

let test_baseline_versioning () =
  let ds = Lazy.force diags in
  let d = List.hd (by_rule "float-eq") in
  let current = D.to_string d in
  (* Same file/pos/rule but recorded under a different rule version: the
     rule was tightened since the entry was accepted. *)
  let bumped =
    (* rewrite the "@v1]" tag to a version that no longer exists *)
    let needle = "@v1]" in
    let nn = String.length needle in
    let rec find i =
      if i + nn > String.length current then Alcotest.fail "no version tag in rendering"
      else if String.sub current i nn = needle then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub current 0 i ^ "@v999]"
    ^ String.sub current (i + nn) (String.length current - i - nn)
  in
  let gone = "lint_fixtures/float_fixture.ml:999:0: [float-eq@v1] no such finding" in
  let path = Filename.temp_file "gnrlint_baseline" ".txt" in
  Fun.protect ~finally:(fun () ->
      match Sys.remove path with () | (exception Sys_error _) -> ())
  @@ fun () ->
  let oc = open_out path in
  output_string oc (String.concat "\n" [ "# comment"; current; bumped; gone; "" ]);
  close_out oc;
  let check = B.check (B.load path) ds in
  Alcotest.(check (list string)) "exact match accepted" [ current ]
    (List.map D.to_string check.B.accepted);
  Alcotest.(check (list string)) "version bump flagged as version-stale" [ bumped ]
    check.B.version_stale;
  Alcotest.(check (list string)) "fixed finding flagged as stale" [ gone ] check.B.stale;
  Alcotest.(check int) "everything else is fresh"
    (List.length ds - 1)
    (List.length check.B.fresh)

let test_update_baseline_roundtrip () =
  let ds = Lazy.force diags in
  let path = Filename.temp_file "gnrlint_baseline" ".txt" in
  Fun.protect ~finally:(fun () ->
      match Sys.remove path with () | (exception Sys_error _) -> ())
  @@ fun () ->
  B.write path ds;
  let check = B.check (B.load path) ds in
  Alcotest.(check int) "round-trip accepts everything" (List.length ds)
    (List.length check.B.accepted);
  Alcotest.(check int) "nothing fresh" 0 (List.length check.B.fresh);
  Alcotest.(check int) "nothing stale" 0
    (List.length check.B.stale + List.length check.B.version_stale)

let test_repo_self_lint () =
  (* The default exclude list keeps the fixture corpus out of a normal
     run: analyzing test/ with defaults must produce no fixture-path
     diagnostics. *)
  let ds = E.analyze { E.default_config with E.dirs = [ "." ] } in
  List.iter
    (fun d ->
      if Gnrlint_lib.Src.in_dir "lint_fixtures" d.D.d_file then
        Alcotest.failf "fixture diagnostic leaked into a default run: %s" (D.to_string d))
    ds

let suite =
  [
    Alcotest.test_case "domain-race: exact fixture sites" `Quick test_domain_race;
    Alcotest.test_case "domain-race: cross-module acceptance" `Quick
      test_domain_race_cross_module;
    Alcotest.test_case "nondet-path: exact fixture sites" `Quick test_nondet_path;
    Alcotest.test_case "lock-safety: exact fixture sites" `Quick test_lock_safety;
    Alcotest.test_case "span-balance: exact fixture sites" `Quick test_span_balance;
    Alcotest.test_case "float-eq: exact fixture sites" `Quick test_float_eq;
    Alcotest.test_case "hot-alloc: exact fixture sites" `Quick test_hot_alloc;
    Alcotest.test_case "diagnostic rendering carries rule version" `Quick
      test_rendered_form;
    Alcotest.test_case "SARIF 2.1.0 structure" `Quick test_sarif_shape;
    Alcotest.test_case "JSON report structure" `Quick test_json_shape;
    Alcotest.test_case "versioned baseline classification" `Quick
      test_baseline_versioning;
    Alcotest.test_case "baseline write/check round-trip" `Quick
      test_update_baseline_roundtrip;
    Alcotest.test_case "fixtures excluded from default runs" `Quick test_repo_self_lint;
  ]
