(* gnrlint fixture — order/clock-dependent helpers.  scf.ml's solve
   (a deterministic-surface root) reaches [pick] and [order_sum];
   [free_float] is not reachable from any root and must not be
   flagged.  Parsed, never compiled. *)

(* Positive: global-state RNG, reachable from Scf.solve. *)
let pick xs = List.nth xs (Random.int (List.length xs))

(* Clean: explicit-state RNG is deterministic. *)
let seeded st = Random.State.float st 1.0

(* Positive: Hashtbl.fold order is unspecified, reachable from Scf.solve. *)
let order_sum tbl = Hashtbl.fold (fun _ v acc -> v +. acc) tbl 0.

(* Suppressed: deliberately accepted inline. *)
let allowed_fold tbl =
  (* gnrlint: allow nondet-path — fixture: deliberately accepted *)
  Hashtbl.fold (fun _ v acc -> v +. acc) tbl 0.

(* Clean: nondeterministic but unreachable from the surface. *)
let free_float () = Random.float 1.0
