(* gnrlint fixture — span-balance cases.  Parsed, never compiled. *)

let tm = Obs.Timer.make "fixture.timer"

(* Positive: the invalid_arg path skips Obs.Timer.stop, losing the
   sample. *)
let bad_span x =
  let t0 = Obs.Timer.start tm in
  if x < 0 then invalid_arg "span_fixture: negative";
  Obs.Timer.stop tm t0;
  x + 1

(* Clean: Fun.protect ~finally guarantees the stop. *)
let good_span x =
  let t0 = Obs.Timer.start tm in
  Fun.protect ~finally:(fun () -> Obs.Timer.stop tm t0) @@ fun () ->
  if x < 0 then invalid_arg "neg";
  x + 1
