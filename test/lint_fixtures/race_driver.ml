(* gnrlint fixture — parallel entry points whose closures reach the
   mutable state declared in race_helper.ml.  Parsed, never compiled. *)

let local_tbl : (int, int) Hashtbl.t = Hashtbl.create 8

(* Positive: the closure calls Race_helper.bump, which writes the
   top-level Hashtbl Race_helper.counts without a guard.  Only the
   whole-repo call-graph pass can see this. *)
let race_total xs =
  Parallel.map_reduce ~init:0 (fun acc x -> Race_helper.bump x; acc + 1) ( + ) xs

(* Positive: direct write inside the closure body to a top-level cell
   of this module. *)
let race_direct xs =
  Parallel.map_reduce ~init:0 (fun acc x -> Hashtbl.replace local_tbl x 1; acc) ( + ) xs

(* Suppressed: same race, deliberately accepted inline. *)
let race_allowed xs =
  (* gnrlint: allow domain-race — fixture: deliberately accepted *)
  Parallel.map_reduce ~init:0 (fun acc x -> Race_helper.bump x; acc + 1) ( + ) xs

(* Clean: the reached write is to an Atomic cell. *)
let clean_atomic xs =
  Parallel.map_reduce ~init:0 (fun acc _x -> Race_helper.bump_atomic (); acc) ( + ) xs

(* Clean: the reached write is Mutex-guarded. *)
let clean_locked xs =
  Parallel.map_reduce ~init:0 (fun acc _x -> Race_helper.bump_locked (); acc) ( + ) xs
