(* gnrlint fixture — cross-module mutable state.  The parallel entry
   points live in race_driver.ml; the old per-file domain-capture rule
   could not see writes routed through this module.  Parsed by the lint
   tests only, never compiled. *)

let counts : (string, int) Hashtbl.t = Hashtbl.create 8
let hits = Atomic.make 0
let total = ref 0
let mu = Mutex.create ()

(* Unguarded write to a top-level Hashtbl: a race when called from a
   parallel closure. *)
let bump key =
  let n = match Hashtbl.find_opt counts key with Some n -> n | None -> 0 in
  Hashtbl.replace counts key (n + 1)

(* Atomic cell: safe. *)
let bump_atomic () = Atomic.incr hits

(* Mutex-guarded write: safe (function-level guard detection). *)
let bump_locked () = Mutex.protect mu (fun () -> total := !total + 1)
