(* gnrlint fixture — per-file syntactic rule smoke case.  Parsed,
   never compiled. *)

(* Positive: structural equality against a nonzero float literal. *)
let near x = x = 3.14

(* Clean: exact-zero comparison is the exempt sentinel idiom. *)
let zero_ok x = x = 0.
