(* gnrlint fixture — lock-safety cases.  Parsed, never compiled. *)

let mu = Mutex.create ()

(* Positive: invalid_arg fires while the lock is held. *)
let bad_raise q =
  Mutex.lock mu;
  if q < 0 then invalid_arg "lock_fixture: negative";
  Mutex.unlock mu;
  q + 1

(* Positive: no unlock anywhere in the function. *)
let bad_leak () = Mutex.lock mu

(* Clean: Mutex.protect releases on every path by construction. *)
let good_protect q = Mutex.protect mu (fun () -> if q < 0 then invalid_arg "neg"; q + 1)

(* Clean: Fun.protect ~finally carries the unlock. *)
let good_finally q =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  if q < 0 then invalid_arg "neg";
  q + 1

(* Suppressed: deliberately accepted inline. *)
let allowed q =
  (* gnrlint: allow lock-safety — fixture: deliberately accepted *)
  Mutex.lock mu;
  if q < 0 then failwith "neg";
  Mutex.unlock mu;
  q
