(* gnrlint fixture — hot-alloc rule cases.  Lives under a negf/ path
   segment so the same predicate that gates lib/negf covers it.
   Parsed, never compiled. *)

(* Positive: allocating Cmatrix calls inside a for loop. *)
let sweep blocks g =
  for i = 0 to Array.length blocks - 1 do
    let y = Cmatrix.mul g blocks.(i) in
    ignore (Cmatrix.inverse y)
  done

(* Positive: while loop, adjoint/add/sub family. *)
let iterate h =
  let k = ref 0 in
  while !k < 3 do
    ignore (Cmatrix.add (Cmatrix.adjoint h) (Cmatrix.sub h h));
    incr k
  done

(* Clean: same calls outside any loop (one-time setup is fine). *)
let setup h = Cmatrix.mul h (Cmatrix.adjoint h)

(* Clean: suppressed — the kept naive reference oracle idiom. *)
let naive_reference blocks g =
  for i = 0 to Array.length blocks - 1 do
    (* gnrlint: allow hot-alloc — naive reference oracle *)
    ignore (Cmatrix.mul g blocks.(i))
  done
