(* gnrlint fixture — named scf.ml so [solve] matches the deterministic
   surface root "Scf.solve" (module name = capitalized basename).
   Parsed, never compiled. *)

let solve tbl xs st =
  let a = Nondet_core.pick xs in
  let b = Nondet_core.order_sum tbl in
  let c = Nondet_core.seeded st in
  let d = Nondet_core.allowed_fold tbl in
  a +. b +. c +. d
