(* Tests for the gnrfet_robust layer: the fault-injection harness itself
   (spec parsing, deterministic firing, with_spec scoping), the SCF
   escalation ladder driven rung by rung via injected faults — including
   the bit-for-bit no-op contract on healthy inputs — the table-cache
   corruption hardening, the MNA recovery ladders, the Monte Carlo
   quarantine, Iv_table point quarantine/patching and the report/classify
   façade.  See docs/ROBUST.md. *)

open Support

(* --- fault harness --------------------------------------------------- *)

let test_fault_spec_errors () =
  check_raises_invalid "probability > 1" (fun () -> Fault.arm "x@1.5");
  check_raises_invalid "probability junk" (fun () -> Fault.arm "x@yes");
  check_raises_invalid "missing site name" (fun () -> Fault.arm "@0.5");
  check_raises_invalid "empty entry" (fun () -> Fault.arm "a,,b");
  check_raises_invalid "hit zero" (fun () -> Fault.arm "x#0");
  check_raises_invalid "inverted range" (fun () -> Fault.arm "x#5-2");
  check_raises_invalid "period zero" (fun () -> Fault.arm "x%0");
  check_raises_invalid "bad seed" (fun () -> Fault.arm "x:notanint")

let decisions spec site n =
  Fault.with_spec spec (fun () ->
      let s = Fault.site site in
      List.init n (fun _ -> Fault.should_fail s))

let test_fault_hit_modes () =
  Alcotest.(check (list bool)) "#2 fires exactly hit 2"
    [ false; true; false; false ]
    (decisions "m.one#2" "m.one" 4);
  Alcotest.(check (list bool)) "#2-3 fires the range"
    [ false; true; true; false ]
    (decisions "m.rng#2-3" "m.rng" 4);
  Alcotest.(check (list bool)) "%2 fires every second hit"
    [ false; true; false; true ]
    (decisions "m.ev%2" "m.ev" 4);
  Alcotest.(check (list bool)) "bare entry fires every hit" [ true; true ]
    (decisions "m.alw" "m.alw" 2);
  Alcotest.(check (list bool)) "prefix pattern matches" [ true ]
    (decisions "m.*" "m.prefixed.site" 1);
  Alcotest.(check (list bool)) "prefix pattern is anchored" [ false ]
    (decisions "m.*" "other.site" 1)

let test_fault_accounting () =
  Fault.with_spec "acct.site#2-3" (fun () ->
      let s = Fault.site "acct.site" in
      Alcotest.(check string) "site_name" "acct.site" (Fault.site_name s);
      Alcotest.(check bool) "active while armed" true (Fault.active ());
      Alcotest.(check bool) "matching site armed" true
        (Fault.site_armed "acct.site");
      Alcotest.(check bool) "non-matching site not armed" false
        (Fault.site_armed "acct.other");
      for _ = 1 to 5 do
        ignore (Fault.should_fail s)
      done;
      Alcotest.(check int) "hits counted" 5 (Fault.hits s);
      Alcotest.(check int) "injections counted" 2 (Fault.injected s));
  (* Re-arming resets the per-site counters. *)
  Fault.with_spec "acct.site#1" (fun () ->
      let s = Fault.site "acct.site" in
      Alcotest.(check int) "hits reset on arm" 0 (Fault.hits s))

let test_fault_prob_deterministic () =
  let a = decisions "prob.site@0.3:7" "prob.site" 200 in
  let b = decisions "prob.site@0.3:7" "prob.site" 200 in
  Alcotest.(check bool) "same seed reproduces the pattern" true (a = b);
  let c = decisions "prob.site@0.3:8" "prob.site" 200 in
  Alcotest.(check bool) "different seed changes the pattern" true (a <> c);
  let fires = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "rate in a plausible band" true
    (fires > 20 && fires < 120)

exception Harness_probe

let test_with_spec_restores () =
  let before_active = Fault.active () in
  let before_spec = Fault.current_spec () in
  Fault.with_spec "outer.site#1" (fun () ->
      Fault.with_spec "inner.site#1" (fun () ->
          Alcotest.(check (option string)) "inner spec armed"
            (Some "inner.site#1") (Fault.current_spec ()));
      Alcotest.(check (option string)) "outer spec restored"
        (Some "outer.site#1") (Fault.current_spec ()));
  (match Fault.with_spec "raise.site#1" (fun () -> raise Harness_probe) with
  | exception Harness_probe -> ()
  | () -> Alcotest.fail "expected Harness_probe to propagate");
  Alcotest.(check bool) "armed state restored after raise" before_active
    (Fault.active ());
  Alcotest.(check (option string)) "spec restored after raise" before_spec
    (Fault.current_spec ())

(* --- SCF escalation ladder ------------------------------------------- *)

let tiny = tiny_device ()

let scf_sites = [ "scf.charge"; "scf.poisson"; "sparse.cg" ]

let check_bit_identical label (a : Scf.solution) (b : Scf.solution) =
  Alcotest.(check int) (label ^ ": iterations") a.Scf.iterations b.Scf.iterations;
  Alcotest.(check bool) (label ^ ": current bit-for-bit") true
    (Float.equal a.Scf.current b.Scf.current);
  Alcotest.(check bool) (label ^ ": charge bit-for-bit") true
    (Float.equal a.Scf.charge b.Scf.charge);
  Array.iteri
    (fun i u ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: potential site %d bit-for-bit" label i)
        true
        (Float.equal u b.Scf.potential.(i)))
    a.Scf.potential

let test_ladder_noop_on_healthy_input () =
  skip_if_fault_armed scf_sites;
  let plain = Scf.solve ~parallel:false tiny ~vg:0.4 ~vd:0.3 in
  let o = Robust.Scf.solve_robust ~parallel:false tiny ~vg:0.4 ~vd:0.3 in
  (match o.Scf_robust.solution with
  | Some s -> check_bit_identical "wrapped" plain s
  | None -> Alcotest.fail "expected a solution");
  Alcotest.(check int) "exactly one attempt" 1
    (List.length o.Scf_robust.attempts);
  Alcotest.(check bool) "plain convergence is not recovery" false
    o.Scf_robust.recovered;
  Alcotest.(check bool) "no typed error" true
    (Scf_robust.error_of_outcome o = None)

let rung_of (a : Scf_robust.attempt) = a.Scf_robust.rung

let test_ladder_damped_restart_rung () =
  skip_if_fault_armed scf_sites;
  let obs = Obs.create ~enabled:true () in
  let o =
    Fault.with_spec "scf.charge#1" (fun () ->
        Robust.Scf.solve_robust ~parallel:false ~obs tiny ~vg:0.4 ~vd:0.3)
  in
  (match o.Scf_robust.attempts with
  | [ a1; a2 ] ->
    Alcotest.(check bool) "rung 1 is Anderson" true
      (rung_of a1 = Scf_robust.Anderson);
    Alcotest.(check bool) "rung 1 recorded the raise" true
      (a1.Scf_robust.error <> None);
    Alcotest.(check bool) "rung 2 is the damped restart" true
      (rung_of a2 = Scf_robust.Damped_restart);
    Alcotest.(check bool) "rung 2 converged" true
      (a2.Scf_robust.status = Some Scf.Converged)
  | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l));
  Alcotest.(check bool) "recovered" true o.Scf_robust.recovered;
  Alcotest.(check int) "retries counted" 1
    (Obs.counter_value ~obs "robust.scf.retries");
  Alcotest.(check int) "escalations counted" 1
    (Obs.counter_value ~obs "robust.scf.escalations");
  Alcotest.(check int) "recovery counted" 1
    (Obs.counter_value ~obs "robust.scf.recovered");
  Alcotest.(check int) "nothing unrecovered" 0
    (Obs.counter_value ~obs "robust.scf.unrecovered")

let test_ladder_slow_linear_rung () =
  skip_if_fault_armed scf_sites;
  let o =
    Fault.with_spec "scf.charge#1-2" (fun () ->
        Robust.Scf.solve_robust ~parallel:false tiny ~vg:0.4 ~vd:0.3)
  in
  Alcotest.(check (list bool)) "rung sequence anderson/damped/linear"
    [ true; true; true ]
    (List.map2 ( = )
       (List.map rung_of o.Scf_robust.attempts)
       [ Scf_robust.Anderson; Scf_robust.Damped_restart; Scf_robust.Linear_slow ]);
  (match o.Scf_robust.solution with
  | Some s ->
    Alcotest.(check bool) "slow-linear rung converged" true
      (s.Scf.status = Scf.Converged)
  | None -> Alcotest.fail "expected a solution");
  Alcotest.(check bool) "recovered" true o.Scf_robust.recovered

let test_ladder_neighbor_rung_and_unrecovered () =
  skip_if_fault_armed scf_sites;
  let clean = Scf.solve ~parallel:false tiny ~vg:0.4 ~vd:0.3 in
  (* Without a neighbor the same campaign exhausts the ladder... *)
  let obs = Obs.create ~enabled:true () in
  let dead =
    Fault.with_spec "scf.charge#1-3" (fun () ->
        Robust.Scf.solve_robust ~parallel:false ~obs tiny ~vg:0.4 ~vd:0.3)
  in
  Alcotest.(check bool) "no solution without the neighbor rung" true
    (dead.Scf_robust.solution = None);
  Alcotest.(check int) "three failed attempts" 3
    (List.length dead.Scf_robust.attempts);
  Alcotest.(check int) "unrecovered counted" 1
    (Obs.counter_value ~obs "robust.scf.unrecovered");
  (match Scf_robust.error_of_outcome dead with
  | Some (Robust_error.Unrecovered { stage; attempts; _ }) ->
    Alcotest.(check string) "unrecovered stage" "scf" stage;
    Alcotest.(check int) "unrecovered attempt count" 3 attempts
  | _ -> Alcotest.fail "expected Unrecovered");
  (* ...while a neighbor profile opens the continuation rung. *)
  let o =
    Fault.with_spec "scf.charge#1-3" (fun () ->
        Robust.Scf.solve_robust ~parallel:false
          ~neighbor:clean.Scf.potential tiny ~vg:0.4 ~vd:0.3)
  in
  (match List.rev o.Scf_robust.attempts with
  | last :: _ ->
    Alcotest.(check bool) "final rung is neighbor continuation" true
      (rung_of last = Scf_robust.Neighbor_continuation);
    Alcotest.(check bool) "neighbor rung converged" true
      (last.Scf_robust.status = Some Scf.Converged)
  | [] -> Alcotest.fail "expected attempts");
  Alcotest.(check bool) "recovered via neighbor" true o.Scf_robust.recovered

let test_ladder_escalates_on_status () =
  skip_if_fault_armed scf_sites;
  (* A brutally small iteration cap: no rung can converge, but each one
     must run (status-driven escalation, no exception involved) and the
     outcome must surface the typed verdict with the best iterate. *)
  let o =
    Robust.Scf.solve_robust ~parallel:false ~max_iter:2 tiny ~vg:0.4 ~vd:0.3
  in
  Alcotest.(check int) "all ladder rungs attempted" 3
    (List.length o.Scf_robust.attempts);
  Alcotest.(check bool) "every attempt returned a status" true
    (List.for_all
       (fun (a : Scf_robust.attempt) ->
         a.Scf_robust.error = None && a.Scf_robust.status <> Some Scf.Converged)
       o.Scf_robust.attempts);
  (match o.Scf_robust.solution with
  | Some s ->
    Alcotest.(check bool) "best iterate kept" true
      (s.Scf.status <> Scf.Converged && Float.is_finite s.Scf.residual)
  | None -> Alcotest.fail "expected a best iterate");
  match Scf_robust.error_of_outcome o with
  | Some (Robust_error.Scf_max_iter _ | Robust_error.Scf_stalled _) -> ()
  | _ -> Alcotest.fail "expected a typed SCF convergence error"

let test_scf_init_length_validated () =
  check_raises_invalid "Scf.solve rejects a wrong-length init" (fun () ->
      Scf.solve ~parallel:false ~init:(Array.make 3 0.) tiny ~vg:0.1 ~vd:0.1);
  check_raises_invalid "solve_robust propagates the caller bug" (fun () ->
      Robust.Scf.solve_robust ~parallel:false ~init:(Array.make 3 0.) tiny
        ~vg:0.1 ~vd:0.1)

(* --- table-cache hardening ------------------------------------------- *)

let micro_grid =
  { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 3; vd_max = 0.3; n_vd = 2 }

let with_temp_cache f =
  let dir = Filename.temp_file "gnrfet_robust_tables" "" in
  Sys.remove dir;
  Unix.putenv "GNRFET_TABLE_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GNRFET_TABLE_DIR" "_tables";
      Table_cache.clear_memory ();
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Table_cache.clear_memory ();
      f dir)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cache_corruption_matrix () =
  skip_if_fault_armed [ "table_cache.read"; "scf.charge"; "scf.poisson" ];
  with_temp_cache @@ fun dir ->
  let obs = Obs.create ~enabled:true () in
  let read_counter name = Obs.counter_value ~obs name in
  let t0 = Table_cache.get ~grid:micro_grid ~obs tiny in
  let path =
    match
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".gnrtbl")
    with
    | [ f ] -> Filename.concat dir f
    | l -> Alcotest.failf "expected one .gnrtbl file, found %d" (List.length l)
  in
  let good_bytes = read_file path in
  let reseed () =
    write_file path good_bytes;
    Table_cache.clear_memory ()
  in
  let expect_miss label =
    Alcotest.(check bool) (label ^ " reads as a miss") true
      (Option.is_none (Table_cache.lookup ~grid:micro_grid ~obs tiny))
  in
  (* 1. Truncated file: quarantined with the precise reason counted. *)
  write_file path (String.sub good_bytes 0 (String.length good_bytes / 2));
  Table_cache.clear_memory ();
  expect_miss "truncated file";
  Alcotest.(check int) "truncation quarantined" 1
    (read_counter "table_cache.corrupt_quarantined");
  Alcotest.(check int) "truncation counted per reason" 1
    (read_counter "table_cache.corrupt.truncated");
  Alcotest.(check bool) "truncated file renamed to .corrupt" true
    (Sys.file_exists (path ^ ".corrupt") && not (Sys.file_exists path));
  Sys.remove (path ^ ".corrupt");
  (* 2. Garbage bytes (long enough to clear the size gate): bad magic. *)
  write_file path (String.make 96 'x');
  Table_cache.clear_memory ();
  expect_miss "garbage file";
  Alcotest.(check int) "garbage quarantined" 2
    (read_counter "table_cache.corrupt_quarantined");
  Alcotest.(check int) "garbage counted as bad magic" 1
    (read_counter "table_cache.corrupt.bad_magic");
  Sys.remove (path ^ ".corrupt");
  (* 3. Valid gnrtbl, wrong key: a stale file, not a corrupt one. *)
  write_file path (Tbl_format.encode ~cache_key:"bogus-key" (synthetic_table ()));
  Table_cache.clear_memory ();
  expect_miss "key-mismatched file";
  Alcotest.(check int) "key mismatch is not quarantined" 2
    (read_counter "table_cache.corrupt_quarantined");
  Alcotest.(check bool) "key-mismatched file left in place" true
    (Sys.file_exists path && not (Sys.file_exists (path ^ ".corrupt")));
  (* 4. Injected read fault: quarantined like real corruption. *)
  reseed ();
  Fault.with_spec "table_cache.read#1" (fun () ->
      expect_miss "injected read fault");
  Alcotest.(check int) "injected fault quarantined" 3
    (read_counter "table_cache.corrupt_quarantined");
  Alcotest.(check int) "injected fault counted as undecodable" 1
    (read_counter "table_cache.corrupt.undecodable");
  Alcotest.(check bool) "injected-fault file renamed" true
    (Sys.file_exists (path ^ ".corrupt"));
  Sys.remove (path ^ ".corrupt");
  (* 5. A legacy Marshal file (gnrtbl absent) still reads via the
     fallback — a disk hit that is not an mmap hit. *)
  Table_cache.clear_memory ();
  let key = Table_cache.key ~grid:micro_grid tiny in
  let oc = open_out_bin (Table_cache.legacy_path key) in
  Marshal.to_channel oc (key, t0) [];
  close_out oc;
  let mmap_before = read_counter "table_cache.mmap_hits" in
  (match Table_cache.lookup ~grid:micro_grid ~obs tiny with
  | Some t ->
    approx "legacy fallback round-trips" t0.Iv_table.current.(1).(1)
      t.Iv_table.current.(1).(1)
  | None -> Alcotest.fail "expected a legacy-fallback disk hit");
  Alcotest.(check int) "legacy hit is not an mmap hit" mmap_before
    (read_counter "table_cache.mmap_hits");
  Sys.remove (Table_cache.legacy_path key);
  (* 6. And an intact gnrtbl file still round-trips, via the mapping. *)
  reseed ();
  match Table_cache.lookup ~grid:micro_grid ~obs tiny with
  | Some t ->
    approx "intact file round-trips" t0.Iv_table.current.(1).(1)
      t.Iv_table.current.(1).(1);
    Alcotest.(check int) "gnrtbl hit counted as mmap hit" (mmap_before + 1)
      (read_counter "table_cache.mmap_hits")
  | None -> Alcotest.fail "expected a disk hit from the intact file"

let test_cache_store_failure_counted () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ];
  (* Point the cache at a regular file: mkdir and the tmp-file open both
     fail, which must cost a counted store failure, never the table. *)
  let blocker = Filename.temp_file "gnrfet_robust_nodir" "" in
  Unix.putenv "GNRFET_TABLE_DIR" blocker;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GNRFET_TABLE_DIR" "_tables";
      Table_cache.clear_memory ();
      Sys.remove blocker)
  @@ fun () ->
  Table_cache.clear_memory ();
  let obs = Obs.create ~enabled:true () in
  let t = Table_cache.get ~grid:micro_grid ~obs tiny in
  Alcotest.(check int) "table still produced" 3 (Array.length t.Iv_table.vg);
  Alcotest.(check int) "store failure counted" 1
    (Obs.counter_value ~obs "table_cache.store_failures")

(* --- Iv_table quarantine --------------------------------------------- *)

let test_iv_table_quarantines_and_patches () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ];
  let obs = Obs.create ~enabled:true () in
  (* Hits 1-8 fail every charge evaluation: points (0,0) and (1,0) burn
     one hit per rung (3 rungs, no converged neighbor yet) and die;
     point (2,0) fails rungs 1-2 (hits 7-8) and converges on the slow
     linear rung; everything after runs clean. *)
  let t =
    Fault.with_spec "scf.charge#1-8" (fun () ->
        Iv_table.generate ~grid:micro_grid ~parallel:false ~obs tiny)
  in
  Alcotest.(check (list (pair int int))) "quarantined points"
    [ (0, 0); (1, 0) ] t.Iv_table.failed_points;
  Alcotest.(check int) "quarantine counter" 2
    (Obs.counter_value ~obs "robust.iv_table.quarantined");
  (* Edge-of-column quarantined points copy the nearest converged value. *)
  approx "patched (0,0) from (2,0)" t.Iv_table.current.(2).(0)
    t.Iv_table.current.(0).(0);
  approx "patched (1,0) from (2,0)" t.Iv_table.current.(2).(0)
    t.Iv_table.current.(1).(0);
  Array.iter
    (Array.iter (fun v ->
         Alcotest.(check bool) "all currents finite" true (Float.is_finite v)))
    t.Iv_table.current

(* --- MNA recovery ---------------------------------------------------- *)

let divider () =
  let net = Netlist.create () in
  let top = Netlist.fresh_node net in
  let mid = Netlist.fresh_node net in
  Netlist.vdc net top 1.;
  Netlist.add net (Netlist.Resistor { a = top; b = mid; ohms = 1e3 });
  Netlist.add net (Netlist.Resistor { a = mid; b = Netlist.gnd; ohms = 3e3 });
  (net, mid)

let test_mna_dc_typed_failure () =
  skip_if_fault_armed [ "mna.newton" ];
  let net, _ = divider () in
  match Fault.with_spec "mna.newton" (fun () -> Mna.solve_dc net) with
  | exception Robust_error.Error (Robust_error.Newton_failure { analysis; _ })
    ->
    Alcotest.(check string) "typed dc failure" "dc" analysis
  | exception e ->
    Alcotest.failf "expected a typed Newton_failure, got %s"
      (Printexc.to_string e)
  | _ -> Alcotest.fail "expected solve_dc to fail under a total campaign"

let test_mna_dc_recovers_from_transient_fault () =
  skip_if_fault_armed [ "mna.newton" ];
  let net, mid = divider () in
  let clean = Mna.solve_dc net in
  let v = Fault.with_spec "mna.newton#1" (fun () -> Mna.solve_dc net) in
  approx ~eps:1e-9 "gmin ladder recovers the dc point" clean.(mid) v.(mid)

let with_global_obs f =
  let old = Obs.enabled Obs.global in
  Obs.set_enabled Obs.global true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled Obs.global old) f

let rc_net () =
  let net = Netlist.create () in
  let src = Netlist.fresh_node net in
  let out = Netlist.fresh_node net in
  Netlist.vsource net src (fun t -> if t > 0. then 1. else 0.);
  Netlist.add net (Netlist.Resistor { a = src; b = out; ohms = 1e3 });
  Netlist.add net (Netlist.Capacitor { a = out; b = Netlist.gnd; farads = 1e-9 });
  (net, out)

let test_mna_transient_recovers_by_subdividing () =
  skip_if_fault_armed [ "mna.newton" ];
  with_global_obs @@ fun () ->
  let rc = 1e-6 in
  let net, out = rc_net () in
  let retries_before = Obs.counter_value "mna.transient_retries" in
  (* Hit 1 is the dc operating point; hit 2 fails the first transient
     step, which must be recovered by substep subdivision. *)
  let wf =
    Fault.with_spec "mna.newton#2" (fun () ->
        Mna.transient net ~t_stop:(5. *. rc) ~dt:(rc /. 20.))
  in
  Alcotest.(check bool) "subdivision retry counted" true
    (Obs.counter_value "mna.transient_retries" > retries_before);
  let trace = Mna.node_trace wf out in
  Alcotest.(check bool) "waveform stays finite" true
    (Array.for_all Float.is_finite trace);
  (* 5 time-constants in: 1 - e^-5 of the way to the rail. *)
  approx ~eps:1e-2 "rc step settles toward the supply" 1.
    trace.(Array.length trace - 1)

let test_mna_transient_unrecoverable_is_typed () =
  skip_if_fault_armed [ "mna.newton" ];
  let rc = 1e-6 in
  let net, _ = rc_net () in
  match
    (* Fail every Newton call after the dc point: subdivision and the
       gmin rescue can never succeed, so the typed error must surface. *)
    Fault.with_spec "mna.newton#2-100000" (fun () ->
        Mna.transient net ~t_stop:(2. *. rc) ~dt:(rc /. 20.))
  with
  | exception Robust_error.Error (Robust_error.Newton_failure { analysis; _ })
    ->
    Alcotest.(check string) "typed transient failure" "transient" analysis
  | exception e ->
    Alcotest.failf "expected a typed Newton_failure, got %s"
      (Printexc.to_string e)
  | _ -> Alcotest.fail "expected the transient to fail"

(* --- Monte Carlo quarantine ------------------------------------------ *)

let mc_sample v = { Montecarlo.frequency = v; p_dynamic = 0.; p_static = 0. }

let test_mc_quarantines_failed_samples () =
  let calls = ref 0 in
  let evaluate _ =
    incr calls;
    (* Calls 4, 7 and 10 (samples 3, 6 and 9) die with a typed error. *)
    if !calls > 1 && (!calls - 1) mod 3 = 0 then
      Robust_error.raise_
        (Robust_error.Newton_failure { analysis = "mc-stub"; time = 0. });
    mc_sample (float_of_int !calls)
  in
  let r =
    Montecarlo.run_with ~evaluate ~stages:3 ~samples:9 ~seed:11
      ~sigma_probability:0.2 ~nominal_ids:(4, 4) ()
  in
  Alcotest.(check int) "quarantined count" 3 r.Montecarlo.quarantined;
  Alcotest.(check int) "survivors" 6 (Array.length r.Montecarlo.samples);
  Alcotest.(check bool) "nominal evaluated first" true
    (Float.equal r.Montecarlo.nominal.Montecarlo.frequency 1.)

let test_mc_draws_unperturbed_by_quarantine () =
  skip_if_fault_armed [ "montecarlo.sample" ];
  let record () =
    let seen = ref [] in
    let evaluate ids =
      seen := Array.copy ids :: !seen;
      mc_sample 1.
    in
    (seen, evaluate)
  in
  let seen_clean, eval_clean = record () in
  let run evaluate =
    Montecarlo.run_with ~evaluate ~stages:2 ~samples:6 ~seed:5
      ~sigma_probability:0.25 ~nominal_ids:(4, 4) ()
  in
  ignore (run eval_clean);
  let seen_faulted, eval_faulted = record () in
  let r =
    Fault.with_spec "montecarlo.sample#2" (fun () -> run eval_faulted)
  in
  Alcotest.(check int) "one sample quarantined at the site" 1
    r.Montecarlo.quarantined;
  let clean = List.rev !seen_clean and faulted = List.rev !seen_faulted in
  Alcotest.(check int) "clean run evaluates nominal + all samples" 7
    (List.length clean);
  Alcotest.(check int) "faulted run skips exactly the injected sample" 6
    (List.length faulted);
  (* Dropping sample 2 must not shift any other sample's draw. *)
  let clean_without_injected =
    List.filteri (fun i _ -> i <> 2) clean (* 0 = nominal, 2 = sample 2 *)
  in
  Alcotest.(check bool) "surviving draws identical to the fault-free run"
    true
    (clean_without_injected = faulted)

(* --- Poisson3d recovery ---------------------------------------------- *)

let test_poisson3d_cg_retry_and_sor_fallback () =
  skip_if_fault_armed [ "sparse.cg" ];
  with_global_obs @@ fun () ->
  let t =
    Poisson3d.make ~nx:5 ~ny:5 ~nz:5 ~spacing:1e-9 ~eps_r:(fun _ _ _ -> 3.9)
  in
  let charges = [ { Poisson3d.ix = 2; iy = 2; iz = 2; coulombs = -.Const.q } ] in
  let clean = Poisson3d.solve t ~charges in
  let retries_before = Obs.counter_value "robust.poisson3d.cg_retries" in
  let fallbacks_before = Obs.counter_value "robust.poisson3d.sor_fallbacks" in
  (* One injected cg failure: the retry repeats the identical call, so
     the recovered result is bit-for-bit the clean one. *)
  let retried =
    Fault.with_spec "sparse.cg#1" (fun () -> Poisson3d.solve t ~charges)
  in
  Array.iteri
    (fun ix plane ->
      Array.iteri
        (fun iy line ->
          Array.iteri
            (fun iz v ->
              Alcotest.(check bool)
                (Printf.sprintf "retry node (%d,%d,%d) bit-for-bit" ix iy iz)
                true
                (Float.equal v retried.(ix).(iy).(iz)))
            line)
        plane)
    clean;
  Alcotest.(check int) "one cg retry counted" 1
    (Obs.counter_value "robust.poisson3d.cg_retries" - retries_before);
  (* Two consecutive cg failures: the SOR fallback answers, to tolerance. *)
  let fell_back =
    Fault.with_spec "sparse.cg#1-2" (fun () -> Poisson3d.solve t ~charges)
  in
  Array.iteri
    (fun ix plane ->
      Array.iteri
        (fun iy line ->
          Array.iteri
            (fun iz v ->
              approx ~eps:1e-7
                (Printf.sprintf "sor node (%d,%d,%d)" ix iy iz)
                v
                fell_back.(ix).(iy).(iz))
            line)
        plane)
    clean;
  Alcotest.(check int) "one sor fallback counted" 1
    (Obs.counter_value "robust.poisson3d.sor_fallbacks" - fallbacks_before)

(* --- taxonomy, classify, report -------------------------------------- *)

let test_classify () =
  let check_some label e expected =
    match Robust.classify e with
    | Some t -> Alcotest.(check bool) label true (expected t)
    | None -> Alcotest.failf "%s: expected a classification" label
  in
  check_some "injected fault"
    (Fault.Injected { site = "x.y"; hit = 3 })
    (function
      | Robust_error.Injected_fault { site = "x.y"; hit = 3 } -> true
      | _ -> false);
  check_some "iterative breakdown"
    (Sparse.No_convergence { solver = "cg"; iterations = 9; residual = 0.5 })
    (function
      | Robust_error.Iterative_no_convergence { solver = "cg"; iterations = 9; _ }
        -> true
      | _ -> false);
  let typed =
    Robust_error.Cache_corrupt
      { path = "/tmp/x"; reason = Robust_error.Truncated { expected = 88; got = 0 } }
  in
  check_some "already-typed error" (Robust_error.Error typed) (( = ) typed);
  Alcotest.(check bool) "foreign exceptions stay foreign" true
    (Robust.classify Not_found = None)

let test_error_printing () =
  let all =
    [
      Robust_error.Scf_stalled
        { vg = 0.1; vd = 0.2; iterations = 9; residual = 1e-2 };
      Robust_error.Scf_max_iter
        { vg = 0.1; vd = 0.2; iterations = 120; residual = 2e-3 };
      Robust_error.Iterative_no_convergence
        { solver = "cg"; iterations = 40; residual = 1e-4 };
      Robust_error.Newton_failure { analysis = "dc"; time = 0. };
      Robust_error.Cache_corrupt
        { path = "p"; reason = Robust_error.Crc_mismatch { section = "vg" } };
      Robust_error.Injected_fault { site = "s"; hit = 1 };
      Robust_error.Unrecovered { stage = "scf"; attempts = 4; detail = "d" };
    ]
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "to_string is non-empty" true
        (String.length (Robust_error.to_string t) > 0);
      (* The registered printer renders the carrier exception too. *)
      Alcotest.(check bool) "exception printer wired" true
        (String.length (Printexc.to_string (Robust_error.Error t)) > 0))
    all

let test_report_filters_and_sums () =
  let obs = Obs.create ~enabled:true () in
  Obs.Counter.add (Obs.Counter.make ~obs "robust.fault.some.site") 2;
  Obs.Counter.add (Obs.Counter.make ~obs "robust.fault.other.site") 3;
  Obs.Counter.add (Obs.Counter.make ~obs "robust.scf.retries") 4;
  Obs.Counter.add (Obs.Counter.make ~obs "table_cache.corrupt_quarantined") 1;
  Obs.Counter.add (Obs.Counter.make ~obs "scf.solves") 99;
  let r = Robust.Report.collect ~obs () in
  let names = List.map fst r.Robust.Report.counters in
  Alcotest.(check bool) "robust counters included" true
    (List.mem "robust.scf.retries" names
    && List.mem "table_cache.corrupt_quarantined" names);
  Alcotest.(check bool) "unrelated counters excluded" false
    (List.mem "scf.solves" names);
  Alcotest.(check bool) "sorted by name" true
    (List.sort compare names = names);
  Alcotest.(check int) "total_injected sums the fault counters" 5
    (Robust.Report.total_injected r);
  (* pp runs and mentions the totals (smoke, not a format pin). *)
  let rendered = Format.asprintf "%a" Robust.Report.pp r in
  Alcotest.(check bool) "pp renders something" true
    (String.length rendered > 0)

let suite =
  [
    Alcotest.test_case "fault spec errors" `Quick test_fault_spec_errors;
    Alcotest.test_case "fault hit modes" `Quick test_fault_hit_modes;
    Alcotest.test_case "fault accounting" `Quick test_fault_accounting;
    Alcotest.test_case "fault probability is seeded and deterministic" `Quick
      test_fault_prob_deterministic;
    Alcotest.test_case "with_spec scopes and restores" `Quick
      test_with_spec_restores;
    Alcotest.test_case "ladder is a no-op on healthy input" `Quick
      test_ladder_noop_on_healthy_input;
    Alcotest.test_case "ladder rung 2: damped restart" `Quick
      test_ladder_damped_restart_rung;
    Alcotest.test_case "ladder rung 3: slow linear" `Quick
      test_ladder_slow_linear_rung;
    Alcotest.test_case "ladder rung 4: neighbor continuation / unrecovered"
      `Quick test_ladder_neighbor_rung_and_unrecovered;
    Alcotest.test_case "ladder escalates on a non-converged status" `Quick
      test_ladder_escalates_on_status;
    Alcotest.test_case "scf init length validated" `Quick
      test_scf_init_length_validated;
    Alcotest.test_case "table cache corruption matrix" `Quick
      test_cache_corruption_matrix;
    Alcotest.test_case "table cache store failure counted" `Quick
      test_cache_store_failure_counted;
    Alcotest.test_case "iv_table quarantines and patches failed points"
      `Quick test_iv_table_quarantines_and_patches;
    Alcotest.test_case "mna dc: typed failure" `Quick test_mna_dc_typed_failure;
    Alcotest.test_case "mna dc: gmin ladder recovery" `Quick
      test_mna_dc_recovers_from_transient_fault;
    Alcotest.test_case "mna transient: subdivision recovery" `Quick
      test_mna_transient_recovers_by_subdividing;
    Alcotest.test_case "mna transient: unrecoverable is typed" `Quick
      test_mna_transient_unrecoverable_is_typed;
    Alcotest.test_case "monte carlo quarantines failed samples" `Quick
      test_mc_quarantines_failed_samples;
    Alcotest.test_case "monte carlo draws unperturbed by quarantine" `Quick
      test_mc_draws_unperturbed_by_quarantine;
    Alcotest.test_case "poisson3d cg retry and sor fallback" `Quick
      test_poisson3d_cg_retry_and_sor_fallback;
    Alcotest.test_case "classify maps exceptions onto the taxonomy" `Quick
      test_classify;
    Alcotest.test_case "error printing" `Quick test_error_printing;
    Alcotest.test_case "report filters and sums" `Quick
      test_report_filters_and_sums;
  ]
