let () =
  Alcotest.run "gnrfet"
    [
      ("numerics:basic", Test_numerics_basic.suite);
      ("numerics:linalg", Test_numerics_linalg.suite);
      ("numerics:zdense", Test_zdense.suite);
      ("numerics:interp+contour", Test_numerics_interp.suite);
      ("numerics:parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("physics+gnr", Test_gnr.suite);
      ("negf", Test_negf.suite);
      ("poisson", Test_poisson.suite);
      ("ctx", Test_ctx.suite);
      ("device", Test_device.suite);
      ("device:tbl-format", Test_tbl_format.suite);
      ("device:golden-trace", Test_golden_trace.suite);
      ("robust", Test_robust.suite);
      ("serve", Test_serve.suite);
      ("campaign", Test_campaign.suite);
      ("circuit", Test_circuit.suite);
      ("cmos", Test_cmos.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("integration", Test_integration.suite);
      ("lint", Test_lint.suite);
    ]
