(* PR 5 Ctx satellite: the bundled execution context must be an exact
   re-expression of the legacy ?parallel/?obs/?grid labels — same
   resolution precedence, and bit-for-bit identical solver output
   through every reworked entry point (docs/API.md). *)

open Support

let tiny = tiny_device ()

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

(* --- resolution precedence ------------------------------------------- *)

let grid_a =
  { Ctx.vg_min = -0.1; vg_max = 0.8; n_vg = 10; vd_max = 0.6; n_vd = 5 }

let grid_b =
  { Ctx.vg_min = 0.; vg_max = 0.5; n_vg = 4; vd_max = 0.4; n_vd = 3 }

let test_resolve_precedence () =
  let obs_a = Obs.create () and obs_b = Obs.create () in
  (* No knobs at all: the process default. *)
  let c = Ctx.resolve () in
  Alcotest.(check bool) "default parallel" Ctx.default.Ctx.parallel c.Ctx.parallel;
  Alcotest.(check bool) "default obs is global" true (c.Ctx.obs == Obs.global);
  Alcotest.(check bool) "default grid is None" true (c.Ctx.grid = None);
  (* Ctx fields win over the default. *)
  let base = Ctx.make ~parallel:false ~obs:obs_a ~grid:grid_a () in
  let c = Ctx.resolve ~ctx:base () in
  Alcotest.(check bool) "ctx parallel" false c.Ctx.parallel;
  Alcotest.(check bool) "ctx obs" true (c.Ctx.obs == obs_a);
  Alcotest.(check bool) "ctx grid" true (c.Ctx.grid = Some grid_a);
  (* Explicit legacy labels win over the ctx fields. *)
  let c = Ctx.resolve ~ctx:base ~parallel:true ~obs:obs_b ~grid:grid_b () in
  Alcotest.(check bool) "label parallel wins" true c.Ctx.parallel;
  Alcotest.(check bool) "label obs wins" true (c.Ctx.obs == obs_b);
  Alcotest.(check bool) "label grid wins" true (c.Ctx.grid = Some grid_b);
  (* Partial labels leave the other ctx fields intact. *)
  let c = Ctx.resolve ~ctx:base ~parallel:true () in
  Alcotest.(check bool) "untouched obs stays ctx's" true (c.Ctx.obs == obs_a);
  Alcotest.(check bool) "untouched grid stays ctx's" true (c.Ctx.grid = Some grid_a)

let test_ctx_builders () =
  let c = Ctx.make ~parallel:true ~grid:grid_a () in
  let s = Ctx.sequential c in
  Alcotest.(check bool) "sequential flips parallel" false s.Ctx.parallel;
  Alcotest.(check bool) "sequential keeps grid" true (s.Ctx.grid = Some grid_a);
  let o = Obs.create () in
  Alcotest.(check bool) "with_obs" true ((Ctx.with_obs c o).Ctx.obs == o);
  Alcotest.(check bool) "with_grid" true
    ((Ctx.with_grid c grid_b).Ctx.grid = Some grid_b)

(* --- bit-identity through the reworked entry points ------------------ *)

let check_same_solution label (a : Scf.solution) (b : Scf.solution) =
  Alcotest.(check int) (label ^ ": iterations") a.Scf.iterations b.Scf.iterations;
  Alcotest.(check bool) (label ^ ": current bit-for-bit") true
    (a.Scf.current = b.Scf.current);
  Alcotest.(check bool) (label ^ ": charge bit-for-bit") true
    (a.Scf.charge = b.Scf.charge);
  Array.iteri
    (fun i u ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: potential site %d" label i)
        true
        (u = a.Scf.potential.(i)))
    b.Scf.potential

let test_scf_ctx_equals_legacy () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ];
  let legacy = Scf.solve ~parallel:true tiny ~vg:0.4 ~vd:0.3 in
  check_same_solution "ctx parallel"
    legacy
    (Scf.solve ~ctx:(Ctx.make ~parallel:true ()) tiny ~vg:0.4 ~vd:0.3);
  check_same_solution "bare ctx (defaults)" legacy
    (Scf.solve ~ctx:Ctx.default tiny ~vg:0.4 ~vd:0.3);
  check_same_solution "no knobs at all" legacy (Scf.solve tiny ~vg:0.4 ~vd:0.3);
  let seq = Scf.solve ~parallel:false tiny ~vg:0.4 ~vd:0.3 in
  check_same_solution "ctx sequential" seq
    (Scf.solve ~ctx:(Ctx.sequential Ctx.default) tiny ~vg:0.4 ~vd:0.3);
  (* Label beats ctx: a sequential ctx overridden back to parallel. *)
  check_same_solution "label overrides ctx" legacy
    (Scf.solve ~parallel:true ~ctx:(Ctx.sequential Ctx.default) tiny ~vg:0.4
       ~vd:0.3);
  with_env "GNRFET_DOMAINS" "5" (fun () ->
      check_same_solution "GNRFET_DOMAINS=5" legacy
        (Scf.solve ~ctx:(Ctx.make ~parallel:true ()) tiny ~vg:0.4 ~vd:0.3))

let flat_chain ?(n = 30) ?(t1 = 1.6) ?(t2 = 1.3) ?(onsite = 0.) () =
  let chain_onsite = Array.make n onsite in
  let hopping = Array.init (n - 1) (fun i -> if i mod 2 = 0 then t1 else t2) in
  let sigma e =
    let gs = Self_energy.dimer_surface ~t1 ~t2 ~onsite e in
    Complex.mul { Complex.re = t2 *. t2; im = 0. } gs
  in
  fun e ->
    { Rgf.onsite = chain_onsite; hopping; sigma_l = sigma e; sigma_r = sigma e }

let test_observables_ctx_equals_legacy () =
  let chain = flat_chain ~n:20 () in
  let egrid = Observables.energy_grid ~lo:(-0.7) ~hi:0.4 ~de:0.002 in
  let bias = { Observables.mu_s = 0.; mu_d = -0.3; kt = 0.0259 } in
  let legacy = Observables.current ~parallel:true ~bias ~egrid chain in
  let via_ctx =
    Observables.current ~ctx:(Ctx.make ~parallel:true ()) ~bias ~egrid chain
  in
  Alcotest.(check bool) "current bit-for-bit" true (legacy = via_ctx);
  with_env "GNRFET_DOMAINS" "5" (fun () ->
      let d5 = Observables.current ~ctx:Ctx.default ~bias ~egrid chain in
      Alcotest.(check bool) "GNRFET_DOMAINS=5 bit-for-bit" true (legacy = d5));
  let t_legacy = Observables.transmission_spectrum ~parallel:false ~egrid chain in
  let t_ctx =
    Observables.transmission_spectrum
      ~ctx:(Ctx.sequential Ctx.default)
      ~egrid chain
  in
  Alcotest.(check bool) "transmission bit-for-bit" true (t_legacy = t_ctx)

(* --- obs and grid routed through ctx --------------------------------- *)

let test_generate_reads_ctx_grid_and_obs () =
  skip_if_fault_armed [ "scf.charge"; "scf.poisson" ];
  let obs = Obs.create ~enabled:true () in
  let ctx = Ctx.make ~obs ~grid:grid_b () in
  let t = Iv_table.generate ~ctx tiny in
  Alcotest.(check int) "grid from ctx: n_vg" grid_b.Ctx.n_vg
    (Array.length t.Iv_table.vg);
  Alcotest.(check int) "grid from ctx: n_vd" grid_b.Ctx.n_vd
    (Array.length t.Iv_table.vd);
  Alcotest.(check int) "generation counted in ctx obs" 1
    (Obs.counter_value ~obs "iv_table.generates");
  (* Explicit ~grid label wins over the ctx grid. *)
  let t2 = Iv_table.generate ~ctx ~grid:grid_a tiny in
  Alcotest.(check int) "label grid wins: n_vg" grid_a.Ctx.n_vg
    (Array.length t2.Iv_table.vg)

let suite =
  [
    Alcotest.test_case "resolve precedence" `Quick test_resolve_precedence;
    Alcotest.test_case "builders" `Quick test_ctx_builders;
    Alcotest.test_case "Scf.solve: ctx == legacy (bit-for-bit)" `Quick
      test_scf_ctx_equals_legacy;
    Alcotest.test_case "Observables: ctx == legacy (bit-for-bit)" `Quick
      test_observables_ctx_equals_legacy;
    Alcotest.test_case "Iv_table.generate reads ctx grid/obs" `Quick
      test_generate_reads_ctx_grid_and_obs;
  ]
