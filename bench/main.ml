(* Benchmark harness: regenerates every table and figure of the paper and
   times the computational kernel behind each with Bechamel, then times
   the energy-parallel NEGF kernels sequential-vs-parallel and emits a
   machine-readable bench report so the perf trajectory is tracked
   across PRs.

   Usage:
     dune exec bench/main.exe                 full reproduction + benchmarks
     GNRFET_BENCH_FAST=1 dune exec bench/main.exe   benchmarks only

   Environment:
     GNRFET_BENCH_FAST=1       skip the full paper reproduction
     GNRFET_BENCH_KERNELS=a,b  only kernels whose name contains one of the
                               comma-separated substrings (CI smoke runs
                               the table-free SCF kernels this way)
     GNRFET_BENCH_JSON=path    where to write the report
                               (default BENCH_PR7.json)
     GNRFET_DOMAINS=n          worker-pool width for the parallel runs
     GNRFET_OBS=0              disable the observability counters (on by
                               default in the bench harness; the snapshot
                               is embedded in the report's "obs" section)

   The first full run generates the device-table cache (about 12 minutes
   on one core; `dune exec bin/gen_tables.exe` does the same ahead of
   time); subsequent runs load it from _tables/. *)

open Bechamel

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

(* PR 5 serve-daemon sweep: 8 concurrent clients request the same
   uncached micro table — single-flight coalesces them onto one
   generation — then one more request lands in the in-memory LRU.  Every
   call works against a fresh throwaway cache directory so the counter
   pattern is deterministic: generates = 1, coalesced = 7, lru_hits = 1.
   Returns (generates, coalesced, lru_hits, requests) from the server's
   private obs registry. *)
let serve_sweep_runs = ref 0

let serve_sweep () =
  incr serve_sweep_runs;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gnrfet_bench_serve.%d.%d" (Unix.getpid ())
         !serve_sweep_runs)
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      try
        Sys.readdir dir
        |> Array.iter (fun f ->
               try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
        Sys.rmdir dir
      with Sys_error _ -> ())
  @@ fun () ->
  with_env "GNRFET_TABLE_DIR" dir @@ fun () ->
  Table_cache.clear_memory ();
  let obs = Obs.create ~enabled:true () in
  let grid =
    { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 3; vd_max = 0.3; n_vd = 2 }
  in
  let config =
    { Serve.default_config with Serve.ctx = Ctx.make ~obs ~grid () }
  in
  let server = Serve.create ~config () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let p =
    {
      (Params.default ~gnr_index:12 ()) with
      Params.channel_length = 6e-9;
      energy_step = 8e-3;
      energy_margin = 0.3;
    }
  in
  let line =
    Serve_protocol.request_to_line
      {
        Serve_protocol.id = Some 1;
        op = Serve_protocol.Table { params = p; grid = None };
      }
  in
  let go = Mutex.create () in
  Mutex.lock go;
  let threads =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            Mutex.lock go;
            Mutex.unlock go;
            ignore (Serve.handle_line server line))
          ())
  in
  Mutex.unlock go;
  List.iter Thread.join threads;
  ignore (Serve.handle_line server line);
  ( Obs.counter_value ~obs "table_cache.generates",
    Obs.counter_value ~obs "serve.coalesced_hits",
    Obs.counter_value ~obs "serve.lru_hits",
    Obs.counter_value ~obs "serve.requests" )

(* PR 7 block-RGF fast path: a synthetic wide-ribbon-scale device —
   [block_nb] blocks of [block_m] orbitals, random hermitian on-block
   Hamiltonians and complex couplings, absorbing self-energies
   Σ = H_s - 0.15i·I (so Γ = 0.3·I is safely positive) — swept over
   [block_ne] energies.  Deterministic seed so the naive-vs-fast
   comparison below times identical work across runs. *)
let block_nb = 24

let block_m = 26

let block_ne = 220

let block_device =
  lazy
    (let st = Random.State.make [| 0x7b10c6 |] in
     let rc lo hi = lo +. ((hi -. lo) *. Random.State.float st 1.) in
     let herm scale =
       let a = Array.make_matrix block_m block_m Complex.zero in
       for i = 0 to block_m - 1 do
         a.(i).(i) <- { Complex.re = rc (-.scale) scale; im = 0. };
         for j = i + 1 to block_m - 1 do
           let v = { Complex.re = rc (-.scale) scale; im = rc (-.scale) scale } in
           a.(i).(j) <- v;
           a.(j).(i) <- Complex.conj v
         done
       done;
       Cmatrix.init block_m block_m (fun i j -> a.(i).(j))
     in
     let general scale =
       let a = Array.make_matrix block_m block_m Complex.zero in
       for i = 0 to block_m - 1 do
         for j = 0 to block_m - 1 do
           a.(i).(j) <- { Complex.re = rc (-.scale) scale; im = rc (-.scale) scale }
         done
       done;
       Cmatrix.init block_m block_m (fun i j -> a.(i).(j))
     in
     let absorbing () =
       let base = herm 0.05 in
       Cmatrix.init block_m block_m (fun i j ->
           let v = Cmatrix.get base i j in
           if i = j then { v with Complex.im = v.Complex.im -. 0.15 } else v)
     in
     {
       Rgf_block.blocks = Array.init block_nb (fun _ -> herm 0.4);
       couplings = Array.init (block_nb - 1) (fun _ -> general 0.25);
       sigma_l = absorbing ();
       sigma_r = absorbing ();
     })

let block_egrid =
  Array.init block_ne (fun k -> -1. +. (2. *. float_of_int k /. float_of_int (block_ne - 1)))

(* Smaller grid for the (4-sweep) spectra kernel so one Bechamel run
   stays well inside the quota. *)
let block_sp_ne = 60

let block_sp_egrid =
  Array.init block_sp_ne (fun k ->
      -1. +. (2. *. float_of_int k /. float_of_int (block_sp_ne - 1)))

(* Persistent workspace: Bechamel then times steady-state reuse, which
   is the contract the zero-alloc claim is made under. *)
let block_ws = Rgf_block.workspace ()

let all_kernels : (string * (unit -> float)) list =
  [
    ("fig2a:scf-iv-sweep", Exp_fig2a.bench_kernel);
    ("fig2b:vt-extraction", Exp_fig2b.bench_kernel);
    ("fig3b:explore-cell", Exp_fig3b.bench_kernel);
    ("table1:cmos-ro-metrics", Exp_table1.bench_kernel);
    ("fig4:table-lookup", Exp_fig4.bench_kernel);
    ("fig5:impurity-scf", Exp_fig5.bench_kernel);
    ("table2-4:variant-inverter", Exp_tables234.bench_kernel);
    ("fig6:montecarlo-50", Exp_fig6.bench_kernel);
    ("fig7:latch-snm", Exp_fig7.bench_kernel);
    (* Ablation benches for the design choices DESIGN.md calls out. *)
    ( "ablation:mode-count",
      fun () ->
        match Ablations.mode_count ~indices:[ 1 ] () with
        | [ r ] -> r.Ablations.ion
        | _ -> 0. );
    ( "ablation:contact-style",
      fun () ->
        match Ablations.contact_style () with
        | r :: _ -> r.Ablations.ion
        | [] -> 0. );
    ( "ablation:scf-mixing",
      fun () ->
        match Ablations.mixing () with
        | r :: _ -> float_of_int r.Ablations.iterations
        | [] -> 0. );
    ( "extension:roughness",
      fun () ->
        (Roughness.transmission_study ~realizations:10 ~n_sites:80 ~gnr_index:12
           ~sigma:0.05 ~corr_sites:5 ())
          .Roughness.mean_transmission );
    (* Price of one full escalation (injected rung-1 failure + damped
       restart) relative to the plain SCF solve the other kernels time;
       the campaign is scoped so nothing stays armed between kernels. *)
    ( "robust:scf-ladder-recovery",
      fun () ->
        let p =
          {
            (Params.default ~gnr_index:12 ()) with
            Params.channel_length = 6e-9;
            energy_step = 8e-3;
            energy_margin = 0.3;
          }
        in
        let o =
          Fault.with_spec "scf.charge#1" (fun () ->
              Robust.Scf.solve_robust ~parallel:false p ~vg:0.4 ~vd:0.3)
        in
        match o.Scf_robust.solution with
        | Some s -> s.Scf.current
        | None -> 0. );
    (* One serve-daemon sweep (8 coalescing clients + an LRU re-hit);
       the counter breakdown lands in the report's "serve" section. *)
    ( "serve:coalesced-sweep",
      fun () ->
        let _, coalesced, _, _ = serve_sweep () in
        float_of_int coalesced );
    (* PR 7 block-RGF fast path (docs/PERF.md, "block kernel layer"). *)
    ( "rgf-block:transmission-sweep",
      fun () ->
        let dev = Lazy.force block_device in
        let out = Rgf_block.transmission_sweep ~egrid:block_egrid (fun _ -> dev) in
        out.(block_ne / 2) );
    ( "rgf-block:spectra-sweep",
      fun () ->
        let dev = Lazy.force block_device in
        let acc = ref 0. in
        for k = 0 to block_sp_ne - 1 do
          acc := !acc +. Rgf_block.spectra_into block_ws dev block_sp_egrid.(k)
        done;
        !acc );
  ]

let kernels =
  match Sys.getenv_opt "GNRFET_BENCH_KERNELS" with
  | None | Some "" -> all_kernels
  | Some spec ->
    let wanted = String.split_on_char ',' spec |> List.map String.trim in
    let matches name =
      List.exists
        (fun w ->
          w <> ""
          && String.length w <= String.length name
          && (let found = ref false in
              for i = 0 to String.length name - String.length w do
                if String.sub name i (String.length w) = w then found := true
              done;
              !found))
        wanted
    in
    List.filter (fun (name, _) -> matches name) all_kernels

(* The kernels whose cost is the per-energy NEGF loop: timed twice, with
   the energy loop forced sequential (GNRFET_DOMAINS=1) and with the
   pool at full width, to track the tentpole speedup. *)
let energy_loop_kernels =
  [ "fig2a:scf-iv-sweep"; "fig5:impurity-scf"; "rgf-block:transmission-sweep" ]

(* Plain wall-clock best-of-r timing for the before/after comparison
   (Bechamel owns the per-kernel steady-state numbers; here we want the
   same kernel under two environment settings). *)
let time_ms ?(repeat = 3) kernel =
  let best = ref infinity in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (kernel ()));
    best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1e3)
  done;
  !best

(* GC allocation profile of one kernel run (words, via quick_stat
   deltas after a full major collection): the bench-v4 schema carries
   these next to the timing so allocation regressions — the thing the
   PR 7 in-place kernels exist to prevent — show up in the artifact. *)
let gc_stats kernel =
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  ignore (Sys.opaque_identity (kernel ()));
  let s1 = Gc.quick_stat () in
  ( s1.Gc.minor_words -. s0.Gc.minor_words,
    s1.Gc.major_words -. s0.Gc.major_words,
    s1.Gc.promoted_words -. s0.Gc.promoted_words )

let run_benchmarks () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~kde:None ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== kernel timings (Bechamel, monotonic clock) ==\n%!";
  List.concat_map
    (fun (name, kernel) ->
      let test =
        Test.make ~name
          (Staged.stage (fun () -> ignore (Sys.opaque_identity (kernel ()))))
      in
      let results = Benchmark.all cfg [ instance ] test in
      let gc = gc_stats kernel in
      Hashtbl.fold
        (fun name m acc ->
          let analysis = Analyze.one ols instance m in
          match Analyze.OLS.estimates analysis with
          | Some [ est ] ->
            let ms = est /. 1e6 in
            let minor, _, _ = gc in
            Printf.printf "  %-28s %12.3f ms/run  %12.0f minor words/run\n%!"
              name ms minor;
            (name, ms, gc) :: acc
          | Some _ | None ->
            Printf.printf "  %-28s (no estimate)\n%!" name;
            acc)
        results [])
    kernels

let run_energy_loop_comparison () =
  let pairs =
    List.filter (fun (name, _) -> List.mem name energy_loop_kernels) kernels
  in
  if pairs = [] then []
  else begin
    Printf.printf
      "\n== energy-loop kernels: sequential vs parallel (%d domains) ==\n%!"
      (Parallel.num_domains ());
    List.map
      (fun (name, kernel) ->
        let seq_ms = with_env "GNRFET_DOMAINS" "1" (fun () -> time_ms kernel) in
        let par_ms = time_ms kernel in
        let speedup = seq_ms /. par_ms in
        Printf.printf "  %-28s seq %10.1f ms   par %10.1f ms   %.2fx\n%!" name
          seq_ms par_ms speedup;
        (name, seq_ms, par_ms, speedup))
      pairs
  end

(* Naive-vs-fast block RGF on the synthetic device above: wall-clock
   best-of for the naive Cmatrix reference, the Zdense fast path forced
   sequential, and the fast path over the pool — plus the per-energy
   steady-state GC profile of a warm single-workspace sweep, which is
   the "zero-alloc per energy" acceptance number.  Skipped when the
   kernel filter selects no rgf-block kernel. *)
type block_rgf_result = {
  br_naive_ms : float;
  br_fast_seq_ms : float;
  br_fast_par_ms : float;
  br_sp_naive_ms : float;
  br_sp_fast_ms : float;
  br_minor_per_e : float;
  br_major_per_e : float;
  br_promoted_per_e : float;
  br_max_rel_diff : float;
}

let run_block_rgf_comparison () =
  if
    not
      (List.exists
         (fun (name, _) ->
           String.length name >= 9 && String.sub name 0 9 = "rgf-block")
         kernels)
  then None
  else begin
    Printf.printf
      "\n== block RGF: naive Cmatrix reference vs Zdense fast path ==\n%!";
    Printf.printf "   device: %d blocks x %d orbitals, %d energies\n%!" block_nb
      block_m block_ne;
    let dev = Lazy.force block_device in
    let naive () =
      Array.fold_left
        (fun acc e -> acc +. Rgf_block.transmission dev e)
        0. block_egrid
    in
    let fast () =
      let out = Rgf_block.transmission_sweep ~egrid:block_egrid (fun _ -> dev) in
      Array.fold_left ( +. ) 0. out
    in
    (* Cross-check while we are here: the two paths must agree. *)
    let max_rel_diff =
      let ws = Rgf_block.workspace () in
      Array.fold_left
        (fun acc e ->
          let tn = Rgf_block.transmission dev e in
          let tf = Rgf_block.transmission_into ws dev e in
          Float.max acc (Float.abs (tn -. tf) /. Float.max 1. (Float.abs tn)))
        0.
        (Array.sub block_egrid 0 8)
    in
    let naive_ms = time_ms ~repeat:2 naive in
    let fast_seq_ms = with_env "GNRFET_DOMAINS" "1" (fun () -> time_ms fast) in
    let fast_par_ms = time_ms fast in
    Printf.printf
      "   transmission: naive %10.1f ms   fast(seq) %8.1f ms   fast(par) \
       %8.1f ms   %.2fx\n%!"
      naive_ms fast_seq_ms fast_par_ms (naive_ms /. fast_seq_ms);
    let sp_naive () =
      Array.fold_left
        (fun acc e -> acc +. (Rgf_block.spectra dev e).Rgf_block.t_coh)
        0. block_sp_egrid
    in
    let sp_fast () =
      let acc = ref 0. in
      for k = 0 to block_sp_ne - 1 do
        acc := !acc +. Rgf_block.spectra_into block_ws dev block_sp_egrid.(k)
      done;
      !acc
    in
    let sp_naive_ms = time_ms ~repeat:2 sp_naive in
    let sp_fast_ms = time_ms sp_fast in
    Printf.printf "   spectra:      naive %10.1f ms   fast      %8.1f ms   %.2fx\n%!"
      sp_naive_ms sp_fast_ms (sp_naive_ms /. sp_fast_ms);
    (* Warm one workspace, then measure a whole sweep's GC deltas. *)
    let ws = Rgf_block.workspace () in
    ignore (Rgf_block.transmission_into ws dev block_egrid.(0));
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    for k = 0 to block_ne - 1 do
      ignore (Sys.opaque_identity (Rgf_block.transmission_into ws dev block_egrid.(k)))
    done;
    let s1 = Gc.quick_stat () in
    let per v0 v1 = (v1 -. v0) /. float_of_int block_ne in
    let minor = per s0.Gc.minor_words s1.Gc.minor_words in
    let major = per s0.Gc.major_words s1.Gc.major_words in
    let promoted = per s0.Gc.promoted_words s1.Gc.promoted_words in
    Printf.printf
      "   steady state: %.1f minor / %.1f major / %.1f promoted words per \
       energy   (max rel diff vs naive %.2e)\n%!"
      minor major promoted max_rel_diff;
    Some
      {
        br_naive_ms = naive_ms;
        br_fast_seq_ms = fast_seq_ms;
        br_fast_par_ms = fast_par_ms;
        br_sp_naive_ms = sp_naive_ms;
        br_sp_fast_ms = sp_fast_ms;
        br_minor_per_e = minor;
        br_major_per_e = major;
        br_promoted_per_e = promoted;
        br_max_rel_diff = max_rel_diff;
      }
  end

(* The CI smoke kernels (fig2a / fig5 / ablations) call Scf.solve directly
   and never touch the on-disk table cache, so a report from a smoke run
   would show zero cache activity.  Exercise the cache explicitly on a
   deliberately tiny device/grid (a couple of SCF solves) against a
   throwaway directory: the first get_many generates, the second is all
   memory hits, and both land in the obs snapshot. *)
let exercise_table_cache () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gnrfet_bench_obs.%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  with_env "GNRFET_TABLE_DIR" dir (fun () ->
      let p =
        {
          (Params.default ~gnr_index:12 ()) with
          Params.channel_length = 6e-9;
          energy_step = 8e-3;
          energy_margin = 0.3;
        }
      in
      let grid =
        { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 2; vd_max = 0.3; n_vd = 2 }
      in
      ignore (Table_cache.get_many ~grid [ p ]);
      ignore (Table_cache.get_many ~grid [ p ]));
  (* Best-effort cleanup of the throwaway cache directory. *)
  (try
     Sys.readdir dir
     |> Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
     Sys.rmdir dir
   with Sys_error _ -> ())

(* Hand-rolled JSON (no json dependency in the image): flat schema, one
   object per kernel plus the observability snapshot, documented in
   docs/PERF.md and docs/OBS.md. *)
let write_json path ~domains ~kernel_times ~pairs ~block_rgf ~serve =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"gnrfet-bench-v4\",\n";
  add "  \"pr\": 7,\n";
  add "  \"domains\": %d,\n" domains;
  (let generates, coalesced, lru_hits, requests = serve in
   add
     "  \"serve\": {\"requests\": %d, \"generates\": %d, \"coalesced_hits\": \
      %d, \"lru_hits\": %d},\n"
     requests generates coalesced lru_hits);
  (match block_rgf with
  | None -> ()
  | Some r ->
    add "  \"block_rgf\": {\n";
    add "    \"device\": {\"blocks\": %d, \"orbitals\": %d, \"energies\": %d},\n"
      block_nb block_m block_ne;
    add
      "    \"transmission\": {\"naive_ms\": %.6g, \"fast_seq_ms\": %.6g, \
       \"fast_par_ms\": %.6g, \"speedup_fast_vs_naive\": %.4g, \
       \"speedup_par_vs_seq\": %.4g},\n"
      r.br_naive_ms r.br_fast_seq_ms r.br_fast_par_ms
      (r.br_naive_ms /. r.br_fast_seq_ms)
      (r.br_fast_seq_ms /. r.br_fast_par_ms);
    add
      "    \"spectra\": {\"energies\": %d, \"naive_ms\": %.6g, \"fast_ms\": \
       %.6g, \"speedup_fast_vs_naive\": %.4g},\n"
      block_sp_ne r.br_sp_naive_ms r.br_sp_fast_ms
      (r.br_sp_naive_ms /. r.br_sp_fast_ms);
    add
      "    \"steady_state_alloc_per_energy\": {\"minor_words\": %.3g, \
       \"major_words\": %.3g, \"promoted_words\": %.3g},\n"
      r.br_minor_per_e r.br_major_per_e r.br_promoted_per_e;
    add "    \"max_rel_diff_vs_naive\": %.3g\n" r.br_max_rel_diff;
    add "  },\n");
  add "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ms, (minor, major, promoted)) ->
      add
        "    {\"name\": %S, \"ms_per_run\": %.6g, \"gc\": {\"minor_words\": \
         %.6g, \"major_words\": %.6g, \"promoted_words\": %.6g}}%s\n"
        name ms minor major promoted
        (if i = List.length kernel_times - 1 then "" else ","))
    kernel_times;
  add "  ],\n";
  add "  \"energy_loop\": [\n";
  List.iteri
    (fun i (name, seq_ms, par_ms, speedup) ->
      add
        "    {\"name\": %S, \"sequential_ms\": %.6g, \"parallel_ms\": %.6g, \
         \"speedup\": %.4g}%s\n"
        name seq_ms par_ms speedup
        (if i = List.length pairs - 1 then "" else ","))
    pairs;
  add "  ],\n";
  add "  \"obs\": %s\n" (Obs.to_json ~indent:"  " (Obs.snapshot ()));
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nbench report written to %s\n%!" path

let () =
  (* Observability defaults on in the bench harness; GNRFET_OBS=0 opts
     out (an explicit setting is honoured as-is via Obs.global's env
     default). *)
  if Sys.getenv_opt "GNRFET_OBS" = None then Obs.set_enabled Obs.global true;
  let fast = Sys.getenv_opt "GNRFET_BENCH_FAST" <> None in
  Printf.printf
    "GNRFET technology exploration - benchmark & reproduction harness\n";
  Printf.printf "device-table cache: %s\n%!" (Table_cache.cache_dir ());
  Printf.printf "domain pool width:  %d\n%!" (Parallel.num_domains ());
  Printf.printf "observability:      %s\n%!"
    (if Obs.enabled Obs.global then "on" else "off (GNRFET_OBS=0)");
  let t0 = Unix.gettimeofday () in
  if not fast then begin
    Printf.printf "\n== full reproduction of every paper table and figure ==\n%!";
    All_experiments.run_all Format.std_formatter;
    Printf.printf "\n== design-choice ablations ==\n%!";
    Ablations.print_all Format.std_formatter;
    Printf.printf "\n== extension: edge-roughness study (paper ref [17]) ==\n%!";
    List.iter
      (fun sigma ->
        let s =
          Roughness.transmission_study ~gnr_index:12 ~sigma ~corr_sites:6 ()
        in
        Printf.printf
          "  sigma = %.2f: <T> = %.3f +- %.3f (%.0f%% of ideal), Lloc ~ %s\n%!"
          sigma s.Roughness.mean_transmission s.Roughness.std_transmission
          (100. *. s.Roughness.mean_ratio)
          (if Float.is_finite s.Roughness.localization_estimate then
             Printf.sprintf "%.0f nm" (s.Roughness.localization_estimate /. 1e-9)
           else "ballistic"))
      [ 0.01; 0.03; 0.06; 0.1 ]
  end;
  (* Warm the caches the kernels rely on so Bechamel times steady-state
     behaviour rather than first-touch table generation. *)
  List.iter (fun (_, k) -> ignore (k ())) kernels;
  let kernel_times = run_benchmarks () in
  let pairs = run_energy_loop_comparison () in
  let block_rgf = run_block_rgf_comparison () in
  exercise_table_cache ();
  (* One clean serve sweep for the report's counter breakdown (the
     Bechamel kernel above times it; this run pins the counts). *)
  Printf.printf "\n== serve daemon: coalesced sweep ==\n%!";
  let serve = serve_sweep () in
  let generates, coalesced, lru_hits, requests = serve in
  Printf.printf
    "  %d requests: %d generation%s, %d coalesced, %d lru hit%s\n%!" requests
    generates
    (if generates = 1 then "" else "s")
    coalesced lru_hits
    (if lru_hits = 1 then "" else "s");
  let json_path =
    match Sys.getenv_opt "GNRFET_BENCH_JSON" with
    | Some p when p <> "" -> p
    | Some _ | None -> "BENCH_PR7.json"
  in
  write_json json_path ~domains:(Parallel.num_domains ()) ~kernel_times ~pairs
    ~block_rgf ~serve;
  Printf.printf "\n[bench total: %.1f s]\n" (Unix.gettimeofday () -. t0)
