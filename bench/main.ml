(* Benchmark harness: regenerates every table and figure of the paper and
   times the computational kernel behind each with Bechamel, then times
   the energy-parallel NEGF kernels sequential-vs-parallel and emits a
   machine-readable bench report so the perf trajectory is tracked
   across PRs.

   Usage:
     dune exec bench/main.exe                 full reproduction + benchmarks
     GNRFET_BENCH_FAST=1 dune exec bench/main.exe   benchmarks only

   Environment:
     GNRFET_BENCH_FAST=1       skip the full paper reproduction
     GNRFET_BENCH_KERNELS=a,b  only kernels whose name contains one of the
                               comma-separated substrings (CI smoke runs
                               the table-free SCF kernels this way)
     GNRFET_BENCH_JSON=path    where to write the report
                               (default BENCH_PR8.json)
     GNRFET_DOMAINS=n          worker-pool width for the parallel runs
     GNRFET_OBS=0              disable the observability counters (on by
                               default in the bench harness; the snapshot
                               is embedded in the report's "obs" section)

   The first full run generates the device-table cache (about 12 minutes
   on one core; `dune exec bin/gen_tables.exe` does the same ahead of
   time); subsequent runs load it from _tables/. *)

open Bechamel

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

(* PR 5 serve-daemon sweep: 8 concurrent clients request the same
   uncached micro table — single-flight coalesces them onto one
   generation — then one more request lands in the in-memory LRU.  Every
   call works against a fresh throwaway cache directory so the counter
   pattern is deterministic: generates = 1, coalesced = 7, lru_hits = 1.
   Returns (generates, coalesced, lru_hits, requests) from the server's
   private obs registry. *)
let serve_sweep_runs = ref 0

let serve_sweep () =
  incr serve_sweep_runs;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gnrfet_bench_serve.%d.%d" (Unix.getpid ())
         !serve_sweep_runs)
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      try
        Sys.readdir dir
        |> Array.iter (fun f ->
               try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
        Sys.rmdir dir
      with Sys_error _ -> ())
  @@ fun () ->
  with_env "GNRFET_TABLE_DIR" dir @@ fun () ->
  Table_cache.clear_memory ();
  let obs = Obs.create ~enabled:true () in
  let grid =
    { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 3; vd_max = 0.3; n_vd = 2 }
  in
  let config =
    { Serve.default_config with Serve.ctx = Ctx.make ~obs ~grid () }
  in
  let server = Serve.create ~config () in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let p =
    {
      (Params.default ~gnr_index:12 ()) with
      Params.channel_length = 6e-9;
      energy_step = 8e-3;
      energy_margin = 0.3;
    }
  in
  let line =
    Serve_protocol.request_to_line
      {
        Serve_protocol.id = Some 1;
        op = Serve_protocol.Table { params = p; grid = None };
      }
  in
  let go = Mutex.create () in
  Mutex.lock go;
  let threads =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            Mutex.lock go;
            Mutex.unlock go;
            ignore (Serve.handle_line server line))
          ())
  in
  Mutex.unlock go;
  List.iter Thread.join threads;
  ignore (Serve.handle_line server line);
  ( Obs.counter_value ~obs "table_cache.generates",
    Obs.counter_value ~obs "serve.coalesced_hits",
    Obs.counter_value ~obs "serve.lru_hits",
    Obs.counter_value ~obs "serve.requests" )

(* PR 7 block-RGF fast path: a synthetic wide-ribbon-scale device —
   [block_nb] blocks of [block_m] orbitals, random hermitian on-block
   Hamiltonians and complex couplings, absorbing self-energies
   Σ = H_s - 0.15i·I (so Γ = 0.3·I is safely positive) — swept over
   [block_ne] energies.  Deterministic seed so the naive-vs-fast
   comparison below times identical work across runs. *)
let block_nb = 24

let block_m = 26

let block_ne = 220

let block_device =
  lazy
    (let st = Random.State.make [| 0x7b10c6 |] in
     let rc lo hi = lo +. ((hi -. lo) *. Random.State.float st 1.) in
     let herm scale =
       let a = Array.make_matrix block_m block_m Complex.zero in
       for i = 0 to block_m - 1 do
         a.(i).(i) <- { Complex.re = rc (-.scale) scale; im = 0. };
         for j = i + 1 to block_m - 1 do
           let v = { Complex.re = rc (-.scale) scale; im = rc (-.scale) scale } in
           a.(i).(j) <- v;
           a.(j).(i) <- Complex.conj v
         done
       done;
       Cmatrix.init block_m block_m (fun i j -> a.(i).(j))
     in
     let general scale =
       let a = Array.make_matrix block_m block_m Complex.zero in
       for i = 0 to block_m - 1 do
         for j = 0 to block_m - 1 do
           a.(i).(j) <- { Complex.re = rc (-.scale) scale; im = rc (-.scale) scale }
         done
       done;
       Cmatrix.init block_m block_m (fun i j -> a.(i).(j))
     in
     let absorbing () =
       let base = herm 0.05 in
       Cmatrix.init block_m block_m (fun i j ->
           let v = Cmatrix.get base i j in
           if i = j then { v with Complex.im = v.Complex.im -. 0.15 } else v)
     in
     {
       Rgf_block.blocks = Array.init block_nb (fun _ -> herm 0.4);
       couplings = Array.init (block_nb - 1) (fun _ -> general 0.25);
       sigma_l = absorbing ();
       sigma_r = absorbing ();
     })

let block_egrid =
  Array.init block_ne (fun k -> -1. +. (2. *. float_of_int k /. float_of_int (block_ne - 1)))

(* Smaller grid for the (4-sweep) spectra kernel so one Bechamel run
   stays well inside the quota. *)
let block_sp_ne = 60

let block_sp_egrid =
  Array.init block_sp_ne (fun k ->
      -1. +. (2. *. float_of_int k /. float_of_int (block_sp_ne - 1)))

(* Persistent workspace: Bechamel then times steady-state reuse, which
   is the contract the zero-alloc claim is made under. *)
let block_ws = Rgf_block.workspace ()

(* PR 8 gnrtbl load path: a synthetic production-scale table (256 x 128
   bias points, ~0.5 MB on disk) written once per bench run in both
   formats, then loaded back per kernel invocation — Marshal
   deserialization vs the mmap + CRC-validate gnrtbl read
   (docs/FORMAT.md).  Values are deterministic closed forms so the two
   files are identical across runs. *)
let tl_n_vg = 256

let tl_n_vd = 128

let table_load_table =
  lazy
    (let vg = Array.init tl_n_vg (fun i -> -0.3 +. (0.005 *. float_of_int i)) in
     let vd = Array.init tl_n_vd (fun j -> 0.005 *. float_of_int j) in
     let f g d = 1e-6 *. (g +. 1.) *. d /. (0.1 +. d) in
     let q g d = -4e-19 *. Float.max 0. (g -. (d /. 4.)) in
     {
       Iv_table.key = "bench-table-load";
       vg;
       vd;
       current = Array.map (fun g -> Array.map (fun d -> f g d) vd) vg;
       charge = Array.map (fun g -> Array.map (fun d -> q g d) vd) vg;
       failed_points = [ (0, 0); (17, 31) ];
     })

let table_load_paths =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "gnrfet_bench_tblload.%d" (Unix.getpid ()))
     in
     (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
     let t = Lazy.force table_load_table in
     let gnrtbl = Filename.concat dir "bench.gnrtbl" in
     let marshal = Filename.concat dir "bench.table" in
     Tbl_format.write ~path:gnrtbl ~cache_key:"bench|table-load" t;
     let oc = open_out_bin marshal in
     Marshal.to_channel oc ("bench|table-load", t) [];
     close_out oc;
     (gnrtbl, marshal))

let table_load_cleanup () =
  if Lazy.is_val table_load_paths then begin
    let gnrtbl, marshal = Lazy.force table_load_paths in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ gnrtbl; marshal ];
    try Sys.rmdir (Filename.dirname gnrtbl) with Sys_error _ -> ()
  end

let load_marshal () =
  let _, marshal = Lazy.force table_load_paths in
  let ic = open_in_bin marshal in
  let _key, (t : Iv_table.t) =
    (Marshal.from_channel ic : string * Iv_table.t)
  in
  close_in ic;
  t

let load_gnrtbl () =
  let gnrtbl, _ = Lazy.force table_load_paths in
  Tbl_format.read ~path:gnrtbl

(* Campaign fixture: enough samples that per-sample journal costs
   dominate setup, and a trivial evaluator so the journal is all that
   is being timed. *)
let campaign_samples = 200

let campaign_spec =
  {
    Campaign.name = "bench-resume-overhead";
    samples = campaign_samples;
    seed = 11;
    stages = 15;
    widths = [ 9; 12; 15; 18 ];
    charges = [ 0.; -1. ];
    gammas = [ 0.5; 1. ];
    ops = [ (0.4, 0.13); (0.5, 0.1) ];
    grid = None;
  }

let campaign_eval (s : Campaign.sample) =
  let i = float_of_int (s.Campaign.s_index + 1) in
  { Campaign.delay = 1e-12 *. i; edp = 1e-27 *. i *. i; snm = 0.05 }

let campaign_journal_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "gnrfet_bench_campaign.%d.gnrcamp" (Unix.getpid ()))

let campaign_cleanup () =
  match Sys.remove campaign_journal_path with
  | () -> ()
  | exception Sys_error _ -> ()

let all_kernels : (string * (unit -> float)) list =
  [
    ("fig2a:scf-iv-sweep", Exp_fig2a.bench_kernel);
    ("fig2b:vt-extraction", Exp_fig2b.bench_kernel);
    ("fig3b:explore-cell", Exp_fig3b.bench_kernel);
    ("table1:cmos-ro-metrics", Exp_table1.bench_kernel);
    ("fig4:table-lookup", Exp_fig4.bench_kernel);
    ("fig5:impurity-scf", Exp_fig5.bench_kernel);
    ("table2-4:variant-inverter", Exp_tables234.bench_kernel);
    ("fig6:montecarlo-50", Exp_fig6.bench_kernel);
    ("fig7:latch-snm", Exp_fig7.bench_kernel);
    (* Ablation benches for the design choices DESIGN.md calls out. *)
    ( "ablation:mode-count",
      fun () ->
        match Ablations.mode_count ~indices:[ 1 ] () with
        | [ r ] -> r.Ablations.ion
        | _ -> 0. );
    ( "ablation:contact-style",
      fun () ->
        match Ablations.contact_style () with
        | r :: _ -> r.Ablations.ion
        | [] -> 0. );
    ( "ablation:scf-mixing",
      fun () ->
        match Ablations.mixing () with
        | r :: _ -> float_of_int r.Ablations.iterations
        | [] -> 0. );
    ( "extension:roughness",
      fun () ->
        (Roughness.transmission_study ~realizations:10 ~n_sites:80 ~gnr_index:12
           ~sigma:0.05 ~corr_sites:5 ())
          .Roughness.mean_transmission );
    (* Price of one full escalation (injected rung-1 failure + damped
       restart) relative to the plain SCF solve the other kernels time;
       the campaign is scoped so nothing stays armed between kernels. *)
    ( "robust:scf-ladder-recovery",
      fun () ->
        let p =
          {
            (Params.default ~gnr_index:12 ()) with
            Params.channel_length = 6e-9;
            energy_step = 8e-3;
            energy_margin = 0.3;
          }
        in
        let o =
          Fault.with_spec "scf.charge#1" (fun () ->
              Robust.Scf.solve_robust ~parallel:false p ~vg:0.4 ~vd:0.3)
        in
        match o.Scf_robust.solution with
        | Some s -> s.Scf.current
        | None -> 0. );
    (* One serve-daemon sweep (8 coalescing clients + an LRU re-hit);
       the counter breakdown lands in the report's "serve" section. *)
    ( "serve:coalesced-sweep",
      fun () ->
        let _, coalesced, _, _ = serve_sweep () in
        float_of_int coalesced );
    (* PR 7 block-RGF fast path (docs/PERF.md, "block kernel layer"). *)
    ( "rgf-block:transmission-sweep",
      fun () ->
        let dev = Lazy.force block_device in
        let out = Rgf_block.transmission_sweep ~egrid:block_egrid (fun _ -> dev) in
        out.(block_ne / 2) );
    ( "rgf-block:spectra-sweep",
      fun () ->
        let dev = Lazy.force block_device in
        let acc = ref 0. in
        for k = 0 to block_sp_ne - 1 do
          acc := !acc +. Rgf_block.spectra_into block_ws dev block_sp_egrid.(k)
        done;
        !acc );
    (* PR 8 table-load paths (docs/FORMAT.md): the same ~1 MB table read
       back per run via Marshal deserialization vs the zero-copy gnrtbl
       mmap + CRC validation. *)
    ( "table:load-marshal",
      fun () ->
        let t = load_marshal () in
        t.Iv_table.current.(tl_n_vg / 2).(tl_n_vd / 2) );
    ( "table:load-gnrtbl",
      fun () ->
        let v = load_gnrtbl () in
        Bigarray.Array1.get v.Tbl_format.v_current
          ((tl_n_vg / 2 * tl_n_vd) + (tl_n_vd / 2)) );
    (* PR 9 campaign durability (docs/CAMPAIGN.md): one full journaled
       campaign (append + fsync per sample) followed by a resume that
       replays every record — the write-ahead and recovery paths the
       chaos CI leg depends on, timed end to end over a trivial
       evaluator so the journal dominates. *)
    ( "campaign:resume-overhead",
      fun () ->
        let o =
          Campaign.run_with ~journal:campaign_journal_path
            ~evaluate:campaign_eval campaign_spec
        in
        let r =
          Campaign.run_with ~journal:campaign_journal_path ~resume:true
            ~evaluate:campaign_eval campaign_spec
        in
        float_of_int (o.Campaign.evaluated + r.Campaign.resumed) );
  ]

let kernels =
  match Sys.getenv_opt "GNRFET_BENCH_KERNELS" with
  | None | Some "" -> all_kernels
  | Some spec ->
    let wanted = String.split_on_char ',' spec |> List.map String.trim in
    let matches name =
      List.exists
        (fun w ->
          w <> ""
          && String.length w <= String.length name
          && (let found = ref false in
              for i = 0 to String.length name - String.length w do
                if String.sub name i (String.length w) = w then found := true
              done;
              !found))
        wanted
    in
    List.filter (fun (name, _) -> matches name) all_kernels

(* The kernels whose cost is the per-energy NEGF loop: timed twice, with
   the energy loop forced sequential (GNRFET_DOMAINS=1) and with the
   pool at full width, to track the tentpole speedup. *)
let energy_loop_kernels =
  [ "fig2a:scf-iv-sweep"; "fig5:impurity-scf"; "rgf-block:transmission-sweep" ]

(* Plain wall-clock best-of-r timing for the before/after comparison
   (Bechamel owns the per-kernel steady-state numbers; here we want the
   same kernel under two environment settings). *)
let time_ms ?(repeat = 3) kernel =
  let best = ref infinity in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (kernel ()));
    best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1e3)
  done;
  !best

(* GC allocation profile of one kernel run (words, deltas after a full
   major collection): the bench schema carries these next to the timing
   so allocation regressions — the thing the PR 7 in-place kernels
   exist to prevent — show up in the artifact.  Minor words come from
   Gc.minor_words, which reads the allocation pointer and is exact in
   native code; quick_stat's minor_words field only updates at GC
   events, so a kernel whose allocations fit the minor heap would
   report zero. *)
let gc_stats kernel =
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let m0 = Gc.minor_words () in
  ignore (Sys.opaque_identity (kernel ()));
  let m1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  ( m1 -. m0,
    s1.Gc.major_words -. s0.Gc.major_words,
    s1.Gc.promoted_words -. s0.Gc.promoted_words )

let run_benchmarks () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~kde:None ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== kernel timings (Bechamel, monotonic clock) ==\n%!";
  List.concat_map
    (fun (name, kernel) ->
      let test =
        Test.make ~name
          (Staged.stage (fun () -> ignore (Sys.opaque_identity (kernel ()))))
      in
      let results = Benchmark.all cfg [ instance ] test in
      let gc = gc_stats kernel in
      Hashtbl.fold
        (fun name m acc ->
          let analysis = Analyze.one ols instance m in
          match Analyze.OLS.estimates analysis with
          | Some [ est ] ->
            let ms = est /. 1e6 in
            let minor, _, _ = gc in
            Printf.printf "  %-28s %12.3f ms/run  %12.0f minor words/run\n%!"
              name ms minor;
            (name, ms, gc) :: acc
          | Some _ | None ->
            Printf.printf "  %-28s (no estimate)\n%!" name;
            acc)
        results [])
    kernels

let run_energy_loop_comparison () =
  let pairs =
    List.filter (fun (name, _) -> List.mem name energy_loop_kernels) kernels
  in
  if pairs = [] then []
  else begin
    Printf.printf
      "\n== energy-loop kernels: sequential vs parallel (%d domains) ==\n%!"
      (Parallel.num_domains ());
    List.map
      (fun (name, kernel) ->
        let seq_ms = with_env "GNRFET_DOMAINS" "1" (fun () -> time_ms kernel) in
        let par_ms = time_ms kernel in
        let speedup = seq_ms /. par_ms in
        Printf.printf "  %-28s seq %10.1f ms   par %10.1f ms   %.2fx\n%!" name
          seq_ms par_ms speedup;
        (name, seq_ms, par_ms, speedup))
      pairs
  end

(* Naive-vs-fast block RGF on the synthetic device above: wall-clock
   best-of for the naive Cmatrix reference, the Zdense fast path forced
   sequential, and the fast path over the pool — plus the per-energy
   steady-state GC profile of a warm single-workspace sweep, which is
   the "zero-alloc per energy" acceptance number.  Skipped when the
   kernel filter selects no rgf-block kernel. *)
type block_rgf_result = {
  br_naive_ms : float;
  br_fast_seq_ms : float;
  br_fast_par_ms : float;
  br_sp_naive_ms : float;
  br_sp_fast_ms : float;
  br_minor_per_e : float;
  br_major_per_e : float;
  br_promoted_per_e : float;
  br_max_rel_diff : float;
}

let run_block_rgf_comparison () =
  if
    not
      (List.exists
         (fun (name, _) ->
           String.length name >= 9 && String.sub name 0 9 = "rgf-block")
         kernels)
  then None
  else begin
    Printf.printf
      "\n== block RGF: naive Cmatrix reference vs Zdense fast path ==\n%!";
    Printf.printf "   device: %d blocks x %d orbitals, %d energies\n%!" block_nb
      block_m block_ne;
    let dev = Lazy.force block_device in
    let naive () =
      Array.fold_left
        (fun acc e -> acc +. Rgf_block.transmission dev e)
        0. block_egrid
    in
    let fast () =
      let out = Rgf_block.transmission_sweep ~egrid:block_egrid (fun _ -> dev) in
      Array.fold_left ( +. ) 0. out
    in
    (* Cross-check while we are here: the two paths must agree. *)
    let max_rel_diff =
      let ws = Rgf_block.workspace () in
      Array.fold_left
        (fun acc e ->
          let tn = Rgf_block.transmission dev e in
          let tf = Rgf_block.transmission_into ws dev e in
          Float.max acc (Float.abs (tn -. tf) /. Float.max 1. (Float.abs tn)))
        0.
        (Array.sub block_egrid 0 8)
    in
    let naive_ms = time_ms ~repeat:2 naive in
    let fast_seq_ms = with_env "GNRFET_DOMAINS" "1" (fun () -> time_ms fast) in
    let fast_par_ms = time_ms fast in
    Printf.printf
      "   transmission: naive %10.1f ms   fast(seq) %8.1f ms   fast(par) \
       %8.1f ms   %.2fx\n%!"
      naive_ms fast_seq_ms fast_par_ms (naive_ms /. fast_seq_ms);
    let sp_naive () =
      Array.fold_left
        (fun acc e -> acc +. (Rgf_block.spectra dev e).Rgf_block.t_coh)
        0. block_sp_egrid
    in
    let sp_fast () =
      let acc = ref 0. in
      for k = 0 to block_sp_ne - 1 do
        acc := !acc +. Rgf_block.spectra_into block_ws dev block_sp_egrid.(k)
      done;
      !acc
    in
    let sp_naive_ms = time_ms ~repeat:2 sp_naive in
    let sp_fast_ms = time_ms sp_fast in
    Printf.printf "   spectra:      naive %10.1f ms   fast      %8.1f ms   %.2fx\n%!"
      sp_naive_ms sp_fast_ms (sp_naive_ms /. sp_fast_ms);
    (* Warm one workspace, then measure a whole sweep's GC deltas. *)
    let ws = Rgf_block.workspace () in
    ignore (Rgf_block.transmission_into ws dev block_egrid.(0));
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    for k = 0 to block_ne - 1 do
      ignore (Sys.opaque_identity (Rgf_block.transmission_into ws dev block_egrid.(k)))
    done;
    let s1 = Gc.quick_stat () in
    let per v0 v1 = (v1 -. v0) /. float_of_int block_ne in
    let minor = per s0.Gc.minor_words s1.Gc.minor_words in
    let major = per s0.Gc.major_words s1.Gc.major_words in
    let promoted = per s0.Gc.promoted_words s1.Gc.promoted_words in
    Printf.printf
      "   steady state: %.1f minor / %.1f major / %.1f promoted words per \
       energy   (max rel diff vs naive %.2e)\n%!"
      minor major promoted max_rel_diff;
    Some
      {
        br_naive_ms = naive_ms;
        br_fast_seq_ms = fast_seq_ms;
        br_fast_par_ms = fast_par_ms;
        br_sp_naive_ms = sp_naive_ms;
        br_sp_fast_ms = sp_fast_ms;
        br_minor_per_e = minor;
        br_major_per_e = major;
        br_promoted_per_e = promoted;
        br_max_rel_diff = max_rel_diff;
      }
  end

(* Marshal vs gnrtbl load on the synthetic ~1 MB table: wall-clock
   best-of plus whole-load GC deltas.  The gnrtbl number is the PR 8
   acceptance criterion: >= 5x over Marshal with ~0 major words per
   load (the mapped columns live outside the OCaml heap).  Skipped when
   the kernel filter selects no table:load kernel. *)
type table_load_result = {
  tl_gnrtbl_bytes : int;
  tl_marshal_bytes : int;
  tl_marshal_ms : float;
  tl_gnrtbl_ms : float;
  tl_convert_ms : float;
  tl_marshal_gc : float * float * float;
  tl_gnrtbl_gc : float * float * float;
}

let run_table_load_comparison () =
  if
    not
      (List.exists
         (fun (name, _) ->
           String.length name >= 10 && String.sub name 0 10 = "table:load")
         kernels)
  then None
  else begin
    Printf.printf "\n== table load: Marshal vs zero-copy gnrtbl ==\n%!";
    let gnrtbl_path, marshal_path = Lazy.force table_load_paths in
    let file_size p = (Unix.stat p).Unix.st_size in
    (* Cross-check while we are here: the gnrtbl view converts back to
       exactly the table Marshal round-trips. *)
    let tm = load_marshal () in
    let tc = Tbl_format.to_table (load_gnrtbl ()) in
    if tm <> tc then failwith "table:load cross-check failed (gnrtbl <> marshal)";
    (* Loop-averaged timing (best window of 3, 100 loads per window,
       warm pass first): a single isolated mmap-path load measures the
       kernel's cold fault-handling machinery rather than the load
       itself — one-shot timings came out 4-5x above the steady state
       the serve daemon actually runs at, for marshal and gnrtbl
       alike. *)
    let loads_per_window = 100 in
    let avg_ms kernel =
      for _ = 1 to 20 do
        ignore (Sys.opaque_identity (kernel ()))
      done;
      let best = ref infinity in
      for _ = 1 to 3 do
        let t0 = Unix.gettimeofday () in
        for _ = 1 to loads_per_window do
          ignore (Sys.opaque_identity (kernel ()))
        done;
        let w = (Unix.gettimeofday () -. t0) /. float_of_int loads_per_window in
        best := Float.min !best (w *. 1e3)
      done;
      !best
    in
    let marshal_ms = avg_ms (fun () -> (load_marshal ()).Iv_table.current.(0).(0)) in
    let gnrtbl_ms =
      avg_ms (fun () ->
          Bigarray.Array1.get (load_gnrtbl ()).Tbl_format.v_current 0)
    in
    let convert_ms =
      avg_ms (fun () ->
          (Tbl_format.to_table (load_gnrtbl ())).Iv_table.current.(0).(0))
    in
    let marshal_gc = gc_stats (fun () -> (load_marshal ()).Iv_table.current.(0).(0)) in
    let gnrtbl_gc =
      gc_stats (fun () ->
          Bigarray.Array1.get (load_gnrtbl ()).Tbl_format.v_current 0)
    in
    let _, marshal_major, _ = marshal_gc and _, gnrtbl_major, _ = gnrtbl_gc in
    Printf.printf
      "   %d x %d table: marshal %8.3f ms   gnrtbl %8.3f ms   (+convert \
       %8.3f ms)   %.1fx\n%!"
      tl_n_vg tl_n_vd marshal_ms gnrtbl_ms convert_ms (marshal_ms /. gnrtbl_ms);
    Printf.printf
      "   major words/load: marshal %.0f   gnrtbl %.0f\n%!" marshal_major
      gnrtbl_major;
    Some
      {
        tl_gnrtbl_bytes = file_size gnrtbl_path;
        tl_marshal_bytes = file_size marshal_path;
        tl_marshal_ms = marshal_ms;
        tl_gnrtbl_ms = gnrtbl_ms;
        tl_convert_ms = convert_ms;
        tl_marshal_gc = marshal_gc;
        tl_gnrtbl_gc = gnrtbl_gc;
      }
  end

(* Campaign journal overhead (PR 9, docs/CAMPAIGN.md): a trivial
   evaluator isolates the durability machinery — bare run vs journaled
   run (append + fsync every sample) vs batched checkpoints vs pure
   replay of a complete journal.  The replay number is what `campaign
   resume` pays before the first new sample.  Skipped when the kernel
   filter selects no campaign kernel. *)
type campaign_result = {
  ca_bare_ms : float;
  ca_journal_ms : float;
  ca_batched_ms : float;
  ca_replay_ms : float;
}

let run_campaign_comparison () =
  if
    not
      (List.exists
         (fun (name, _) ->
           String.length name >= 8 && String.sub name 0 8 = "campaign")
         kernels)
  then None
  else begin
    Printf.printf "\n== campaign: checkpoint journal overhead (%d samples) ==\n%!"
      campaign_samples;
    let bare () =
      float_of_int
        (Campaign.run_with ~evaluate:campaign_eval campaign_spec)
          .Campaign.evaluated
    in
    let journaled every () =
      float_of_int
        (Campaign.run_with ~journal:campaign_journal_path
           ~checkpoint_every:every ~evaluate:campaign_eval campaign_spec)
          .Campaign.evaluated
    in
    let replay () =
      float_of_int
        (Campaign.run_with ~journal:campaign_journal_path ~resume:true
           ~evaluate:campaign_eval campaign_spec)
          .Campaign.resumed
    in
    let warm_ms kernel =
      ignore (Sys.opaque_identity (kernel ()));
      time_ms kernel
    in
    let bare_ms = warm_ms bare in
    let journal_ms = warm_ms (journaled 1) in
    let batched_ms = warm_ms (journaled 16) in
    (* journaled left a complete journal behind; time pure replay. *)
    let replay_ms = warm_ms replay in
    let per ms = ms *. 1e3 /. float_of_int campaign_samples in
    Printf.printf
      "   bare %8.2f ms   journal(fsync/sample) %8.2f ms   every-16 %8.2f \
       ms   replay %8.2f ms\n%!"
      bare_ms journal_ms batched_ms replay_ms;
    Printf.printf
      "   overhead %.1f us/sample (fsync each)   %.1f us/sample (every 16)   \
       replay %.1f us/sample\n%!"
      (per (journal_ms -. bare_ms))
      (per (batched_ms -. bare_ms))
      (per replay_ms);
    Some
      {
        ca_bare_ms = bare_ms;
        ca_journal_ms = journal_ms;
        ca_batched_ms = batched_ms;
        ca_replay_ms = replay_ms;
      }
  end

(* The CI smoke kernels (fig2a / fig5 / ablations) call Scf.solve directly
   and never touch the on-disk table cache, so a report from a smoke run
   would show zero cache activity.  Exercise the cache explicitly on a
   deliberately tiny device/grid (a couple of SCF solves) against a
   throwaway directory: the first get_many generates, the second is all
   memory hits, and both land in the obs snapshot. *)
let exercise_table_cache () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gnrfet_bench_obs.%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  with_env "GNRFET_TABLE_DIR" dir (fun () ->
      let p =
        {
          (Params.default ~gnr_index:12 ()) with
          Params.channel_length = 6e-9;
          energy_step = 8e-3;
          energy_margin = 0.3;
        }
      in
      let grid =
        { Iv_table.vg_min = 0.; vg_max = 0.4; n_vg = 2; vd_max = 0.3; n_vd = 2 }
      in
      ignore (Table_cache.get_many ~grid [ p ]);
      ignore (Table_cache.get_many ~grid [ p ]));
  (* Best-effort cleanup of the throwaway cache directory. *)
  (try
     Sys.readdir dir
     |> Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
     Sys.rmdir dir
   with Sys_error _ -> ())

(* Hand-rolled JSON (no json dependency in the image): flat schema, one
   object per kernel plus the observability snapshot, documented in
   docs/PERF.md and docs/OBS.md. *)
let write_json path ~domains ~kernel_times ~pairs ~block_rgf ~table_load
    ~campaign ~serve =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"gnrfet-bench-v6\",\n";
  add "  \"pr\": 9,\n";
  add "  \"domains\": %d,\n" domains;
  (match table_load with
  | None -> ()
  | Some r ->
    let gc_obj (minor, major, promoted) =
      Printf.sprintf
        "{\"minor_words\": %.6g, \"major_words\": %.6g, \"promoted_words\": \
         %.6g}"
        minor major promoted
    in
    add "  \"table_load\": {\n";
    add
      "    \"table\": {\"n_vg\": %d, \"n_vd\": %d, \"gnrtbl_bytes\": %d, \
       \"marshal_bytes\": %d},\n"
      tl_n_vg tl_n_vd r.tl_gnrtbl_bytes r.tl_marshal_bytes;
    add
      "    \"marshal_ms\": %.6g, \"gnrtbl_ms\": %.6g, \"convert_ms\": %.6g,\n"
      r.tl_marshal_ms r.tl_gnrtbl_ms r.tl_convert_ms;
    add "    \"speedup_gnrtbl_vs_marshal\": %.4g,\n"
      (r.tl_marshal_ms /. r.tl_gnrtbl_ms);
    add "    \"marshal_gc_per_load\": %s,\n" (gc_obj r.tl_marshal_gc);
    add "    \"gnrtbl_gc_per_load\": %s\n" (gc_obj r.tl_gnrtbl_gc);
    add "  },\n");
  (match campaign with
  | None -> ()
  | Some r ->
    let per ms = ms *. 1e3 /. float_of_int campaign_samples in
    add "  \"campaign\": {\n";
    add "    \"samples\": %d,\n" campaign_samples;
    add
      "    \"bare_ms\": %.6g, \"journal_ms\": %.6g, \"journal_every16_ms\": \
       %.6g, \"replay_ms\": %.6g,\n"
      r.ca_bare_ms r.ca_journal_ms r.ca_batched_ms r.ca_replay_ms;
    add "    \"checkpoint_overhead_us_per_sample\": %.4g,\n"
      (per (r.ca_journal_ms -. r.ca_bare_ms));
    add "    \"batched_overhead_us_per_sample\": %.4g,\n"
      (per (r.ca_batched_ms -. r.ca_bare_ms));
    add "    \"replay_us_per_sample\": %.4g\n" (per r.ca_replay_ms);
    add "  },\n");
  (let generates, coalesced, lru_hits, requests = serve in
   add
     "  \"serve\": {\"requests\": %d, \"generates\": %d, \"coalesced_hits\": \
      %d, \"lru_hits\": %d},\n"
     requests generates coalesced lru_hits);
  (match block_rgf with
  | None -> ()
  | Some r ->
    add "  \"block_rgf\": {\n";
    add "    \"device\": {\"blocks\": %d, \"orbitals\": %d, \"energies\": %d},\n"
      block_nb block_m block_ne;
    add
      "    \"transmission\": {\"naive_ms\": %.6g, \"fast_seq_ms\": %.6g, \
       \"fast_par_ms\": %.6g, \"speedup_fast_vs_naive\": %.4g, \
       \"speedup_par_vs_seq\": %.4g},\n"
      r.br_naive_ms r.br_fast_seq_ms r.br_fast_par_ms
      (r.br_naive_ms /. r.br_fast_seq_ms)
      (r.br_fast_seq_ms /. r.br_fast_par_ms);
    add
      "    \"spectra\": {\"energies\": %d, \"naive_ms\": %.6g, \"fast_ms\": \
       %.6g, \"speedup_fast_vs_naive\": %.4g},\n"
      block_sp_ne r.br_sp_naive_ms r.br_sp_fast_ms
      (r.br_sp_naive_ms /. r.br_sp_fast_ms);
    add
      "    \"steady_state_alloc_per_energy\": {\"minor_words\": %.3g, \
       \"major_words\": %.3g, \"promoted_words\": %.3g},\n"
      r.br_minor_per_e r.br_major_per_e r.br_promoted_per_e;
    add "    \"max_rel_diff_vs_naive\": %.3g\n" r.br_max_rel_diff;
    add "  },\n");
  add "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ms, (minor, major, promoted)) ->
      add
        "    {\"name\": %S, \"ms_per_run\": %.6g, \"gc\": {\"minor_words\": \
         %.6g, \"major_words\": %.6g, \"promoted_words\": %.6g}}%s\n"
        name ms minor major promoted
        (if i = List.length kernel_times - 1 then "" else ","))
    kernel_times;
  add "  ],\n";
  add "  \"energy_loop\": [\n";
  List.iteri
    (fun i (name, seq_ms, par_ms, speedup) ->
      add
        "    {\"name\": %S, \"sequential_ms\": %.6g, \"parallel_ms\": %.6g, \
         \"speedup\": %.4g}%s\n"
        name seq_ms par_ms speedup
        (if i = List.length pairs - 1 then "" else ","))
    pairs;
  add "  ],\n";
  add "  \"obs\": %s\n" (Obs.to_json ~indent:"  " (Obs.snapshot ()));
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nbench report written to %s\n%!" path

let () =
  (* Observability defaults on in the bench harness; GNRFET_OBS=0 opts
     out (an explicit setting is honoured as-is via Obs.global's env
     default). *)
  if Sys.getenv_opt "GNRFET_OBS" = None then Obs.set_enabled Obs.global true;
  let fast = Sys.getenv_opt "GNRFET_BENCH_FAST" <> None in
  Printf.printf
    "GNRFET technology exploration - benchmark & reproduction harness\n";
  Printf.printf "device-table cache: %s\n%!" (Table_cache.cache_dir ());
  Printf.printf "domain pool width:  %d\n%!" (Parallel.num_domains ());
  Printf.printf "observability:      %s\n%!"
    (if Obs.enabled Obs.global then "on" else "off (GNRFET_OBS=0)");
  let t0 = Unix.gettimeofday () in
  if not fast then begin
    Printf.printf "\n== full reproduction of every paper table and figure ==\n%!";
    All_experiments.run_all Format.std_formatter;
    Printf.printf "\n== design-choice ablations ==\n%!";
    Ablations.print_all Format.std_formatter;
    Printf.printf "\n== extension: edge-roughness study (paper ref [17]) ==\n%!";
    List.iter
      (fun sigma ->
        let s =
          Roughness.transmission_study ~gnr_index:12 ~sigma ~corr_sites:6 ()
        in
        Printf.printf
          "  sigma = %.2f: <T> = %.3f +- %.3f (%.0f%% of ideal), Lloc ~ %s\n%!"
          sigma s.Roughness.mean_transmission s.Roughness.std_transmission
          (100. *. s.Roughness.mean_ratio)
          (if Float.is_finite s.Roughness.localization_estimate then
             Printf.sprintf "%.0f nm" (s.Roughness.localization_estimate /. 1e-9)
           else "ballistic"))
      [ 0.01; 0.03; 0.06; 0.1 ]
  end;
  (* Warm the caches the kernels rely on so Bechamel times steady-state
     behaviour rather than first-touch table generation. *)
  List.iter (fun (_, k) -> ignore (k ())) kernels;
  let kernel_times = run_benchmarks () in
  let pairs = run_energy_loop_comparison () in
  let block_rgf = run_block_rgf_comparison () in
  let table_load = run_table_load_comparison () in
  let campaign = run_campaign_comparison () in
  exercise_table_cache ();
  (* One clean serve sweep for the report's counter breakdown (the
     Bechamel kernel above times it; this run pins the counts). *)
  Printf.printf "\n== serve daemon: coalesced sweep ==\n%!";
  let serve = serve_sweep () in
  let generates, coalesced, lru_hits, requests = serve in
  Printf.printf
    "  %d requests: %d generation%s, %d coalesced, %d lru hit%s\n%!" requests
    generates
    (if generates = 1 then "" else "s")
    coalesced lru_hits
    (if lru_hits = 1 then "" else "s");
  let json_path =
    match Sys.getenv_opt "GNRFET_BENCH_JSON" with
    | Some p when p <> "" -> p
    | Some _ | None -> "BENCH_PR9.json"
  in
  write_json json_path ~domains:(Parallel.num_domains ()) ~kernel_times ~pairs
    ~block_rgf ~table_load ~campaign ~serve;
  table_load_cleanup ();
  campaign_cleanup ();
  Printf.printf "\n[bench total: %.1f s]\n" (Unix.gettimeofday () -. t0)
