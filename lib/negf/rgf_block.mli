(** Block (real-space, full atomistic basis) RGF — the reference solver the
    mode-space chain is validated against in the test suite, plus the
    Bigarray fast path production sweeps run on.

    The device is a chain of identical-size blocks with nearest-block
    coupling; leads enter through explicit self-energy blocks on the first
    and last block.

    Two implementations of the same physics live here:

    - the naive [transmission]/[spectra] path, allocating freely through
      the {!Cmatrix} API — kept as the test oracle;
    - the {!workspace}-based [transmission_into]/[spectra_into]/
      [transmission_sweep] fast path on the {!Zdense} in-place kernels —
      zero heap allocation per energy point in steady state, validated
      against the naive path to 1e-10 relative (docs/PERF.md, "block
      kernel layer"). *)

type device = {
  blocks : Cmatrix.t array;  (** on-block Hamiltonians H_ii, size m × m *)
  couplings : Cmatrix.t array;  (** H_{i,i+1}, length [blocks - 1] *)
  sigma_l : Cmatrix.t;  (** retarded lead self-energy on block 0 *)
  sigma_r : Cmatrix.t;  (** retarded lead self-energy on the last block *)
}

val transmission : ?eta:float -> device -> float -> float
(** Coherent transmission [Tr(ΓL G ΓR G†)] at the given energy (eV).
    Naive reference implementation. *)

type spectra = {
  t_coh : float;
  a1 : float array array;  (** [a1.(block).(orbital)]: source-injected
                               spectral-function diagonal, 1/eV *)
  a2 : float array array;  (** drain-injected diagonal *)
}

val spectra : ?eta:float -> device -> float -> spectra
(** Contact-resolved spectral functions by full block RGF (forward and
    backward sweeps); the local density of states per orbital is
    [(a1 + a2) / 2π].  Used to validate the mode-space charge
    integration against the atomistic reference.  Naive reference
    implementation. *)

(** {2 Workspace fast path} *)

type workspace
(** Preallocated per-worker scratch: the device mirrored into Bigarray
    storage plus every per-energy temporary of the block recursions.
    The last device vetted is cached by physical equality (per-energy
    calls on one device — the common case — skip re-validation and
    re-mirroring); per-block slot arrays grow geometrically and block
    matrices are re-created when the block size changes, so one
    workspace can serve devices of changing size.  Not thread-safe:
    use one workspace per domain (as {!transmission_sweep} does). *)

val workspace : unit -> workspace

val transmission_into : ?eta:float -> workspace -> device -> float -> float
(** [transmission_into ws dev e]: same contract as {!transmission}, on
    the in-place kernels — zero allocation per call once [ws] has seen
    [dev].  The result depends only on [(dev, e)], never on workspace
    history (every buffer is fully written before it is read). *)

val spectra_into : ?eta:float -> workspace -> device -> float -> float
(** [spectra_into ws dev e]: same contract as {!spectra}, writing the
    contact-resolved diagonals into workspace storage; returns [t_coh].
    Read the diagonals through {!a1}/{!a2}. *)

val a1 : workspace -> float array array
(** Source-injected spectral diagonals from the last {!spectra_into}
    call; valid indices are [[0, blocks) × [0, orbitals)] of that call's
    device (the arrays may be longer).  Overwritten by the next call;
    re-fetch after any call that may have grown the workspace. *)

val a2 : workspace -> float array array
(** Drain-injected counterpart of {!a1}. *)

val transmission_sweep :
  ?eta:float ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  ?ctx:Ctx.t ->
  egrid:float array ->
  (float -> device) ->
  float array
(** [transmission_sweep ~egrid device_of_energy] evaluates
    [transmission_into] at every grid point over the persistent domain
    pool (fixed chunk grid, per-slot workspaces, per-chunk counter
    flushes), returning the transmissions in grid order.  Bit-for-bit
    identical for every [GNRFET_DOMAINS] setting, including the
    sequential [parallel:false] path.  [?ctx] bundles
    [?parallel]/[?obs] defaults ({!Ctx.resolve} precedence). *)

val ideal_gnr_transmission : ?eta:float -> ?n_cells:int -> int -> float -> float
(** Transmission of an ideal (flat-potential) A-GNR of the given index,
    with semi-infinite GNR leads computed by Sancho–Rubio decimation: the
    exact staircase [T(E) = number of modes at E], used to validate both
    the band structure and the mode-space reduction. *)
