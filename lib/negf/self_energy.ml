let wideband ~gamma = { Complex.re = 0.; im = -.gamma /. 2. }

let dimer_surface ?(eta = 1e-5) ~t1 ~t2 ~onsite e =
  let open Complex in
  let z = { re = e -. onsite; im = eta } in
  (* The device attaches to the lead surface site through a [t2] bond, so
     the surface site's inward bond is [t1] and the decimation fixed point
     g = 1/(z - t1^2/(z - t2^2 g)) satisfies the quadratic
     t2^2 z g^2 - (z^2 - t1^2 + t2^2) g + z = 0.
     With eta > 0 exactly one root is retarded (Im g < 0). *)
  let t1sq = { re = t1 *. t1; im = 0. } and t2sq = { re = t2 *. t2; im = 0. } in
  let a = mul t2sq z in
  let b = neg (add (sub (mul z z) t1sq) t2sq) in
  let c = z in
  let s = sqrt (sub (mul b b) (mul (mul { re = 4.; im = 0. } a) c)) in
  let g1 = div (add (neg b) s) (mul { re = 2.; im = 0. } a) in
  let g2 = div (sub (neg b) s) (mul { re = 2.; im = 0. } a) in
  (* Retarded branch: negative imaginary part; in the gap both are nearly
     real and the physical root is the bounded one. *)
  if g1.im < -1e-16 && g2.im < -1e-16 then if norm g1 <= norm g2 then g1 else g2
  else if g1.im < g2.im then g1
  else g2

(* Sancho–Rubio decimation on the Zdense in-place kernels: the naive
   version allocated ~10 Cmatrix temporaries per iteration; here one set
   of buffers is allocated per call and every iteration runs
   allocation-free — one LU factorisation of (zI - ε), two m-RHS solves
   (X = g α, Y = g β) and four multiplies (α Y, β X, α X, β Y), against
   a Gauss–Jordan inverse plus six multiplies before. *)

let c_sancho_calls = Obs.Counter.make "self_energy.sancho_calls"

let h_sancho_iters = Obs.Histogram.make "self_energy.sancho_iterations"

let tm_sancho = Obs.Timer.make "self_energy.sancho_rubio"

let sancho_rubio ?(eta = 1e-6) ?(tol = 1e-12) ?(max_iter = 200) ~h00 ~h01 e =
  Obs.Counter.incr c_sancho_calls;
  let t0 = Obs.Timer.start tm_sancho in
  Fun.protect ~finally:(fun () -> Obs.Timer.stop tm_sancho t0) @@ fun () ->
  let n, _ = Cmatrix.dims h00 in
  let z = { Complex.re = e; im = eta } in
  let eps = Zdense.of_cmatrix h00 in
  let eps_s = Zdense.of_cmatrix h00 in
  let alpha = ref (Zdense.of_cmatrix h01) in
  let beta = ref (Zdense.create n n) in
  Zdense.adjoint_into !alpha !beta;
  let a = Zdense.create n n in
  let x = Zdense.create n n and y = Zdense.create n n in
  let t = ref (Zdense.create n n) and u = ref (Zdense.create n n) in
  let piv = Array.make n 0 in
  let rec iterate k =
    let residual = Zdense.max_abs !alpha in
    if residual < tol then Obs.Histogram.observe h_sancho_iters k
    else if k >= max_iter then
      raise
        (Numerics_error.Stalled
           { solver = "Self_energy.sancho_rubio"; iterations = k; residual })
    else begin
      (* g = (zI - ε)^-1 applied by LU solve: X = g α, Y = g β. *)
      Zdense.shift_sub_into z eps a;
      Zdense.lu_factor a piv;
      Zdense.copy_into !alpha x;
      Zdense.solve_into a piv x;
      Zdense.copy_into !beta y;
      Zdense.solve_into a piv y;
      (* ε += α g β + β g α;  ε_s += α g β. *)
      Zdense.gemm_into !alpha y !t;
      Zdense.add_into eps !t eps;
      Zdense.add_into eps_s !t eps_s;
      Zdense.gemm_into !beta x !t;
      Zdense.add_into eps !t eps;
      (* α' = α g α, β' = β g β (the old α/β feed both products, so the
         updates land in spare buffers and swap in). *)
      Zdense.gemm_into !alpha x !t;
      Zdense.gemm_into !beta y !u;
      let s = !alpha in
      alpha := !t;
      t := s;
      let s = !beta in
      beta := !u;
      u := s;
      iterate (k + 1)
    end
  in
  iterate 0;
  (* g_s = (zI - ε_s)^-1. *)
  Zdense.shift_sub_into z eps_s a;
  Zdense.lu_factor a piv;
  Zdense.inverse_into a piv x;
  Zdense.to_cmatrix x
