let wideband ~gamma = { Complex.re = 0.; im = -.gamma /. 2. }

let dimer_surface ?(eta = 1e-5) ?tol ?max_iter ~t1 ~t2 ~onsite e =
  ignore tol;
  ignore max_iter;
  let open Complex in
  let z = { re = e -. onsite; im = eta } in
  (* The device attaches to the lead surface site through a [t2] bond, so
     the surface site's inward bond is [t1] and the decimation fixed point
     g = 1/(z - t1^2/(z - t2^2 g)) satisfies the quadratic
     t2^2 z g^2 - (z^2 - t1^2 + t2^2) g + z = 0.
     With eta > 0 exactly one root is retarded (Im g < 0). *)
  let t1sq = { re = t1 *. t1; im = 0. } and t2sq = { re = t2 *. t2; im = 0. } in
  let a = mul t2sq z in
  let b = neg (add (sub (mul z z) t1sq) t2sq) in
  let c = z in
  let s = sqrt (sub (mul b b) (mul (mul { re = 4.; im = 0. } a) c)) in
  let g1 = div (add (neg b) s) (mul { re = 2.; im = 0. } a) in
  let g2 = div (sub (neg b) s) (mul { re = 2.; im = 0. } a) in
  (* Retarded branch: negative imaginary part; in the gap both are nearly
     real and the physical root is the bounded one. *)
  if g1.im < -1e-16 && g2.im < -1e-16 then if norm g1 <= norm g2 then g1 else g2
  else if g1.im < g2.im then g1
  else g2

let sancho_rubio ?(eta = 1e-6) ?(tol = 1e-12) ?(max_iter = 200) ~h00 ~h01 e =
  let n, _ = Cmatrix.dims h00 in
  let energy = Cmatrix.scale { Complex.re = e; im = eta } (Cmatrix.identity n) in
  let rec loop eps eps_s alpha beta k =
    if Cmatrix.max_abs alpha < tol then
      Cmatrix.inverse (Cmatrix.sub energy eps_s)
    else if k >= max_iter then
      raise
        (Numerics_error.Stalled
           {
             solver = "Self_energy.sancho_rubio";
             iterations = k;
             residual = Cmatrix.max_abs alpha;
           })
    else begin
      let g = Cmatrix.inverse (Cmatrix.sub energy eps) in
      let agb = Cmatrix.mul alpha (Cmatrix.mul g beta) in
      let bga = Cmatrix.mul beta (Cmatrix.mul g alpha) in
      let eps' = Cmatrix.add eps (Cmatrix.add agb bga) in
      let eps_s' = Cmatrix.add eps_s agb in
      let alpha' = Cmatrix.mul alpha (Cmatrix.mul g alpha) in
      let beta' = Cmatrix.mul beta (Cmatrix.mul g beta) in
      loop eps' eps_s' alpha' beta' (k + 1)
    end
  in
  loop h00 h00 h01 (Cmatrix.adjoint h01) 0
