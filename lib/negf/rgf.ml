type chain = {
  onsite : float array;
  hopping : float array;
  sigma_l : Complex.t;
  sigma_r : Complex.t;
}

type spectra = { t_coh : float; a1 : float array; a2 : float array }

let gamma_of_sigma s = -2. *. s.Complex.im

let check chain =
  let n = Array.length chain.onsite in
  if n < 2 then invalid_arg "Rgf: chain needs at least two sites";
  if Array.length chain.hopping <> n - 1 then
    invalid_arg "Rgf: hopping length must be n-1";
  n

(* All complex arithmetic below is hand-rolled on float pairs: this is the
   innermost loop of every device simulation. *)

(* 1/(zr + i zi) *)
let inv_re zr zi = let d = (zr *. zr) +. (zi *. zi) in zr /. d

let inv_im zr zi = let d = (zr *. zr) +. (zi *. zi) in -.zi /. d

(* Preallocated per-worker scratch: [spectra] allocates ten length-n
   arrays per energy point, which dominates the allocation rate of an
   SCF sweep (thousands of energies per charge evaluation).  A workspace
   holds the Green's-function sweeps, the first/last-column propagations
   and the output diagonals, grown geometrically on demand; the arrays
   may be longer than the current chain, so every kernel below indexes
   strictly through [0, n).

   The workspace also caches the last chain vetted by [check] (physical
   equality): per-energy calls on the same chain — the common case, an
   SCF iteration walks a whole energy grid with one chain — skip the
   redundant length re-validation while malformed chains still fail with
   the same [Invalid_argument] on first contact. *)
type workspace = {
  mutable glr : float array;
  mutable gli : float array;
  mutable grr : float array;
  mutable gri : float array;
  mutable c0r : float array;
  mutable c0i : float array;
  mutable cnr : float array;
  mutable cni : float array;
  mutable wa1 : float array;
  mutable wa2 : float array;
  mutable validated : chain option;
}

let workspace ?(hint = 0) () =
  let mk () = Array.make (max hint 0) 0. in
  {
    glr = mk ();
    gli = mk ();
    grr = mk ();
    gri = mk ();
    c0r = mk ();
    c0i = mk ();
    cnr = mk ();
    cni = mk ();
    wa1 = mk ();
    wa2 = mk ();
    validated = None;
  }

let a1 ws = ws.wa1

let a2 ws = ws.wa2

let ensure_capacity ws n =
  if Array.length ws.glr < n then begin
    let cap = max n (2 * Array.length ws.glr) in
    ws.glr <- Array.make cap 0.;
    ws.gli <- Array.make cap 0.;
    ws.grr <- Array.make cap 0.;
    ws.gri <- Array.make cap 0.;
    ws.c0r <- Array.make cap 0.;
    ws.c0i <- Array.make cap 0.;
    ws.cnr <- Array.make cap 0.;
    ws.cni <- Array.make cap 0.;
    ws.wa1 <- Array.make cap 0.;
    ws.wa2 <- Array.make cap 0.
  end

let check_cached ws chain =
  match ws.validated with
  | Some c when c == chain -> Array.length chain.onsite
  | Some _ | None ->
    let n = check chain in
    ensure_capacity ws n;
    ws.validated <- Some chain;
    n

(* Core spectra kernel writing into caller-provided scratch (each array
   at least length [n]); returns the coherent transmission. *)
let spectra_core ~eta ~n ~glr ~gli ~grr ~gri ~c0r ~c0i ~cnr ~cni ~a1 ~a2 chain e =
  let u = chain.onsite and h = chain.hopping in
  let slr = chain.sigma_l.Complex.re and sli = chain.sigma_l.Complex.im in
  let srr = chain.sigma_r.Complex.re and sri = chain.sigma_r.Complex.im in
  (* Left-connected Green's functions gL_i. *)
  let zr0 = e -. u.(0) -. slr and zi0 = eta -. sli in
  glr.(0) <- inv_re zr0 zi0;
  gli.(0) <- inv_im zr0 zi0;
  for i = 1 to n - 1 do
    let t2 = h.(i - 1) *. h.(i - 1) in
    let zr = e -. u.(i) -. (t2 *. glr.(i - 1)) in
    let zi = eta -. (t2 *. gli.(i - 1)) in
    let zr = if i = n - 1 then zr -. srr else zr in
    let zi = if i = n - 1 then zi -. sri else zi in
    glr.(i) <- inv_re zr zi;
    gli.(i) <- inv_im zr zi
  done;
  (* Right-connected Green's functions gR_i. *)
  let zrn = e -. u.(n - 1) -. srr and zin = eta -. sri in
  grr.(n - 1) <- inv_re zrn zin;
  gri.(n - 1) <- inv_im zrn zin;
  for i = n - 2 downto 0 do
    let t2 = h.(i) *. h.(i) in
    let zr = e -. u.(i) -. (t2 *. grr.(i + 1)) in
    let zi = eta -. (t2 *. gri.(i + 1)) in
    let zr = if i = 0 then zr -. slr else zr in
    let zi = if i = 0 then zi -. sli else zi in
    grr.(i) <- inv_re zr zi;
    gri.(i) <- inv_im zr zi
  done;
  (* First column of the full G: G_{i,0} = gR_i * h_{i-1} * G_{i-1,0},
     G_{0,0} fully-connected (gR_0 already includes sigma_l). *)
  c0r.(0) <- grr.(0);
  c0i.(0) <- gri.(0);
  for i = 1 to n - 1 do
    let ar = grr.(i) *. h.(i - 1) and ai = gri.(i) *. h.(i - 1) in
    c0r.(i) <- (ar *. c0r.(i - 1)) -. (ai *. c0i.(i - 1));
    c0i.(i) <- (ar *. c0i.(i - 1)) +. (ai *. c0r.(i - 1))
  done;
  (* Last column: G_{i,n-1} = gL_i * h_i * G_{i+1,n-1}, with the fully
     connected G_{n-1,n-1} = gL_{n-1} (left sweep already has sigma_r). *)
  cnr.(n - 1) <- glr.(n - 1);
  cni.(n - 1) <- gli.(n - 1);
  for i = n - 2 downto 0 do
    let ar = glr.(i) *. h.(i) and ai = gli.(i) *. h.(i) in
    cnr.(i) <- (ar *. cnr.(i + 1)) -. (ai *. cni.(i + 1));
    cni.(i) <- (ar *. cni.(i + 1)) +. (ai *. cnr.(i + 1))
  done;
  let gamma_l = gamma_of_sigma chain.sigma_l in
  let gamma_r = gamma_of_sigma chain.sigma_r in
  for i = 0 to n - 1 do
    a1.(i) <- gamma_l *. ((c0r.(i) *. c0r.(i)) +. (c0i.(i) *. c0i.(i)));
    a2.(i) <- gamma_r *. ((cnr.(i) *. cnr.(i)) +. (cni.(i) *. cni.(i)))
  done;
  let g0n2 = (cnr.(0) *. cnr.(0)) +. (cni.(0) *. cni.(0)) in
  gamma_l *. gamma_r *. g0n2

let spectra_into ?(eta = 1e-6) ws chain e =
  let n = check_cached ws chain in
  spectra_core ~eta ~n ~glr:ws.glr ~gli:ws.gli ~grr:ws.grr ~gri:ws.gri
    ~c0r:ws.c0r ~c0i:ws.c0i ~cnr:ws.cnr ~cni:ws.cni ~a1:ws.wa1 ~a2:ws.wa2
    chain e

let spectra ?(eta = 1e-6) chain e =
  let n = check chain in
  let glr = Array.make n 0. and gli = Array.make n 0. in
  let grr = Array.make n 0. and gri = Array.make n 0. in
  let c0r = Array.make n 0. and c0i = Array.make n 0. in
  let cnr = Array.make n 0. and cni = Array.make n 0. in
  let a1 = Array.make n 0. and a2 = Array.make n 0. in
  let t_coh =
    spectra_core ~eta ~n ~glr ~gli ~grr ~gri ~c0r ~c0i ~cnr ~cni ~a1 ~a2 chain e
  in
  { t_coh; a1; a2 }

(* Single left sweep, propagating the (0, i) matrix element product:
   allocation-free already, shared by both transmission entry points. *)
let transmission_core ~eta ~n chain e =
  let u = chain.onsite and h = chain.hopping in
  let slr = chain.sigma_l.Complex.re and sli = chain.sigma_l.Complex.im in
  let srr = chain.sigma_r.Complex.re and sri = chain.sigma_r.Complex.im in
  let zr0 = e -. u.(0) -. slr and zi0 = eta -. sli in
  let glr = ref (inv_re zr0 zi0) and gli = ref (inv_im zr0 zi0) in
  (* pr + i pi accumulates prod_{j<i} (gL_j h_j). *)
  let pr = ref !glr and pi = ref !gli in
  for i = 1 to n - 1 do
    let t2 = h.(i - 1) *. h.(i - 1) in
    let zr = e -. u.(i) -. (t2 *. !glr) in
    let zi = eta -. (t2 *. !gli) in
    let zr = if i = n - 1 then zr -. srr else zr in
    let zi = if i = n - 1 then zi -. sri else zi in
    glr := inv_re zr zi;
    gli := inv_im zr zi;
    (* Multiply the running product by h_{i-1}, then (at the end) by the
       fully-connected G_nn; mid-chain we fold in gL_i progressively:
       G_{0,n-1} = (prod_{i<n-1} gL_i h_i) * G_{n-1,n-1}; our loop keeps
       prod gL h gL h ... by multiplying h then gL each step. *)
    let qr = !pr *. h.(i - 1) in
    let qi = !pi *. h.(i - 1) in
    pr := (qr *. !glr) -. (qi *. !gli);
    pi := (qr *. !gli) +. (qi *. !glr)
  done;
  let gamma_l = gamma_of_sigma chain.sigma_l in
  let gamma_r = gamma_of_sigma chain.sigma_r in
  gamma_l *. gamma_r *. ((!pr *. !pr) +. (!pi *. !pi))

let transmission ?(eta = 1e-6) chain e =
  let n = check chain in
  transmission_core ~eta ~n chain e

let transmission_into ?(eta = 1e-6) ws chain e =
  let n = check_cached ws chain in
  transmission_core ~eta ~n chain e
