(** Scalar recursive Green's function (RGF) solver for 1D mode-space chains.

    The device Hamiltonian is a tridiagonal chain: site energies
    [onsite.(i)] (local mid-gap + subband structure enters through the
    alternating hoppings), bonds [hopping.(i)] between sites [i] and
    [i+1], and complex contact self-energies attached to the first and
    last site.  O(n) per energy point. *)

type chain = {
  onsite : float array;  (** length n, eV *)
  hopping : float array;  (** length n-1, eV *)
  sigma_l : Complex.t;  (** retarded self-energy on site 0 *)
  sigma_r : Complex.t;  (** retarded self-energy on site n-1 *)
}

val gamma_of_sigma : Complex.t -> float
(** Broadening [Γ = i (Σ - Σ†) = -2 Im Σ]. *)

val transmission : ?eta:float -> chain -> float -> float
(** [transmission chain e]: coherent transmission at energy [e] (eV);
    [eta] (default 1e-6 eV) is the numerical broadening. *)

type spectra = {
  t_coh : float;  (** transmission *)
  a1 : float array;  (** source-injected spectral function diagonal, 1/eV *)
  a2 : float array;  (** drain-injected spectral function diagonal, 1/eV *)
}

val spectra : ?eta:float -> chain -> float -> spectra
(** Transmission and both contact-resolved spectral function diagonals in a
    single O(n) pass.  Satisfies [t_coh = ΓR a2 ... ] sum rules tested in
    the suite; the local density of states per site is
    [(a1 + a2) / 2π]. *)

(** {2 Allocation-free workspace paths}

    [spectra] allocates ten length-n arrays per energy point; the
    energy-parallel observables instead give each worker one {!workspace}
    and reuse it across its whole energy chunk. *)

type workspace
(** Preallocated RGF scratch (Green's-function sweeps, column
    propagations, spectral diagonals).  Grows on demand; safe to reuse
    across chains of different lengths.  Not thread-safe: one workspace
    per worker. *)

val workspace : ?hint:int -> unit -> workspace
(** Fresh workspace, optionally pre-sized for chains of [hint] sites. *)

val spectra_into : ?eta:float -> workspace -> chain -> float -> float
(** [spectra_into ws chain e] computes the same quantities as {!spectra}
    without allocating: the return value is [t_coh] and the spectral
    diagonals are left in [a1 ws] / [a2 ws].  Chain validation is cached
    per workspace (physical equality on [chain]), so per-energy calls on
    one chain validate it once; a malformed chain raises
    [Invalid_argument] exactly as {!spectra} does. *)

val a1 : workspace -> float array
(** Source-injected spectral diagonal of the last {!spectra_into} call,
    valid on indices [0, n) until the next call on this workspace.  The
    array may be longer than the chain and is re-allocated when the
    workspace grows — re-fetch it after each [spectra_into]. *)

val a2 : workspace -> float array
(** Drain-injected counterpart of {!a1}. *)

val transmission_into : ?eta:float -> workspace -> chain -> float -> float
(** {!transmission} through the workspace's cached chain validation (the
    transmission sweep itself is already allocation-free). *)
