type device = {
  blocks : Cmatrix.t array;
  couplings : Cmatrix.t array;
  sigma_l : Cmatrix.t;
  sigma_r : Cmatrix.t;
}

let gamma_of sigma =
  (* Γ = i (Σ - Σ†) *)
  Cmatrix.scale { Complex.re = 0.; im = 1. } (Cmatrix.sub sigma (Cmatrix.adjoint sigma))

(* ------------------------------------------------------------------ *)
(* Naive reference path.  Allocates freely through the Cmatrix API —
   kept verbatim as the oracle the Zdense fast path below is tested
   against (1e-10 relative, test/test_negf.ml); the hot-alloc lint rule
   is suppressed line by line for exactly that reason.  Production
   sweeps use [transmission_into]/[spectra_into]/[transmission_sweep]. *)

let transmission ?(eta = 1e-6) dev e =
  let nb = Array.length dev.blocks in
  if nb < 1 then invalid_arg "Rgf_block.transmission: empty device";
  if Array.length dev.couplings <> nb - 1 then
    invalid_arg "Rgf_block.transmission: coupling count mismatch";
  let m, _ = Cmatrix.dims dev.blocks.(0) in
  let z = { Complex.re = e; im = eta } in
  let zi = Cmatrix.scale z (Cmatrix.identity m) in
  let a i =
    let base = Cmatrix.sub zi dev.blocks.(i) in
    let base = if i = 0 then Cmatrix.sub base dev.sigma_l else base in
    if i = nb - 1 then Cmatrix.sub base dev.sigma_r else base
  in
  (* Left sweep of left-connected Green's functions, tracking the
     propagator product G_{0,n-1}. *)
  let gl = ref (Cmatrix.inverse (a 0)) in
  let prod = ref !gl in
  for i = 1 to nb - 1 do
    let h = dev.couplings.(i - 1) in
    (* gnrlint: allow hot-alloc — naive reference oracle *)
    let hdag = Cmatrix.adjoint h in
    (* gnrlint: allow hot-alloc *)
    let self = Cmatrix.mul hdag (Cmatrix.mul !gl h) in
    (* gnrlint: allow hot-alloc *)
    gl := Cmatrix.inverse (Cmatrix.sub (a i) self);
    (* gnrlint: allow hot-alloc *)
    prod := Cmatrix.mul !prod (Cmatrix.mul h !gl)
  done;
  let g0n = !prod in
  let gl_mat = gamma_of dev.sigma_l and gr_mat = gamma_of dev.sigma_r in
  let t =
    Cmatrix.trace
      (Cmatrix.mul gl_mat (Cmatrix.mul g0n (Cmatrix.mul gr_mat (Cmatrix.adjoint g0n))))
  in
  t.Complex.re

type spectra = {
  t_coh : float;
  a1 : float array array;
  a2 : float array array;
}

let spectra ?(eta = 1e-6) dev e =
  let nb = Array.length dev.blocks in
  if nb < 1 then invalid_arg "Rgf_block.spectra: empty device";
  let m, _ = Cmatrix.dims dev.blocks.(0) in
  let z = { Complex.re = e; im = eta } in
  let zi = Cmatrix.scale z (Cmatrix.identity m) in
  let a i =
    let base = Cmatrix.sub zi dev.blocks.(i) in
    let base = if i = 0 then Cmatrix.sub base dev.sigma_l else base in
    if i = nb - 1 then Cmatrix.sub base dev.sigma_r else base
  in
  (* Left- and right-connected Green's functions. *)
  let gl = Array.make nb (Cmatrix.identity m) in
  gl.(0) <- Cmatrix.inverse (a 0);
  for i = 1 to nb - 1 do
    let h = dev.couplings.(i - 1) in
    (* gnrlint: allow hot-alloc — naive reference oracle *)
    let hdag = Cmatrix.adjoint h in
    (* gnrlint: allow hot-alloc *)
    let self = Cmatrix.mul hdag (Cmatrix.mul gl.(i - 1) h) in
    (* gnrlint: allow hot-alloc *)
    gl.(i) <- Cmatrix.inverse (Cmatrix.sub (a i) self)
  done;
  let gr = Array.make nb (Cmatrix.identity m) in
  gr.(nb - 1) <- Cmatrix.inverse (a (nb - 1));
  for i = nb - 2 downto 0 do
    let h = dev.couplings.(i) in
    (* gnrlint: allow hot-alloc — naive reference oracle *)
    let hdag = Cmatrix.adjoint h in
    (* gnrlint: allow hot-alloc *)
    let self = Cmatrix.mul h (Cmatrix.mul gr.(i + 1) hdag) in
    (* gnrlint: allow hot-alloc *)
    gr.(i) <- Cmatrix.inverse (Cmatrix.sub (a i) self)
  done;
  (* First-column blocks G_{i,0}: G_{0,0} fully connected via gr.(0)'s
     complement; build with the standard relations. *)
  let g00 =
    let base = a 0 in
    let self =
      if nb > 1 then
        let h = dev.couplings.(0) in
        Cmatrix.mul h (Cmatrix.mul gr.(1) (Cmatrix.adjoint h))
      else Cmatrix.create m m
    in
    Cmatrix.inverse (Cmatrix.sub base self)
  in
  let col0 = Array.make nb g00 in
  for i = 1 to nb - 1 do
    let h = dev.couplings.(i - 1) in
    (* G_{i,0} = gR_i H_{i,i-1} G_{i-1,0}; H_{i,i-1} = H_{i-1,i}^dag. *)
    (* gnrlint: allow hot-alloc — naive reference oracle *)
    col0.(i) <- Cmatrix.mul gr.(i) (Cmatrix.mul (Cmatrix.adjoint h) col0.(i - 1))
  done;
  (* Last-column blocks G_{i,n-1}. *)
  let gnn =
    let base = a (nb - 1) in
    let self =
      if nb > 1 then
        let h = dev.couplings.(nb - 2) in
        Cmatrix.mul (Cmatrix.adjoint h) (Cmatrix.mul gl.(nb - 2) h)
      else Cmatrix.create m m
    in
    Cmatrix.inverse (Cmatrix.sub base self)
  in
  let coln = Array.make nb gnn in
  for i = nb - 2 downto 0 do
    let h = dev.couplings.(i) in
    (* gnrlint: allow hot-alloc — naive reference oracle *)
    coln.(i) <- Cmatrix.mul gl.(i) (Cmatrix.mul h coln.(i + 1))
  done;
  let gamma_l = gamma_of dev.sigma_l and gamma_r = gamma_of dev.sigma_r in
  let diag_of g gamma =
    (* diag(G Gamma G^dag), real and non-negative. *)
    let prod = Cmatrix.mul g (Cmatrix.mul gamma (Cmatrix.adjoint g)) in
    Array.map (fun z -> z.Complex.re) (Cmatrix.diag prod)
  in
  let a1 = Array.map (fun g -> diag_of g gamma_l) col0 in
  let a2 = Array.map (fun g -> diag_of g gamma_r) coln in
  let t =
    Cmatrix.trace
      (Cmatrix.mul gamma_l
         (Cmatrix.mul coln.(0) (Cmatrix.mul gamma_r (Cmatrix.adjoint coln.(0)))))
  in
  { t_coh = t.Complex.re; a1; a2 }

(* ------------------------------------------------------------------ *)
(* Fast path: the same physics on the Zdense in-place kernels.

   The workspace mirrors the device into Bigarray storage once per
   device (cached by physical equality, like [Rgf.workspace]) and holds
   every per-energy temporary, so a steady-state sweep over one device
   allocates nothing per energy point.  The transmission recursion is
   also restructured to avoid per-block explicit inverses: with
   Y_i = gL_i H_i (one LU solve against the factored effective block)
   the propagator product obeys Q_{i+1} = Q_i Y_i and the inner
   self-energy is H_i† Y_i, so each interior block costs one LU
   factorisation plus three m×m multiplies — against four multiplies
   plus a full Gauss–Jordan inverse on the naive path. *)

type workspace = {
  mutable validated : device option;
  mutable nb : int;
  mutable m : int;
  (* Device mirror (Zdense copies of blocks/couplings/self-energies and
     the broadening matrices Γ = i(Σ - Σ†), rebuilt on cache miss). *)
  mutable dblocks : Zdense.t array;
  mutable dcoup : Zdense.t array;
  mutable dsig_l : Zdense.t;
  mutable dsig_r : Zdense.t;
  mutable dgam_l : Zdense.t;
  mutable dgam_r : Zdense.t;
  (* Adjoints H_i† of the couplings, mirrored once per device so the hot
     recursions run plain [gemm_into] instead of the slower adjoint-flag
     kernels (same products in the same order: bit-identical results). *)
  mutable dcoup_adj : Zdense.t array;
  (* m×m scratch shared by every kernel (contents are overwritten before
     use: results never depend on workspace history). *)
  mutable aeff : Zdense.t;
  mutable y : Zdense.t;
  mutable q : Zdense.t;
  mutable self : Zdense.t;
  mutable t1 : Zdense.t;
  mutable t2 : Zdense.t;
  mutable piv : int array;
  (* Per-block spectra storage, allocated on first [spectra_into]. *)
  mutable sgl : Zdense.t array;
  mutable sgr : Zdense.t array;
  mutable scol0 : Zdense.t array;
  mutable scoln : Zdense.t array;
  mutable wa1 : float array array;
  mutable wa2 : float array array;
  (* LU factorisations since creation (flushed to obs per sweep chunk). *)
  mutable lu_count : int;
}

let workspace () =
  let z = Zdense.create 0 0 in
  {
    validated = None;
    nb = 0;
    m = -1;
    dblocks = [||];
    dcoup = [||];
    dcoup_adj = [||];
    dsig_l = z;
    dsig_r = z;
    dgam_l = z;
    dgam_r = z;
    aeff = z;
    y = z;
    q = z;
    self = z;
    t1 = z;
    t2 = z;
    piv = [||];
    sgl = [||];
    sgr = [||];
    scol0 = [||];
    scoln = [||];
    wa1 = [||];
    wa2 = [||];
    lu_count = 0;
  }

let a1 ws = ws.wa1

let a2 ws = ws.wa2

let validate dev =
  let nb = Array.length dev.blocks in
  if nb < 1 then invalid_arg "Rgf_block: empty device";
  if Array.length dev.couplings <> nb - 1 then
    invalid_arg "Rgf_block: coupling count mismatch";
  let m, mc = Cmatrix.dims dev.blocks.(0) in
  if m <> mc then invalid_arg "Rgf_block: blocks must be square";
  Array.iter
    (fun b -> if Cmatrix.dims b <> (m, m) then invalid_arg "Rgf_block: block dims differ")
    dev.blocks;
  Array.iter
    (fun h ->
      if Cmatrix.dims h <> (m, m) then invalid_arg "Rgf_block: coupling dims differ")
    dev.couplings;
  if Cmatrix.dims dev.sigma_l <> (m, m) || Cmatrix.dims dev.sigma_r <> (m, m) then
    invalid_arg "Rgf_block: self-energy dims differ";
  (nb, m)

(* Grow [arr] to at least [n] slots of fresh m×m matrices, geometrically
   (slots beyond the current device are kept for later reuse). *)
let grow_slots arr n m =
  let len = Array.length arr in
  if len >= n then arr
  else begin
    let cap = max n (2 * len) in
    Array.init cap (fun i -> if i < len then arr.(i) else Zdense.create m m)
  end

(* Γ = i (Σ - Σ†) into [dst], using [tmp] as scratch. *)
let gamma_into ~tmp dsig dst =
  Zdense.adjoint_into dsig tmp;
  Zdense.sub_into dsig tmp tmp;
  Zdense.scale_into { Complex.re = 0.; im = 1. } tmp dst

let ensure_device ws dev =
  match ws.validated with
  | Some d when d == dev -> ()
  | Some _ | None ->
    let nb, m = validate dev in
    if m <> ws.m then begin
      (* Block size changed: every m×m buffer is re-created at the new
         exact size (per-block slot arrays restart empty and regrow). *)
      let mk () = Zdense.create m m in
      ws.dsig_l <- mk ();
      ws.dsig_r <- mk ();
      ws.dgam_l <- mk ();
      ws.dgam_r <- mk ();
      ws.aeff <- mk ();
      ws.y <- mk ();
      ws.q <- mk ();
      ws.self <- mk ();
      ws.t1 <- mk ();
      ws.t2 <- mk ();
      ws.piv <- Array.make m 0;
      ws.dblocks <- [||];
      ws.dcoup <- [||];
      ws.dcoup_adj <- [||];
      ws.sgl <- [||];
      ws.sgr <- [||];
      ws.scol0 <- [||];
      ws.scoln <- [||];
      ws.wa1 <- [||];
      ws.wa2 <- [||];
      ws.m <- m
    end;
    ws.dblocks <- grow_slots ws.dblocks nb m;
    ws.dcoup <- grow_slots ws.dcoup (max 0 (nb - 1)) m;
    ws.dcoup_adj <- grow_slots ws.dcoup_adj (max 0 (nb - 1)) m;
    for i = 0 to nb - 1 do
      Zdense.of_cmatrix_into dev.blocks.(i) ws.dblocks.(i)
    done;
    for i = 0 to nb - 2 do
      Zdense.of_cmatrix_into dev.couplings.(i) ws.dcoup.(i);
      Zdense.adjoint_into ws.dcoup.(i) ws.dcoup_adj.(i)
    done;
    Zdense.of_cmatrix_into dev.sigma_l ws.dsig_l;
    Zdense.of_cmatrix_into dev.sigma_r ws.dsig_r;
    gamma_into ~tmp:ws.t1 ws.dsig_l ws.dgam_l;
    gamma_into ~tmp:ws.t1 ws.dsig_r ws.dgam_r;
    ws.nb <- nb;
    ws.validated <- Some dev

(* aeff = (e + iη) I - H_i - Σ_L[i=0] - Σ_R[i=nb-1], the same effective
   block the naive [a i] builds. *)
let build_aeff ws z i =
  Zdense.shift_sub_into z ws.dblocks.(i) ws.aeff;
  if i = 0 then Zdense.sub_into ws.aeff ws.dsig_l ws.aeff;
  if i = ws.nb - 1 then Zdense.sub_into ws.aeff ws.dsig_r ws.aeff

let factor_aeff ws =
  Zdense.lu_factor ws.aeff ws.piv;
  ws.lu_count <- ws.lu_count + 1

let transmission_into ?(eta = 1e-6) ws dev e =
  ensure_device ws dev;
  let nb = ws.nb in
  let z = { Complex.re = e; im = eta } in
  build_aeff ws z 0;
  factor_aeff ws;
  (* After the sweep [ws.q] holds the propagator G_{0,nb-1}. *)
  if nb = 1 then Zdense.inverse_into ws.aeff ws.piv ws.q
  else begin
    (* Y_0 = gL_0 H_0 by LU solve; Q_1 = Y_0; inner Σ = H_0† Y_0. *)
    Zdense.copy_into ws.dcoup.(0) ws.y;
    Zdense.solve_into ws.aeff ws.piv ws.y;
    Zdense.copy_into ws.y ws.q;
    Zdense.gemm_into ws.dcoup_adj.(0) ws.y ws.self;
    for i = 1 to nb - 2 do
      build_aeff ws z i;
      Zdense.sub_into ws.aeff ws.self ws.aeff;
      factor_aeff ws;
      Zdense.copy_into ws.dcoup.(i) ws.y;
      Zdense.solve_into ws.aeff ws.piv ws.y;
      Zdense.gemm_into ws.dcoup_adj.(i) ws.y ws.self;
      Zdense.gemm_into ws.q ws.y ws.t1;
      let t = ws.q in
      ws.q <- ws.t1;
      ws.t1 <- t
    done;
    build_aeff ws z (nb - 1);
    Zdense.sub_into ws.aeff ws.self ws.aeff;
    factor_aeff ws;
    Zdense.inverse_into ws.aeff ws.piv ws.t1;
    Zdense.gemm_into ws.q ws.t1 ws.t2;
    let t = ws.q in
    ws.q <- ws.t2;
    ws.t2 <- t
  end;
  (* T = Tr(ΓL G ΓR G†) = Re <ΓL G ΓR, G> without forming the adjoint. *)
  Zdense.gemm_into ws.dgam_l ws.q ws.t1;
  Zdense.gemm_into ws.t1 ws.dgam_r ws.y;
  Zdense.re_inner ws.y ws.q

let ensure_spectra ws =
  let nb = ws.nb and m = ws.m in
  ws.sgl <- grow_slots ws.sgl nb m;
  ws.sgr <- grow_slots ws.sgr nb m;
  ws.scol0 <- grow_slots ws.scol0 nb m;
  ws.scoln <- grow_slots ws.scoln nb m;
  if Array.length ws.wa1 < nb || (nb > 0 && Array.length ws.wa1.(0) < m) then begin
    ws.wa1 <- Array.init (max nb (Array.length ws.wa1)) (fun _ -> Array.make m 0.);
    ws.wa2 <- Array.init (max nb (Array.length ws.wa2)) (fun _ -> Array.make m 0.)
  end

let spectra_into ?(eta = 1e-6) ws dev e =
  ensure_device ws dev;
  ensure_spectra ws;
  let nb = ws.nb in
  let z = { Complex.re = e; im = eta } in
  (* Left-connected gL_i, mirroring the naive association
     Σ = H† (gL H) so the two paths agree to rounding. *)
  build_aeff ws z 0;
  factor_aeff ws;
  Zdense.inverse_into ws.aeff ws.piv ws.sgl.(0);
  for i = 1 to nb - 1 do
    let h = ws.dcoup.(i - 1) in
    Zdense.gemm_into ws.sgl.(i - 1) h ws.t1;
    Zdense.gemm_into ws.dcoup_adj.(i - 1) ws.t1 ws.self;
    build_aeff ws z i;
    Zdense.sub_into ws.aeff ws.self ws.aeff;
    factor_aeff ws;
    Zdense.inverse_into ws.aeff ws.piv ws.sgl.(i)
  done;
  (* Right-connected gR_i: Σ = H (gR H†). *)
  build_aeff ws z (nb - 1);
  factor_aeff ws;
  Zdense.inverse_into ws.aeff ws.piv ws.sgr.(nb - 1);
  for i = nb - 2 downto 0 do
    let h = ws.dcoup.(i) in
    Zdense.gemm_into ws.sgr.(i + 1) ws.dcoup_adj.(i) ws.t1;
    Zdense.gemm_into h ws.t1 ws.self;
    build_aeff ws z i;
    Zdense.sub_into ws.aeff ws.self ws.aeff;
    factor_aeff ws;
    Zdense.inverse_into ws.aeff ws.piv ws.sgr.(i)
  done;
  (* First column G_{i,0}. *)
  build_aeff ws z 0;
  if nb > 1 then begin
    let h = ws.dcoup.(0) in
    Zdense.gemm_into ws.sgr.(1) ws.dcoup_adj.(0) ws.t1;
    Zdense.gemm_into h ws.t1 ws.self;
    Zdense.sub_into ws.aeff ws.self ws.aeff
  end;
  factor_aeff ws;
  Zdense.inverse_into ws.aeff ws.piv ws.scol0.(0);
  for i = 1 to nb - 1 do
    Zdense.gemm_into ws.dcoup_adj.(i - 1) ws.scol0.(i - 1) ws.t1;
    Zdense.gemm_into ws.sgr.(i) ws.t1 ws.scol0.(i)
  done;
  (* Last column G_{i,nb-1}. *)
  build_aeff ws z (nb - 1);
  if nb > 1 then begin
    let h = ws.dcoup.(nb - 2) in
    Zdense.gemm_into ws.sgl.(nb - 2) h ws.t1;
    Zdense.gemm_into ws.dcoup_adj.(nb - 2) ws.t1 ws.self;
    Zdense.sub_into ws.aeff ws.self ws.aeff
  end;
  factor_aeff ws;
  Zdense.inverse_into ws.aeff ws.piv ws.scoln.(nb - 1);
  for i = nb - 2 downto 0 do
    let h = ws.dcoup.(i) in
    Zdense.gemm_into h ws.scoln.(i + 1) ws.t1;
    Zdense.gemm_into ws.sgl.(i) ws.t1 ws.scoln.(i)
  done;
  (* Contact-resolved diagonals: a1 = diag(G_{i,0} ΓL G_{i,0}†),
     a2 = diag(G_{i,nb-1} ΓR G_{i,nb-1}†). *)
  for i = 0 to nb - 1 do
    Zdense.gemm_into ws.scol0.(i) ws.dgam_l ws.t1;
    Zdense.re_inner_rows ws.t1 ws.scol0.(i) ws.wa1.(i);
    Zdense.gemm_into ws.scoln.(i) ws.dgam_r ws.t1;
    Zdense.re_inner_rows ws.t1 ws.scoln.(i) ws.wa2.(i)
  done;
  (* t_coh = Tr(ΓL G_{0,nb-1} ΓR G_{0,nb-1}†). *)
  Zdense.gemm_into ws.dgam_l ws.scoln.(0) ws.t1;
  Zdense.gemm_into ws.t1 ws.dgam_r ws.t2;
  Zdense.re_inner ws.t2 ws.scoln.(0)

(* ------------------------------------------------------------------ *)
(* Energy-parallel sweep over the persistent domain pool: fixed chunk
   grid (depends only on the grid length), per-slot workspaces, chunks
   writing disjoint ranges of the output — bit-for-bit identical for
   every GNRFET_DOMAINS setting (docs/PERF.md).  Instrumentation stays
   at the chunk level so the per-energy loop touches no clock. *)

let domains_of parallel = if parallel then None else Some 1

let transmission_sweep ?eta ?parallel ?obs ?ctx ~egrid device_of_energy =
  let c = Ctx.resolve ?ctx ?parallel ?obs () in
  let parallel = c.Ctx.parallel and obs = c.Ctx.obs in
  let tm = Obs.Timer.make ~obs "rgf_block.transmission_sweep" in
  let c_energies = Obs.Counter.make ~obs "rgf_block.transmission_energies" in
  let c_lu = Obs.Counter.make ~obs "rgf_block.lu_factorizations" in
  let t0 = Obs.Timer.start tm in
  Fun.protect ~finally:(fun () -> Obs.Timer.stop tm t0) @@ fun () ->
  let ne = Array.length egrid in
  let out = Array.make (max ne 0) 0. in
  (* Chunks write disjoint index ranges of [out].  gnrlint: allow-shared *)
  ignore
    (Parallel.map_reduce ?domains:(domains_of parallel) ~n:ne
       ~worker:(fun _ -> workspace ())
       ~body:(fun ws ~lo ~hi ->
         Obs.Counter.add c_energies (hi - lo);
         let lu0 = ws.lu_count in
         for k = lo to hi - 1 do
           out.(k) <- transmission_into ?eta ws (device_of_energy egrid.(k)) egrid.(k)
         done;
         Obs.Counter.add c_lu (ws.lu_count - lu0))
       ~combine:(fun () () -> ())
       ());
  out

(* ------------------------------------------------------------------ *)

let ideal_gnr_device ?(n_cells = 12) n ~device_of_energy:e =
  let tb = Tight_binding.make n in
  let h00 = Cmatrix.of_real tb.Tight_binding.h00 in
  let h01 = Cmatrix.of_real tb.Tight_binding.h01 in
  let h10 = Cmatrix.adjoint h01 in
  (* Left lead extends via h10 away from the device, right lead via h01. *)
  let gs_l = Self_energy.sancho_rubio ~h00 ~h01:h10 e in
  let sigma_l = Cmatrix.mul h10 (Cmatrix.mul gs_l h01) in
  let gs_r = Self_energy.sancho_rubio ~h00 ~h01 e in
  let sigma_r = Cmatrix.mul h01 (Cmatrix.mul gs_r h10) in
  {
    blocks = Array.make n_cells h00;
    couplings = Array.make (max 0 (n_cells - 1)) h01;
    sigma_l;
    sigma_r;
  }

let ideal_gnr_transmission ?eta ?n_cells n e =
  transmission ?eta (ideal_gnr_device ?n_cells n ~device_of_energy:e) e
