type bias = { mu_s : float; mu_d : float; kt : float }

let energy_grid ~lo ~hi ~de =
  if hi <= lo then invalid_arg "Observables.energy_grid: empty range";
  if de <= 0. then invalid_arg "Observables.energy_grid: non-positive spacing";
  let n = max 3 (1 + int_of_float (Float.ceil ((hi -. lo) /. de))) in
  Vec.linspace lo hi n

(* Energy points are embarrassingly parallel; all three observables fan
   the grid out over the persistent domain pool in fixed contiguous
   chunks and combine per-chunk partials in chunk order, so the result
   is bit-for-bit identical for every GNRFET_DOMAINS setting including
   the sequential [parallel:false] path (see docs/PERF.md).  Chunked
   trapezoid partials re-evaluate one boundary sample per chunk — a few
   extra RGF sweeps per grid, negligible against the win. *)

let domains_of parallel = if parallel then None else Some 1

(* Per-energy-grid instrumentation: one timer start/stop pair per
   observable call (never per energy point) and per-chunk counter adds,
   so the energy loop itself stays allocation-free; energies/sec is the
   counter divided by the timer (docs/OBS.md). *)
let transmission_spectrum ?eta ?parallel ?obs ?ctx ~egrid chain_at =
  let c = Ctx.resolve ?ctx ?parallel ?obs () in
  let parallel = c.Ctx.parallel and obs = c.Ctx.obs in
  let tm = Obs.Timer.make ~obs "negf.transmission_spectrum" in
  let c_energies = Obs.Counter.make ~obs "rgf.transmission_energies" in
  let t0 = Obs.Timer.start tm in
  let ne = Array.length egrid in
  let out = Array.make ne 0. in
  (* Chunks write disjoint index ranges of [out].  gnrlint: allow-shared *)
  ignore
    (Parallel.map_reduce ?domains:(domains_of parallel) ~n:ne
       ~worker:(fun _ -> Rgf.workspace ())
       ~body:(fun ws ~lo ~hi ->
         Obs.Counter.add c_energies (hi - lo);
         for k = lo to hi - 1 do
           out.(k) <- Rgf.transmission_into ?eta ws (chain_at egrid.(k)) egrid.(k)
         done)
       ~combine:(fun () () -> ())
       ());
  Obs.Timer.stop tm t0;
  out

let current ?eta ?parallel ?obs ?ctx ~bias ~egrid chain_at =
  let c = Ctx.resolve ?ctx ?parallel ?obs () in
  let parallel = c.Ctx.parallel and obs = c.Ctx.obs in
  let tm = Obs.Timer.make ~obs "negf.current" in
  let c_energies = Obs.Counter.make ~obs "rgf.transmission_energies" in
  let t0 = Obs.Timer.start tm in
  let { mu_s; mu_d; kt } = bias in
  let integrand ws k =
    let e = egrid.(k) in
    let window = Fermi.window ~mu1:mu_s ~mu2:mu_d ~kt e in
    if Float.abs window < 1e-14 then 0.
    else Rgf.transmission_into ?eta ws (chain_at e) e *. window
  in
  (* Trapezoid rule as a chunked reduction over the ne-1 intervals. *)
  let integral =
    Parallel.map_reduce ?domains:(domains_of parallel)
      ~n:(Array.length egrid - 1)
      ~worker:(fun _ -> Rgf.workspace ())
      ~body:(fun ws ~lo ~hi ->
        Obs.Counter.add c_energies (hi - lo + 1);
        let acc = ref 0. in
        let prev = ref (integrand ws lo) in
        for k = lo to hi - 1 do
          let cur = integrand ws (k + 1) in
          acc := !acc +. (0.5 *. (egrid.(k + 1) -. egrid.(k)) *. (!prev +. cur));
          prev := cur
        done;
        !acc)
      ~combine:( +. ) 0.
  in
  Obs.Timer.stop tm t0;
  Const.g0 *. integral

(* Per-worker scratch for the charge integration: the RGF workspace plus
   two sample buffers (signed occupied spectral weight at the previous
   and current energy point), swapped as the chunk walks its intervals. *)
type charge_scratch = {
  ws : Rgf.workspace;
  mutable s_prev : float array;
  mutable s_cur : float array;
}

let site_charge ?eta ?parallel ?obs ?ctx ~bias ~egrid ~midgap chain_at =
  let c = Ctx.resolve ?ctx ?parallel ?obs () in
  let parallel = c.Ctx.parallel and obs = c.Ctx.obs in
  let tm = Obs.Timer.make ~obs "negf.site_charge" in
  let c_energies = Obs.Counter.make ~obs "rgf.spectra_energies" in
  let t0 = Obs.Timer.start tm in
  (* The timer must stop on every path: the midgap-length invalid_arg
     below (and anything chain_at raises) would otherwise leak the
     sample (gnrlint span-balance). *)
  Fun.protect ~finally:(fun () -> Obs.Timer.stop tm t0) @@ fun () ->
  let { mu_s; mu_d; kt } = bias in
  let chain0 = chain_at egrid.(0) in
  let n = Array.length chain0.Rgf.onsite in
  if Array.length midgap <> n then
    invalid_arg "Observables.site_charge: midgap length mismatch";
  (* The k = 0 chain is reused rather than rebuilt (chain_at may do real
     work per call, e.g. energy-dependent self-energies). *)
  let chain_of k = if k = 0 then chain0 else chain_at egrid.(k) in
  (* Signed occupied spectral weight per site at energy index k: an
     electron count above the local mid-gap weighted by the contact
     Fermi factors, a (negated) hole count below it weighted by the
     complements, so both integrals converge within a few kT of the
     contact potentials. *)
  let sample_into scratch dst k =
    let e = egrid.(k) in
    ignore (Rgf.spectra_into ?eta scratch.ws (chain_of k) e);
    let a1 = Rgf.a1 scratch.ws and a2 = Rgf.a2 scratch.ws in
    let fs = Fermi.occupation ~mu:mu_s ~kt e in
    let fd = Fermi.occupation ~mu:mu_d ~kt e in
    for i = 0 to n - 1 do
      dst.(i) <-
        (if e >= midgap.(i) then (a1.(i) *. fs) +. (a2.(i) *. fd)
         else -.((a1.(i) *. (1. -. fs)) +. (a2.(i) *. (1. -. fd))))
    done
  in
  (* Trapezoid accumulation of the occupied spectral weight over the
     ne-1 energy intervals, chunked: each chunk integrates its intervals
     into fresh electron/hole accumulators (split by sign so electron
     and hole counts stay separately positive). *)
  let electrons, holes =
    Parallel.map_reduce ?domains:(domains_of parallel)
      ~n:(Array.length egrid - 1)
      ~worker:(fun _ ->
        { ws = Rgf.workspace ~hint:n (); s_prev = Array.make n 0.; s_cur = Array.make n 0. })
      ~body:(fun scratch ~lo ~hi ->
        (* One boundary sample plus one per interval (docs/OBS.md). *)
        Obs.Counter.add c_energies (hi - lo + 1);
        let electrons = Array.make n 0. and holes = Array.make n 0. in
        sample_into scratch scratch.s_prev lo;
        for k = lo to hi - 1 do
          sample_into scratch scratch.s_cur (k + 1);
          let h = 0.5 *. (egrid.(k + 1) -. egrid.(k)) in
          let sp = scratch.s_prev and sc = scratch.s_cur in
          for i = 0 to n - 1 do
            let v = h *. (sp.(i) +. sc.(i)) in
            if v >= 0. then electrons.(i) <- electrons.(i) +. v
            else holes.(i) <- holes.(i) -. v
          done;
          scratch.s_prev <- sc;
          scratch.s_cur <- sp
        done;
        (electrons, holes))
      ~combine:(fun (ea, ha) (eb, hb) ->
        for i = 0 to n - 1 do
          ea.(i) <- ea.(i) +. eb.(i);
          ha.(i) <- ha.(i) +. hb.(i)
        done;
        (ea, ha))
      (Array.make n 0., Array.make n 0.)
  in
  (* Spin degeneracy 2; 2π spectral normalization; electrons negative. *)
  let scale = 2. *. Const.q /. (2. *. Float.pi) in
  Array.init n (fun i -> -.scale *. (electrons.(i) -. holes.(i)))
