(** Contact self-energies for the NEGF solvers. *)

val wideband : gamma:float -> Complex.t
(** Wide-band-limit metal contact: energy-independent [Σ = -i Γ / 2].
    This is the Schottky-contact model of the paper once combined with the
    mid-gap Fermi-level pinning boundary condition (barrier = Eg/2). *)

val dimer_surface :
  ?eta:float -> t1:float -> t2:float -> onsite:float -> float -> Complex.t
(** [dimer_surface ~t1 ~t2 ~onsite e] is the retarded surface Green's
    function of a semi-infinite dimer chain (alternating hoppings [t1],
    [t2], uniform [onsite]) evaluated at energy [e], as seen by a device
    attached through a [t2] bond; multiply by [t2^2] for the self-energy.
    Computed in closed form: the decimation fixed point satisfies a
    quadratic whose retarded root (negative imaginary part, bounded in
    the gap) is selected with imaginary broadening [eta] (default
    1e-5 eV) — no iteration, so no tolerance or iteration cap applies. *)

val sancho_rubio :
  ?eta:float ->
  ?tol:float ->
  ?max_iter:int ->
  h00:Cmatrix.t ->
  h01:Cmatrix.t ->
  float ->
  Cmatrix.t
(** Surface Green's function of a semi-infinite periodic block chain
    ([h00] on-cell, [h01] coupling towards the device) via the
    Sancho–Rubio decimation, running on the {!Zdense} in-place kernels
    (allocation-free per iteration); the lead self-energy is
    [h01† · g_s · h01].  Convergence when the decimated coupling's
    largest entry drops below [tol]; raises {!Numerics_error.Stalled}
    after [max_iter] iterations.  Reports [self_energy.sancho_calls] /
    [self_energy.sancho_iterations] and a per-call timer into
    {!Obs.global} (docs/OBS.md). *)
