(** Physical observables of a mode-space chain: terminal current and site
    charge from the RGF spectra.

    All three observables treat energy points as embarrassingly parallel
    and fan the grid out over the persistent {!Parallel} pool in fixed
    contiguous chunks.  {b Determinism:} the chunk grid and the
    chunk-order combine depend only on the energy grid, never on the
    worker count, so results are bit-for-bit identical for every
    [GNRFET_DOMAINS] setting and [?parallel:false] reproduces the
    parallel result exactly (see docs/PERF.md).  Pass [~parallel:false]
    from code that is already running under an outer parallel fan-out
    (device-level table generation) to avoid oversubscription.

    {b Observability.}  Each observable times itself as one wall-clock
    interval ([negf.site_charge], [negf.current],
    [negf.transmission_spectrum]) and counts the energy points swept
    ([rgf.spectra_energies] for the charge integration,
    [rgf.transmission_energies] for the current/spectrum sweeps), so
    energies-per-second falls out of the snapshot.  Metrics land in
    [?obs] (default {!Obs.global}); counters are bumped once per chunk,
    never per energy point, and everything is a no-op while the registry
    is disabled.  See docs/OBS.md.

    {b Contexts.}  All three observables also accept [?ctx:Ctx.t]
    bundling the [parallel]/[obs] knobs; an explicitly passed legacy
    label wins over the corresponding [ctx] field ({!Ctx.resolve}).
    Prefer [?ctx] in new code — the legacy labels are kept only so
    existing call sites stay source-compatible (docs/API.md). *)

type bias = {
  mu_s : float;  (** source electro-chemical potential, eV *)
  mu_d : float;  (** drain electro-chemical potential, eV *)
  kt : float;  (** thermal energy, eV *)
}

val energy_grid : lo:float -> hi:float -> de:float -> float array
(** Uniform grid covering [\[lo, hi\]] with spacing at most [de] (at least
    three points). *)

val current :
  ?eta:float ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  ?ctx:Ctx.t ->
  bias:bias ->
  egrid:float array ->
  (float -> Rgf.chain) ->
  float
(** [current ~bias ~egrid chain_at]: Landauer current (A) of one
    spin-degenerate mode chain, [I = (2q²/h) ∫ T(E) (f_s - f_d) dE].
    The chain is requested per energy point so energy-dependent contact
    self-energies are handled exactly (wide-band contacts may ignore the
    argument).  Positive current flows source to drain when
    [mu_s > mu_d].  [parallel] (default true) chunks the trapezoid
    reduction over the energy grid. *)

val site_charge :
  ?eta:float ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  ?ctx:Ctx.t ->
  bias:bias ->
  egrid:float array ->
  midgap:float array ->
  (float -> Rgf.chain) ->
  float array
(** Net mobile charge per site in coulombs (negative where electrons
    dominate), computed from the contact-resolved spectral functions:
    electrons are counted above the local [midgap] energy weighted by the
    contact Fermi factors, holes below it weighted by the complements, with
    spin degeneracy 2.  The [midgap] array is the local charge-neutrality
    level per site (normally equal to [chain.onsite]). *)

val transmission_spectrum :
  ?eta:float ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  ?ctx:Ctx.t ->
  egrid:float array ->
  (float -> Rgf.chain) ->
  float array
(** T(E) sampled on the grid (for spectrum plots and tests). *)
