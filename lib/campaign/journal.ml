(* Write-ahead checkpoint journal for campaign runs (docs/CAMPAIGN.md).

   One file per campaign: a 16-byte header (magic+version, the CRC-32C
   hash of the canonical spec JSON, a header CRC) followed by
   append-only CRC-32C-framed sample records.  The header is created
   atomically (tmp + rename, both fsync'd); records are appended and
   fsync'd at checkpoint boundaries, which is the whole durability
   story: a crash can only ever damage the unsynced tail, and replay
   drops a torn tail with a typed reason instead of an exception.

   Byte layout (all integers little-endian):

     header   0  8  magic "GNRCAMP\x01" (last byte = format version 1)
              8  4  u32 spec hash (CRC-32C of the canonical spec JSON)
             12  4  u32 CRC-32C of bytes 0..11
     record   0  4  u32 payload length L (sanity-capped)
              4  4  u32 CRC-32C of the payload
              8  L  payload
     payload  0  4  u32 sample index (must equal the append position)
              4  1  u8 status: 0 = done, 1 = quarantined
              5  -  done: 3 x f64 bits (delay s, EDP J.s, SNM V)
                    quarantined: UTF-8 reason string to end of payload *)

let magic = "GNRCAMP\x01"

let header_len = 16

(* A frame longer than this is a corrupted length field, not a real
   record: quarantine reasons are one-line error renders. *)
let max_payload = 1 lsl 20

type entry =
  | Done of { index : int; delay : float; edp : float; snm : float }
  | Quarantined of { index : int; reason : string }

let entry_index = function
  | Done { index; _ } -> index
  | Quarantined { index; _ } -> index

type replay = {
  entries : entry list;
  next : int;
  torn : Robust_error.torn_reason option;
  duplicates : int;
  good_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let encode_entry e =
  let b = Buffer.create 48 in
  let u32 v =
    let x = Bytes.create 4 in
    Bytes.set_int32_le x 0 (Int32.of_int v);
    Buffer.add_bytes b x
  in
  let f64 v =
    let x = Bytes.create 8 in
    Bytes.set_int64_le x 0 (Int64.bits_of_float v);
    Buffer.add_bytes b x
  in
  (match e with
  | Done { index; delay; edp; snm } ->
    u32 index;
    Buffer.add_char b '\x00';
    f64 delay;
    f64 edp;
    f64 snm
  | Quarantined { index; reason } ->
    u32 index;
    Buffer.add_char b '\x01';
    Buffer.add_string b reason);
  Buffer.contents b

let frame_entry e =
  let payload = encode_entry e in
  let len = String.length payload in
  let crc = Crc32.string payload ~pos:0 ~len in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int crc);
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

let header_bytes ~spec_hash =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int32_le b 8 (Int32.of_int spec_hash);
  let crc = Crc32.string (Bytes.unsafe_to_string b) ~pos:0 ~len:12 in
  Bytes.set_int32_le b 12 (Int32.of_int crc);
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Decoding / replay                                                   *)

let u32_at s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let f64_at s pos = Int64.float_of_bits (String.get_int64_le s pos)

let hex8 v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)

let decode_payload s ~pos ~len =
  (* Caller has checked the CRC, so a malformed payload here means a
     writer from the future, not line noise; reject it all the same. *)
  if len < 5 then None
  else begin
    let index = u32_at s pos in
    match s.[pos + 4] with
    | '\x00' when len = 4 + 1 + 24 ->
      Some
        (Done
           {
             index;
             delay = f64_at s (pos + 5);
             edp = f64_at s (pos + 13);
             snm = f64_at s (pos + 21);
           })
    | '\x01' ->
      Some
        (Quarantined { index; reason = String.sub s (pos + 5) (len - 5) })
    | _ -> None
  end

let validate_header ~path ?expect_hash src =
  let fatal reason =
    Robust_error.raise_ (Robust_error.Checkpoint_torn { path; reason })
  in
  if String.length src < header_len then
    fatal
      (Robust_error.Torn_bad_header
         {
           detail =
             Printf.sprintf "file is %d bytes, shorter than one header"
               (String.length src);
         });
  if String.sub src 0 8 <> magic then
    fatal (Robust_error.Torn_bad_header { detail = "bad magic" });
  let crc_stored = u32_at src 12 in
  let crc_actual = Crc32.string src ~pos:0 ~len:12 in
  if crc_stored <> crc_actual then
    fatal (Robust_error.Torn_bad_header { detail = "header CRC-32C mismatch" });
  let found = u32_at src 8 in
  (match expect_hash with
  | Some expected when expected land 0xFFFFFFFF <> found ->
    fatal
      (Robust_error.Torn_spec_mismatch
         { expected = hex8 expected; found = hex8 found })
  | _ -> ());
  found

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () ->
      match close_in ic with () -> () | exception Sys_error _ -> ())
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_hash_of_file ~path = validate_header ~path (read_file path)

let replay ~path ?expect_hash () =
  let src = read_file path in
  let (_ : int) = validate_header ~path ?expect_hash src in
  let total = String.length src in
  let entries = ref [] in
  let next = ref 0 in
  let duplicates = ref 0 in
  let torn = ref None in
  let good = ref header_len in
  let record = ref 0 in
  let rec scan pos =
    if pos < total then begin
      if pos + 8 > total then
        torn := Some (Robust_error.Torn_truncated { offset = pos })
      else begin
        let len = u32_at src pos in
        if len > max_payload || pos + 8 + len > total then
          torn := Some (Robust_error.Torn_truncated { offset = pos })
        else begin
          let crc_stored = u32_at src (pos + 4) in
          let crc_actual = Crc32.string src ~pos:(pos + 8) ~len in
          if crc_stored <> crc_actual then
            torn :=
              Some (Robust_error.Torn_crc { record = !record; offset = pos })
          else begin
            match decode_payload src ~pos:(pos + 8) ~len with
            | None ->
              torn :=
                Some (Robust_error.Torn_crc { record = !record; offset = pos })
            | Some e ->
              let idx = entry_index e in
              if idx < !next then begin
                (* A duplicate of an already-replayed sample: count it
                   and move on — never fed to the accumulators twice. *)
                incr duplicates;
                incr record;
                good := pos + 8 + len;
                scan (pos + 8 + len)
              end
              else if idx > !next then
                torn :=
                  Some
                    (Robust_error.Torn_out_of_order
                       { record = !record; expected = !next; found = idx })
              else begin
                entries := e :: !entries;
                next := !next + 1;
                incr record;
                good := pos + 8 + len;
                scan (pos + 8 + len)
              end
          end
        end
      end
    end
  in
  scan header_len;
  {
    entries = List.rev !entries;
    next = !next;
    torn = !torn;
    duplicates = !duplicates;
    good_bytes = !good;
  }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

type writer = { w_path : string; w_fd : Unix.file_descr }

let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    Fun.protect
      ~finally:(fun () ->
        match Unix.close dfd with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.fsync dfd with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go pos =
    if pos < len then begin
      let n = Unix.write fd b pos (len - pos) in
      go (pos + n)
    end
  in
  go 0

let create ~path ~spec_hash =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (match
     write_all fd (header_bytes ~spec_hash);
     Unix.fsync fd
   with
  | () -> ()
  | exception e ->
    (match Unix.close fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ());
    raise e);
  Unix.close fd;
  Unix.rename tmp path;
  fsync_dir path;
  let w_fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  { w_path = path; w_fd }

let open_append ~path ~good_bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  (match
     (* Cut the torn tail before appending, so the file never carries
        garbage between valid records. *)
     Unix.ftruncate fd good_bytes;
     ignore (Unix.lseek fd good_bytes Unix.SEEK_SET : int)
   with
  | () -> ()
  | exception e ->
    (match Unix.close fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ());
    raise e);
  { w_path = path; w_fd = fd }

let append w e = write_all w.w_fd (frame_entry e)

let sync w = Unix.fsync w.w_fd

let path w = w.w_path

let close w =
  match Unix.close w.w_fd with () -> () | exception Unix.Unix_error _ -> ()
