(** Streaming per-metric analytics for campaign reports.

    Welford mean/variance plus min/max and a {e binade histogram} (16
    buckets per power of two, keyed on the top 16 bits of the IEEE-754
    representation) from which p50/p90/p99 are interpolated — so a
    10⁶-sample campaign holds O(occupied buckets), not O(samples), in
    memory.  Percentiles are estimates with ≤ ~6% relative error (the
    in-bucket spread); mean/stddev/min/max are exact.

    Determinism: the accumulator state is a pure function of the value
    {e sequence}.  The campaign engine always feeds values in
    sample-index order — on resume, from the journal's recorded float64
    bits — so an interrupted-and-resumed run reaches the same state
    bit-for-bit as an uninterrupted one (docs/CAMPAIGN.md).  NaN inputs
    are mapped to 0 rather than poisoning the moments. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float

val stddev : t -> float
(** Sample standard deviation (n−1 denominator); 0 below two samples. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100], interpolated within the
    binade bucket containing the rank; 0 when empty. *)

type snapshot = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

val snapshot : t -> snapshot

val snapshot_to_json : snapshot -> Sjson.t
(** Fixed field order ([count], [mean], [stddev], [min], [max], [p50],
    [p90], [p99]) so reports are byte-diffable. *)
