(** Write-ahead checkpoint journal for campaign runs.

    One append-only file per campaign: a 16-byte header binding the
    journal to a spec (magic + format version, CRC-32C hash of the
    canonical spec JSON, header CRC) followed by CRC-32C-framed sample
    records — byte layout and an annotated hex dump in
    docs/CAMPAIGN.md.  The header is created atomically (tmp + rename,
    both fsync'd); records are appended and fsync'd at checkpoint
    boundaries, so a crash can only damage the unsynced tail and
    {!replay} drops that tail with a typed
    {!Robust_error.torn_reason} — never an untyped exception.

    CRC-32C comes from {!Crc32}, the same audited implementation the
    [gnrtbl] table format validates with (docs/FORMAT.md). *)

type entry =
  | Done of { index : int; delay : float; edp : float; snm : float }
      (** sample [index] completed; the three metric values are stored
          as exact float64 bits so replay reconstructs the streaming
          accumulators bit-for-bit *)
  | Quarantined of { index : int; reason : string }
      (** sample [index] was quarantined by the recovery ladder;
          [reason] is the rendered typed error, replayed verbatim into
          the report *)

val entry_index : entry -> int

type replay = {
  entries : entry list;
      (** the valid prefix, in append (= sample-index) order: entry [k]
          always describes sample [k] *)
  next : int;  (** first unrecorded sample index, [= List.length entries] *)
  torn : Robust_error.torn_reason option;
      (** [Some] when a recoverable torn tail was dropped (truncated
          frame, record CRC mismatch, out-of-order index); the damage
          starts at [good_bytes] *)
  duplicates : int;
      (** records naming an already-replayed sample, skipped so nothing
          is ever double-counted *)
  good_bytes : int;
      (** byte offset where the valid prefix ends; {!open_append}
          truncates here before appending *)
}

val replay : path:string -> ?expect_hash:int -> unit -> replay
(** Validate the header and scan the records.  Raises
    [Robust_error.Error (Checkpoint_torn _)] only for {e fatal} reasons
    — unreadable header ([Torn_bad_header]) or a spec hash differing
    from [expect_hash] ([Torn_spec_mismatch]) — because resuming past
    those could mix campaigns or double-count; every recoverable
    corruption is returned as data in [torn].  May raise [Sys_error]
    when the file itself cannot be read. *)

val spec_hash_of_file : path:string -> int
(** Validate the header only and return the stored spec hash
    ([campaign status] without the spec file).  Same fatal behavior as
    {!replay}. *)

type writer

val create : path:string -> spec_hash:int -> writer
(** Write a fresh journal header atomically (tmp + rename + fsync of
    file and directory) and return a writer positioned for the first
    record. *)

val open_append : path:string -> good_bytes:int -> writer
(** Open an existing journal for appending, truncating the torn tail at
    [good_bytes] (from {!replay}) first so the file never carries
    garbage between valid records. *)

val append : writer -> entry -> unit
(** Append one framed record (no implicit sync). *)

val sync : writer -> unit
(** [fsync] the journal — the checkpoint boundary.  Everything appended
    before a returned [sync] survives a crash. *)

val path : writer -> string

val close : writer -> unit
(** Close the descriptor (idempotent-safe: a double close is
    swallowed). *)
