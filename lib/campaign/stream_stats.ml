(* Streaming moments + a binade histogram for percentile estimates.

   The campaign engine feeds every surviving sample's metric through
   [add] in sample-index order and never stores the samples themselves,
   so memory is O(#occupied buckets) regardless of campaign size.  All
   state transitions are deterministic functions of the value sequence:
   replaying the journal's recorded float64 bits in order reconstructs
   the accumulator bit-for-bit, which is what makes the resumed report
   byte-identical to the uninterrupted one (docs/CAMPAIGN.md). *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* Welford sum of squared deviations *)
  mutable minv : float;
  mutable maxv : float;
  buckets : (int, int ref) Hashtbl.t;
}

let create () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    minv = infinity;
    maxv = neg_infinity;
    buckets = Hashtbl.create 64;
  }

(* Bucket key: the top 16 bits of the IEEE-754 representation (sign,
   the 11 exponent bits, 4 mantissa bits), i.e. 16 buckets per binade.
   Within a bucket the relative spread is <= 2^-4, so an interpolated
   percentile is accurate to ~6% relative — plenty for yield analytics
   — while the bucket count stays bounded by the value range actually
   seen. *)
let bucket_key v = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) 48)

let bucket_lo key = Int64.float_of_bits (Int64.shift_left (Int64.of_int key) 48)

let bucket_hi key =
  Int64.float_of_bits (Int64.shift_left (Int64.of_int (key + 1)) 48)

let add t v =
  let v = if Float.is_nan v then 0. else v in
  t.n <- t.n + 1;
  let delta = v -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (v -. t.mean));
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v;
  let key = bucket_key v in
  match Hashtbl.find_opt t.buckets key with
  | Some r -> incr r
  | None -> Hashtbl.add t.buckets key (ref 1)

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let stddev t =
  if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

let min_value t = if t.n = 0 then 0. else t.minv

let max_value t = if t.n = 0 then 0. else t.maxv

(* Numeric order of buckets: negative keys (sign bit set) come first,
   most-negative first — for a sign-bit-set key a *larger* key means a
   more negative value, so they sort descending; non-negative keys sort
   ascending. *)
let sorted_buckets t =
  let items =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.buckets []
  in
  let order (ka, _) (kb, _) =
    let neg_a = ka land 0x8000 <> 0 and neg_b = kb land 0x8000 <> 0 in
    match (neg_a, neg_b) with
    | true, false -> -1
    | false, true -> 1
    | true, true -> compare kb ka
    | false, false -> compare ka kb
  in
  List.sort order items

(* For a sign-bit-set bucket the numeric interval is
   [-(bucket_hi), -(bucket_lo)] of the magnitude bits, i.e. reversed. *)
let bucket_bounds key =
  if key land 0x8000 = 0 then (bucket_lo key, bucket_hi key)
  else (bucket_hi key, bucket_lo key)

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let target = p /. 100. *. float_of_int t.n in
    let target = Float.max target 0. in
    let rec walk acc = function
      | [] -> t.maxv
      | (key, c) :: rest ->
        let acc' = acc + c in
        if float_of_int acc' >= target then begin
          let lo, hi = bucket_bounds key in
          let lo = Float.max lo t.minv and hi = Float.min hi t.maxv in
          let frac =
            if c = 0 then 0.
            else (target -. float_of_int acc) /. float_of_int c
          in
          let frac = Float.max 0. (Float.min 1. frac) in
          lo +. (frac *. (hi -. lo))
        end
        else walk acc' rest
    in
    walk 0 (sorted_buckets t)
  end

type snapshot = {
  s_count : int;
  s_mean : float;
  s_stddev : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let snapshot t =
  {
    s_count = count t;
    s_mean = mean t;
    s_stddev = stddev t;
    s_min = min_value t;
    s_max = max_value t;
    s_p50 = percentile t 50.;
    s_p90 = percentile t 90.;
    s_p99 = percentile t 99.;
  }

let snapshot_to_json s =
  Sjson.Obj
    [
      ("count", Sjson.Num (float_of_int s.s_count));
      ("mean", Sjson.Num s.s_mean);
      ("stddev", Sjson.Num s.s_stddev);
      ("min", Sjson.Num s.s_min);
      ("max", Sjson.Num s.s_max);
      ("p50", Sjson.Num s.s_p50);
      ("p90", Sjson.Num s.s_p90);
      ("p99", Sjson.Num s.s_p99);
    ]
