(** Crash-safe resumable device campaigns (docs/CAMPAIGN.md).

    A campaign expands a typed {!spec} — device axes (GNR width,
    impurity charge, contact broadening) × operating points (VDD, VT) ×
    a sample count — into deterministically seeded samples
    (splitmix64 on (seed, index), like {!Fault}), evaluates each
    sample's inverter figures of merit (delay, EDP, SNM) from its
    device table, quarantines unrecoverable samples through the same
    predicate as {!Montecarlo} ({!Montecarlo.quarantineable}), and
    accumulates streaming analytics ({!Stream_stats}) so memory stays
    O(1) in the sample count.

    {b Durability.}  With a [journal] path, every sample is appended to
    a CRC-32C write-ahead journal ({!Journal}) and fsync'd at
    checkpoint boundaries before the next sample starts.  After a
    crash, [resume] replays the journal's valid prefix into the
    accumulators (exact recorded float64 bits, in index order), drops a
    torn tail with a typed reason, and continues from the first
    unrecorded sample — the final report is bit-identical to an
    uninterrupted run's (the CI chaos leg SIGKILLs a campaign at a
    seeded checkpoint boundary and byte-diffs the two reports).

    {b Determinism.}  Samples are evaluated strictly in index order;
    parallelism lives in the energy loops below {!Table_cache.get} (or
    in the daemon's worker pool), never across samples. *)

type spec = {
  name : string;
  samples : int;  (** > 0 *)
  seed : int;  (** seeds the per-sample splitmix64 streams *)
  stages : int;  (** ring-oscillator stages for delay/EDP (paper: 15) *)
  widths : int list;  (** A-GNR index axis (9/12/15/18) *)
  charges : float list;  (** impurity charge axis, units of |q| *)
  gammas : float list;  (** contact broadening axis, eV *)
  ops : (float * float) list;  (** (VDD, VT) operating-point axis, V *)
  grid : Ctx.grid_spec option;  (** table bias grid (None = default) *)
}

val validate : spec -> (spec, string) result

val spec_of_json : Sjson.t -> (spec, string) result
(** Strict decode (unknown fields rejected).  Defaults: [seed] 1,
    [stages] 15, [widths] [[12]], [charges] [[0]], [gammas] [[1]];
    [name], [samples] and [ops] are required.  Grammar in
    docs/CAMPAIGN.md. *)

val spec_to_json : spec -> Sjson.t
(** Canonical encoding (fixed field order, all defaults explicit) —
    the byte string whose CRC-32C is {!spec_hash}. *)

val spec_hash : spec -> int
(** CRC-32C of the canonical spec JSON; stored in the journal header so
    [resume] refuses a journal written for a different spec
    ([Torn_spec_mismatch]). *)

type sample = {
  s_index : int;
  s_width : int;
  s_charge : float;
  s_gamma : float;
  s_vdd : float;
  s_vt : float;
}

val sample_at : spec -> int -> sample
(** The deterministic expansion: sample [i]'s axis draws.  Pure —
    depends only on [(spec.seed, i)] and the axis lists. *)

val params_of_sample : sample -> Params.t
(** Device parameters of a sample (width, contact broadening, impurity
    charge; VT is realized downstream through {!Explore.pair_at}'s gate
    shift, VDD at circuit level). *)

(** {2 Executors} *)

type executor = Params.t -> Ctx.grid_spec option -> Iv_table.t
(** How a sample's device table is obtained.  May raise typed solver
    errors (quarantining the sample) or typed client errors. *)

val local_executor : ctx:Ctx.t -> unit -> executor
(** {!Table_cache.get} under [ctx] (the default executor of {!run}). *)

val serve_executor : ?fallback:Ctx.t -> Serve_client.t -> unit -> executor
(** Fetch tables from the serve daemon via {!Serve_client.call} (so
    busy rejections are retried honoring [retry_after_ms]).  Daemon-side
    solver errors re-raise as [Robust_error] and quarantine the sample
    like a local failure.  With [fallback], a typed {e client} failure
    (timeout, disconnect, breaker open, busy through the whole retry
    budget) degrades to local {!Table_cache.get} under the fallback
    context — counted in [campaign.serve_fallbacks] — so a dead or
    saturated daemon costs time, never samples. *)

(** {2 Reports} *)

type report = {
  r_spec : spec;
  r_total : int;
  r_completed : int;
  r_quarantined : (int * string) list;
      (** (sample index, rendered typed reason), ascending *)
  r_delay : Stream_stats.snapshot;  (** inverter tp, s *)
  r_edp : Stream_stats.snapshot;  (** J·s *)
  r_snm : Stream_stats.snapshot;  (** V *)
}

val report_to_json : report -> Sjson.t
(** Deterministic content only (no timings, no cache counters): an
    uninterrupted run and a crash-plus-resume run of the same spec
    render byte-identical JSON. *)

val write_report : path:string -> report -> unit
(** Atomic write (tmp + rename), one line plus trailing newline. *)

(** {2 Engine} *)

type run_outcome = {
  report : report;
  resumed : int;
      (** samples restored from the journal rather than re-evaluated *)
  evaluated : int;  (** samples evaluated by this process *)
  torn : Robust_error.torn_reason option;
      (** recoverable tail damage dropped during resume, if any *)
  duplicates : int;  (** duplicate journal records skipped *)
}

type sample_metrics = { delay : float; edp : float; snm : float }
(** What one surviving sample contributes: inverter tp (s), EDP (J·s),
    SNM (V). *)

val run_with :
  ?obs:Obs.t ->
  ?journal:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  ?kill_after:int ->
  evaluate:(sample -> sample_metrics) ->
  spec ->
  run_outcome
(** The engine behind {!run}, parameterized over the per-sample
    evaluator so checkpoint/resume/quarantine semantics are testable
    without SCF solves (mirrors {!Montecarlo.run_with}).  An evaluator
    exception matching {!Montecarlo.quarantineable} quarantines the
    sample; anything else aborts the run (after closing the journal,
    whose synced prefix then resumes). *)

val run :
  ?ctx:Ctx.t ->
  ?executor:executor ->
  ?journal:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  ?kill_after:int ->
  spec ->
  run_outcome
(** Run (or, with [resume:true], resume) a campaign.  [journal] enables
    the write-ahead checkpoint journal; [checkpoint_every] (default 1)
    is the fsync cadence in samples — everything synced survives a
    crash, at most [checkpoint_every] samples are re-evaluated on
    resume.  [kill_after:n] is the chaos hook: the process SIGKILLs
    itself at the first checkpoint boundary after evaluating [n]
    samples (CI uses it to die deterministically between records).
    Obs accounting (under [ctx.obs]): [campaign.samples] (evaluated
    here), [campaign.quarantined], [campaign.replayed],
    [campaign.journal.records], [campaign.journal.duplicates],
    [campaign.journal.torn.<label>], timer [campaign.checkpoint].
    Raises [Invalid_argument] on an invalid spec or [resume] without
    [journal]; [Robust_error.Error (Checkpoint_torn _)] on a fatally
    damaged journal. *)

(** {2 Status} *)

type status = {
  st_spec_hash : int;  (** hash stored in the journal header *)
  st_recorded : int;  (** contiguous samples in the valid prefix *)
  st_completed : int;
  st_quarantined : int;
  st_duplicates : int;
  st_torn : Robust_error.torn_reason option;
  st_total : int option;  (** when the spec is provided *)
}

val status : journal:string -> ?spec:spec -> unit -> status
(** Inspect a journal without running anything.  With [spec], also
    verifies the hash (fatal mismatch raises like {!run}). *)
