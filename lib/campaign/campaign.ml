(* Resumable device campaigns (docs/CAMPAIGN.md).

   A campaign is a typed spec — device axes (GNR width, impurity
   charge, contact broadening) x operating points (VDD, VT) x a sample
   count — expanded into deterministically seeded samples.  Each sample
   picks one value per axis from a splitmix64 stream keyed on
   (spec seed, sample index), so sample k is the same device at the
   same operating point on every run, every process, every resume.

   Samples are evaluated strictly in index order; the streaming
   accumulators (Stream_stats) therefore see a deterministic value
   sequence and the final report is a pure function of the spec —
   which is what lets the chaos CI leg demand bit-identical reports
   from an uninterrupted run and a SIGKILL-plus-resume run.
   Parallelism lives a level down (the energy loops under
   Table_cache.get, or the daemon's worker pool), not across samples. *)

let ( let* ) = Result.bind

type spec = {
  name : string;
  samples : int;
  seed : int;
  stages : int;
  widths : int list;
  charges : float list;
  gammas : float list;
  ops : (float * float) list;  (* (vdd, vt) *)
  grid : Ctx.grid_spec option;
}

let validate spec =
  if spec.name = "" then Error "spec: name must be non-empty"
  else if spec.samples <= 0 then Error "spec: samples must be positive"
  else if spec.stages <= 0 then Error "spec: stages must be positive"
  else if spec.widths = [] then Error "spec: widths must be non-empty"
  else if spec.charges = [] then Error "spec: charges must be non-empty"
  else if spec.gammas = [] then Error "spec: gammas must be non-empty"
  else if spec.ops = [] then Error "spec: ops must be non-empty"
  else Ok spec

(* ------------------------------------------------------------------ *)
(* Spec codec (strict, canonical)                                      *)

let spec_keys =
  [
    "name"; "samples"; "seed"; "stages"; "widths"; "charges"; "gammas";
    "ops"; "grid";
  ]

let check_keys fields =
  List.fold_left
    (fun acc (k, _) ->
      let* () = acc in
      if List.mem k spec_keys then Ok ()
      else Error (Printf.sprintf "spec: unknown field %S" k))
    (Ok ()) fields

let num_list_of ~what j =
  match Sjson.to_list j with
  | None -> Error (Printf.sprintf "spec.%s: expected an array of numbers" what)
  | Some items ->
    let* rev =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Sjson.to_float item with
          | Some f -> Ok (f :: acc)
          | None -> Error (Printf.sprintf "spec.%s: expected a number" what))
        (Ok []) items
    in
    Ok (List.rev rev)

let spec_of_json j =
  match j with
  | Sjson.Obj fields ->
    let* () = check_keys fields in
    let field k = List.assoc_opt k fields in
    let* name =
      match Option.bind (field "name") Sjson.to_str with
      | Some n -> Ok n
      | None -> Error "spec: missing string \"name\""
    in
    let int_field k default =
      match field k with
      | None -> Ok default
      | Some j ->
        (match Sjson.to_int j with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "spec.%s: expected an integer" k))
    in
    let* samples = int_field "samples" 0 in
    let* seed = int_field "seed" 1 in
    let* stages = int_field "stages" 15 in
    let* widths =
      match field "widths" with
      | None -> Ok [ 12 ]
      | Some j ->
        let* fs = num_list_of ~what:"widths" j in
        Ok (List.map int_of_float fs)
    in
    let list_field k default =
      match field k with
      | None -> Ok default
      | Some j -> num_list_of ~what:k j
    in
    let* charges = list_field "charges" [ 0. ] in
    let* gammas = list_field "gammas" [ 1. ] in
    let* ops =
      match field "ops" with
      | None -> Error "spec: missing \"ops\" ([[vdd, vt], ...])"
      | Some j ->
        (match Sjson.to_list j with
        | None -> Error "spec.ops: expected an array of [vdd, vt] pairs"
        | Some items ->
          let* rev =
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Sjson.to_list item with
                | Some [ a; b ] ->
                  (match (Sjson.to_float a, Sjson.to_float b) with
                  | Some vdd, Some vt -> Ok ((vdd, vt) :: acc)
                  | _ -> Error "spec.ops: expected numeric [vdd, vt] pairs")
                | _ -> Error "spec.ops: expected [vdd, vt] pairs")
              (Ok []) items
          in
          Ok (List.rev rev))
    in
    let* grid =
      match field "grid" with
      | None | Some Sjson.Null -> Ok None
      | Some j ->
        let* g = Serve_protocol.grid_of_json j in
        Ok (Some g)
    in
    validate { name; samples; seed; stages; widths; charges; gammas; ops; grid }
  | _ -> Error "spec: expected a JSON object"

let spec_to_json spec =
  let nums xs = Sjson.List (List.map (fun v -> Sjson.Num v) xs) in
  let base =
    [
      ("name", Sjson.Str spec.name);
      ("samples", Sjson.Num (float_of_int spec.samples));
      ("seed", Sjson.Num (float_of_int spec.seed));
      ("stages", Sjson.Num (float_of_int spec.stages));
      ("widths", nums (List.map float_of_int spec.widths));
      ("charges", nums spec.charges);
      ("gammas", nums spec.gammas);
      ( "ops",
        Sjson.List
          (List.map
             (fun (vdd, vt) -> Sjson.List [ Sjson.Num vdd; Sjson.Num vt ])
             spec.ops) );
    ]
  in
  let grid =
    match spec.grid with
    | Some g -> [ ("grid", Serve_protocol.grid_to_json g) ]
    | None -> []
  in
  Sjson.Obj (base @ grid)

let spec_hash spec =
  let s = Sjson.to_string (spec_to_json spec) in
  Crc32.string s ~pos:0 ~len:(String.length s)

(* ------------------------------------------------------------------ *)
(* Deterministic sample expansion                                      *)

type sample = {
  s_index : int;
  s_width : int;
  s_charge : float;
  s_gamma : float;
  s_vdd : float;
  s_vt : float;
}

let golden = 0x9E3779B97F4A7C15L

let pick k lst =
  let n = List.length lst in
  List.nth lst
    (Int64.to_int (Int64.rem (Int64.shift_right_logical k 1) (Int64.of_int n)))

let sample_at spec i =
  let k0 =
    Fault.splitmix64
      (Int64.logxor
         (Int64.of_int spec.seed)
         (Int64.mul golden (Int64.of_int (i + 1))))
  in
  let k1 = Fault.splitmix64 k0 in
  let k2 = Fault.splitmix64 k1 in
  let k3 = Fault.splitmix64 k2 in
  let vdd, vt = pick k3 spec.ops in
  {
    s_index = i;
    s_width = pick k0 spec.widths;
    s_charge = pick k1 spec.charges;
    s_gamma = pick k2 spec.gammas;
    s_vdd = vdd;
    s_vt = vt;
  }

let params_of_sample s =
  let p = Params.default ~gnr_index:s.s_width () in
  let p = { p with Params.contact_gamma = s.s_gamma } in
  if s.s_charge = 0. then p else Params.with_impurity_charge p s.s_charge

(* ------------------------------------------------------------------ *)
(* Executors: how a sample's device table is obtained                  *)

type executor = Params.t -> Ctx.grid_spec option -> Iv_table.t

let c_fallbacks = Obs.Counter.make "campaign.serve_fallbacks"

let local_executor ~ctx () : executor =
 fun p grid -> Table_cache.get ?grid ~ctx p

let serve_executor ?fallback client () : executor =
 fun p grid ->
  let degrade e =
    match fallback with
    | Some ctx ->
      Obs.Counter.incr c_fallbacks;
      Table_cache.get ?grid ~ctx p
    | None -> raise e
  in
  match
    Serve_client.call client
      { Serve_protocol.id = None; op = Serve_protocol.Table { params = p; grid } }
  with
  | { Serve_protocol.result = Ok j; _ } ->
    (match Serve_protocol.table_of_json j with
    | Ok t -> t
    | Error detail ->
      degrade
        (Robust_error.Error
           (Robust_error.Client_disconnected { op = "table"; detail })))
  | { Serve_protocol.result = Error { Serve_protocol.kind = "busy"; detail; _ }; _ }
    ->
    (* The client already retried through its backoff budget; a daemon
       that is still saturated degrades to local generation so the
       campaign loses no samples. *)
    degrade
      (Robust_error.Error
         (Robust_error.Client_disconnected { op = "table"; detail }))
  | { Serve_protocol.result = Error { Serve_protocol.kind; detail; _ }; _ } ->
    (* A typed solver failure on the daemon side fails this sample the
       same way a local solve would: through the quarantine. *)
    Robust_error.raise_
      (Robust_error.Unrecovered
         { stage = "serve:" ^ kind; attempts = 1; detail })
  | exception
      (Robust_error.Error
         (Robust_error.Client_timeout _ | Robust_error.Client_disconnected _)
       as e) ->
    degrade e

(* ------------------------------------------------------------------ *)
(* Per-sample evaluation                                               *)

let fault_sample = Fault.site "campaign.sample"

(* Inverter characterizations are transients and bias-point specific;
   distinct (device, operating point) combinations are few next to the
   sample count, so memoize them (a pure cache: hits change nothing). *)
type sample_metrics = { delay : float; edp : float; snm : float }

let metrics_cache : (string, sample_metrics) Hashtbl.t = Hashtbl.create 64

let metrics_mutex = Mutex.create ()

let evaluate_sample (exec : executor) spec s =
  Fault.fail fault_sample;
  let p = params_of_sample s in
  let table = exec p spec.grid in
  let key =
    Printf.sprintf "%s|%h|%h|%d" table.Iv_table.key s.s_vdd s.s_vt spec.stages
  in
  match Mutex.protect metrics_mutex (fun () -> Hashtbl.find_opt metrics_cache key) with
  | Some m -> m
  | None ->
    let pair = Explore.pair_at table ~vt:s.s_vt in
    let im = Metrics.inverter_metrics ~pair ~vdd:s.s_vdd () in
    let m =
      {
        delay = im.Metrics.tp;
        edp = Metrics.edp im ~stages:spec.stages;
        snm = im.Metrics.snm;
      }
    in
    Mutex.protect metrics_mutex (fun () ->
        Hashtbl.replace metrics_cache key m);
    m

let quarantine_reason = function
  | Robust_error.Error e -> Robust_error.to_string e
  | Fault.Injected { site; hit } ->
    Printf.sprintf "injected fault at site %s (hit %d)" site hit
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

type report = {
  r_spec : spec;
  r_total : int;
  r_completed : int;
  r_quarantined : (int * string) list;  (* (index, reason), ascending *)
  r_delay : Stream_stats.snapshot;
  r_edp : Stream_stats.snapshot;
  r_snm : Stream_stats.snapshot;
}

let report_to_json r =
  Sjson.Obj
    [
      ("schema", Sjson.Str "gnrfet-campaign-v1");
      ("spec", spec_to_json r.r_spec);
      ("spec_hash", Sjson.Str (Printf.sprintf "%08x" (spec_hash r.r_spec)));
      ("total", Sjson.Num (float_of_int r.r_total));
      ("completed", Sjson.Num (float_of_int r.r_completed));
      ( "quarantined",
        Sjson.List
          (List.map
             (fun (index, reason) ->
               Sjson.Obj
                 [
                   ("index", Sjson.Num (float_of_int index));
                   ("reason", Sjson.Str reason);
                 ])
             r.r_quarantined) );
      ( "metrics",
        Sjson.Obj
          [
            ("delay", Stream_stats.snapshot_to_json r.r_delay);
            ("edp", Stream_stats.snapshot_to_json r.r_edp);
            ("snm", Stream_stats.snapshot_to_json r.r_snm);
          ] );
    ]

let write_report ~path r =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     output_string oc (Sjson.to_string (report_to_json r));
     output_char oc '\n'
   with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    raise e);
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

type run_outcome = {
  report : report;
  resumed : int;  (* samples restored from the journal, not re-evaluated *)
  evaluated : int;  (* samples evaluated by this process *)
  torn : Robust_error.torn_reason option;
  duplicates : int;
}

type accum = {
  a_delay : Stream_stats.t;
  a_edp : Stream_stats.t;
  a_snm : Stream_stats.t;
  mutable a_completed : int;
  mutable a_quarantined : (int * string) list;  (* descending, reversed later *)
}

let feed acc (e : Journal.entry) =
  match e with
  | Journal.Done { delay; edp; snm; _ } ->
    Stream_stats.add acc.a_delay delay;
    Stream_stats.add acc.a_edp edp;
    Stream_stats.add acc.a_snm snm;
    acc.a_completed <- acc.a_completed + 1
  | Journal.Quarantined { index; reason } ->
    acc.a_quarantined <- (index, reason) :: acc.a_quarantined

let run_with ?(obs = Obs.global) ?journal ?(resume = false)
    ?(checkpoint_every = 1) ?kill_after ~evaluate spec =
  (match validate spec with
  | Ok _ -> ()
  | Error msg -> invalid_arg msg);
  let c_samples = Obs.Counter.make ~obs "campaign.samples"
  and c_quarantined = Obs.Counter.make ~obs "campaign.quarantined"
  and c_replayed = Obs.Counter.make ~obs "campaign.replayed"
  and c_records = Obs.Counter.make ~obs "campaign.journal.records"
  and c_duplicates = Obs.Counter.make ~obs "campaign.journal.duplicates"
  and t_checkpoint = Obs.Timer.make ~obs "campaign.checkpoint" in
  let hash = spec_hash spec in
  let acc =
    {
      a_delay = Stream_stats.create ();
      a_edp = Stream_stats.create ();
      a_snm = Stream_stats.create ();
      a_completed = 0;
      a_quarantined = [];
    }
  in
  (* Open (or create) the journal, replaying the valid prefix of an
     existing one into the accumulators. *)
  let start, writer, torn, duplicates =
    match journal with
    | None ->
      if resume then invalid_arg "campaign: resume requires a journal path";
      (0, None, None, 0)
    | Some path ->
      if resume then begin
        let r = Journal.replay ~path ~expect_hash:hash () in
        List.iter (feed acc) r.Journal.entries;
        Obs.Counter.add c_replayed r.Journal.next;
        Obs.Counter.add c_duplicates r.Journal.duplicates;
        (match r.Journal.torn with
        | Some reason ->
          Obs.Counter.incr
            (Obs.Counter.make ~obs
               ("campaign.journal.torn." ^ Robust_error.torn_label reason))
        | None -> ());
        let w = Journal.open_append ~path ~good_bytes:r.Journal.good_bytes in
        (r.Journal.next, Some w, r.Journal.torn, r.Journal.duplicates)
      end
      else (0, Some (Journal.create ~path ~spec_hash:hash), None, 0)
  in
  let evaluated = ref 0 in
  let unsynced = ref 0 in
  let checkpoint ~force w =
    if !unsynced > 0 && (force || !unsynced >= checkpoint_every) then begin
      let t0 = Obs.Timer.start t_checkpoint in
      Journal.sync w;
      Obs.Timer.stop t_checkpoint t0;
      unsynced := 0;
      (* Deterministic chaos hook (CI): die by SIGKILL exactly at a
         checkpoint boundary after [kill_after] records, so the torn
         state the resume leg sees is seeded, not racy. *)
      match kill_after with
      | Some n when !evaluated >= n -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ()
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close writer)
    (fun () ->
      for i = start to spec.samples - 1 do
        let s = sample_at spec i in
        let entry =
          match evaluate s with
          | m ->
            Journal.Done
              { index = i; delay = m.delay; edp = m.edp; snm = m.snm }
          | exception e when Montecarlo.quarantineable e ->
            Obs.Counter.incr c_quarantined;
            Journal.Quarantined { index = i; reason = quarantine_reason e }
        in
        feed acc entry;
        Obs.Counter.incr c_samples;
        incr evaluated;
        match writer with
        | Some w ->
          Journal.append w entry;
          Obs.Counter.incr c_records;
          incr unsynced;
          checkpoint ~force:(i = spec.samples - 1) w
        | None -> ()
      done);
  let report =
    {
      r_spec = spec;
      r_total = spec.samples;
      r_completed = acc.a_completed;
      r_quarantined = List.rev acc.a_quarantined;
      r_delay = Stream_stats.snapshot acc.a_delay;
      r_edp = Stream_stats.snapshot acc.a_edp;
      r_snm = Stream_stats.snapshot acc.a_snm;
    }
  in
  { report; resumed = start; evaluated = !evaluated; torn; duplicates }

let run ?(ctx = Ctx.default) ?executor ?journal ?resume ?checkpoint_every
    ?kill_after spec =
  let exec =
    match executor with Some e -> e | None -> local_executor ~ctx ()
  in
  run_with ~obs:ctx.Ctx.obs ?journal ?resume ?checkpoint_every ?kill_after
    ~evaluate:(evaluate_sample exec spec) spec

(* ------------------------------------------------------------------ *)
(* Status                                                              *)

type status = {
  st_spec_hash : int;
  st_recorded : int;
  st_completed : int;
  st_quarantined : int;
  st_duplicates : int;
  st_torn : Robust_error.torn_reason option;
  st_total : int option;
}

let status ~journal ?spec () =
  let expect_hash = Option.map spec_hash spec in
  let r = Journal.replay ~path:journal ?expect_hash () in
  let completed =
    List.fold_left
      (fun n e -> match e with Journal.Done _ -> n + 1 | _ -> n)
      0 r.Journal.entries
  in
  {
    st_spec_hash = Journal.spec_hash_of_file ~path:journal;
    st_recorded = r.Journal.next;
    st_completed = completed;
    st_quarantined = r.Journal.next - completed;
    st_duplicates = r.Journal.duplicates;
    st_torn = r.Journal.torn;
    st_total = Option.map (fun s -> s.samples) spec;
  }
