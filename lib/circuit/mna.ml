type state = float array

type waveform = { times : float array; voltages : float array array }

(* Compiled view of a netlist. *)
type compiled = {
  n_nodes : int;
  unknown_of : int array; (* node -> unknown index or -1 *)
  n_unknowns : int;
  sources : (int * (float -> float)) list;
  resistors : (int * int * float) list;
  linear_caps : (int * int * float) list;
  fets : (int * int * int * Fet_model.t) list;
}

let compile net =
  let n = Netlist.node_count net in
  let unknown_of = Array.make n (-1) in
  let count = ref 0 in
  for node = 1 to n - 1 do
    if not (Netlist.is_driven net node) then begin
      unknown_of.(node) <- !count;
      incr count
    end
  done;
  let resistors = ref [] and caps = ref [] and fets = ref [] in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { a; b; ohms } -> resistors := (a, b, ohms) :: !resistors
      | Netlist.Capacitor { a; b; farads } -> caps := (a, b, farads) :: !caps
      | Netlist.Fet { g; d; s; model } -> fets := (g, d, s, model) :: !fets)
    (Netlist.elements net);
  {
    n_nodes = n;
    unknown_of;
    n_unknowns = !count;
    sources = Netlist.driven net;
    resistors = !resistors;
    linear_caps = !caps;
    fets = !fets;
  }

(* Full node-voltage vector from the unknown vector at a given time;
   [vscale] scales the sources (source-stepping homotopy). *)
let expand ?(vscale = 1.) c x time =
  let v = Array.make c.n_nodes 0. in
  List.iter (fun (node, wave) -> v.(node) <- vscale *. wave time) c.sources;
  for node = 1 to c.n_nodes - 1 do
    let k = c.unknown_of.(node) in
    if k >= 0 then v.(node) <- x.(k)
  done;
  v

(* Capacitive branches with their companion-model state. *)
type cap_branch = {
  ca : int;
  cb : int;
  cvalue : float array -> float; (* capacitance as a function of node voltages *)
  mutable v_prev : float;
  mutable i_prev : float;
  mutable c_step : float; (* capacitance frozen at the start of the step *)
}

let cap_branches c =
  let of_linear (a, b, farads) =
    { ca = a; cb = b; cvalue = (fun _ -> farads); v_prev = 0.; i_prev = 0.; c_step = farads }
  in
  let of_fet (g, d, s, (m : Fet_model.t)) =
    let bias v = (v.(g) -. v.(s), v.(d) -. v.(s)) in
    [
      {
        ca = g;
        cb = s;
        cvalue = (fun v -> let vgs, vds = bias v in m.cgs ~vgs ~vds);
        v_prev = 0.;
        i_prev = 0.;
        c_step = 0.;
      };
      {
        ca = g;
        cb = d;
        cvalue = (fun v -> let vgs, vds = bias v in m.cgd ~vgs ~vds);
        v_prev = 0.;
        i_prev = 0.;
        c_step = 0.;
      };
    ]
  in
  List.map of_linear c.linear_caps @ List.concat_map of_fet c.fets

(* Newton assembly: residual f (KCL, currents leaving each unknown node)
   and Jacobian J. [dyn] carries the companion-model terms when in a
   transient step. *)
type dyn = { dt : float; branches : cap_branch list }

let fd_step = 1e-6

let assemble ?vscale c x time gmin dyn =
  let v = expand ?vscale c x time in
  let f = Array.make c.n_unknowns 0. in
  let j = Matrix.create (max 1 c.n_unknowns) (max 1 c.n_unknowns) in
  let add_current node i =
    let k = c.unknown_of.(node) in
    if k >= 0 then f.(k) <- f.(k) +. i
  in
  let add_conductance node other g =
    let k = c.unknown_of.(node) in
    if k >= 0 then begin
      Matrix.add_to j k k g;
      let k' = c.unknown_of.(other) in
      if k' >= 0 then Matrix.add_to j k k' (-.g)
    end
  in
  (* gmin to ground stabilizes floating regions during homotopy. *)
  if gmin > 0. then
    for node = 1 to c.n_nodes - 1 do
      let k = c.unknown_of.(node) in
      if k >= 0 then begin
        f.(k) <- f.(k) +. (gmin *. v.(node));
        Matrix.add_to j k k gmin
      end
    done;
  List.iter
    (fun (a, b, ohms) ->
      let g = 1. /. ohms in
      let i = g *. (v.(a) -. v.(b)) in
      add_current a i;
      add_current b (-.i);
      add_conductance a b g;
      add_conductance b a g)
    c.resistors;
  List.iter
    (fun (gn, dn, sn, (m : Fet_model.t)) ->
      let id vg vd vs = m.id ~vgs:(vg -. vs) ~vds:(vd -. vs) in
      let i0 = id v.(gn) v.(dn) v.(sn) in
      add_current dn i0;
      add_current sn (-.i0);
      (* Numeric partials of the drain current. *)
      let gg = (id (v.(gn) +. fd_step) v.(dn) v.(sn) -. i0) /. fd_step in
      let gd = (id v.(gn) (v.(dn) +. fd_step) v.(sn) -. i0) /. fd_step in
      let gs = (id v.(gn) v.(dn) (v.(sn) +. fd_step) -. i0) /. fd_step in
      let stamp_row node sign =
        let k = c.unknown_of.(node) in
        if k >= 0 then begin
          let put terminal gpart =
            let k' = c.unknown_of.(terminal) in
            if k' >= 0 then Matrix.add_to j k k' (sign *. gpart)
          in
          put gn gg;
          put dn gd;
          put sn gs
        end
      in
      stamp_row dn 1.;
      stamp_row sn (-1.))
    c.fets;
  (match dyn with
  | None -> ()
  | Some { dt; branches } ->
    List.iter
      (fun br ->
        let gc = 2. *. br.c_step /. dt in
        let vb = v.(br.ca) -. v.(br.cb) in
        (* Trapezoid companion: i = gc*(v - v_prev) - i_prev. *)
        let i = (gc *. (vb -. br.v_prev)) -. br.i_prev in
        add_current br.ca i;
        add_current br.cb (-.i);
        add_conductance br.ca br.cb gc;
        add_conductance br.cb br.ca gc)
      branches);
  (f, j)

let debug = Sys.getenv_opt "GNRFET_MNA_DEBUG" <> None

(* Circuit-level observability (docs/OBS.md).  Newton iterations are
   counted across all homotopy rungs, so iterations-per-dc-solve out of a
   snapshot reflects the true cost of hard bias points. *)
let obs_dc_solves = Obs.Counter.make "mna.dc_solves"
let obs_newton_iters = Obs.Counter.make "mna.newton_iterations"
let obs_transient_steps = Obs.Counter.make "mna.transient_steps"
let obs_transient_retries = Obs.Counter.make "mna.transient_retries"
let obs_gmin_retries = Obs.Counter.make "robust.mna.transient_gmin_retries"
let obs_dc_time = Obs.Timer.make "mna.solve_dc"

(* Fault-injection site (docs/ROBUST.md): an armed campaign can make a
   Newton solve report failure on entry — the same [None] the callers'
   escalation ladders (gmin stepping, source stepping, substep
   subdivision) already recover from.  Single branch when disarmed. *)
let fault_newton = Fault.site "mna.newton"

let has_nan a = Array.exists (fun v -> not (Float.is_finite v)) a

let residual_norm ?vscale c x time gmin dyn =
  let f, _ = assemble ?vscale c x time gmin dyn in
  Vec.norm_inf f

let newton ?(max_iter = 80) ?(v_limit = 0.3) ?vscale c x0 time gmin dyn =
  let x = ref (Array.copy x0) in
  if c.n_unknowns = 0 then Some !x
  else if Fault.should_fail fault_newton then None
  else begin
    let rec loop it =
      Obs.Counter.incr obs_newton_iters;
      let f, j = assemble ?vscale c !x time gmin dyn in
      let fnorm = Vec.norm_inf f in
      if Float.is_nan fnorm then begin
        if debug then Printf.eprintf "newton: NaN residual at it=%d t=%g\n%!" it time;
        None
      end
      else begin
        match Matrix.solve j (Array.map (fun v -> -.v) f) with
        | exception (Failure _ | Numerics_error.Singular _) ->
          if debug then
            Printf.eprintf "newton: singular J at it=%d fnorm=%g\n%!" it fnorm;
          None
        | dx when has_nan dx ->
          if debug then Printf.eprintf "newton: NaN step at it=%d\n%!" it;
          None
        | dx ->
          (* Voltage limiting keeps the exponential models in range... *)
          let step = Vec.norm_inf dx in
          let scale = if step > v_limit then v_limit /. step else 1. in
          (* ...and a backtracking line search keeps the residual from
             growing, which otherwise spirals near model kinks. *)
          let rec try_alpha alpha tries best =
            let trial =
              Array.mapi (fun k v -> v +. (alpha *. scale *. dx.(k))) !x
            in
            let fnew = residual_norm ?vscale c trial time gmin dyn in
            let best =
              match best with
              | Some (_, fb) when Float.is_nan fnew || fb <= fnew -> best
              | Some _ | None -> if Float.is_nan fnew then best else Some (trial, fnew)
            in
            if (Float.is_nan fnew || fnew > fnorm *. (1. +. 1e-9)) && tries < 10 then
              try_alpha (alpha /. 2.) (tries + 1) best
            else begin
              match best with Some (t, _) -> t | None -> trial
            end
          in
          x := try_alpha 1. 0 None;
          if step *. scale < 1e-9 && fnorm < 1e-12 then Some !x
          else if it >= max_iter then begin
            if fnorm < 1e-10 then Some !x
            else begin
              if debug then
                Printf.eprintf "newton: no convergence fnorm=%g step=%g\n%!" fnorm
                  (step *. scale);
              None
            end
          end
          else loop (it + 1)
      end
    in
    loop 0
  end

let solve_dc ?x0 ?(time = 0.) net =
  Obs.Counter.incr obs_dc_solves;
  let t_dc = Obs.Timer.start obs_dc_time in
  (* Stop on every path: the bad-x0 invalid_arg and the terminal
     Newton_failure must not leak the sample (gnrlint span-balance). *)
  Fun.protect ~finally:(fun () -> Obs.Timer.stop obs_dc_time t_dc) @@ fun () ->
  let c = compile net in
  let x0 =
    match x0 with
    | Some x when Array.length x = c.n_nodes ->
      (* Accept full node vectors for convenience. *)
      Array.init c.n_unknowns (fun _ -> 0.)
      |> fun u ->
      for node = 1 to c.n_nodes - 1 do
        let k = c.unknown_of.(node) in
        if k >= 0 then u.(k) <- x.(node)
      done;
      u
    | Some x when Array.length x = c.n_unknowns -> Array.copy x
    | Some _ -> invalid_arg "Mna.solve_dc: bad x0 length"
    | None -> Array.make c.n_unknowns 0.
  in
  let newton ?vscale c x0 time gmin dyn =
    newton ~max_iter:200 ~v_limit:0.15 ?vscale c x0 time gmin dyn
  in
  let result =
    match newton c x0 time 0. None with
    | Some x -> Some x
    | None ->
      (* gmin-stepping homotopy, tolerant of failed rungs: each rung warm
         starts from the best point so far, and a converged rung at
         gmin <= 1e-10 is acceptable as the answer (its stepping error is
         below gmin * VDD, i.e. sub-pA). *)
      let x = ref x0 and last_good = ref None in
      List.iter
        (fun g ->
          match newton c !x time g None with
          | Some x' ->
            x := x';
            if g <= 1e-10 then last_good := Some x'
          | None -> ())
        [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; 1e-12 ];
      (match newton c !x time 0. None with
      | Some _ as final -> final
      | None -> begin
        match !last_good with
        | Some _ as good -> good
        | None ->
          (* Adaptive source stepping: ramp the supplies up from zero,
             halving the ramp step on failure.  Tracking the solution
             continuously from the origin stays on the physical branch of
             the ambipolar devices, whose non-monotone I(V) gives plain
             Newton multiple basins. *)
          let x = ref (Array.make c.n_unknowns 0.) in
          let lambda = ref 0. and dl = ref 0.25 and stuck = ref false in
          while !lambda < 1. && not !stuck do
            let target = Float.min 1. (!lambda +. !dl) in
            (match newton ~vscale:target c !x time 1e-12 None with
            | Some x' ->
              x := x';
              lambda := target;
              dl := Float.min 0.25 (!dl *. 2.)
            | None ->
              dl := !dl /. 2.;
              if !dl < 1e-3 then stuck := true)
          done;
          if !stuck then None
          else begin
            match newton c !x time 0. None with
            | Some _ as final -> final
            | None -> newton c !x time 1e-12 None
          end
      end)
  in
  match result with
  | Some x -> expand c x time
  | None -> Robust_error.raise_ (Robust_error.Newton_failure { analysis = "dc"; time })

let transient ?x0 ?(dt_div = 4) net ~t_stop ~dt =
  if t_stop <= 0. || dt <= 0. then invalid_arg "Mna.transient: bad time range";
  let c = compile net in
  let v0 =
    match x0 with
    | Some v when Array.length v = c.n_nodes -> Array.copy v
    | Some _ -> invalid_arg "Mna.transient: x0 must be a full node vector"
    | None -> solve_dc ~time:0. net
  in
  let branches = cap_branches c in
  List.iter
    (fun br ->
      br.v_prev <- v0.(br.ca) -. v0.(br.cb);
      br.i_prev <- 0.)
    branches;
  (* Guard against a zero-width final step when t_stop is an exact
     multiple of dt (the companion conductance would blow up). *)
  let n_steps = max 1 (int_of_float (Float.ceil ((t_stop /. dt) -. 1e-9))) in
  let times =
    Array.init (n_steps + 1) (fun k ->
        if k = n_steps then t_stop else dt *. float_of_int k)
  in
  let voltages = Array.make (n_steps + 1) v0 in
  let x = ref (Array.init c.n_unknowns (fun _ -> 0.)) in
  for node = 1 to c.n_nodes - 1 do
    let k = c.unknown_of.(node) in
    if k >= 0 then !x.(k) <- v0.(node)
  done;
  let advance ?(gmin = 0.) x_in v_start t_next h =
    (* Freeze table capacitances at start-of-step bias. *)
    List.iter (fun br -> br.c_step <- Float.max 1e-21 (br.cvalue v_start)) branches;
    match newton c x_in t_next gmin (Some { dt = h; branches }) with
    | Some x' ->
      let v' = expand c x' t_next in
      List.iter
        (fun br ->
          let vb = v'.(br.ca) -. v'.(br.cb) in
          let gc = 2. *. br.c_step /. h in
          let i = (gc *. (vb -. br.v_prev)) -. br.i_prev in
          br.v_prev <- vb;
          br.i_prev <- i)
        branches;
      Some (x', v')
    | None -> None
  in
  (* Escalation ladder for a failed step (docs/ROBUST.md): subdivide into
     [dt_div] substeps, recursing one level deeper (dt/dt_div^2) when a
     substep fails in turn; at the bottom a still-failing substep gets a
     last attempt with a small stabilizing gmin before the typed error
     surfaces.  A step that succeeds outright (or after one level of
     substeps, the pre-ladder behavior) performs exactly the calls it
     always did, so healthy transients are bit-for-bit unchanged. *)
  let rec advance_robust ~depth x_in v_start ~t_prev ~t_next ~h =
    match advance x_in v_start t_next h with
    | Some _ as ok -> ok
    | None when depth >= 2 ->
      Obs.Counter.incr obs_gmin_retries;
      advance ~gmin:1e-9 x_in v_start t_next h
    | None ->
      Obs.Counter.incr obs_transient_retries;
      let hs = h /. float_of_int dt_div in
      let rec subs sub xs vs =
        if sub > dt_div then Some (xs, vs)
        else begin
          let t_sub_prev = t_prev +. (hs *. float_of_int (sub - 1)) in
          let t_sub = t_prev +. (hs *. float_of_int sub) in
          match
            advance_robust ~depth:(depth + 1) xs vs ~t_prev:t_sub_prev
              ~t_next:t_sub ~h:hs
          with
          | Some (x', v') -> subs (sub + 1) x' v'
          | None -> None
        end
      in
      subs 1 x_in v_start
  in
  for k = 1 to n_steps do
    Obs.Counter.incr obs_transient_steps;
    let t_prev = times.(k - 1) and t_next = times.(k) in
    let v_start = voltages.(k - 1) in
    match
      advance_robust ~depth:0 !x v_start ~t_prev ~t_next ~h:(t_next -. t_prev)
    with
    | Some (x', v') ->
      x := x';
      voltages.(k) <- v'
    | None ->
      Robust_error.raise_
        (Robust_error.Newton_failure { analysis = "transient"; time = t_next })
  done;
  { times; voltages }

let node_trace wf node = Array.map (fun v -> v.(node)) wf.voltages

let waveform_to_csv ?nodes wf =
  let n_nodes = if Array.length wf.voltages = 0 then 0 else Array.length wf.voltages.(0) in
  let nodes = match nodes with Some l -> l | None -> List.init n_nodes Fun.id in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "t";
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf ",v%d" n)) nodes;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun k t ->
      Buffer.add_string buf (Printf.sprintf "%.8g" t);
      List.iter
        (fun n -> Buffer.add_string buf (Printf.sprintf ",%.6g" wf.voltages.(k).(n)))
        nodes;
      Buffer.add_char buf '\n')
    wf.times;
  Buffer.contents buf

let static_current c node v =
  let acc = ref 0. in
  List.iter
    (fun (a, b, ohms) ->
      if a = node then acc := !acc +. ((v.(a) -. v.(b)) /. ohms)
      else if b = node then acc := !acc +. ((v.(b) -. v.(a)) /. ohms))
    c.resistors;
  List.iter
    (fun (g, d, s, (m : Fet_model.t)) ->
      let i = m.id ~vgs:(v.(g) -. v.(s)) ~vds:(v.(d) -. v.(s)) in
      if d = node then acc := !acc +. i
      else if s = node then acc := !acc -. i)
    c.fets;
  !acc

let dc_current net state node =
  let c = compile net in
  if not (List.mem_assoc node c.sources) then
    invalid_arg "Mna.dc_current: node is not driven";
  static_current c node state

let source_current net wf node =
  let c = compile net in
  if not (List.mem_assoc node c.sources) then
    invalid_arg "Mna.source_current: node is not driven";
  let nk = Array.length wf.times in
  let static v = static_current c node v in
  (* Displacement currents via central differences of the branch charge. *)
  let branches = cap_branches c in
  Array.init nk (fun k ->
      let v = wf.voltages.(k) in
      let i_static = static v in
      let i_disp =
        if k = 0 || k = nk - 1 then 0.
        else begin
          let dtc = wf.times.(k + 1) -. wf.times.(k - 1) in
          List.fold_left
            (fun acc br ->
              if br.ca = node || br.cb = node then begin
                let sign = if br.ca = node then 1. else -1. in
                let cap = br.cvalue v in
                let vb k' = wf.voltages.(k').(br.ca) -. wf.voltages.(k').(br.cb) in
                acc +. (sign *. cap *. (vb (k + 1) -. vb (k - 1)) /. dtc)
              end
              else acc)
            0. branches
        end
      in
      i_static +. i_disp)
