(** Nonlinear nodal analysis: Newton DC operating points and trapezoidal
    transient simulation over a {!Netlist}.

    Instrumented into {!Obs.global}: [mna.dc_solves] and the
    [mna.solve_dc] timer, [mna.newton_iterations] (summed across homotopy
    rungs), [mna.transient_steps] and [mna.transient_retries] (steps that
    fell back to [dt / dt_div] substeps).  See docs/OBS.md. *)

type state = float array
(** Node voltages indexed by node id (entry 0 is ground, always 0). *)

val solve_dc : ?x0:state -> ?time:float -> Netlist.t -> state
(** Newton solution of the static KCL equations with the sources evaluated
    at [time] (default 0).  Falls back to gmin stepping when plain Newton
    fails; raises [Robust_error.Error (Newton_failure {analysis = "dc"; _})]
    if every escalation rung fails (see docs/ROBUST.md). *)

type waveform = { times : float array; voltages : float array array }
(** [voltages.(k)] is the node-voltage vector at [times.(k)]. *)

val transient :
  ?x0:state ->
  ?dt_div:int ->
  Netlist.t ->
  t_stop:float ->
  dt:float ->
  waveform
(** Trapezoidal integration from the DC point at t=0 (or [x0]) to
    [t_stop] with nominal step [dt].  If a step's Newton fails the step is
    retried at [dt / dt_div] (default 4) internally, recursing one level
    deeper ([dt / dt_div^2]) on a failed substep and finally retrying the
    failing substep with a small stabilizing gmin; a step that fails the
    whole ladder raises [Robust_error.Error (Newton_failure {analysis =
    "transient"; time})] (see docs/ROBUST.md).  Capacitances of FET
    models are evaluated at the start-of-step voltages (standard
    table-model practice; see DESIGN.md). *)

val node_trace : waveform -> Netlist.node -> float array

val waveform_to_csv : ?nodes:Netlist.node list -> waveform -> string
(** CSV dump of a transient ("t,v0,v1,..." rows), optionally restricted to
    the listed nodes (header names follow node ids). *)

val dc_current : Netlist.t -> state -> Netlist.node -> float
(** Static current delivered into the circuit by the source driving
    [node], evaluated from a (converged) node-voltage vector. *)

val source_current :
  Netlist.t -> waveform -> Netlist.node -> float array
(** Current delivered by the voltage source driving [node] at each time
    point (positive out of the source into the circuit), reconstructed
    from the converged voltages: the static current plus the capacitive
    displacement current of the elements incident on the node. *)
