let obs_crossings = Obs.Counter.make "measure.crossings"

let crossings ~times ~values ~level ~rising =
  let n = Array.length times in
  if Array.length values <> n then invalid_arg "Measure.crossings: length mismatch";
  let out = ref [] in
  let found = ref 0 in
  for k = 0 to n - 2 do
    let a = values.(k) -. level and b = values.(k + 1) -. level in
    let crosses = if rising then a < 0. && b >= 0. else a > 0. && b <= 0. in
    if crosses && b <> a then begin
      let t = times.(k) +. ((times.(k + 1) -. times.(k)) *. (-.a /. (b -. a))) in
      incr found;
      out := t :: !out
    end
  done;
  Obs.Counter.add obs_crossings !found;
  List.rev !out

let delay_levels ~times ~input ~output ~in_level ~out_level ~input_rising =
  match crossings ~times ~values:input ~level:in_level ~rising:input_rising with
  | [] -> None
  | t_in :: _ -> begin
    let outs =
      crossings ~times ~values:output ~level:out_level ~rising:(not input_rising)
    in
    (* The response of a heavily skewed cell can cross its threshold
       slightly before the input does (a negative propagation delay), so
       pair the input edge with the *nearest* opposite-direction output
       crossing rather than the first later one. *)
    let best =
      List.fold_left
        (fun acc t ->
          match acc with
          | Some b when Float.abs (b -. t_in) <= Float.abs (t -. t_in) -> acc
          | Some _ | None -> Some t)
        None outs
    in
    match best with Some t_out -> Some (t_out -. t_in) | None -> None
  end

let delay_50 ~times ~input ~output ~vdd ~input_rising =
  let level = vdd /. 2. in
  delay_levels ~times ~input ~output ~in_level:level ~out_level:level ~input_rising

let period ~times ~values ~level =
  match crossings ~times ~values ~level ~rising:true with
  | _ :: _ :: _ :: _ as ts ->
    let rec gaps = function
      | a :: (b :: _ as tl) -> (b -. a) :: gaps tl
      | [ _ ] | [] -> []
    in
    let ds = Array.of_list (gaps ts) in
    Array.sort compare ds;
    Some ds.(Array.length ds / 2)
  | _ -> None

let average ~times ~values ~t_from =
  let n = Array.length times in
  if Array.length values <> n then invalid_arg "Measure.average: length mismatch";
  let acc = ref 0. and span = ref 0. in
  for k = 0 to n - 2 do
    if times.(k) >= t_from then begin
      let h = times.(k + 1) -. times.(k) in
      acc := !acc +. (0.5 *. h *. (values.(k) +. values.(k + 1)));
      span := !span +. h
    end
  done;
  if !span > 0. then !acc /. !span
  else if n > 0 then values.(n - 1)
  else invalid_arg "Measure.average: empty trace"

let energy ~times ~current ~volts ~t_from ~t_to =
  let n = Array.length times in
  if Array.length current <> n then invalid_arg "Measure.energy: length mismatch";
  let acc = ref 0. in
  for k = 0 to n - 2 do
    let t0 = times.(k) and t1 = times.(k + 1) in
    if t0 >= t_from && t1 <= t_to then
      acc := !acc +. (0.5 *. (t1 -. t0) *. (current.(k) +. current.(k + 1)) *. volts)
  done;
  !acc
