(** Self-consistent NEGF ↔ Poisson solution of the intrinsic GNRFET at one
    bias point.

    The mode-space NEGF solver (lib/negf) provides the channel charge for a
    given mid-gap potential profile; the 2D finite-volume Poisson solver
    (lib/poisson) provides the potential for a given charge; the loop is
    accelerated with Anderson mixing and supports warm starts from a
    neighbouring bias point (used heavily by the table sweeps). *)

type trace = {
  step : int;  (** SCF iteration index, 0-based *)
  update_norm : float;  (** max-norm potential update at this step, V *)
  mixing_factor : float;
      (** damping applied toward the next iterate: the Anderson/linear
          alpha, 0.25 after a stall restart, 0. on the terminal entry *)
  poisson_solves : int;  (** Poisson solves spent evaluating this step *)
  restarted : bool;  (** true on the step that triggered a stall restart *)
}
(** One entry of the per-iteration convergence trace.  The trace is part
    of the solver result (collected whether or not observability is
    enabled) and is derived purely from the deterministic iterates, so it
    is bit-for-bit identical sequential vs parallel — the golden-trace
    regression tests (test/test_golden_trace.ml) rely on this. *)

type status =
  | Converged  (** best update norm reached [tol] *)
  | Stalled
      (** the stall detector tripped (no 2 % residual improvement over
          the trailing window) and the run ended unconverged *)
  | Max_iter  (** the iteration cap interrupted a still-improving run *)
      (** Typed convergence verdict, so sweeps can react to an
          unconverged point instead of silently keeping the best
          iterate.  [Robust.Scf.solve_robust] escalates non-[Converged]
          points up a recovery ladder; see docs/ROBUST.md. *)

type solution = {
  vg : float;
  vd : float;
  potential : float array;  (** converged mid-gap profile u(x) per site, V *)
  current : float;  (** drain current of one GNR, A *)
  charge : float;  (** total net mobile channel charge, C (signed) *)
  site_charge : float array;  (** per-site net charge, C *)
  iterations : int;
  residual : float;  (** final max-norm potential update, V *)
  status : status;
  trace : trace list;
      (** chronological, [iterations + 1] entries (one per SCF step
          including the terminal one) *)
}

val site_positions : Params.t -> float array
(** Longitudinal positions of the mode-space chain sites, m. *)

val conduction_band_profile : Params.t -> solution -> float array
(** [u(x) + impurity shift + Eg/2] per site: the Fig 5(a) band profile. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?init:float array ->
  ?mixing:[ `Anderson | `Anderson_damped of float | `Linear of float ] ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  ?ctx:Ctx.t ->
  Params.t ->
  vg:float ->
  vd:float ->
  solution
(** Solve at (VG, VD).  [init] warm-starts the potential profile (its
    length must match the device discretization; a mismatch raises
    [Invalid_argument] rather than being silently discarded).  Default
    tolerance 1e-3 V, iteration cap 120 (a non-converged point returns the
    best iterate with [status <> Converged]; [residual] reports the
    achieved update so callers can assert convergence where it matters).
    [mixing] selects the fixed-point accelerator (default Anderson;
    [`Anderson_damped alpha] is Anderson restarted with heavier damping —
    the second escalation rung; [`Linear alpha] is the plain
    under-relaxation baseline used by the convergence ablation).
    [parallel] (default true) runs the per-energy NEGF loop across the
    domain pool; outer device-level fan-outs (table generation) pass
    [~parallel:false] so nesting does not oversubscribe the cores.  The
    solution is bit-for-bit identical either way (the energy reduction
    is deterministic; see docs/PERF.md).

    {b Observability.}  Each call runs inside an [scf.solve] span and
    bumps [scf.solves], [scf.iterations] (plus the iteration histogram),
    [scf.charge_evals] and [scf.poisson_solves] in [?obs] (default
    {!Obs.global}); the NEGF and Poisson layers underneath report their
    own metrics.  All no-ops while the registry is disabled; the
    {!trace} field is collected regardless.  See docs/OBS.md.

    {b Contexts.}  [?ctx:Ctx.t] bundles the [parallel]/[obs] knobs; an
    explicitly passed legacy label wins over the corresponding [ctx]
    field ({!Ctx.resolve}), and for fixed knob values the two entry
    styles are bit-for-bit identical (test/test_ctx.ml).  Prefer [?ctx]
    in new code; see docs/API.md. *)
