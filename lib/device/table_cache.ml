let cache_dir () =
  match Sys.getenv_opt "GNRFET_TABLE_DIR" with
  | Some d when d <> "" -> d
  | Some _ | None -> "_tables"

let memory : (string, Iv_table.t) Hashtbl.t = Hashtbl.create 32

let memory_mutex = Mutex.create ()

let clear_memory () =
  Mutex.protect memory_mutex (fun () -> Hashtbl.reset memory)

let full_key ?grid p =
  let g = match grid with Some g -> g | None -> Iv_table.default_grid in
  Params.cache_key p ^ "|"
  ^ Printf.sprintf "vg%g:%g:%d-vd%g:%d" g.Iv_table.vg_min g.vg_max g.n_vg
      g.vd_max g.n_vd

let path_of_key key =
  Filename.concat (cache_dir ()) (Digest.to_hex (Digest.string key) ^ ".table")

(* File format: marshaled (key, table) pair; the key is re-checked on load
   so hash collisions or format drift degrade to regeneration. *)
let load_file key =
  let path = path_of_key key in
  if Sys.file_exists path then begin
    try
      let ic = open_in_bin path in
      let result =
        try
          let stored_key, (table : Iv_table.t) =
            (Marshal.from_channel ic : string * Iv_table.t)
          in
          if String.equal stored_key key then Some table else None
        with Failure _ | End_of_file -> None
      in
      close_in ic;
      result
    with Sys_error _ -> None
  end
  else None

let store_file key table =
  let dir = cache_dir () in
  if not (Sys.file_exists dir) then (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = path_of_key key in
  try
    let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc (key, table) [];
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Hit/miss accounting (docs/OBS.md): every [lookup] resolves to exactly
   one of memory hit, disk hit or miss; [generates] counts cache-initiated
   table generations.  A fresh [get] therefore reads as one miss, one
   generate and (for later requests) memory hits only. *)
let lookup ?grid ?obs p =
  let key = full_key ?grid p in
  match Mutex.protect memory_mutex (fun () -> Hashtbl.find_opt memory key) with
  | Some t ->
    Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.memory_hits");
    Some t
  | None -> begin
    match load_file key with
    | Some t ->
      Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.disk_hits");
      Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
      Some t
    | None ->
      Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.misses");
      None
  end

let get ?grid ?obs p =
  let key = full_key ?grid p in
  match lookup ?grid ?obs p with
  | Some t -> t
  | None ->
    Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.generates");
    let t = Iv_table.generate ?grid ?obs p in
    Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
    store_file key t;
    t

let get_many ?grid ?obs ps =
  let missing =
    List.filter (fun p -> Option.is_none (lookup ?grid ?obs p)) ps
  in
  if missing <> [] then begin
    (* Persist each table as soon as it is generated so an interrupted
       batch keeps its completed work. *)
    let generate_and_store ~parallel p =
      let key = full_key ?grid p in
      Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.generates");
      let t = Iv_table.generate ?grid ~parallel ?obs p in
      Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
      store_file key t;
      ()
    in
    (* One missing device: let its energy loop use the whole pool.
       Several: parallelise across devices instead and force the inner
       energy loop sequential, so device x energy nesting does not
       oversubscribe the cores. *)
    if List.compare_length_with missing 1 > 0 && Parallel.num_domains () > 1
    then
      ignore
        (Parallel.map (generate_and_store ~parallel:false)
           (Array.of_list missing))
    else List.iter (generate_and_store ~parallel:true) missing
  end;
  List.map (fun p -> get ?grid ?obs p) ps
