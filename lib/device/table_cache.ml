let cache_dir () =
  match Sys.getenv_opt "GNRFET_TABLE_DIR" with
  | Some d when d <> "" -> d
  | Some _ | None -> "_tables"

let memory : (string, Iv_table.t) Hashtbl.t = Hashtbl.create 32

let memory_mutex = Mutex.create ()

let clear_memory () =
  Mutex.protect memory_mutex (fun () -> Hashtbl.reset memory)

(* The "v2|" prefix versions the on-disk format: Marshal is not
   type-safe, so any change to the Iv_table.t layout (PR 4 added
   [failed_points]) must make old files key-mismatch — the stored key is
   a plain string, safe to read and compare regardless of what the table
   half of the pair contains — and regenerate rather than be reinterpreted. *)
let full_key ?grid p =
  let g = match grid with Some g -> g | None -> Iv_table.default_grid in
  "v2|" ^ Params.cache_key p ^ "|"
  ^ Printf.sprintf "vg%g:%g:%d-vd%g:%d" g.Iv_table.vg_min g.vg_max g.n_vg
      g.vd_max g.n_vd

let key ?grid ?ctx p =
  let c = Ctx.resolve ?ctx ?grid () in
  full_key ?grid:c.Ctx.grid p

let path_of_key key =
  Filename.concat (cache_dir ()) (Digest.to_hex (Digest.string key) ^ ".table")

(* Fault-injection site (docs/ROBUST.md): an armed campaign fails the
   deserialization as a corrupt read, exercising the quarantine path. *)
let fault_read = Fault.site "table_cache.read"

(* A file that cannot be parsed is renamed to [<name>.corrupt] so it
   cannot poison every future run (and stays inspectable); if even the
   rename fails the load degrades to a plain miss. *)
let quarantine ?obs path reason =
  Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.corrupt_quarantined");
  if Sys.getenv_opt "GNRFET_TABLE_DEBUG" <> None then
    Printf.eprintf "table_cache: quarantining %s (%s)\n%!" path reason;
  match Sys.rename path (path ^ ".corrupt") with
  | () -> ()
  | exception Sys_error _ -> ()

(* File format: marshaled (key, table) pair; the key is re-checked on load
   so hash collisions or format drift degrade to regeneration.  Any
   parse/read failure — truncation, garbage bytes, Marshal version skew,
   I/O errors mid-read — quarantines the file and reads as a miss; the
   channel is closed on every path. *)
let load_file ?obs key =
  let path = path_of_key key in
  match open_in_bin path with
  | exception Sys_error _ -> None (* absent (the common case) or unreadable *)
  | ic -> (
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    match
      Fault.fail fault_read;
      (Marshal.from_channel ic : string * Iv_table.t)
    with
    | stored_key, table ->
      if String.equal stored_key key then Some table
      else None (* digest collision or key-format drift: stale, not corrupt *)
    | exception ((Failure _ | End_of_file | Sys_error _ | Invalid_argument _) as e)
      ->
      quarantine ?obs path (Printexc.to_string e);
      None
    | exception Fault.Injected { site; hit } ->
      quarantine ?obs path (Printf.sprintf "injected fault (%s hit %d)" site hit);
      None)

(* Writes are atomic (tmp + rename) and best-effort — a cache store
   failure must never kill the computation that produced the table — but
   never silent: every failed store counts in [table_cache.store_failures]. *)
let store_file ?obs key table =
  let store_failed () =
    Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.store_failures")
  in
  let dir = cache_dir () in
  if not (Sys.file_exists dir) then begin
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _ ->
      (* Lost a mkdir race, or the parent is unwritable; the latter
         surfaces as a store failure at open below. *)
      ()
  end;
  let path = path_of_key key in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let cleanup () =
    match Sys.remove tmp with () -> () | exception Sys_error _ -> ()
  in
  match open_out_bin tmp with
  | exception Sys_error _ -> store_failed ()
  | oc -> (
    match
      Marshal.to_channel oc (key, table) [];
      close_out oc
    with
    | () -> (
      match Sys.rename tmp path with
      | () -> ()
      | exception Sys_error _ ->
        store_failed ();
        cleanup ())
    | exception (Sys_error _ | Failure _) ->
      close_out_noerr oc;
      store_failed ();
      cleanup ())

(* Hit/miss accounting (docs/OBS.md): every [lookup] resolves to exactly
   one of memory hit, disk hit or miss; [generates] counts cache-initiated
   table generations.  A fresh [get] therefore reads as one miss, one
   generate and (for later requests) memory hits only. *)
let lookup ?grid ?obs ?ctx p =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  let obs = c.Ctx.obs in
  let key = full_key ?grid:c.Ctx.grid p in
  match Mutex.protect memory_mutex (fun () -> Hashtbl.find_opt memory key) with
  | Some t ->
    Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.memory_hits");
    Some t
  | None -> begin
    match load_file ~obs key with
    | Some t ->
      Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.disk_hits");
      Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
      Some t
    | None ->
      Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.misses");
      None
  end

let get ?grid ?obs ?ctx p =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  let obs = c.Ctx.obs in
  let key = full_key ?grid:c.Ctx.grid p in
  match lookup ~ctx:c p with
  | Some t -> t
  | None ->
    Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.generates");
    let t = Iv_table.generate ~ctx:c p in
    Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
    store_file ~obs key t;
    t

let get_many ?grid ?obs ?ctx ps =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  let obs = c.Ctx.obs in
  let missing = List.filter (fun p -> Option.is_none (lookup ~ctx:c p)) ps in
  (* A batch may name the same device twice (duplicate Params in the
     request list): generate each unique key exactly once, counting the
     dropped duplicates in [table_cache.deduped].  Output order is
     preserved by the final per-request [get] pass (duplicates resolve
     to memory hits). *)
  let missing =
    let seen = Hashtbl.create 16 in
    let c_deduped = Obs.Counter.make ~obs "table_cache.deduped" in
    List.filter
      (fun p ->
        let k = full_key ?grid:c.Ctx.grid p in
        if Hashtbl.mem seen k then begin
          Obs.Counter.incr c_deduped;
          false
        end
        else begin
          Hashtbl.add seen k ();
          true
        end)
      missing
  in
  if missing <> [] then begin
    (* Persist each table as soon as it is generated so an interrupted
       batch keeps its completed work. *)
    let generate_and_store ctx p =
      let key = full_key ?grid:ctx.Ctx.grid p in
      Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.generates");
      let t = Iv_table.generate ~ctx p in
      Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
      store_file ~obs key t;
      ()
    in
    (* One missing device: let its energy loop use the whole pool.
       Several: parallelise across devices instead and force the inner
       energy loop sequential, so device x energy nesting does not
       oversubscribe the cores. *)
    if
      List.compare_length_with missing 1 > 0
      && c.Ctx.parallel
      && Parallel.num_domains () > 1
    then
      ignore
        (Parallel.map (generate_and_store (Ctx.sequential c))
           (Array.of_list missing))
    else List.iter (generate_and_store c) missing
  end;
  List.map (fun p -> get ~ctx:c p) ps
