let cache_dir () =
  match Sys.getenv_opt "GNRFET_TABLE_DIR" with
  | Some d when d <> "" -> d
  | Some _ | None -> "_tables"

let memory : (string, Iv_table.t) Hashtbl.t = Hashtbl.create 32

let memory_mutex = Mutex.create ()

let clear_memory () =
  Mutex.protect memory_mutex (fun () -> Hashtbl.reset memory)

(* The "v2|" prefix versions the *logical* key contents (PR 4 added
   [failed_points]); the on-disk byte layout is versioned separately by
   the gnrtbl header (Tbl_format.version), so a gnrtbl layout bump
   retires files via Bad_version instead of a key change.  Legacy
   Marshal files were stored under the same v2 keys, which is what lets
   the fallback reader below still accept them. *)
let full_key ?grid p =
  let g = match grid with Some g -> g | None -> Iv_table.default_grid in
  "v2|" ^ Params.cache_key p ^ "|"
  ^ Printf.sprintf "vg%g:%g:%d-vd%g:%d" g.Iv_table.vg_min g.vg_max g.n_vg
      g.vd_max g.n_vd

let key ?grid ?ctx p =
  let c = Ctx.resolve ?ctx ?grid () in
  full_key ?grid:c.Ctx.grid p

(* New tables are written as [<digest>.gnrtbl] (Tbl_format,
   docs/FORMAT.md); [<digest>.table] is the pre-PR 8 Marshal layout,
   still readable for one release so a deployed cache is not orphaned
   by the upgrade. *)
let gnrtbl_path key =
  Filename.concat (cache_dir ()) (Digest.to_hex (Digest.string key) ^ ".gnrtbl")

let legacy_path key =
  Filename.concat (cache_dir ()) (Digest.to_hex (Digest.string key) ^ ".table")

(* Fault-injection site (docs/ROBUST.md): an armed campaign fails the
   read — gnrtbl and legacy alike — as a corrupt file, exercising the
   quarantine path. *)
let fault_read = Fault.site "table_cache.read"

type disk_outcome =
  | Table of Iv_table.t
  | Legacy of Iv_table.t
  | Absent
  | Stale
  | Corrupt of Robust_error.corrupt_reason

(* A file that fails validation is renamed to [<name>.corrupt] so it
   cannot poison every future run (and stays inspectable).  The rename
   itself runs inside a degraded read path, so its failure (read-only
   cache directory) must never raise: it is counted in
   [table_cache.quarantine_failed] and the lookup still degrades to a
   miss. *)
let quarantine ?obs path reason =
  Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.corrupt_quarantined");
  Obs.Counter.incr
    (Obs.Counter.make ?obs
       ("table_cache.corrupt." ^ Robust_error.corrupt_label reason));
  if Sys.getenv_opt "GNRFET_TABLE_DEBUG" <> None then
    Printf.eprintf "table_cache: quarantining %s (%s)\n%!" path
      (Robust_error.corrupt_reason_to_string reason);
  match Sys.rename path (path ^ ".corrupt") with
  | () -> ()
  | exception Sys_error _ ->
    Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.quarantine_failed")

let injected_reason site hit =
  Robust_error.Undecodable
    { detail = Printf.sprintf "injected fault (%s hit %d)" site hit }

(* Legacy-Marshal fallback reader: marshaled (key, table) pair.  Marshal
   cannot be validated without being parsed, so the only corruption
   attribution possible here is [Undecodable]; the channel is closed on
   every path. *)
let load_legacy ?obs key =
  let path = legacy_path key in
  match open_in_bin path with
  | exception Sys_error _ -> Absent (* absent (the common case) or unreadable *)
  | ic -> (
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    match
      Fault.fail fault_read;
      (Marshal.from_channel ic : string * Iv_table.t)
    with
    | stored_key, table ->
      if String.equal stored_key key then Legacy table
      else Stale (* digest collision or key-format drift: not corrupt *)
    | exception ((Failure _ | End_of_file | Sys_error _ | Invalid_argument _) as e)
      ->
      let reason = Robust_error.Undecodable { detail = Printexc.to_string e } in
      quarantine ?obs path reason;
      Corrupt reason
    | exception Fault.Injected { site; hit } ->
      let reason = injected_reason site hit in
      quarantine ?obs path reason;
      Corrupt reason)

(* gnrtbl read path: map, checksum-validate, convert.  Tbl_format does
   the mapping and raises checksum-precise [Cache_corrupt] reasons;
   everything else this function can observe is absence (fall through
   to the legacy reader) or an unreadable file (degrades to a miss, as
   the legacy open failure always has). *)
let probe_key ?obs key =
  let path = gnrtbl_path key in
  if not (Sys.file_exists path) then load_legacy ?obs key
  else
    match
      Fault.fail fault_read;
      Tbl_format.read ~path
    with
    | view ->
      if String.equal view.Tbl_format.v_cache_key key then
        Table (Tbl_format.to_table view)
      else Stale
    | exception Robust_error.Error (Robust_error.Cache_corrupt { reason; _ }) ->
      quarantine ?obs path reason;
      Corrupt reason
    | exception Fault.Injected { site; hit } ->
      let reason = injected_reason site hit in
      quarantine ?obs path reason;
      Corrupt reason
    | exception (Unix.Unix_error _ | Sys_error _) ->
      Absent (* raced deletion or unreadable: a plain miss, not corrupt *)

let probe_disk ?grid ?obs ?ctx p =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  probe_key ~obs:c.Ctx.obs (full_key ?grid:c.Ctx.grid p)

(* Writes are atomic (tmp + rename) and best-effort — a cache store
   failure must never kill the computation that produced the table — but
   never silent: every failed store counts in [table_cache.store_failures]. *)
let store_file ?obs key table =
  let store_failed () =
    Obs.Counter.incr (Obs.Counter.make ?obs "table_cache.store_failures")
  in
  let dir = cache_dir () in
  if not (Sys.file_exists dir) then begin
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _ ->
      (* Lost a mkdir race, or the parent is unwritable; the latter
         surfaces as a store failure at open below. *)
      ()
  end;
  let path = gnrtbl_path key in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let cleanup () =
    match Sys.remove tmp with () -> () | exception Sys_error _ -> ()
  in
  match open_out_bin tmp with
  | exception Sys_error _ -> store_failed ()
  | oc -> (
    match
      output_string oc (Tbl_format.encode ~cache_key:key table);
      close_out oc
    with
    | () -> (
      match Sys.rename tmp path with
      | () -> ()
      | exception Sys_error _ ->
        store_failed ();
        cleanup ())
    | exception (Sys_error _ | Failure _ | Invalid_argument _) ->
      close_out_noerr oc;
      store_failed ();
      cleanup ())

(* Hit/miss accounting (docs/OBS.md): every [lookup] resolves to exactly
   one of memory hit, disk hit or miss; a disk hit served by the mapped
   gnrtbl path additionally counts [table_cache.mmap_hits], and
   [generates] counts cache-initiated table generations. *)
let lookup ?grid ?obs ?ctx p =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  let obs = c.Ctx.obs in
  let key = full_key ?grid:c.Ctx.grid p in
  match Mutex.protect memory_mutex (fun () -> Hashtbl.find_opt memory key) with
  | Some t ->
    Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.memory_hits");
    Some t
  | None -> begin
    match probe_key ~obs key with
    | (Table t | Legacy t) as outcome ->
      Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.disk_hits");
      (match outcome with
      | Table _ ->
        Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.mmap_hits")
      | _ -> ());
      Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
      Some t
    | Absent | Stale | Corrupt _ ->
      Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.misses");
      None
  end

let get ?grid ?obs ?ctx p =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  let obs = c.Ctx.obs in
  let key = full_key ?grid:c.Ctx.grid p in
  match lookup ~ctx:c p with
  | Some t -> t
  | None ->
    Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.generates");
    let t = Iv_table.generate ~ctx:c p in
    Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
    store_file ~obs key t;
    t

let get_many ?grid ?obs ?ctx ps =
  let c = Ctx.resolve ?ctx ?obs ?grid () in
  let obs = c.Ctx.obs in
  let missing = List.filter (fun p -> Option.is_none (lookup ~ctx:c p)) ps in
  (* A batch may name the same device twice (duplicate Params in the
     request list): generate each unique key exactly once, counting the
     dropped duplicates in [table_cache.deduped].  Output order is
     preserved by the final per-request [get] pass (duplicates resolve
     to memory hits). *)
  let missing =
    let seen = Hashtbl.create 16 in
    let c_deduped = Obs.Counter.make ~obs "table_cache.deduped" in
    List.filter
      (fun p ->
        let k = full_key ?grid:c.Ctx.grid p in
        if Hashtbl.mem seen k then begin
          Obs.Counter.incr c_deduped;
          false
        end
        else begin
          Hashtbl.add seen k ();
          true
        end)
      missing
  in
  if missing <> [] then begin
    (* Persist each table as soon as it is generated so an interrupted
       batch keeps its completed work. *)
    let generate_and_store ctx p =
      let key = full_key ?grid:ctx.Ctx.grid p in
      Obs.Counter.incr (Obs.Counter.make ~obs "table_cache.generates");
      let t = Iv_table.generate ~ctx p in
      Mutex.protect memory_mutex (fun () -> Hashtbl.replace memory key t);
      store_file ~obs key t;
      ()
    in
    (* One missing device: let its energy loop use the whole pool.
       Several: parallelise across devices instead and force the inner
       energy loop sequential, so device x energy nesting does not
       oversubscribe the cores. *)
    if
      List.compare_length_with missing 1 > 0
      && c.Ctx.parallel
      && Parallel.num_domains () > 1
    then
      ignore
        (Parallel.map (generate_and_store (Ctx.sequential c))
           (Array.of_list missing))
    else List.iter (generate_and_store c) missing
  end;
  List.map (fun p -> get ~ctx:c p) ps
