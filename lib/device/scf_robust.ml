type rung = Anderson | Damped_restart | Linear_slow | Neighbor_continuation

type attempt = {
  rung : rung;
  status : Scf.status option;
  iterations : int;
  residual : float;
  error : string option;
}

type outcome = {
  solution : Scf.solution option;
  attempts : attempt list;
  recovered : bool;
}

(* Matches the Scf.solve default; the slow-linear rungs scale it. *)
let default_max_iter = 120

let solve_robust ?tol ?max_iter ?init ?neighbor ?parallel ?obs ?ctx p ~vg
    ~vd =
  (* The ladder's own counters need a resolved registry; the rung calls
     below forward ?parallel/?obs/?ctx unresolved so Scf.solve applies
     the exact same Ctx.resolve a direct caller would get. *)
  let robs = (Ctx.resolve ?ctx ?parallel ?obs ()).Ctx.obs in
  let c_retries = Obs.Counter.make ~obs:robs "robust.scf.retries" in
  let c_escalations = Obs.Counter.make ~obs:robs "robust.scf.escalations" in
  let c_recovered = Obs.Counter.make ~obs:robs "robust.scf.recovered" in
  let c_unrecovered = Obs.Counter.make ~obs:robs "robust.scf.unrecovered" in
  let budget = 3 * Option.value max_iter ~default:default_max_iter in
  (* Rung 1 must be the exact call a direct Scf.solve user would make:
     optional arguments pass through unresolved so Scf's own defaults
     apply and a converging point is bit-for-bit unchanged by the
     wrapper. *)
  let rungs =
    [
      ( Anderson,
        fun ~warm ->
          Scf.solve ?tol ?max_iter ?init:warm ?parallel ?obs ?ctx p ~vg ~vd );
      ( Damped_restart,
        fun ~warm ->
          Scf.solve ?tol ?max_iter ?init:warm
            ~mixing:(`Anderson_damped 0.2) ?parallel ?obs ?ctx p ~vg ~vd );
      ( Linear_slow,
        fun ~warm ->
          Scf.solve ?tol ~max_iter:budget ?init:warm ~mixing:(`Linear 0.1)
            ?parallel ?obs ?ctx p ~vg ~vd );
    ]
    @
    match neighbor with
    | None -> []
    | Some nb ->
      [
        ( Neighbor_continuation,
          fun ~warm:_ ->
            Scf.solve ?tol ~max_iter:budget ~init:nb ~mixing:(`Linear 0.1)
              ?parallel ?obs ?ctx p ~vg ~vd );
      ]
  in
  let best = ref None in
  let consider (s : Scf.solution) =
    match !best with
    | Some (b : Scf.solution) when b.residual <= s.residual -> ()
    | Some _ | None -> best := Some s
  in
  let rec climb rungs attempts =
    match rungs with
    | [] -> List.rev attempts
    | (rung, run) :: rest ->
      if attempts <> [] then begin
        Obs.Counter.incr c_retries;
        if List.length attempts = 1 then Obs.Counter.incr c_escalations
      end;
      (* Warm-start every rung after the first from the best iterate so
         far (falling back to the caller's init when every prior attempt
         raised before producing one). *)
      let warm =
        if attempts = [] then init
        else
          match !best with
          | Some (s : Scf.solution) -> Some s.Scf.potential
          | None -> init
      in
      let a, converged =
        match run ~warm with
        | (s : Scf.solution) ->
          consider s;
          ( {
              rung;
              status = Some s.status;
              iterations = s.iterations;
              residual = s.residual;
              error = None;
            },
            s.status = Scf.Converged )
        | exception ((Fault.Injected _ | Sparse.No_convergence _ | Failure _
                     | Numerics_error.Singular _ | Numerics_error.Stalled _)
                     as e) ->
          ( {
              rung;
              status = None;
              iterations = 0;
              residual = infinity;
              error = Some (Printexc.to_string e);
            },
            false )
      in
      let attempts = a :: attempts in
      if converged then List.rev attempts else climb rest attempts
  in
  let attempts = climb rungs [] in
  let converged =
    match !best with
    | Some (s : Scf.solution) -> s.status = Scf.Converged
    | None -> false
  in
  let recovered = converged && List.length attempts > 1 in
  if recovered then Obs.Counter.incr c_recovered;
  if not converged then Obs.Counter.incr c_unrecovered;
  { solution = !best; attempts; recovered }

let error_of_outcome = function
  | { solution = Some s; _ } when s.Scf.status = Scf.Converged -> None
  | { solution = Some s; _ } ->
    let payload =
      match s.Scf.status with
      | Scf.Stalled ->
        Robust_error.Scf_stalled
          {
            vg = s.Scf.vg;
            vd = s.Scf.vd;
            iterations = s.Scf.iterations;
            residual = s.Scf.residual;
          }
      | Scf.Max_iter | Scf.Converged ->
        Robust_error.Scf_max_iter
          {
            vg = s.Scf.vg;
            vd = s.Scf.vd;
            iterations = s.Scf.iterations;
            residual = s.Scf.residual;
          }
    in
    Some payload
  | { solution = None; attempts; _ } ->
    let detail =
      match List.rev attempts with
      | { error = Some e; _ } :: _ -> e
      | _ -> "no attempt ran"
    in
    Some
      (Robust_error.Unrecovered
         { stage = "scf"; attempts = List.length attempts; detail })
