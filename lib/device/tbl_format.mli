(** [gnrtbl] — the versioned, checksummed, mmap-able binary columnar
    on-disk layout for {!Iv_table.t} (format spec: docs/FORMAT.md).

    The Marshal layout it replaces had to be deserialized eagerly and
    could only be validated by parsing it, which forced the cache to
    treat {e any} read failure as corruption.  A [gnrtbl] file instead
    carries a fixed little-endian header (magic [GNRTBL], format
    version, key strings, column counts and offsets), raw float64
    column planes at 8-byte-aligned offsets, and a CRC-32C per section —
    so a server {e maps} a cached I–V table and validates it with a
    checksum pass, no parse, no per-element allocation.

    {b Reading} ({!read}) maps the file ([Unix.map_file]) and returns a
    {!view}: zero-copy float64 Bigarray windows onto the mapped columns
    plus the decoded header.  {!to_table} converts a view back to the
    array-of-records {!Iv_table.t} losslessly (bit-for-bit, including
    NaN payloads, signed zeros and subnormals) for callers that need
    the existing representation.

    {b Validation} is total and typed: every malformed input raises
    [Robust_error.Error (Cache_corrupt {path; reason})] with a
    checksum-precise {!Robust_error.corrupt_reason} — never [Failure],
    never a crash, never a silently wrong table.  The validation order
    (checked first wins) is part of the format contract and is what the
    corruption-matrix fuzz harness asserts against:

    + file shorter than the fixed header → [Truncated]
    + wrong magic → [Bad_magic]
    + wrong version → [Bad_version]
    + file shorter than header + its CRC field → [Truncated]
    + header CRC (covers the fixed fields and both padded key strings)
      → [Crc_mismatch {section = "header"}]
    + file length ≠ the header's [total_len] → [Truncated]
    + per-column CRC → [Crc_mismatch {section = "vg"|"vd"|"current"|"charge"}]
    + failed-points CRC → [Crc_mismatch {section = "failed_points"}]

    Every byte of a well-formed file is covered by exactly one CRC
    (string padding and CRC-field high words are zero {e by
    definition} and checked), so any single-bit flip is detected and
    attributed to its section. *)

type farray = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A zero-copy float64 window onto a mapped column plane. *)

type view = {
  v_version : int;  (** format version of the file (currently 1) *)
  v_cache_key : string;
      (** the full {!Table_cache.key} the table was stored under;
          compared on load so stale files degrade to a miss *)
  v_table_key : string;  (** the table's own [Iv_table.t.key] *)
  v_n_vg : int;
  v_n_vd : int;
  v_vg : farray;  (** gate-bias grid, length [n_vg] *)
  v_vd : farray;  (** drain-bias grid, length [n_vd] *)
  v_current : farray;
      (** row-major plane, length [n_vg * n_vd]: element [(ivg, ivd)]
          at index [ivg * n_vd + ivd] *)
  v_charge : farray;  (** same shape as [v_current] *)
  v_failed_points : (int * int) list;
      (** decoded eagerly (tiny, usually empty) *)
}
(** A validated table, backed by the mapped file ({!read}) or by fresh
    Bigarrays ({!decode}).  Mapped views stay valid after {!read}
    returns (the mapping outlives the closed file descriptor); the
    pages are shared read-only with the page cache. *)

val version : int
(** Format version this module writes (1). *)

val magic : string
(** The 6-byte magic, ["GNRTBL"]. *)

module Layout : sig
  (** Byte layout of a version-1 file, derived from the header
      quantities.  Exposed so tests (golden fixtures, the fuzz
      harness's mutation oracle) and docs compute section boundaries
      from one audited source.  All offsets are 8-byte aligned; every
      section is its data bytes immediately followed by an 8-byte CRC
      field (little-endian u32 CRC-32C, then a u32 that must be 0). *)

  type t = {
    ckl : int;  (** cache-key length (unpadded) *)
    tkl : int;  (** table-key length (unpadded) *)
    n_vg : int;
    n_vd : int;
    n_failed : int;
    hdr_end : int;
        (** header data is bytes [0, hdr_end); its CRC field sits at
            [hdr_end] *)
    col_off : int array;
        (** data offsets of the vg / vd / current / charge planes *)
    col_len : int array;  (** data byte lengths of the four planes *)
    failed_off : int;  (** data offset of the failed-points pairs *)
    failed_len : int;  (** [8 * n_failed] *)
    total : int;  (** total file size, also stored in the header *)
  }

  val make :
    cache_key:string -> table_key:string -> n_vg:int -> n_vd:int ->
    n_failed:int -> t

  val fixed_header_size : int
  (** Bytes before the (padded) key strings: 80. *)

  val min_file_size : int
  (** Smallest well-formed file (empty keys, before the size check
      against the header's own totals): 88. *)
end

val encode : cache_key:string -> Iv_table.t -> string
(** Serialize to the exact byte string {!write} puts on disk
    (deterministic; the golden-fixture tests assert byte equality).
    @raise Invalid_argument if the table is ragged ([current]/[charge]
    rows not all of length [Array.length vd]). *)

val write : path:string -> cache_key:string -> Iv_table.t -> unit
(** [encode] to a file (plain create-and-write; {!Table_cache} owns
    tmp-file + rename atomicity).  @raise Sys_error on I/O failure. *)

val read : path:string -> view
(** Map the file and validate every section checksum; zero-copy.
    @raise Robust_error.Error with [Cache_corrupt {path; reason}] on
    any malformed content (see the validation order above).
    @raise Unix.Unix_error when the file cannot be opened or mapped
    (absent, permissions) — absence is not corruption. *)

val decode : ?path:string -> string -> view
(** Validate and decode from bytes in memory (tests, tools); the
    returned view copies the columns into fresh Bigarrays.  Same typed
    errors as {!read}, with [path] (default ["<bytes>"]) reported in
    the [Cache_corrupt]. *)

val to_table : view -> Iv_table.t
(** Lossless conversion to the array-of-records representation: every
    float is reproduced bit-for-bit; [failed_points] round-trips
    exactly. *)
