/* CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78)
   over strings and mapped byte Bigarrays, for the gnrtbl on-disk table
   format (docs/FORMAT.md).

   The whole point of the format is that a disk hit is a checksum pass,
   not a parse, so the checksum pass must not become the new parse: on
   x86-64 with SSE4.2 (any CPU since ~2008; the -march=native build
   flag exposes it) each section is checksummed with the hardware
   `crc32` instruction, three independent 1 KB lanes interleaved to
   cover the instruction's 3-cycle latency and recombined with a
   precomputed GF(2) shift operator (the zlib crc32_combine
   construction, derived at init time from the polynomial itself — no
   magic fold constants) — an order of magnitude faster than Marshal
   can deserialize the same bytes.  Elsewhere a hand-rolled
   table-driven implementation ("slicing by 8", eight 256-entry
   tables) takes over; same checksum, same file bytes, no dependencies
   beyond the OCaml runtime headers.  Same foreign-stub arrangement as
   lib/numerics/zdense_stubs.c.

   Both entry points are [@@noalloc]: they return the CRC as a tagged
   immediate (fits easily in OCaml's 63-bit int) and never touch the
   OCaml heap. */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <stddef.h>
#include <stdint.h>
#include <string.h>

#define CRC32C_POLY_REFLECTED 0x82F63B78u

/* ------------------------------------------------------------------ */
/* Portable fallback: slicing-by-8                                     */

static uint32_t crc_tab[8][256];
static volatile int crc_tab_ready = 0;

/* Idempotent: concurrent first calls write identical values. */
static void crc_tab_init(void)
{
  int i, j, k;
  for (i = 0; i < 256; i++) {
    uint32_t c = (uint32_t)i;
    for (j = 0; j < 8; j++)
      c = (c & 1) ? CRC32C_POLY_REFLECTED ^ (c >> 1) : c >> 1;
    crc_tab[0][i] = c;
  }
  for (k = 1; k < 8; k++)
    for (i = 0; i < 256; i++)
      crc_tab[k][i] =
          crc_tab[0][crc_tab[k - 1][i] & 0xFFu] ^ (crc_tab[k - 1][i] >> 8);
  crc_tab_ready = 1;
}

static uint32_t crc32c_sw(uint32_t crc, const unsigned char *p, size_t len)
{
  if (!crc_tab_ready) crc_tab_init();
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
  while (len >= 8) {
    uint64_t w;
    memcpy(&w, p, 8);
    w ^= (uint64_t)crc;
    crc = crc_tab[7][w & 0xFFu] ^ crc_tab[6][(w >> 8) & 0xFFu]
        ^ crc_tab[5][(w >> 16) & 0xFFu] ^ crc_tab[4][(w >> 24) & 0xFFu]
        ^ crc_tab[3][(w >> 32) & 0xFFu] ^ crc_tab[2][(w >> 40) & 0xFFu]
        ^ crc_tab[1][(w >> 48) & 0xFFu] ^ crc_tab[0][(w >> 56) & 0xFFu];
    p += 8;
    len -= 8;
  }
#endif
  while (len--) crc = crc_tab[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return crc;
}

/* ------------------------------------------------------------------ */
/* x86-64 SSE4.2 fast path                                             */

#if defined(__SSE4_2__) && defined(__x86_64__)
#define GNRFET_CRC32C_HW 1
#include <nmmintrin.h>

/* Three-way interleave over 3 x 1024-byte lanes per round, recombined
   by applying the linear operator "advance this CRC past N zero
   bytes" to the first two lane CRCs.  The operator is a 32x32 GF(2)
   matrix (one uint32_t column per input bit) derived once from the
   byte-step recurrence by repeated squaring — zlib's crc32_combine
   construction — so there are no hand-copied fold constants to get
   wrong. */
#define CRC32C_LANE 1024

static uint32_t crc_shift_lane[32];  /* advance by CRC32C_LANE zero bytes */
static uint32_t crc_shift_lane2[32]; /* advance by 2*CRC32C_LANE */
static volatile int crc_shift_ready = 0;

static uint32_t gf2_times(const uint32_t *mat, uint32_t vec)
{
  uint32_t sum = 0;
  int i = 0;
  while (vec) {
    if (vec & 1) sum ^= mat[i];
    vec >>= 1;
    i++;
  }
  return sum;
}

static void gf2_square(uint32_t *sq, const uint32_t *mat)
{
  int i;
  for (i = 0; i < 32; i++) sq[i] = gf2_times(mat, mat[i]);
}

/* Idempotent, like crc_tab_init: concurrent first calls write
   identical values. */
static void crc_shift_init(void)
{
  uint32_t byte_op[32], tmp[32];
  int i, k;
  if (!crc_tab_ready) crc_tab_init();
  /* One zero byte: crc' = (crc >> 8) ^ tab[crc & 0xff], column-wise. */
  for (i = 0; i < 32; i++)
    byte_op[i] = (((uint32_t)1 << i) >> 8) ^ crc_tab[0][(((uint32_t)1 << i) & 0xFFu)];
  /* CRC32C_LANE = 2^10 bytes: square the byte operator 10 times. */
  memcpy(tmp, byte_op, sizeof tmp);
  for (k = 0; k < 10; k++) {
    gf2_square(crc_shift_lane, tmp);
    memcpy(tmp, crc_shift_lane, sizeof tmp);
  }
  gf2_square(crc_shift_lane2, crc_shift_lane);
  crc_shift_ready = 1;
}

static uint32_t crc32c_hw(uint32_t crc, const unsigned char *p, size_t len)
{
  uint64_t c = crc;
  if (len >= 3 * CRC32C_LANE && !crc_shift_ready) crc_shift_init();
  while (len >= 3 * CRC32C_LANE) {
    uint64_t c1 = 0, c2 = 0;
    size_t i;
    for (i = 0; i < CRC32C_LANE; i += 8) {
      uint64_t w0, w1, w2;
      memcpy(&w0, p + i, 8);
      memcpy(&w1, p + CRC32C_LANE + i, 8);
      memcpy(&w2, p + 2 * CRC32C_LANE + i, 8);
      c = _mm_crc32_u64(c, w0);
      c1 = _mm_crc32_u64(c1, w1);
      c2 = _mm_crc32_u64(c2, w2);
    }
    c = gf2_times(crc_shift_lane2, (uint32_t)c)
        ^ gf2_times(crc_shift_lane, (uint32_t)c1) ^ c2;
    p += 3 * CRC32C_LANE;
    len -= 3 * CRC32C_LANE;
  }
  while (len >= 8) {
    uint64_t w;
    memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    uint32_t w;
    memcpy(&w, p, 4);
    c = _mm_crc32_u32((uint32_t)c, w);
    p += 4;
    len -= 4;
  }
  if (len >= 2) {
    uint16_t w;
    memcpy(&w, p, 2);
    c = _mm_crc32_u16((uint32_t)c, w);
    p += 2;
    len -= 2;
  }
  if (len) c = _mm_crc32_u8((uint32_t)c, *p);
  return (uint32_t)c;
}
#endif

static uint32_t crc32c(const unsigned char *p, size_t len)
{
  uint32_t crc = ~0u;
#ifdef GNRFET_CRC32C_HW
  crc = crc32c_hw(crc, p, len);
#else
  crc = crc32c_sw(crc, p, len);
#endif
  return ~crc;
}

/* crc32c over string/bytes [pos, pos+len): gnrfet_crc32_str s pos len */
CAMLprim value gnrfet_crc32_str(value vs, value vpos, value vlen)
{
  const unsigned char *base = (const unsigned char *)String_val(vs);
  return Val_long((long)crc32c(base + Long_val(vpos), (size_t)Long_val(vlen)));
}

/* crc32c over a char Bigarray.Array1 [pos, pos+len) — used on the
   mmapped file so validation never copies the data through the heap. */
CAMLprim value gnrfet_crc32_ba(value vba, value vpos, value vlen)
{
  const unsigned char *base = (const unsigned char *)Caml_ba_data_val(vba);
  return Val_long((long)crc32c(base + Long_val(vpos), (size_t)Long_val(vlen)));
}

/* Exposed for the self-test in test/test_tbl_format.ml: the portable
   table-driven path, so the suite can pin HW == SW on machines where
   both exist. */
CAMLprim value gnrfet_crc32_sw(value vs, value vpos, value vlen)
{
  const unsigned char *base = (const unsigned char *)String_val(vs);
  return Val_long((long)~crc32c_sw(~0u, base + Long_val(vpos),
                                   (size_t)Long_val(vlen)));
}
