(** Escalation-ladder recovery for SCF bias points (re-exported as
    [Robust.Scf]).

    A point that {!Scf.solve} cannot converge — or that dies in a raised
    solver failure (injected fault, linear-solver breakdown, pivot
    [Failure]) — is retried up a fixed ladder of increasingly
    conservative configurations:

    + {b Anderson} — the exact plain [Scf.solve] call (bit-for-bit
      identical to calling [Scf.solve] directly when it converges, so
      wrapping a sweep in [solve_robust] changes nothing on healthy
      inputs);
    + {b Damped restart} — Anderson restarted with heavy damping
      (alpha 0.2), warm-started from the best iterate so far;
    + {b Slow linear} — plain under-relaxation at alpha 0.1 with 3x the
      iteration budget: slow, but immune to the Anderson oscillation
      modes;
    + {b Neighbor continuation} — only when the caller supplies
      [?neighbor] (the converged potential of the nearest
      previously-converged bias point): restart the slow-linear rung
      from that profile, the bias-continuation move that table sweeps
      rely on.

    Ladder traffic is counted in [robust.scf.retries] (attempts after
    the first), [robust.scf.escalations] (points that needed any
    retry), [robust.scf.recovered] and [robust.scf.unrecovered].
    See docs/ROBUST.md. *)

type rung = Anderson | Damped_restart | Linear_slow | Neighbor_continuation

type attempt = {
  rung : rung;
  status : Scf.status option;  (** [None] when the attempt raised *)
  iterations : int;
  residual : float;  (** [infinity] when the attempt raised *)
  error : string option;  (** the raised exception, printed *)
}

type outcome = {
  solution : Scf.solution option;
      (** best (lowest-residual) solution across attempts; [None] only
          when every attempt raised *)
  attempts : attempt list;  (** chronological, at least one *)
  recovered : bool;
      (** converged on a rung after the first (plain-call convergence is
          not "recovery") *)
}

val solve_robust :
  ?tol:float ->
  ?max_iter:int ->
  ?init:float array ->
  ?neighbor:float array ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  ?ctx:Ctx.t ->
  Params.t ->
  vg:float ->
  vd:float ->
  outcome
(** Run the ladder at (VG, VD).  [init]/[tol]/[max_iter]/[parallel]/
    [obs]/[ctx] default exactly as in {!Scf.solve} (the first rung {e is}
    that call — the optional knobs are forwarded unresolved, so
    [Ctx.resolve] precedence applies once, inside [Scf.solve]).  Raised failures ([Fault.Injected], [Sparse.No_convergence],
    solver [Failure]) are recorded per attempt and trigger the next
    rung; [Invalid_argument] (caller bugs) propagates. *)

val error_of_outcome : outcome -> Robust_error.t option
(** [None] when the outcome converged; otherwise the typed failure for
    the best attempt ([Scf_stalled]/[Scf_max_iter]) or [Unrecovered]
    when every attempt raised. *)
