type t = {
  key : string;
  vg : float array;
  vd : float array;
  current : float array array;
  charge : float array array;
  failed_points : (int * int) list;
}

(* The canonical definition moved to Ctx (so the execution context can
   carry a grid without depending on this library); re-exported here so
   Iv_table.grid_spec keeps working everywhere. *)
type grid_spec = Ctx.grid_spec = {
  vg_min : float;
  vg_max : float;
  n_vg : int;
  vd_max : float;
  n_vd : int;
}

let default_grid =
  { vg_min = -0.25; vg_max = 1.05; n_vg = 53; vd_max = 0.8; n_vd = 17 }

let grid_key g =
  Printf.sprintf "vg%g:%g:%d-vd%g:%d" g.vg_min g.vg_max g.n_vg g.vd_max g.n_vd

(* Patch quarantined grid points from their nearest converged neighbors:
   linear interpolation along VG within the same VD column when the point
   is bracketed, nearest-converged copy at column edges.  Reads only
   converged entries, so the result is independent of patch order; a
   column with no converged point at all keeps its best-iterate values. *)
let patch_failed ~failed ~vg ~current ~charge =
  let bad = Hashtbl.create 16 in
  List.iter (fun pt -> Hashtbl.replace bad pt ()) failed;
  let n_vg = Array.length vg in
  let rec find dir jd i =
    if i < 0 || i >= n_vg then None
    else if Hashtbl.mem bad (i, jd) then find dir jd (i + dir)
    else Some i
  in
  List.iter
    (fun (ig, jd) ->
      let lo = find (-1) jd (ig - 1) and hi = find 1 jd (ig + 1) in
      let patch (arr : float array array) =
        match (lo, hi) with
        | Some a, Some b ->
          let t = (vg.(ig) -. vg.(a)) /. (vg.(b) -. vg.(a)) in
          arr.(ig).(jd) <- arr.(a).(jd) +. (t *. (arr.(b).(jd) -. arr.(a).(jd)))
        | Some a, None -> arr.(ig).(jd) <- arr.(a).(jd)
        | None, Some b -> arr.(ig).(jd) <- arr.(b).(jd)
        | None, None -> ()
      in
      patch current;
      patch charge)
    failed

let generate ?grid ?parallel ?obs ?ctx p =
  (* Legacy labels win over the ctx fields; an absent grid falls back to
     ctx.grid and then default_grid. *)
  let c = Ctx.resolve ?ctx ?parallel ?obs ?grid () in
  let grid = Option.value c.Ctx.grid ~default:default_grid in
  let parallel = c.Ctx.parallel and obs = c.Ctx.obs in
  Obs.Span.run ~obs "iv_table.generate" @@ fun () ->
  Obs.Counter.incr (Obs.Counter.make ~obs "iv_table.generates");
  let c_quarantined = Obs.Counter.make ~obs "robust.iv_table.quarantined" in
  let vg = Vec.linspace grid.vg_min grid.vg_max grid.n_vg in
  let vd = Vec.linspace 0. grid.vd_max grid.n_vd in
  let current = Array.make_matrix grid.n_vg grid.n_vd 0. in
  let charge = Array.make_matrix grid.n_vg grid.n_vd 0. in
  (* Sweep VG inner with warm starts; VD outer restarts from the previous
     row's first solution.  This is the continuation order the escalation
     ladder builds on: each point is solved through Scf_robust (whose
     first rung is the plain Scf.solve call, so a fully-converging sweep
     is bit-for-bit identical to solving directly), with the last
     converged potential offered as the neighbor-continuation rung.
     Unrecoverable points are quarantined into [failed_points] and
     patched from converged neighbors instead of polluting the table. *)
  let row_init = ref None in
  let last_converged = ref None in
  let failed = ref [] in
  Array.iteri
    (fun jd vdv ->
      let init = ref !row_init in
      Array.iteri
        (fun ig vgv ->
          let outcome =
            Scf_robust.solve_robust ?init:!init ?neighbor:!last_converged
              ~parallel ~obs p ~vg:vgv ~vd:vdv
          in
          match outcome.Scf_robust.solution with
          | Some s ->
            init := Some s.Scf.potential;
            if ig = 0 then row_init := Some s.Scf.potential;
            current.(ig).(jd) <- s.Scf.current;
            charge.(ig).(jd) <- s.Scf.charge;
            if s.Scf.status = Scf.Converged then
              last_converged := Some s.Scf.potential
            else begin
              Obs.Counter.incr c_quarantined;
              failed := (ig, jd) :: !failed
            end
          | None ->
            (* Every rung raised: leave the warm start untouched and
               patch the value from neighbors after the sweep. *)
            Obs.Counter.incr c_quarantined;
            failed := (ig, jd) :: !failed)
        vg)
    vd;
  let failed_points = List.sort compare !failed in
  if failed_points <> [] then patch_failed ~failed:failed_points ~vg ~current ~charge;
  {
    key = Params.cache_key p ^ "|" ^ grid_key grid;
    vg;
    vd;
    current;
    charge;
    failed_points;
  }

let current_interp t = Interp.grid2 ~xs:t.vg ~ys:t.vd ~values:t.current

let charge_interp t = Interp.grid2 ~xs:t.vg ~ys:t.vd ~values:t.charge

(* Tables are small and queried millions of times: memoize interpolants. *)
let interp_cache : (string, Interp.grid2 * Interp.grid2) Hashtbl.t = Hashtbl.create 16

let interp_mutex = Mutex.create ()

let interps t =
  match Mutex.protect interp_mutex (fun () -> Hashtbl.find_opt interp_cache t.key) with
  | Some pair -> pair
  | None ->
    let pair = (current_interp t, charge_interp t) in
    Mutex.protect interp_mutex (fun () -> Hashtbl.replace interp_cache t.key pair);
    pair

let check_vd vd = if vd < -1e-12 then invalid_arg "Iv_table: vd must be >= 0"

let current_at t ~vg ~vd =
  check_vd vd;
  let ci, _ = interps t in
  Interp.grid2_eval ci vg vd

let charge_at t ~vg ~vd =
  check_vd vd;
  let _, qi = interps t in
  Interp.grid2_eval qi vg vd

let dq_dvg t ~vg ~vd =
  check_vd vd;
  let _, qi = interps t in
  Interp.grid2_dx qi vg vd

let dq_dvd t ~vg ~vd =
  check_vd vd;
  let _, qi = interps t in
  Interp.grid2_dy qi vg vd

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "vg,vd,id_A,q_C\n";
  Array.iteri
    (fun ig vg ->
      Array.iteri
        (fun jd vd ->
          Buffer.add_string buf
            (Printf.sprintf "%.6g,%.6g,%.8g,%.8g\n" vg vd t.current.(ig).(jd)
               t.charge.(ig).(jd)))
        t.vd)
    t.vg;
  Buffer.contents buf
