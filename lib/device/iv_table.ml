type t = {
  key : string;
  vg : float array;
  vd : float array;
  current : float array array;
  charge : float array array;
}

type grid_spec = {
  vg_min : float;
  vg_max : float;
  n_vg : int;
  vd_max : float;
  n_vd : int;
}

let default_grid =
  { vg_min = -0.25; vg_max = 1.05; n_vg = 53; vd_max = 0.8; n_vd = 17 }

let grid_key g =
  Printf.sprintf "vg%g:%g:%d-vd%g:%d" g.vg_min g.vg_max g.n_vg g.vd_max g.n_vd

let generate ?(grid = default_grid) ?(parallel = true) ?obs p =
  Obs.Span.run ?obs "iv_table.generate" @@ fun () ->
  Obs.Counter.incr (Obs.Counter.make ?obs "iv_table.generates");
  let vg = Vec.linspace grid.vg_min grid.vg_max grid.n_vg in
  let vd = Vec.linspace 0. grid.vd_max grid.n_vd in
  let current = Array.make_matrix grid.n_vg grid.n_vd 0. in
  let charge = Array.make_matrix grid.n_vg grid.n_vd 0. in
  (* Sweep VG inner with warm starts; VD outer restarts from the previous
     row's first solution. *)
  let row_init = ref None in
  Array.iteri
    (fun jd vdv ->
      let init = ref !row_init in
      Array.iteri
        (fun ig vgv ->
          let s = Scf.solve ?init:!init ~parallel ?obs p ~vg:vgv ~vd:vdv in
          init := Some s.Scf.potential;
          if ig = 0 then row_init := Some s.Scf.potential;
          current.(ig).(jd) <- s.Scf.current;
          charge.(ig).(jd) <- s.Scf.charge)
        vg)
    vd;
  { key = Params.cache_key p ^ "|" ^ grid_key grid; vg; vd; current; charge }

let current_interp t = Interp.grid2 ~xs:t.vg ~ys:t.vd ~values:t.current

let charge_interp t = Interp.grid2 ~xs:t.vg ~ys:t.vd ~values:t.charge

(* Tables are small and queried millions of times: memoize interpolants. *)
let interp_cache : (string, Interp.grid2 * Interp.grid2) Hashtbl.t = Hashtbl.create 16

let interp_mutex = Mutex.create ()

let interps t =
  match Mutex.protect interp_mutex (fun () -> Hashtbl.find_opt interp_cache t.key) with
  | Some pair -> pair
  | None ->
    let pair = (current_interp t, charge_interp t) in
    Mutex.protect interp_mutex (fun () -> Hashtbl.replace interp_cache t.key pair);
    pair

let check_vd vd = if vd < -1e-12 then invalid_arg "Iv_table: vd must be >= 0"

let current_at t ~vg ~vd =
  check_vd vd;
  let ci, _ = interps t in
  Interp.grid2_eval ci vg vd

let charge_at t ~vg ~vd =
  check_vd vd;
  let _, qi = interps t in
  Interp.grid2_eval qi vg vd

let dq_dvg t ~vg ~vd =
  check_vd vd;
  let _, qi = interps t in
  Interp.grid2_dx qi vg vd

let dq_dvd t ~vg ~vd =
  check_vd vd;
  let _, qi = interps t in
  Interp.grid2_dy qi vg vd

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "vg,vd,id_A,q_C\n";
  Array.iteri
    (fun ig vg ->
      Array.iteri
        (fun jd vd ->
          Buffer.add_string buf
            (Printf.sprintf "%.6g,%.6g,%.8g,%.8g\n" vg vd t.current.(ig).(jd)
               t.charge.(ig).(jd)))
        t.vd)
    t.vg;
  Buffer.contents buf
