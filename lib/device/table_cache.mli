(** On-disk cache of generated device tables.

    Table generation costs tens of seconds per device variant; the
    variation studies need ~20 variants.  Tables are stored under the
    directory named by [GNRFET_TABLE_DIR] (default [_tables/] in the
    current working tree), content-addressed by the device cache key. *)

val cache_dir : unit -> string

val key : ?grid:Iv_table.grid_spec -> ?ctx:Ctx.t -> Params.t -> string
(** The full content key a [(p, grid)] request is cached under (device
    cache key + format version + grid signature).  The serve layer's LRU
    and single-flight maps key on this, so their identity is exactly the
    cache's. *)

val lookup :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t ->
  Iv_table.t option
(** Load from memory or disk; [None] when absent or unreadable.  Every
    call bumps exactly one of [table_cache.memory_hits],
    [table_cache.disk_hits] or [table_cache.misses] in [?obs] (default
    {!Obs.global}); see docs/OBS.md.

    {b Corruption hardening} (docs/ROBUST.md): a disk file that fails to
    deserialize — truncation, garbage bytes, Marshal version skew, I/O
    errors mid-read — is renamed to [<name>.corrupt] (counted in
    [table_cache.corrupt_quarantined]) and the lookup degrades to a
    miss; the channel is closed on every path.  A file whose stored key
    does not match reads as a plain miss without quarantine.  The cache
    key embeds a format version ([v2|...]), so layout changes to
    {!Iv_table.t} retire old files by key mismatch instead of
    misinterpreting their bytes. *)

val get :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t -> Iv_table.t
(** Load or generate (and persist). Thread through all experiment code.
    A generation bumps [table_cache.generates] on top of the {!lookup}
    miss.  Persisting is atomic (tmp file + rename) and best-effort: a
    failed write never fails the caller but counts in
    [table_cache.store_failures]. *)

val get_many :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t list ->
  Iv_table.t list
(** Like {!get} for a batch.  Two or more missing tables are generated in
    parallel across devices with the per-device energy loop forced
    sequential; a single missing table is generated with the energy-level
    parallelism enabled instead, so the pool is saturated either way
    without oversubscribing (see docs/PERF.md).  Counter accounting per
    request: a missing device costs one miss + one generate (plus one
    memory hit when the result list is assembled); a batch whose tables
    all exist costs memory hits only — the
    [test/test_device.ml] cache-accounting test pins this down.

    Duplicate [Params.t] entries in the request list are generated only
    once: the missing set is deduplicated by {!key} before generation
    (each dropped duplicate counts in [table_cache.deduped]) and the
    duplicates resolve to memory hits when the result list — whose order
    always matches the request list — is assembled.

    All three entry points also accept [?ctx:Ctx.t] bundling the
    [grid]/[obs]/[parallel] knobs; explicitly passed legacy labels win
    over the corresponding [ctx] fields ({!Ctx.resolve}, docs/API.md).
    [ctx.parallel = false] forces the whole batch sequential (devices
    and energy loops). *)

val clear_memory : unit -> unit
(** Drop the in-memory cache (tests). *)
