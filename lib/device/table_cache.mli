(** On-disk cache of generated device tables.

    Table generation costs tens of seconds per device variant; the
    variation studies need ~20 variants and the serving tier re-reads
    tables orders of magnitude more often than it generates them.
    Tables are stored under the directory named by [GNRFET_TABLE_DIR]
    (default [_tables/] in the current working tree), content-addressed
    by the device cache key, in the [gnrtbl] binary columnar format
    ({!Tbl_format}, docs/FORMAT.md): a disk hit {e maps} the file and
    validates it with a per-section CRC-32C pass instead of
    deserializing it.  Pre-PR 8 Marshal files ([<digest>.table]) are
    still read through a legacy fallback for one release; new stores
    always write [<digest>.gnrtbl]. *)

val cache_dir : unit -> string

val key : ?grid:Iv_table.grid_spec -> ?ctx:Ctx.t -> Params.t -> string
(** The full content key a [(p, grid)] request is cached under (device
    cache key + key-format version + grid signature).  The serve
    layer's LRU and single-flight maps key on this, so their identity
    is exactly the cache's. *)

val gnrtbl_path : string -> string
(** On-disk path of the [gnrtbl] file for a full {!key} (exists or
    not); bench and test harnesses use it to read and corrupt files
    directly. *)

val legacy_path : string -> string
(** On-disk path of the pre-PR 8 Marshal file for a full {!key}. *)

type disk_outcome =
  | Table of Iv_table.t  (** [gnrtbl] hit: mapped, validated, converted *)
  | Legacy of Iv_table.t  (** pre-PR 8 Marshal fallback hit *)
  | Absent  (** no file (or unreadable): a plain miss *)
  | Stale  (** file present but stored under a different key *)
  | Corrupt of Robust_error.corrupt_reason
      (** validation failed; the file has been quarantined and the
          reason counted — see {!lookup} *)

val probe_disk :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t ->
  disk_outcome
(** The disk half of {!lookup}, with the outcome made explicit:
    corruption surfaces as the typed checksum-precise reason the
    [gnrtbl] validator raised instead of being collapsed into [None].
    Performs the same quarantine + counting side effects as {!lookup};
    never raises on malformed input (the corruption-matrix fuzz
    harness drives ≥200 mutations through here and {!lookup}).  Does
    not touch the in-memory cache or the hit/miss counters. *)

val lookup :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t ->
  Iv_table.t option
(** Load from memory or disk; [None] when absent, stale or corrupt.
    Every call bumps exactly one of [table_cache.memory_hits],
    [table_cache.disk_hits] or [table_cache.misses] in [?obs] (default
    {!Obs.global}); a disk hit served by the mapped [gnrtbl] path also
    bumps [table_cache.mmap_hits].  See docs/OBS.md.

    {b Corruption hardening} (docs/ROBUST.md): a [gnrtbl] file that
    fails validation is quarantined — renamed to [<name>.corrupt],
    counted in [table_cache.corrupt_quarantined] {e and} in the
    per-reason counter [table_cache.corrupt.<label>]
    ([bad_magic]/[bad_version]/[crc_mismatch]/[truncated]/[undecodable],
    {!Robust_error.corrupt_label}) — and the lookup degrades to a miss.
    A failed quarantine rename (read-only cache directory) counts
    [table_cache.quarantine_failed] and still degrades to a miss,
    never raises.  A file whose stored key does not match reads as a
    plain miss without quarantine. *)

val get :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t -> Iv_table.t
(** Load or generate (and persist). Thread through all experiment code.
    A generation bumps [table_cache.generates] on top of the {!lookup}
    miss.  Persisting writes [gnrtbl] atomically (tmp file + rename)
    and is best-effort: a failed write never fails the caller but
    counts in [table_cache.store_failures]. *)

val get_many :
  ?grid:Iv_table.grid_spec -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t list ->
  Iv_table.t list
(** Like {!get} for a batch.  Two or more missing tables are generated in
    parallel across devices with the per-device energy loop forced
    sequential; a single missing table is generated with the energy-level
    parallelism enabled instead, so the pool is saturated either way
    without oversubscribing (see docs/PERF.md).  Counter accounting per
    request: a missing device costs one miss + one generate (plus one
    memory hit when the result list is assembled); a batch whose tables
    all exist costs memory hits only — the
    [test/test_device.ml] cache-accounting test pins this down.

    Duplicate [Params.t] entries in the request list are generated only
    once: the missing set is deduplicated by {!key} before generation
    (each dropped duplicate counts in [table_cache.deduped]) and the
    duplicates resolve to memory hits when the result list — whose order
    always matches the request list — is assembled.

    All three entry points also accept [?ctx:Ctx.t] bundling the
    [grid]/[obs]/[parallel] knobs; explicitly passed legacy labels win
    over the corresponding [ctx] fields ({!Ctx.resolve}, docs/API.md).
    [ctx.parallel = false] forces the whole batch sequential (devices
    and energy loops). *)

val clear_memory : unit -> unit
(** Drop the in-memory cache (tests). *)
