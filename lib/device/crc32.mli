(** CRC-32C (Castagnoli, polynomial 0x1EDC6F41) for the [gnrtbl]
    on-disk table format.

    On x86-64 with SSE4.2 the C stub (crc32_stubs.c) uses the hardware
    [crc32] instruction over three interleaved lanes, so a checksum
    pass over a mapped table runs at many GB/s and the validation step
    of {!Tbl_format} stays far cheaper than the Marshal parse it
    replaces; elsewhere a table-driven slicing-by-8 fallback computes
    the same checksum.  All entry points are allocation-free.

    The checksum of the empty range is [0]; results are one-shot
    (pre/post conditioning included) and always in [0, 2{^32}).
    Reference value: CRC-32C of ["123456789"] is [0xE3069283]. *)

type bytes_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A byte view of a mapped file ({!Tbl_format} maps the whole file
    once with this kind for validation). *)

val string : string -> pos:int -> len:int -> int
(** CRC-32C of [s.[pos .. pos+len-1]].
    @raise Invalid_argument when the range is outside the string. *)

val bigarray : bytes_view -> pos:int -> len:int -> int
(** CRC-32C of [ba.{pos} .. ba.{pos+len-1}] without copying.
    @raise Invalid_argument when the range is outside the array. *)

val string_sw : string -> pos:int -> len:int -> int
(** Same checksum via the portable table-driven path, bypassing any
    hardware fast path.  Only for the test suite, which pins
    [string_sw = string] so a lane-combine bug in the accelerated
    path cannot silently fork the format.
    @raise Invalid_argument when the range is outside the string. *)
