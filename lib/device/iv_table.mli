(** Intrinsic-device lookup tables: the bridge between the quantum transport
    simulations and the circuit simulator (Section 3 of the paper).

    A table holds [ID(VG, VD)] and channel charge [Q(VG, VD)] of a single
    GNR on a rectangular bias grid; circuit models interpolate bilinearly
    and differentiate the charge for the intrinsic capacitances. *)

type t = {
  key : string;  (** device identity the table was generated for *)
  vg : float array;  (** gate-bias grid, V (strictly increasing) *)
  vd : float array;  (** drain-bias grid, V (strictly increasing, >= 0) *)
  current : float array array;  (** [current.(ivg).(ivd)], A (one GNR) *)
  charge : float array array;  (** net channel charge, C (signed) *)
  failed_points : (int * int) list;
      (** quarantined [(ivg, ivd)] grid points whose SCF solve stayed
          unconverged through the whole escalation ladder; their
          [current]/[charge] entries are interpolated from converged
          neighbors (empty on healthy sweeps).  Sorted, duplicates
          impossible.  See docs/ROBUST.md. *)
}

type grid_spec = Ctx.grid_spec = {
  vg_min : float;
  vg_max : float;
  n_vg : int;
  vd_max : float;
  n_vd : int;
}
(** Re-export of {!Ctx.grid_spec} (the canonical definition, so an
    execution context can carry a grid); the two names are
    interchangeable. *)

val default_grid : grid_spec
(** VG ∈ [-0.25, 1.05] (25 mV steps, fine enough to preserve the
    device transconductance through bilinear interpolation) × VD ∈ [0, 0.8]
    (50 mV): wide enough for p-type mirroring, gate-offset shifts and
    transient excursions at the paper's operating points (tables are
    stored for VD >= 0; negative VDS is handled by the circuit model
    through source/drain exchange symmetry). *)

val generate :
  ?grid:grid_spec -> ?parallel:bool -> ?obs:Obs.t -> ?ctx:Ctx.t -> Params.t -> t
(** Run the self-consistent solver over the grid (warm-starting each VG
    sweep from the previous bias point).  Each point goes through the
    {!Scf_robust} escalation ladder in continuation order: the first rung
    is the plain {!Scf.solve} call (a fully-converging sweep is
    bit-for-bit identical to pre-ladder behavior), and unrecoverable
    points are quarantined into [failed_points] (counted in
    [robust.iv_table.quarantined]) and interpolated from converged
    neighbors instead of aborting the sweep.  [parallel] (default true)
    is forwarded to {!Scf.solve}: callers fanning several devices out
    across the domain pool ({!Table_cache.get_many}) pass
    [~parallel:false] so the inner energy loop stays sequential under the
    outer fan-out.  [obs] (default {!Obs.global}) is forwarded too; each
    generation runs inside an [iv_table.generate] span and bumps
    [iv_table.generates] (see docs/OBS.md).  [ctx] bundles all three
    knobs ([grid] falls back to [ctx.grid], then {!default_grid}); an
    explicitly passed legacy label wins over the corresponding [ctx]
    field ({!Ctx.resolve}, docs/API.md). *)

val current_at : t -> vg:float -> vd:float -> float
(** Bilinear interpolation; requires [vd >= 0] (the circuit layer owns the
    negative-VDS reflection). Clamped at the table edges. *)

val charge_at : t -> vg:float -> vd:float -> float

val dq_dvg : t -> vg:float -> vd:float -> float
(** ∂Q/∂VG of the interpolant (for [CG,i = |∂Q/∂VGS|]). *)

val dq_dvd : t -> vg:float -> vd:float -> float
(** ∂Q/∂VD of the interpolant (for [CGD,i = |∂Q/∂VDS|]). *)

val to_csv : t -> string
(** Plain CSV dump ("vg,vd,id_A,q_C" rows) for external plotting. *)
