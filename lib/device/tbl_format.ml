(* gnrtbl v1 byte layout (docs/FORMAT.md is the normative spec; the
   Layout submodule below is the one computed source of offsets).

   All integers little-endian.  pad8(n) rounds n up to a multiple of 8.

     0   6  magic "GNRTBL"
     6   2  u16 format version = 1
     8   4  u32 cache-key length (ckl)
     12  4  u32 table-key length (tkl)
     16  4  u32 n_vg
     20  4  u32 n_vd
     24  4  u32 n_failed
     28  4  u32 n_cols = 4
     32  8  u64 total file length
     40  32 u64 column data offsets: vg, vd, current, charge
     72  8  u64 failed-points data offset
     80  pad8(ckl)  cache key, zero-padded
     ..  pad8(tkl)  table key, zero-padded
     hdr_end = 80 + pad8(ckl) + pad8(tkl)
     hdr_end  8  header CRC field

   then four column sections and the failed-points section, each
   "data ++ CRC field" at the offsets the header names.  A CRC field
   is a u32 CRC-32C of the section's data bytes followed by a u32 that
   must be zero, so every section (and the file total) stays 8-byte
   aligned — which is what lets the reader hand out float64 Bigarray
   views straight into the mapping — and every byte of the file is
   covered by exactly one checksum. *)

type farray = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type view = {
  v_version : int;
  v_cache_key : string;
  v_table_key : string;
  v_n_vg : int;
  v_n_vd : int;
  v_vg : farray;
  v_vd : farray;
  v_current : farray;
  v_charge : farray;
  v_failed_points : (int * int) list;
}

let version = 1

let magic = "GNRTBL"

let pad8 n = (n + 7) land lnot 7

module Layout = struct
  type t = {
    ckl : int;
    tkl : int;
    n_vg : int;
    n_vd : int;
    n_failed : int;
    hdr_end : int;
    col_off : int array;
    col_len : int array;
    failed_off : int;
    failed_len : int;
    total : int;
  }

  let fixed_header_size = 80

  let min_file_size = fixed_header_size + 8

  let of_lengths ~ckl ~tkl ~n_vg ~n_vd ~n_failed =
    let hdr_end = fixed_header_size + pad8 ckl + pad8 tkl in
    let plane = n_vg * n_vd * 8 in
    let col_len = [| n_vg * 8; n_vd * 8; plane; plane |] in
    let col_off = Array.make 4 0 in
    let off = ref (hdr_end + 8) in
    Array.iteri
      (fun i len ->
        col_off.(i) <- !off;
        off := !off + len + 8)
      col_len;
    let failed_off = !off in
    let failed_len = 8 * n_failed in
    {
      ckl;
      tkl;
      n_vg;
      n_vd;
      n_failed;
      hdr_end;
      col_off;
      col_len;
      failed_off;
      failed_len;
      total = failed_off + failed_len + 8;
    }

  let make ~cache_key ~table_key ~n_vg ~n_vd ~n_failed =
    of_lengths ~ckl:(String.length cache_key) ~tkl:(String.length table_key)
      ~n_vg ~n_vd ~n_failed
end

let col_names = [| "vg"; "vd"; "current"; "charge" |]

let corrupt ~path reason =
  Robust_error.raise_ (Robust_error.Cache_corrupt { path; reason })

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let set_u32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)

let set_u64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)

(* Compute a section's CRC over the just-written data bytes and store
   it in the 8-byte CRC field that follows (high u32 stays zero from
   Bytes.make). *)
let seal b ~pos ~len =
  set_u32 b (pos + len) (Crc32.string (Bytes.unsafe_to_string b) ~pos ~len)

let encode ~cache_key (t : Iv_table.t) =
  let n_vg = Array.length t.Iv_table.vg and n_vd = Array.length t.Iv_table.vd in
  let ragged plane =
    Array.length plane <> n_vg
    || Array.exists (fun row -> Array.length row <> n_vd) plane
  in
  if ragged t.Iv_table.current || ragged t.Iv_table.charge then
    invalid_arg "Tbl_format.encode: current/charge not an n_vg x n_vd matrix";
  let n_failed = List.length t.Iv_table.failed_points in
  let lay =
    Layout.make ~cache_key ~table_key:t.Iv_table.key ~n_vg ~n_vd ~n_failed
  in
  let b = Bytes.make lay.Layout.total '\000' in
  Bytes.blit_string magic 0 b 0 6;
  Bytes.set_uint16_le b 6 version;
  set_u32 b 8 lay.Layout.ckl;
  set_u32 b 12 lay.Layout.tkl;
  set_u32 b 16 n_vg;
  set_u32 b 20 n_vd;
  set_u32 b 24 n_failed;
  set_u32 b 28 4;
  set_u64 b 32 lay.Layout.total;
  Array.iteri (fun i off -> set_u64 b (40 + (8 * i)) off) lay.Layout.col_off;
  set_u64 b 72 lay.Layout.failed_off;
  Bytes.blit_string cache_key 0 b 80 lay.Layout.ckl;
  Bytes.blit_string t.Iv_table.key 0 b (80 + pad8 lay.Layout.ckl) lay.Layout.tkl;
  seal b ~pos:0 ~len:lay.Layout.hdr_end;
  let put_f64 pos v = Bytes.set_int64_le b pos (Int64.bits_of_float v) in
  let write_plane i fill =
    let pos = lay.Layout.col_off.(i) in
    fill pos;
    seal b ~pos ~len:lay.Layout.col_len.(i)
  in
  write_plane 0 (fun pos ->
      Array.iteri (fun k v -> put_f64 (pos + (8 * k)) v) t.Iv_table.vg);
  write_plane 1 (fun pos ->
      Array.iteri (fun k v -> put_f64 (pos + (8 * k)) v) t.Iv_table.vd);
  let write_matrix i m =
    write_plane i (fun pos ->
        Array.iteri
          (fun ig row ->
            Array.iteri
              (fun jd v -> put_f64 (pos + (8 * ((ig * n_vd) + jd))) v)
              row)
          m)
  in
  write_matrix 2 t.Iv_table.current;
  write_matrix 3 t.Iv_table.charge;
  List.iteri
    (fun k (ivg, ivd) ->
      let pos = lay.Layout.failed_off + (8 * k) in
      set_u32 b pos ivg;
      set_u32 b (pos + 4) ivd)
    t.Iv_table.failed_points;
  seal b ~pos:lay.Layout.failed_off ~len:lay.Layout.failed_len;
  Bytes.unsafe_to_string b

let write ~path ~cache_key t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode ~cache_key t))

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

(* One validator over two byte sources: the mapped file (zero-copy
   views straight into the mapping) and an in-memory string (tests,
   tools; views are fresh copies). *)
type source = {
  s_len : int;
  s_get : int -> char;  (* header-sized reads only *)
  s_crc : pos:int -> len:int -> int;
  s_sub : pos:int -> len:int -> string;
  s_f64 : pos:int -> n:int -> farray;
}

let get_u8 src pos = Char.code (src.s_get pos)

let get_u16 src pos = get_u8 src pos lor (get_u8 src (pos + 1) lsl 8)

let get_u32 src pos = get_u16 src pos lor (get_u16 src (pos + 2) lsl 16)

(* Only read after the header CRC has been verified, so the writer's
   value (always a sane file size) is what we assemble; the top byte
   cannot carry into the sign bit for any honest file. *)
let get_u64 src pos = get_u32 src pos lor (get_u32 src (pos + 4) lsl 32)

let validate ~path src =
  let fail reason = corrupt ~path reason in
  let check_crc ~section ~pos ~len =
    if
      get_u32 src (pos + len + 4) <> 0
      || get_u32 src (pos + len) <> src.s_crc ~pos ~len
    then fail (Robust_error.Crc_mismatch { section })
  in
  let got = src.s_len in
  if got < Layout.min_file_size then
    fail (Robust_error.Truncated { expected = Layout.min_file_size; got });
  for i = 0 to 5 do
    if src.s_get i <> magic.[i] then fail Robust_error.Bad_magic
  done;
  let v = get_u16 src 6 in
  if v <> version then fail (Robust_error.Bad_version { found = v });
  let ckl = get_u32 src 8 and tkl = get_u32 src 12 in
  let hdr_end = Layout.fixed_header_size + pad8 ckl + pad8 tkl in
  if hdr_end + 8 > got then
    fail (Robust_error.Truncated { expected = hdr_end + 8; got });
  check_crc ~section:"header" ~pos:0 ~len:hdr_end;
  (* The header is now trusted: every field below is what the writer
     wrote, so the remaining failure modes are truncation (size
     mismatch) and per-section bit rot (column CRCs). *)
  let n_vg = get_u32 src 16 and n_vd = get_u32 src 20 in
  let n_failed = get_u32 src 24 and n_cols = get_u32 src 28 in
  let total = get_u64 src 32 in
  if total <> got then fail (Robust_error.Truncated { expected = total; got });
  let lay = Layout.of_lengths ~ckl ~tkl ~n_vg ~n_vd ~n_failed in
  (* Defensive consistency of the stored offsets against the derived
     layout: unreachable for files produced by [encode] (the header CRC
     already passed), kept so a buggy foreign writer cannot steer reads
     out of bounds. *)
  if
    n_cols <> 4
    || lay.Layout.total <> total
    || get_u64 src 72 <> lay.Layout.failed_off
    || Array.exists Fun.id
         (Array.mapi
            (fun i off -> get_u64 src (40 + (8 * i)) <> off)
            lay.Layout.col_off)
  then fail (Robust_error.Crc_mismatch { section = "header" });
  Array.iteri
    (fun i section ->
      check_crc ~section ~pos:lay.Layout.col_off.(i) ~len:lay.Layout.col_len.(i))
    col_names;
  check_crc ~section:"failed_points" ~pos:lay.Layout.failed_off
    ~len:lay.Layout.failed_len;
  let failed_points =
    List.init n_failed (fun k ->
        let pos = lay.Layout.failed_off + (8 * k) in
        let ivg = get_u32 src pos and ivd = get_u32 src (pos + 4) in
        if ivg >= n_vg || ivd >= n_vd then
          fail (Robust_error.Crc_mismatch { section = "failed_points" });
        (ivg, ivd))
  in
  {
    v_version = v;
    v_cache_key = src.s_sub ~pos:Layout.fixed_header_size ~len:ckl;
    v_table_key = src.s_sub ~pos:(Layout.fixed_header_size + pad8 ckl) ~len:tkl;
    v_n_vg = n_vg;
    v_n_vd = n_vd;
    v_vg = src.s_f64 ~pos:lay.Layout.col_off.(0) ~n:n_vg;
    v_vd = src.s_f64 ~pos:lay.Layout.col_off.(1) ~n:n_vd;
    v_current = src.s_f64 ~pos:lay.Layout.col_off.(2) ~n:(n_vg * n_vd);
    v_charge = src.s_f64 ~pos:lay.Layout.col_off.(3) ~n:(n_vg * n_vd);
    v_failed_points = failed_points;
  }

let read ~path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () ->
      match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ())
  @@ fun () ->
  let size = (Unix.fstat fd).Unix.st_size in
  (* Mapping a zero-length file is an error at the mmap level; reject
     short files before touching the mapping machinery. *)
  if size < Layout.min_file_size then
    corrupt ~path (Robust_error.Truncated { expected = Layout.min_file_size; got = size });
  let ba =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |])
  in
  let src =
    {
      s_len = size;
      s_get = Bigarray.Array1.get ba;
      s_crc = (fun ~pos ~len -> Crc32.bigarray ba ~pos ~len);
      s_sub =
        (fun ~pos ~len -> String.init len (fun i -> Bigarray.Array1.get ba (pos + i)));
      s_f64 =
        (fun ~pos ~n ->
          (* Column offsets are 8-aligned by construction; map_file
             handles the page-alignment delta internally, so this view
             shares pages with the validation mapping — zero copies. *)
          Bigarray.array1_of_genarray
            (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.float64
               Bigarray.c_layout false [| n |]));
    }
  in
  validate ~path src

let decode ?(path = "<bytes>") s =
  let src =
    {
      s_len = String.length s;
      s_get = String.get s;
      s_crc = (fun ~pos ~len -> Crc32.string s ~pos ~len);
      s_sub = (fun ~pos ~len -> String.sub s pos len);
      s_f64 =
        (fun ~pos ~n ->
          let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
          for k = 0 to n - 1 do
            Bigarray.Array1.set a k
              (Int64.float_of_bits (String.get_int64_le s (pos + (8 * k))))
          done;
          a);
    }
  in
  validate ~path src

let to_table v =
  let n_vd = v.v_n_vd in
  {
    Iv_table.key = v.v_table_key;
    vg = Array.init v.v_n_vg (Bigarray.Array1.get v.v_vg);
    vd = Array.init n_vd (Bigarray.Array1.get v.v_vd);
    current =
      Array.init v.v_n_vg (fun ig ->
          Array.init n_vd (fun jd ->
              Bigarray.Array1.get v.v_current ((ig * n_vd) + jd)));
    charge =
      Array.init v.v_n_vg (fun ig ->
          Array.init n_vd (fun jd ->
              Bigarray.Array1.get v.v_charge ((ig * n_vd) + jd)));
    failed_points = v.v_failed_points;
  }
