type trace = {
  step : int;
  update_norm : float;
  mixing_factor : float;
  poisson_solves : int;
  restarted : bool;
}

type status = Converged | Stalled | Max_iter

type solution = {
  vg : float;
  vd : float;
  potential : float array;
  current : float;
  charge : float;
  site_charge : float array;
  iterations : int;
  residual : float;
  status : status;
  trace : trace list;
}

(* Fault-injection sites (docs/ROBUST.md): an armed campaign can fail a
   charge evaluation or a Poisson update so the Scf_robust escalation
   ladder is exercisable deterministically.  Single branch when off. *)
let fault_charge = Fault.site "scf.charge"

let fault_poisson = Fault.site "scf.poisson"

let site_positions p =
  let n = Modespace.sites_for_length p.Params.channel_length in
  let dx = Modespace.site_spacing in
  (* Sites centered in the channel; contacts at 0 and L. *)
  let span = dx *. float_of_int (n - 1) in
  let x0 = (p.Params.channel_length -. span) /. 2. in
  Array.init n (fun i -> x0 +. (dx *. float_of_int i))

(* The Poisson stack (with its factorized matrix) depends only on the
   device geometry, not on bias or impurities: memoize it. *)
let stack_cache : (string, Stack2d.t) Hashtbl.t = Hashtbl.create 8

let stack_mutex = Mutex.create ()

let stack_for p =
  let key =
    Printf.sprintf "%d-%g-%g-%g-%b" p.Params.gnr_index p.Params.channel_length
      p.Params.oxide_thickness p.Params.oxide_eps_r
      (p.Params.contact_style = Stack2d.Point)
  in
  match Mutex.protect stack_mutex (fun () -> Hashtbl.find_opt stack_cache key) with
  | Some s -> s
  | None ->
    let sites = site_positions p in
    let xs =
      Array.concat [ [| 0. |]; sites; [| p.Params.channel_length |] ]
    in
    let tox = p.Params.oxide_thickness in
    let nz_half = 6 in
    let zs = Vec.linspace (-.tox) tox ((2 * nz_half) + 1) in
    let eps_r _ _ = p.Params.oxide_eps_r in
    let s =
      Stack2d.make ~contact_style:p.Params.contact_style ~xs ~zs ~eps_r
        ~sheet_row:nz_half ()
    in
    Mutex.protect stack_mutex (fun () -> Hashtbl.replace stack_cache key s);
    s

(* Mode chains share the potential profile; hoppings encode the subband.
   The metal contact is wide-band (energy-independent self-energy);
   mid-gap Fermi-level pinning enters through the Dirichlet potential
   boundary conditions. *)
let chains_for p =
  let ms = Modespace.reduce ~n_modes:p.Params.n_modes p.Params.gnr_index in
  let sigma = Self_energy.wideband ~gamma:p.Params.contact_gamma in
  Array.map (fun m -> (m, sigma)) ms.Modespace.modes

let solve ?(tol = 1e-3) ?(max_iter = 120) ?init ?(mixing = `Anderson)
    ?parallel ?obs ?ctx p ~vg ~vd =
  (* Legacy labels win over the ctx fields; see Ctx.resolve. *)
  let c = Ctx.resolve ?ctx ?parallel ?obs () in
  let parallel = c.Ctx.parallel and obs = c.Ctx.obs in
  Obs.Span.run ~obs "scf.solve" @@ fun () ->
  let c_solves = Obs.Counter.make ~obs "scf.solves" in
  let c_iters = Obs.Counter.make ~obs "scf.iterations" in
  let c_charge = Obs.Counter.make ~obs "scf.charge_evals" in
  let c_poisson = Obs.Counter.make ~obs "scf.poisson_solves" in
  let h_iters = Obs.Histogram.make ~obs "scf.iterations" in
  Obs.Counter.incr c_solves;
  let sites = site_positions p in
  let n = Array.length sites in
  let stack = stack_for p in
  let kt = Const.kt_ev p.Params.temperature in
  let mu_s = 0. and mu_d = -.vd in
  let bias = { Observables.mu_s; mu_d; kt } in
  let u_gate = -.(vg +. p.Params.gate_offset) in
  let bc = { Stack2d.left = 0.; right = -.vd; bottom = u_gate; top = u_gate } in
  let imp =
    Array.init n (fun i ->
        List.fold_left
          (fun acc im -> acc +. Impurity.onsite_shift im sites.(i))
          0. p.Params.impurities)
  in
  let modes = chains_for p in
  (* Energy grid: covers the contact windows and the potential excursion. *)
  let u_bound_lo = Float.min 0. (Float.min (-.vd) u_gate) -. p.Params.energy_margin in
  let u_bound_hi = Float.max 0. (Float.max (-.vd) u_gate) +. p.Params.energy_margin in
  let imp_lo = Array.fold_left Float.min 0. imp in
  let imp_hi = Array.fold_left Float.max 0. imp in
  let egrid =
    Observables.energy_grid
      ~lo:(u_bound_lo +. Float.min 0. imp_lo)
      ~hi:(u_bound_hi +. Float.max 0. imp_hi)
      ~de:p.Params.energy_step
  in
  let dx = Modespace.site_spacing in
  let w_eff = Params.effective_width p in
  (* Charge implied by a potential profile (summed over mode chains). *)
  let charge_of u =
    Fault.fail fault_charge;
    Obs.Counter.incr c_charge;
    let total = Array.make n 0. in
    Array.iter
      (fun ((m : Modespace.mode), sigma) ->
        let onsite = Array.init n (fun i -> u.(i) +. imp.(i)) in
        let hopping =
          Array.init (n - 1) (fun i -> if i mod 2 = 0 then m.t1 else m.t2)
        in
        let chain = { Rgf.onsite; hopping; sigma_l = sigma; sigma_r = sigma } in
        let q =
          Observables.site_charge ~eta:1.5e-3 ~parallel ~obs ~bias ~egrid
            ~midgap:onsite
            (fun _ -> chain)
        in
        for i = 0 to n - 1 do
          total.(i) <- total.(i) +. q.(i)
        done)
      modes;
    total
  in
  (* Poisson update for a given charge.  [poisson_calls] feeds the
     per-iteration trace entries (deltas around each SCF step); Stack2d is
     a direct factorized solve, so "Poisson iterations" per SCF step is a
     solve count, not an inner iteration count. *)
  let poisson_calls = ref 0 in
  let poisson_of site_charge =
    Fault.fail fault_poisson;
    incr poisson_calls;
    Obs.Counter.incr c_poisson;
    let sheet = Array.map (fun q -> q /. (dx *. w_eff)) site_charge in
    let u_grid = Stack2d.solve stack ~bc ~sheet_charge:sheet in
    Stack2d.plane_potential stack u_grid
  in
  let u0 =
    match init with
    | Some u when Array.length u = n -> Array.copy u
    | Some u ->
      invalid_arg
        (Printf.sprintf
           "Scf.solve: init has %d sites but the device discretizes to %d"
           (Array.length u) n)
    | None -> poisson_of (Array.make n 0.)
  in
  (* Diagonal Poisson self-response du_i/dq_i (V/C), used to precondition
     the fixed point a la Gummel: in strong inversion the charge reacts as
     ~ q/kT per volt, so the raw map has loop gain r*|q|/kT >> 1. *)
  let zero_charge = poisson_of (Array.make n 0.) in
  let response =
    let probe = 1e-21 in
    Array.init n (fun i ->
        let sc = Array.make n 0. in
        sc.(i) <- probe;
        let u = poisson_of sc in
        Float.abs (u.(i) -. zero_charge.(i)) /. probe)
  in
  let precondition u q u_implied =
    Array.init n (fun i ->
        let gain = response.(i) *. Float.abs q.(i) /. kt in
        u.(i) +. ((u_implied.(i) -. u.(i)) /. (1. +. gain)))
  in
  let mixer =
    match mixing with
    | `Anderson -> Mixing.anderson ~history:5 ~alpha:0.5 ()
    | `Anderson_damped alpha -> Mixing.anderson ~history:5 ~alpha ()
    | `Linear alpha -> Mixing.linear ~alpha
  in
  (* If Anderson stops making progress (charge-feedback oscillation near
     strong inversion), restart it with heavier damping. *)
  let stall = ref 0 and best_res = ref infinity and slow = ref false in
  (* Per-iteration convergence trace, collected unconditionally (it is a
     solver result, not an obs metric): entry [k] carries the update norm
     measured at iteration [k], the Poisson solves spent evaluating it and
     the mixing factor applied toward iteration [k+1] (0. on the terminal
     entry).  Derived purely from the deterministic iterates, so it is
     identical sequential vs parallel. *)
  let traces = ref [] in
  let base_alpha =
    match mixing with
    | `Anderson -> 0.5
    | `Anderson_damped alpha | `Linear alpha -> alpha
  in
  let rec iterate u it best =
    let p0 = !poisson_calls in
    let q = charge_of u in
    let u_implied = poisson_of q in
    let res = Vec.max_abs_diff u_implied u in
    let best = match best with
      | Some (_, _, r) when r <= res -> best
      | _ -> Some (u, q, res)
    in
    if res < !best_res *. 0.98 then begin
      best_res := res;
      stall := 0
    end
    else incr stall;
    let restarted = !stall > 6 && not !slow in
    if restarted then begin
      slow := true;
      Mixing.reset mixer
    end;
    let record mixing_factor =
      traces :=
        {
          step = it;
          update_norm = res;
          mixing_factor;
          poisson_solves = !poisson_calls - p0;
          restarted;
        }
        :: !traces
    in
    if res <= tol || it >= max_iter then begin
      record 0.;
      let u, q, res = match best with Some b -> b | None -> assert false in
      (u, q, it, res)
    end
    else begin
      record (if !slow then 0.25 else base_alpha);
      let target = precondition u q u_implied in
      let u' =
        if !slow then Vec.add u (Vec.scale 0.25 (Vec.sub target u))
        else Mixing.step mixer ~x:u ~gx:target
      in
      iterate u' (it + 1) best
    end
  in
  let u, q, iterations, residual = iterate u0 0 None in
  (* Typed convergence status (docs/ROBUST.md): [residual] is the best
     update norm over the run, and any iterate at or below [tol]
     terminates the loop, so [residual <= tol] is exactly "converged".
     An unconverged run is Stalled when the stall detector had tripped
     (no 2 % improvement over the trailing window), Max_iter when the
     cap interrupted a still-improving iteration. *)
  let status =
    if residual <= tol then Converged
    else if !stall > 6 then Stalled
    else Max_iter
  in
  Obs.Counter.add c_iters iterations;
  Obs.Histogram.observe h_iters iterations;
  (* Terminal current of the converged device. *)
  let current =
    Array.fold_left
      (fun acc ((m : Modespace.mode), sigma) ->
        let onsite = Array.init n (fun i -> u.(i) +. imp.(i)) in
        let hopping =
          Array.init (n - 1) (fun i -> if i mod 2 = 0 then m.t1 else m.t2)
        in
        let chain = { Rgf.onsite; hopping; sigma_l = sigma; sigma_r = sigma } in
        acc
        +. Observables.current ~eta:1.5e-3 ~parallel ~obs ~bias ~egrid
             (fun _ -> chain))
      0. modes
  in
  {
    vg;
    vd;
    potential = u;
    current;
    charge = Vec.sum q;
    site_charge = q;
    iterations;
    residual;
    status;
    trace = List.rev !traces;
  }

let conduction_band_profile p sol =
  let sites = site_positions p in
  let half_gap = Params.schottky_barrier p in
  Array.mapi
    (fun i u ->
      let imp_shift =
        List.fold_left
          (fun acc im -> acc +. Impurity.onsite_shift im sites.(i))
          0. p.Params.impurities
      in
      u +. imp_shift +. half_gap)
    sol.potential
