type bytes_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external crc32_str : string -> int -> int -> int = "gnrfet_crc32_str"
[@@noalloc]

external crc32_ba : bytes_view -> int -> int -> int = "gnrfet_crc32_ba"
[@@noalloc]

external crc32_sw : string -> int -> int -> int = "gnrfet_crc32_sw"
[@@noalloc]

let check ~what ~total ~pos ~len =
  if pos < 0 || len < 0 || pos > total - len then
    invalid_arg
      (Printf.sprintf "Crc32.%s: range [%d, %d+%d) outside 0..%d" what pos pos
         len total)

let string s ~pos ~len =
  check ~what:"string" ~total:(String.length s) ~pos ~len;
  crc32_str s pos len

let bigarray ba ~pos ~len =
  check ~what:"bigarray" ~total:(Bigarray.Array1.dim ba) ~pos ~len;
  crc32_ba ba pos len

let string_sw s ~pos ~len =
  check ~what:"string_sw" ~total:(String.length s) ~pos ~len;
  crc32_sw s pos len
