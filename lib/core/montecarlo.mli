(** Monte Carlo study of the 15-stage ring oscillator under simultaneous
    width variation and charge impurities (Fig 6 of the paper).

    Widths N ∈ \{9, 12, 15\} and charges ∈ \{−q, 0, +q\} are drawn from a
    discretized normal distribution (mean N = 12 / charge 0; the ±σ points
    map to the outer values), independently for the n- and p-FET of every
    stage.  Stage delays, leakages and switching energies come from the
    pre-characterized inverter variants; the ring frequency is
    1 / (2 Σ tp_i) with a first-order fanout-load correction (see
    DESIGN.md). *)

type sample = {
  frequency : float;  (** Hz *)
  p_dynamic : float;  (** W *)
  p_static : float;  (** W *)
}

type result = {
  nominal : sample;  (** all stages nominal *)
  samples : sample array;
      (** surviving samples, in draw order (length [samples -
          quarantined]) *)
  quarantined : int;
      (** samples dropped because their evaluation failed with a typed
          solver error, an injected fault or a solver [Failure]; also
          counted in the [robust.mc.quarantined] obs counter.  0 on
          healthy runs.  See docs/ROBUST.md. *)
}

val quarantineable : exn -> bool
(** True for the exceptions a statistical study survives by dropping
    the sample: [Robust_error.Error], [Sparse.No_convergence],
    [Fault.Injected], [Failure] and the numerics-layer
    [Singular]/[Stalled].  Shared by {!run_with} and the campaign
    engine (lib/campaign) so the two quarantine policies stay
    identical; anything else (out-of-memory, programming errors)
    propagates. *)

val run :
  ?op:Variation.op_point ->
  ?stages:int ->
  ?samples:int ->
  ?seed:int ->
  ?sigma_probability:float ->
  unit ->
  result
(** Defaults: operating point B, 15 stages, 2000 samples, seed 42,
    [sigma_probability] = 0.1587 per tail (the mass beyond ±1σ of a
    normal, as implied by the paper's "N = 9/15 and ±q set to σ").
    Failed samples are quarantined, not propagated (see {!result});
    a failing {e nominal} evaluation still raises. *)

val run_with :
  evaluate:((int * int) array -> sample) ->
  stages:int ->
  samples:int ->
  seed:int ->
  sigma_probability:float ->
  nominal_ids:int * int ->
  unit ->
  result
(** The sampling/quarantine loop behind {!run}, parameterized over the
    per-sample evaluator (stage variant ids, n-FET and p-FET packed as
    [3*width_idx + charge_idx]) so the quarantine policy can be tested
    without transient characterizations.  The random draw for a sample
    happens before its evaluation: surviving samples see the same draw
    sequence as a fault-free run. *)

val histograms :
  ?bins:int -> result -> Stats.histogram * Stats.histogram * Stats.histogram
(** (frequency in GHz, dynamic power in µW, static power in µW) — the
    three panels of Fig 6. *)
