type sample = { frequency : float; p_dynamic : float; p_static : float }

type result = { nominal : sample; samples : sample array; quarantined : int }

(* Fault-injection site (docs/ROBUST.md): an armed campaign can fail
   individual samples so the quarantine accounting is exercisable without
   constructing a pathological device. *)
let fault_sample = Fault.site "montecarlo.sample"

let c_quarantined = Obs.Counter.make "robust.mc.quarantined"

(* The one definition of "this sample failed for a reason the study can
   survive": typed solver errors, injected faults, solver [Failure]s
   and the numerics-layer exceptions.  The campaign engine
   (lib/campaign) quarantines on exactly the same predicate so the two
   statistical layers cannot drift apart. *)
let quarantineable = function
  | Robust_error.Error _ | Sparse.No_convergence _ | Fault.Injected _
  | Failure _ | Numerics_error.Singular _ | Numerics_error.Stalled _ ->
    true
  | _ -> false

(* The nine per-FET variants of the study. *)
let mc_widths = [| 9; 12; 15 |]

let mc_charges = [| -1.; 0.; 1. |]

let spec_of iw ic =
  { Variation.gnr_index = mc_widths.(iw); charge = mc_charges.(ic) }

(* Draw an index in {0,1,2} from the discretized normal: P(outer) =
   sigma_probability each. *)
let draw rng ~sigma_probability =
  let u = Rng.float rng in
  if u < sigma_probability then 0
  else if u > 1. -. sigma_probability then 2
  else 1

(* The sampling loop, separated from the expensive transient-backed
   [evaluate] so the quarantine policy is testable with a cheap stub.
   A sample whose evaluation fails with a typed solver error (or an
   injected fault, or a solver [Failure] such as "no output transition")
   is dropped and counted — in [result.quarantined] and in the
   [robust.mc.quarantined] obs counter — instead of killing the whole
   study; the nominal evaluation stays fatal, since without it there is
   nothing to normalize against.  The random draw happens before the
   evaluation, so surviving samples see exactly the draw sequence they
   would in a fault-free run. *)
let run_with ~evaluate ~stages ~samples ~seed ~sigma_probability ~nominal_ids
    () =
  let nominal = evaluate (Array.make stages nominal_ids) in
  let rng = Rng.create seed in
  let quarantined = ref 0 in
  let kept = ref [] in
  for _ = 1 to samples do
    let ids =
      Array.init stages (fun _ ->
          let ni =
            (3 * draw rng ~sigma_probability) + draw rng ~sigma_probability
          in
          let pi =
            (3 * draw rng ~sigma_probability) + draw rng ~sigma_probability
          in
          (ni, pi))
    in
    match
      Fault.fail fault_sample;
      evaluate ids
    with
    | s -> kept := s :: !kept
    | exception e when quarantineable e ->
      incr quarantined;
      Obs.Counter.incr c_quarantined
  done;
  {
    nominal;
    samples = Array.of_list (List.rev !kept);
    quarantined = !quarantined;
  }

(* Input capacitance of a pair at mid-bias: first-order fanout-load
   correction weight. *)
let input_cap (pair : Cells.pair) ~vdd =
  let at (m : Fet_model.t) =
    m.Fet_model.cgs ~vgs:(vdd /. 2.) ~vds:(vdd /. 2.)
    +. m.Fet_model.cgd ~vgs:(vdd /. 2.) ~vds:(vdd /. 2.)
  in
  at pair.Cells.nfet +. at pair.Cells.pfet
  +. (2. *. (pair.Cells.ext.Gnr_model.cgs_e +. pair.Cells.ext.Gnr_model.cgd_e))

type variant_data = {
  metrics : Metrics.inverter_metrics;
  cin : float;
}

(* Stage-type characterizations are expensive (a transient each) and
   bias-point specific: cache them globally. *)
let variant_cache : (string, variant_data) Hashtbl.t = Hashtbl.create 128

let variant_mutex = Mutex.create ()

let run ?(op = Variation.point_b) ?(stages = 15) ?(samples = 2000) ?(seed = 42)
    ?(sigma_probability = 0.1587) () =
  (* Characterize the (n-variant, p-variant) stage types on demand; all
     four GNRs of a FET carry the sampled anomaly (the paper's
     upper-limit scenario, which its own Monte Carlo discussion invokes
     through Table 4). *)
  let variant_data ni pi =
    let key = Printf.sprintf "%g/%g-%d-%d" op.Variation.vdd op.Variation.vt ni pi in
    match Mutex.protect variant_mutex (fun () -> Hashtbl.find_opt variant_cache key) with
    | Some d -> d
    | None ->
      let n_spec = spec_of (ni / 3) (ni mod 3) in
      let p_spec = spec_of (pi / 3) (pi mod 3) in
      let pair = Variation.pair_for ~op ~n_spec ~p_spec ~all_four:true () in
      let metrics = Metrics.inverter_metrics ~pair ~vdd:op.Variation.vdd () in
      let d = { metrics; cin = input_cap pair ~vdd:op.Variation.vdd } in
      Mutex.protect variant_mutex (fun () -> Hashtbl.replace variant_cache key d);
      d
  in
  let nominal_id = 4 (* width 12, charge 0 *) in
  let nominal_data = variant_data nominal_id nominal_id in
  let evaluate stage_ids =
    let n = Array.length stage_ids in
    let tp_sum = ref 0. and p_stat = ref 0. and e_sum = ref 0. in
    for i = 0 to n - 1 do
      let ni, pi = stage_ids.(i) in
      let d = variant_data ni pi in
      let next_ni, next_pi = stage_ids.((i + 1) mod n) in
      let d_next = variant_data next_ni next_pi in
      (* FO4 load: three dummies of the stage's own type plus the next
         stage's input; the characterized delay assumed four own-type
         loads. *)
      let load_corr = ((3. *. d.cin) +. d_next.cin) /. (4. *. d.cin) in
      tp_sum := !tp_sum +. (d.metrics.Metrics.tp *. load_corr);
      e_sum := !e_sum +. (d.metrics.Metrics.e_switch *. load_corr);
      p_stat := !p_stat +. d.metrics.Metrics.p_static
    done;
    let period = 2. *. !tp_sum in
    let frequency = 1. /. period in
    { frequency; p_dynamic = !e_sum *. frequency; p_static = !p_stat }
  in
  ignore nominal_data;
  run_with ~evaluate ~stages ~samples ~seed ~sigma_probability
    ~nominal_ids:(nominal_id, nominal_id) ()

let histograms ?(bins = 30) r =
  let freq = Array.map (fun s -> s.frequency /. 1e9) r.samples in
  let pdyn = Array.map (fun s -> s.p_dynamic /. 1e-6) r.samples in
  let pstat = Array.map (fun s -> s.p_static /. 1e-6) r.samples in
  ( Stats.histogram ~bins freq,
    Stats.histogram ~bins pdyn,
    Stats.histogram ~bins pstat )
