(** Execution context for the solver stack.

    The cross-cutting knobs that used to be threaded through the solver
    entry points as ad-hoc optional labels — [?parallel] (PR 2),
    [?obs] (PR 3) and the table [?grid] — bundled into one value that a
    caller builds once and passes everywhere:

    {[
      let ctx = Ctx.make ~parallel:false ~obs () in
      let s = Scf.solve ~ctx p ~vg ~vd in
      let t = Table_cache.get ~ctx p in
      ...
    ]}

    Every reworked entry point ({!Observables.current},
    {!Observables.site_charge}, {!Observables.transmission_spectrum},
    {!Scf.solve}, {!Scf_robust.solve_robust}, {!Iv_table.generate},
    {!Table_cache.lookup}/[get]/[get_many], the serve layer) takes
    [?ctx:Ctx.t] and keeps the legacy labels as thin deprecated
    wrappers; an explicitly passed legacy label always wins over the
    corresponding [ctx] field, so no existing call site changes
    behavior.  New code should pass [?ctx] only — the gnrlint
    [ctx-labels] rule flags fresh [?parallel]/[?obs] label pairs that
    bypass it (docs/LINT.md).

    The resolution is pure bookkeeping: for any fixed knob values the
    [?ctx] and legacy-label entry points run the exact same solver code,
    so results are bit-for-bit identical (test/test_ctx.ml pins this
    down, including under [GNRFET_DOMAINS=5]).  See docs/API.md. *)

type grid_spec = {
  vg_min : float;
  vg_max : float;
  n_vg : int;
  vd_max : float;
  n_vd : int;
}
(** Bias-grid specification for table generation.  This is the canonical
    definition; {!Iv_table.grid_spec} re-exports it (same record, same
    fields) so existing [Iv_table.grid_spec] code keeps compiling. *)

type t = {
  parallel : bool;
      (** fan work out over the {!Parallel} domain pool (energy loops,
          device batches).  Results are bit-for-bit identical either
          way; pass [false] from code already running under an outer
          parallel fan-out so nesting does not oversubscribe the
          cores (docs/PERF.md). *)
  obs : Obs.t;  (** metric registry receiving counters/timers/spans *)
  grid : grid_spec option;
      (** bias grid for table generation; [None] means
          [Iv_table.default_grid].  Ignored by entry points that do not
          generate tables. *)
}

val default : t
(** The context every entry point resolves against when neither [?ctx]
    nor a legacy label is given.  Computed once at module
    initialization: [parallel] is [true] unless [GNRFET_DOMAINS] is set
    to [0]/[1] at startup (in which case the pool is sequential anyway),
    [obs] is {!Obs.global} (whose enabled state read [GNRFET_OBS] once),
    [grid] is [None]. *)

(* The constructor builds the bundle.  gnrlint: allow ctx-labels *)
val make : ?parallel:bool -> ?obs:Obs.t -> ?grid:grid_spec -> unit -> t
(** {!default} with the given fields overridden. *)

val sequential : t -> t
(** [{ctx with parallel = false}]: the inner-loop context to pass from
    under an outer device-level fan-out. *)

val with_obs : t -> Obs.t -> t

val with_grid : t -> grid_spec -> t

val resolve : ?ctx:t -> ?parallel:bool -> ?obs:Obs.t -> ?grid:grid_spec -> unit -> t
(** Merge a call site's arguments into one effective context: start from
    [ctx] (default {!default}) and let each explicitly passed legacy
    label override the corresponding field.  This is the single
    precedence rule every reworked entry point uses — legacy label >
    [ctx] field > {!default}. *)
