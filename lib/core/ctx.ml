type grid_spec = {
  vg_min : float;
  vg_max : float;
  n_vg : int;
  vd_max : float;
  n_vd : int;
}

type t = { parallel : bool; obs : Obs.t; grid : grid_spec option }

(* Read the environment once, at module initialization.  GNRFET_DOMAINS
   <= 1 means the pool is sequential whatever [parallel] says, so
   defaulting [parallel] to false there only skips pool bookkeeping —
   results are bit-for-bit identical either way (docs/PERF.md).
   GNRFET_OBS is consumed by Obs.global's own initializer. *)
let default =
  let parallel =
    match Sys.getenv_opt "GNRFET_DOMAINS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some d -> d > 1 | None -> true)
    | None -> true
  in
  { parallel; obs = Obs.global; grid = None }

(* The constructor is the one place the label pair exists without ?ctx:
   it builds the bundle.  gnrlint: allow ctx-labels *)
let make ?parallel ?obs ?grid () =
  {
    parallel = Option.value parallel ~default:default.parallel;
    obs = Option.value obs ~default:default.obs;
    grid = (match grid with Some _ -> grid | None -> default.grid);
  }

let sequential t = { t with parallel = false }

let with_obs t obs = { t with obs }

let with_grid t grid = { t with grid = Some grid }

(* Precedence: explicit legacy label > ctx field > default field. *)
let resolve ?ctx ?parallel ?obs ?grid () =
  let base = Option.value ctx ~default in
  {
    parallel = Option.value parallel ~default:base.parallel;
    obs = Option.value obs ~default:base.obs;
    grid = (match grid with Some _ -> grid | None -> base.grid);
  }
