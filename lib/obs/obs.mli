(** gnrfet_obs — zero-dependency observability layer for the solver stack.

    Monotonic counters, cumulative wall-clock timers, power-of-two
    histograms and nestable spans, registered by name in a registry that
    can be snapshotted to a deterministic report or reset between runs.

    {b Cost model.}  Every metric handle carries the [enabled] flag of
    its registry: when the registry is disabled each operation is a
    single branch — no allocation, no clock read, no atomic traffic —
    so instrumentation can stay in solver code permanently.  When
    enabled, counters and histograms are a single [Atomic] RMW and
    timers add one [Unix.gettimeofday] pair per timed region.  Hot
    per-energy loops must only touch counters (amortised per chunk);
    spans and timers belong at per-grid or per-solve granularity.

    {b Registries.}  [global] is the process-wide registry used by the
    static instrumentation in the numerics/NEGF/Poisson/circuit layers.
    Code seams that PR 2 threaded [?parallel] through ({!Scf.solve} →
    {!Iv_table.generate} → {!Table_cache.get_many}) also accept an
    [?obs] registry (default [global]) so a caller can collect an
    isolated snapshot.  The default enabled state of [global] comes from
    the [GNRFET_OBS] environment variable: unset, ["0"], ["false"] or
    ["off"] mean disabled (the test-suite default); anything else means
    enabled.  bench/ and the CLI turn it on explicitly unless
    [GNRFET_OBS=0].

    {b Determinism.}  Counter and histogram contents are deterministic
    functions of the work performed; timer values are wall-clock and
    vary run to run.  Snapshots list every section sorted by metric
    name, so the report {e structure} is deterministic and two runs of
    the same workload produce identical counter sections.

    See docs/OBS.md for the metric inventory and the JSON schema. *)

type t
(** A metric registry. *)

val global : t
(** The process-wide registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh, empty registry (default [enabled:false]); used by tests and
    by callers that want isolated accounting. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Toggling affects subsequent operations only; metric values are
    retained across toggles. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); exposed so low layers can
    time without their own unix dependency. *)

module Counter : sig
  type obs := t

  type t
  (** A named monotonic counter ([Atomic] int). *)

  val make : ?obs:obs -> string -> t
  (** Find-or-create by name in the registry (default {!global}): two
      [make] calls with one name share one cell. *)

  val incr : t -> unit
  (** No-op while the owning registry is disabled (a single branch). *)

  val add : t -> int -> unit
  (** [add c n] with [n >= 0]; negative deltas are ignored so counters
      stay monotonic.  No-op while disabled. *)

  val value : t -> int

  val name : t -> string
end

module Timer : sig
  type obs := t

  type t
  (** A named cumulative wall-clock timer (call count + total time). *)

  val make : ?obs:obs -> string -> t

  val start : t -> float
  (** Returns {!now} when the registry is enabled, [0.] otherwise (so a
      disabled hot path never reads the clock). *)

  val stop : t -> float -> unit
  (** [stop t t0] records [now () -. t0] against [t] when enabled and
      [t0 > 0.]; otherwise a no-op.  Pair with the {!start} result. *)

  val record : t -> float -> unit
  (** Record an externally measured duration (seconds, clamped at 0). *)

  val calls : t -> int

  val total_s : t -> float
end

module Histogram : sig
  type obs := t

  type t
  (** Power-of-two-bucket histogram of non-negative integers (iteration
      counts, sizes): value [v] lands in the bucket whose exclusive
      upper bound is the smallest power of two above [v]. *)

  val make : ?obs:obs -> string -> t

  val observe : t -> int -> unit
  (** No-op while disabled; negative values clamp to 0. *)

  val count : t -> int

  val sum : t -> int

  val max_value : t -> int
end

module Span : sig
  type obs := t

  exception Mismatch of string
  (** Raised when a span exit does not match the innermost open span on
      the current thread — structurally impossible through {!run}, kept
      as a checked invariant for the property suite. *)

  val run : ?obs:obs -> string -> (unit -> 'a) -> 'a
  (** [run name f] opens a span, runs [f], and closes the span whether
      [f] returns or raises; the elapsed time aggregates into the timer
      named [name].  Spans nest {e per thread} (not merely per domain:
      systhreads sharing a domain — the serve daemon's connection
      threads — each get their own stack, so concurrent spans never
      interleave): the exit always matches the innermost open span.
      When the registry is disabled this is exactly [f ()]. *)

  val depth : t -> int
  (** Open spans on the calling thread (0 outside any span). *)

  val stack : t -> string list
  (** Names of the open spans on the calling thread, innermost first. *)
end

(** {2 Snapshots} *)

type timer_stat = { t_calls : int; total_ms : float }

type hist_stat = {
  h_count : int;  (** observations *)
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
      (** (exclusive upper bound, count), nonzero buckets only,
          ascending *)
}

type snapshot = {
  snap_enabled : bool;
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_timers : (string * timer_stat) list;  (** sorted by name *)
  snap_histograms : (string * hist_stat) list;  (** sorted by name *)
}

val snapshot : ?obs:t -> unit -> snapshot
(** Consistent-enough copy of the registry (each cell is read once,
    atomically; no cross-metric transaction). *)

val counter_value : ?obs:t -> string -> int
(** Current value of a counter by name; 0 when unregistered. *)

val reset : ?obs:t -> unit -> unit
(** Zero every metric, keeping registrations (names survive, values
    restart from 0).  Open span stacks are not touched. *)

val to_json : ?indent:string -> snapshot -> string
(** Deterministic JSON: sections and entries sorted by name.  [indent]
    prefixes every line (for embedding in an enclosing document).
    Schema ["gnrfet-obs-v1"], documented in docs/OBS.md. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table (the [obs-report] CLI output). *)
