(* Observability registry: counters, timers, histograms, spans.

   Everything here is designed around two constraints: a disabled
   registry must cost a single branch per operation on solver hot paths
   (no allocation, no clock reads, no atomics), and snapshots must be
   deterministic in structure (sorted by name) so reports diff cleanly
   across runs.  Metric cells are Atomics so worker domains can bump
   them without locks; the registry tables themselves are only touched
   under a mutex at registration/snapshot/reset time. *)

let now () = Unix.gettimeofday ()

type counter_cell = {
  c_name : string;
  c_enabled : bool ref;  (* shared with the owning registry *)
  cell : int Atomic.t;
}

type timer_cell = {
  tm_name : string;
  tm_enabled : bool ref;
  tm_calls : int Atomic.t;
  tm_total_ns : int Atomic.t;
}

let hist_buckets = 63 (* bucket i: values with highest set bit i *)

type hist_cell = {
  hg_name : string;
  hg_enabled : bool ref;
  hg_count : int Atomic.t;
  hg_sum : int Atomic.t;
  hg_max : int Atomic.t;
  hg_bins : int Atomic.t array;
}

type span_frame = { sp_name : string; sp_t0 : float }

type t = {
  enabled_ref : bool ref;
  mutex : Mutex.t;
  counters : (string, counter_cell) Hashtbl.t;
  timers : (string, timer_cell) Hashtbl.t;
  histograms : (string, hist_cell) Hashtbl.t;
  (* Per-thread stacks of open spans, one table per domain (DLS).
     Per-domain alone is not enough: systhreads sharing a domain (the
     serve daemon's per-connection threads) would interleave push/pop
     on one stack, and a perfectly balanced span could try to pop a
     frame another thread pushed — a spurious Mismatch.  The table is
     guarded by the registry mutex; each stack ref is then only ever
     touched by its own thread.  Entries of finished threads linger,
     bounded by the peak thread count of the domain. *)
  span_stack : (int, span_frame list ref) Hashtbl.t Domain.DLS.key;
}

let create ?(enabled = false) () =
  {
    enabled_ref = ref enabled;
    mutex = Mutex.create ();
    counters = Hashtbl.create 64;
    timers = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    span_stack = Domain.DLS.new_key (fun () -> Hashtbl.create 8);
  }

let env_enables_obs () =
  match Sys.getenv_opt "GNRFET_OBS" with
  | None | Some ("0" | "false" | "off" | "") -> false
  | Some _ -> true

let global = create ~enabled:(env_enables_obs ()) ()

let enabled reg = !(reg.enabled_ref)

let set_enabled reg flag = reg.enabled_ref := flag

let resolve = function Some reg -> reg | None -> global

(* Find-or-create under the registry mutex; registration is rare (module
   init or once per solver call), so the lock is uncontended. *)
let intern table mutex name build =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table name with
      | Some cell -> cell
      | None ->
        let cell = build () in
        Hashtbl.replace table name cell;
        cell)

module Counter = struct
  type nonrec t = counter_cell

  let make ?obs name =
    let reg = resolve obs in
    intern reg.counters reg.mutex name (fun () ->
        { c_name = name; c_enabled = reg.enabled_ref; cell = Atomic.make 0 })

  let incr c = if !(c.c_enabled) then ignore (Atomic.fetch_and_add c.cell 1)

  let add c n =
    if !(c.c_enabled) && n > 0 then ignore (Atomic.fetch_and_add c.cell n)

  let value c = Atomic.get c.cell

  let name c = c.c_name
end

module Timer = struct
  type nonrec t = timer_cell

  let make ?obs name =
    let reg = resolve obs in
    intern reg.timers reg.mutex name (fun () ->
        {
          tm_name = name;
          tm_enabled = reg.enabled_ref;
          tm_calls = Atomic.make 0;
          tm_total_ns = Atomic.make 0;
        })

  let record tm seconds =
    if !(tm.tm_enabled) then begin
      let ns = int_of_float (Float.max 0. seconds *. 1e9) in
      ignore (Atomic.fetch_and_add tm.tm_calls 1);
      ignore (Atomic.fetch_and_add tm.tm_total_ns ns)
    end

  let start tm = if !(tm.tm_enabled) then now () else 0.

  let stop tm t0 = if !(tm.tm_enabled) && t0 > 0. then record tm (now () -. t0)

  let calls tm = Atomic.get tm.tm_calls

  let total_s tm = float_of_int (Atomic.get tm.tm_total_ns) *. 1e-9
end

module Histogram = struct
  type nonrec t = hist_cell

  let make ?obs name =
    let reg = resolve obs in
    intern reg.histograms reg.mutex name (fun () ->
        {
          hg_name = name;
          hg_enabled = reg.enabled_ref;
          hg_count = Atomic.make 0;
          hg_sum = Atomic.make 0;
          hg_max = Atomic.make 0;
          hg_bins = Array.init hist_buckets (fun _ -> Atomic.make 0);
        })

  let bucket_of v =
    let rec bits acc x = if x = 0 then acc else bits (acc + 1) (x lsr 1) in
    min (hist_buckets - 1) (bits 0 v)

  (* Lock-free max: retry the CAS until our value is no longer larger. *)
  let rec bump_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v

  let observe h v =
    if !(h.hg_enabled) then begin
      let v = max 0 v in
      ignore (Atomic.fetch_and_add h.hg_count 1);
      ignore (Atomic.fetch_and_add h.hg_sum v);
      bump_max h.hg_max v;
      ignore (Atomic.fetch_and_add h.hg_bins.(bucket_of v) 1)
    end

  let count h = Atomic.get h.hg_count

  let sum h = Atomic.get h.hg_sum

  let max_value h = Atomic.get h.hg_max
end

module Span = struct
  exception Mismatch of string

  let thread_stack reg =
    let tbl = Domain.DLS.get reg.span_stack in
    let id = Thread.id (Thread.self ()) in
    Mutex.protect reg.mutex (fun () ->
        match Hashtbl.find_opt tbl id with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.replace tbl id s;
          s)

  let depth reg = List.length !(thread_stack reg)

  let stack reg = List.map (fun f -> f.sp_name) !(thread_stack reg)

  let exit_span reg tm name =
    let stack = thread_stack reg in
    match !stack with
    | { sp_name; sp_t0 } :: rest when String.equal sp_name name ->
      stack := rest;
      Timer.record tm (now () -. sp_t0)
    | _ -> raise (Mismatch name)

  let run ?obs name f =
    let reg = resolve obs in
    if not (enabled reg) then f ()
    else begin
      let tm = Timer.make ~obs:reg name in
      let stack = thread_stack reg in
      stack := { sp_name = name; sp_t0 = now () } :: !stack;
      match f () with
      | result ->
        exit_span reg tm name;
        result
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        exit_span reg tm name;
        Printexc.raise_with_backtrace e bt
    end
end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

type timer_stat = { t_calls : int; total_ms : float }

type hist_stat = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type snapshot = {
  snap_enabled : bool;
  snap_counters : (string * int) list;
  snap_timers : (string * timer_stat) list;
  snap_histograms : (string * hist_stat) list;
}

let sorted_by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let snapshot ?obs () =
  let reg = resolve obs in
  Mutex.protect reg.mutex (fun () ->
      let counters =
        Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc)
          reg.counters []
      in
      let timers =
        Hashtbl.fold
          (fun name tm acc ->
            ( name,
              { t_calls = Timer.calls tm; total_ms = Timer.total_s tm *. 1e3 } )
            :: acc)
          reg.timers []
      in
      let histograms =
        Hashtbl.fold
          (fun name h acc ->
            let buckets = ref [] in
            for i = hist_buckets - 1 downto 0 do
              let c = Atomic.get h.hg_bins.(i) in
              if c > 0 then buckets := (1 lsl i, c) :: !buckets
            done;
            ( name,
              {
                h_count = Histogram.count h;
                h_sum = Histogram.sum h;
                h_max = Histogram.max_value h;
                h_buckets = !buckets;
              } )
            :: acc)
          reg.histograms []
      in
      {
        snap_enabled = enabled reg;
        snap_counters = sorted_by_name counters;
        snap_timers = sorted_by_name timers;
        snap_histograms = sorted_by_name histograms;
      })

let counter_value ?obs name =
  let reg = resolve obs in
  match
    Mutex.protect reg.mutex (fun () -> Hashtbl.find_opt reg.counters name)
  with
  | Some c -> Counter.value c
  | None -> 0

let reset ?obs () =
  let reg = resolve obs in
  Mutex.protect reg.mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) reg.counters;
      Hashtbl.iter
        (fun _ tm ->
          Atomic.set tm.tm_calls 0;
          Atomic.set tm.tm_total_ns 0)
        reg.timers;
      Hashtbl.iter
        (fun _ h ->
          Atomic.set h.hg_count 0;
          Atomic.set h.hg_sum 0;
          Atomic.set h.hg_max 0;
          Array.iter (fun bin -> Atomic.set bin 0) h.hg_bins)
        reg.histograms)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(indent = "") snap =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf indent;
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let sep i n = if i = n - 1 then "" else "," in
  line "{";
  line "  \"schema\": \"gnrfet-obs-v1\",";
  line "  \"enabled\": %b," snap.snap_enabled;
  line "  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      line "    \"%s\": %d%s" (json_escape name) v
        (sep i (List.length snap.snap_counters)))
    snap.snap_counters;
  line "  },";
  line "  \"timers\": {";
  List.iteri
    (fun i (name, st) ->
      line "    \"%s\": {\"calls\": %d, \"total_ms\": %.6g}%s"
        (json_escape name) st.t_calls st.total_ms
        (sep i (List.length snap.snap_timers)))
    snap.snap_timers;
  line "  },";
  line "  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      let buckets =
        h.h_buckets
        |> List.map (fun (ub, c) -> Printf.sprintf "[%d, %d]" ub c)
        |> String.concat ", "
      in
      line "    \"%s\": {\"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": [%s]}%s"
        (json_escape name) h.h_count h.h_sum h.h_max buckets
        (sep i (List.length snap.snap_histograms)))
    snap.snap_histograms;
  line "  }";
  Buffer.add_string buf indent;
  Buffer.add_string buf "}";
  Buffer.contents buf

let pp ppf snap =
  Format.fprintf ppf "obs snapshot (%s)@."
    (if snap.snap_enabled then "enabled" else "disabled");
  if snap.snap_counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-34s %12d@." name v)
      snap.snap_counters
  end;
  if snap.snap_timers <> [] then begin
    Format.fprintf ppf "timers:@.";
    List.iter
      (fun (name, st) ->
        let per_call =
          if st.t_calls > 0 then st.total_ms /. float_of_int st.t_calls else 0.
        in
        Format.fprintf ppf "  %-34s %8d calls %12.3f ms total %10.4f ms/call@."
          name st.t_calls st.total_ms per_call)
      snap.snap_timers
  end;
  if snap.snap_histograms <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-34s count %-8d sum %-10d max %-8d@." name
          h.h_count h.h_sum h.h_max;
        List.iter
          (fun (ub, c) -> Format.fprintf ppf "    < %-10d %d@." ub c)
          h.h_buckets)
      snap.snap_histograms
  end
