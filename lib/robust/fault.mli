(** Deterministic, seeded fault injection at named solver sites.

    The robustness layer (escalation ladders, quarantines, cache
    hardening) only earns its keep if every recovery path is actually
    exercised; this module lets tests and CI drive those paths
    deterministically.  Solver code declares a {e site} once at module
    level and asks it on the failure-prone operation:

    {[
      let fault_cg = Fault.site "sparse.cg"
      ...
      Fault.fail fault_cg;          (* raises Injected when armed & due *)
    ]}

    {b Cost contract.}  Mirrors [Obs]: while no campaign is armed (the
    default), {!fail} and {!should_fail} are a single mutable-bool load
    and branch — no allocation, no hashing — so sites can live on hot
    paths permanently.

    {b Determinism.}  Whether hit [k] of site [s] fires depends only on
    the campaign seed, the site name and [k] (a splitmix64 mix), never on
    wall clock, scheduling or address layout: a campaign spec reproduces
    the same fault pattern on every run for a serial workload, and
    per-site patterns are independent of each other.

    {b Spec grammar} ([GNRFET_FAULT] or {!arm}):

    {v <spec>  ::= <entry> ("," <entry>)* [":" <seed>]
<entry> ::= <site-pattern> [<mode>]
<mode>  ::= "@" <float>      probability per hit, e.g. sparse.cg@0.02
          | "#" <n>          exactly hit n (1-based), e.g. scf.charge#1
          | "#" <a> "-" <b>  hits a through b inclusive
          | "%" <k>          every k-th hit v}

    A site pattern is an exact site name or a prefix ending in ["*"]
    (["scf.*"]).  A bare entry (no mode) means every hit fires.  The
    optional trailing [:<seed>] (default 1) feeds the probabilistic
    mode.  Examples: ["table_cache.read#1"],
    ["sparse.cg@0.05,mna.newton@0.02:42"].  See docs/ROBUST.md. *)

type site
(** A named injection point.  Create once at module level ({!site}
    interns by name: same name, same site). *)

val splitmix64 : int64 -> int64
(** The splitmix64 finalizer behind the deterministic hit decisions,
    exposed so other deterministic-mutation machinery (the [gnrtbl]
    corruption-matrix fuzzer, test/test_tbl_format.ml) can share one
    audited mixing function instead of growing private RNGs. *)

exception Injected of { site : string; hit : int }
(** Raised by {!fail} when the armed campaign selects this hit.  [hit]
    is 1-based and counts calls made while armed. *)

val site : string -> site
(** Find-or-create the site registered under this name. *)

val site_name : site -> string

val fail : site -> unit
(** Raise {!Injected} if an armed campaign selects this hit of the
    site; otherwise (and always when disarmed) return unit.  Each armed
    call advances the site's hit counter; each injection also bumps the
    obs counter [robust.fault.<site-name>]. *)

val should_fail : site -> bool
(** Decision without the raise, for sites that model failure as a
    return value (e.g. a Newton solve returning [None]).  Same
    counting and accounting as {!fail}. *)

val active : unit -> bool
(** True while a campaign is armed. *)

val site_armed : string -> bool
(** True when a campaign is armed {e and} one of its entries matches
    this site name.  Tests use it to skip assertions that are only
    meaningful when a given site cannot fire (docs/ROBUST.md). *)

val hits : site -> int
(** Hits recorded at this site since it was last (re)armed. *)

val injected : site -> int
(** Injections fired at this site since it was last (re)armed. *)

val arm : string -> unit
(** Parse and arm a campaign spec, resetting all hit counters.
    @raise Invalid_argument on a malformed spec (message names the
    offending fragment). *)

val disarm : unit -> unit
(** Stop injecting; sites return to the single-branch disabled path. *)

val current_spec : unit -> string option
(** The armed spec verbatim, for reports. *)

val with_spec : string -> (unit -> 'a) -> 'a
(** [with_spec spec f] arms [spec], runs [f], and restores the previous
    campaign (or disarmed state) whether [f] returns or raises. *)
