type corrupt_reason =
  | Bad_magic
  | Bad_version of { found : int }
  | Crc_mismatch of { section : string }
  | Truncated of { expected : int; got : int }
  | Undecodable of { detail : string }

type torn_reason =
  | Torn_bad_header of { detail : string }
  | Torn_spec_mismatch of { expected : string; found : string }
  | Torn_truncated of { offset : int }
  | Torn_crc of { record : int; offset : int }
  | Torn_out_of_order of { record : int; expected : int; found : int }

type t =
  | Scf_stalled of { vg : float; vd : float; iterations : int; residual : float }
  | Scf_max_iter of { vg : float; vd : float; iterations : int; residual : float }
  | Iterative_no_convergence of {
      solver : string;
      iterations : int;
      residual : float;
    }
  | Newton_failure of { analysis : string; time : float }
  | Cache_corrupt of { path : string; reason : corrupt_reason }
  | Injected_fault of { site : string; hit : int }
  | Unrecovered of { stage : string; attempts : int; detail : string }
  | Client_timeout of { op : string; deadline_s : float }
  | Client_disconnected of { op : string; detail : string }
  | Checkpoint_torn of { path : string; reason : torn_reason }

exception Error of t

let corrupt_label = function
  | Bad_magic -> "bad_magic"
  | Bad_version _ -> "bad_version"
  | Crc_mismatch _ -> "crc_mismatch"
  | Truncated _ -> "truncated"
  | Undecodable _ -> "undecodable"

let corrupt_reason_to_string = function
  | Bad_magic -> "bad magic (not a gnrtbl file)"
  | Bad_version { found } -> Printf.sprintf "unsupported format version %d" found
  | Crc_mismatch { section } ->
    Printf.sprintf "CRC-32C mismatch in section %S" section
  | Truncated { expected; got } ->
    Printf.sprintf "truncated (expected %d bytes, got %d)" expected got
  | Undecodable { detail } -> Printf.sprintf "undecodable (%s)" detail

let torn_label = function
  | Torn_bad_header _ -> "bad_header"
  | Torn_spec_mismatch _ -> "spec_mismatch"
  | Torn_truncated _ -> "truncated"
  | Torn_crc _ -> "crc"
  | Torn_out_of_order _ -> "out_of_order"

let torn_reason_to_string = function
  | Torn_bad_header { detail } -> Printf.sprintf "bad header (%s)" detail
  | Torn_spec_mismatch { expected; found } ->
    Printf.sprintf "journal belongs to a different spec (expected %s, found %s)"
      expected found
  | Torn_truncated { offset } ->
    Printf.sprintf "torn tail: truncated record at byte %d" offset
  | Torn_crc { record; offset } ->
    Printf.sprintf "torn tail: CRC-32C mismatch in record %d at byte %d" record
      offset
  | Torn_out_of_order { record; expected; found } ->
    Printf.sprintf
      "torn tail: record %d out of order (expected sample %d, found %d)" record
      expected found

let to_string = function
  | Scf_stalled { vg; vd; iterations; residual } ->
    Printf.sprintf
      "SCF stalled at vg=%g vd=%g (%d iterations, residual %.3g V)" vg vd
      iterations residual
  | Scf_max_iter { vg; vd; iterations; residual } ->
    Printf.sprintf
      "SCF hit max iterations at vg=%g vd=%g (%d iterations, residual %.3g V)"
      vg vd iterations residual
  | Iterative_no_convergence { solver; iterations; residual } ->
    Printf.sprintf "%s did not converge (%d iterations, residual %.3g)" solver
      iterations residual
  | Newton_failure { analysis; time } ->
    if analysis = "dc" then "MNA Newton failed (dc operating point)"
    else Printf.sprintf "MNA Newton failed (%s, t=%.4g s)" analysis time
  | Cache_corrupt { path; reason } ->
    Printf.sprintf "corrupt table cache file %s (%s); quarantined" path
      (corrupt_reason_to_string reason)
  | Injected_fault { site; hit } ->
    Printf.sprintf "injected fault at site %s (hit %d)" site hit
  | Unrecovered { stage; attempts; detail } ->
    Printf.sprintf "%s unrecovered after %d attempts: %s" stage attempts detail
  | Client_timeout { op; deadline_s } ->
    Printf.sprintf "serve client: %s timed out after %g s" op deadline_s
  | Client_disconnected { op; detail } ->
    Printf.sprintf "serve client: disconnected during %s (%s)" op detail
  | Checkpoint_torn { path; reason } ->
    Printf.sprintf "checkpoint journal %s: %s" path
      (torn_reason_to_string reason)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Robust_error.Error: " ^ to_string e)
    | _ -> None)

let raise_ e = raise (Error e)
