type corrupt_reason =
  | Bad_magic
  | Bad_version of { found : int }
  | Crc_mismatch of { section : string }
  | Truncated of { expected : int; got : int }
  | Undecodable of { detail : string }

type t =
  | Scf_stalled of { vg : float; vd : float; iterations : int; residual : float }
  | Scf_max_iter of { vg : float; vd : float; iterations : int; residual : float }
  | Iterative_no_convergence of {
      solver : string;
      iterations : int;
      residual : float;
    }
  | Newton_failure of { analysis : string; time : float }
  | Cache_corrupt of { path : string; reason : corrupt_reason }
  | Injected_fault of { site : string; hit : int }
  | Unrecovered of { stage : string; attempts : int; detail : string }

exception Error of t

let corrupt_label = function
  | Bad_magic -> "bad_magic"
  | Bad_version _ -> "bad_version"
  | Crc_mismatch _ -> "crc_mismatch"
  | Truncated _ -> "truncated"
  | Undecodable _ -> "undecodable"

let corrupt_reason_to_string = function
  | Bad_magic -> "bad magic (not a gnrtbl file)"
  | Bad_version { found } -> Printf.sprintf "unsupported format version %d" found
  | Crc_mismatch { section } ->
    Printf.sprintf "CRC-32C mismatch in section %S" section
  | Truncated { expected; got } ->
    Printf.sprintf "truncated (expected %d bytes, got %d)" expected got
  | Undecodable { detail } -> Printf.sprintf "undecodable (%s)" detail

let to_string = function
  | Scf_stalled { vg; vd; iterations; residual } ->
    Printf.sprintf
      "SCF stalled at vg=%g vd=%g (%d iterations, residual %.3g V)" vg vd
      iterations residual
  | Scf_max_iter { vg; vd; iterations; residual } ->
    Printf.sprintf
      "SCF hit max iterations at vg=%g vd=%g (%d iterations, residual %.3g V)"
      vg vd iterations residual
  | Iterative_no_convergence { solver; iterations; residual } ->
    Printf.sprintf "%s did not converge (%d iterations, residual %.3g)" solver
      iterations residual
  | Newton_failure { analysis; time } ->
    if analysis = "dc" then "MNA Newton failed (dc operating point)"
    else Printf.sprintf "MNA Newton failed (%s, t=%.4g s)" analysis time
  | Cache_corrupt { path; reason } ->
    Printf.sprintf "corrupt table cache file %s (%s); quarantined" path
      (corrupt_reason_to_string reason)
  | Injected_fault { site; hit } ->
    Printf.sprintf "injected fault at site %s (hit %d)" site hit
  | Unrecovered { stage; attempts; detail } ->
    Printf.sprintf "%s unrecovered after %d attempts: %s" stage attempts detail

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Robust_error.Error: " ^ to_string e)
    | _ -> None)

let raise_ e = raise (Error e)
