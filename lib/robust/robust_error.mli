(** Typed failure taxonomy for the solver stack.

    Every recoverable solver failure is one of these constructors, so
    recovery policy (lib/robust ladders, quarantines) can match on
    structure instead of scraping [Failure] strings, and unrecovered
    failures surface with enough context to reproduce them (bias point,
    iteration count, residual).  Raised as {!Error}; classify foreign
    exceptions with [Robust.classify].  See docs/ROBUST.md. *)

type corrupt_reason =
  | Bad_magic  (** the file does not start with the [GNRTBL] magic *)
  | Bad_version of { found : int }
      (** a [gnrtbl] file from a format version this reader does not
          speak (docs/FORMAT.md) *)
  | Crc_mismatch of { section : string }
      (** the named section ([“header”], [“vg”], [“vd”], [“current”],
          [“charge”], [“failed_points”]) failed its CRC-32C check *)
  | Truncated of { expected : int; got : int }
      (** the file is shorter (or longer) than the layout demands;
          [expected] is the byte count the header — or, below the
          minimum header size, the format — requires *)
  | Undecodable of { detail : string }
      (** not attributable to a precise section: legacy-Marshal parse
          failures and injected read faults *)
(** Why an on-disk table was rejected, precise enough that every
    corruption-matrix mutation class maps to a distinct constructor
    (docs/FORMAT.md lists the validation order that guarantees it). *)

val corrupt_label : corrupt_reason -> string
(** Constructor name in snake case ([“bad_magic”], …) — the suffix of
    the per-reason quarantine counters
    [table_cache.corrupt.<label>]. *)

val corrupt_reason_to_string : corrupt_reason -> string
(** One-line human-readable rendering. *)

type t =
  | Scf_stalled of { vg : float; vd : float; iterations : int; residual : float }
      (** SCF terminated by the stall detector: the residual stopped
          improving before the iteration cap. *)
  | Scf_max_iter of { vg : float; vd : float; iterations : int; residual : float }
      (** SCF hit the iteration cap while still improving. *)
  | Iterative_no_convergence of {
      solver : string;  (** ["cg"] or ["sor"] *)
      iterations : int;
      residual : float;
    }  (** A linear iterative solve failed to reach tolerance. *)
  | Newton_failure of { analysis : string; time : float }
      (** MNA Newton iteration failed after every escalation rung;
          [analysis] is ["dc"] or ["transient"], [time] the simulation
          time (0 for dc). *)
  | Cache_corrupt of { path : string; reason : corrupt_reason }
      (** An on-disk table failed validation; the file has been (or is
          being) quarantined — renamed to [<path>.corrupt].  [reason]
          is checksum-precise: see {!corrupt_reason}. *)
  | Injected_fault of { site : string; hit : int }
      (** A {!Fault} campaign injection that escaped every recovery
          layer (only reachable when a ladder is exhausted). *)
  | Unrecovered of { stage : string; attempts : int; detail : string }
      (** An escalation ladder ran out of rungs; [detail] describes the
          last underlying failure. *)

exception Error of t

val to_string : t -> string
(** One-line human-readable rendering (also the [Error] printer). *)

val raise_ : t -> 'a
(** [raise_ e] = [raise (Error e)]. *)
