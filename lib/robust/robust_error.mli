(** Typed failure taxonomy for the solver stack.

    Every recoverable solver failure is one of these constructors, so
    recovery policy (lib/robust ladders, quarantines) can match on
    structure instead of scraping [Failure] strings, and unrecovered
    failures surface with enough context to reproduce them (bias point,
    iteration count, residual).  Raised as {!Error}; classify foreign
    exceptions with [Robust.classify].  See docs/ROBUST.md. *)

type t =
  | Scf_stalled of { vg : float; vd : float; iterations : int; residual : float }
      (** SCF terminated by the stall detector: the residual stopped
          improving before the iteration cap. *)
  | Scf_max_iter of { vg : float; vd : float; iterations : int; residual : float }
      (** SCF hit the iteration cap while still improving. *)
  | Iterative_no_convergence of {
      solver : string;  (** ["cg"] or ["sor"] *)
      iterations : int;
      residual : float;
    }  (** A linear iterative solve failed to reach tolerance. *)
  | Newton_failure of { analysis : string; time : float }
      (** MNA Newton iteration failed after every escalation rung;
          [analysis] is ["dc"] or ["transient"], [time] the simulation
          time (0 for dc). *)
  | Cache_corrupt of { path : string; reason : string }
      (** An on-disk table failed to load; the file has been quarantined
          (renamed to [<path>.corrupt]). *)
  | Injected_fault of { site : string; hit : int }
      (** A {!Fault} campaign injection that escaped every recovery
          layer (only reachable when a ladder is exhausted). *)
  | Unrecovered of { stage : string; attempts : int; detail : string }
      (** An escalation ladder ran out of rungs; [detail] describes the
          last underlying failure. *)

exception Error of t

val to_string : t -> string
(** One-line human-readable rendering (also the [Error] printer). *)

val raise_ : t -> 'a
(** [raise_ e] = [raise (Error e)]. *)
