(** Typed failure taxonomy for the solver stack.

    Every recoverable solver failure is one of these constructors, so
    recovery policy (lib/robust ladders, quarantines) can match on
    structure instead of scraping [Failure] strings, and unrecovered
    failures surface with enough context to reproduce them (bias point,
    iteration count, residual).  Raised as {!Error}; classify foreign
    exceptions with [Robust.classify].  See docs/ROBUST.md. *)

type corrupt_reason =
  | Bad_magic  (** the file does not start with the [GNRTBL] magic *)
  | Bad_version of { found : int }
      (** a [gnrtbl] file from a format version this reader does not
          speak (docs/FORMAT.md) *)
  | Crc_mismatch of { section : string }
      (** the named section ([“header”], [“vg”], [“vd”], [“current”],
          [“charge”], [“failed_points”]) failed its CRC-32C check *)
  | Truncated of { expected : int; got : int }
      (** the file is shorter (or longer) than the layout demands;
          [expected] is the byte count the header — or, below the
          minimum header size, the format — requires *)
  | Undecodable of { detail : string }
      (** not attributable to a precise section: legacy-Marshal parse
          failures and injected read faults *)
(** Why an on-disk table was rejected, precise enough that every
    corruption-matrix mutation class maps to a distinct constructor
    (docs/FORMAT.md lists the validation order that guarantees it). *)

val corrupt_label : corrupt_reason -> string
(** Constructor name in snake case ([“bad_magic”], …) — the suffix of
    the per-reason quarantine counters
    [table_cache.corrupt.<label>]. *)

val corrupt_reason_to_string : corrupt_reason -> string
(** One-line human-readable rendering. *)

type torn_reason =
  | Torn_bad_header of { detail : string }
      (** the fixed-size journal header is unreadable: wrong magic,
          unsupported version, header CRC mismatch, or the file is
          shorter than one header (fatal: nothing can be salvaged) *)
  | Torn_spec_mismatch of { expected : string; found : string }
      (** the journal was written for a different campaign spec (hashes
          in hex); resuming against it would mix incompatible samples
          (fatal) *)
  | Torn_truncated of { offset : int }
      (** the final record frame is shorter than its declared length —
          the classic torn append; the tail from [offset] is dropped and
          replay keeps everything before it (recoverable) *)
  | Torn_crc of { record : int; offset : int }
      (** record [record] (0-based) failed its CRC-32C check; the tail
          from [offset] is dropped (recoverable) *)
  | Torn_out_of_order of { record : int; expected : int; found : int }
      (** record [record] names sample [found] where the append-order
          contract demands [expected]; the tail is dropped
          (recoverable) *)
(** Why a campaign checkpoint journal stopped replaying
    (docs/CAMPAIGN.md).  Recoverable reasons drop the torn tail and
    resume from the last good record; fatal reasons raise
    {!Checkpoint_torn} because continuing could double-count or mix
    campaigns.  Every corruption-matrix mutation class maps to a
    distinct constructor. *)

val torn_label : torn_reason -> string
(** Constructor name in snake case ([“bad_header”], [“spec_mismatch”],
    [“truncated”], [“crc”], [“out_of_order”]) — the suffix of the
    per-reason counters [campaign.journal.torn.<label>]. *)

val torn_reason_to_string : torn_reason -> string
(** One-line human-readable rendering. *)

type t =
  | Scf_stalled of { vg : float; vd : float; iterations : int; residual : float }
      (** SCF terminated by the stall detector: the residual stopped
          improving before the iteration cap. *)
  | Scf_max_iter of { vg : float; vd : float; iterations : int; residual : float }
      (** SCF hit the iteration cap while still improving. *)
  | Iterative_no_convergence of {
      solver : string;  (** ["cg"] or ["sor"] *)
      iterations : int;
      residual : float;
    }  (** A linear iterative solve failed to reach tolerance. *)
  | Newton_failure of { analysis : string; time : float }
      (** MNA Newton iteration failed after every escalation rung;
          [analysis] is ["dc"] or ["transient"], [time] the simulation
          time (0 for dc). *)
  | Cache_corrupt of { path : string; reason : corrupt_reason }
      (** An on-disk table failed validation; the file has been (or is
          being) quarantined — renamed to [<path>.corrupt].  [reason]
          is checksum-precise: see {!corrupt_reason}. *)
  | Injected_fault of { site : string; hit : int }
      (** A {!Fault} campaign injection that escaped every recovery
          layer (only reachable when a ladder is exhausted). *)
  | Unrecovered of { stage : string; attempts : int; detail : string }
      (** An escalation ladder ran out of rungs; [detail] describes the
          last underlying failure. *)
  | Client_timeout of { op : string; deadline_s : float }
      (** A serve-client request missed its per-request deadline; the
          connection is closed (a late response would desynchronize the
          line protocol) and the next call reconnects. *)
  | Client_disconnected of { op : string; detail : string }
      (** The daemon connection dropped (EOF, EPIPE/ECONNRESET, or the
          client's circuit breaker is open — [detail] says which)
          during [op]. *)
  | Checkpoint_torn of { path : string; reason : torn_reason }
      (** A campaign checkpoint journal could not be (fully) replayed.
          Raised only for fatal {!torn_reason}s; recoverable ones are
          returned as data by the replay (docs/CAMPAIGN.md). *)

exception Error of t

val to_string : t -> string
(** One-line human-readable rendering (also the [Error] printer). *)

val raise_ : t -> 'a
(** [raise_ e] = [raise (Error e)]. *)
