(** gnrfet_robust — solver-failure taxonomy, escalation-ladder recovery
    and deterministic fault injection, in one namespace.

    - {!Error} ({!Robust_error}): the typed failure taxonomy every
      recoverable solver failure is expressed in;
    - {!Fault}: seeded, env-gated ([GNRFET_FAULT]) fault injection at
      named solver sites;
    - {!Scf} ({!Scf_robust}): the SCF escalation ladder
      (Anderson → damped restart → slow linear → neighbor continuation);
    - {!classify}: map an arbitrary exception onto the taxonomy;
    - {!Report}: the robustness slice of an obs snapshot (the
      [robust-report] CLI subcommand).

    See docs/ROBUST.md for ladder semantics, the fault-spec grammar and
    the metric inventory. *)

module Error = Robust_error
module Fault = Fault
module Scf = Scf_robust

val classify : exn -> Robust_error.t option
(** [Some] for exceptions that belong to the taxonomy — [Fault.Injected],
    [Sparse.No_convergence], [Robust_error.Error] — and [None] for
    anything else (which should keep propagating). *)

module Report : sig
  type t = {
    fault_spec : string option;  (** armed campaign, if any *)
    counters : (string * int) list;
        (** the robustness counters ([robust.*] plus the table-cache
            failure counters), sorted by name *)
  }

  val collect : ?obs:Obs.t -> unit -> t
  (** Snapshot the robustness counters from [?obs] (default
      {!Obs.global}). *)

  val total_injected : t -> int
  (** Sum of the [robust.fault.*] counters. *)

  val pp : Format.formatter -> t -> unit
end
