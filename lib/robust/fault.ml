exception Injected of { site : string; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
      Some (Printf.sprintf "Fault.Injected(site=%s, hit=%d)" site hit)
    | _ -> None)

type mode =
  | Always
  | Prob of float
  | Hit_range of int * int
  | Every of int

type rule = { pattern : string; mode : mode }

type campaign = { spec : string; seed : int; rules : rule list }

type site = {
  s_name : string;
  s_hits : int Atomic.t;
  s_injected : int Atomic.t;
  s_counter : Obs.Counter.t;  (** robust.fault.<name>, in Obs.global *)
  mutable s_rule : rule option;  (** resolved against the armed campaign *)
}

(* The whole disabled-path cost is this one load+branch. *)
let armed = ref false

let campaign : campaign option ref = ref None

let sites : (string, site) Hashtbl.t = Hashtbl.create 16

let registry_mutex = Mutex.create ()

(* splitmix64: the decision for hit [k] of a site mixes the campaign
   seed, a stable hash of the site name and [k] — deterministic and
   independent across sites. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let unit_float h =
  (* Top 53 bits -> [0,1). *)
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)

let decision ~seed ~name ~hit =
  let h = splitmix64 (Int64.of_int (Hashtbl.hash name)) in
  let h = splitmix64 (Int64.logxor h (Int64.of_int seed)) in
  unit_float (splitmix64 (Int64.logxor h (Int64.of_int hit)))

let pattern_matches pat name =
  if String.length pat > 0 && pat.[String.length pat - 1] = '*' then
    let prefix = String.sub pat 0 (String.length pat - 1) in
    String.length name >= String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  else String.equal pat name

let rule_for name = function
  | None -> None
  | Some c -> List.find_opt (fun r -> pattern_matches r.pattern name) c.rules

let site name =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt sites name with
  | Some s -> s
  | None ->
    let s =
      {
        s_name = name;
        s_hits = Atomic.make 0;
        s_injected = Atomic.make 0;
        s_counter = Obs.Counter.make ("robust.fault." ^ name);
        s_rule = rule_for name !campaign;
      }
    in
    Hashtbl.add sites name s;
    s

let site_name s = s.s_name

let active () = !armed

let hits s = Atomic.get s.s_hits

let injected s = Atomic.get s.s_injected

let site_armed name = !armed && rule_for name !campaign <> None

let current_spec () =
  if !armed then Option.map (fun c -> c.spec) !campaign else None

let should_fail s =
  if not !armed then false
  else
    match s.s_rule with
    | None -> false
    | Some r ->
      let hit = 1 + Atomic.fetch_and_add s.s_hits 1 in
      let seed = match !campaign with Some c -> c.seed | None -> 1 in
      let fire =
        match r.mode with
        | Always -> true
        | Prob p -> decision ~seed ~name:s.s_name ~hit < p
        | Hit_range (a, b) -> hit >= a && hit <= b
        | Every k -> hit mod k = 0
      in
      if fire then begin
        Atomic.incr s.s_injected;
        Obs.Counter.incr s.s_counter
      end;
      fire

let fail s =
  if should_fail s then raise (Injected { site = s.s_name; hit = hits s })

(* --- spec parsing ------------------------------------------------------ *)

let bad spec fragment what =
  invalid_arg
    (Printf.sprintf "Fault.arm: %s in %S (entry %S); grammar: \
                     site[@prob|#hit[-hit]|%%every],...[:seed]"
       what spec fragment)

let parse_entry spec entry =
  let split_at i =
    (String.sub entry 0 i, String.sub entry (i + 1) (String.length entry - i - 1))
  in
  let mode_pos =
    let best = ref (-1) in
    String.iteri
      (fun i c -> if !best < 0 && (c = '@' || c = '#' || c = '%') then best := i)
      entry;
    !best
  in
  if mode_pos < 0 then
    if entry = "" then bad spec entry "empty entry"
    else { pattern = entry; mode = Always }
  else begin
    let pattern, rest = split_at mode_pos in
    if pattern = "" then bad spec entry "missing site name";
    let mode =
      (* mode_pos was found by scanning for exactly these three chars. *)
      if entry.[mode_pos] = '@' then begin
        match float_of_string_opt rest with
        | Some p when p >= 0. && p <= 1. -> Prob p
        | Some _ | None -> bad spec entry "probability must be a float in [0,1]"
      end
      else if entry.[mode_pos] = '#' then begin
        match String.index_opt rest '-' with
        | None -> begin
          match int_of_string_opt rest with
          | Some n when n >= 1 -> Hit_range (n, n)
          | Some _ | None -> bad spec entry "hit index must be an int >= 1"
        end
        | Some d ->
          let a = String.sub rest 0 d
          and b = String.sub rest (d + 1) (String.length rest - d - 1) in
          (match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when a >= 1 && b >= a -> Hit_range (a, b)
          | _ -> bad spec entry "hit range must be ints with 1 <= a <= b")
      end
      else begin
        match int_of_string_opt rest with
        | Some k when k >= 1 -> Every k
        | Some _ | None -> bad spec entry "period must be an int >= 1"
      end
    in
    { pattern; mode }
  end

let parse spec =
  (* The seed suffix is the part after the last ':' when it parses as an
     int; site names themselves never contain ':'. *)
  let body, seed =
    match String.rindex_opt spec ':' with
    | None -> (spec, 1)
    | Some i -> begin
      let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt tail with
      | Some s -> (String.sub spec 0 i, s)
      | None -> bad spec tail "seed must be an int"
    end
  in
  let entries = String.split_on_char ',' body |> List.map String.trim in
  if entries = [] || List.mem "" entries then bad spec body "empty entry";
  { spec; seed; rules = List.map (parse_entry spec) entries }

let rebind_sites () =
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.s_hits 0;
      Atomic.set s.s_injected 0;
      s.s_rule <- rule_for s.s_name !campaign)
    sites

let arm spec =
  let c = parse spec in
  Mutex.protect registry_mutex (fun () ->
      campaign := Some c;
      rebind_sites ();
      armed := true)

let disarm () =
  Mutex.protect registry_mutex (fun () ->
      armed := false;
      campaign := None;
      rebind_sites ())

let with_spec spec f =
  let previous = current_spec () in
  arm spec;
  Fun.protect
    ~finally:(fun () ->
      match previous with Some s -> arm s | None -> disarm ())
    f

(* Env gating: a campaign in GNRFET_FAULT arms the whole process at
   startup (the CI fault-matrix legs).  A malformed spec is a hard,
   immediate error — a fault campaign that silently fails to arm would
   green-light recovery paths that were never exercised. *)
let () =
  match Sys.getenv_opt "GNRFET_FAULT" with
  | None | Some "" -> ()
  | Some spec -> begin
    match arm spec with
    | () -> ()
    | exception Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  end
