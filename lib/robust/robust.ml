module Error = Robust_error
module Fault = Fault
module Scf = Scf_robust

let classify : exn -> Robust_error.t option = function
  | Fault.Injected { site; hit } ->
    Some (Robust_error.Injected_fault { site; hit })
  | Sparse.No_convergence { solver; iterations; residual } ->
    Some (Robust_error.Iterative_no_convergence { solver; iterations; residual })
  | Numerics_error.Stalled { solver; iterations; residual } ->
    Some (Robust_error.Iterative_no_convergence { solver; iterations; residual })
  | Robust_error.Error e -> Some e
  | _ -> None

module Report = struct
  type t = { fault_spec : string option; counters : (string * int) list }

  let prefixed prefix name =
    String.length name >= String.length prefix
    && String.sub name 0 (String.length prefix) = prefix

  let relevant name =
    prefixed "robust." name
    || name = "table_cache.corrupt_quarantined"
    || name = "table_cache.store_failures"

  let collect ?obs () =
    let snap = Obs.snapshot ?obs () in
    {
      fault_spec = Fault.current_spec ();
      counters = List.filter (fun (n, _) -> relevant n) snap.Obs.snap_counters;
    }

  let total_injected t =
    List.fold_left
      (fun acc (n, v) -> if prefixed "robust.fault." n then acc + v else acc)
      0 t.counters

  let pp ppf t =
    (match t.fault_spec with
    | Some spec -> Format.fprintf ppf "fault campaign: %s@." spec
    | None -> Format.fprintf ppf "fault campaign: none@.");
    if t.counters = [] then
      Format.fprintf ppf "no robustness counters registered@."
    else begin
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 0 t.counters
      in
      List.iter
        (fun (n, v) -> Format.fprintf ppf "  %-*s %d@." width n v)
        t.counters
    end
end
