let check_axis name xs min_len =
  let n = Array.length xs in
  if n < min_len then invalid_arg (name ^ ": too few points");
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then invalid_arg (name ^ ": axis not increasing")
  done

(* Index of the segment [xs.(i), xs.(i+1)] containing x (clamped). *)
let segment xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear_core ~clamp ~xs ~ys x =
  check_axis "Interp.linear" xs 2;
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.linear: length mismatch";
  let n = Array.length xs in
  if clamp && x <= xs.(0) then ys.(0)
  else if clamp && x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = segment xs x in
    let t = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
    ((1. -. t) *. ys.(i)) +. (t *. ys.(i + 1))
  end

let linear ~xs ~ys x = linear_core ~clamp:true ~xs ~ys x

let linear_extrapolate ~xs ~ys x = linear_core ~clamp:false ~xs ~ys x

type spline = {
  sx : float array;
  sy : float array;
  m2 : float array; (* second derivatives at the knots *)
}

let spline ~xs ~ys =
  check_axis "Interp.spline" xs 3;
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.spline: length mismatch";
  let n = Array.length xs in
  (* Natural spline: solve the tridiagonal system for the knot second
     derivatives. *)
  let lower = Array.make n 0. and diag = Array.make n 1. and upper = Array.make n 0. in
  let rhs = Array.make n 0. in
  for i = 1 to n - 2 do
    let h0 = xs.(i) -. xs.(i - 1) and h1 = xs.(i + 1) -. xs.(i) in
    lower.(i) <- h0 /. 6.;
    diag.(i) <- (h0 +. h1) /. 3.;
    upper.(i) <- h1 /. 6.;
    rhs.(i) <- ((ys.(i + 1) -. ys.(i)) /. h1) -. ((ys.(i) -. ys.(i - 1)) /. h0)
  done;
  let m2 = Tridiag.solve ~lower ~diag ~upper ~rhs in
  { sx = Array.copy xs; sy = Array.copy ys; m2 }

let spline_clamp s x =
  let n = Array.length s.sx in
  Float.max s.sx.(0) (Float.min s.sx.(n - 1) x)

let spline_eval s x =
  let x = spline_clamp s x in
  let i = segment s.sx x in
  let h = s.sx.(i + 1) -. s.sx.(i) in
  let a = (s.sx.(i + 1) -. x) /. h and b = (x -. s.sx.(i)) /. h in
  (a *. s.sy.(i)) +. (b *. s.sy.(i + 1))
  +. (((((a ** 3.) -. a) *. s.m2.(i)) +. (((b ** 3.) -. b) *. s.m2.(i + 1)))
      *. (h *. h) /. 6.)

let spline_deriv s x =
  let x = spline_clamp s x in
  let i = segment s.sx x in
  let h = s.sx.(i + 1) -. s.sx.(i) in
  let a = (s.sx.(i + 1) -. x) /. h and b = (x -. s.sx.(i)) /. h in
  ((s.sy.(i + 1) -. s.sy.(i)) /. h)
  +. (((-.((3. *. (a *. a)) -. 1.) *. s.m2.(i))
       +. (((3. *. (b *. b)) -. 1.) *. s.m2.(i + 1)))
      *. h /. 6.)

type grid2 = { gx : float array; gy : float array; gv : float array array }

let grid2 ~xs ~ys ~values =
  check_axis "Interp.grid2 (x)" xs 2;
  check_axis "Interp.grid2 (y)" ys 2;
  if Array.length values <> Array.length xs then
    invalid_arg "Interp.grid2: row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length ys then
        invalid_arg "Interp.grid2: column count mismatch")
    values;
  { gx = Array.copy xs; gy = Array.copy ys; gv = Array.map Array.copy values }

let clamp01 t = Float.max 0. (Float.min 1. t)

let grid2_cell g x y =
  let i = segment g.gx x and j = segment g.gy y in
  let tx = clamp01 ((x -. g.gx.(i)) /. (g.gx.(i + 1) -. g.gx.(i))) in
  let ty = clamp01 ((y -. g.gy.(j)) /. (g.gy.(j + 1) -. g.gy.(j))) in
  (i, j, tx, ty)

let grid2_eval g x y =
  let i, j, tx, ty = grid2_cell g x y in
  let v00 = g.gv.(i).(j)
  and v10 = g.gv.(i + 1).(j)
  and v01 = g.gv.(i).(j + 1)
  and v11 = g.gv.(i + 1).(j + 1) in
  ((1. -. tx) *. (((1. -. ty) *. v00) +. (ty *. v01)))
  +. (tx *. (((1. -. ty) *. v10) +. (ty *. v11)))

let grid2_dx g x y =
  let i, j, _, ty = grid2_cell g x y in
  let hx = g.gx.(i + 1) -. g.gx.(i) in
  let lo = ((1. -. ty) *. g.gv.(i).(j)) +. (ty *. g.gv.(i).(j + 1)) in
  let hi = ((1. -. ty) *. g.gv.(i + 1).(j)) +. (ty *. g.gv.(i + 1).(j + 1)) in
  (hi -. lo) /. hx

let grid2_dy g x y =
  let i, j, tx, _ = grid2_cell g x y in
  let hy = g.gy.(j + 1) -. g.gy.(j) in
  let lo = ((1. -. tx) *. g.gv.(i).(j)) +. (tx *. g.gv.(i + 1).(j)) in
  let hi = ((1. -. tx) *. g.gv.(i).(j + 1)) +. (tx *. g.gv.(i + 1).(j + 1)) in
  (hi -. lo) /. hy
