/* Hot complex dense kernels over the Zdense split-plane Bigarray layout.
 *
 * The OCaml side owns validation, workspace management and the API
 * surface (zdense.ml); these stubs are the inner loops only, written so
 * the system C compiler can vectorise them: gemm and the triangular
 * solves run in SAXPY (i/k/j) form whose inner j-loops are contiguous,
 * independent element-wise updates — vectorisable without any
 * floating-point reassociation, so results are deterministic and the
 * accumulation order over k matches the scalar definition.  Nothing
 * here allocates on the OCaml heap, calls back into the runtime, or
 * releases the runtime lock, so every external is [@@noalloc].
 *
 * Complex numbers are (re, im) pairs of double planes, row-major.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#define PLANE(v) ((double *) Caml_ba_data_val(v))

/* C = A·B; A is m×k, B is k×n, C is m×n. */
static void zgemm_nn(const double *restrict ar, const double *restrict ai,
                     const double *restrict br, const double *restrict bi,
                     double *restrict cr, double *restrict ci,
                     long m, long n, long k)
{
  for (long i = 0; i < m; i++) {
    double *restrict crow_r = cr + i * n;
    double *restrict crow_i = ci + i * n;
    for (long j = 0; j < n; j++) { crow_r[j] = 0.0; crow_i[j] = 0.0; }
    const double *arow_r = ar + i * k;
    const double *arow_i = ai + i * k;
    for (long l = 0; l < k; l++) {
      double xr = arow_r[l], xi = arow_i[l];
      const double *restrict brow_r = br + l * n;
      const double *restrict brow_i = bi + l * n;
      for (long j = 0; j < n; j++) {
        crow_r[j] += xr * brow_r[j] - xi * brow_i[j];
        crow_i[j] += xr * brow_i[j] + xi * brow_r[j];
      }
    }
  }
}

/* C = A†·B; A is k×m physical, B is k×n. */
static void zgemm_cn(const double *restrict ar, const double *restrict ai,
                     const double *restrict br, const double *restrict bi,
                     double *restrict cr, double *restrict ci,
                     long m, long n, long k)
{
  for (long i = 0; i < m; i++) {
    double *restrict crow_r = cr + i * n;
    double *restrict crow_i = ci + i * n;
    for (long j = 0; j < n; j++) { crow_r[j] = 0.0; crow_i[j] = 0.0; }
    for (long l = 0; l < k; l++) {
      double xr = ar[l * m + i], xi = -ai[l * m + i];
      const double *restrict brow_r = br + l * n;
      const double *restrict brow_i = bi + l * n;
      for (long j = 0; j < n; j++) {
        crow_r[j] += xr * brow_r[j] - xi * brow_i[j];
        crow_i[j] += xr * brow_i[j] + xi * brow_r[j];
      }
    }
  }
}

/* C = A·B†; A is m×k, B is n×k physical — row-by-row dots. */
static void zgemm_nc(const double *restrict ar, const double *restrict ai,
                     const double *restrict br, const double *restrict bi,
                     double *restrict cr, double *restrict ci,
                     long m, long n, long k)
{
  for (long i = 0; i < m; i++) {
    const double *arow_r = ar + i * k;
    const double *arow_i = ai + i * k;
    for (long j = 0; j < n; j++) {
      const double *brow_r = br + j * k;
      const double *brow_i = bi + j * k;
      double sr = 0.0, si = 0.0;
      for (long l = 0; l < k; l++) {
        double xr = arow_r[l], xi = arow_i[l];
        double yr = brow_r[l], yi = -brow_i[l];
        sr += xr * yr - xi * yi;
        si += xr * yi + xi * yr;
      }
      cr[i * n + j] = sr;
      ci[i * n + j] = si;
    }
  }
}

/* C = A†·B†; A is k×m physical, B is n×k physical. */
static void zgemm_cc(const double *restrict ar, const double *restrict ai,
                     const double *restrict br, const double *restrict bi,
                     double *restrict cr, double *restrict ci,
                     long m, long n, long k)
{
  for (long i = 0; i < m; i++) {
    for (long j = 0; j < n; j++) {
      const double *brow_r = br + j * k;
      const double *brow_i = bi + j * k;
      double sr = 0.0, si = 0.0;
      for (long l = 0; l < k; l++) {
        double xr = ar[l * m + i], xi = -ai[l * m + i];
        double yr = brow_r[l], yi = -brow_i[l];
        sr += xr * yr - xi * yi;
        si += xr * yi + xi * yr;
      }
      cr[i * n + j] = sr;
      ci[i * n + j] = si;
    }
  }
}

CAMLprim value gnr_zdense_gemm(value vta, value vtb, value var, value vai,
                               value vbr, value vbi, value vcr, value vci,
                               value vm, value vn, value vk)
{
  const double *ar = PLANE(var), *ai = PLANE(vai);
  const double *br = PLANE(vbr), *bi = PLANE(vbi);
  double *cr = PLANE(vcr), *ci = PLANE(vci);
  long m = Long_val(vm), n = Long_val(vn), k = Long_val(vk);
  int ta = Int_val(vta), tb = Int_val(vtb);
  if (ta == 0 && tb == 0)      zgemm_nn(ar, ai, br, bi, cr, ci, m, n, k);
  else if (ta == 1 && tb == 0) zgemm_cn(ar, ai, br, bi, cr, ci, m, n, k);
  else if (ta == 0 && tb == 1) zgemm_nc(ar, ai, br, bi, cr, ci, m, n, k);
  else                         zgemm_cc(ar, ai, br, bi, cr, ci, m, n, k);
  return Val_unit;
}

CAMLprim value gnr_zdense_gemm_byte(value *argv, int argn)
{
  (void) argn;
  return gnr_zdense_gemm(argv[0], argv[1], argv[2], argv[3], argv[4],
                         argv[5], argv[6], argv[7], argv[8], argv[9],
                         argv[10]);
}

static void zswap_rows(double *p, long r1, long r2, long cols)
{
  if (r1 != r2) {
    double *a = p + r1 * cols, *b = p + r2 * cols;
    for (long j = 0; j < cols; j++) {
      double t = a[j]; a[j] = b[j]; b[j] = t;
    }
  }
}

/* In-place partial-pivot LU.  Pivot rows are recorded as tagged ints in
 * the OCaml int array [vpiv] (immediates: no write barrier needed).
 * Returns 0 on success, or k+1 when the pivot at elimination step k
 * falls below [tol] (squared magnitude) — the caller raises. */
CAMLprim value gnr_zdense_lu_factor(value vre, value vim, value vn,
                                    value vpiv, value vtol)
{
  double *restrict re = PLANE(vre);
  double *restrict im = PLANE(vim);
  long n = Long_val(vn);
  double tol = Double_val(vtol);
  for (long k = 0; k < n; k++) {
    long p = k;
    double best = re[k * n + k] * re[k * n + k] + im[k * n + k] * im[k * n + k];
    for (long i = k + 1; i < n; i++) {
      double v = re[i * n + k] * re[i * n + k] + im[i * n + k] * im[i * n + k];
      if (v > best) { best = v; p = i; }
    }
    if (best < tol) return Val_long(k + 1);
    Field(vpiv, k) = Val_long(p);
    zswap_rows(re, k, p, n);
    zswap_rows(im, k, p, n);
    double dkr = re[k * n + k], dki = im[k * n + k];
    double den = dkr * dkr + dki * dki;
    double pr = dkr / den, pi = -dki / den;
    const double *restrict ur = re + k * n;
    const double *restrict ui = im + k * n;
    for (long i = k + 1; i < n; i++) {
      double *restrict rr = re + i * n;
      double *restrict ri = im + i * n;
      double mr0 = rr[k], mi0 = ri[k];
      double mr = mr0 * pr - mi0 * pi, mi = mr0 * pi + mi0 * pr;
      rr[k] = mr;
      ri[k] = mi;
      for (long j = k + 1; j < n; j++) {
        rr[j] -= mr * ur[j] - mi * ui[j];
        ri[j] -= mr * ui[j] + mi * ur[j];
      }
    }
  }
  return Val_long(0);
}

/* Solve LU·X = B in place on B (n×w), applying the recorded pivots,
 * then unit-lower forward and upper backward substitution.  Every
 * inner loop streams a contiguous row of the right-hand side. */
CAMLprim value gnr_zdense_solve(value vre, value vim, value vxr, value vxi,
                                value vpiv, value vn, value vw)
{
  const double *restrict re = PLANE(vre);
  const double *restrict im = PLANE(vim);
  double *restrict xr = PLANE(vxr);
  double *restrict xi = PLANE(vxi);
  long n = Long_val(vn), w = Long_val(vw);
  for (long k = 0; k < n; k++) {
    long p = Long_val(Field(vpiv, k));
    zswap_rows(xr, k, p, w);
    zswap_rows(xi, k, p, w);
  }
  for (long k = 0; k < n; k++) {
    const double *restrict ur = xr + k * w;
    const double *restrict ui = xi + k * w;
    for (long i = k + 1; i < n; i++) {
      double mr = re[i * n + k], mi = im[i * n + k];
      double *restrict rr = xr + i * w;
      double *restrict ri = xi + i * w;
      for (long j = 0; j < w; j++) {
        rr[j] -= mr * ur[j] - mi * ui[j];
        ri[j] -= mr * ui[j] + mi * ur[j];
      }
    }
  }
  for (long k = n - 1; k >= 0; k--) {
    double dkr = re[k * n + k], dki = im[k * n + k];
    double den = dkr * dkr + dki * dki;
    double pr = dkr / den, pi = -dki / den;
    double *restrict ur = xr + k * w;
    double *restrict ui = xi + k * w;
    for (long j = 0; j < w; j++) {
      double vr = ur[j], vi = ui[j];
      ur[j] = vr * pr - vi * pi;
      ui[j] = vr * pi + vi * pr;
    }
    for (long i = 0; i < k; i++) {
      double mr = re[i * n + k], mi = im[i * n + k];
      double *restrict rr = xr + i * w;
      double *restrict ri = xi + i * w;
      for (long j = 0; j < w; j++) {
        rr[j] -= mr * ur[j] - mi * ui[j];
        ri[j] -= mr * ui[j] + mi * ur[j];
      }
    }
  }
  return Val_unit;
}

CAMLprim value gnr_zdense_solve_byte(value *argv, int argn)
{
  (void) argn;
  return gnr_zdense_solve(argv[0], argv[1], argv[2], argv[3], argv[4],
                          argv[5], argv[6]);
}
