type scheme =
  | Linear of float
  | Anderson of { history : int; alpha : float }

type t = {
  scheme : scheme;
  mutable xs : float array list; (* most recent first *)
  mutable rs : float array list; (* residuals g(x) - x, most recent first *)
}

let linear ~alpha =
  if alpha <= 0. || alpha > 1. then invalid_arg "Mixing.linear: alpha in (0,1]";
  { scheme = Linear alpha; xs = []; rs = [] }

let anderson ?(history = 4) ?(alpha = 0.3) () =
  if history < 1 then invalid_arg "Mixing.anderson: history must be positive";
  { scheme = Anderson { history; alpha }; xs = []; rs = [] }

let reset t =
  t.xs <- [];
  t.rs <- []

let residual ~x ~gx = Vec.max_abs_diff gx x

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | y :: tl -> y :: go (n - 1) tl
  in
  go n xs

(* Type-II Anderson: minimize || r_k + sum_j gamma_j (r_{k-j} - r_k) ||,
   then combine the corresponding x and r with the same weights. *)
let anderson_step ~history ~alpha t x r =
  (* The least-squares step needs at most dim(x) independent residual
     differences. *)
  let history = min history (Array.length x) in
  t.xs <- take (history + 1) (x :: t.xs);
  t.rs <- take (history + 1) (r :: t.rs);
  match (t.xs, t.rs) with
  | [ _ ], [ _ ] -> Vec.add x (Vec.scale alpha r)
  | xs, rs ->
    let m = List.length rs - 1 in
    let n = Array.length x in
    let r0 = List.hd rs in
    let older_r = List.tl rs and older_x = List.tl xs in
    (* Columns: r_old_j - r0. *)
    let a = Matrix.init n m (fun i j -> (List.nth older_r j).(i) -. r0.(i)) in
    let gamma =
      try Lstsq.solve a (Array.map (fun v -> -.v) r0)
      with Failure _ | Numerics_error.Singular _ -> Array.make m 0.
    in
    let xmix = Array.copy x and rmix = Array.copy r in
    List.iteri
      (fun j xj ->
        let g = gamma.(j) in
        if g <> 0. then begin
          let rj = List.nth older_r j in
          for i = 0 to n - 1 do
            xmix.(i) <- xmix.(i) +. (g *. (xj.(i) -. x.(i)));
            rmix.(i) <- rmix.(i) +. (g *. (rj.(i) -. r.(i)))
          done
        end)
      older_x;
    Vec.add xmix (Vec.scale alpha rmix)

let step t ~x ~gx =
  let r = Vec.sub gx x in
  match t.scheme with
  | Linear alpha -> Vec.add x (Vec.scale alpha r)
  | Anderson { history; alpha } -> anderson_step ~history ~alpha t x r
