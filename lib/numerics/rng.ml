type t = { mutable state : int64; mutable cached_normal : float option }

let create seed =
  { state = Int64.of_int seed; cached_normal = None }

(* splitmix64: fast, passes BigCrush, trivially seedable. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t; cached_normal = None }

let float t =
  (* 53 high bits -> uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t a b = a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for small n. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod n

let normal t =
  match t.cached_normal with
  | Some v ->
    t.cached_normal <- None;
    v
  | None ->
    (* Box-Muller on two uniforms, caching the second deviate. *)
    let rec nonzero () =
      let u = float t in
      if u > Tol.underflow_guard then u else nonzero ()
    in
    let u1 = nonzero () and u2 = float t in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.cached_normal <- Some (r *. sin theta);
    r *. cos theta

let gaussian t ~mean ~sigma = mean +. (sigma *. normal t)

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
