(** Typed failures raised by the direct linear-algebra solvers.

    PR 4 gave the iterative solvers a typed taxonomy
    ({!Sparse.No_convergence}, [Robust_error]); the direct solvers still
    raised bare [Failure _], which forced every recovery path
    (Anderson-mixing fallback, Newton singular-Jacobian retry, the
    escalation ladder, Monte-Carlo quarantine) to string-match.  These
    exceptions carry the solver name and enough context to report or
    classify without parsing messages.

    Catch sites that previously matched [Failure _] keep doing so (other
    [Failure] sources — [Marshal], [int_of_string] — still exist) and
    additionally match these. *)

exception Singular of { solver : string; detail : string }
(** A direct solve hit a pivot below {!Tol.pivot} (or the complex-norm
    floor {!Tol.pivot_norm2}): the system is singular to working
    precision.  [solver] is ["Matrix.lu_factor"], ["Tridiag.solve"],
    ["Tridiag.solve_complex"], ["Banded.factorize"] or
    ["Cmatrix.solve"]. *)

exception Stalled of { solver : string; iterations : int; residual : float }
(** A fixed-point iteration with no useful partial result exhausted its
    budget ([Self_energy.sancho_rubio]).  Unlike
    {!Sparse.No_convergence} there is no approximate solution to
    return. *)

val singular : solver:string -> detail:string -> 'a
(** [raise (Singular ...)] as an expression of any type. *)
