(** Sparse matrices in compressed-sparse-row form, with iterative solvers.

    Used for the 3D Poisson validation solver and as an alternative backend
    for the 2D finite-volume systems. *)

type t = private {
  n : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

module Builder : sig
  type sparse := t
  type t

  val create : int -> t
  (** [create n] starts an empty [n] × [n] matrix. *)

  val add : t -> int -> int -> float -> unit
  (** Accumulate a coefficient (duplicates sum). *)

  val finalize : t -> sparse
end

val mul_vec : t -> float array -> float array

val diagonal : t -> float array
(** Diagonal entries (0. where absent). *)

exception No_convergence of { solver : string; iterations : int; residual : float }
(** Raised by {!cg} and {!sor} when the iteration cap is reached:
    [solver] is ["cg"] or ["sor"], [iterations] the count performed and
    [residual] the relative residual at that point.  Typed so SCF
    drivers can catch and recover (relax the tolerance, switch solver)
    without string matching; a printer is registered with
    [Printexc]. *)

val cg :
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  t ->
  float array ->
  float array * int
(** Jacobi-preconditioned conjugate gradient for symmetric positive-definite
    systems. Returns the solution and iterations used; raises
    {!No_convergence} if the tolerance (relative residual, default
    [1e-10]) is not reached in [max_iter] (default [4 * n]) iterations.
    Instrumented: bumps the [sparse.cg.*] counters and iteration
    histogram in {!Obs.global} (see docs/OBS.md). *)

val sor :
  ?omega:float ->
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  t ->
  float array ->
  float array * int
(** Successive over-relaxation (default [omega = 1.7]); same failure
    contract as {!cg} ([sparse.sor.*] counters).  Intended for
    diagnostics and tests. *)
