(* Central numeric tolerances for the solver stack.  Every denormal-range
   floor used by a factorisation, iteration, or underflow guard lives here
   so the thresholds stay consistent across solvers and are greppable in
   one place.  gnrlint's magic-tol rule rejects inline literals in this
   range anywhere else in the tree. *)

let pivot = 1e-300
let pivot_norm2 = 1e-280
let underflow_guard = 1e-300
let negligible = 1e-300
