type t = {
  n : int;
  kl : int; (* half bandwidth *)
  data : float array; (* row-major band storage, width 2*kl+1 *)
  mutable factorized : bool;
}

let create ~n ~bandwidth =
  if n <= 0 then invalid_arg "Banded.create: n must be positive";
  if bandwidth < 0 then invalid_arg "Banded.create: negative bandwidth";
  { n; kl = bandwidth; data = Array.make (n * ((2 * bandwidth) + 1)) 0.; factorized = false }

let index t i j =
  let off = t.kl + j - i in
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg "Banded: index out of range";
  if off < 0 || off > 2 * t.kl then None else Some ((i * ((2 * t.kl) + 1)) + off)

let set t i j v =
  if t.factorized then invalid_arg "Banded.set: already factorized";
  match index t i j with
  | Some k -> t.data.(k) <- v
  | None -> invalid_arg "Banded.set: outside band"

let add_to t i j v =
  if t.factorized then invalid_arg "Banded.add_to: already factorized";
  match index t i j with
  | Some k -> t.data.(k) <- t.data.(k) +. v
  | None -> invalid_arg "Banded.add_to: outside band"

let get t i j = match index t i j with Some k -> t.data.(k) | None -> 0.

let raw_get t i j = t.data.((i * ((2 * t.kl) + 1)) + t.kl + j - i)

let raw_set t i j v = t.data.((i * ((2 * t.kl) + 1)) + t.kl + j - i) <- v

let factorize t =
  if t.factorized then invalid_arg "Banded.factorize: already factorized";
  let n = t.n and kl = t.kl in
  for k = 0 to n - 1 do
    let pivot = raw_get t k k in
    if Float.abs pivot < Tol.pivot then
      Numerics_error.singular ~solver:"Banded.factorize"
        ~detail:(Printf.sprintf "zero pivot at row %d" k);
    let imax = min (n - 1) (k + kl) in
    for i = k + 1 to imax do
      let factor = raw_get t i k /. pivot in
      raw_set t i k factor;
      if factor <> 0. then begin
        let jmax = min (n - 1) (k + kl) in
        for j = k + 1 to jmax do
          raw_set t i j (raw_get t i j -. (factor *. raw_get t k j))
        done
      end
    done
  done;
  t.factorized <- true

let solve t b =
  if not t.factorized then invalid_arg "Banded.solve: not factorized";
  if Array.length b <> t.n then invalid_arg "Banded.solve: dimension mismatch";
  let n = t.n and kl = t.kl in
  let x = Array.copy b in
  for i = 0 to n - 1 do
    let jmin = max 0 (i - kl) in
    let acc = ref x.(i) in
    for j = jmin to i - 1 do
      acc := !acc -. (raw_get t i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let jmax = min (n - 1) (i + kl) in
    let acc = ref x.(i) in
    for j = i + 1 to jmax do
      acc := !acc -. (raw_get t i j *. x.(j))
    done;
    x.(i) <- !acc /. raw_get t i i
  done;
  x

let solve_fresh t b =
  let c = { t with data = Array.copy t.data; factorized = false } in
  factorize c;
  solve c b
