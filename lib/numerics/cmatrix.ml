type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Cmatrix.create: non-positive dims";
  { rows; cols; re = Array.make (rows * cols) 0.; im = Array.make (rows * cols) 0. }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let z = f i j in
      m.re.((i * cols) + j) <- z.Complex.re;
      m.im.((i * cols) + j) <- z.Complex.im
    done
  done;
  m

let identity n =
  init n n (fun i j -> if i = j then Complex.one else Complex.zero)

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let dims m = (m.rows, m.cols)

let get m i j =
  let k = (i * m.cols) + j in
  { Complex.re = m.re.(k); im = m.im.(k) }

let set m i j z =
  let k = (i * m.cols) + j in
  m.re.(k) <- z.Complex.re;
  m.im.(k) <- z.Complex.im

let of_real r =
  let rows, cols = Matrix.dims r in
  init rows cols (fun i j -> { Complex.re = Matrix.get r i j; im = 0. })

let scale a m =
  let n = Array.length m.re in
  let re = Array.make n 0. and im = Array.make n 0. in
  for k = 0 to n - 1 do
    re.(k) <- (a.Complex.re *. m.re.(k)) -. (a.Complex.im *. m.im.(k));
    im.(k) <- (a.Complex.re *. m.im.(k)) +. (a.Complex.im *. m.re.(k))
  done;
  { m with re; im }

let elementwise op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Cmatrix: dimension mismatch";
  {
    a with
    re = Array.init (Array.length a.re) (fun k -> op a.re.(k) b.re.(k));
    im = Array.init (Array.length a.im) (fun k -> op a.im.(k) b.im.(k));
  }

let add a b = elementwise ( +. ) a b

let sub a b = elementwise ( -. ) a b

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmatrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  let n = a.cols and cols = b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to n - 1 do
      let ar = a.re.((i * n) + k) and ai = a.im.((i * n) + k) in
      if ar <> 0. || ai <> 0. then
        for j = 0 to cols - 1 do
          let br = b.re.((k * cols) + j) and bi = b.im.((k * cols) + j) in
          let kc = (i * cols) + j in
          c.re.(kc) <- c.re.(kc) +. ((ar *. br) -. (ai *. bi));
          c.im.(kc) <- c.im.(kc) +. ((ar *. bi) +. (ai *. br))
        done
    done
  done;
  c

let adjoint m =
  init m.cols m.rows (fun i j -> Complex.conj (get m j i))

(* Gauss-Jordan elimination with partial pivoting on an augmented [a | b]
   system stored in split arrays.  [b] has [bcols] columns. *)
let gauss_jordan m bre bim bcols =
  if m.rows <> m.cols then invalid_arg "Cmatrix: non-square";
  let n = m.rows in
  let are = Array.copy m.re and aim = Array.copy m.im in
  let swap_rows arr i p cols =
    for j = 0 to cols - 1 do
      let t = arr.((i * cols) + j) in
      arr.((i * cols) + j) <- arr.((p * cols) + j);
      arr.((p * cols) + j) <- t
    done
  in
  for k = 0 to n - 1 do
    let pivot = ref k in
    (* Explicit multiplication: [**] is a libm pow call, far too slow for
       the innermost pivot scan. *)
    let norm2 i =
      let re = are.((i * n) + k) and im = aim.((i * n) + k) in
      (re *. re) +. (im *. im)
    in
    let best = ref (norm2 k) in
    for i = k + 1 to n - 1 do
      let v = norm2 i in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best < Tol.pivot_norm2 then
      Numerics_error.singular ~solver:"Cmatrix.solve"
        ~detail:(Printf.sprintf "singular matrix (pivot column %d)" k);
    if !pivot <> k then begin
      swap_rows are k !pivot n;
      swap_rows aim k !pivot n;
      swap_rows bre k !pivot bcols;
      swap_rows bim k !pivot bcols
    end;
    (* Scale pivot row to make the pivot equal to one. *)
    let pr = are.((k * n) + k) and pi = aim.((k * n) + k) in
    let inv_den = 1. /. ((pr *. pr) +. (pi *. pi)) in
    let ir = pr *. inv_den and ii = -.pi *. inv_den in
    let scale_row arr_r arr_i cols =
      for j = 0 to cols - 1 do
        let vr = arr_r.((k * cols) + j) and vi = arr_i.((k * cols) + j) in
        arr_r.((k * cols) + j) <- (vr *. ir) -. (vi *. ii);
        arr_i.((k * cols) + j) <- (vr *. ii) +. (vi *. ir)
      done
    in
    scale_row are aim n;
    scale_row bre bim bcols;
    (* Eliminate column k from every other row. *)
    for i = 0 to n - 1 do
      if i <> k then begin
        let fr = are.((i * n) + k) and fi = aim.((i * n) + k) in
        if fr <> 0. || fi <> 0. then begin
          let elim arr_r arr_i cols =
            for j = 0 to cols - 1 do
              let vr = arr_r.((k * cols) + j) and vi = arr_i.((k * cols) + j) in
              arr_r.((i * cols) + j) <-
                arr_r.((i * cols) + j) -. ((fr *. vr) -. (fi *. vi));
              arr_i.((i * cols) + j) <-
                arr_i.((i * cols) + j) -. ((fr *. vi) +. (fi *. vr))
            done
          in
          elim are aim n;
          elim bre bim bcols
        end
      end
    done
  done

let inverse m =
  let n = m.rows in
  let id = identity n in
  let bre = Array.copy id.re and bim = Array.copy id.im in
  gauss_jordan m bre bim n;
  { rows = n; cols = n; re = bre; im = bim }

let solve m b =
  let n = m.rows in
  if Array.length b <> n then invalid_arg "Cmatrix.solve: dimension mismatch";
  let bre = Array.init n (fun i -> b.(i).Complex.re) in
  let bim = Array.init n (fun i -> b.(i).Complex.im) in
  gauss_jordan m bre bim 1;
  Array.init n (fun i -> { Complex.re = bre.(i); im = bim.(i) })

let diag m =
  let n = min m.rows m.cols in
  Array.init n (fun i -> get m i i)

let trace m =
  Array.fold_left Complex.add Complex.zero (diag m)

let max_abs m =
  let acc = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    acc := Float.max !acc (Float.hypot m.re.(k) m.im.(k))
  done;
  !acc

let frobenius_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Cmatrix.frobenius_diff: dimension mismatch";
  let acc = ref 0. in
  for k = 0 to Array.length a.re - 1 do
    let dr = a.re.(k) -. b.re.(k) and di = a.im.(k) -. b.im.(k) in
    acc := !acc +. (dr *. dr) +. (di *. di)
  done;
  sqrt !acc

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      let z = get m i j in
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%.3g%+.3gi" z.Complex.re z.Complex.im
    done;
    Format.fprintf ppf "]@."
  done
