(* Cyclic Jacobi rotations: robust and adequate for the <=72x72 Bloch
   Hamiltonians we diagonalize. *)
let symmetric a =
  let n, m = Matrix.dims a in
  if n <> m then invalid_arg "Eigen.symmetric: non-square";
  let w = Matrix.init n n (fun i j -> 0.5 *. (Matrix.get a i j +. Matrix.get a j i)) in
  let v = Matrix.identity n in
  let off_diag_norm () =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let v = Matrix.get w i j in
        acc := !acc +. (v *. v)
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    let apq = Matrix.get w p q in
    if Float.abs apq > Tol.negligible then begin
      let app = Matrix.get w p p and aqq = Matrix.get w q q in
      let theta = (aqq -. app) /. (2. *. apq) in
      let t =
        let s = if theta >= 0. then 1. else -1. in
        s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
      in
      let c = 1. /. sqrt ((t *. t) +. 1.) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let akp = Matrix.get w k p and akq = Matrix.get w k q in
        Matrix.set w k p ((c *. akp) -. (s *. akq));
        Matrix.set w k q ((s *. akp) +. (c *. akq))
      done;
      for k = 0 to n - 1 do
        let apk = Matrix.get w p k and aqk = Matrix.get w q k in
        Matrix.set w p k ((c *. apk) -. (s *. aqk));
        Matrix.set w q k ((s *. apk) +. (c *. aqk))
      done;
      for k = 0 to n - 1 do
        let vkp = Matrix.get v k p and vkq = Matrix.get v k q in
        Matrix.set v k p ((c *. vkp) -. (s *. vkq));
        Matrix.set v k q ((s *. vkp) +. (c *. vkq))
      done
    end
  in
  let max_sweeps = 64 in
  let rec sweeps i =
    if i < max_sweeps && off_diag_norm () > 1e-12 *. (1. +. Matrix.max_abs w) then begin
      for p = 0 to n - 2 do
        for q = p + 1 to n - 1 do
          rotate p q
        done
      done;
      sweeps (i + 1)
    end
  in
  sweeps 0;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (Matrix.get w i i) (Matrix.get w j j)) order;
  let values = Array.map (fun i -> Matrix.get w i i) order in
  let vectors = Matrix.init n n (fun i j -> Matrix.get v i order.(j)) in
  (values, vectors)

let symmetric_values a = fst (symmetric a)

let hermitian_values h =
  let n, m = Cmatrix.dims h in
  if n <> m then invalid_arg "Eigen.hermitian_values: non-square";
  let embed =
    Matrix.init (2 * n) (2 * n) (fun i j ->
        let bi = i / n and bj = j / n in
        let z = Cmatrix.get h (i mod n) (j mod n) in
        match (bi, bj) with
        | 0, 0 | 1, 1 -> z.Complex.re
        | 0, 1 -> -.z.Complex.im
        | 1, 0 -> z.Complex.im
        | _ -> assert false)
  in
  let all = symmetric_values embed in
  (* Each eigenvalue of the Hermitian matrix appears exactly twice. *)
  Array.init n (fun i -> 0.5 *. (all.(2 * i) +. all.((2 * i) + 1)))
