(** Bigarray-backed dense complex matrices with allocation-free in-place
    kernels — the storage layer of the block-RGF fast path.

    Storage is split real/imaginary [(float, float64_elt, c_layout)
    Bigarray.Array1.t], row-major ([k = i*cols + j] in each plane), so hot
    loops never box a [Complex.t]: elementwise kernels compile to direct
    unboxed float loads/stores, and the compute-bound kernels (gemm, LU,
    solve) dispatch to vectorisable C stubs over the same raw planes.
    Every kernel writes into a caller-provided
    destination: once a workspace of matrices is allocated, a steady-state
    sweep performs zero heap allocation per energy point (docs/PERF.md,
    "block kernel layer").

    Unless stated otherwise the destination of a multiplication or
    factorisation kernel must not alias an input ([Invalid_argument]);
    elementwise kernels ([add_into], [sub_into], [scale_into],
    [copy_into], [shift_sub_into]) allow any aliasing because they are
    pure per-element maps. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val dims : t -> int * int

val get : t -> int -> int -> Complex.t
(** Bounds-checked element read (boxes the result; not for hot loops). *)

val set : t -> int -> int -> Complex.t -> unit

val fill : t -> Complex.t -> unit

val set_identity : t -> unit
(** Square matrices only. *)

val copy_into : t -> t -> unit
(** [copy_into src dst]; dimensions must match. *)

val of_cmatrix : Cmatrix.t -> t

val of_cmatrix_into : Cmatrix.t -> t -> unit
(** Lossless (bit-for-bit) copy of the split storage. *)

val to_cmatrix : t -> Cmatrix.t
(** Lossless inverse of {!of_cmatrix}. *)

val add_into : t -> t -> t -> unit
(** [add_into a b dst]: [dst = a + b]. *)

val sub_into : t -> t -> t -> unit
(** [sub_into a b dst]: [dst = a - b]. *)

val scale_into : Complex.t -> t -> t -> unit
(** [scale_into z a dst]: [dst = z * a]. *)

val adjoint_into : t -> t -> unit
(** [adjoint_into a dst]: [dst = a†]; [dst] must not alias [a]. *)

val shift_sub_into : Complex.t -> t -> t -> unit
(** [shift_sub_into z a dst]: [dst = z*I - a] (square only) — the
    [E + iη - H] resolvent assembly without an identity temporary. *)

type trans =
  | N  (** operand as stored *)
  | C  (** conjugate transpose *)

val gemm_into : ?ta:trans -> ?tb:trans -> t -> t -> t -> unit
(** [gemm_into ~ta ~tb a b dst]: [dst = op(a) * op(b)] (both default
    [N]).  Dispatches to the vectorised C kernels over the split planes
    (SAXPY loop order, fixed accumulation order over the contraction
    index — deterministic, no [-ffast-math]).  [dst] must not alias [a]
    or [b]. *)

val lu_factor : t -> int array -> unit
(** In-place LU with partial pivoting ([piv] length >= rows records the
    row swaps).  Raises {!Numerics_error.Singular} when the best pivot's
    squared magnitude falls below [Tol.pivot_norm2].  Square only. *)

val solve_into : t -> int array -> t -> unit
(** [solve_into lu piv b] overwrites the [n x nrhs] right-hand side [b]
    with [A^-1 b], where [(lu, piv)] came from {!lu_factor}. *)

val inverse_into : t -> int array -> t -> unit
(** [inverse_into lu piv dst]: [dst = A^-1] from a factored [(lu, piv)];
    [dst] must not alias [lu]. *)

val max_abs : t -> float
(** Max entry magnitude (a cheap sup-norm for convergence tests). *)

val re_inner : t -> t -> float
(** [re_inner a b = Re tr(a b†) = sum_ij Re (a_ij * conj b_ij)] — the
    trace of a product against an adjoint without forming either. *)

val re_inner_rows : t -> t -> float array -> unit
(** [re_inner_rows a b dst]: [dst.(i) = sum_k Re (a_ik * conj b_ik)],
    i.e. the diagonal of [a b†] row by row ([dst] length >= rows). *)
