(* Bigarray split re/im dense complex matrices.  Everything below is
   written for the block-RGF inner loop: elementwise kernels run on
   Array1.unsafe_get/unsafe_set over the two float64 planes with local
   float refs (unboxed by the native compiler); the compute-bound
   kernels (gemm / LU / solve) dispatch to the vectorisable C stubs in
   zdense_stubs.c over the same storage.  A steady-state sweep does no
   per-element boxing and no per-call allocation on either path. *)

module A = Bigarray.Array1

type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type t = { rows : int; cols : int; re : plane; im : plane }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Zdense.create: negative dims";
  let mk () =
    let p = A.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
    A.fill p 0.;
    p
  in
  { rows; cols; re = mk (); im = mk () }

let dims a = (a.rows, a.cols)

let check_bounds name a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg (name ^ ": index out of bounds")

let get a i j =
  check_bounds "Zdense.get" a i j;
  let k = (i * a.cols) + j in
  { Complex.re = A.get a.re k; im = A.get a.im k }

let set a i j z =
  check_bounds "Zdense.set" a i j;
  let k = (i * a.cols) + j in
  A.set a.re k z.Complex.re;
  A.set a.im k z.Complex.im

let fill a z =
  A.fill a.re z.Complex.re;
  A.fill a.im z.Complex.im

let require_square name a =
  if a.rows <> a.cols then invalid_arg (name ^ ": matrix must be square")

let require_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let set_identity a =
  require_square "Zdense.set_identity" a;
  A.fill a.re 0.;
  A.fill a.im 0.;
  for i = 0 to a.rows - 1 do
    A.unsafe_set a.re ((i * a.cols) + i) 1.
  done

let copy_into src dst =
  require_same "Zdense.copy_into" src dst;
  A.blit src.re dst.re;
  A.blit src.im dst.im

let of_cmatrix_into (c : Cmatrix.t) dst =
  if c.Cmatrix.rows <> dst.rows || c.Cmatrix.cols <> dst.cols then
    invalid_arg "Zdense.of_cmatrix_into: dimension mismatch";
  let cre = c.Cmatrix.re and cim = c.Cmatrix.im in
  for k = 0 to (dst.rows * dst.cols) - 1 do
    A.unsafe_set dst.re k (Array.unsafe_get cre k);
    A.unsafe_set dst.im k (Array.unsafe_get cim k)
  done

let of_cmatrix c =
  let d = create c.Cmatrix.rows c.Cmatrix.cols in
  of_cmatrix_into c d;
  d

let to_cmatrix a =
  Cmatrix.init a.rows a.cols (fun i j ->
      let k = (i * a.cols) + j in
      { Complex.re = A.unsafe_get a.re k; im = A.unsafe_get a.im k })

let add_into a b dst =
  require_same "Zdense.add_into" a b;
  require_same "Zdense.add_into" a dst;
  for k = 0 to (a.rows * a.cols) - 1 do
    A.unsafe_set dst.re k (A.unsafe_get a.re k +. A.unsafe_get b.re k);
    A.unsafe_set dst.im k (A.unsafe_get a.im k +. A.unsafe_get b.im k)
  done

let sub_into a b dst =
  require_same "Zdense.sub_into" a b;
  require_same "Zdense.sub_into" a dst;
  for k = 0 to (a.rows * a.cols) - 1 do
    A.unsafe_set dst.re k (A.unsafe_get a.re k -. A.unsafe_get b.re k);
    A.unsafe_set dst.im k (A.unsafe_get a.im k -. A.unsafe_get b.im k)
  done

let scale_into z a dst =
  require_same "Zdense.scale_into" a dst;
  let zr = z.Complex.re and zi = z.Complex.im in
  for k = 0 to (a.rows * a.cols) - 1 do
    let xr = A.unsafe_get a.re k and xi = A.unsafe_get a.im k in
    A.unsafe_set dst.re k ((zr *. xr) -. (zi *. xi));
    A.unsafe_set dst.im k ((zr *. xi) +. (zi *. xr))
  done

let adjoint_into a dst =
  if a.rows <> dst.cols || a.cols <> dst.rows then
    invalid_arg "Zdense.adjoint_into: dimension mismatch";
  if a == dst then invalid_arg "Zdense.adjoint_into: dst aliases the source";
  for i = 0 to a.rows - 1 do
    let ia = i * a.cols in
    for j = 0 to a.cols - 1 do
      let kd = (j * dst.cols) + i in
      A.unsafe_set dst.re kd (A.unsafe_get a.re (ia + j));
      A.unsafe_set dst.im kd (-.A.unsafe_get a.im (ia + j))
    done
  done

let shift_sub_into z a dst =
  require_square "Zdense.shift_sub_into" a;
  require_same "Zdense.shift_sub_into" a dst;
  let n = a.cols in
  for k = 0 to (n * n) - 1 do
    A.unsafe_set dst.re k (-.A.unsafe_get a.re k);
    A.unsafe_set dst.im k (-.A.unsafe_get a.im k)
  done;
  let zr = z.Complex.re and zi = z.Complex.im in
  for i = 0 to n - 1 do
    let k = (i * n) + i in
    A.unsafe_set dst.re k (zr +. A.unsafe_get dst.re k);
    A.unsafe_set dst.im k (zi +. A.unsafe_get dst.im k)
  done

type trans = N | C

(* The hot kernels — gemm, LU factor, the multi-RHS triangular solve —
   live in zdense_stubs.c as [@@noalloc] externals over the two raw
   planes: the OCaml side keeps every dimension/aliasing check and the
   typed error surface, the C side is inner loops the system compiler
   vectorises (SAXPY i/k/j form, contiguous independent j-updates, no
   -ffast-math — the accumulation order over the contraction index is
   fixed, so results are deterministic and match the scalar definition).
   Elementwise kernels above stay in OCaml: they are memory-bound and
   the native compiler already compiles them allocation-free. *)

external c_gemm :
  int ->
  int ->
  plane ->
  plane ->
  plane ->
  plane ->
  plane ->
  plane ->
  int ->
  int ->
  int ->
  unit = "gnr_zdense_gemm_byte" "gnr_zdense_gemm"
  [@@noalloc]

let gemm_into ?(ta = N) ?(tb = N) a b dst =
  let am, ak = match ta with N -> (a.rows, a.cols) | C -> (a.cols, a.rows) in
  let bk, bn = match tb with N -> (b.rows, b.cols) | C -> (b.cols, b.rows) in
  if ak <> bk then invalid_arg "Zdense.gemm_into: inner dimension mismatch";
  if dst.rows <> am || dst.cols <> bn then
    invalid_arg "Zdense.gemm_into: destination dimension mismatch";
  if dst == a || dst == b then
    invalid_arg "Zdense.gemm_into: dst aliases an operand";
  let code = function N -> 0 | C -> 1 in
  c_gemm (code ta) (code tb) a.re a.im b.re b.im dst.re dst.im am bn ak

external c_lu_factor : plane -> plane -> int -> int array -> float -> int
  = "gnr_zdense_lu_factor"
  [@@noalloc]

let lu_factor a piv =
  require_square "Zdense.lu_factor" a;
  let n = a.rows in
  if Array.length piv < n then invalid_arg "Zdense.lu_factor: pivot array too short";
  let status = c_lu_factor a.re a.im n piv Tol.pivot_norm2 in
  if status > 0 then
    Numerics_error.singular ~solver:"Zdense.lu_factor"
      ~detail:(Printf.sprintf "pivot %d of %d below floor" (status - 1) n)

external c_solve : plane -> plane -> plane -> plane -> int array -> int -> int -> unit
  = "gnr_zdense_solve_byte" "gnr_zdense_solve"
  [@@noalloc]

let solve_into lu piv b =
  require_square "Zdense.solve_into" lu;
  let n = lu.rows in
  if b.rows <> n then invalid_arg "Zdense.solve_into: right-hand-side row mismatch";
  if Array.length piv < n then invalid_arg "Zdense.solve_into: pivot array too short";
  if b == lu then invalid_arg "Zdense.solve_into: rhs aliases the factor";
  c_solve lu.re lu.im b.re b.im piv n b.cols

let inverse_into lu piv dst =
  if dst == lu then invalid_arg "Zdense.inverse_into: dst aliases the factor";
  require_same "Zdense.inverse_into" lu dst;
  set_identity dst;
  solve_into lu piv dst

let max_abs a =
  let m = ref 0. in
  for k = 0 to (a.rows * a.cols) - 1 do
    let v =
      Float.hypot (A.unsafe_get a.re k) (A.unsafe_get a.im k)
    in
    if v > !m then m := v
  done;
  !m

let re_inner a b =
  require_same "Zdense.re_inner" a b;
  let s = ref 0. in
  for k = 0 to (a.rows * a.cols) - 1 do
    s :=
      !s
      +. (A.unsafe_get a.re k *. A.unsafe_get b.re k)
      +. (A.unsafe_get a.im k *. A.unsafe_get b.im k)
  done;
  !s

let re_inner_rows a b dst =
  require_same "Zdense.re_inner_rows" a b;
  if Array.length dst < a.rows then
    invalid_arg "Zdense.re_inner_rows: destination too short";
  for i = 0 to a.rows - 1 do
    let ia = i * a.cols in
    let s = ref 0. in
    for j = 0 to a.cols - 1 do
      s :=
        !s
        +. (A.unsafe_get a.re (ia + j) *. A.unsafe_get b.re (ia + j))
        +. (A.unsafe_get a.im (ia + j) *. A.unsafe_get b.im (ia + j))
    done;
    dst.(i) <- !s
  done
