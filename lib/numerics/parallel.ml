let num_domains () =
  match Sys.getenv_opt "GNRFET_DOMAINS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with Failure _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

type 'b outcome = Value of 'b | Error of exn

exception Missing_result

(* ------------------------------------------------------------------ *)
(* Persistent domain pool.                                            *)
(*                                                                    *)
(* Workers are spawned once (lazily, up to the largest parallelism a  *)
(* run has asked for) and fed through a single task queue, so the     *)
(* thousands of map_reduce calls an SCF sweep makes do not pay a      *)
(* Domain.spawn/join round-trip each.  A caller waiting for its run   *)
(* to finish helps by executing queued tasks (possibly its own), so a *)
(* nested run started from inside a pool worker can never deadlock:   *)
(* the nested caller drains its own sub-tasks if no worker is free.   *)
(* ------------------------------------------------------------------ *)

type pool = {
  mutex : Mutex.t;
  wake : Condition.t;  (** signals both "task queued" and "slot finished" *)
  tasks : (unit -> unit) Queue.t;
  mutable spawned : int;
  mutable handles : unit Domain.t list;
  mutable stop : bool;
}

let pool =
  {
    mutex = Mutex.create ();
    wake = Condition.create ();
    tasks = Queue.create ();
    spawned = 0;
    handles = [];
    stop = false;
  }

(* Pool observability (docs/OBS.md): how many runs hit the pool, how the
   executed tasks spread across workers vs the helping caller, and how
   long tasks sat queued before a domain picked them up.  Counters only —
   never anything that could perturb scheduling or results. *)
let obs_runs = Obs.Counter.make "parallel.runs"
let obs_pool_tasks = Obs.Counter.make "parallel.pool_tasks"
let obs_helped_tasks = Obs.Counter.make "parallel.helped_tasks"
let obs_queue_wait = Obs.Timer.make "parallel.queue_wait"

(* Stamp a task with its enqueue time so the executing domain can record
   the queue wait; identity when the registry is disabled. *)
let with_queue_stamp task =
  if not (Obs.enabled Obs.global) then task
  else begin
    let t_enq = Obs.now () in
    fun () ->
      Obs.Timer.record obs_queue_wait (Obs.now () -. t_enq);
      task ()
  end

(* Tasks are wrapped at submission so they never raise (run_slots folds
   exceptions into per-run state); the worker loop therefore needs no
   catch-all of its own. *)
let rec worker_loop tasks_done =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stop do
    Condition.wait pool.wake pool.mutex
  done;
  if Queue.is_empty pool.tasks then Mutex.unlock pool.mutex (* stop *)
  else begin
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.mutex;
    task ();
    Obs.Counter.incr tasks_done;
    Obs.Counter.incr obs_pool_tasks;
    worker_loop tasks_done
  end

let shutdown_pool () =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.wake;
  let handles = pool.handles in
  pool.handles <- [];
  pool.spawned <- 0;
  Mutex.unlock pool.mutex;
  List.iter Domain.join handles

let () = at_exit shutdown_pool

(* Workers communicate only through the mutex-protected queue; submitted
   tasks own disjoint result slots.  gnrlint: allow-shared *)
let spawn_worker idx =
  let tasks_done = Obs.Counter.make (Printf.sprintf "parallel.worker.%d.tasks" idx) in
  Domain.spawn (fun () -> worker_loop tasks_done)

let ensure_workers n =
  Mutex.lock pool.mutex;
  while pool.spawned < n && not pool.stop do
    pool.spawned <- pool.spawned + 1;
    pool.handles <- spawn_worker (pool.spawned - 1) :: pool.handles
  done;
  Mutex.unlock pool.mutex

(* Run [job 0 .. job (slots-1)], slot 0 on the calling domain, the rest
   through the pool.  Exceptions raised by jobs are collected and the
   first one is re-raised after every slot has finished. *)
let run_slots ~slots job =
  if slots <= 1 then job 0
  else begin
    ensure_workers (slots - 1);
    Obs.Counter.incr obs_runs;
    let remaining = ref slots in
    let failures = ref [] in
    let wrapped slot () =
      (try job slot
       with e ->
         Mutex.lock pool.mutex;
         failures := e :: !failures;
         Mutex.unlock pool.mutex);
      Mutex.lock pool.mutex;
      decr remaining;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    for s = 1 to slots - 1 do
      Queue.push (with_queue_stamp (wrapped s)) pool.tasks
    done;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    wrapped 0 ();
    Mutex.lock pool.mutex;
    let rec wait () =
      if !remaining > 0 then
        if not (Queue.is_empty pool.tasks) then begin
          (* Help: run queued tasks (ours or another run's) instead of
             blocking a domain on the condition variable. *)
          let task = Queue.pop pool.tasks in
          Mutex.unlock pool.mutex;
          task ();
          Obs.Counter.incr obs_helped_tasks;
          Mutex.lock pool.mutex;
          wait ()
        end
        else begin
          Condition.wait pool.wake pool.mutex;
          wait ()
        end
    in
    wait ();
    let failed = !failures in
    Mutex.unlock pool.mutex;
    match failed with [] -> () | e :: _ -> raise e
  end

(* ------------------------------------------------------------------ *)
(* Chunked primitives.                                                *)
(*                                                                    *)
(* The chunk grid depends only on [n] and [chunk] — never on the      *)
(* worker count or the scheduling — and partial results are combined  *)
(* in ascending chunk order, so the result is bit-for-bit identical   *)
(* for every GNRFET_DOMAINS setting (the determinism contract the     *)
(* NEGF observables rely on; see docs/PERF.md).                       *)
(* ------------------------------------------------------------------ *)

let default_chunk = 16

let map_reduce ?domains ?(chunk = default_chunk) ~n ~worker ~body ~combine init =
  if n <= 0 then init
  else begin
    let chunk = max 1 chunk in
    let nchunks = (n + chunk - 1) / chunk in
    let requested =
      match domains with Some d -> max 1 d | None -> num_domains ()
    in
    let slots = min requested nchunks in
    let partials = Array.make nchunks None in
    let bounds i = (i * chunk, min n ((i + 1) * chunk)) in
    if slots <= 1 then begin
      let w = worker 0 in
      for i = 0 to nchunks - 1 do
        let lo, hi = bounds i in
        partials.(i) <- Some (body w ~lo ~hi)
      done
    end
    else begin
      let next = Atomic.make 0 in
      (* Slots claim disjoint [partials] entries via the atomic counter. *)
      run_slots ~slots (fun slot ->
          let w = worker slot in
          let rec go () =
            let i = Atomic.fetch_and_add next 1 in
            if i < nchunks then begin
              let lo, hi = bounds i in
              partials.(i) <- Some (body w ~lo ~hi);
              go ()
            end
          in
          go ())
    end;
    Array.fold_left
      (fun acc p ->
        match p with Some p -> combine acc p | None -> raise Missing_result)
      init partials
  end

let parallel_for ?domains ?chunk ~n body =
  map_reduce ?domains ?chunk ~n
    ~worker:(fun _ -> ())
    ~body:(fun () ~lo ~hi -> body ~lo ~hi)
    ~combine:(fun () () -> ())
    ()

let map ?domains f inputs =
  let n = Array.length inputs in
  let requested =
    match domains with Some d -> max 1 d | None -> num_domains ()
  in
  let slots = min requested n in
  if slots <= 1 || n <= 1 then Array.map f inputs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Slots claim disjoint [results] entries via the atomic counter. *)
    run_slots ~slots (fun _slot ->
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let r = try Value (f inputs.(i)) with e -> Error e in
            results.(i) <- Some r;
            go ()
          end
        in
        go ());
    Array.map
      (fun r ->
        match r with
        | Some (Value v) -> v
        | Some (Error e) -> raise e
        | None -> raise Missing_result)
      results
  end
