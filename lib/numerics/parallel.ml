let num_domains () =
  match Sys.getenv_opt "GNRFET_DOMAINS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with Failure _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

type 'b outcome = Value of 'b | Error of exn

let map ?domains f inputs =
  let n = Array.length inputs in
  let workers = match domains with Some d -> d | None -> num_domains () in
  if workers <= 1 || n <= 1 then Array.map f inputs
  else begin
    let workers = min workers n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r = try Value (f inputs.(i)) with e -> Error e in
          results.(i) <- Some r;
          go ()
        end
      in
      go ()
    in
    (* Workers claim disjoint indices of [results] via the [next] counter,
       so the shared-array writes never overlap.  gnrlint: allow-shared *)
    let handles = Array.init (workers - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join handles;
    Array.map
      (fun r ->
        match r with
        | Some (Value v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
