type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dims";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.init: non-positive dims";
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Matrix.of_arrays: no rows";
  let c = Array.length rows.(0) in
  if c = 0 then invalid_arg "Matrix.of_arrays: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Matrix.of_arrays: ragged rows")
    rows;
  init r c (fun i j -> rows.(i).(j))

let copy m = { m with data = Array.copy m.data }

let dims m = (m.rows, m.cols)

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

let add_to m i j v =
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. v

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          add_to c i j (aik *. get b k j)
        done
    done
  done;
  c

let mul_vec m x =
  if m.cols <> Array.length x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let scale a m = { m with data = Array.map (fun v -> a *. v) m.data }

let elementwise op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> op a.data.(k) b.data.(k)) }

let add a b = elementwise ( +. ) a b

let sub a b = elementwise ( -. ) a b

type lu = { n : int; lu_data : float array; piv : int array }

let lu_factor m =
  if m.rows <> m.cols then invalid_arg "Matrix.lu_factor: non-square";
  let n = m.rows in
  let a = Array.copy m.data in
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k at or below row k. *)
    let pivot = ref k in
    let best = ref (Float.abs a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs a.((i * n) + k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best < Tol.pivot then
      Numerics_error.singular ~solver:"Matrix.lu_factor"
        ~detail:(Printf.sprintf "singular matrix (pivot column %d)" k);
    if !pivot <> k then begin
      let p = !pivot in
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((p * n) + j);
        a.((p * n) + j) <- tmp
      done;
      let tp = piv.(k) in
      piv.(k) <- piv.(p);
      piv.(p) <- tp
    end;
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let factor = a.((i * n) + k) /. akk in
      a.((i * n) + k) <- factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- a.((i * n) + j) -. (factor *. a.((k * n) + j))
        done
    done
  done;
  { n; lu_data = a; piv }

let lu_solve { n; lu_data = a; piv } b =
  if Array.length b <> n then invalid_arg "Matrix.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* Forward substitution with unit lower-triangular L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc /. a.((i * n) + i)
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let inverse m =
  let f = lu_factor m in
  let n = m.rows in
  let out = create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(j) <- 1.;
    let col = lu_solve f e in
    for i = 0 to n - 1 do
      set out i j col.(i)
    done
  done;
  out

let max_abs m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. m.data

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "]@."
  done
