type t = {
  n : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

module Builder = struct
  type entry = { col : int; mutable value : float }
  type builder_t = { size : int; rows : (int, entry) Hashtbl.t array }
  type t = builder_t

  let create n =
    if n <= 0 then invalid_arg "Sparse.Builder.create: n must be positive";
    { size = n; rows = Array.init n (fun _ -> Hashtbl.create 8) }

  let add b i j v =
    if i < 0 || i >= b.size || j < 0 || j >= b.size then
      invalid_arg "Sparse.Builder.add: index out of range";
    match Hashtbl.find_opt b.rows.(i) j with
    | Some e -> e.value <- e.value +. v
    | None -> Hashtbl.add b.rows.(i) j { col = j; value = v }

  let finalize b =
    let counts = Array.map Hashtbl.length b.rows in
    let nnz = Array.fold_left ( + ) 0 counts in
    let row_ptr = Array.make (b.size + 1) 0 in
    for i = 0 to b.size - 1 do
      row_ptr.(i + 1) <- row_ptr.(i) + counts.(i)
    done;
    let col_idx = Array.make nnz 0 and values = Array.make nnz 0. in
    for i = 0 to b.size - 1 do
      let entries = Hashtbl.fold (fun _ e acc -> e :: acc) b.rows.(i) [] in
      let sorted = List.sort (fun a b -> compare a.col b.col) entries in
      List.iteri
        (fun k e ->
          col_idx.(row_ptr.(i) + k) <- e.col;
          values.(row_ptr.(i) + k) <- e.value)
        sorted
    done;
    { n = b.size; row_ptr; col_idx; values }
end

let mul_vec m x =
  if Array.length x <> m.n then invalid_arg "Sparse.mul_vec: dimension mismatch";
  let y = Array.make m.n 0. in
  for i = 0 to m.n - 1 do
    let acc = ref 0. in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let diagonal m =
  let d = Array.make m.n 0. in
  for i = 0 to m.n - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      if m.col_idx.(k) = i then d.(i) <- m.values.(k)
    done
  done;
  d

exception No_convergence of { solver : string; iterations : int; residual : float }

let () =
  Printexc.register_printer (function
    | No_convergence { solver; iterations; residual } ->
      Some
        (Printf.sprintf
           "Sparse.No_convergence(%s: %d iterations, relative residual %.3e)"
           solver iterations residual)
    | _ -> None)

let cg_calls = Obs.Counter.make "sparse.cg.calls"
let cg_iters = Obs.Counter.make "sparse.cg.iterations"
let cg_failures = Obs.Counter.make "sparse.cg.no_convergence"
let cg_hist = Obs.Histogram.make "sparse.cg.iterations"
let sor_calls = Obs.Counter.make "sparse.sor.calls"
let sor_iters = Obs.Counter.make "sparse.sor.iterations"
let sor_failures = Obs.Counter.make "sparse.sor.no_convergence"

(* Fault-injection site (docs/ROBUST.md): an armed campaign can make a cg
   call fail before iterating, as the typed No_convergence its callers
   already handle, so recovery ladders (poisson3d retry/SOR fallback) are
   exercisable deterministically.  A single branch when disarmed. *)
let fault_cg = Fault.site "sparse.cg"

let cg ?max_iter ?(tol = 1e-10) ?x0 m b =
  let n = m.n in
  let max_iter = match max_iter with Some v -> v | None -> 4 * n in
  if Fault.should_fail fault_cg then begin
    Obs.Counter.incr cg_calls;
    Obs.Counter.incr cg_failures;
    raise (No_convergence { solver = "cg"; iterations = 0; residual = infinity })
  end;
  let x = match x0 with Some v -> Array.copy v | None -> Array.make n 0. in
  let d = diagonal m in
  let precond r = Array.mapi (fun i ri -> ri /. d.(i)) r in
  let r = Vec.sub b (mul_vec m x) in
  let z = precond r in
  let p = Array.copy z in
  let rz = ref (Vec.dot r z) in
  let bnorm = Float.max (Vec.norm2 b) Tol.underflow_guard in
  Obs.Counter.incr cg_calls;
  let finish it =
    Obs.Counter.add cg_iters it;
    Obs.Histogram.observe cg_hist it
  in
  let rec loop it =
    if Vec.norm2 r /. bnorm <= tol then begin
      finish it;
      (x, it)
    end
    else if it >= max_iter then begin
      finish it;
      Obs.Counter.incr cg_failures;
      raise
        (No_convergence
           { solver = "cg"; iterations = it; residual = Vec.norm2 r /. bnorm })
    end
    else begin
      let ap = mul_vec m p in
      let alpha = !rz /. Vec.dot p ap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      let z = precond r in
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done;
      loop (it + 1)
    end
  in
  loop 0

let sor ?(omega = 1.7) ?max_iter ?(tol = 1e-10) ?x0 m b =
  let n = m.n in
  let max_iter = match max_iter with Some v -> v | None -> 40 * n in
  let x = match x0 with Some v -> Array.copy v | None -> Array.make n 0. in
  let d = diagonal m in
  let bnorm = Float.max (Vec.norm2 b) Tol.underflow_guard in
  let residual_norm () = Vec.norm2 (Vec.sub b (mul_vec m x)) /. bnorm in
  Obs.Counter.incr sor_calls;
  let rec loop it =
    if residual_norm () <= tol then begin
      Obs.Counter.add sor_iters it;
      (x, it)
    end
    else if it >= max_iter then begin
      Obs.Counter.add sor_iters it;
      Obs.Counter.incr sor_failures;
      raise
        (No_convergence
           { solver = "sor"; iterations = it; residual = residual_norm () })
    end
    else begin
      for i = 0 to n - 1 do
        let sigma = ref 0. in
        for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
          let j = m.col_idx.(k) in
          if j <> i then sigma := !sigma +. (m.values.(k) *. x.(j))
        done;
        x.(i) <- ((1. -. omega) *. x.(i)) +. (omega *. (b.(i) -. !sigma) /. d.(i))
      done;
      loop (it + 1)
    end
  in
  loop 0
