let check_lengths n l d u r name =
  if l <> n || d <> n || u <> n || r <> n then
    invalid_arg (name ^ ": length mismatch")

let solve ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  check_lengths n (Array.length lower) n (Array.length upper) (Array.length rhs)
    "Tridiag.solve";
  if n = 0 then [||]
  else begin
    let c' = Array.make n 0. and d' = Array.make n 0. in
    if Float.abs diag.(0) < Tol.pivot then
      Numerics_error.singular ~solver:"Tridiag.solve" ~detail:"zero pivot at row 0";
    c'.(0) <- upper.(0) /. diag.(0);
    d'.(0) <- rhs.(0) /. diag.(0);
    for i = 1 to n - 1 do
      let m = diag.(i) -. (lower.(i) *. c'.(i - 1)) in
      if Float.abs m < Tol.pivot then
        Numerics_error.singular ~solver:"Tridiag.solve"
          ~detail:(Printf.sprintf "zero pivot at row %d" i);
      c'.(i) <- upper.(i) /. m;
      d'.(i) <- (rhs.(i) -. (lower.(i) *. d'.(i - 1))) /. m
    done;
    let x = Array.make n 0. in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

let solve_complex ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  check_lengths n (Array.length lower) n (Array.length upper) (Array.length rhs)
    "Tridiag.solve_complex";
  if n = 0 then [||]
  else begin
    let open Complex in
    let c' = Array.make n zero and d' = Array.make n zero in
    if norm diag.(0) < Tol.pivot then
      Numerics_error.singular ~solver:"Tridiag.solve_complex"
        ~detail:"zero pivot at row 0";
    c'.(0) <- div upper.(0) diag.(0);
    d'.(0) <- div rhs.(0) diag.(0);
    for i = 1 to n - 1 do
      let m = sub diag.(i) (mul lower.(i) c'.(i - 1)) in
      if norm m < Tol.pivot then
        Numerics_error.singular ~solver:"Tridiag.solve_complex"
          ~detail:(Printf.sprintf "zero pivot at row %d" i);
      c'.(i) <- div upper.(i) m;
      d'.(i) <- div (sub rhs.(i) (mul lower.(i) d'.(i - 1))) m
    done;
    let x = Array.make n zero in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- sub d'.(i) (mul c'.(i) x.(i + 1))
    done;
    x
  end
