(** Domain-based parallel primitives backed by a persistent worker pool.

    Workers are spawned once (lazily, growing to the largest parallelism
    any call has requested) and fed through a task queue, so per-call
    overhead is a queue push rather than a [Domain.spawn]/[join]
    round-trip.  The pool is shut down automatically [at_exit].  A caller
    waiting on its own batch executes queued tasks itself ("work
    helping"), so nested parallel calls issued from inside a worker make
    progress instead of deadlocking.

    {b Determinism contract.}  For the chunked primitives the chunk grid
    depends only on [n] and [chunk] — never on the worker count or on
    scheduling — and partial results are combined in ascending chunk
    order.  A [body] whose chunk result is a pure function of [(lo, hi)]
    (per-worker scratch reuse aside) therefore produces bit-for-bit
    identical reductions for every [GNRFET_DOMAINS] setting, including
    the sequential [domains = 1] path.  See docs/PERF.md.

    {b Observability.}  The pool reports into {!Obs.global} (counters
    only, so scheduling and results are never perturbed):
    [parallel.runs] (pool-backed batches), [parallel.pool_tasks] /
    [parallel.worker.<i>.tasks] (tasks executed by pool workers, total
    and per worker), [parallel.helped_tasks] (tasks a waiting caller
    executed itself) and the [parallel.queue_wait] timer (time tasks
    sat queued before a domain picked them up).  All are no-ops while
    the registry is disabled; see docs/OBS.md. *)

val num_domains : unit -> int
(** Worker count: [max 1 (recommended_domain_count () - 1)], overridable
    with the [GNRFET_DOMAINS] environment variable (read on every call,
    so tests and benchmarks can toggle it at runtime). *)

val default_chunk : int
(** Chunk width used by {!map_reduce} and {!parallel_for} when [?chunk]
    is omitted.  Fixed (16): it must not depend on the worker count, or
    the determinism contract above would break. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], preserving order. Falls back to the sequential
    map when [domains <= 1] or the input is small. Exceptions raised by
    [f] are re-raised in the caller (lowest failing index first). *)

val map_reduce :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  worker:(int -> 'w) ->
  body:('w -> lo:int -> hi:int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc ->
  'acc
(** [map_reduce ~n ~worker ~body ~combine init] splits [0, n) into
    contiguous chunks, evaluates [body w ~lo ~hi] once per chunk and
    left-folds the per-chunk partial results with [combine] in ascending
    chunk order, starting from [init].

    [worker slot] builds per-slot scratch state (slot ids are dense in
    [0, slots)); it is handed to every chunk the slot processes, so
    preallocated workspaces are reused across chunks instead of being
    allocated per element.  [combine] may mutate and return its first
    argument (each partial is consumed exactly once).  Exceptions raised
    by [worker] or [body] are re-raised in the caller once all slots have
    drained.  [n <= 0] returns [init]. *)

val parallel_for : ?domains:int -> ?chunk:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for ~n body] runs [body ~lo ~hi] over a chunked partition
    of [0, n).  The chunks are disjoint, so bodies writing to disjoint
    index ranges of a shared array need no further synchronisation. *)
