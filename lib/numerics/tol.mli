(** Central numeric tolerances for the solver stack.

    Ad-hoc denormal-range literals ([1e-300] and friends) scattered through
    factorisations are a classic source of silent numerical drift: two
    solvers disagree on what "singular" means and an SCF loop oscillates.
    All such floors live here, and the [magic-tol] gnrlint rule (see
    docs/LINT.md) rejects inline literals [<= 1e-250] everywhere else. *)

val pivot : float
(** Absolute pivot magnitude below which LU/banded/tridiagonal
    factorisations declare the matrix singular. *)

val pivot_norm2 : float
(** Squared-magnitude pivot floor for complex Gauss–Jordan elimination
    (compared against [re^2 + im^2], hence the looser exponent). *)

val underflow_guard : float
(** Positive floor applied before dividing by, or taking the log of, a
    quantity that may underflow to zero (residual norms, uniform
    deviates). *)

val negligible : float
(** Magnitude below which an off-diagonal entry is treated as already
    zero (e.g. skipping Jacobi rotations). *)
