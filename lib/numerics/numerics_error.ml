exception Singular of { solver : string; detail : string }
exception Stalled of { solver : string; iterations : int; residual : float }

let singular ~solver ~detail = raise (Singular { solver; detail })

let () =
  Printexc.register_printer (function
    | Singular { solver; detail } ->
      Some (Printf.sprintf "Numerics_error.Singular(%s: %s)" solver detail)
    | Stalled { solver; iterations; residual } ->
      Some
        (Printf.sprintf "Numerics_error.Stalled(%s: %d iterations, residual %g)"
           solver iterations residual)
    | _ -> None)
