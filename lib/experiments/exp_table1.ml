type result = {
  gnrfet : Technology.row list;
  cmos : Technology.row list;
  edp_improvement_range : (float * float) option;
}

let run ?surface () =
  let table = Table_cache.get (Params.default ()) in
  let gnrfet = Technology.gnrfet_operating_points ?surface table in
  let cmos = Technology.cmos_rows () in
  let reference =
    match List.find_opt (fun (r : Technology.row) -> r.Technology.label = "GNRFET B") gnrfet with
    | Some b -> Some b
    | None -> (match gnrfet with r :: _ -> Some r | [] -> None)
  in
  let edp_improvement_range =
    match reference with
    | None -> None
    | Some b ->
      (* The paper compares the *optimum* EDP of each CMOS node (its best
         supply) to GNRFET point B, quoting 40-168X across nodes. *)
      let by_node label =
        List.filter (fun (r : Technology.row) -> r.Technology.label = label) cmos
        |> List.map (fun r -> r.Technology.edp)
        |> List.fold_left Float.min infinity
      in
      let ratios =
        List.map
          (fun node -> by_node ("CMOS " ^ node) /. b.Technology.edp)
          [ "22nm"; "32nm"; "45nm" ]
        (* Missing CMOS rows or a degenerate reference EDP yield inf/NaN
           ratios; drop them so they can never reach the printed range. *)
        |> List.filter Float.is_finite
      in
      (match ratios with
      | [] -> None
      | _ ->
        Some
          ( List.fold_left Float.min infinity ratios,
            List.fold_left Float.max neg_infinity ratios ))
  in
  { gnrfet; cmos; edp_improvement_range }

let print_row ppf (r : Technology.row) =
  Format.fprintf ppf "%-14s VDD=%.2f VT=%.2f   f=%6.2f GHz   EDP=%10.4g fJ-ps   SNM=%.3f V@."
    r.Technology.label r.Technology.vdd r.Technology.vt
    (r.Technology.frequency /. 1e9)
    (r.Technology.edp /. 1e-27)
    r.Technology.snm

let print ppf r =
  Report.heading ppf "Table 1: GNRFET (A/B/C) vs scaled CMOS (22/32/45nm)";
  List.iter (print_row ppf) r.gnrfet;
  List.iter (print_row ppf) r.cmos;
  match r.edp_improvement_range with
  | None ->
    Format.fprintf ppf
      "CMOS-optimum / GNRFET-B EDP ratio: unavailable (no finite reference ratios)@."
  | Some (lo, hi) ->
    Format.fprintf ppf "CMOS-optimum / GNRFET-B EDP ratio: %.0fX - %.0fX (paper: 40-168X)@."
      lo hi

let bench_kernel () =
  let node = Node.n22 in
  let pair = Technology.cmos_pair node in
  let m = Metrics.inverter_metrics ~pair ~vdd:0.8 () in
  Metrics.edp m ~stages:15
