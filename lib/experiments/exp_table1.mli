(** Table 1: delay, EDP and SNM of the 15-stage FO4 ring oscillator for
    GNRFETs (operating points A/B/C) versus scaled CMOS at 22/32/45 nm and
    VDD ∈ \{0.8, 0.6, 0.4\} V. *)

type result = {
  gnrfet : Technology.row list;
  cmos : Technology.row list;
  edp_improvement_range : (float * float) option;
      (** min and max CMOS-optimum-to-GNRFET-B EDP ratio (paper: 40–168X);
          [None] when the reference operating point is missing or no ratio
          is finite, so NaN never flows into downstream EDP comparisons *)
}

val run : ?surface:Explore.surface -> unit -> result

val print : Format.formatter -> result -> unit

val bench_kernel : unit -> float
