(** Bounded multi-producer/multi-consumer work queue — the admission
    control in front of the generation workers.

    Producers never block: {!try_push} fails immediately when the queue
    is at capacity, which the server turns into a reject-with-retry-after
    response (backpressure, docs/SERVE.md).  Consumers block in {!pop}
    until an item or {!close} arrives. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity < 0] raises [Invalid_argument].  [capacity = 0] rejects
    every push (useful to force the rejection path in tests). *)

val capacity : 'a t -> int

val length : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when full or closed. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available ([Some]) or the queue is closed
    and drained ([None]). *)

val close : 'a t -> unit
(** Idempotent.  Already-queued items still drain; new pushes fail. *)
