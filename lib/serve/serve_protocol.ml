let ( let* ) = Result.bind

type op =
  | Ping
  | Stats
  | Table of { params : Params.t; grid : Iv_table.grid_spec option }
  | Iv of {
      params : Params.t;
      grid : Iv_table.grid_spec option;
      vg : float;
      vd : float;
    }
  | Shutdown

type request = { id : int option; op : op }

type error = { kind : string; detail : string; retry_after_ms : int option }

type response = { r_id : int option; result : (Sjson.t, error) result }

(* ------------------------------------------------------------------ *)
(* Params payload                                                      *)

let check_keys ~what ~allowed fields =
  List.fold_left
    (fun acc (k, _) ->
      let* () = acc in
      if List.mem k allowed then Ok ()
      else Error (Printf.sprintf "%s: unknown field %S" what k))
    (Ok ()) fields

let field fields k = List.assoc_opt k fields

let float_field fields k default =
  match field fields k with
  | None -> Ok default
  | Some j ->
    (match Sjson.to_float j with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "params.%s: expected a number" k))

let int_field fields k default =
  match field fields k with
  | None -> Ok default
  | Some j ->
    (match Sjson.to_int j with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "params.%s: expected an integer" k))

let params_keys =
  [
    "gnr_index"; "channel_length"; "oxide_thickness"; "oxide_eps_r";
    "temperature"; "n_modes"; "gate_offset"; "contact_gamma"; "width_fringe";
    "energy_step"; "energy_margin"; "impurity_charge"; "contact_style";
  ]

let params_of_json j =
  match j with
  | Sjson.Obj fields ->
    let* () = check_keys ~what:"params" ~allowed:params_keys fields in
    let d = Params.default () in
    let* gnr_index = int_field fields "gnr_index" d.Params.gnr_index in
    let* channel_length =
      float_field fields "channel_length" d.Params.channel_length
    in
    let* oxide_thickness =
      float_field fields "oxide_thickness" d.Params.oxide_thickness
    in
    let* oxide_eps_r = float_field fields "oxide_eps_r" d.Params.oxide_eps_r in
    let* temperature = float_field fields "temperature" d.Params.temperature in
    let* n_modes = int_field fields "n_modes" d.Params.n_modes in
    let* gate_offset = float_field fields "gate_offset" d.Params.gate_offset in
    let* contact_gamma =
      float_field fields "contact_gamma" d.Params.contact_gamma
    in
    let* width_fringe =
      float_field fields "width_fringe" d.Params.width_fringe
    in
    let* energy_step = float_field fields "energy_step" d.Params.energy_step in
    let* energy_margin =
      float_field fields "energy_margin" d.Params.energy_margin
    in
    let* contact_style =
      match field fields "contact_style" with
      | None -> Ok d.Params.contact_style
      | Some j ->
        (match Sjson.to_str j with
        | Some "point" -> Ok Stack2d.Point
        | Some "plane" -> Ok Stack2d.Plane
        | Some other ->
          Error
            (Printf.sprintf
               "params.contact_style: expected \"point\" or \"plane\", got %S"
               other)
        | None -> Error "params.contact_style: expected a string")
    in
    let p =
      {
        d with
        Params.gnr_index;
        channel_length;
        oxide_thickness;
        oxide_eps_r;
        temperature;
        n_modes;
        gate_offset;
        contact_gamma;
        width_fringe;
        energy_step;
        energy_margin;
        contact_style;
      }
    in
    let* p =
      match field fields "impurity_charge" with
      | None -> Ok p
      | Some j ->
        (match Sjson.to_float j with
        | Some q -> Ok (Params.with_impurity_charge p q)
        | None -> Error "params.impurity_charge: expected a number")
    in
    Ok p
  | Sjson.Null -> Ok (Params.default ())
  | _ -> Error "params: expected an object"

let params_to_json (p : Params.t) =
  let base =
    [
      ("gnr_index", Sjson.Num (float_of_int p.Params.gnr_index));
      ("channel_length", Sjson.Num p.Params.channel_length);
      ("oxide_thickness", Sjson.Num p.Params.oxide_thickness);
      ("oxide_eps_r", Sjson.Num p.Params.oxide_eps_r);
      ("temperature", Sjson.Num p.Params.temperature);
      ("n_modes", Sjson.Num (float_of_int p.Params.n_modes));
      ("gate_offset", Sjson.Num p.Params.gate_offset);
      ("contact_gamma", Sjson.Num p.Params.contact_gamma);
      ("width_fringe", Sjson.Num p.Params.width_fringe);
      ("energy_step", Sjson.Num p.Params.energy_step);
      ("energy_margin", Sjson.Num p.Params.energy_margin);
      ( "contact_style",
        Sjson.Str
          (match p.Params.contact_style with
          | Stack2d.Point -> "point"
          | Stack2d.Plane -> "plane") );
    ]
  in
  let imp =
    match p.Params.impurities with
    | [ i ] when i = Impurity.paper_default ~charge:i.Impurity.charge ->
      [ ("impurity_charge", Sjson.Num i.Impurity.charge) ]
    | _ -> []
  in
  Sjson.Obj (base @ imp)

(* ------------------------------------------------------------------ *)
(* Grid payload                                                        *)

let grid_keys = [ "vg_min"; "vg_max"; "n_vg"; "vd_max"; "n_vd" ]

let grid_of_json j =
  match j with
  | Sjson.Obj fields ->
    let* () = check_keys ~what:"grid" ~allowed:grid_keys fields in
    let dg = Iv_table.default_grid in
    let* vg_min = float_field fields "vg_min" dg.Iv_table.vg_min in
    let* vg_max = float_field fields "vg_max" dg.Iv_table.vg_max in
    let* n_vg = int_field fields "n_vg" dg.Iv_table.n_vg in
    let* vd_max = float_field fields "vd_max" dg.Iv_table.vd_max in
    let* n_vd = int_field fields "n_vd" dg.Iv_table.n_vd in
    if n_vg < 2 || n_vd < 2 then
      Error "grid: n_vg and n_vd must both be >= 2"
    else if not (vg_max > vg_min) then Error "grid: vg_max must exceed vg_min"
    else if not (vd_max > 0.) then Error "grid: vd_max must be positive"
    else Ok { Iv_table.vg_min; vg_max; n_vg; vd_max; n_vd }
  | _ -> Error "grid: expected an object"

let grid_to_json (g : Iv_table.grid_spec) =
  Sjson.Obj
    [
      ("vg_min", Sjson.Num g.Iv_table.vg_min);
      ("vg_max", Sjson.Num g.Iv_table.vg_max);
      ("n_vg", Sjson.Num (float_of_int g.Iv_table.n_vg));
      ("vd_max", Sjson.Num g.Iv_table.vd_max);
      ("n_vd", Sjson.Num (float_of_int g.Iv_table.n_vd));
    ]

let table_to_json (t : Iv_table.t) =
  Sjson.Obj
    [
      ("key", Sjson.Str t.Iv_table.key);
      ("vg", Sjson.of_float_array t.Iv_table.vg);
      ("vd", Sjson.of_float_array t.Iv_table.vd);
      ("current", Sjson.of_matrix t.Iv_table.current);
      ("charge", Sjson.of_matrix t.Iv_table.charge);
      ( "failed_points",
        Sjson.List
          (List.map
             (fun (ivg, ivd) ->
               Sjson.List
                 [
                   Sjson.Num (float_of_int ivg); Sjson.Num (float_of_int ivd);
                 ])
             t.Iv_table.failed_points) );
    ]

let float_array_of_json ~what j =
  match Sjson.to_list j with
  | None -> Error (Printf.sprintf "%s: expected an array of numbers" what)
  | Some items ->
    let* floats =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Sjson.to_float item with
          | Some f -> Ok (f :: acc)
          | None -> Error (Printf.sprintf "%s: expected a number" what))
        (Ok []) items
    in
    Ok (Array.of_list (List.rev floats))

let matrix_of_json ~what j =
  match Sjson.to_list j with
  | None -> Error (Printf.sprintf "%s: expected an array of arrays" what)
  | Some rows ->
    let* arrays =
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          let* a = float_array_of_json ~what row in
          Ok (a :: acc))
        (Ok []) rows
    in
    Ok (Array.of_list (List.rev arrays))

let table_of_json j =
  match j with
  | Sjson.Obj fields ->
    let* key =
      match Option.bind (field fields "key") Sjson.to_str with
      | Some k -> Ok k
      | None -> Error "table: missing string \"key\""
    in
    let req k of_json =
      match field fields k with
      | Some v -> of_json ~what:("table." ^ k) v
      | None -> Error (Printf.sprintf "table: missing %S" k)
    in
    let* vg = req "vg" float_array_of_json in
    let* vd = req "vd" float_array_of_json in
    let* current = req "current" matrix_of_json in
    let* charge = req "charge" matrix_of_json in
    let* failed_points =
      match field fields "failed_points" with
      | None -> Ok []
      | Some j ->
        (match Sjson.to_list j with
        | None -> Error "table.failed_points: expected an array"
        | Some items ->
          let* rev =
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Sjson.to_list item with
                | Some [ a; b ] ->
                  (match (Sjson.to_int a, Sjson.to_int b) with
                  | Some ivg, Some ivd -> Ok ((ivg, ivd) :: acc)
                  | _ ->
                    Error "table.failed_points: expected integer pairs")
                | _ -> Error "table.failed_points: expected [ivg, ivd] pairs")
              (Ok []) items
          in
          Ok (List.rev rev))
    in
    let rows_match m = Array.length m = Array.length vg in
    let cols_match m =
      Array.for_all (fun row -> Array.length row = Array.length vd) m
    in
    if not (rows_match current && rows_match charge) then
      Error "table: matrix row count does not match the vg axis"
    else if not (cols_match current && cols_match charge) then
      Error "table: matrix column count does not match the vd axis"
    else Ok { Iv_table.key; vg; vd; current; charge; failed_points }
  | _ -> Error "table: expected a JSON object"

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_keys = [ "id"; "op"; "params"; "grid"; "vg"; "vd" ]

let opt_sub fields k of_json =
  match field fields k with
  | None | Some Sjson.Null -> Ok None
  | Some j ->
    let* v = of_json j in
    Ok (Some v)

let parse_request line =
  let* j = Sjson.parse line in
  match j with
  | Sjson.Obj fields ->
    let* () = check_keys ~what:"request" ~allowed:request_keys fields in
    let* id =
      match field fields "id" with
      | None | Some Sjson.Null -> Ok None
      | Some j ->
        (match Sjson.to_int j with
        | Some i -> Ok (Some i)
        | None -> Error "id: expected an integer")
    in
    let* op_name =
      match field fields "op" with
      | Some j ->
        (match Sjson.to_str j with
        | Some s -> Ok s
        | None -> Error "op: expected a string")
      | None -> Error "request: missing \"op\""
    in
    let table_payload () =
      let* params =
        match field fields "params" with
        | None -> Ok (Params.default ())
        | Some j -> params_of_json j
      in
      let* grid = opt_sub fields "grid" grid_of_json in
      Ok (params, grid)
    in
    let* op =
      match op_name with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | "table" ->
        let* params, grid = table_payload () in
        Ok (Table { params; grid })
      | "iv" ->
        let* params, grid = table_payload () in
        let req_float k =
          match field fields k with
          | Some j ->
            (match Sjson.to_float j with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "%s: expected a number" k))
          | None -> Error (Printf.sprintf "op \"iv\": missing %S" k)
        in
        let* vg = req_float "vg" in
        let* vd = req_float "vd" in
        if vd < 0. then
          Error "vd: must be >= 0 (the circuit layer owns VDS reflection)"
        else Ok (Iv { params; grid; vg; vd })
      | other -> Error (Printf.sprintf "op: unknown operation %S" other)
    in
    Ok { id; op }
  | _ -> Error "request: expected a JSON object"

let request_to_line { id; op } =
  let id_field =
    match id with Some i -> [ ("id", Sjson.Num (float_of_int i)) ] | None -> []
  in
  let body =
    match op with
    | Ping -> [ ("op", Sjson.Str "ping") ]
    | Stats -> [ ("op", Sjson.Str "stats") ]
    | Shutdown -> [ ("op", Sjson.Str "shutdown") ]
    | Table { params; grid } ->
      ("op", Sjson.Str "table")
      :: ("params", params_to_json params)
      :: (match grid with
         | Some g -> [ ("grid", grid_to_json g) ]
         | None -> [])
    | Iv { params; grid; vg; vd } ->
      ("op", Sjson.Str "iv")
      :: ("params", params_to_json params)
      :: ("vg", Sjson.Num vg)
      :: ("vd", Sjson.Num vd)
      :: (match grid with
         | Some g -> [ ("grid", grid_to_json g) ]
         | None -> [])
  in
  Sjson.to_string (Sjson.Obj (id_field @ body))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let id_json = function
  | Some i -> Sjson.Num (float_of_int i)
  | None -> Sjson.Null

let ok_line ~id result =
  Sjson.to_string
    (Sjson.Obj
       [ ("id", id_json id); ("ok", Sjson.Bool true); ("result", result) ])

let error_line ~id { kind; detail; retry_after_ms } =
  let err =
    [ ("kind", Sjson.Str kind); ("detail", Sjson.Str detail) ]
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", Sjson.Num (float_of_int ms)) ]
    | None -> []
  in
  Sjson.to_string
    (Sjson.Obj
       [
         ("id", id_json id);
         ("ok", Sjson.Bool false);
         ("error", Sjson.Obj err);
       ])

let parse_response line =
  let* j = Sjson.parse line in
  match j with
  | Sjson.Obj fields ->
    let r_id = Option.bind (field fields "id") Sjson.to_int in
    let* ok =
      match Option.bind (field fields "ok") Sjson.to_bool with
      | Some b -> Ok b
      | None -> Error "response: missing boolean \"ok\""
    in
    if ok then
      match field fields "result" with
      | Some r -> Ok { r_id; result = Ok r }
      | None -> Error "response: ok without \"result\""
    else (
      match field fields "error" with
      | Some (Sjson.Obj e) ->
        let str k = Option.bind (field e k) Sjson.to_str in
        let* kind =
          match str "kind" with
          | Some k -> Ok k
          | None -> Error "response: error without \"kind\""
        in
        let detail = Option.value (str "detail") ~default:"" in
        let retry_after_ms =
          Option.bind (field e "retry_after_ms") Sjson.to_int
        in
        Ok { r_id; result = Error { kind; detail; retry_after_ms } }
      | _ -> Error "response: not ok but no \"error\" object")
  | _ -> Error "response: expected a JSON object"

let error_of_robust (e : Robust_error.t) =
  let kind =
    match e with
    | Robust_error.Scf_stalled _ -> "scf_stalled"
    | Robust_error.Scf_max_iter _ -> "scf_max_iter"
    | Robust_error.Iterative_no_convergence _ -> "iterative_no_convergence"
    | Robust_error.Newton_failure _ -> "newton_failure"
    | Robust_error.Cache_corrupt _ -> "cache_corrupt"
    | Robust_error.Injected_fault _ -> "injected_fault"
    | Robust_error.Unrecovered _ -> "unrecovered"
    | Robust_error.Client_timeout _ -> "client_timeout"
    | Robust_error.Client_disconnected _ -> "client_disconnected"
    | Robust_error.Checkpoint_torn _ -> "checkpoint_torn"
  in
  { kind; detail = Robust_error.to_string e; retry_after_ms = None }
