(** Fixed-capacity LRU map (string keys), the in-memory serving layer
    the daemon puts in front of {!Table_cache}.

    O(1) find/add via a hash table over an intrusive doubly-linked
    recency list.  {b Not thread-safe} — the server serializes access
    under its own mutex (docs/SERVE.md). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] degenerates to a cache that stores nothing (every
    [find] misses); negative capacities raise [Invalid_argument]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Hit refreshes the entry's recency. *)

val add : 'a t -> string -> 'a -> string option
(** Insert or replace (either way the entry becomes most recent).
    Returns the key evicted to make room, if any. *)

val clear : 'a t -> unit
